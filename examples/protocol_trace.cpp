// Protocol trace: attach the event log to a small dissemination and print
// one node's life — every state transition of the paper's Fig.-4 machine,
// plus its segment/image completions. Pass a node id to inspect (default:
// the far corner).
#include <cstdlib>
#include <iostream>
#include <memory>

#include "mnp/mnp_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"
#include "trace/event_log.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  constexpr std::size_t kRows = 4, kCols = 4;
  const net::NodeId focus =
      argc > 1 ? static_cast<net::NodeId>(std::atoi(argv[1]))
               : static_cast<net::NodeId>(kRows * kCols - 1);

  sim::Simulator sim(12);
  node::Network network(
      sim, net::Topology::grid(kRows, kCols, 10.0), [&](const net::Topology& t) {
        net::EmpiricalLinkModel::Params lp;
        lp.range_ft = 25.0;
        return std::make_unique<net::EmpiricalLinkModel>(t, lp,
                                                         sim.fork_rng(0x11A7));
      });
  trace::EventLog log;
  network.stats().set_event_log(&log);

  core::MnpConfig cfg;
  auto image = std::make_shared<const core::ProgramImage>(
      1, 2 * cfg.packets_per_segment * cfg.payload_bytes);
  for (net::NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<core::MnpNode>(cfg, image)
                : std::make_unique<core::MnpNode>(cfg));
  }
  network.boot_all();
  sim.run_until_condition(sim::hours(1),
                          [&] { return network.stats().all_completed(); });

  std::cout << "dissemination finished at " << sim::format_time(sim.now())
            << "; log holds " << log.size() << " events (" << log.dropped()
            << " evicted)\n\n";
  std::cout << "event counts:\n";
  for (const auto& [kind, count] : log.counts_by_kind()) {
    std::cout << "  " << trace::to_string(kind) << ": " << count << "\n";
  }
  std::cout << "\nstate-machine life of node " << focus << ":\n";
  for (const auto& e : log.for_node(focus)) {
    if (e.kind == trace::EventKind::kPacketSent ||
        e.kind == trace::EventKind::kPacketReceived) {
      continue;  // too chatty for this view
    }
    std::cout << "  " << sim::format_time(e.time) << "  "
              << trace::to_string(e.kind)
              << (e.detail.empty() ? "" : "  " + e.detail) << "\n";
  }
  return 0;
}

// mnp_sim_cli: run any dissemination experiment from the command line and
// optionally dump machine-readable CSVs.
//
//   mnp_sim_cli [--protocol mnp|deluge|moap|xnp|ncast] [--rows N] [--cols N]
//               [--spacing FT] [--range FT] [--segments N] [--bytes N]
//               [--seed N] [--mac csma|tdma] [--no-pipelining]
//               [--no-query-update] [--battery-aware] [--duty-cycle F]
//               [--disk-links] [--scenario PATH] [--csv PREFIX] [--quiet]
//               [--runs N] [--jobs N] [--tie-break fifo|lifo]
//               [--trace-out PATH] [--metrics-out PATH] [--audit-out PATH]
//
// Examples:
//   mnp_sim_cli --rows 20 --cols 20 --segments 5            # the Fig.-8 run
//   mnp_sim_cli --protocol deluge --segments 2 --csv out/d  # CSVs for plots
//   mnp_sim_cli --runs 10 --jobs 4    # 10-seed sweep on 4 worker threads
//   mnp_sim_cli --trace-out run.json  # Perfetto trace (open in ui.perfetto.dev)
//   mnp_sim_cli --scenario examples/scenarios/churn_partition_mobility.scn
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/csv.hpp"
#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "scenario/scenario_parser.hpp"

namespace {

[[noreturn]] void usage(const char* self) {
  std::cerr
      << "usage: " << self << " [options]\n"
      << "  --protocol mnp|deluge|moap|xnp|ncast   protocol to run (default mnp)\n"
      << "  --rows N --cols N                grid shape (default 10x10)\n"
      << "  --spacing FT                     inter-node distance (default 10)\n"
      << "  --range FT                       radio range (default 25)\n"
      << "  --segments N                     program size in MNP segments\n"
      << "  --bytes N                        program size in bytes\n"
      << "  --seed N                         RNG seed (default 1)\n"
      << "  --mac csma|tdma                  medium access (default csma)\n"
      << "  --no-pipelining                  basic hop-by-hop MNP\n"
      << "  --no-query-update                disable the repair phase\n"
      << "  --battery-aware                  scale adv power by battery\n"
      << "  --duty-cycle F                   pre-wave duty cycle (0..1)\n"
      << "  --disk-links                     ideal disk links (no loss)\n"
      << "  --scenario PATH                  fault-injection schedule (churn,\n"
      << "                                   partitions, mobility; see\n"
      << "                                   examples/scenarios/)\n"
      << "  --csv PREFIX                     write PREFIX.{nodes,timeline,summary}.csv\n"
      << "  --quiet                          summary only (no maps)\n"
      << "  --runs N                         sweep N seeds (starting at --seed)\n"
      << "  --jobs N                         sweep worker threads (default: \n"
      << "                                   MNP_SWEEP_JOBS, else 1; results\n"
      << "                                   are identical for any N)\n"
      << "  --tie-break fifo|lifo            same-timestamp event order\n"
      << "                                   (default fifo; flip + --audit-out\n"
      << "                                   to hunt order-sensitive logic)\n"
      << "  --trace-out PATH                 write a Perfetto/Chrome trace JSON\n"
      << "                                   (sweeps trace the first seed)\n"
      << "  --metrics-out PATH               write the run-manifest JSON\n"
      << "                                   (config, seeds, metrics snapshot)\n"
      << "  --audit-out PATH                 run the determinism auditor and\n"
      << "                                   write its state-hash log (diff two\n"
      << "                                   with mnp_bisect)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mnp;
  harness::ExperimentConfig cfg;
  harness::ObsCli obs_cli;
  std::string csv_prefix;
  bool quiet = false;
  std::size_t runs = 1;
  std::size_t jobs = 0;  // 0 = resolve via MNP_SWEEP_JOBS

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--protocol")) {
      const std::string v = need_value(i);
      if (v == "mnp") {
        cfg.protocol = harness::Protocol::kMnp;
      } else if (v == "deluge") {
        cfg.protocol = harness::Protocol::kDeluge;
      } else if (v == "moap") {
        cfg.protocol = harness::Protocol::kMoap;
      } else if (v == "xnp") {
        cfg.protocol = harness::Protocol::kXnp;
      } else if (v == "ncast") {
        cfg.protocol = harness::Protocol::kNcast;
      } else {
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--rows")) {
      cfg.rows = std::stoul(need_value(i));
    } else if (!std::strcmp(arg, "--cols")) {
      cfg.cols = std::stoul(need_value(i));
    } else if (!std::strcmp(arg, "--spacing")) {
      cfg.spacing_ft = std::stod(need_value(i));
    } else if (!std::strcmp(arg, "--range")) {
      cfg.range_ft = std::stod(need_value(i));
    } else if (!std::strcmp(arg, "--segments")) {
      cfg.set_program_segments(static_cast<std::uint16_t>(std::stoul(need_value(i))));
    } else if (!std::strcmp(arg, "--bytes")) {
      cfg.program_bytes = std::stoul(need_value(i));
    } else if (!std::strcmp(arg, "--seed")) {
      cfg.seed = std::stoull(need_value(i));
    } else if (!std::strcmp(arg, "--mac")) {
      const std::string v = need_value(i);
      if (v == "csma") {
        cfg.mac = harness::MacType::kCsma;
      } else if (v == "tdma") {
        cfg.mac = harness::MacType::kTdma;
      } else {
        usage(argv[0]);
      }
    } else if (!std::strcmp(arg, "--no-pipelining")) {
      cfg.mnp.pipelining = false;
    } else if (!std::strcmp(arg, "--no-query-update")) {
      cfg.mnp.query_update_enabled = false;
    } else if (!std::strcmp(arg, "--battery-aware")) {
      cfg.mnp.battery_aware = true;
    } else if (!std::strcmp(arg, "--duty-cycle")) {
      cfg.mnp.pre_wave_duty_cycle = std::stod(need_value(i));
    } else if (!std::strcmp(arg, "--disk-links")) {
      cfg.empirical_links = false;
    } else if (!std::strcmp(arg, "--scenario")) {
      const auto parsed = scenario::load_scenario_file(need_value(i));
      if (!parsed.ok) {
        std::cerr << "--scenario: " << parsed.error << "\n";
        return 2;
      }
      cfg.scenario = parsed.scenario;
    } else if (!std::strcmp(arg, "--csv")) {
      csv_prefix = need_value(i);
    } else if (!std::strcmp(arg, "--quiet")) {
      quiet = true;
    } else if (!std::strcmp(arg, "--runs")) {
      runs = std::stoul(need_value(i));
    } else if (!std::strcmp(arg, "--jobs")) {
      jobs = std::stoul(need_value(i));
    } else if (!std::strcmp(arg, "--tie-break")) {
      const std::string v = need_value(i);
      if (v == "fifo") {
        cfg.tie_break = sim::TieBreak::kFifo;
      } else if (v == "lifo") {
        cfg.tie_break = sim::TieBreak::kLifo;
      } else {
        usage(argv[0]);
      }
    } else if (obs_cli.parse_arg(argc, argv, i)) {
      // --trace-out / --metrics-out / --audit-out consumed.
    } else {
      usage(argv[0]);
    }
  }

  const std::string title = std::string(harness::protocol_name(cfg.protocol)) +
                            " " + std::to_string(cfg.rows) + "x" +
                            std::to_string(cfg.cols);

  if (runs > 1) {
    harness::SweepOptions options;
    options.jobs = jobs;
    harness::Observation observation;
    observation.with_audit = obs_cli.wants_audit();
    if (obs_cli.enabled()) options.observe = &observation;
    const auto sweep = harness::run_sweep(cfg, runs, cfg.seed, options);
    if (obs_cli.enabled() &&
        !obs_cli.write(cfg, cfg.seed, runs, observation)) {
      return 1;
    }
    std::cout << "=== " << title << " sweep: " << runs << " seeds (first "
              << cfg.seed << "), " << harness::resolve_sweep_jobs(jobs)
              << " job(s) ===\n\n";
    std::cout << "runs fully completed: " << sweep.fully_completed_runs << "/"
              << sweep.runs << "\n";
    std::cout << "completion time (s): "
              << harness::format_stat(sweep.completion_s) << "\n";
    std::cout << "avg ART (s):         "
              << harness::format_stat(sweep.avg_art_s) << "\n";
    std::cout << "msgs/node:           "
              << harness::format_stat(sweep.avg_msgs) << "\n";
    std::cout << "collisions:          "
              << harness::format_stat(sweep.collisions, 0) << "\n";
    std::cout << "energy/node (nAh):   "
              << harness::format_stat(sweep.energy_per_node_nah, 0) << "\n";
    return sweep.fully_completed_runs == sweep.runs ? 0 : 1;
  }

  harness::Observation observation;
  observation.with_audit = obs_cli.wants_audit();
  const auto result = harness::run_experiment(
      cfg, obs_cli.enabled() ? &observation : nullptr);
  if (!result.scenario_error.empty()) return 2;
  if (obs_cli.enabled() && !obs_cli.write(cfg, cfg.seed, 1, observation)) {
    return 1;
  }
  harness::print_summary(std::cout, title.c_str(), result);
  if (!cfg.scenario.empty()) {
    std::cout << "scenario '" << cfg.scenario.name() << "': "
              << result.scenario_injected << " injected event(s), "
              << result.dead_nodes << " node(s) dead at end\n";
  }
  if (!quiet) {
    std::cout << "\n";
    harness::print_parent_map(std::cout, result, cfg.base);
    std::cout << "\n";
    harness::print_sender_order(std::cout, result);
    std::cout << "\n";
    harness::print_active_radio(std::cout, result);
  }
  if (!csv_prefix.empty()) {
    std::ofstream nodes(csv_prefix + ".nodes.csv");
    harness::write_nodes_csv(nodes, result);
    std::ofstream timeline(csv_prefix + ".timeline.csv");
    harness::write_timeline_csv(timeline, result);
    std::ofstream summary(csv_prefix + ".summary.csv");
    harness::write_summary_csv(summary, title.c_str(), result);
    std::cout << "\nCSV written to " << csv_prefix << ".{nodes,timeline,summary}.csv\n";
  }
  return result.all_completed ? 0 : 1;
}

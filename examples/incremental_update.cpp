// Incremental (difference-based) reprogramming: instead of pushing the
// whole new image, compute a delta against the version the fleet already
// runs, disseminate only the delta with MNP, and let every node patch
// itself. This is the "complementary to difference-based approaches"
// combination the paper's related-work section describes.
#include <iostream>
#include <memory>

#include "diff/delta.hpp"
#include "harness/experiment.hpp"
#include "mnp/mnp_node.hpp"
#include "mnp/program_image.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace mnp;

  // Version 1 is installed everywhere; version 2 fixes a few regions.
  const core::ProgramImage v1(1, 10 * 1024);
  std::vector<std::uint8_t> v2_bytes = v1.bytes();
  for (std::size_t i = 2000; i < 2200; ++i) v2_bytes[i] ^= 0x3C;   // bug fix
  for (std::size_t i = 7000; i < 7064; ++i) v2_bytes[i] = 0xAA;    // new table
  const diff::Delta delta = diff::Delta::compute(v1.bytes(), v2_bytes);
  const auto wire = delta.serialize();

  std::cout << "full image: " << v2_bytes.size() << " B; delta: "
            << wire.size() << " B (" << (100 * wire.size() / v2_bytes.size())
            << "% of a full update)\n\n";

  // Disseminate the delta itself as the MNP "program".
  sim::Simulator sim(99);
  node::Network network(
      sim, net::Topology::grid(6, 6, 10.0), [&](const net::Topology& t) {
        net::EmpiricalLinkModel::Params lp;
        lp.range_ft = 25.0;
        return std::make_unique<net::EmpiricalLinkModel>(t, lp,
                                                         sim.fork_rng(0x11A7));
      });
  core::MnpConfig cfg;
  auto delta_image = std::make_shared<const core::ProgramImage>(
      2, wire, cfg.packets_per_segment, cfg.payload_bytes);
  for (net::NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<core::MnpNode>(cfg, delta_image)
                : std::make_unique<core::MnpNode>(cfg));
  }
  network.boot_all();
  sim.run_until_condition(sim::hours(2), [&] {
    return network.stats().all_completed();
  });

  // Every node patches its installed v1 with the received delta.
  std::size_t patched = 0;
  for (net::NodeId id = 1; id < network.size(); ++id) {
    const auto received =
        network.node(id).eeprom().read(0, delta_image->total_bytes());
    const auto parsed = diff::Delta::parse(received);
    if (parsed && parsed->apply(v1.bytes()) == v2_bytes) ++patched;
  }
  std::cout << "dissemination: " << sim::format_time(sim.now()) << ", "
            << network.stats().completed_count() << "/" << network.size()
            << " nodes received the delta\n";
  std::cout << "patched to v2 byte-exactly: " << patched << "/"
            << network.size() - 1 << " nodes\n";
  return patched == network.size() - 1 ? 0 : 1;
}

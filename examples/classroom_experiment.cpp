// Replica of the paper's indoor classroom experiment: a small grid of
// motes, the base station in a corner, low radio power so the code must
// travel several hops, basic MNP without pipelining.
//
// Run it twice with different power levels (command-line argument: range
// in feet, default 9) and watch how the parent map and sender count change.
//
//   ./build/examples/classroom_experiment        # "power level 4"
//   ./build/examples/classroom_experiment 6      # "power level 3"
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) {
  using namespace mnp;
  const double range_ft = argc > 1 ? std::atof(argv[1]) : 9.0;

  harness::ExperimentConfig cfg;
  cfg.rows = 5;
  cfg.cols = 4;
  cfg.spacing_ft = 3.0;       // classroom desks
  cfg.range_ft = range_ft;
  cfg.base = 0;               // upper-left corner
  cfg.mnp.pipelining = false;
  cfg.mnp.packets_per_segment = 200;  // whole program = one EEPROM-tracked segment
  cfg.program_bytes = 200 * 22;  // 200 packets, ~4.4 KB
  cfg.seed = 2005;

  std::cout << "Classroom reprogramming: 5x4 motes, 3 ft apart, range "
            << range_ft << " ft\n\n";
  const auto r = harness::run_experiment(cfg);
  harness::print_summary(std::cout, "classroom", r);
  std::cout << "\n";
  harness::print_parent_map(std::cout, r, cfg.base);
  std::cout << "\n";
  harness::print_sender_order(std::cout, r);
  std::cout << "\nTry a lower range (e.g. 6) to see more hops and senders.\n";
  return r.all_completed ? 0 : 1;
}

// Large-scale pipelining demo: a 20x20 network (the paper's TOSSIM
// configuration) receiving a multi-segment image. Prints the propagation
// wave, the energy picture, and the per-minute traffic mix.
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

int main() {
  using namespace mnp;
  harness::ExperimentConfig cfg;
  cfg.rows = 20;
  cfg.cols = 20;
  cfg.spacing_ft = 10.0;
  cfg.range_ft = 25.0;
  cfg.base = 0;
  cfg.set_program_segments(5);  // ~14 KB
  cfg.seed = 400;

  std::cout << "Pipelined dissemination of a " << cfg.program_bytes / 1024
            << " KB image across 400 nodes...\n\n";
  const auto r = harness::run_experiment(cfg);

  harness::print_summary(std::cout, "20x20 pipelined MNP", r);
  std::cout << "\n";
  harness::print_propagation_snapshots(std::cout, r, {0.25, 0.5, 0.75});
  std::cout << "\n";
  harness::print_active_radio(std::cout, r);
  std::cout << "\n";
  harness::print_timeline(std::cout, r);
  return r.all_completed ? 0 : 1;
}

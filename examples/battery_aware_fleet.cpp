// Battery-aware reprogramming of a mixed-health fleet (the paper's
// section-6 extension): nodes that already served as senders in earlier
// rounds have drained batteries; with battery-aware advertising they
// whisper their advertisements and so dodge the next round's forwarding
// load.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

int main() {
  using namespace mnp;
  harness::ExperimentConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(2);
  cfg.seed = 60;
  cfg.mnp.battery_aware = true;
  // A stripe of tired nodes across the middle of the field. Note the
  // hazard this extension carries: if every node on a cut of the network
  // is drained enough, their whispered advertisements reach nobody and
  // the far side never even learns the program exists. At 50% battery
  // the stripe still loses every election but remains audible one grid
  // step away (0.5 x 25 ft > 10 ft spacing).
  cfg.battery_levels.assign(36, 1.0);
  for (std::size_t col = 0; col < 6; ++col) {
    cfg.battery_levels[2 * 6 + col] = 0.5;
    cfg.battery_levels[3 * 6 + col] = 0.5;
  }

  std::cout << "Reprogramming a fleet where rows 2-3 are at 50% battery,\n"
               "with battery-aware advertising enabled...\n\n";
  const auto r = harness::run_experiment(cfg);

  std::printf("completed: %zu/%zu nodes\n\n", r.completed_count, r.nodes.size());
  std::printf("%-6s %10s %12s %12s %10s\n", "node", "battery", "data sent",
              "total sent", "energy nAh");
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    std::printf("%-6zu %9.0f%% %12llu %12llu %10.0f\n", i,
                100.0 * cfg.battery_levels[i],
                static_cast<unsigned long long>(r.nodes[i].tx_data),
                static_cast<unsigned long long>(r.nodes[i].tx_total),
                r.nodes[i].energy_nah);
  }
  double weak = 0, strong = 0;
  std::size_t weak_n = 0, strong_n = 0;
  for (std::size_t i = 1; i < r.nodes.size(); ++i) {
    if (cfg.battery_levels[i] < 1.0) {
      weak += static_cast<double>(r.nodes[i].tx_data);
      ++weak_n;
    } else {
      strong += static_cast<double>(r.nodes[i].tx_data);
      ++strong_n;
    }
  }
  std::printf("\nweak nodes forwarded %.1f data packets on average, strong "
              "nodes %.1f\n",
              weak / static_cast<double>(weak_n),
              strong / static_cast<double>(strong_n));
  return r.all_completed ? 0 : 1;
}

// Subset dissemination (paper section 6): two different programs flow
// simultaneously to two disjoint halves of the same field, from two base
// stations, sharing one radio channel. Nodes ignore (and sleep through)
// transfers of the program they are not subscribed to, while the sender
// election still coordinates across programs because the channel is shared.
#include <iostream>
#include <memory>

#include "mnp/mnp_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"
#include "util/ascii_grid.hpp"

int main() {
  using namespace mnp;
  constexpr std::size_t kRows = 6, kCols = 12;

  sim::Simulator sim(7);
  node::Network network(
      sim, net::Topology::grid(kRows, kCols, 10.0), [&](const net::Topology& t) {
        net::EmpiricalLinkModel::Params lp;
        lp.range_ft = 25.0;
        return std::make_unique<net::EmpiricalLinkModel>(t, lp,
                                                         sim.fork_rng(0x11A7));
      });

  core::MnpConfig cfg;
  auto sensing = std::make_shared<const core::ProgramImage>(
      10, 2 * cfg.packets_per_segment * cfg.payload_bytes);
  auto tracking = std::make_shared<const core::ProgramImage>(
      20, 2 * cfg.packets_per_segment * cfg.payload_bytes);

  std::vector<core::MnpNode*> apps(network.size());
  for (net::NodeId id = 0; id < network.size(); ++id) {
    const bool left = (id % kCols) < kCols / 2;
    core::MnpConfig node_cfg = cfg;
    node_cfg.target_program = left ? 10 : 20;
    std::unique_ptr<core::MnpNode> app;
    if (id == 0) {
      app = std::make_unique<core::MnpNode>(node_cfg, sensing);
    } else if (id == kCols - 1) {
      app = std::make_unique<core::MnpNode>(node_cfg, tracking);
    } else {
      app = std::make_unique<core::MnpNode>(node_cfg);
    }
    apps[id] = app.get();
    network.node(id).set_application(std::move(app));
  }
  network.boot_all();

  std::cout << "Disseminating program 10 (left half, base upper-left) and\n"
               "program 20 (right half, base upper-right) concurrently...\n\n";
  sim.run_until_condition(sim::hours(2), [&] {
    return network.complete_image_count() == network.size();
  });

  std::size_t correct = 0;
  for (net::NodeId id = 0; id < network.size(); ++id) {
    const bool left = (id % kCols) < kCols / 2;
    if (apps[id]->reboot(left ? *sensing : *tracking)) ++correct;
  }
  std::cout << "finished at " << sim::format_time(sim.now()) << ": "
            << network.complete_image_count() << "/" << network.size()
            << " nodes complete, " << correct << "/" << network.size()
            << " verified against their subscribed program\n\n";
  std::cout << "program map ('s' = sensing, 't' = tracking, upper = base):\n"
            << util::render_grid(kRows, kCols, [&](std::size_t r, std::size_t c) {
                 const net::NodeId id = static_cast<net::NodeId>(r * kCols + c);
                 const bool left = c < kCols / 2;
                 const bool base = id == 0 || id == kCols - 1;
                 std::string cell(1, left ? 's' : 't');
                 if (base) cell[0] = static_cast<char>(cell[0] - 32);  // upper
                 if (!apps[id]->has_complete_image()) cell = ".";
                 return cell;
               });
  return correct == network.size() ? 0 : 1;
}

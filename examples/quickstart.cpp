// Quickstart: disseminate a 2-segment program across a 5x5 grid with MNP
// and print the run summary, parent map and sender order.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

int main() {
  using namespace mnp;

  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kMnp;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.spacing_ft = 10.0;   // feet between neighbors
  cfg.range_ft = 25.0;     // radio reach; ~2 grid steps
  cfg.base = 0;            // upper-left corner holds the new program
  cfg.set_program_segments(2);  // ~5.6 KB image
  cfg.seed = 42;

  std::cout << "Disseminating " << cfg.program_bytes
            << " bytes over a 5x5 sensor grid with MNP...\n\n";

  const harness::RunResult result = harness::run_experiment(cfg);

  harness::print_summary(std::cout, "quickstart (MNP, 5x5)", result);
  std::cout << "\n";
  harness::print_parent_map(std::cout, result, cfg.base);
  std::cout << "\n";
  harness::print_sender_order(std::cout, result);
  return result.all_completed ? 0 : 1;
}

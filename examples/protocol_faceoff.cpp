// Protocol face-off: the same 8x8 network and the same ~5.6 KB image
// disseminated by MNP, Deluge, MOAP and (single-hop) XNP. Prints one
// comparison row per protocol — a quick way to feel the design space the
// paper positions MNP in.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"

int main() {
  using namespace mnp;
  std::cout << "Disseminating ~5.6 KB across an 8x8 grid with 4 protocols\n\n";
  std::printf("%-8s %10s %14s %10s %12s %12s\n", "proto", "complete",
              "completion(s)", "ART(s)", "msgs/node", "energy/node");
  for (auto protocol : {harness::Protocol::kMnp, harness::Protocol::kDeluge,
                        harness::Protocol::kMoap, harness::Protocol::kXnp}) {
    harness::ExperimentConfig cfg;
    cfg.protocol = protocol;
    cfg.rows = 8;
    cfg.cols = 8;
    cfg.range_ft = 25.0;
    cfg.program_bytes = 2 * 128 * 22;
    cfg.seed = 64;
    cfg.max_sim_time = sim::hours(4);
    const auto r = harness::run_experiment(cfg);
    std::printf("%-8s %9zu%% %14.1f %10.1f %12.1f %12.0f\n",
                harness::protocol_name(protocol),
                100 * r.completed_count / r.nodes.size(),
                r.completion_time >= 0 ? sim::to_seconds(r.completion_time) : -1.0,
                r.avg_active_radio_s(), r.avg_messages_sent(),
                r.total_energy_nah() / static_cast<double>(r.nodes.size()));
  }
  std::cout << "\nXNP never reaches nodes beyond the base's radio cell;\n"
               "Deluge/MOAP finish but keep every radio on; MNP completes\n"
               "with a fraction of the active radio time.\n";
  return 0;
}

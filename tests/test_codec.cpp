// Wire codec tests: every packet type round-trips byte-exactly, corrupt
// frames are rejected, and the airtime model's wire sizes stay honest
// relative to the real encoding.
#include <gtest/gtest.h>

#include <vector>

#include "net/codec.hpp"

namespace mnp::net {
namespace {

template <typename T>
Packet make(T msg, NodeId src = 7) {
  Packet pkt;
  pkt.src = src;
  pkt.payload = std::move(msg);
  return pkt;
}

template <typename T>
const T& round_trip(const Packet& pkt) {
  static Packet decoded;
  const auto frame = encode(pkt);
  auto result = decode(frame);
  EXPECT_TRUE(result.has_value());
  decoded = *result;
  EXPECT_EQ(decoded.src, pkt.src);
  EXPECT_EQ(decoded.type(), pkt.type());
  const T* typed = decoded.as<T>();
  EXPECT_NE(typed, nullptr);
  return *typed;
}

TEST(Codec, Advertisement) {
  AdvertisementMsg m;
  m.program_id = 5;
  m.program_bytes = 123456;
  m.program_segments = 9;
  m.seg_id = 3;
  m.req_ctr = 42;
  const auto& d = round_trip<AdvertisementMsg>(make(m));
  EXPECT_EQ(d.program_id, 5);
  EXPECT_EQ(d.program_bytes, 123456u);
  EXPECT_EQ(d.program_segments, 9);
  EXPECT_EQ(d.seg_id, 3);
  EXPECT_EQ(d.req_ctr, 42);
}

TEST(Codec, DownloadRequestWithBitmap) {
  DownloadRequestMsg m;
  m.dest = 11;
  m.program_id = 2;
  m.seg_id = 4;
  m.req_ctr_echo = 3;
  m.window_base = 256;
  m.request_all = false;
  m.missing = util::Bitmap(128);
  m.missing.set(0);
  m.missing.set(77);
  m.missing.set(127);
  const auto& d = round_trip<DownloadRequestMsg>(make(m));
  EXPECT_EQ(d.dest, 11);
  EXPECT_EQ(d.window_base, 256);
  EXPECT_FALSE(d.request_all);
  EXPECT_EQ(d.missing, m.missing);
}

TEST(Codec, DownloadRequestAllFlag) {
  DownloadRequestMsg m;
  m.request_all = true;
  const auto& d = round_trip<DownloadRequestMsg>(make(m));
  EXPECT_TRUE(d.request_all);
}

TEST(Codec, StartAndEndDownload) {
  StartDownloadMsg s;
  s.program_id = 1;
  s.seg_id = 2;
  s.packet_count = 200;
  EXPECT_EQ(round_trip<StartDownloadMsg>(make(s)).packet_count, 200);
  EndDownloadMsg e;
  e.seg_id = 2;
  EXPECT_EQ(round_trip<EndDownloadMsg>(make(e)).seg_id, 2);
}

TEST(Codec, DataWithPayload) {
  DataMsg m;
  m.program_id = 1;
  m.seg_id = 2;
  m.pkt_id = 300;
  for (int i = 0; i < 22; ++i) m.payload.push_back(static_cast<std::uint8_t>(i));
  const auto& d = round_trip<DataMsg>(make(m));
  EXPECT_EQ(d.pkt_id, 300);
  EXPECT_EQ(d.payload, m.payload);
}

TEST(Codec, QueryAndRepair) {
  QueryMsg q;
  q.seg_id = 7;
  EXPECT_EQ(round_trip<QueryMsg>(make(q)).seg_id, 7);
  RepairRequestMsg rr;
  rr.dest = 4;
  rr.seg_id = 7;
  rr.pkt_id = 513;
  const auto& d = round_trip<RepairRequestMsg>(make(rr));
  EXPECT_EQ(d.dest, 4);
  EXPECT_EQ(d.pkt_id, 513);
}

TEST(Codec, DelugeMessages) {
  DelugeSummaryMsg s;
  s.version = 2;
  s.total_pages = 8;
  s.complete_pages = 5;
  s.program_bytes = 9000;
  EXPECT_EQ(round_trip<DelugeSummaryMsg>(make(s)).complete_pages, 5);

  DelugeRequestMsg r;
  r.dest = 3;
  r.page = 6;
  r.missing = util::Bitmap(48);
  r.missing.set(47);
  const auto& dr = round_trip<DelugeRequestMsg>(make(r));
  EXPECT_EQ(dr.page, 6);
  EXPECT_TRUE(dr.missing.test(47));

  DelugeDataMsg d;
  d.version = 2;
  d.page = 6;
  d.pkt_id = 13;
  d.payload = {1, 2, 3};
  EXPECT_EQ(round_trip<DelugeDataMsg>(make(d)).payload, d.payload);
}

TEST(Codec, MoapMessages) {
  MoapPublishMsg p;
  p.version = 3;
  p.total_packets = 444;
  p.program_bytes = 9768;
  EXPECT_EQ(round_trip<MoapPublishMsg>(make(p)).total_packets, 444);
  MoapSubscribeMsg s;
  s.dest = 2;
  EXPECT_EQ(round_trip<MoapSubscribeMsg>(make(s)).dest, 2);
  MoapDataMsg d;
  d.version = 3;
  d.pkt_id = 443;
  d.payload = {9, 8, 7};
  EXPECT_EQ(round_trip<MoapDataMsg>(make(d)).pkt_id, 443);
  MoapNackMsg n;
  n.dest = 2;
  n.pkt_id = 100;
  EXPECT_EQ(round_trip<MoapNackMsg>(make(n)).pkt_id, 100);
}

TEST(Codec, XnpMessages) {
  XnpDataMsg d;
  d.pkt_id = 9;
  d.total_packets = 64;
  d.payload = {5};
  EXPECT_EQ(round_trip<XnpDataMsg>(make(d)).total_packets, 64);
  XnpQueryMsg q;
  q.total_packets = 64;
  EXPECT_EQ(round_trip<XnpQueryMsg>(make(q)).total_packets, 64);
  XnpFixRequestMsg f;
  f.pkt_id = 31;
  EXPECT_EQ(round_trip<XnpFixRequestMsg>(make(f)).pkt_id, 31);
}

TEST(Codec, CorruptFramesRejected) {
  auto frame = encode(make(AdvertisementMsg{}));
  // Single-byte corruption anywhere must fail the CRC.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto bad = frame;
    bad[i] ^= 0x40;
    EXPECT_FALSE(decode(bad).has_value()) << "survived flip at " << i;
  }
  // Truncation.
  auto cut = frame;
  cut.pop_back();
  EXPECT_FALSE(decode(cut).has_value());
  EXPECT_FALSE(decode({}).has_value());
  EXPECT_FALSE(decode({1, 2, 3}).has_value());
}

TEST(Codec, UnknownTypeRejected) {
  auto frame = encode(make(AdvertisementMsg{}));
  frame[4] = 0xEE;  // type byte
  // Fix up the CRC so only the type check can reject it.
  const std::uint16_t crc = crc16(frame.data(), frame.size() - 2);
  frame[frame.size() - 2] = static_cast<std::uint8_t>(crc & 0xFF);
  frame[frame.size() - 1] = static_cast<std::uint8_t>(crc >> 8);
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Codec, SpanDecodeMatchesVectorDecode) {
  // decode() is span-style so pooled/borrowed buffers parse in place; the
  // vector overload is a thin shim over the same parser.
  DataMsg m;
  m.seg_id = 2;
  m.pkt_id = 17;
  m.payload.assign(22, 0xC3);
  const auto frame = encode(make(std::move(m)));

  const auto from_span = decode(frame.data(), frame.size());
  const auto from_vector = decode(frame);
  ASSERT_TRUE(from_span.has_value());
  ASSERT_TRUE(from_vector.has_value());
  EXPECT_EQ(from_span->src, from_vector->src);
  EXPECT_EQ(from_span->type(), from_vector->type());
  EXPECT_EQ(from_span->as<DataMsg>()->payload,
            from_vector->as<DataMsg>()->payload);

  // Span bounds are honoured: a short length is a truncated frame, not a
  // read past the end.
  EXPECT_FALSE(decode(frame.data(), frame.size() - 1).has_value());
  EXPECT_FALSE(decode(frame.data(), 0).has_value());
}

TEST(Codec, Crc16KnownVector) {
  // CRC-16-CCITT (init 0xFFFF) of "123456789" is 0x29B1.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16(digits, 9), 0x29B1);
}

TEST(Codec, WireSizeModelMatchesEncoding) {
  // wire_bytes() = preamble/sync (10, physical only) + frame bytes. The
  // codec adds small explicit length/size fields the abstract model folds
  // into its header estimate, so the encoded frame must agree with the
  // model within a couple of bytes — enough to keep airtime honest.
  const Packet samples[] = {
      make(AdvertisementMsg{}),  make(DownloadRequestMsg{}),
      make(StartDownloadMsg{}),  make(EndDownloadMsg{}),
      make(QueryMsg{}),          make(RepairRequestMsg{}),
      make(DelugeSummaryMsg{}),  make(DelugeRequestMsg{}),
      make(MoapPublishMsg{}),    make(MoapSubscribeMsg{}),
      make(MoapNackMsg{}),       make(XnpQueryMsg{}),
      make(XnpFixRequestMsg{}),
  };
  for (const Packet& pkt : samples) {
    const auto frame = encode(pkt);
    const std::size_t modelled = pkt.wire_bytes() - kPhysicalOnlyBytes;
    EXPECT_NEAR(static_cast<double>(frame.size()),
                static_cast<double>(modelled), 2.0)
        << to_string(pkt.type());
  }
}

}  // namespace
}  // namespace mnp::net

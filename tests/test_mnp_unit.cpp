// MNP state-machine unit tests.
//
// A scripted "puppet" application shares the channel with one real MnpNode
// and plays arbitrary protocol roles (advertiser, sender, requester), so
// every transition of the paper's Fig.-4 machine can be exercised and
// observed deterministically.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mnp/mnp_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"

namespace mnp::core {
namespace {

using net::Packet;
using net::PacketType;

/// Test double that records everything it hears and sends what it's told.
class PuppetApp final : public node::Application {
 public:
  void start(node::Node& node) override {
    node_ = &node;
    node_->radio_on();
  }
  void on_packet(const Packet& pkt) override { received.push_back(pkt); }
  bool has_complete_image() const override { return true; }

  void send(Packet pkt) { node_->send(std::move(pkt)); }

  std::vector<Packet> received;
  std::vector<const Packet*> of_type(PacketType t) const {
    std::vector<const Packet*> out;
    for (const auto& p : received) {
      if (p.type() == t) out.push_back(&p);
    }
    return out;
  }

 private:
  node::Node* node_ = nullptr;
};

/// Fast protocol constants so unit scenarios finish in simulated seconds.
MnpConfig fast_config() {
  MnpConfig c;
  c.packets_per_segment = 8;
  c.payload_bytes = 4;
  c.adv_rounds_before_decision = 3;
  c.adv_interval_min = sim::msec(40);
  c.adv_interval_max = sim::msec(80);
  c.adv_interval_cap = sim::msec(2560);
  c.request_delay_max = sim::msec(20);
  c.per_packet_time_estimate = sim::msec(25);
  c.download_idle_timeout = sim::msec(800);
  c.update_missing_threshold = 3;
  return c;
}

class MnpUnitTest : public ::testing::Test {
 protected:
  // Node 0: puppet; node 1: MnpNode under test (ids matter for tie-breaks:
  // some tests use a third puppet at node 2).
  void build(std::uint16_t segments, bool node_is_base,
             std::size_t nodes = 2, MnpConfig cfg = fast_config()) {
    cfg_ = cfg;
    sim_ = std::make_unique<sim::Simulator>(7);
    net::Topology topo;
    for (std::size_t i = 0; i < nodes; ++i) {
      topo.add({static_cast<double>(i) * 10.0, 0.0});
    }
    network_ = std::make_unique<node::Network>(
        *sim_, std::move(topo), [](const net::Topology& t) {
          // Everyone hears everyone: 100 ft disk on a <=30 ft line.
          return std::make_unique<net::DiskLinkModel>(t, 100.0);
        });
    image_ = std::make_shared<const ProgramImage>(
        1, static_cast<std::size_t>(segments) * cfg_.packets_per_segment *
               cfg_.payload_bytes,
        cfg_.packets_per_segment, cfg_.payload_bytes);

    auto puppet = std::make_unique<PuppetApp>();
    puppet_ = puppet.get();
    network_->node(0).set_application(std::move(puppet));

    auto mnp = node_is_base ? std::make_unique<MnpNode>(cfg_, image_)
                            : std::make_unique<MnpNode>(cfg_);
    mnp_ = mnp.get();
    network_->node(1).set_application(std::move(mnp));

    for (std::size_t i = 2; i < nodes; ++i) {
      auto extra = std::make_unique<PuppetApp>();
      extra_puppets_.push_back(extra.get());
      network_->node(i).set_application(std::move(extra));
    }
    for (net::NodeId i = 0; i < network_->size(); ++i) network_->node(i).boot();
  }

  void run_for(sim::Time span) { sim_->run_until(sim_->now() + span); }

  net::AdvertisementMsg make_adv(std::uint16_t seg, std::uint8_t req_ctr) const {
    net::AdvertisementMsg adv;
    adv.program_id = image_->id();
    adv.program_bytes = static_cast<std::uint32_t>(image_->total_bytes());
    adv.program_segments = image_->num_segments();
    adv.seg_id = seg;
    adv.req_ctr = req_ctr;
    return adv;
  }

  void puppet_sends_adv(std::uint16_t seg, std::uint8_t req_ctr) {
    Packet pkt;
    pkt.payload = make_adv(seg, req_ctr);
    puppet_->send(std::move(pkt));
  }

  void puppet_sends_data(std::uint16_t seg, std::uint16_t pkt_id) {
    Packet pkt;
    net::DataMsg d;
    d.program_id = image_->id();
    d.seg_id = seg;
    d.pkt_id = static_cast<std::uint8_t>(pkt_id);
    d.payload = image_->packet_payload(seg, pkt_id);
    pkt.payload = std::move(d);
    puppet_->send(std::move(pkt));
  }

  void puppet_starts_download(std::uint16_t seg) {
    Packet pkt;
    pkt.payload =
        net::StartDownloadMsg{image_->id(), seg, cfg_.packets_per_segment};
    puppet_->send(std::move(pkt));
  }

  /// Walks the node under test through a full download of `seg` from the
  /// puppet, delivering every packet.
  void deliver_segment(std::uint16_t seg) {
    puppet_sends_adv(seg, 0);
    run_for(sim::msec(200));
    puppet_starts_download(seg);
    run_for(sim::msec(100));
    for (std::uint16_t p = 0; p < image_->packets_in_segment(seg); ++p) {
      puppet_sends_data(seg, p);
      run_for(sim::msec(50));
    }
  }

  MnpConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<node::Network> network_;
  std::shared_ptr<const ProgramImage> image_;
  PuppetApp* puppet_ = nullptr;
  std::vector<PuppetApp*> extra_puppets_;
  MnpNode* mnp_ = nullptr;
};

TEST_F(MnpUnitTest, BaseBootsAdvertisingItsProgram) {
  build(2, /*node_is_base=*/true);
  EXPECT_EQ(mnp_->state(), MnpNode::State::kAdvertise);
  EXPECT_TRUE(mnp_->has_complete_image());
  run_for(sim::msec(500));
  const auto advs = puppet_->of_type(PacketType::kAdvertisement);
  ASSERT_FALSE(advs.empty());
  const auto* adv = advs[0]->as<net::AdvertisementMsg>();
  EXPECT_EQ(adv->program_segments, 2);
  EXPECT_EQ(adv->program_bytes, image_->total_bytes());
}

TEST_F(MnpUnitTest, FreshNodeBootsIdle) {
  build(1, /*node_is_base=*/false);
  EXPECT_EQ(mnp_->state(), MnpNode::State::kIdle);
  EXPECT_FALSE(mnp_->has_complete_image());
  EXPECT_EQ(mnp_->received_segments(), 0);
}

TEST_F(MnpUnitTest, AdvertisementDrawsDownloadRequest) {
  build(1, false);
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  const auto reqs = puppet_->of_type(PacketType::kDownloadRequest);
  ASSERT_EQ(reqs.size(), 1u);
  const auto* req = reqs[0]->as<net::DownloadRequestMsg>();
  EXPECT_EQ(req->dest, 0);            // destined to the puppet
  EXPECT_EQ(req->seg_id, 1);          // expects segment 1
  EXPECT_TRUE(req->request_all);      // fresh node: everything missing
}

TEST_F(MnpUnitTest, PartialLossRequestsCarryMissingWindow) {
  build(1, false);
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  puppet_starts_download(1);
  run_for(sim::msec(100));
  puppet_sends_data(1, 0);  // receive packets 0 and 2; miss the rest
  run_for(sim::msec(50));
  puppet_sends_data(1, 2);
  run_for(sim::msec(50));
  run_for(sim::sec(3));  // stall -> fail -> back to requesting
  puppet_->received.clear();
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  const auto reqs = puppet_->of_type(PacketType::kDownloadRequest);
  ASSERT_FALSE(reqs.empty());
  const auto* req = reqs.back()->as<net::DownloadRequestMsg>();
  EXPECT_FALSE(req->request_all);
  EXPECT_EQ(req->window_base, 1);         // first missing packet
  EXPECT_TRUE(req->missing.test(0));      // packet 1 missing
  EXPECT_FALSE(req->missing.test(1));     // packet 2 present
  EXPECT_TRUE(req->missing.test(2));      // packet 3 missing
}

TEST_F(MnpUnitTest, RequestEchoesAdvertisersReqCtr) {
  build(1, false);
  puppet_sends_adv(1, 5);
  run_for(sim::msec(300));
  const auto reqs = puppet_->of_type(PacketType::kDownloadRequest);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0]->as<net::DownloadRequestMsg>()->req_ctr_echo, 5);
}

TEST_F(MnpUnitTest, StartDownloadSetsParentAndEntersDownload) {
  build(1, false);
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  puppet_starts_download(1);
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kDownload);
  EXPECT_EQ(mnp_->parent(), 0);
}

TEST_F(MnpUnitTest, CompletesSegmentOnceAllPacketsStored) {
  build(1, false);
  deliver_segment(1);
  EXPECT_EQ(mnp_->received_segments(), 1);
  EXPECT_TRUE(mnp_->has_complete_image());
  EXPECT_EQ(mnp_->state(), MnpNode::State::kAdvertise);
  EXPECT_EQ(network_->stats().completed_count(), 1u);
  // Exact image in EEPROM.
  auto stored = network_->node(1).eeprom().read(0, image_->total_bytes());
  EXPECT_TRUE(image_->matches(stored));
}

TEST_F(MnpUnitTest, DuplicateDataWrittenToEepromOnlyOnce) {
  build(1, false);
  network_->node(1).eeprom().set_track_write_once(true);
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  puppet_starts_download(1);
  run_for(sim::msec(100));
  puppet_sends_data(1, 0);
  run_for(sim::msec(50));
  puppet_sends_data(1, 0);  // duplicate
  run_for(sim::msec(50));
  EXPECT_EQ(network_->node(1).eeprom().double_writes(), 0u);
  EXPECT_EQ(network_->node(1).eeprom().total_writes(), 1u);
}

TEST_F(MnpUnitTest, DataForExpectedSegmentImpliesDownload) {
  // Missed StartDownload: the first data packet joins the stream.
  build(1, false);
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  puppet_sends_data(1, 2);
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kDownload);
  EXPECT_EQ(mnp_->parent(), 0);
}

TEST_F(MnpUnitTest, SmallResidualLossRepairsThroughQueryUpdate) {
  build(1, false);
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  puppet_starts_download(1);
  run_for(sim::msec(100));
  for (std::uint16_t p = 0; p < 8; ++p) {
    if (p == 3) continue;  // one packet "lost"
    puppet_sends_data(1, p);
    run_for(sim::msec(50));
  }
  Packet end;
  end.payload = net::EndDownloadMsg{1};
  puppet_->send(std::move(end));
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kUpdate);

  Packet query;
  query.payload = net::QueryMsg{1};
  puppet_->send(std::move(query));
  run_for(sim::msec(100));
  const auto repairs = puppet_->of_type(PacketType::kRepairRequest);
  ASSERT_FALSE(repairs.empty());
  EXPECT_EQ(repairs.back()->as<net::RepairRequestMsg>()->pkt_id, 3);

  puppet_sends_data(1, 3);
  run_for(sim::msec(100));
  EXPECT_TRUE(mnp_->has_complete_image());
}

TEST_F(MnpUnitTest, HeavyResidualLossFailsInsteadOfUpdating) {
  build(1, false);
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  puppet_starts_download(1);
  run_for(sim::msec(100));
  puppet_sends_data(1, 0);  // only 1 of 8 received; threshold is 3
  run_for(sim::msec(50));
  Packet end;
  end.payload = net::EndDownloadMsg{1};
  puppet_->send(std::move(end));
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kIdle);  // fail -> idle
  EXPECT_GE(mnp_->fail_count(), 1u);
  EXPECT_EQ(mnp_->received_segments(), 0);
}

TEST_F(MnpUnitTest, DownloadStallTimesOutToFail) {
  build(1, false);
  puppet_sends_adv(1, 0);
  run_for(sim::msec(300));
  puppet_starts_download(1);
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kDownload);
  run_for(sim::sec(3));  // nothing arrives; idle timeout is 800 ms
  EXPECT_EQ(mnp_->state(), MnpNode::State::kIdle);
  EXPECT_GE(mnp_->fail_count(), 1u);
}

TEST_F(MnpUnitTest, UninterestingStartDownloadSendsNodeToSleep) {
  build(2, false);
  puppet_sends_adv(1, 0);  // teach it the program first
  run_for(sim::msec(300));
  puppet_starts_download(2);  // segment it cannot use yet
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kSleep);
  EXPECT_FALSE(network_->node(1).radio_is_on());
  // And it wakes up again on its own.
  run_for(sim::sec(2));
  EXPECT_TRUE(network_->node(1).radio_is_on());
}

TEST_F(MnpUnitTest, SourceLosesElectionToBusierSourceAndSleeps) {
  build(1, /*node_is_base=*/true);
  run_for(sim::msec(100));
  puppet_sends_adv(1, 4);  // puppet claims 4 requesters; base has 0
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kSleep);
  EXPECT_FALSE(network_->node(1).radio_is_on());
}

TEST_F(MnpUnitTest, SourceIgnoresQuieterCompetitor) {
  build(1, true);
  run_for(sim::msec(100));
  puppet_sends_adv(1, 0);  // no requesters: no reason to yield
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kAdvertise);
}

TEST_F(MnpUnitTest, OverheardRequestToBusierSourceSilencesUs) {
  // Hidden-terminal defence: the request is destined to node 2 (which we
  // may not even hear) but carries its ReqCtr.
  build(1, true, /*nodes=*/3);
  run_for(sim::msec(100));
  Packet pkt;
  net::DownloadRequestMsg req;
  req.dest = 2;
  req.seg_id = 1;
  req.req_ctr_echo = 7;
  req.missing = util::Bitmap::all_set(8);
  pkt.payload = req;
  puppet_->send(std::move(pkt));
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kSleep);
}

TEST_F(MnpUnitTest, LoserNeedingTheSegmentWaitsAwakeInstead) {
  // A node that already has segment 1 (of 2) must NOT sleep when the
  // election winner is about to transmit segment 2 — it would sleep
  // through its own download.
  build(2, false);
  deliver_segment(1);
  ASSERT_EQ(mnp_->received_segments(), 1);
  ASSERT_EQ(mnp_->state(), MnpNode::State::kAdvertise);
  puppet_sends_adv(2, 6);  // busier source offering exactly what we need
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kIdle);  // waiting, radio ON
  EXPECT_TRUE(network_->node(1).radio_is_on());
  // And the wait converts into a download when the transfer starts.
  puppet_starts_download(2);
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kDownload);
}

TEST_F(MnpUnitTest, ForwardStreamsOnlyRequestedPackets) {
  build(1, true);
  run_for(sim::msec(50));
  Packet pkt;
  net::DownloadRequestMsg req;
  req.dest = 1;  // the base under test
  req.program_id = image_->id();
  req.seg_id = 1;
  req.req_ctr_echo = 0;
  req.missing = util::Bitmap(8);
  req.missing.set(3);
  req.missing.set(7);
  pkt.payload = req;
  puppet_->send(std::move(pkt));
  run_for(sim::sec(3));  // let K advertisements elapse and forwarding run
  const auto data = puppet_->of_type(PacketType::kData);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0]->as<net::DataMsg>()->pkt_id, 3);
  EXPECT_EQ(data[1]->as<net::DataMsg>()->pkt_id, 7);
  EXPECT_FALSE(puppet_->of_type(PacketType::kStartDownload).empty());
  EXPECT_FALSE(puppet_->of_type(PacketType::kEndDownload).empty());
}

TEST_F(MnpUnitTest, SenderAnswersRepairRequestsInQueryPhase) {
  build(1, true);
  run_for(sim::msec(50));
  Packet pkt;
  net::DownloadRequestMsg req;
  req.dest = 1;
  req.program_id = image_->id();
  req.seg_id = 1;
  req.missing = util::Bitmap(8);
  req.missing.set(0);
  pkt.payload = req;
  puppet_->send(std::move(pkt));
  run_for(sim::msec(800));  // forward finishes, node sits in Query
  ASSERT_EQ(mnp_->state(), MnpNode::State::kQuery);
  ASSERT_FALSE(puppet_->of_type(PacketType::kQuery).empty());
  const auto before = puppet_->of_type(PacketType::kData).size();
  Packet repair;
  repair.payload = net::RepairRequestMsg{1, 1, 5};
  puppet_->send(std::move(repair));
  run_for(sim::msec(300));
  EXPECT_EQ(puppet_->of_type(PacketType::kData).size(), before + 1);
}

TEST_F(MnpUnitTest, AdvertisementIntervalBacksOffWhenUnwanted) {
  build(1, true);
  run_for(sim::sec(20));
  const auto advs = puppet_->of_type(PacketType::kAdvertisement);
  ASSERT_GE(advs.size(), 4u);
  // With nobody requesting, advertisements must become sparse: far fewer
  // than 20s / ~60ms ≈ 300 fixed-rate advertisements.
  EXPECT_LT(advs.size(), 60u);
}

TEST_F(MnpUnitTest, NeighborhoodCompletionEstimate) {
  build(1, true);
  EXPECT_FALSE(mnp_->neighborhood_estimated_complete());
  run_for(sim::sec(5));  // K quiet advertisements of the last segment
  EXPECT_TRUE(mnp_->neighborhood_estimated_complete());
}

TEST_F(MnpUnitTest, RebootRequiresExternalSignalAndVerifiedImage) {
  build(1, false);
  EXPECT_FALSE(mnp_->reboot(*image_));  // nothing received yet
  deliver_segment(1);
  EXPECT_TRUE(mnp_->has_complete_image());
  EXPECT_TRUE(mnp_->reboot(*image_));
}

TEST_F(MnpUnitTest, BatteryAwareAdvertisingScalesTxPower) {
  auto cfg = fast_config();
  cfg.battery_aware = true;
  build(1, true, 2, cfg);
  mnp_->set_battery_level(0.5);
  run_for(sim::sec(1));
  const auto advs = puppet_->of_type(PacketType::kAdvertisement);
  ASSERT_FALSE(advs.empty());
  EXPECT_DOUBLE_EQ(advs.back()->power_scale, 0.5);
}

TEST_F(MnpUnitTest, BatteryLevelClampsToQuarterPowerFloor) {
  auto cfg = fast_config();
  cfg.battery_aware = true;
  build(1, true, 2, cfg);
  mnp_->set_battery_level(0.01);
  run_for(sim::sec(1));
  const auto advs = puppet_->of_type(PacketType::kAdvertisement);
  ASSERT_FALSE(advs.empty());
  EXPECT_DOUBLE_EQ(advs.back()->power_scale, 0.25);
}

TEST_F(MnpUnitTest, StateNamesAreStable) {
  EXPECT_EQ(MnpNode::state_name(MnpNode::State::kIdle), "Idle");
  EXPECT_EQ(MnpNode::state_name(MnpNode::State::kDownload), "Download");
  EXPECT_EQ(MnpNode::state_name(MnpNode::State::kAdvertise), "Advertise");
  EXPECT_EQ(MnpNode::state_name(MnpNode::State::kForward), "Forward");
  EXPECT_EQ(MnpNode::state_name(MnpNode::State::kQuery), "Query");
  EXPECT_EQ(MnpNode::state_name(MnpNode::State::kUpdate), "Update");
  EXPECT_EQ(MnpNode::state_name(MnpNode::State::kSleep), "Sleep");
}

}  // namespace
}  // namespace mnp::core

// Crash/reboot resume: the EEPROM progress journal and every protocol's
// recovery path. A node killed mid-download must come back, find its
// persisted progress (RAM is gone), resume instead of restarting, and the
// network must still converge to byte-exact images.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/deluge_node.hpp"
#include "baselines/moap_node.hpp"
#include "boot/progress_journal.hpp"
#include "harness/experiment.hpp"
#include "mnp/mnp_node.hpp"
#include "mnp/program_image.hpp"
#include "net/link_model.hpp"
#include "node/network.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "storage/eeprom.hpp"

namespace mnp {
namespace {

// ---------------------------------------------------------------------------
// ProgressJournal
// ---------------------------------------------------------------------------

TEST(ProgressJournal, AppendsAndRecoversInOrder) {
  storage::Eeprom eeprom;
  boot::ProgressJournal journal(eeprom);
  ASSERT_TRUE(journal.usable(/*image_end=*/1024));
  EXPECT_FALSE(journal.recover().has_value());

  EXPECT_TRUE(journal.append(7, 5632, 1));
  EXPECT_TRUE(journal.append(7, 5632, 2));
  EXPECT_TRUE(journal.append(7, 5632, 3));
  const auto rec = journal.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->program_id, 7);
  EXPECT_EQ(rec->program_bytes, 5632u);
  EXPECT_EQ(rec->units, (std::vector<std::uint16_t>{1, 2, 3}));
}

TEST(ProgressJournal, RecoverySurvivesSimulatedPowerLoss) {
  // The journal's whole point: a *fresh* ProgressJournal object (RAM
  // state lost) over the same EEPROM sees everything appended before the
  // crash.
  storage::Eeprom eeprom;
  {
    boot::ProgressJournal journal(eeprom);
    ASSERT_TRUE(journal.append(9, 2816, 1));
  }
  boot::ProgressJournal after_reboot(eeprom);
  const auto rec = after_reboot.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->program_id, 9);
  EXPECT_EQ(rec->units, (std::vector<std::uint16_t>{1}));
  // And appends continue after the existing records, not over them.
  EXPECT_TRUE(after_reboot.append(9, 2816, 2));
  EXPECT_EQ(after_reboot.recover()->units,
            (std::vector<std::uint16_t>{1, 2}));
}

TEST(ProgressJournal, NewProgramIdentitySupersedesOldRecords) {
  // An incremental-update run reuses the mote: records for the previous
  // program must not leak into the new download's recovery.
  storage::Eeprom eeprom;
  boot::ProgressJournal journal(eeprom);
  ASSERT_TRUE(journal.append(7, 5632, 1));
  ASSERT_TRUE(journal.append(7, 5632, 2));
  ASSERT_TRUE(journal.append(8, 8448, 1));
  const auto rec = journal.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->program_id, 8);
  EXPECT_EQ(rec->program_bytes, 8448u);
  EXPECT_EQ(rec->units, (std::vector<std::uint16_t>{1}));
}

TEST(ProgressJournal, RefusesWhenTheImageWouldOverlapTheTail) {
  storage::Eeprom small(boot::ProgressJournal::kRegionBytes / 2);
  EXPECT_FALSE(boot::ProgressJournal(small).usable(16));

  storage::Eeprom eeprom;  // default capacity
  boot::ProgressJournal journal(eeprom);
  EXPECT_TRUE(journal.usable(journal.region_offset()));
  EXPECT_FALSE(journal.usable(journal.region_offset() + 1));
}

TEST(ProgressJournal, CorruptSlotEndsTheRecoveredRun) {
  storage::Eeprom eeprom;
  boot::ProgressJournal journal(eeprom);
  ASSERT_TRUE(journal.append(7, 5632, 1));
  ASSERT_TRUE(journal.append(7, 5632, 2));
  // Flip a byte inside slot 0: its CRC fails, so recovery finds no valid
  // prefix and reports nothing (slot 1 sits beyond the first bad slot).
  const std::size_t slot0 = journal.region_offset();
  auto raw = eeprom.read(slot0, 4);
  raw[0] ^= 0xFF;
  eeprom.write(slot0, raw);
  EXPECT_FALSE(journal.recover().has_value());
}

// ---------------------------------------------------------------------------
// In-vivo resume: kill a downloading node, reboot it, watch it pick up
// where the journal says it left off.
// ---------------------------------------------------------------------------

constexpr std::uint16_t kProgramId = 7;

node::Network::LinkModelFactory disk_links(double range) {
  return [range](const net::Topology& topo) {
    return std::make_unique<net::DiskLinkModel>(topo, range);
  };
}

TEST(RebootResume, MnpNodeResumesFromJournaledSegments) {
  sim::Simulator sim(11);
  node::Network network(sim, net::Topology::grid(3, 3, 10.0),
                        disk_links(15.0));
  core::MnpConfig mc;
  mc.journal_progress = true;
  const std::size_t bytes =
      std::size_t{3} * mc.packets_per_segment * mc.payload_bytes;
  auto image = std::make_shared<const core::ProgramImage>(
      kProgramId, bytes, mc.packets_per_segment, mc.payload_bytes);
  for (net::NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<core::MnpNode>(mc, image)
                : std::make_unique<core::MnpNode>(mc));
  }
  network.boot_all(sim::msec(50));

  auto* victim =
      dynamic_cast<core::MnpNode*>(network.node(8).application());
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(sim.run_until_condition(sim::hours(1), [victim] {
    return victim->received_segments() == 1;
  }));
  network.node(8).kill();

  // Mid-crash, the EEPROM journal already holds the completed segment.
  boot::ProgressJournal journal(network.node(8).eeprom());
  const auto rec = journal.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->program_id, kProgramId);
  EXPECT_EQ(rec->program_bytes, bytes);
  EXPECT_EQ(rec->units, (std::vector<std::uint16_t>{1}));

  sim.run_until(sim.now() + sim::sec(30));
  network.node(8).reboot();
  // RAM was wiped by reset_for_reboot; segment 1 is back from EEPROM.
  EXPECT_EQ(victim->received_segments(), 1);
  EXPECT_FALSE(victim->has_complete_image());

  ASSERT_TRUE(sim.run_until_condition(sim::hours(2), [&network] {
    return network.complete_image_count() == network.size();
  }));
  const auto stored =
      network.node(8).eeprom().read(mc.eeprom_base_offset, bytes);
  EXPECT_TRUE(image->matches(stored));
}

TEST(RebootResume, DelugeNodeResumesFromJournaledPages) {
  sim::Simulator sim(12);
  node::Network network(sim, net::Topology::grid(3, 3, 10.0),
                        disk_links(15.0));
  baselines::DelugeConfig dc;
  dc.journal_progress = true;
  const std::size_t bytes =
      std::size_t{3} * dc.packets_per_page * dc.payload_bytes;
  auto image = std::make_shared<const core::ProgramImage>(
      kProgramId, bytes, dc.packets_per_page, dc.payload_bytes);
  for (net::NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<baselines::DelugeNode>(dc, image)
                : std::make_unique<baselines::DelugeNode>(dc));
  }
  network.boot_all(sim::msec(50));

  auto* victim =
      dynamic_cast<baselines::DelugeNode*>(network.node(8).application());
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(sim.run_until_condition(sim::hours(1), [victim] {
    return victim->complete_pages() == 1;
  }));
  network.node(8).kill();
  sim.run_until(sim.now() + sim::sec(30));
  network.node(8).reboot();
  EXPECT_EQ(victim->complete_pages(), 1);
  EXPECT_FALSE(victim->has_complete_image());

  ASSERT_TRUE(sim.run_until_condition(sim::hours(2), [&network] {
    return network.complete_image_count() == network.size();
  }));
  EXPECT_TRUE(image->matches(network.node(8).eeprom().read(0, bytes)));
}

TEST(RebootResume, MoapNodeJournalsChunksAndConverges) {
  sim::Simulator sim(13);
  node::Network network(sim, net::Topology::grid(3, 3, 10.0),
                        disk_links(15.0));
  baselines::MoapConfig oc;
  oc.journal_progress = true;
  // > 64 packets so at least one chunk is journaled mid-stream.
  const std::size_t total_packets = 160;
  const std::size_t bytes = total_packets * oc.payload_bytes;
  auto image = std::make_shared<const core::ProgramImage>(
      kProgramId, bytes, 128, oc.payload_bytes);
  for (net::NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<baselines::MoapNode>(oc, image)
                : std::make_unique<baselines::MoapNode>(oc));
  }
  network.boot_all(sim::msec(50));

  // Let node 1 (a base neighbor) stream until its first 64-packet chunk
  // is durable, then pull the plug.
  ASSERT_TRUE(sim.run_until_condition(sim::hours(1), [&network] {
    boot::ProgressJournal journal(network.node(1).eeprom());
    return journal.entries() >= 1;
  }));
  network.node(1).kill();
  boot::ProgressJournal journal(network.node(1).eeprom());
  const auto rec = journal.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->program_id, kProgramId);
  EXPECT_EQ(rec->units.front(), 1);  // chunk 1 = packets [0, 64)

  sim.run_until(sim.now() + sim::sec(30));
  network.node(1).reboot();
  ASSERT_TRUE(sim.run_until_condition(sim::hours(2), [&network] {
    return network.complete_image_count() == network.size();
  }));
  EXPECT_TRUE(image->matches(network.node(1).eeprom().read(0, bytes)));
}

// ---------------------------------------------------------------------------
// Harness-level churn: the scenario engine drives the same kill/reboot
// through run_experiment for every protocol.
// ---------------------------------------------------------------------------

class RebootConvergence : public ::testing::TestWithParam<harness::Protocol> {};

TEST_P(RebootConvergence, KilledNodeRejoinsAndNetworkConverges) {
  harness::ExperimentConfig cfg;
  cfg.protocol = GetParam();
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(2);
  cfg.scenario = scenario::ScenarioBuilder{}
                     .kill(sim::sec(30), 4, /*down_for=*/sim::sec(60))
                     .build("mid-download-crash");
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.scenario_error.empty()) << r.scenario_error;
  EXPECT_EQ(r.scenario_injected, 2u);  // the kill and the reboot
  EXPECT_EQ(r.dead_nodes, 0u);
  EXPECT_TRUE(r.all_completed)
      << "completed " << r.completed_count << "/" << r.nodes.size();
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

INSTANTIATE_TEST_SUITE_P(Protocols, RebootConvergence,
                         ::testing::Values(harness::Protocol::kMnp,
                                           harness::Protocol::kDeluge,
                                           harness::Protocol::kMoap,
                                           harness::Protocol::kNcast),
                         [](const auto& info) {
                           return harness::protocol_name(info.param);
                         });

}  // namespace
}  // namespace mnp

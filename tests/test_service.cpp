// Fleet service tests (DESIGN.md §14): the JSON reader, canonical
// manifest hashing (CLI flags vs JSON body must collide), the shared
// asset caches (shared-asset runs must be bit-identical to fresh-asset
// runs), the dedup'ing run store, and the whole HTTP surface end-to-end
// over a loopback socket — including the contract the dedup cache rests
// on: stored metrics bytes equal a fresh one-shot simulation's export.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "service/asset_cache.hpp"
#include "service/http_client.hpp"
#include "service/json.hpp"
#include "service/manifest.hpp"
#include "service/run_request.hpp"
#include "service/run_store.hpp"
#include "service/server.hpp"

namespace mnp {
namespace {

// A config small enough that a full dissemination finishes in well under
// a second: every HTTP test runs real simulations.
const std::vector<std::pair<std::string, std::string>> kSmallRun = {
    {"rows", "5"},     {"cols", "5"},
    {"segments", "1"}, {"max_sim_time_s", "900"},
};

harness::ExperimentConfig small_config() {
  harness::ExperimentConfig cfg;
  std::string error;
  for (const auto& [key, value] : kSmallRun) {
    EXPECT_TRUE(service::apply_run_option(cfg, key, value, &error)) << error;
  }
  return cfg;
}

// --- JSON reader --------------------------------------------------------

TEST(ServiceJson, ParsesScalarsArraysObjects) {
  const auto r = service::parse_json(
      R"({"a": 1.5, "b": "x\nA", "c": [true, null, -2], "d": {"e": 7}})");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());
  EXPECT_DOUBLE_EQ(r.value.find("a")->number, 1.5);
  EXPECT_EQ(r.value.find("b")->string, "x\nA");
  ASSERT_TRUE(r.value.find("c")->is_array());
  ASSERT_EQ(r.value.find("c")->items.size(), 3u);
  EXPECT_TRUE(r.value.find("c")->items[0].bool_or(false));
  EXPECT_TRUE(r.value.find("c")->items[1].is_null());
  EXPECT_DOUBLE_EQ(r.value.find("c")->items[2].number, -2.0);
  EXPECT_DOUBLE_EQ(r.value.find("d")->find("e")->number, 7.0);
}

TEST(ServiceJson, RejectsMalformedInput) {
  EXPECT_FALSE(service::parse_json("").ok);
  EXPECT_FALSE(service::parse_json("{").ok);
  EXPECT_FALSE(service::parse_json("{} trailing").ok);
  EXPECT_FALSE(service::parse_json("{\"a\": }").ok);
  EXPECT_FALSE(service::parse_json("[1, 2,]").ok);
  EXPECT_FALSE(service::parse_json("nul").ok);
}

TEST(ServiceJson, RoundTripsWriterOutput) {
  const std::string body = service::run_request_json(
      kSmallRun, "# scenario\n", {1, 2, 3});
  const auto r = service::parse_json(body);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.value.find("config")->find("rows")->string, "5");
  EXPECT_EQ(r.value.find("seeds")->items.size(), 3u);
}

// --- canonical manifests ------------------------------------------------

TEST(ServiceManifest, CliAndJsonSpellingsHashIdentically) {
  // The same run described twice: applied directly (what mnp_sim_cli
  // does) and routed through the JSON request body (what mnp_fleet
  // submits). The canonical manifests must be byte-identical.
  harness::ExperimentConfig cli = small_config();

  const std::string body = service::run_request_json(kSmallRun, "", {5});
  const auto parsed = service::parse_run_request_text(body);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.request.seeds, std::vector<std::uint64_t>{5});

  EXPECT_EQ(service::canonical_manifest(cli, 5),
            service::canonical_manifest(parsed.request.cfg, 5));
  EXPECT_EQ(service::manifest_hash(cli, 5),
            service::manifest_hash(parsed.request.cfg, 5));
}

TEST(ServiceManifest, TypedJsonScalarsMatchTextualSpellings) {
  // {"rows": 12} (a JSON number) and {"rows": "12"} (the CLI's string)
  // must build the same config.
  const auto typed = service::parse_run_request_text(
      R"({"config": {"rows": 12, "spacing_ft": 12.5, "pipelining": false}})");
  const auto text = service::parse_run_request_text(
      R"({"config": {"rows": "12", "spacing_ft": "12.5",
          "pipelining": "false"}})");
  ASSERT_TRUE(typed.ok) << typed.error;
  ASSERT_TRUE(text.ok) << text.error;
  EXPECT_EQ(service::manifest_hash(typed.request.cfg, 1),
            service::manifest_hash(text.request.cfg, 1));
}

TEST(ServiceManifest, SeedAndEveryKnobChangeTheHash) {
  const harness::ExperimentConfig base = small_config();
  const std::uint64_t h = service::manifest_hash(base, 1);
  EXPECT_NE(h, service::manifest_hash(base, 2));

  // Flipping any request-surface knob must move the hash.
  const std::vector<std::pair<std::string, std::string>> knobs = {
      {"protocol", "deluge"}, {"mac", "tdma"},
      {"rows", "6"},          {"spacing_ft", "11"},
      {"range_ft", "30"},     {"pipelining", "false"},
      {"tie_break", "lifo"},  {"max_sim_time_s", "800"},
  };
  for (const auto& [key, value] : knobs) {
    harness::ExperimentConfig cfg = base;
    std::string error;
    ASSERT_TRUE(service::apply_run_option(cfg, key, value, &error)) << error;
    EXPECT_NE(h, service::manifest_hash(cfg, 1)) << key << "=" << value;
  }
}

TEST(ServiceManifest, ScenarioEventsAreHashed) {
  const char* scn = "scenario kill-one\nat 10s kill 3\n";
  const auto with = service::parse_run_request_text(
      service::run_request_json(kSmallRun, scn, {1}));
  ASSERT_TRUE(with.ok) << with.error;
  const harness::ExperimentConfig plain = small_config();
  EXPECT_NE(service::manifest_hash(plain, 1),
            service::manifest_hash(with.request.cfg, 1));
}

TEST(ServiceManifest, SharedAssetsAreNotPartOfTheManifest) {
  harness::ExperimentConfig cfg = small_config();
  const std::uint64_t before = service::manifest_hash(cfg, 1);
  service::AssetCache cache;
  cache.attach_assets(cfg);
  ASSERT_NE(cfg.shared_topology, nullptr);
  ASSERT_NE(cfg.shared_image, nullptr);
  EXPECT_EQ(before, service::manifest_hash(cfg, 1));
}

TEST(ServiceManifest, RejectsUnknownOptions) {
  const auto r = service::parse_run_request_text(
      R"({"config": {"no_such_knob": 1}})");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no_such_knob"), std::string::npos);
}

// --- asset cache --------------------------------------------------------

TEST(ServiceAssets, InternsTopologiesImagesAndScenarios) {
  service::AssetCache cache;
  const auto g1 = cache.grid(5, 5, 10.0);
  const auto g2 = cache.grid(5, 5, 10.0);
  const auto g3 = cache.grid(5, 5, 10.5);
  EXPECT_EQ(g1.get(), g2.get());
  EXPECT_NE(g1.get(), g3.get());

  const auto i1 = cache.image(7, 2816, 128, 22);
  const auto i2 = cache.image(7, 2816, 128, 22);
  const auto i3 = cache.image(8, 2816, 128, 22);
  EXPECT_EQ(i1.get(), i2.get());
  EXPECT_NE(i1.get(), i3.get());

  const auto s1 = cache.scenario("scenario s\nat 1s kill 0\n");
  const auto s2 = cache.scenario("scenario s\nat 1s kill 0\n");
  EXPECT_EQ(s1.get(), s2.get());
  EXPECT_TRUE(s1->ok);
  const auto bad = cache.scenario("at nonsense\n");
  EXPECT_FALSE(bad->ok);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.topology_hits, 1u);
  EXPECT_EQ(stats.topology_misses, 2u);
  EXPECT_EQ(stats.image_hits, 1u);
  EXPECT_EQ(stats.image_misses, 2u);
  EXPECT_EQ(stats.scenario_hits, 1u);
  EXPECT_EQ(stats.scenario_misses, 2u);
}

TEST(ServiceAssets, SharedAssetRunsAreBitIdenticalToFreshRuns) {
  harness::ExperimentConfig fresh = small_config();
  fresh.seed = 11;
  const harness::RunResult a = harness::run_experiment(fresh);

  harness::ExperimentConfig shared = small_config();
  shared.seed = 11;
  service::AssetCache cache;
  cache.attach_assets(shared);
  const harness::RunResult b = harness::run_experiment(shared);

  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.completed_count, b.completed_count);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].completion, b.nodes[i].completion) << i;
    EXPECT_EQ(a.nodes[i].tx_total, b.nodes[i].tx_total) << i;
    EXPECT_DOUBLE_EQ(a.nodes[i].energy_nah, b.nodes[i].energy_nah) << i;
  }
}

TEST(ServiceAssets, MismatchedSharedAssetsAreIgnored) {
  // A shared topology that does not match rows/cols must not leak into
  // the run: the config fields stay authoritative.
  harness::ExperimentConfig cfg = small_config();
  cfg.seed = 11;
  service::AssetCache cache;
  cfg.shared_topology = cache.grid(8, 8, 15.0);  // wrong shape on purpose
  const harness::RunResult mismatched = harness::run_experiment(cfg);

  harness::ExperimentConfig plain = small_config();
  plain.seed = 11;
  const harness::RunResult reference = harness::run_experiment(plain);
  EXPECT_EQ(reference.completion_time, mismatched.completion_time);
  EXPECT_EQ(reference.transmissions, mismatched.transmissions);
}

// --- run store ----------------------------------------------------------

TEST(ServiceRunStore, DedupsByManifestHash) {
  service::RunStore store;
  const auto first = store.submit(0xabc, "{\"m\":1}", 0.0);
  EXPECT_TRUE(first.created);
  const auto dup = store.submit(0xabc, "{\"m\":1}", 1.0);
  EXPECT_FALSE(dup.created);
  EXPECT_EQ(first.id, dup.id);
  const auto other = store.submit(0xdef, "{\"m\":2}", 2.0);
  EXPECT_TRUE(other.created);
  EXPECT_NE(first.id, other.id);

  service::RunRecord record;
  ASSERT_TRUE(store.get(first.id, &record));
  EXPECT_EQ(record.dedup_hits, 1u);
  EXPECT_EQ(record.state, service::RunState::kQueued);
  EXPECT_FALSE(store.get(9999, nullptr));
}

TEST(ServiceRunStore, LifecycleAndProgress) {
  service::RunStore store;
  const auto sub = store.submit(1, "{}", 0.0);
  EXPECT_FALSE(store.wait_terminal(sub.id, 0));
  ASSERT_TRUE(store.mark_running(sub.id, 1.0));
  EXPECT_FALSE(store.mark_running(sub.id, 1.0));  // not queued anymore
  store.append_progress(sub.id, "{\"p\":1}");
  store.append_progress(sub.id, "{\"p\":2}");

  std::vector<std::string> lines;
  bool done = true;
  std::size_t cursor = store.wait_progress(sub.id, 0, 0, &lines, &done);
  EXPECT_EQ(cursor, 2u);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "{\"p\":2}");
  EXPECT_FALSE(done);

  store.mark_done(sub.id, "{\"r\":1}", "{\"metrics\":1}", 2.0);
  EXPECT_TRUE(store.wait_terminal(sub.id, 0));
  store.wait_progress(sub.id, cursor, 0, nullptr, &done);
  EXPECT_TRUE(done);

  service::RunRecord record;
  ASSERT_TRUE(store.get(sub.id, &record));
  EXPECT_EQ(record.state, service::RunState::kDone);
  EXPECT_EQ(record.metrics_json, "{\"metrics\":1}");
}

// --- HTTP end-to-end ----------------------------------------------------

class FleetHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service::FleetServerOptions options;
    options.port = 0;  // ephemeral
    options.jobs = 2;
    options.progress_interval = sim::sec(5);
    server_ = std::make_unique<service::FleetServer>(options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }
  void TearDown() override { server_->stop(); }

  service::HttpResponse get(const std::string& target) {
    return service::http_request("127.0.0.1", server_->port(), "GET", target,
                                 "");
  }
  service::HttpResponse post(const std::string& target,
                             const std::string& body) {
    return service::http_request("127.0.0.1", server_->port(), "POST", target,
                                 body);
  }

  std::unique_ptr<service::FleetServer> server_;
};

TEST_F(FleetHttpTest, HealthVersionAndErrors) {
  const auto health = get("/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "{\"ok\":true}");

  const auto version = get("/version");
  ASSERT_TRUE(version.ok) << version.error;
  EXPECT_EQ(version.status, 200);
  const auto parsed = service::parse_json(version.body);
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.value.find("git_describe")->string,
            harness::build_git_describe());

  EXPECT_EQ(get("/no/such/endpoint").status, 404);
  EXPECT_EQ(post("/healthz", "").status, 405);
  EXPECT_EQ(post("/runs", "this is not json").status, 400);
  EXPECT_EQ(get("/runs/123456").status, 404);
}

TEST_F(FleetHttpTest, DedupServesBytesIdenticalToFreshSimulation) {
  // Submit three seeds, wait, and check each stored metrics export
  // byte-for-byte against a locally executed *observed* one-shot run of
  // the identical manifest — the full dedup contract: cache hits return
  // exactly what re-simulating would, and the server's trace-free
  // observation changes nothing.
  const std::string body = service::run_request_json(kSmallRun, "", {3, 4, 5});
  const auto submitted = post("/runs", body);
  ASSERT_TRUE(submitted.ok) << submitted.error;
  ASSERT_EQ(submitted.status, 200) << submitted.body;
  const auto parsed = service::parse_json(submitted.body);
  ASSERT_TRUE(parsed.ok);
  const auto* runs = parsed.value.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 3u);

  for (std::size_t i = 0; i < 3; ++i) {
    const auto& run = runs->items[i];
    EXPECT_FALSE(run.find("dedup")->boolean);
    const auto id = static_cast<std::uint64_t>(run.find("id")->number);
    const std::uint64_t seed = 3 + i;
    ASSERT_TRUE(server_->store().wait_terminal(id, 60000));

    service::RunRecord record;
    ASSERT_TRUE(server_->store().get(id, &record));
    ASSERT_EQ(record.state, service::RunState::kDone) << record.error;

    // Local reference: same config, CLI-style observed execution.
    harness::ExperimentConfig cfg = small_config();
    cfg.seed = seed;
    harness::Observation observation;
    (void)harness::run_experiment(cfg, &observation);
    std::ostringstream reference;
    harness::write_run_manifest(reference, cfg, seed, 1, observation);
    EXPECT_EQ(record.metrics_json, reference.str()) << "seed " << seed;

    // The HTTP surface serves those same bytes.
    const auto metrics = get("/runs/" + std::to_string(id) + "/metrics");
    ASSERT_TRUE(metrics.ok) << metrics.error;
    EXPECT_EQ(metrics.status, 200);
    EXPECT_EQ(metrics.body, record.metrics_json);
  }

  // Resubmission: every run is a dedup hit on the same ids, same bytes.
  const auto again = post("/runs", body);
  ASSERT_TRUE(again.ok) << again.error;
  const auto reparsed = service::parse_json(again.body);
  ASSERT_TRUE(reparsed.ok);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& run = reparsed.value.find("runs")->items[i];
    EXPECT_TRUE(run.find("dedup")->boolean);
    EXPECT_EQ(run.find("id")->number, runs->items[i].find("id")->number);
  }
}

TEST_F(FleetHttpTest, StatusAndStreamedMetricsEndWithTheManifest) {
  const auto submitted = post("/runs", service::run_request_json(
                                           kSmallRun, "", {21}));
  ASSERT_EQ(submitted.status, 200) << submitted.body;
  const auto parsed = service::parse_json(submitted.body);
  ASSERT_TRUE(parsed.ok);
  const auto id = static_cast<std::uint64_t>(
      parsed.value.find("runs")->items[0].find("id")->number);

  // Stream immediately: for an in-flight (or just-finished) run the body
  // is NDJSON whose final line is the metrics manifest.
  std::vector<std::string> lines;
  const auto streamed = service::http_stream_lines(
      "127.0.0.1", server_->port(), "/runs/" + std::to_string(id) + "/metrics",
      [&](std::string_view line) {
        lines.emplace_back(line);
        return true;
      });
  ASSERT_TRUE(streamed.ok) << streamed.error;
  EXPECT_EQ(streamed.status, 200);
  ASSERT_FALSE(lines.empty());

  service::RunRecord record;
  ASSERT_TRUE(server_->store().get(id, &record));
  ASSERT_EQ(record.state, service::RunState::kDone) << record.error;
  // The manifest is one newline-terminated line; streamed lines carry no
  // delimiter.
  EXPECT_EQ(lines.back() + "\n", record.metrics_json);
  // Any earlier lines are progress samples with monotone sim time.
  std::int64_t last_time = -1;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    const auto p = service::parse_json(lines[i]);
    ASSERT_TRUE(p.ok) << lines[i];
    const auto* t = p.value.find("sim_time_us");
    ASSERT_NE(t, nullptr);
    EXPECT_GT(static_cast<std::int64_t>(t->number), last_time);
    last_time = static_cast<std::int64_t>(t->number);
  }

  const auto status = get("/runs/" + std::to_string(id));
  ASSERT_EQ(status.status, 200);
  const auto sparsed = service::parse_json(status.body);
  ASSERT_TRUE(sparsed.ok);
  EXPECT_EQ(sparsed.value.find("state")->string, "done");
  EXPECT_TRUE(sparsed.value.find("result")->find("all_completed")->boolean);
}

TEST_F(FleetHttpTest, MetricszReportsSelfMetricsAndAssetStats) {
  (void)post("/runs", service::run_request_json(kSmallRun, "", {31, 32}));
  const auto res = get("/metricsz");
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.status, 200);
  const auto parsed = service::parse_json(res.body);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(static_cast<int>(parsed.value.find("schema_version")->number),
            obs::kTelemetrySchemaVersion);
  // Worker count honours the sweep harness's hardware clamp, so on a
  // 1-core host the requested 2 jobs become 1.
  EXPECT_EQ(static_cast<std::size_t>(parsed.value.find("workers")->number),
            server_->scheduler().workers());
  EXPECT_GE(server_->scheduler().workers(), 1u);
  EXPECT_GE(parsed.value.find("runs_total")->number, 2.0);
  const auto* metrics = parsed.value.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("fleet.runs_submitted"), nullptr);
  EXPECT_GE(metrics->find("fleet.runs_submitted")->find("total")->number, 2.0);
  ASSERT_NE(parsed.value.find("assets"), nullptr);
}

}  // namespace
}  // namespace mnp

// Channel semantics: delivery, half-duplex, collisions (including hidden
// terminals), carrier sense, and the concurrent-bulk-sender monitor.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/radio.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {
namespace {

// Line of nodes 10 ft apart; disk range 15 ft => only adjacent nodes hear
// each other (interference_factor widens that in specific tests).
class ChannelTest : public ::testing::Test {
 protected:
  void build(std::size_t n, double range, double interference = 1.0,
             double spacing = 10.0) {
    topo_ = std::make_unique<Topology>();
    for (std::size_t i = 0; i < n; ++i) {
      topo_->add({static_cast<double>(i) * spacing, 0.0});
    }
    links_ = std::make_unique<DiskLinkModel>(*topo_, range, interference);
    channel_ = std::make_unique<Channel>(sim_, *topo_, *links_);
    received_.assign(n, {});
    for (std::size_t i = 0; i < n; ++i) {
      meters_.push_back(std::make_unique<energy::EnergyMeter>());
      radios_.push_back(std::make_unique<Radio>(
          static_cast<NodeId>(i), sim_.scheduler(), *channel_, *meters_[i]));
      channel_->register_radio(*radios_[i]);
      radios_[i]->set_receive_handler([this, i](const Packet& pkt) {
        received_[i].push_back(pkt);
      });
      radios_[i]->turn_on();
    }
  }

  static Packet data_packet() {
    DataMsg d;
    d.payload.assign(22, 0x5A);
    Packet pkt;
    pkt.payload = std::move(d);
    return pkt;
  }

  static Packet adv_packet() {
    Packet pkt;
    pkt.payload = AdvertisementMsg{};
    return pkt;
  }

  sim::Simulator sim_{1};
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<DiskLinkModel> links_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::vector<Packet>> received_;
};

TEST_F(ChannelTest, DeliversToNeighborsOnly) {
  build(4, 15.0);
  Packet pkt = adv_packet();
  pkt.src = 1;
  EXPECT_TRUE(radios_[1]->start_transmission(pkt));
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_TRUE(received_[3].empty());  // 20 ft away
  EXPECT_TRUE(received_[1].empty());  // sender does not hear itself
}

TEST_F(ChannelTest, AirtimeMatchesBitrate) {
  build(2, 15.0);
  const Packet pkt = adv_packet();
  // 19.2 kbps: airtime_us = bytes*8/19200*1e6.
  const auto expected = static_cast<sim::Time>(
      static_cast<double>(pkt.wire_bytes()) * 8.0 / 19200.0 * 1e6);
  EXPECT_EQ(channel_->airtime(pkt), expected);
}

TEST_F(ChannelTest, OffRadioReceivesNothing) {
  build(2, 15.0);
  radios_[1]->turn_off();
  radios_[0]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, TurningOnMidPacketMissesIt) {
  build(2, 15.0);
  radios_[1]->turn_off();
  radios_[0]->start_transmission(adv_packet());
  // Turn on halfway through the preamble: decode must fail.
  sim_.scheduler().schedule_after(channel_->airtime(adv_packet()) / 2,
                                  [&] { radios_[1]->turn_on(); });
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, TurningOffMidPacketLosesIt) {
  build(2, 15.0);
  radios_[0]->start_transmission(adv_packet());
  sim_.scheduler().schedule_after(channel_->airtime(adv_packet()) / 2,
                                  [&] { radios_[1]->turn_off(); });
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, OverlappingTransmissionsCollideAtCommonListener) {
  build(3, 15.0);
  // 0 and 2 both reach 1; they cannot hear each other (20 ft apart) —
  // the canonical hidden-terminal scenario.
  radios_[0]->start_transmission(adv_packet());
  radios_[2]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
  EXPECT_GE(channel_->collisions(), 1u);
}

TEST_F(ChannelTest, StaggeredTransmissionsBothArrive) {
  build(3, 15.0);
  radios_[0]->start_transmission(adv_packet());
  const sim::Time airtime = channel_->airtime(adv_packet());
  sim_.scheduler().schedule_after(airtime + sim::msec(1), [&] {
    radios_[2]->start_transmission(adv_packet());
  });
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(received_[1].size(), 2u);
  EXPECT_EQ(channel_->collisions(), 0u);
}

TEST_F(ChannelTest, PartialOverlapStillCorruptsBoth) {
  build(3, 15.0);
  radios_[0]->start_transmission(adv_packet());
  sim_.scheduler().schedule_after(channel_->airtime(adv_packet()) - 100, [&] {
    radios_[2]->start_transmission(adv_packet());
  });
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, InterferenceWithoutDecodabilityStillCorrupts) {
  // Node 2 is inside node 0's interference range but outside its decode
  // range; 0's energy must still destroy 1->2 packets at node 2.
  build(3, 15.0, /*interference=*/1.8);  // decode 15 ft, interfere 27 ft
  radios_[0]->start_transmission(adv_packet());  // 0 is 20 ft from 2
  radios_[1]->start_transmission(data_packet()); // 1 is 10 ft from 2
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[2].empty());
}

TEST_F(ChannelTest, HalfDuplexSenderMissesIncomingPackets) {
  build(2, 15.0);
  radios_[0]->start_transmission(adv_packet());
  radios_[1]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[0].empty());
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, CarrierSenseSeesNeighborTransmission) {
  build(3, 15.0);
  EXPECT_FALSE(channel_->carrier_busy(1));
  radios_[0]->start_transmission(adv_packet());
  EXPECT_TRUE(channel_->carrier_busy(1));   // neighbor
  EXPECT_TRUE(channel_->carrier_busy(0));   // own transmission
  EXPECT_FALSE(channel_->carrier_busy(2));  // out of range
  sim_.run_until(sim::sec(1));
  EXPECT_FALSE(channel_->carrier_busy(1));
}

TEST_F(ChannelTest, BulkOverlapMonitorCountsConcurrentDataSenders) {
  build(3, 15.0);
  radios_[0]->start_transmission(data_packet());
  radios_[2]->start_transmission(data_packet());  // shares victim node 1
  sim_.run_until(sim::sec(1));
  EXPECT_GE(channel_->concurrent_bulk_overlaps(), 1u);
}

TEST_F(ChannelTest, BulkOverlapIgnoresControlTraffic) {
  build(3, 15.0);
  radios_[0]->start_transmission(adv_packet());
  radios_[2]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(channel_->concurrent_bulk_overlaps(), 0u);
}

TEST_F(ChannelTest, DistantBulkSendersDoNotCount) {
  build(6, 15.0);
  radios_[0]->start_transmission(data_packet());
  radios_[5]->start_transmission(data_packet());  // 50 ft away, no shared victim
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(channel_->concurrent_bulk_overlaps(), 0u);
}

TEST_F(ChannelTest, ReceptionChargesTheMeter) {
  build(2, 15.0);
  radios_[0]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(meters_[1]->rx_packets(), 1u);
  EXPECT_EQ(meters_[0]->tx_packets(), 1u);
}

TEST_F(ChannelTest, ObserverSeesTrafficAndCollisions) {
  struct Observer : ChannelObserver {
    int transmits = 0, delivers = 0, collisions = 0;
    void on_transmit(NodeId, const Packet&, sim::Time) override { ++transmits; }
    void on_deliver(NodeId, NodeId, const Packet&, sim::Time) override { ++delivers; }
    void on_collision(NodeId, sim::Time) override { ++collisions; }
  } observer;
  build(3, 15.0);
  channel_->set_observer(&observer);
  radios_[0]->start_transmission(adv_packet());
  radios_[2]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(observer.transmits, 2);
  EXPECT_EQ(observer.delivers, 0);
  EXPECT_GE(observer.collisions, 1);
}

TEST_F(ChannelTest, PendingOffDeferredUntilTransmissionEnds) {
  build(2, 15.0);
  radios_[0]->start_transmission(adv_packet());
  radios_[0]->turn_off();  // mid-transmission: deferred
  EXPECT_EQ(radios_[0]->state(), Radio::State::kTransmitting);
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(radios_[0]->state(), Radio::State::kOff);
  // The packet still went out intact.
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(ChannelTest, CannotTransmitWhileOffOrBusy) {
  build(2, 15.0);
  radios_[0]->turn_off();
  EXPECT_FALSE(radios_[0]->start_transmission(adv_packet()));
  radios_[0]->turn_on();
  EXPECT_TRUE(radios_[0]->start_transmission(adv_packet()));
  EXPECT_FALSE(radios_[0]->start_transmission(adv_packet()));  // busy
}

}  // namespace
}  // namespace mnp::net

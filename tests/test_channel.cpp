// Channel semantics: delivery, half-duplex, collisions (including hidden
// terminals), carrier sense, and the concurrent-bulk-sender monitor.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/radio.hpp"
#include "scenario/scenario_link_model.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {
namespace {

// Line of nodes 10 ft apart; disk range 15 ft => only adjacent nodes hear
// each other (interference_factor widens that in specific tests).
class ChannelTest : public ::testing::Test {
 protected:
  void build(std::size_t n, double range, double interference = 1.0,
             double spacing = 10.0) {
    topo_ = std::make_unique<Topology>();
    for (std::size_t i = 0; i < n; ++i) {
      topo_->add({static_cast<double>(i) * spacing, 0.0});
    }
    links_ = std::make_unique<DiskLinkModel>(*topo_, range, interference);
    channel_ = std::make_unique<Channel>(sim_, *topo_, *links_);
    received_.assign(n, {});
    for (std::size_t i = 0; i < n; ++i) {
      meters_.push_back(std::make_unique<energy::EnergyMeter>());
      radios_.push_back(std::make_unique<Radio>(
          static_cast<NodeId>(i), sim_.scheduler(), *channel_, *meters_[i]));
      channel_->register_radio(*radios_[i]);
      radios_[i]->set_receive_handler([this, i](const Packet& pkt) {
        received_[i].push_back(pkt);
      });
      radios_[i]->turn_on();
    }
  }

  static Packet data_packet() {
    DataMsg d;
    d.payload.assign(22, 0x5A);
    Packet pkt;
    pkt.payload = std::move(d);
    return pkt;
  }

  static Packet adv_packet() {
    Packet pkt;
    pkt.payload = AdvertisementMsg{};
    return pkt;
  }

  sim::Simulator sim_{1};
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<DiskLinkModel> links_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::vector<Packet>> received_;
};

TEST_F(ChannelTest, DeliversToNeighborsOnly) {
  build(4, 15.0);
  Packet pkt = adv_packet();
  pkt.src = 1;
  EXPECT_TRUE(radios_[1]->start_transmission(pkt));
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_TRUE(received_[3].empty());  // 20 ft away
  EXPECT_TRUE(received_[1].empty());  // sender does not hear itself
}

TEST_F(ChannelTest, AirtimeMatchesBitrate) {
  build(2, 15.0);
  const Packet pkt = adv_packet();
  // 19.2 kbps: airtime_us = bytes*8/19200*1e6.
  const auto expected = static_cast<sim::Time>(
      static_cast<double>(pkt.wire_bytes()) * 8.0 / 19200.0 * 1e6);
  EXPECT_EQ(channel_->airtime(pkt), expected);
}

TEST_F(ChannelTest, OffRadioReceivesNothing) {
  build(2, 15.0);
  radios_[1]->turn_off();
  radios_[0]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, TurningOnMidPacketMissesIt) {
  build(2, 15.0);
  radios_[1]->turn_off();
  radios_[0]->start_transmission(adv_packet());
  // Turn on halfway through the preamble: decode must fail.
  sim_.scheduler().schedule_after(channel_->airtime(adv_packet()) / 2,
                                  [&] { radios_[1]->turn_on(); });
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, TurningOffMidPacketLosesIt) {
  build(2, 15.0);
  radios_[0]->start_transmission(adv_packet());
  sim_.scheduler().schedule_after(channel_->airtime(adv_packet()) / 2,
                                  [&] { radios_[1]->turn_off(); });
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, OverlappingTransmissionsCollideAtCommonListener) {
  build(3, 15.0);
  // 0 and 2 both reach 1; they cannot hear each other (20 ft apart) —
  // the canonical hidden-terminal scenario.
  radios_[0]->start_transmission(adv_packet());
  radios_[2]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
  EXPECT_GE(channel_->collisions(), 1u);
}

TEST_F(ChannelTest, StaggeredTransmissionsBothArrive) {
  build(3, 15.0);
  radios_[0]->start_transmission(adv_packet());
  const sim::Time airtime = channel_->airtime(adv_packet());
  sim_.scheduler().schedule_after(airtime + sim::msec(1), [&] {
    radios_[2]->start_transmission(adv_packet());
  });
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(received_[1].size(), 2u);
  EXPECT_EQ(channel_->collisions(), 0u);
}

TEST_F(ChannelTest, PartialOverlapStillCorruptsBoth) {
  build(3, 15.0);
  radios_[0]->start_transmission(adv_packet());
  sim_.scheduler().schedule_after(channel_->airtime(adv_packet()) - 100, [&] {
    radios_[2]->start_transmission(adv_packet());
  });
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, InterferenceWithoutDecodabilityStillCorrupts) {
  // Node 2 is inside node 0's interference range but outside its decode
  // range; 0's energy must still destroy 1->2 packets at node 2.
  build(3, 15.0, /*interference=*/1.8);  // decode 15 ft, interfere 27 ft
  radios_[0]->start_transmission(adv_packet());  // 0 is 20 ft from 2
  radios_[1]->start_transmission(data_packet()); // 1 is 10 ft from 2
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[2].empty());
}

TEST_F(ChannelTest, HalfDuplexSenderMissesIncomingPackets) {
  build(2, 15.0);
  radios_[0]->start_transmission(adv_packet());
  radios_[1]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_TRUE(received_[0].empty());
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(ChannelTest, CarrierSenseSeesNeighborTransmission) {
  build(3, 15.0);
  EXPECT_FALSE(channel_->carrier_busy(1));
  radios_[0]->start_transmission(adv_packet());
  EXPECT_TRUE(channel_->carrier_busy(1));   // neighbor
  EXPECT_TRUE(channel_->carrier_busy(0));   // own transmission
  EXPECT_FALSE(channel_->carrier_busy(2));  // out of range
  sim_.run_until(sim::sec(1));
  EXPECT_FALSE(channel_->carrier_busy(1));
}

TEST_F(ChannelTest, BulkOverlapMonitorCountsConcurrentDataSenders) {
  build(3, 15.0);
  radios_[0]->start_transmission(data_packet());
  radios_[2]->start_transmission(data_packet());  // shares victim node 1
  sim_.run_until(sim::sec(1));
  EXPECT_GE(channel_->concurrent_bulk_overlaps(), 1u);
}

TEST_F(ChannelTest, BulkOverlapIgnoresControlTraffic) {
  build(3, 15.0);
  radios_[0]->start_transmission(adv_packet());
  radios_[2]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(channel_->concurrent_bulk_overlaps(), 0u);
}

TEST_F(ChannelTest, DistantBulkSendersDoNotCount) {
  build(6, 15.0);
  radios_[0]->start_transmission(data_packet());
  radios_[5]->start_transmission(data_packet());  // 50 ft away, no shared victim
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(channel_->concurrent_bulk_overlaps(), 0u);
}

TEST_F(ChannelTest, ReceptionChargesTheMeter) {
  build(2, 15.0);
  radios_[0]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(meters_[1]->rx_packets(), 1u);
  EXPECT_EQ(meters_[0]->tx_packets(), 1u);
}

TEST_F(ChannelTest, ObserverSeesTrafficAndCollisions) {
  struct Observer : ChannelObserver {
    int transmits = 0, delivers = 0, collisions = 0;
    void on_transmit(NodeId, const Packet&, sim::Time) override { ++transmits; }
    void on_deliver(NodeId, NodeId, const Packet&, sim::Time) override { ++delivers; }
    void on_collision(NodeId, sim::Time) override { ++collisions; }
  } observer;
  build(3, 15.0);
  channel_->set_observer(&observer);
  radios_[0]->start_transmission(adv_packet());
  radios_[2]->start_transmission(adv_packet());
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(observer.transmits, 2);
  EXPECT_EQ(observer.delivers, 0);
  EXPECT_GE(observer.collisions, 1);
}

TEST_F(ChannelTest, PendingOffDeferredUntilTransmissionEnds) {
  build(2, 15.0);
  radios_[0]->start_transmission(adv_packet());
  radios_[0]->turn_off();  // mid-transmission: deferred
  EXPECT_EQ(radios_[0]->state(), Radio::State::kTransmitting);
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(radios_[0]->state(), Radio::State::kOff);
  // The packet still went out intact.
  EXPECT_EQ(received_[1].size(), 1u);
}

TEST_F(ChannelTest, CannotTransmitWhileOffOrBusy) {
  build(2, 15.0);
  radios_[0]->turn_off();
  EXPECT_FALSE(radios_[0]->start_transmission(adv_packet()));
  radios_[0]->turn_on();
  EXPECT_TRUE(radios_[0]->start_transmission(adv_packet()));
  EXPECT_FALSE(radios_[0]->start_transmission(adv_packet()));  // busy
}

// --- neighbor cache vs. brute-force reference ----------------------------
//
// The cached hot path must be *bit-identical* to the debug reference: same
// candidate sets in the same order, hence the same RNG stream, hence the
// same deliveries, collisions and carrier-sense answers on any topology.
class EquivalenceStack {
 public:
  EquivalenceStack(Channel::Params cp, std::size_t n) : sim_(99) {
    sim::Rng place(1234);  // same placement in both stacks
    for (std::size_t i = 0; i < n; ++i) {
      topo_.add({place.uniform_real(0.0, 120.0),
                 place.uniform_real(0.0, 120.0)});
    }
    EmpiricalLinkModel::Params lp;
    links_ = std::make_unique<EmpiricalLinkModel>(topo_, lp, sim::Rng(777));
    channel_ = std::make_unique<Channel>(sim_, topo_, *links_, cp);
    received_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      meters_.push_back(std::make_unique<energy::EnergyMeter>());
      radios_.push_back(std::make_unique<Radio>(
          static_cast<NodeId>(i), sim_.scheduler(), *channel_, *meters_[i]));
      channel_->register_radio(*radios_[i]);
      radios_[i]->set_receive_handler(
          [this, i](const Packet&) { ++received_[i]; });
      radios_[i]->turn_on();
    }
  }

  /// Deterministic traffic pattern: staggered, overlapping transmissions
  /// (data + adv) from scattered sources, two power scales, plus radios
  /// toggling off mid-run and periodic carrier-sense probes.
  void drive() {
    sim::Rng traffic(4242);  // same schedule in both stacks
    for (int burst = 0; burst < 40; ++burst) {
      const auto at = static_cast<sim::Time>(traffic.uniform_int(0, 900000));
      const auto who =
          static_cast<NodeId>(traffic.uniform_int(0, static_cast<std::int64_t>(radios_.size()) - 1));
      const bool bulk = traffic.bernoulli(0.5);
      const double scale = traffic.bernoulli(0.25) ? 0.5 : 1.0;
      sim_.scheduler().schedule_at(at, [this, who, bulk, scale] {
        Packet pkt;
        if (bulk) {
          DataMsg d;
          d.payload.assign(22, 0x5A);
          pkt.payload = std::move(d);
        } else {
          pkt.payload = AdvertisementMsg{};
        }
        pkt.src = who;
        pkt.power_scale = scale;
        radios_[who]->start_transmission(pkt);
      });
      if (burst % 5 == 0) {
        const auto victim =
            static_cast<NodeId>(traffic.uniform_int(0, static_cast<std::int64_t>(radios_.size()) - 1));
        sim_.scheduler().schedule_at(at + 2000, [this, victim] {
          radios_[victim]->turn_off();
        });
        sim_.scheduler().schedule_at(at + 50000, [this, victim] {
          radios_[victim]->turn_on();
        });
      }
      sim_.scheduler().schedule_at(at + 1000, [this] {
        for (std::size_t i = 0; i < radios_.size(); ++i) {
          carrier_samples_.push_back(channel_->carrier_busy(static_cast<NodeId>(i)));
        }
      });
    }
    sim_.run_until(sim::sec(2));
  }

  sim::Simulator sim_;
  Topology topo_;
  std::unique_ptr<EmpiricalLinkModel> links_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::uint64_t> received_;
  std::vector<bool> carrier_samples_;
};

Channel::Params grid_params() { return Channel::Params{}; }  // grid on

Channel::Params eager_params() {
  Channel::Params cp;
  cp.grid_index = false;  // pre-grid eager cache
  return cp;
}

Channel::Params brute_params() {
  Channel::Params cp;
  cp.neighbor_cache = false;
  return cp;
}

TEST(ChannelNeighborCache, MatchesBruteForceOnRandomTopology) {
  EquivalenceStack grid(grid_params(), 48);
  EquivalenceStack eager(eager_params(), 48);
  EquivalenceStack brute(brute_params(), 48);
  grid.drive();
  eager.drive();
  brute.drive();

  for (const auto* cached : {&grid, &eager}) {
    EXPECT_EQ(cached->channel_->transmissions(),
              brute.channel_->transmissions());
    EXPECT_EQ(cached->channel_->deliveries(), brute.channel_->deliveries());
    EXPECT_EQ(cached->channel_->collisions(), brute.channel_->collisions());
    EXPECT_EQ(cached->channel_->concurrent_bulk_overlaps(),
              brute.channel_->concurrent_bulk_overlaps());
    EXPECT_EQ(cached->received_, brute.received_);
    EXPECT_EQ(cached->carrier_samples_, brute.carrier_samples_);
    // Two power scales were in play, so two neighbor caches materialized.
    EXPECT_EQ(cached->channel_->cached_power_scales(), 2u);
  }
  // Sanity: the run exercised something in every dimension we compare.
  EXPECT_GT(grid.channel_->deliveries(), 0u);
  EXPECT_GT(grid.channel_->collisions(), 0u);
  EXPECT_EQ(brute.channel_->cached_power_scales(), 0u);
  // The grid path really ran lazily: rows were materialized on demand.
  EXPECT_GT(grid.channel_->cache_repairs(), 0u);
  EXPECT_GT(grid.channel_->grid_cells(), 0u);
  EXPECT_EQ(eager.channel_->cache_repairs(), 0u);
}

TEST(ChannelNeighborCache, PairwiseQueriesMatchLinkModel) {
  // The sparse reach rows and per-edge success cache must agree with the
  // link model for every directed pair, at a non-default power scale too.
  EquivalenceStack cached(grid_params(), 24);
  EquivalenceStack brute(brute_params(), 24);
  cached.drive();
  brute.drive();
  for (std::size_t s = 0; s < 24; ++s) {
    ASSERT_EQ(cached.channel_->carrier_busy(static_cast<NodeId>(s)),
              brute.channel_->carrier_busy(static_cast<NodeId>(s)));
  }
}

// --- grid path under churn: mobility, partitions, degrade windows ---------
//
// Same three-way comparison, but the world itself changes mid-run: nodes
// teleport between waypoints (Topology::set_position, exactly what the
// scenario engine's mobility interpolation calls) and a ScenarioLinkModel
// opens partition and degrade windows. The grid path repairs its rows
// incrementally; eager discards everything; brute consults the model live.
// All three must produce bit-identical deliveries, collisions and
// carrier-sense answers on every seed.
class ChurnStack {
 public:
  ChurnStack(Channel::Params cp, std::size_t n, std::uint64_t seed)
      : sim_(99 + seed) {
    sim::Rng place(1234 + seed);  // same placement across the three stacks
    for (std::size_t i = 0; i < n; ++i) {
      topo_.add({place.uniform_real(0.0, 150.0),
                 place.uniform_real(0.0, 150.0)});
    }
    links_ = std::make_unique<scenario::ScenarioLinkModel>(
        std::make_unique<DiskLinkModel>(topo_, 25.0, 1.5), n);
    channel_ = std::make_unique<Channel>(sim_, topo_, *links_, cp);
    received_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      meters_.push_back(std::make_unique<energy::EnergyMeter>());
      radios_.push_back(std::make_unique<Radio>(
          static_cast<NodeId>(i), sim_.scheduler(), *channel_, *meters_[i]));
      channel_->register_radio(*radios_[i]);
      radios_[i]->set_receive_handler(
          [this, i](const Packet&) { ++received_[i]; });
      radios_[i]->turn_on();
    }
  }

  void drive(std::uint64_t seed) {
    const auto n = static_cast<std::int64_t>(radios_.size());
    sim::Rng traffic(4242 + seed);  // same schedule across the three stacks
    for (int burst = 0; burst < 60; ++burst) {
      const auto at = static_cast<sim::Time>(traffic.uniform_int(0, 1800000));
      const auto who = static_cast<NodeId>(traffic.uniform_int(0, n - 1));
      const bool bulk = traffic.bernoulli(0.5);
      const double scale = traffic.bernoulli(0.25) ? 0.5 : 1.0;
      sim_.scheduler().schedule_at(at, [this, who, bulk, scale] {
        Packet pkt;
        if (bulk) {
          DataMsg d;
          d.payload.assign(22, 0x5A);
          pkt.payload = std::move(d);
        } else {
          pkt.payload = AdvertisementMsg{};
        }
        pkt.src = who;
        pkt.power_scale = scale;
        radios_[who]->start_transmission(pkt);
      });
      if (burst % 4 == 0) {  // waypoint hop between two transmissions
        const auto mover = static_cast<NodeId>(traffic.uniform_int(0, n - 1));
        const double nx = traffic.uniform_real(0.0, 150.0);
        const double ny = traffic.uniform_real(0.0, 150.0);
        sim_.scheduler().schedule_at(at + 500, [this, mover, nx, ny] {
          topo_.set_position(mover, {nx, ny});
        });
      }
      if (burst % 7 == 0) {
        sim_.scheduler().schedule_at(at + 1000, [this] {
          for (std::size_t i = 0; i < radios_.size(); ++i) {
            carrier_samples_.push_back(
                channel_->carrier_busy(static_cast<NodeId>(i)));
          }
        });
      }
    }
    sim_.scheduler().schedule_at(400000, [this] {
      links_->set_partition({{0, 1, 2, 3, 4}, {5, 6, 7}});
    });
    sim_.scheduler().schedule_at(900000, [this] { links_->clear_partition(); });
    sim_.scheduler().schedule_at(1100000, [this] {
      links_->begin_degrade(0.5, {2, 9, 11});
    });
    sim_.scheduler().schedule_at(1500000, [this] {
      links_->end_degrade(0.5, {2, 9, 11});
    });
    sim_.run_until(sim::sec(3));
  }

  sim::Simulator sim_;
  Topology topo_;
  std::unique_ptr<scenario::ScenarioLinkModel> links_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::uint64_t> received_;
  std::vector<bool> carrier_samples_;
};

TEST(ChannelGridChurn, MatchesEagerAndBruteUnderMobilityAndPartitions) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ChurnStack grid(grid_params(), 32, seed);
    ChurnStack eager(eager_params(), 32, seed);
    ChurnStack brute(brute_params(), 32, seed);
    grid.drive(seed);
    eager.drive(seed);
    brute.drive(seed);

    for (const auto* cached : {&grid, &eager}) {
      EXPECT_EQ(cached->channel_->transmissions(),
                brute.channel_->transmissions())
          << "seed " << seed;
      EXPECT_EQ(cached->channel_->deliveries(), brute.channel_->deliveries())
          << "seed " << seed;
      EXPECT_EQ(cached->channel_->collisions(), brute.channel_->collisions())
          << "seed " << seed;
      EXPECT_EQ(cached->channel_->concurrent_bulk_overlaps(),
                brute.channel_->concurrent_bulk_overlaps())
          << "seed " << seed;
      EXPECT_EQ(cached->received_, brute.received_) << "seed " << seed;
      EXPECT_EQ(cached->carrier_samples_, brute.carrier_samples_)
          << "seed " << seed;
    }
    // The run exercised delivery and the incremental-repair machinery.
    EXPECT_GT(brute.channel_->deliveries(), 0u);
    EXPECT_GT(grid.channel_->cache_invalidations(), 0u);
    EXPECT_GT(grid.channel_->cache_repairs(), 0u);
  }
}

TEST(ChannelGridChurn, CarrierSenseStaysExactAfterMoves) {
  // Regression for the carrier-sense path: it must consult the *repaired*
  // reach rows after a move, never a stale row and never a full scan that
  // disagrees with delivery. Node 2 starts out of range of 0, walks into
  // range mid-transmission-gap, and back out.
  sim::Simulator sim(3);
  Topology topo;
  topo.add({0.0, 0.0});
  topo.add({10.0, 0.0});
  topo.add({100.0, 0.0});
  DiskLinkModel links(topo, 15.0);
  Channel channel(sim, topo, links, grid_params());
  energy::EnergyMeter m0, m1, m2;
  Radio r0(0, sim.scheduler(), channel, m0);
  Radio r1(1, sim.scheduler(), channel, m1);
  Radio r2(2, sim.scheduler(), channel, m2);
  for (Radio* r : {&r0, &r1, &r2}) {
    channel.register_radio(*r);
    r->turn_on();
  }
  Packet pkt;
  pkt.payload = AdvertisementMsg{};

  r0.start_transmission(pkt);
  EXPECT_TRUE(channel.carrier_busy(1));
  EXPECT_FALSE(channel.carrier_busy(2));  // 100 ft away
  sim.run_until(sim::sec(1));

  topo.set_position(2, {12.0, 0.0});  // walks next to the source
  r0.start_transmission(pkt);
  EXPECT_TRUE(channel.carrier_busy(2));
  sim.run_until(sim::sec(2));
  EXPECT_GE(channel.cache_invalidations(), 1u);

  topo.set_position(2, {100.0, 0.0});  // and back out of range
  r0.start_transmission(pkt);
  EXPECT_FALSE(channel.carrier_busy(2));
  sim.run_until(sim::sec(3));
}

// --- cache staleness: world mutations must invalidate ---------------------

TEST_F(ChannelTest, MovingANodeInvalidatesTheNeighborCache) {
  build(4, 15.0);
  Packet pkt = adv_packet();
  pkt.src = 1;
  radios_[1]->start_transmission(pkt);
  sim_.run_until(sim::sec(1));
  ASSERT_EQ(received_[3].size(), 0u);  // 20 ft away at (30, 0)
  ASSERT_EQ(channel_->cached_power_scales(), 1u);
  EXPECT_EQ(channel_->cache_invalidations(), 0u);

  // Node 3 walks next door to node 1. Without invalidation, the cached
  // reach bitset would keep saying 1 cannot reach 3.
  topo_->set_position(3, {15.0, 0.0});
  radios_[1]->start_transmission(pkt);
  sim_.run_until(sim::sec(2));
  EXPECT_EQ(channel_->cache_invalidations(), 1u);
  EXPECT_EQ(received_[3].size(), 1u);

  // No further churn: the rebuilt cache sticks.
  radios_[1]->start_transmission(pkt);
  sim_.run_until(sim::sec(3));
  EXPECT_EQ(channel_->cache_invalidations(), 1u);
  EXPECT_EQ(received_[3].size(), 2u);
}

// A LinkModel whose answers can be toggled off (a stand-in for the
// scenario decorator's partition windows), advertised via revision().
class SwitchableLinkModel final : public LinkModel {
 public:
  explicit SwitchableLinkModel(std::unique_ptr<LinkModel> inner)
      : inner_(std::move(inner)) {}

  double packet_success(NodeId src, NodeId dst, double ps) const override {
    return severed_ ? 0.0 : inner_->packet_success(src, dst, ps);
  }
  bool interferes(NodeId src, NodeId dst, double ps) const override {
    return severed_ ? false : inner_->interferes(src, dst, ps);
  }
  std::uint64_t revision() const override { return revision_; }

  void set_severed(bool severed) {
    severed_ = severed;
    ++revision_;
  }

 private:
  std::unique_ptr<LinkModel> inner_;
  bool severed_ = false;
  std::uint64_t revision_ = 0;
};

TEST(ChannelLinkRevision, RevisionBumpInvalidatesTheNeighborCache) {
  sim::Simulator sim(7);
  Topology topo;
  topo.add({0.0, 0.0});
  topo.add({10.0, 0.0});
  SwitchableLinkModel links(std::make_unique<DiskLinkModel>(topo, 15.0));
  Channel channel(sim, topo, links);
  energy::EnergyMeter m0, m1;
  Radio r0(0, sim.scheduler(), channel, m0);
  Radio r1(1, sim.scheduler(), channel, m1);
  channel.register_radio(r0);
  channel.register_radio(r1);
  std::size_t heard = 0;
  r1.set_receive_handler([&heard](const Packet&) { ++heard; });
  r0.turn_on();
  r1.turn_on();

  Packet pkt;
  pkt.payload = AdvertisementMsg{};
  r0.start_transmission(pkt);
  sim.run_until(sim::sec(1));
  ASSERT_EQ(heard, 1u);

  links.set_severed(true);
  r0.start_transmission(pkt);
  sim.run_until(sim::sec(2));
  EXPECT_EQ(heard, 1u);  // the severed link must not deliver
  EXPECT_EQ(channel.cache_invalidations(), 1u);

  links.set_severed(false);
  r0.start_transmission(pkt);
  sim.run_until(sim::sec(3));
  EXPECT_EQ(heard, 2u);
  EXPECT_EQ(channel.cache_invalidations(), 2u);
}

}  // namespace
}  // namespace mnp::net

// CSMA MAC behaviour: queueing, backoff, carrier deference, flush.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/csma_mac.hpp"
#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {
namespace {

class CsmaMacTest : public ::testing::Test {
 protected:
  void build(std::size_t n, CsmaMac::Params params = {}) {
    topo_ = std::make_unique<Topology>();
    for (std::size_t i = 0; i < n; ++i) {
      topo_->add({static_cast<double>(i) * 10.0, 0.0});
    }
    links_ = std::make_unique<DiskLinkModel>(*topo_, 15.0);
    channel_ = std::make_unique<Channel>(sim_, *topo_, *links_);
    received_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      meters_.push_back(std::make_unique<energy::EnergyMeter>());
      radios_.push_back(std::make_unique<Radio>(
          static_cast<NodeId>(i), sim_.scheduler(), *channel_, *meters_[i]));
      channel_->register_radio(*radios_[i]);
      radios_[i]->set_receive_handler([this, i](const Packet&) { ++received_[i]; });
      radios_[i]->turn_on();
      macs_.push_back(std::make_unique<CsmaMac>(
          *radios_[i], sim_.scheduler(), sim_.fork_rng(100 + i), params));
    }
  }

  static Packet adv() {
    Packet pkt;
    pkt.payload = AdvertisementMsg{};
    return pkt;
  }

  sim::Simulator sim_{3};
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<DiskLinkModel> links_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<energy::EnergyMeter>> meters_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
  std::vector<int> received_;
};

TEST_F(CsmaMacTest, DeliversQueuedPackets) {
  build(2);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(macs_[0]->send(adv()));
  sim_.run_until(sim::sec(5));
  EXPECT_EQ(received_[1], 5);
  EXPECT_EQ(macs_[0]->packets_sent(), 5u);
  EXPECT_TRUE(macs_[0]->idle());
}

TEST_F(CsmaMacTest, RejectsWhenRadioOff) {
  build(2);
  radios_[0]->turn_off();
  EXPECT_FALSE(macs_[0]->send(adv()));
  EXPECT_EQ(macs_[0]->packets_dropped(), 1u);
}

TEST_F(CsmaMacTest, QueueOverflowDrops) {
  CsmaMac::Params p;
  p.queue_capacity = 3;
  build(2, p);
  for (int i = 0; i < 10; ++i) macs_[0]->send(adv());
  EXPECT_GE(macs_[0]->packets_dropped(), 6u);
  sim_.run_until(sim::sec(5));
  EXPECT_LE(received_[1], 4);
}

TEST_F(CsmaMacTest, TwoContendersSerializeViaCarrierSense) {
  // Nodes 0 and 1 are in range of each other; both blast 20 packets.
  // Carrier sense + random backoff must avoid most collisions: the far
  // majority of packets arrive.
  build(2);
  for (int i = 0; i < 20; ++i) {
    macs_[0]->send(adv());
    macs_[1]->send(adv());
  }
  sim_.run_until(sim::sec(30));
  EXPECT_GE(received_[0], 16);
  EXPECT_GE(received_[1], 16);
  EXPECT_GT(macs_[0]->congestion_backoffs() + macs_[1]->congestion_backoffs(), 0u);
}

TEST_F(CsmaMacTest, FlushDropsQueue) {
  build(2);
  for (int i = 0; i < 8; ++i) macs_[0]->send(adv());
  macs_[0]->flush();
  sim_.run_until(sim::sec(5));
  // At most the in-flight packet survived the flush.
  EXPECT_LE(received_[1], 1);
}

TEST_F(CsmaMacTest, SendDoneCallbackFires) {
  build(2);
  std::vector<PacketType> done;
  macs_[0]->set_send_done([&](const Packet& pkt) { done.push_back(pkt.type()); });
  macs_[0]->send(adv());
  sim_.run_until(sim::sec(2));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], PacketType::kAdvertisement);
}

TEST_F(CsmaMacTest, MaxRetriesGivesUp) {
  CsmaMac::Params p;
  p.max_congestion_retries = 2;
  build(3, p);
  // Jam the channel: node 1 transmits a long stream back-to-back while
  // node 0 tries to send one packet with a tiny retry budget.
  std::function<void()> jam = [&] {
    Packet pkt;
    DataMsg d;
    d.payload.assign(22, 1);
    pkt.payload = std::move(d);
    pkt.src = 1;
    radios_[1]->start_transmission(pkt);
    sim_.scheduler().schedule_after(channel_->airtime(pkt) + 1, jam);
  };
  jam();
  macs_[0]->send(adv());
  sim_.run_until(sim::sec(2));
  EXPECT_GE(macs_[0]->packets_dropped(), 1u);
  EXPECT_EQ(macs_[0]->packets_sent(), 0u);
}

TEST_F(CsmaMacTest, QueueDepthObservable) {
  build(2);
  EXPECT_EQ(macs_[0]->queue_depth(), 0u);
  macs_[0]->send(adv());
  macs_[0]->send(adv());
  EXPECT_GE(macs_[0]->queue_depth(), 1u);
  sim_.run_until(sim::sec(5));
  EXPECT_EQ(macs_[0]->queue_depth(), 0u);
}

}  // namespace
}  // namespace mnp::net

// StatsCollector unit tests.
#include <gtest/gtest.h>

#include "node/stats.hpp"

namespace mnp::node {
namespace {

net::Packet make_packet(net::Payload payload) {
  net::Packet pkt;
  pkt.payload = std::move(payload);
  return pkt;
}

TEST(Classify, MessageClasses) {
  EXPECT_EQ(classify(net::PacketType::kAdvertisement), MsgClass::kAdvertisement);
  EXPECT_EQ(classify(net::PacketType::kDelugeSummary), MsgClass::kAdvertisement);
  EXPECT_EQ(classify(net::PacketType::kMoapPublish), MsgClass::kAdvertisement);
  EXPECT_EQ(classify(net::PacketType::kDownloadRequest), MsgClass::kRequest);
  EXPECT_EQ(classify(net::PacketType::kRepairRequest), MsgClass::kRequest);
  EXPECT_EQ(classify(net::PacketType::kData), MsgClass::kData);
  EXPECT_EQ(classify(net::PacketType::kXnpData), MsgClass::kData);
  EXPECT_EQ(classify(net::PacketType::kStartDownload), MsgClass::kOther);
  EXPECT_EQ(classify(net::PacketType::kQuery), MsgClass::kOther);
}

TEST(StatsCollector, CountsPerTypeAndTimeline) {
  StatsCollector stats(3);
  stats.on_transmit(0, make_packet(net::AdvertisementMsg{}), sim::sec(10));
  stats.on_transmit(0, make_packet(net::DataMsg{}), sim::sec(70));
  stats.on_transmit(1, make_packet(net::DataMsg{}), sim::sec(80));
  stats.on_deliver(0, 1, make_packet(net::DataMsg{}), sim::sec(70));

  EXPECT_EQ(stats.node(0).sent_of(net::PacketType::kAdvertisement), 1u);
  EXPECT_EQ(stats.node(0).sent_of(net::PacketType::kData), 1u);
  EXPECT_EQ(stats.node(0).total_sent(), 2u);
  EXPECT_EQ(stats.node(1).received_of(net::PacketType::kData), 1u);
  EXPECT_EQ(stats.node(1).total_received(), 1u);

  const auto& timeline = stats.timeline();
  ASSERT_EQ(timeline.size(), 2u);  // minute 0 and minute 1
  EXPECT_EQ(timeline.at(0)[static_cast<std::size_t>(MsgClass::kAdvertisement)], 1u);
  EXPECT_EQ(timeline.at(1)[static_cast<std::size_t>(MsgClass::kData)], 2u);
}

TEST(StatsCollector, CompletionBookkeeping) {
  StatsCollector stats(2);
  EXPECT_EQ(stats.completed_count(), 0u);
  EXPECT_FALSE(stats.all_completed());
  EXPECT_EQ(stats.completion_time(), sim::kNever);

  stats.on_completed(0, sim::sec(5));
  stats.on_completed(0, sim::sec(50));  // duplicate: ignored
  EXPECT_EQ(stats.completed_count(), 1u);
  EXPECT_EQ(stats.node(0).completion_time, sim::sec(5));

  stats.on_completed(1, sim::sec(9));
  EXPECT_TRUE(stats.all_completed());
  EXPECT_EQ(stats.completion_time(), sim::sec(9));
}

TEST(StatsCollector, SegmentCompletionGrowsVector) {
  StatsCollector stats(1);
  stats.on_segment_completed(0, 3, sim::sec(30));
  stats.on_segment_completed(0, 1, sim::sec(10));
  stats.on_segment_completed(0, 1, sim::sec(99));  // duplicate: ignored
  const auto& v = stats.node(0).segment_completion;
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], sim::sec(10));
  EXPECT_EQ(v[1], sim::kNever);
  EXPECT_EQ(v[2], sim::sec(30));
}

TEST(StatsCollector, SenderOrderRecordsFirstForwardOnly) {
  StatsCollector stats(4);
  stats.on_became_sender(2, sim::sec(1));
  stats.on_became_sender(0, sim::sec(2));
  stats.on_became_sender(2, sim::sec(3));  // repeat: ignored
  ASSERT_EQ(stats.sender_order().size(), 2u);
  EXPECT_EQ(stats.sender_order()[0], 2);
  EXPECT_EQ(stats.sender_order()[1], 0);
  EXPECT_EQ(stats.node(2).became_sender, sim::sec(1));
}

TEST(StatsCollector, ParentAndCollisions) {
  StatsCollector stats(2);
  stats.on_parent_set(1, 0);
  EXPECT_EQ(stats.node(1).parent, 0);
  stats.on_collision(1, sim::sec(1));
  stats.on_collision(1, sim::sec(2));
  EXPECT_EQ(stats.node(1).collisions_suffered, 2u);
}

TEST(StatsCollector, OutOfRangeIdsAreIgnored) {
  StatsCollector stats(1);
  stats.on_completed(7, sim::sec(1));
  stats.on_parent_set(7, 0);
  stats.on_became_sender(7, sim::sec(1));
  stats.on_collision(7, sim::sec(1));
  EXPECT_EQ(stats.completed_count(), 0u);
  EXPECT_TRUE(stats.sender_order().empty());
}

}  // namespace
}  // namespace mnp::node

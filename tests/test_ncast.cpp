// NCast baseline (DESIGN.md §13): the RLNC decoder in isolation, the
// coefficient-seed expansion contract, crash/reboot resume through the
// progress journal, and the determinism gates — audit chains must be
// bit-identical across --jobs counts and across the channel's grid-index
// fast path, even under scripted churn.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "baselines/ncast_node.hpp"
#include "boot/progress_journal.hpp"
#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/sweep.hpp"
#include "mnp/program_image.hpp"
#include "net/link_model.hpp"
#include "node/network.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "storage/eeprom.hpp"
#include "util/gf256.hpp"

namespace mnp {
namespace {

using baselines::NcastConfig;
using baselines::NcastNode;
using baselines::RlncDecoder;
using baselines::ncast_expand_coefficients;

constexpr std::uint16_t kProgramId = 7;

// ---------------------------------------------------------------------------
// Coefficient expansion: the 2-byte wire header must expand identically on
// both ends, and must never yield a useless all-zero vector.
// ---------------------------------------------------------------------------

TEST(NcastCoefficients, ExpansionIsPureAndNeverAllZero) {
  constexpr std::uint8_t k = 16;
  std::uint8_t a[k], b[k];
  for (std::uint16_t gen = 1; gen <= 8; ++gen) {
    for (std::uint32_t seed = 0; seed < 512; ++seed) {
      const auto s = static_cast<std::uint16_t>(seed);
      ncast_expand_coefficients(gen, s, k, a);
      ncast_expand_coefficients(gen, s, k, b);
      EXPECT_TRUE(std::equal(a, a + k, b)) << "gen=" << gen << " seed=" << s;
      bool any = false;
      for (std::uint8_t c : a) any = any || c != 0;
      EXPECT_TRUE(any) << "all-zero vector at gen=" << gen << " seed=" << s;
    }
  }
}

TEST(NcastCoefficients, GenerationSaltsTheStream) {
  // The same seed in different generations must not produce the same
  // coefficients, or a cross-generation replay would alias.
  constexpr std::uint8_t k = 16;
  std::uint8_t g1[k], g2[k];
  int distinct = 0;
  for (std::uint32_t seed = 0; seed < 256; ++seed) {
    const auto s = static_cast<std::uint16_t>(seed);
    ncast_expand_coefficients(1, s, k, g1);
    ncast_expand_coefficients(2, s, k, g2);
    if (!std::equal(g1, g1 + k, g2)) ++distinct;
  }
  EXPECT_GE(distinct, 250);
}

// ---------------------------------------------------------------------------
// RlncDecoder in isolation: round-trip, rank monotonicity, rejection of
// dependent packets.
// ---------------------------------------------------------------------------

/// Builds the coded symbol for (gen, seed) over `src` exactly the way
/// NcastNode::send_coded does: expand, then GF(256) accumulate.
std::vector<std::uint8_t> encode(std::uint16_t gen, std::uint16_t seed,
                                 const std::vector<std::vector<std::uint8_t>>& src) {
  const auto k = static_cast<std::uint8_t>(src.size());
  std::vector<std::uint8_t> coeff(k);
  ncast_expand_coefficients(gen, seed, k, coeff.data());
  std::vector<std::uint8_t> sym(src.front().size(), 0);
  for (std::uint8_t i = 0; i < k; ++i) {
    util::gf256::addmul_row(sym.data(), src[i].data(), sym.size(), coeff[i]);
  }
  return sym;
}

std::vector<std::vector<std::uint8_t>> random_sources(std::uint8_t k,
                                                      std::size_t bytes,
                                                      std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> src(k);
  for (auto& s : src) {
    s.resize(bytes);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return src;
}

TEST(RlncDecoderTest, DecodesFromRandomCombinationsWithMonotonicRank) {
  constexpr std::uint8_t k = 16;
  constexpr std::size_t kSymbolBytes = 22;
  const auto src = random_sources(k, kSymbolBytes, 0xDEC0DE);

  RlncDecoder dec;
  dec.reset(k, kSymbolBytes);
  EXPECT_EQ(dec.rank(), 0);
  EXPECT_FALSE(dec.complete());

  std::uint16_t seed = 0;
  std::uint8_t prev_rank = 0;
  int packets_fed = 0;
  while (!dec.complete()) {
    ASSERT_LT(packets_fed, 4 * k) << "rank stalled below k";
    std::vector<std::uint8_t> coeff(k);
    ncast_expand_coefficients(1, seed, k, coeff.data());
    const auto sym = encode(1, seed, src);
    const bool innovative = dec.insert(coeff.data(), sym.data(), sym.size());
    ++packets_fed;
    // Innovative exactly when the rank grew, and rank never regresses.
    EXPECT_EQ(innovative, dec.rank() == prev_rank + 1);
    EXPECT_GE(dec.rank(), prev_rank);
    prev_rank = dec.rank();
    ++seed;
  }
  EXPECT_EQ(dec.rank(), k);

  dec.decode();
  ASSERT_TRUE(dec.decoded());
  for (std::uint8_t i = 0; i < k; ++i) {
    const std::uint8_t* got = dec.source_packet(i);
    EXPECT_TRUE(std::equal(src[i].begin(), src[i].end(), got))
        << "source packet " << int(i) << " corrupted";
  }
  EXPECT_GT(dec.row_ops(), 0u);
}

TEST(RlncDecoderTest, RejectsReplayedAndDependentPackets) {
  constexpr std::uint8_t k = 8;
  constexpr std::size_t kSymbolBytes = 10;
  const auto src = random_sources(k, kSymbolBytes, 0x4E6B);

  RlncDecoder dec;
  dec.reset(k, kSymbolBytes);
  std::vector<std::uint8_t> coeff(k);
  ncast_expand_coefficients(3, 41, k, coeff.data());
  const auto sym = encode(3, 41, src);
  EXPECT_TRUE(dec.insert(coeff.data(), sym.data(), sym.size()));
  EXPECT_EQ(dec.rank(), 1);
  // An exact replay is linearly dependent by construction.
  EXPECT_FALSE(dec.insert(coeff.data(), sym.data(), sym.size()));
  EXPECT_EQ(dec.rank(), 1);
  // So is any scalar multiple of the same combination.
  std::vector<std::uint8_t> c2(coeff), s2(sym);
  util::gf256::mul_row(c2.data(), k, 7);
  util::gf256::mul_row(s2.data(), s2.size(), 7);
  EXPECT_FALSE(dec.insert(c2.data(), s2.data(), s2.size()));
  EXPECT_EQ(dec.rank(), 1);
}

TEST(RlncDecoderTest, HandlesShortLastGeneration) {
  // The tail generation of an image is usually shorter than k; the
  // decoder is sized to the real packet count, not zero-padded to 16.
  constexpr std::uint8_t k = 5;
  constexpr std::size_t kSymbolBytes = 22;
  const auto src = random_sources(k, kSymbolBytes, 0x7A11);

  RlncDecoder dec;
  dec.reset(k, kSymbolBytes);
  for (std::uint16_t seed = 100; !dec.complete(); ++seed) {
    ASSERT_LT(seed, 200);
    std::vector<std::uint8_t> coeff(k);
    ncast_expand_coefficients(2, seed, k, coeff.data());
    const auto sym = encode(2, seed, src);
    dec.insert(coeff.data(), sym.data(), sym.size());
  }
  dec.decode();
  for (std::uint8_t i = 0; i < k; ++i) {
    EXPECT_TRUE(std::equal(src[i].begin(), src[i].end(), dec.source_packet(i)));
  }
}

TEST(RlncDecoderTest, ResetRecyclesAcrossGenerations) {
  constexpr std::size_t kSymbolBytes = 22;
  RlncDecoder dec;
  for (std::uint16_t gen = 1; gen <= 3; ++gen) {
    const std::uint8_t k = gen == 3 ? 4 : 16;  // short tail on the last pass
    const auto src = random_sources(k, kSymbolBytes, 0xC0DE00 + gen);
    dec.reset(k, kSymbolBytes);
    EXPECT_EQ(dec.rank(), 0);
    EXPECT_FALSE(dec.decoded());
    for (std::uint16_t seed = 0; !dec.complete(); ++seed) {
      ASSERT_LT(seed, 100);
      std::vector<std::uint8_t> coeff(k);
      ncast_expand_coefficients(gen, seed, k, coeff.data());
      const auto sym = encode(gen, seed, src);
      dec.insert(coeff.data(), sym.data(), sym.size());
    }
    dec.decode();
    for (std::uint8_t i = 0; i < k; ++i) {
      EXPECT_TRUE(std::equal(src[i].begin(), src[i].end(), dec.source_packet(i)))
          << "gen=" << gen << " packet " << int(i);
    }
  }
}

// ---------------------------------------------------------------------------
// Full network: convergence and crash/reboot resume.
// ---------------------------------------------------------------------------

node::Network::LinkModelFactory disk_links(double range) {
  return [range](const net::Topology& topo) {
    return std::make_unique<net::DiskLinkModel>(topo, range);
  };
}

TEST(NcastReboot, NodeResumesFromJournaledGenerations) {
  sim::Simulator sim(14);
  node::Network network(sim, net::Topology::grid(3, 3, 10.0),
                        disk_links(15.0));
  NcastConfig nc;
  nc.journal_progress = true;
  const std::size_t bytes =
      std::size_t{3} * nc.generation_size * nc.payload_bytes;
  auto image = std::make_shared<const core::ProgramImage>(
      kProgramId, bytes, nc.generation_size, nc.payload_bytes);
  for (net::NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<NcastNode>(nc, image)
                : std::make_unique<NcastNode>(nc));
  }
  network.boot_all(sim::msec(50));

  auto* victim = dynamic_cast<NcastNode*>(network.node(8).application());
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(sim.run_until_condition(sim::hours(1), [victim] {
    return victim->complete_gens() == 1;
  }));
  network.node(8).kill();

  // The generation was journaled before the crash.
  boot::ProgressJournal journal(network.node(8).eeprom());
  const auto rec = journal.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->program_id, kProgramId);
  EXPECT_EQ(rec->program_bytes, bytes);
  EXPECT_EQ(rec->units, (std::vector<std::uint16_t>{1}));

  sim.run_until(sim.now() + sim::sec(30));
  network.node(8).reboot();
  // RAM (decoder, rank, Trickle state) is gone; the completed-generation
  // prefix came back from EEPROM.
  EXPECT_EQ(victim->complete_gens(), 1);
  EXPECT_FALSE(victim->has_complete_image());

  ASSERT_TRUE(sim.run_until_condition(sim::hours(2), [&network] {
    return network.complete_image_count() == network.size();
  }));
  EXPECT_TRUE(image->matches(network.node(8).eeprom().read(0, bytes)));
}

TEST(NcastHarness, ConvergesByteExactThroughTheHarness) {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kNcast;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(2);
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed)
      << "completed " << r.completed_count << "/" << r.nodes.size();
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

// ---------------------------------------------------------------------------
// Determinism gates under churn: same audit chain for any --jobs count and
// with the spatial grid index on or off.
// ---------------------------------------------------------------------------

harness::ExperimentConfig churny_ncast() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kNcast;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  cfg.scenario = scenario::ScenarioBuilder{}
                     .kill(sim::sec(20), 4, /*down_for=*/sim::sec(40))
                     .build("ncast-churn");
  return cfg;
}

TEST(NcastDeterminism, SweepChainsIdenticalForAnyJobsCountUnderChurn) {
  std::vector<std::uint64_t> sequential_chains, parallel_chains;
  harness::SweepOptions sequential;
  sequential.jobs = 1;
  sequential.audit_chains = &sequential_chains;
  harness::SweepOptions parallel;
  parallel.jobs = 4;
  parallel.allow_oversubscribe = true;
  parallel.audit_chains = &parallel_chains;

  harness::run_sweep(churny_ncast(), 4, /*first_seed=*/30, sequential);
  harness::run_sweep(churny_ncast(), 4, /*first_seed=*/30, parallel);

  ASSERT_EQ(sequential_chains.size(), 4u);
  EXPECT_EQ(sequential_chains, parallel_chains);
  EXPECT_NE(sequential_chains[0], sequential_chains[1]);
}

TEST(NcastDeterminism, GridIndexOnOffProducesIdenticalChains) {
  auto run_with_grid = [](bool grid) {
    auto cfg = churny_ncast();
    cfg.channel.grid_index = grid;
    harness::Observation obs;
    obs.with_trace = false;
    obs.energy_sample_interval = 0;
    obs.with_audit = true;
    const auto r = harness::run_experiment(cfg, &obs);
    EXPECT_TRUE(r.all_completed);
    return obs;
  };
  const auto on = run_with_grid(true);
  const auto off = run_with_grid(false);
  ASSERT_FALSE(on.audit.records().empty());
  EXPECT_EQ(on.audit.records().size(), off.audit.records().size());
  EXPECT_EQ(on.audit.chain(), off.audit.chain());
}

}  // namespace
}  // namespace mnp

// Tests for the runtime half of the determinism audit toolchain
// (DESIGN.md section 12): the scheduler's incremental pending-event
// signature, sim::Audit state-hash chains, the tie-break hazard probe,
// sweep-level chain collection and the mnp_bisect log round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "bisect.hpp"
#include "harness/observe.hpp"
#include "harness/sweep.hpp"
#include "sim/audit.hpp"
#include "sim/scheduler.hpp"

namespace mnp {
namespace {

// --- scheduler pending signature --------------------------------------------

TEST(PendingSignature, XorsTagsInAndOut) {
  sim::Scheduler only_a;
  only_a.schedule_at(5, [] {});
  const std::uint64_t sig_a = only_a.pending_signature();
  EXPECT_NE(sig_a, 0u);

  // Same insertion history for `a`, so cancelling `b` must restore exactly
  // the one-event signature — the XOR discipline, not a recomputation.
  sim::Scheduler both;
  both.schedule_at(5, [] {});
  auto b = both.schedule_at(9, [] {});
  EXPECT_NE(both.pending_signature(), sig_a);
  b.cancel();
  EXPECT_EQ(both.pending_signature(), sig_a);

  // Executing the remaining event drains the signature to zero.
  both.run_all();
  EXPECT_EQ(both.pending_signature(), 0u);
}

TEST(PendingSignature, TombstoneSweepDoesNotDoubleCount) {
  sim::Scheduler sched;
  // Enough cancellations to trigger the >50% tombstone compaction sweep.
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 32; ++i) {
    handles.push_back(sched.schedule_at(10 + i, [] {}));
  }
  auto keeper = sched.schedule_at(100, [] {});
  const std::uint64_t all = sched.pending_signature();
  for (auto& h : handles) h.cancel();
  const std::uint64_t after_cancel = sched.pending_signature();
  EXPECT_NE(after_cancel, all);
  // Force tombstone pruning; the signature must not move again.
  EXPECT_FALSE(sched.empty());
  EXPECT_EQ(sched.pending_signature(), after_cancel);
  keeper.cancel();
  EXPECT_EQ(sched.pending_signature(), 0u);
}

// --- sim::Audit over a scripted scheduler -----------------------------------

/// Probe over a plain vector of digests the test mutates directly.
class VecProbe final : public sim::AuditProbe {
 public:
  explicit VecProbe(const std::vector<std::uint64_t>* v) : v_(v) {}
  std::size_t node_count() const override { return v_->size(); }
  void node_digests(std::uint64_t* out) override {
    std::copy(v_->begin(), v_->end(), out);
  }

 private:
  const std::vector<std::uint64_t>* v_;
};

/// Runs a tiny scripted schedule: two same-time events at t=10 whose
/// order matters (when `order_sensitive`) or commutes (when not), plus a
/// later event, auditing every boundary.
std::vector<sim::AuditRecord> scripted_run(sim::TieBreak tb,
                                           bool order_sensitive) {
  sim::Scheduler sched;
  sim::Audit audit;
  std::vector<std::uint64_t> state{0};
  VecProbe probe(&state);
  audit.set_probe(&probe);
  audit.set_node_sweep_stride(1);
  sched.set_audit(&audit);
  sched.set_tie_break(tb);
  if (order_sensitive) {
    sched.post_at(10, [&] { state[0] = state[0] * 3 + 1; });
    sched.post_at(10, [&] { state[0] += 5; });
  } else {
    sched.post_at(10, [&] { state[0] += 1; });
    sched.post_at(10, [&] { state[0] += 1; });
  }
  sched.post_at(20, [&] { state[0] ^= 7; });
  sched.run_all();
  return audit.records();
}

TEST(Audit, IdenticalRunsProduceIdenticalChains) {
  const auto a = scripted_run(sim::TieBreak::kFifo, true);
  const auto b = scripted_run(sim::TieBreak::kFifo, true);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].chain, b[i].chain) << "at event " << i;
  }
  EXPECT_FALSE(sim::first_divergence(a, b).diverged);
}

TEST(Audit, TieBreakFlipExposesOrderSensitivePair) {
  const auto fifo = scripted_run(sim::TieBreak::kFifo, true);
  const auto lifo = scripted_run(sim::TieBreak::kLifo, true);
  const auto d = sim::first_divergence(fifo, lifo);
  ASSERT_TRUE(d.diverged);
  EXPECT_FALSE(d.length_mismatch);
  // The swapped pair runs at t=10: the very first event already differs.
  EXPECT_EQ(d.index, 0u);
  EXPECT_EQ(d.a.time, 10);
  EXPECT_EQ(d.b.time, 10);
  // Both components move: a different event executed (pending set) and it
  // left a different node state behind.
  EXPECT_NE(d.a.pending, d.b.pending);
  EXPECT_NE(d.a.nodes, d.b.nodes);
  // Each tie-break is still a total order: LIFO twice is self-identical.
  const auto lifo2 = scripted_run(sim::TieBreak::kLifo, true);
  EXPECT_FALSE(sim::first_divergence(lifo, lifo2).diverged);
}

TEST(Audit, CommutativePairDivergesInPendingComponentOnly) {
  // Swapping a commutative same-time pair still reorders *which* event
  // executes first (the pending signature sees it), but the node-state
  // signature must agree at every boundary — that distinction is what
  // separates a harmless reorder from a real tie-break hazard.
  const auto fifo = scripted_run(sim::TieBreak::kFifo, false);
  const auto lifo = scripted_run(sim::TieBreak::kLifo, false);
  ASSERT_EQ(fifo.size(), lifo.size());
  for (std::size_t i = 0; i < fifo.size(); ++i) {
    EXPECT_EQ(fifo[i].nodes, lifo[i].nodes) << "at event " << i;
  }
  const auto d = sim::first_divergence(fifo, lifo);
  ASSERT_TRUE(d.diverged);
  EXPECT_NE(d.a.pending, d.b.pending);
  EXPECT_EQ(d.a.nodes, d.b.nodes);
}

TEST(Audit, AttributesTheChangedNode) {
  sim::Scheduler sched;
  sim::Audit audit;
  std::vector<std::uint64_t> state{1, 2, 3};
  VecProbe probe(&state);
  audit.set_probe(&probe);
  audit.set_node_sweep_stride(1);
  sched.set_audit(&audit);
  // The first boundary seeds the digest cache without attribution, so the
  // mutation happens at the second event.
  sched.post_at(10, [] {});
  sched.post_at(20, [&] { state[2] = 99; });
  sched.post_at(30, [] {});
  sched.run_all();
  ASSERT_EQ(audit.records().size(), 3u);
  EXPECT_EQ(audit.records()[0].node, -1);  // cache seeding
  EXPECT_EQ(audit.records()[1].node, 2);   // state[2] moved
  EXPECT_EQ(audit.records()[2].node, -1);  // nothing moved
}

TEST(Audit, ResetRestartsTheChain) {
  const auto once = scripted_run(sim::TieBreak::kFifo, true);
  sim::Audit audit;
  std::vector<std::uint64_t> state{42};
  VecProbe probe(&state);
  audit.set_probe(&probe);
  audit.on_event(1, 0x1234, 0);
  audit.reset();
  EXPECT_TRUE(audit.records().empty());
  EXPECT_EQ(audit.chain(), sim::kFnvOffset);
  (void)once;
}

TEST(Audit, FirstDivergenceHandlesPrefixStreams) {
  auto a = scripted_run(sim::TieBreak::kFifo, true);
  auto b = a;
  b.pop_back();
  const auto d = sim::first_divergence(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_TRUE(d.length_mismatch);
  EXPECT_EQ(d.index, b.size());
}

// --- full experiment + sweep ------------------------------------------------

harness::ExperimentConfig tiny() {
  harness::ExperimentConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  return cfg;
}

harness::Observation observed_run(harness::ExperimentConfig cfg) {
  harness::Observation obs;
  obs.with_trace = false;
  obs.energy_sample_interval = 0;
  obs.with_audit = true;
  harness::run_experiment(cfg, &obs);
  return obs;
}

TEST(Audit, ExperimentSameSeedSameChain) {
  const auto a = observed_run(tiny());
  const auto b = observed_run(tiny());
  ASSERT_FALSE(a.audit.records().empty());
  EXPECT_EQ(a.audit.records().size(), b.audit.records().size());
  EXPECT_EQ(a.audit.chain(), b.audit.chain());
  EXPECT_FALSE(
      sim::first_divergence(a.audit.records(), b.audit.records()).diverged);
}

TEST(Audit, ExperimentDifferentSeedsDiverge) {
  auto cfg = tiny();
  const auto a = observed_run(cfg);
  cfg.seed = cfg.seed + 1;
  const auto b = observed_run(cfg);
  EXPECT_NE(a.audit.chain(), b.audit.chain());
  EXPECT_TRUE(
      sim::first_divergence(a.audit.records(), b.audit.records()).diverged);
}

TEST(Audit, SweepChainsIdenticalForAnyJobsCount) {
  std::vector<std::uint64_t> sequential_chains, parallel_chains;
  harness::SweepOptions sequential;
  sequential.jobs = 1;
  sequential.audit_chains = &sequential_chains;
  harness::SweepOptions parallel;
  parallel.jobs = 4;
  parallel.allow_oversubscribe = true;
  parallel.audit_chains = &parallel_chains;

  harness::run_sweep(tiny(), 4, /*first_seed=*/20, sequential);
  harness::run_sweep(tiny(), 4, /*first_seed=*/20, parallel);

  ASSERT_EQ(sequential_chains.size(), 4u);
  EXPECT_EQ(sequential_chains, parallel_chains);
  // Distinct seeds must not collapse onto one chain.
  EXPECT_NE(sequential_chains[0], sequential_chains[1]);
}

// --- audit log round-trip through mnp_bisect --------------------------------

std::string log_text(const harness::ExperimentConfig& cfg,
                     const harness::Observation& obs) {
  std::ostringstream os;
  harness::write_audit_log(os, cfg, obs);
  return os.str();
}

TEST(Bisect, LogRoundTripsThroughTheParser) {
  const auto cfg = tiny();
  const auto obs = observed_run(cfg);
  std::istringstream is(log_text(cfg, obs));
  bisect::AuditLog parsed;
  std::string error;
  ASSERT_TRUE(bisect::parse_audit_log(is, &parsed, &error)) << error;
  EXPECT_EQ(parsed.seed, cfg.seed);
  EXPECT_EQ(parsed.nodes, obs.node_count);
  EXPECT_EQ(parsed.tie_break, "fifo");
  EXPECT_EQ(parsed.chain, obs.audit.chain());
  ASSERT_EQ(parsed.records.size(), obs.audit.records().size());
  for (std::size_t i = 0; i < parsed.records.size(); ++i) {
    const auto& p = parsed.records[i];
    const auto& r = obs.audit.records()[i];
    EXPECT_EQ(p.index, r.index);
    EXPECT_EQ(p.time, r.time);
    EXPECT_EQ(p.node, r.node);
    EXPECT_EQ(p.pending, r.pending);
    EXPECT_EQ(p.nodes, r.nodes);
    EXPECT_EQ(p.chain, r.chain);
  }
}

TEST(Bisect, ReportsIdenticalAndDivergedWithExitCodes) {
  auto cfg = tiny();
  const auto a = observed_run(cfg);
  cfg.seed = cfg.seed + 1;
  const auto b = observed_run(cfg);

  bisect::AuditLog log_a, log_b;
  std::string error;
  std::istringstream ia(log_text(tiny(), a)), ib(log_text(cfg, b));
  ASSERT_TRUE(bisect::parse_audit_log(ia, &log_a, &error)) << error;
  ASSERT_TRUE(bisect::parse_audit_log(ib, &log_b, &error)) << error;

  std::ostringstream same;
  EXPECT_EQ(bisect::report_divergence(same, log_a, log_a, "A", "B"), 0);
  EXPECT_NE(same.str().find("identical"), std::string::npos);

  std::ostringstream diff;
  EXPECT_EQ(bisect::report_divergence(diff, log_a, log_b, "A", "B"), 1);
  EXPECT_NE(diff.str().find("diverged at event"), std::string::npos);
  EXPECT_NE(diff.str().find("kind:"), std::string::npos);
}

TEST(Bisect, ParserRejectsMalformedAndTruncatedLogs) {
  bisect::AuditLog out;
  std::string error;

  std::istringstream no_header("meta seed 1\n");
  EXPECT_FALSE(bisect::parse_audit_log(no_header, &out, &error));
  EXPECT_NE(error.find("header"), std::string::npos);

  std::istringstream bad_count(
      "# mnp-audit v1\n"
      "meta seed 1 nodes 1 tie-break fifo events 2 chain 00000000000000aa\n"
      "rec 0 10 -1 0000000000000001 0000000000000002 00000000000000aa\n");
  EXPECT_FALSE(bisect::parse_audit_log(bad_count, &out, &error));
  EXPECT_NE(error.find("events"), std::string::npos);

  out = {};
  std::istringstream bad_chain(
      "# mnp-audit v1\n"
      "meta seed 1 nodes 1 tie-break fifo events 1 chain 00000000000000ff\n"
      "rec 0 10 -1 0000000000000001 0000000000000002 00000000000000aa\n");
  EXPECT_FALSE(bisect::parse_audit_log(bad_chain, &out, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace mnp

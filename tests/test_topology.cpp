// Unit tests for node placement.
#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace mnp::net {
namespace {

TEST(Topology, GridPlacesRowMajor) {
  Topology t = Topology::grid(3, 4, 10.0);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_TRUE(t.is_grid());
  EXPECT_EQ(t.grid_rows(), 3u);
  EXPECT_EQ(t.grid_cols(), 4u);
  EXPECT_DOUBLE_EQ(t.grid_spacing(), 10.0);
  // Node id r*cols + c at (c*spacing, r*spacing).
  EXPECT_DOUBLE_EQ(t.position(0).x, 0.0);
  EXPECT_DOUBLE_EQ(t.position(0).y, 0.0);
  EXPECT_DOUBLE_EQ(t.position(5).x, 10.0);  // r=1, c=1
  EXPECT_DOUBLE_EQ(t.position(5).y, 10.0);
  EXPECT_DOUBLE_EQ(t.position(11).x, 30.0);  // r=2, c=3
  EXPECT_DOUBLE_EQ(t.position(11).y, 20.0);
}

TEST(Topology, DistancesAreEuclidean) {
  Topology t = Topology::grid(2, 2, 10.0);
  EXPECT_DOUBLE_EQ(t.node_distance(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(t.node_distance(0, 2), 10.0);
  EXPECT_NEAR(t.node_distance(0, 3), 14.1421356, 1e-6);
  EXPECT_DOUBLE_EQ(t.node_distance(3, 3), 0.0);
}

TEST(Topology, CustomPlacement) {
  Topology t;
  EXPECT_FALSE(t.is_grid());
  t.add({0.0, 0.0});
  t.add({3.0, 4.0});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.node_distance(0, 1), 5.0);
}

class GridSizeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(GridSizeTest, AllPairDistancesAtLeastSpacing) {
  const auto [rows, cols] = GetParam();
  Topology t = Topology::grid(rows, cols, 10.0);
  ASSERT_EQ(t.size(), rows * cols);
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < t.size(); ++b) {
      EXPECT_GE(t.node_distance(a, b), 10.0 - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridSizeTest,
                         ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                                           std::make_pair<std::size_t, std::size_t>(1, 10),
                                           std::make_pair<std::size_t, std::size_t>(4, 5),
                                           std::make_pair<std::size_t, std::size_t>(7, 7)));

}  // namespace
}  // namespace mnp::net

// Boot manager + CRC tests: staging, validation, install, rollback
// semantics, and the full OTA pipeline over a real dissemination.
#include <gtest/gtest.h>

#include <memory>

#include "boot/boot_manager.hpp"
#include "mnp/mnp_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"
#include "util/crc32.hpp"

namespace mnp {
namespace {

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(util::crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32(nullptr, 0), 0u);
}

TEST(Crc32, ChainingMatchesOneShot) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  const std::uint32_t whole = util::crc32(data);
  const std::uint32_t part1 = util::crc32(data.data(), 400);
  const std::uint32_t chained = util::crc32(data.data() + 400, 600, part1);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(256, 0xA5);
  const std::uint32_t clean = util::crc32(data);
  for (std::size_t i = 0; i < data.size(); i += 37) {
    data[i] ^= 1;
    EXPECT_NE(util::crc32(data), clean) << "flip at " << i;
    data[i] ^= 1;
  }
}

// ---------------------------------------------------------------------------
// BootManager
// ---------------------------------------------------------------------------

class BootTest : public ::testing::Test {
 protected:
  BootTest() : eeprom_(64 * 1024), boot_(eeprom_, 16 * 1024) {}

  std::vector<std::uint8_t> stage_image(std::uint16_t id, std::uint16_t version,
                                        std::size_t bytes) {
    std::vector<std::uint8_t> payload(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      payload[i] = static_cast<std::uint8_t>(i ^ id ^ version);
    }
    eeprom_.write(boot_.staging_payload_offset(), payload);
    return payload;
  }

  storage::Eeprom eeprom_;
  boot::BootManager boot_;
};

TEST_F(BootTest, FreshFlashHasNoImages) {
  EXPECT_FALSE(boot_.golden_header().has_value());
  EXPECT_FALSE(boot_.staged_header().has_value());
  EXPECT_FALSE(boot_.staging_valid());
  EXPECT_FALSE(boot_.install());  // nothing to install
  EXPECT_TRUE(boot_.golden_payload().empty());
}

TEST_F(BootTest, CommitValidateInstall) {
  const auto payload = stage_image(5, 2, 5000);
  ASSERT_TRUE(boot_.commit_staging(5, 2, 5000));
  ASSERT_TRUE(boot_.staging_valid());
  const auto staged = boot_.staged_header();
  ASSERT_TRUE(staged.has_value());
  EXPECT_EQ(staged->program_id, 5);
  EXPECT_EQ(staged->version, 2);
  EXPECT_EQ(staged->length, 5000u);

  ASSERT_TRUE(boot_.install());
  EXPECT_EQ(boot_.installs(), 1u);
  EXPECT_TRUE(boot_.golden_valid());
  EXPECT_EQ(boot_.golden_payload(), payload);
  // Staging is consumed by the install.
  EXPECT_FALSE(boot_.staged_header().has_value());
}

TEST_F(BootTest, CorruptStagingIsRejected) {
  stage_image(5, 2, 5000);
  ASSERT_TRUE(boot_.commit_staging(5, 2, 5000));
  // Flip one staged payload byte after the header was sealed.
  eeprom_.write(boot_.staging_payload_offset() + 1234, {0xFF});
  EXPECT_FALSE(boot_.staging_valid());
  EXPECT_FALSE(boot_.install());
  EXPECT_FALSE(boot_.golden_header().has_value());  // golden untouched
}

TEST_F(BootTest, InstallKeepsOldGoldenOnCorruptUpdate) {
  const auto v1 = stage_image(5, 1, 3000);
  ASSERT_TRUE(boot_.commit_staging(5, 1, 3000));
  ASSERT_TRUE(boot_.install());

  stage_image(5, 2, 3000);
  ASSERT_TRUE(boot_.commit_staging(5, 2, 3000));
  eeprom_.write(boot_.staging_payload_offset(), {0x00});  // corrupt v2
  EXPECT_FALSE(boot_.install());
  // The mote still boots v1.
  ASSERT_TRUE(boot_.golden_valid());
  EXPECT_EQ(boot_.golden_header()->version, 1);
  EXPECT_EQ(boot_.golden_payload(), v1);
}

TEST_F(BootTest, SequentialUpgrades) {
  for (std::uint16_t version = 1; version <= 3; ++version) {
    const auto payload = stage_image(9, version, 2000 + version);
    ASSERT_TRUE(boot_.commit_staging(9, version, 2000u + version));
    ASSERT_TRUE(boot_.install());
    EXPECT_EQ(boot_.golden_header()->version, version);
    EXPECT_EQ(boot_.golden_payload(), payload);
  }
  EXPECT_EQ(boot_.installs(), 3u);
}

TEST_F(BootTest, OversizedImagesRefused) {
  EXPECT_FALSE(boot_.commit_staging(5, 1,
                                    static_cast<std::uint32_t>(
                                        boot_.max_image_bytes() + 1)));
  EXPECT_TRUE(boot_.commit_staging(
      5, 1, static_cast<std::uint32_t>(boot_.max_image_bytes())));
}

TEST_F(BootTest, EraseStagingDiscardsCommit) {
  stage_image(5, 1, 100);
  ASSERT_TRUE(boot_.commit_staging(5, 1, 100));
  boot_.erase_staging();
  EXPECT_FALSE(boot_.staged_header().has_value());
  EXPECT_FALSE(boot_.install());
}

// ---------------------------------------------------------------------------
// Full OTA pipeline: MNP disseminates into the staging slot, the boot
// manager validates and installs on the external start signal.
// ---------------------------------------------------------------------------

TEST(BootOta, DisseminationIntoStagingSlotInstallsEverywhere) {
  sim::Simulator sim(77);
  node::Network network(
      sim, net::Topology::grid(3, 3, 10.0), [&](const net::Topology& t) {
        net::EmpiricalLinkModel::Params lp;
        lp.range_ft = 25.0;
        return std::make_unique<net::EmpiricalLinkModel>(t, lp,
                                                         sim.fork_rng(0x11A7));
      });
  core::MnpConfig cfg;
  constexpr std::size_t kSlot = 64 * 1024;
  cfg.eeprom_base_offset = kSlot + boot::ImageHeader::kBytes;  // staging slot
  auto image = std::make_shared<const core::ProgramImage>(
      3, 2 * cfg.packets_per_segment * cfg.payload_bytes);
  for (net::NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<core::MnpNode>(cfg, image)
                : std::make_unique<core::MnpNode>(cfg));
  }
  network.boot_all();
  ASSERT_TRUE(sim.run_until_condition(sim::hours(2), [&] {
    return network.stats().all_completed();
  }));

  // External start signal: every receiver commits + installs.
  for (net::NodeId id = 1; id < network.size(); ++id) {
    boot::BootManager boot(network.node(id).eeprom(), kSlot);
    ASSERT_TRUE(boot.commit_staging(
        image->id(), 1, static_cast<std::uint32_t>(image->total_bytes())))
        << "node " << id;
    ASSERT_TRUE(boot.staging_valid()) << "node " << id;
    ASSERT_TRUE(boot.install()) << "node " << id;
    EXPECT_TRUE(image->matches(boot.golden_payload())) << "node " << id;
  }
}

}  // namespace
}  // namespace mnp

// XNP baseline tests: single-hop delivery works, multihop does not (the
// limitation that motivates MNP).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace mnp {
namespace {

harness::ExperimentConfig xnp_config() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kXnp;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.spacing_ft = 10.0;
  cfg.range_ft = 40.0;  // whole grid inside one radio cell
  cfg.empirical_links = false;
  cfg.program_bytes = 64 * 22;
  cfg.max_sim_time = sim::hours(1);
  return cfg;
}

TEST(Xnp, SingleCellFullyReprogrammed) {
  const auto r = harness::run_experiment(xnp_config());
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

TEST(Xnp, QueryFixRecoversLostPackets) {
  auto cfg = xnp_config();
  cfg.empirical_links = true;  // lossy links force fix rounds
  cfg.range_ft = 45.0;
  cfg.seed = 3;
  const auto r = harness::run_experiment(cfg);
  // XNP is genuinely unreliable on marginal links: the base's quiet-round
  // heuristic can give up on a node whose gray-zone link keeps eating
  // queries. Require that query/fix recovered everyone with a workable
  // link — at least 8 of 9 — and that whoever completed verifies exactly.
  EXPECT_GE(r.completed_count, 8u);
  EXPECT_EQ(r.verified_count(), r.completed_count);
  // The fix machinery itself must have run: more data transmissions than
  // the one-shot 64-packet pass.
  EXPECT_GT(r.nodes[0].tx_data, 64u);
}

TEST(Xnp, CannotCrossMultipleHops) {
  // Nodes beyond the base's radio range NEVER get the code: XNP has no
  // forwarding. This is the paper's core motivation for MNP.
  auto cfg = xnp_config();
  cfg.rows = 1;
  cfg.cols = 6;
  cfg.range_ft = 15.0;  // base reaches node 1 only
  cfg.max_sim_time = sim::minutes(30);
  const auto r = harness::run_experiment(cfg);
  EXPECT_FALSE(r.all_completed);
  EXPECT_GE(r.completed_count, 2u);  // base + its direct neighbor
  EXPECT_LT(r.completed_count, 6u);
  EXPECT_LT(r.nodes[5].completion, 0);  // far end never completes
}

TEST(Xnp, OnlyBaseTransmitsData) {
  const auto r = harness::run_experiment(xnp_config());
  ASSERT_TRUE(r.all_completed);
  for (std::size_t i = 1; i < r.nodes.size(); ++i) {
    EXPECT_EQ(r.nodes[i].tx_data, 0u) << "node " << i << " forwarded data";
  }
  EXPECT_GT(r.nodes[0].tx_data, 0u);
}

}  // namespace
}  // namespace mnp

// Shared-frame flyweight tests: FramePtr refcounting, FramePool recycling,
// and the headline equivalence claim — zero-copy delivery is bit-identical
// to the brute-force per-receiver copy path, traces and metrics included.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "mnp/mnp_node.hpp"
#include "net/frame.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"
#include "trace/event_log.hpp"

namespace mnp::net {
namespace {

Packet data_packet(std::size_t payload_bytes = 22) {
  DataMsg d;
  d.payload.assign(payload_bytes, 0x5A);
  Packet pkt;
  pkt.payload = std::move(d);
  return pkt;
}

TEST(FramePtr, SharesOnePacketByRefcount) {
  FramePool pool;
  FramePtr a = pool.adopt(data_packet());
  ASSERT_TRUE(a);
  EXPECT_EQ(a.use_count(), 1u);

  FramePtr b = a;  // copy bumps the count, no Packet copy
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.get(), b.get());  // literally the same Packet

  FramePtr c = std::move(b);  // move steals the reference
  EXPECT_FALSE(b);
  EXPECT_EQ(a.use_count(), 2u);

  c.reset();
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.live_frames(), 1u);
  a.reset();
  EXPECT_EQ(pool.live_frames(), 0u);
}

TEST(FramePool, SteadyStateStopsAllocating) {
  FramePool pool;
  for (int i = 0; i < 100; ++i) {
    FramePtr f = pool.adopt(data_packet());
    FramePtr extra = f;  // a second holder, like the channel's Active record
  }
  // One node allocation serviced all 100 transmissions.
  EXPECT_EQ(pool.node_allocations(), 1u);
  EXPECT_EQ(pool.pooled_nodes(), 1u);
}

TEST(FramePool, ReclaimsDataPayloadCapacity) {
  FramePool pool;
  {
    Packet pkt;
    DataMsg d;
    d.payload = pool.acquire_payload();  // empty: pool starts cold
    d.payload.assign(64, 0xAB);
    pkt.payload = std::move(d);
    FramePtr f = pool.adopt(std::move(pkt));
  }  // frame dies; the 64-byte capacity goes back to the pool
  EXPECT_EQ(pool.pooled_payloads(), 1u);

  std::vector<std::uint8_t> buf = pool.acquire_payload();
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 64u);  // recycled, not freshly allocated
  EXPECT_EQ(pool.pooled_payloads(), 0u);
}

TEST(FramePool, RecyclingOffIsAPlainAllocator) {
  FramePool pool;
  pool.set_recycling(false);
  for (int i = 0; i < 5; ++i) {
    FramePtr f = pool.adopt(data_packet());
  }
  EXPECT_EQ(pool.node_allocations(), 5u);  // nothing reused
  EXPECT_EQ(pool.pooled_nodes(), 0u);
  EXPECT_EQ(pool.pooled_payloads(), 0u);
}

TEST(FramePool, FrameMayOutliveThePool) {
  FramePtr survivor;
  {
    FramePool pool;
    survivor = pool.adopt(data_packet());
  }  // pool destroyed first; the frame's shared state keeps release safe
  ASSERT_TRUE(survivor);
  EXPECT_EQ(std::get<DataMsg>(survivor->payload).payload.size(), 22u);
  survivor.reset();  // must not touch freed pool memory (ASan-checked in CI)
}

// --- zero-copy vs. brute-force copy equivalence --------------------------
//
// Channel::Params::zero_copy=false deep-copies the packet once per
// receiver and turns pool recycling off — the allocation behavior the
// simulator had before frames were shared. Both modes must consume the
// same RNG stream, so every delivery, collision, trace line and metric is
// bit-identical on any topology and seed.

harness::ExperimentConfig experiment_config(std::uint64_t seed,
                                            bool zero_copy) {
  harness::ExperimentConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(2);
  cfg.seed = seed;
  cfg.channel.zero_copy = zero_copy;
  return cfg;
}

void expect_runs_identical(const harness::RunResult& a,
                           const harness::RunResult& b) {
  EXPECT_EQ(a.all_completed, b.all_completed);
  EXPECT_EQ(a.completed_count, b.completed_count);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.bulk_overlaps, b.bulk_overlaps);
  EXPECT_EQ(a.sender_order, b.sender_order);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].completion, b.nodes[i].completion);
    EXPECT_EQ(a.nodes[i].active_radio, b.nodes[i].active_radio);
    EXPECT_EQ(a.nodes[i].tx_total, b.nodes[i].tx_total);
    EXPECT_EQ(a.nodes[i].rx_total, b.nodes[i].rx_total);
    EXPECT_EQ(a.nodes[i].eeprom_writes, b.nodes[i].eeprom_writes);
    EXPECT_EQ(a.nodes[i].energy_nah, b.nodes[i].energy_nah);
    EXPECT_EQ(a.nodes[i].image_verified, b.nodes[i].image_verified);
  }
}

TEST(ZeroCopyEquivalence, MetricsBitIdenticalAcrossSeeds) {
  // Randomized multi-seed: the paper-grade claim is "same bytes out", not
  // "statistically similar", so every field must match exactly.
  for (const std::uint64_t seed : {11ull, 57ull, 302ull, 9001ull}) {
    const auto shared = run_experiment(experiment_config(seed, true));
    const auto copied = run_experiment(experiment_config(seed, false));
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_runs_identical(shared, copied);
  }
}

std::string traced_dissemination(std::uint64_t seed, bool zero_copy) {
  sim::Simulator sim(seed);
  Channel::Params cp;
  cp.zero_copy = zero_copy;
  node::Network network(
      sim, Topology::grid(3, 3, 10.0),
      [](const Topology& t) {
        return std::make_unique<DiskLinkModel>(t, 25.0);
      },
      cp);
  trace::EventLog log;
  network.stats().set_event_log(&log);
  core::MnpConfig cfg;
  auto image = std::make_shared<const core::ProgramImage>(
      1, cfg.packets_per_segment * cfg.payload_bytes);
  for (NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<core::MnpNode>(cfg, image)
                : std::make_unique<core::MnpNode>(cfg));
  }
  network.boot_all();
  sim.run_until_condition(sim::hours(1),
                          [&] { return network.stats().all_completed(); });
  // Render the *whole* log — the default 200-line cap would hide drift in
  // the bulk of the trace.
  return log.render(kBroadcastId, log.size() + 1);
}

TEST(ZeroCopyEquivalence, RenderedTracesBitIdentical) {
  for (const std::uint64_t seed : {3ull, 21ull, 777ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(traced_dissemination(seed, true),
              traced_dissemination(seed, false));
  }
}

}  // namespace
}  // namespace mnp::net

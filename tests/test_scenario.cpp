// Scenario engine: builder/parser round-trips, link-model decoration,
// fault injection against live networks, and the determinism contract
// (identical replays, --jobs-independent sweeps, the committed example).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "harness/sweep.hpp"
#include "obs/json_writer.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scenario_engine.hpp"
#include "scenario/scenario_link_model.hpp"
#include "scenario/scenario_parser.hpp"

namespace mnp {
namespace {

using scenario::EventKind;
using scenario::Scenario;
using scenario::ScenarioBuilder;

// --- Scenario / ScenarioBuilder -------------------------------------------

TEST(ScenarioBuilder, SortsEventsByTimeKeepingAuthoredOrderForTies) {
  Scenario s = ScenarioBuilder{}
                   .reboot(sim::sec(30), 4)
                   .kill(sim::sec(10), 4)
                   .move(sim::sec(10), 7, 50.0, 0.0, sim::sec(5))
                   .build("t");
  ASSERT_EQ(s.events().size(), 3u);
  EXPECT_EQ(s.events()[0].kind, EventKind::kKill);
  EXPECT_EQ(s.events()[1].kind, EventKind::kMove);  // same time, authored later
  EXPECT_EQ(s.events()[2].kind, EventKind::kReboot);
}

TEST(ScenarioBuilder, LastEventTimeIncludesWindowsDowntimeAndTravel) {
  EXPECT_EQ(Scenario{}.last_event_time(), 0);
  Scenario s = ScenarioBuilder{}
                   .kill(sim::sec(10), 3, /*down_for=*/sim::sec(60))
                   .partition(sim::sec(20), sim::sec(30), {{0, 1}, {2, 3}})
                   .move(sim::sec(5), 2, 0.0, 0.0, sim::sec(90))
                   .battery_budget(sim::sec(94), 1, 1e9)
                   .build();
  // kill ends at 70s, partition at 50s, move at 95s. The battery monitor
  // counts its arm time (94s) but, being open-ended, adds no duration —
  // it must not hold the horizon past the move.
  EXPECT_EQ(s.last_event_time(), sim::sec(95));
}

// --- text format -----------------------------------------------------------

TEST(ScenarioParser, ParsesEveryVerbAndExpandsNodeLists) {
  const auto r = scenario::parse_scenario_text(
      "# churn demo\n"
      "scenario demo\n"
      "at 10s kill 3-5,9 down 30s\n"
      "at 2min crash-fraction 0.2 down 45s\n"
      "at 40s reboot 3\n"
      "at 0s battery 7 budget 50000\n"
      "at 3min partition 30s groups 0-4|5-9\n"
      "at 1min degrade 0.3 for 20s nodes 1,2\n"
      "at 30s move 5 to 100 40 over 60s\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.scenario.name(), "demo");
  // "kill 3-5,9" expands to four kill events.
  std::size_t kills = 0;
  for (const auto& e : r.scenario.events()) {
    if (e.kind == EventKind::kKill) {
      ++kills;
      EXPECT_EQ(e.at, sim::sec(10));
      EXPECT_EQ(e.duration, sim::sec(30));
    }
  }
  EXPECT_EQ(kills, 4u);
  EXPECT_EQ(r.scenario.events().size(), 4u + 6u);
  EXPECT_EQ(r.scenario.events().front().kind, EventKind::kBatteryBudget);
}

TEST(ScenarioParser, RoundTripsThroughToText) {
  Scenario s = ScenarioBuilder{}
                   .kill(sim::sec(10), 3, sim::sec(30))
                   .crash_fraction(sim::minutes(2), 0.2, sim::sec(45))
                   .battery_budget(0, 7, 50000.0)
                   .partition(sim::minutes(3), sim::sec(30),
                              {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}})
                   .degrade(sim::minutes(1), sim::sec(20), 0.3, {1, 2})
                   .move(sim::sec(30), 5, 100.0, 40.0, sim::sec(60))
                   .build("roundtrip");
  const std::string text = scenario::to_text(s);
  const auto r = scenario::parse_scenario_text(text);
  ASSERT_TRUE(r.ok) << r.error << "\n" << text;
  EXPECT_EQ(r.scenario.name(), s.name());
  ASSERT_EQ(r.scenario.events().size(), s.events().size());
  for (std::size_t i = 0; i < s.events().size(); ++i) {
    const auto& a = s.events()[i];
    const auto& b = r.scenario.events()[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.node, b.node);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.y, b.y);
    EXPECT_EQ(a.groups, b.groups);
    EXPECT_EQ(a.nodes, b.nodes);
  }
  // Serialization is a fixed point: text -> scenario -> identical text.
  EXPECT_EQ(scenario::to_text(r.scenario), text);
}

TEST(ScenarioParser, ErrorsCarryTheLineNumber) {
  const auto bare = scenario::parse_scenario_text("at 10s kill 3\nat 20 kill 4\n");
  ASSERT_FALSE(bare.ok);
  EXPECT_NE(bare.error.find("line 2"), std::string::npos) << bare.error;

  const auto verb = scenario::parse_scenario_text("\n\nat 1s explode 3\n");
  ASSERT_FALSE(verb.ok);
  EXPECT_NE(verb.error.find("line 3"), std::string::npos) << verb.error;
  EXPECT_NE(verb.error.find("explode"), std::string::npos) << verb.error;

  EXPECT_FALSE(scenario::parse_scenario_text("at 1s partition 5s groups 0-3").ok);
  EXPECT_FALSE(scenario::parse_scenario_text("at 1s crash-fraction 1.5").ok);
  EXPECT_FALSE(scenario::parse_scenario_text("at 1s degrade 0.5 for").ok);
  EXPECT_FALSE(scenario::load_scenario_file("/nonexistent/x.scn").ok);
}

TEST(ScenarioParser, CommittedExampleParses) {
  const auto r = scenario::load_scenario_file(
      std::string(MNP_EXAMPLE_SCENARIO_DIR) + "/churn_partition_mobility.scn");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.scenario.name(), "churn-partition-mobility");
  ASSERT_EQ(r.scenario.events().size(), 5u);
  bool has_crash = false, has_partition = false;
  std::size_t moves = 0;
  for (const auto& e : r.scenario.events()) {
    has_crash |= e.kind == EventKind::kCrashFraction;
    has_partition |= e.kind == EventKind::kPartition;
    moves += e.kind == EventKind::kMove ? 1 : 0;
  }
  EXPECT_TRUE(has_crash);
  EXPECT_TRUE(has_partition);
  EXPECT_EQ(moves, 3u);
}

// --- ScenarioLinkModel -----------------------------------------------------

TEST(ScenarioLinkModel, PartitionSeversCrossGroupLinksOnly) {
  net::Topology topo;
  for (int i = 0; i < 4; ++i) topo.add({i * 10.0, 0.0});
  scenario::ScenarioLinkModel links(
      std::make_unique<net::DiskLinkModel>(topo, 100.0), topo.size());
  ASSERT_GT(links.packet_success(0, 3, 1.0), 0.0);
  EXPECT_EQ(links.revision(), 0u);

  links.set_partition({{0, 1}, {2}});
  EXPECT_EQ(links.revision(), 1u);
  EXPECT_GT(links.packet_success(0, 1, 1.0), 0.0);  // same group
  EXPECT_EQ(links.packet_success(0, 2, 1.0), 0.0);  // cross group
  EXPECT_FALSE(links.interferes(0, 2, 1.0));        // radio-disjoint
  // Node 3 is unlisted: its implicit group talks to neither side.
  EXPECT_EQ(links.packet_success(3, 0, 1.0), 0.0);
  EXPECT_EQ(links.packet_success(2, 3, 1.0), 0.0);

  links.clear_partition();
  EXPECT_EQ(links.revision(), 2u);
  EXPECT_GT(links.packet_success(0, 2, 1.0), 0.0);
}

TEST(ScenarioLinkModel, DegradeScalesBothEndpointsAndUndoes) {
  net::Topology topo;
  topo.add({0.0, 0.0});
  topo.add({10.0, 0.0});
  topo.add({20.0, 0.0});
  scenario::ScenarioLinkModel links(
      std::make_unique<net::DiskLinkModel>(topo, 100.0), topo.size());
  const double base = links.packet_success(0, 1, 1.0);
  ASSERT_DOUBLE_EQ(base, 1.0);

  links.begin_degrade(0.5, {0});
  EXPECT_DOUBLE_EQ(links.packet_success(0, 1, 1.0), 0.5);  // src degraded
  EXPECT_DOUBLE_EQ(links.packet_success(1, 0, 1.0), 0.5);  // dst degraded
  EXPECT_DOUBLE_EQ(links.packet_success(1, 2, 1.0), 1.0);  // untouched pair
  links.begin_degrade(0.5, {1});
  EXPECT_DOUBLE_EQ(links.packet_success(0, 1, 1.0), 0.25);  // both ends

  links.end_degrade(0.5, {0});
  links.end_degrade(0.5, {1});
  EXPECT_DOUBLE_EQ(links.packet_success(0, 1, 1.0), 1.0);
  EXPECT_EQ(links.revision(), 4u);
}

// --- engine against a live run --------------------------------------------

harness::ExperimentConfig small_config() {
  harness::ExperimentConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(1);
  return cfg;
}

TEST(ScenarioEngine, RejectsInvalidScenariosBeforeBoot) {
  harness::ExperimentConfig cfg = small_config();
  cfg.scenario = ScenarioBuilder{}.kill(sim::sec(1), 99).build("bad");
  const auto r = harness::run_experiment(cfg);
  EXPECT_FALSE(r.scenario_error.empty());
  EXPECT_EQ(r.completed_count, 0u);

  cfg.scenario =
      ScenarioBuilder{}.partition(sim::sec(1), sim::sec(1), {{0, 1}, {1, 2}})
          .build("dup");
  EXPECT_NE(harness::run_experiment(cfg).scenario_error.find("two groups"),
            std::string::npos);
}

TEST(ScenarioEngine, PermanentKillLeavesTheNodeDeadAndOthersConverge) {
  harness::ExperimentConfig cfg = small_config();
  cfg.scenario = ScenarioBuilder{}.kill(sim::sec(20), 8).build("one-dead");
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.scenario_error.empty());
  EXPECT_EQ(r.dead_nodes, 1u);
  EXPECT_EQ(r.scenario_injected, 1u);
  EXPECT_FALSE(r.all_completed);
  // Everyone else still finishes and verifies.
  EXPECT_GE(r.completed_count, 8u);
  for (net::NodeId id = 0; id < 8; ++id) {
    EXPECT_TRUE(r.nodes[id].image_verified) << "node " << id;
  }
}

TEST(ScenarioEngine, BatteryBudgetKillsTheNodeOnceSpent) {
  harness::ExperimentConfig cfg = small_config();
  // A fraction of the ~1e6 nAh a full run costs: the node dies mid-run.
  cfg.scenario =
      ScenarioBuilder{}.battery_budget(0, 4, 20000.0).build("battery");
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.scenario_error.empty());
  EXPECT_EQ(r.dead_nodes, 1u);
  EXPECT_GE(r.scenario_injected, 1u);
  // The meter kept billing until the watchdog fired, so the victim's spend
  // is at (or just past) the budget, never far beyond it.
  EXPECT_GE(r.nodes[4].energy_nah, 20000.0);
  EXPECT_LT(r.nodes[4].energy_nah, 40000.0);
}

TEST(ScenarioEngine, MobilityReparentsAndStillConverges) {
  harness::ExperimentConfig cfg = small_config();
  // Node 8 (far corner) glides next to the base while downloading.
  cfg.scenario =
      ScenarioBuilder{}.move(sim::sec(10), 8, 5.0, 0.0, sim::sec(30))
          .build("walker");
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.scenario_error.empty());
  EXPECT_TRUE(r.all_completed);
  EXPECT_EQ(r.verified_count(), 9u);
  EXPECT_EQ(r.dead_nodes, 0u);
}

TEST(ScenarioEngine, ChurnRunReplaysBitIdentically) {
  harness::ExperimentConfig cfg = small_config();
  cfg.scenario = ScenarioBuilder{}
                     .kill(sim::sec(15), 4, /*down_for=*/sim::sec(20))
                     .degrade(sim::sec(5), sim::sec(10), 0.5)
                     .build("replay");
  harness::Observation a, b;
  const auto ra = harness::run_experiment(cfg, &a);
  const auto rb = harness::run_experiment(cfg, &b);
  ASSERT_TRUE(ra.scenario_error.empty());
  EXPECT_EQ(ra.completion_time, rb.completion_time);
  EXPECT_EQ(ra.transmissions, rb.transmissions);
  EXPECT_EQ(ra.collisions, rb.collisions);
  EXPECT_EQ(ra.scenario_injected, rb.scenario_injected);
  std::ostringstream ta, tb;
  harness::write_trace_json(ta, a);
  harness::write_trace_json(tb, b);
  EXPECT_EQ(ta.str(), tb.str());
  // The fault windows are visible in the export: a scenario track exists.
  EXPECT_NE(ta.str().find("\"scenario\""), std::string::npos);
  EXPECT_NE(ta.str().find("degrade"), std::string::npos);
  EXPECT_NE(ta.str().find("kill 4"), std::string::npos);
}

TEST(ScenarioEngine, SweepIsJobCountIndependentUnderChurn) {
  harness::ExperimentConfig cfg = small_config();
  cfg.scenario = ScenarioBuilder{}
                     .kill(sim::sec(15), 4, /*down_for=*/sim::sec(20))
                     .partition(sim::sec(10), sim::sec(10), {{0, 1, 2, 3, 4},
                                                             {5, 6, 7, 8}})
                     .build("sweep");
  const auto run = [&cfg](std::size_t jobs) {
    harness::SweepOptions opt;
    opt.jobs = jobs;
    opt.allow_oversubscribe = true;
    harness::Observation obs;
    opt.observe = &obs;
    const auto sweep = harness::run_sweep(cfg, 4, 1, opt);
    obs::JsonWriter w;
    obs.metrics.write_json(w);
    return std::pair<std::size_t, std::string>(sweep.fully_completed_runs,
                                               w.str());
  };
  const auto sequential = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(sequential.first, parallel.first);
  EXPECT_EQ(sequential.second, parallel.second);
  EXPECT_NE(sequential.second.find("scenario.kills"), std::string::npos);
}

}  // namespace
}  // namespace mnp

// Unit tests for util::Bitmap (MNP's MissingVector / ForwardVector).
#include <gtest/gtest.h>

#include "util/bitmap.hpp"

namespace mnp::util {
namespace {

TEST(Bitmap, DefaultIsEmpty) {
  Bitmap b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(Bitmap, SizeClampsToMax) {
  Bitmap b(4096);
  EXPECT_EQ(b.size(), Bitmap::kMaxBits);
}

TEST(Bitmap, AllSetInitializesEveryBit) {
  Bitmap b = Bitmap::all_set(128);
  EXPECT_EQ(b.count(), 128u);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_TRUE(b.test(i)) << i;
}

TEST(Bitmap, AllSetPartialWidth) {
  Bitmap b = Bitmap::all_set(37);
  EXPECT_EQ(b.count(), 37u);
  EXPECT_FALSE(b.test(37));
  EXPECT_FALSE(b.test(127));
}

TEST(Bitmap, SetClearTest) {
  Bitmap b(16);
  b.set(3);
  b.set(15);
  EXPECT_TRUE(b.test(3));
  EXPECT_TRUE(b.test(15));
  EXPECT_FALSE(b.test(4));
  EXPECT_EQ(b.count(), 2u);
  b.clear(3);
  EXPECT_FALSE(b.test(3));
  EXPECT_EQ(b.count(), 1u);
}

TEST(Bitmap, OutOfRangeOpsAreNoops) {
  Bitmap b(8);
  b.set(8);    // ignored
  b.set(200);  // ignored
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.test(8));
  EXPECT_FALSE(b.test(10000));
}

TEST(Bitmap, FindFirstSet) {
  Bitmap b(64);
  EXPECT_EQ(b.find_first_set(), 64u);
  b.set(10);
  b.set(40);
  EXPECT_EQ(b.find_first_set(), 10u);
  EXPECT_EQ(b.find_first_set(11), 40u);
  EXPECT_EQ(b.find_first_set(41), 64u);
}

TEST(Bitmap, UnionMergesForwardVectors) {
  // The sender's ForwardVector is the union of requesters' missing sets.
  Bitmap a(32), b(32);
  a.set(1);
  a.set(5);
  b.set(5);
  b.set(9);
  Bitmap merged = a | b;
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_TRUE(merged.test(1));
  EXPECT_TRUE(merged.test(5));
  EXPECT_TRUE(merged.test(9));
}

TEST(Bitmap, IntersectionAndEquality) {
  Bitmap a = Bitmap::all_set(16);
  Bitmap b(16);
  b.set(2);
  b.set(7);
  Bitmap both = a & b;
  EXPECT_EQ(both, b);
  EXPECT_FALSE(both == a);
}

TEST(Bitmap, RoundTripsThroughBytes) {
  Bitmap b(128);
  for (std::size_t i = 0; i < 128; i += 7) b.set(i);
  Bitmap restored = Bitmap::from_bytes(b.to_bytes(), 128);
  EXPECT_EQ(restored, b);
}

TEST(Bitmap, FromBytesMasksTrailingBits) {
  Bitmap full = Bitmap::all_set(128);
  Bitmap narrow = Bitmap::from_bytes(full.to_bytes(), 20);
  EXPECT_EQ(narrow.size(), 20u);
  EXPECT_EQ(narrow.count(), 20u);
  EXPECT_FALSE(narrow.test(20));
}

TEST(Bitmap, ToStringShowsBits) {
  Bitmap b(4);
  b.set(0);
  b.set(2);
  EXPECT_EQ(b.to_string(), "1010");
}

TEST(Bitmap, SixteenByteWirePayload) {
  // The paper restricts segments to 128 packets so the vector is 16 bytes.
  Bitmap b = Bitmap::all_set(128);
  EXPECT_EQ(b.byte_size(), 16u);
  EXPECT_EQ(Bitmap::kMaxBytes, 16u);
}

class BitmapWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitmapWidthTest, SetAllThenClearAllAtEveryWidth) {
  const std::size_t width = GetParam();
  Bitmap b(width);
  b.set_all();
  EXPECT_EQ(b.count(), width);
  EXPECT_EQ(b.find_first_set(), width ? 0u : width);
  b.clear_all();
  EXPECT_EQ(b.count(), 0u);
}

TEST_P(BitmapWidthTest, EachBitIsIndependent) {
  const std::size_t width = GetParam();
  for (std::size_t i = 0; i < width; ++i) {
    Bitmap b(width);
    b.set(i);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.find_first_set(), i);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitmapWidthTest,
                         ::testing::Values(0, 1, 7, 8, 9, 31, 64, 127, 128));

}  // namespace
}  // namespace mnp::util

// Unit tests for the typed packet variant: type mapping, logical
// destinations, and on-air sizes (airtime inputs).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "net/packet.hpp"

namespace mnp::net {
namespace {

template <typename T>
Packet make(T msg) {
  Packet pkt;
  pkt.payload = std::move(msg);
  return pkt;
}

TEST(Packet, TypeMappingCoversEveryVariant) {
  EXPECT_EQ(make(AdvertisementMsg{}).type(), PacketType::kAdvertisement);
  EXPECT_EQ(make(DownloadRequestMsg{}).type(), PacketType::kDownloadRequest);
  EXPECT_EQ(make(StartDownloadMsg{}).type(), PacketType::kStartDownload);
  EXPECT_EQ(make(DataMsg{}).type(), PacketType::kData);
  EXPECT_EQ(make(EndDownloadMsg{}).type(), PacketType::kEndDownload);
  EXPECT_EQ(make(QueryMsg{}).type(), PacketType::kQuery);
  EXPECT_EQ(make(RepairRequestMsg{}).type(), PacketType::kRepairRequest);
  EXPECT_EQ(make(DelugeSummaryMsg{}).type(), PacketType::kDelugeSummary);
  EXPECT_EQ(make(DelugeRequestMsg{}).type(), PacketType::kDelugeRequest);
  EXPECT_EQ(make(DelugeDataMsg{}).type(), PacketType::kDelugeData);
  EXPECT_EQ(make(MoapPublishMsg{}).type(), PacketType::kMoapPublish);
  EXPECT_EQ(make(MoapSubscribeMsg{}).type(), PacketType::kMoapSubscribe);
  EXPECT_EQ(make(MoapDataMsg{}).type(), PacketType::kMoapData);
  EXPECT_EQ(make(MoapNackMsg{}).type(), PacketType::kMoapNack);
  EXPECT_EQ(make(XnpDataMsg{}).type(), PacketType::kXnpData);
  EXPECT_EQ(make(XnpQueryMsg{}).type(), PacketType::kXnpQuery);
  EXPECT_EQ(make(XnpFixRequestMsg{}).type(), PacketType::kXnpFixRequest);
}

TEST(Packet, LogicalDestDefaultsToBroadcast) {
  EXPECT_EQ(make(AdvertisementMsg{}).logical_dest(), kBroadcastId);
  EXPECT_EQ(make(DataMsg{}).logical_dest(), kBroadcastId);
  EXPECT_EQ(make(XnpQueryMsg{}).logical_dest(), kBroadcastId);
}

TEST(Packet, AddressedMessagesCarryTheirDest) {
  DownloadRequestMsg req;
  req.dest = 17;
  EXPECT_EQ(make(req).logical_dest(), 17);
  RepairRequestMsg rep;
  rep.dest = 4;
  EXPECT_EQ(make(rep).logical_dest(), 4);
  MoapNackMsg nack;
  nack.dest = 9;
  EXPECT_EQ(make(nack).logical_dest(), 9);
}

TEST(Packet, AsReturnsTypedPayloadOrNull) {
  AdvertisementMsg adv;
  adv.seg_id = 3;
  Packet pkt = make(adv);
  pkt.src = 12;
  ASSERT_NE(pkt.as<AdvertisementMsg>(), nullptr);
  EXPECT_EQ(pkt.as<AdvertisementMsg>()->seg_id, 3);
  EXPECT_EQ(pkt.as<DataMsg>(), nullptr);
}

TEST(Packet, WireBytesIncludeFraming) {
  Packet adv{0, AdvertisementMsg{}};
  EXPECT_EQ(adv.wire_bytes(), kFramingBytes + AdvertisementMsg::kWireBytes);
}

TEST(Packet, DataWireBytesScaleWithPayload) {
  DataMsg d;
  d.payload.assign(22, 0xAB);
  Packet pkt = make(d);
  EXPECT_EQ(pkt.wire_bytes(), kFramingBytes + DataMsg::kHeaderBytes + 22);
}

TEST(Packet, DownloadRequestCarries16ByteMissingVector) {
  // A full MissingVector must fit in one radio packet (paper section 3.3):
  // total on-air size stays well under the CC1000 practical frame bound.
  Packet req{0, DownloadRequestMsg{}};
  EXPECT_EQ(req.wire_bytes(),
            kFramingBytes + 2 + 2 + 2 + 1 + 2 + 1 + util::Bitmap::kMaxBytes);
  EXPECT_LE(req.wire_bytes(), 64u);
}

TEST(Packet, BulkDataClassification) {
  EXPECT_TRUE(is_bulk_data(PacketType::kData));
  EXPECT_TRUE(is_bulk_data(PacketType::kDelugeData));
  EXPECT_TRUE(is_bulk_data(PacketType::kMoapData));
  EXPECT_TRUE(is_bulk_data(PacketType::kXnpData));
  EXPECT_FALSE(is_bulk_data(PacketType::kAdvertisement));
  EXPECT_FALSE(is_bulk_data(PacketType::kDownloadRequest));
  EXPECT_FALSE(is_bulk_data(PacketType::kQuery));
}

TEST(Packet, TypeNamesAreUniqueAndNonEmpty) {
  const PacketType all[] = {
      PacketType::kAdvertisement, PacketType::kDownloadRequest,
      PacketType::kStartDownload, PacketType::kData,
      PacketType::kEndDownload,   PacketType::kQuery,
      PacketType::kRepairRequest, PacketType::kDelugeSummary,
      PacketType::kDelugeRequest, PacketType::kDelugeData,
      PacketType::kMoapPublish,   PacketType::kMoapSubscribe,
      PacketType::kMoapData,      PacketType::kMoapNack,
      PacketType::kXnpData,       PacketType::kXnpQuery,
      PacketType::kXnpFixRequest};
  std::set<std::string> names;
  for (auto t : all) {
    const std::string name = to_string(t);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(Packet, DefaultPowerScaleIsFull) {
  Packet pkt{0, AdvertisementMsg{}};
  EXPECT_DOUBLE_EQ(pkt.power_scale, 1.0);
}

}  // namespace
}  // namespace mnp::net

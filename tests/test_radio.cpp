// Radio state machine unit tests (complementing the channel tests, which
// focus on propagation and collision semantics).
#include <gtest/gtest.h>

#include <memory>

#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/radio.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {
namespace {

class RadioTest : public ::testing::Test {
 protected:
  RadioTest() {
    topo_.add({0.0, 0.0});
    topo_.add({10.0, 0.0});
    links_ = std::make_unique<DiskLinkModel>(topo_, 15.0);
    channel_ = std::make_unique<Channel>(sim_, topo_, *links_);
    r0_ = std::make_unique<Radio>(0, sim_.scheduler(), *channel_, m0_);
    r1_ = std::make_unique<Radio>(1, sim_.scheduler(), *channel_, m1_);
    channel_->register_radio(*r0_);
    channel_->register_radio(*r1_);
  }

  static Packet adv() {
    Packet pkt;
    pkt.payload = AdvertisementMsg{};
    return pkt;
  }

  sim::Simulator sim_{1};
  Topology topo_;
  std::unique_ptr<DiskLinkModel> links_;
  std::unique_ptr<Channel> channel_;
  energy::EnergyMeter m0_, m1_;
  std::unique_ptr<Radio> r0_, r1_;
};

TEST_F(RadioTest, BootsOff) {
  EXPECT_EQ(r0_->state(), Radio::State::kOff);
  EXPECT_FALSE(r0_->is_on());
  EXPECT_FALSE(r0_->is_listening());
}

TEST_F(RadioTest, OnOffTransitions) {
  r0_->turn_on();
  EXPECT_EQ(r0_->state(), Radio::State::kListening);
  EXPECT_TRUE(r0_->is_on());
  r0_->turn_off();
  EXPECT_EQ(r0_->state(), Radio::State::kOff);
}

TEST_F(RadioTest, RepeatedTransitionsAreIdempotent) {
  r0_->turn_on();
  r0_->turn_on();
  EXPECT_EQ(r0_->state(), Radio::State::kListening);
  r0_->turn_off();
  r0_->turn_off();
  EXPECT_EQ(r0_->state(), Radio::State::kOff);
}

TEST_F(RadioTest, MeterIntegratesOnTime) {
  r0_->turn_on();
  sim_.scheduler().schedule_at(sim::sec(5), [this] { r0_->turn_off(); });
  sim_.run_until(sim::sec(10));
  EXPECT_EQ(m0_.active_radio_time(sim::sec(10)), sim::sec(5));
}

TEST_F(RadioTest, TransmittingStateDuringAirtime) {
  r0_->turn_on();
  EXPECT_TRUE(r0_->start_transmission(adv()));
  EXPECT_EQ(r0_->state(), Radio::State::kTransmitting);
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(r0_->state(), Radio::State::kListening);
}

TEST_F(RadioTest, SendDoneFires) {
  int done = 0;
  r0_->set_send_done_handler([&] { ++done; });
  r0_->turn_on();
  r0_->start_transmission(adv());
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(done, 1);
}

TEST_F(RadioTest, TurnOnCancelsPendingOff) {
  r0_->turn_on();
  r0_->start_transmission(adv());
  r0_->turn_off();  // deferred: transmitting
  r0_->turn_on();   // changes its mind before airtime ends
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(r0_->state(), Radio::State::kListening);
}

TEST_F(RadioTest, DeliverOnlyWhileListening) {
  int received = 0;
  r1_->set_receive_handler([&](const Packet&) { ++received; });
  r1_->deliver(adv());  // off: dropped
  EXPECT_EQ(received, 0);
  r1_->turn_on();
  r1_->deliver(adv());
  EXPECT_EQ(received, 1);
  EXPECT_EQ(m1_.rx_packets(), 1u);
}

TEST_F(RadioTest, SensesCarrierOfNeighbor) {
  r0_->turn_on();
  r1_->turn_on();
  EXPECT_FALSE(r1_->senses_carrier());
  r0_->start_transmission(adv());
  EXPECT_TRUE(r1_->senses_carrier());
  sim_.run_until(sim::sec(1));
  EXPECT_FALSE(r1_->senses_carrier());
}

TEST_F(RadioTest, TxChargesMeter) {
  r0_->turn_on();
  r0_->start_transmission(adv());
  sim_.run_until(sim::sec(1));
  EXPECT_EQ(m0_.tx_packets(), 1u);
}

}  // namespace
}  // namespace mnp::net

// mnp_lint's own test suite (ISSUE: every rule family must demonstrably
// fail on a seeded-bad fixture, not just pass on the real tree — the
// real-tree gate is the mnp_lint.src CTest test).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace lint = mnp::lint;

namespace {

bool has_diag(const std::vector<lint::Diagnostic>& diags,
              const std::string& rule, const std::string& needle) {
  return std::any_of(diags.begin(), diags.end(), [&](const auto& d) {
    return d.rule == rule && d.message.find(needle) != std::string::npos;
  });
}

std::string diags_str(const std::vector<lint::Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += d.str() + "\n";
  return out;
}

// --- lexer ------------------------------------------------------------------

TEST(Lexer, StripsCommentsStringsAndPreprocessor) {
  const auto tokens = lint::lex(
      "#include <ctime>  // rand in a comment\n"
      "/* std::rand() */ int x = f(\"rand srand time(\");\n");
  for (const auto& t : tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "ctime");
  }
  // The string literal survives as an empty placeholder token.
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(std::any_of(tokens.begin(), tokens.end(), [](const auto& t) {
    return t.kind == lint::Token::Kind::kString;
  }));
}

TEST(Lexer, TracksLinesAndTwoCharPunctuators) {
  const auto tokens = lint::lex("a\nb != c\nd->e");
  ASSERT_GE(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[2].text, "!=");
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[5].text, "->");
  EXPECT_EQ(tokens[5].line, 3);
}

TEST(Lexer, MatchDelimHonorsNesting) {
  const auto tokens = lint::lex("f(a, g(b), h[i{j}])");
  ASSERT_TRUE(tokens[1].is("("));
  EXPECT_TRUE(tokens[lint::match_delim(tokens, 1)].is(")"));
  EXPECT_EQ(lint::match_delim(tokens, 1), tokens.size() - 2);
}

// --- spec / allowlist parsing ----------------------------------------------

constexpr const char* kTinySpec = R"(
# toy machine
machine toy
file src/toy.cpp
states Idle Run Sleep Fail
transient Fail fail
initial Idle
Idle -> Run
Run -> Sleep                # with a comment
Sleep -> Idle
Run -> Fail
Fail -> Idle
)";

TEST(Spec, ParsesDirectivesAndTransitions) {
  lint::MachineSpec spec;
  std::string error;
  ASSERT_TRUE(lint::parse_machine_spec(kTinySpec, &spec, &error)) << error;
  EXPECT_EQ(spec.name, "toy");
  EXPECT_EQ(spec.file, "src/toy.cpp");
  EXPECT_EQ(spec.states.size(), 4u);
  EXPECT_EQ(spec.transient_state, "Fail");
  EXPECT_EQ(spec.transient_fn, "fail");
  EXPECT_EQ(spec.initial, "Idle");
  EXPECT_EQ(spec.transitions.size(), 5u);
  EXPECT_TRUE(spec.transitions.count({"Idle", "Run"}));
}

TEST(Spec, RejectsUndeclaredStatesSelfLoopsAndDuplicates) {
  lint::MachineSpec spec;
  std::string error;
  EXPECT_FALSE(lint::parse_machine_spec(
      "machine m\nfile f.cpp\nstates A B\nA -> C\n", &spec, &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos);
  EXPECT_FALSE(lint::parse_machine_spec(
      "machine m\nfile f.cpp\nstates A B\nA -> A\n", &spec, &error));
  EXPECT_FALSE(lint::parse_machine_spec(
      "machine m\nfile f.cpp\nstates A B\nA -> B\nA -> B\n", &spec, &error));
  EXPECT_FALSE(lint::parse_machine_spec("states A\nA -> A\n", &spec, &error));
}

TEST(Allowlist, MatchesOnPathSuffix) {
  const lint::Allowlist allow = lint::parse_allowlist(
      "# comment only\n"
      "determinism src/diff/delta.cpp unordered_multimap  # vetted\n");
  EXPECT_EQ(allow.size(), 1u);
  EXPECT_TRUE(allow.allows("determinism", "src/diff/delta.cpp",
                           "unordered_multimap"));
  EXPECT_TRUE(allow.allows("determinism", "/repo/src/diff/delta.cpp",
                           "unordered_multimap"));
  // Suffix match must align on a path component.
  EXPECT_FALSE(allow.allows("determinism", "src/diff/not_delta.cpp",
                            "unordered_multimap"));
  EXPECT_FALSE(allow.allows("determinism", "src/other.cpp",
                            "unordered_multimap"));
  EXPECT_FALSE(allow.allows("hygiene", "src/diff/delta.cpp",
                            "unordered_multimap"));
}

// --- rule family 1: state machine -------------------------------------------

lint::MachineSpec tiny_spec() {
  lint::MachineSpec spec;
  std::string error;
  EXPECT_TRUE(lint::parse_machine_spec(kTinySpec, &spec, &error)) << error;
  return spec;
}

// A fixture covering every context idiom the extractor understands:
// asserts, switch labels, != guards with early return, helper
// attribution, deferred (lambda) targets and a transient function.
constexpr const char* kGoodMachine = R"cpp(
void Toy::start() {
  assert(state_ == State::kIdle);
  begin_run();  // Idle -> Run via helper attribution
}
void Toy::begin_run() {
  change_state(State::kRun);
  timer_ = schedule([this] { fail(); });  // deferred Run -> Fail
}
void Toy::on_tick() {
  switch (state_) {
    case State::kRun:
      change_state(State::kSleep);  // Run -> Sleep
      break;
    default:
      break;
  }
}
void Toy::on_wake() {
  if (state_ != State::kSleep) return;
  change_state(State::kIdle);  // Sleep -> Idle
}
void Toy::fail() {
  change_state(State::kIdle);  // Fail -> Idle
}
)cpp";

TEST(StateMachine, CleanImplementationMatchesSpec) {
  const lint::SourceFile file{"src/toy.cpp", kGoodMachine};
  const auto diags = lint::check_state_machine(file, tiny_spec());
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

TEST(StateMachine, ExtractsTheFullTable) {
  const lint::SourceFile file{"src/toy.cpp", kGoodMachine};
  std::vector<lint::Diagnostic> diags;
  const auto table = lint::extract_transitions(file, tiny_spec(), &diags);
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
  std::set<std::pair<std::string, std::string>> edges;
  for (const auto& tr : table) edges.emplace(tr.from, tr.to);
  EXPECT_EQ(edges, tiny_spec().transitions);
}

TEST(StateMachine, FlagsForbiddenSleepToForwardTransition) {
  // The MNP spec deliberately omits Sleep -> Forward: a sleeping node must
  // win sender selection again before forwarding. Seed exactly that bug.
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::on_wake() {\n"
      "  if (state_ != State::kSleep) return;\n"
      "  change_state(State::kRun);\n"  // spec says Sleep -> Idle only
      "}\n"};
  const auto diags = lint::check_state_machine(file, tiny_spec());
  EXPECT_TRUE(has_diag(diags, "state-machine",
                       "forbidden transition Sleep -> Run"))
      << diags_str(diags);
}

TEST(StateMachine, FlagsSpecTransitionWithNoImplementation) {
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::on_wake() {\n"
      "  if (state_ != State::kSleep) return;\n"
      "  change_state(State::kIdle);\n"
      "}\n"};
  const auto diags = lint::check_state_machine(file, tiny_spec());
  EXPECT_TRUE(has_diag(diags, "state-machine",
                       "spec transition Idle -> Run has no implementing"))
      << diags_str(diags);
}

TEST(StateMachine, FlagsUnresolvableTransitionSite) {
  // A public entry point that mutates state with no guard anywhere.
  const lint::SourceFile file{"src/toy.cpp",
                              "void Toy::on_packet() {\n"
                              "  change_state(State::kRun);\n"
                              "}\n"};
  const auto diags = lint::check_state_machine(file, tiny_spec());
  EXPECT_TRUE(has_diag(diags, "state-machine", "unresolvable"))
      << diags_str(diags);
}

TEST(StateMachine, FlagsStateNameOutsideTheSpec) {
  const lint::SourceFile file{"src/toy.cpp",
                              "void Toy::on_wake() {\n"
                              "  assert(state_ == State::kIdle);\n"
                              "  change_state(State::kWarp);\n"
                              "}\n"};
  const auto diags = lint::check_state_machine(file, tiny_spec());
  EXPECT_TRUE(has_diag(diags, "state-machine", "unknown state State::kWarp"))
      << diags_str(diags);
}

TEST(StateMachine, DirectAssignmentIdiomAndElseBranch) {
  // Baseline idiom: state_ = State::kX; plus else-branch refinement.
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::poll() {\n"
      "  if (state_ == State::kIdle) {\n"
      "    state_ = State::kRun;\n"
      "  } else if (state_ == State::kRun) {\n"
      "    state_ = State::kSleep;\n"
      "  }\n"
      "}\n"
      "void Toy::wake() {\n"
      "  if (state_ != State::kSleep) return;\n"
      "  state_ = State::kIdle;\n"
      "}\n"
      "void Toy::never() {\n"
      "  if (state_ == State::kRun) fail();\n"  // Run -> Fail
      "}\n"
      "void Toy::fail() { state_ = State::kIdle; }\n"};
  const auto diags = lint::check_state_machine(file, tiny_spec());
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

// --- rule family 2: determinism ---------------------------------------------

TEST(Determinism, FlagsWallClockAndGlobalPrng) {
  const lint::Allowlist empty;
  const lint::SourceFile file{
      "src/sim/bad.cpp",
      "int f() { return std::rand(); }\n"
      "long g() { return time(nullptr); }\n"
      "auto h() { return std::chrono::system_clock::now(); }\n"
      "std::random_device rd;\n"};
  const auto diags = lint::check_determinism(file, empty);
  EXPECT_TRUE(has_diag(diags, "determinism", "'rand'")) << diags_str(diags);
  EXPECT_TRUE(has_diag(diags, "determinism", "'time'")) << diags_str(diags);
  EXPECT_TRUE(has_diag(diags, "determinism", "'system_clock'"));
  EXPECT_TRUE(has_diag(diags, "determinism", "'random_device'"));
}

TEST(Determinism, IgnoresMemberCallsCommentsAndLookalikes) {
  const lint::Allowlist empty;
  const lint::SourceFile file{
      "src/sim/good.cpp",
      "// std::rand() would be wrong here\n"
      "sim::Time t = sched.time();\n"        // simulator clock member
      "auto s = format_time(now);\n"         // identifier merely contains
      "auto a = airtime(bytes);\n"
      "log(\"rand srand time(\");\n"};
  const auto diags = lint::check_determinism(file, empty);
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

TEST(Determinism, FlagsUnorderedContainersUnlessAllowlisted) {
  const lint::SourceFile file{
      "src/diff/delta.cpp",
      "std::unordered_multimap<std::uint64_t, std::size_t> index;\n"};
  const lint::Allowlist empty;
  EXPECT_TRUE(has_diag(lint::check_determinism(file, empty), "determinism",
                       "unordered_multimap"));
  const lint::Allowlist allow = lint::parse_allowlist(
      "determinism src/diff/delta.cpp unordered_multimap\n");
  EXPECT_TRUE(lint::check_determinism(file, allow).empty());
  // The entry is file-scoped: the same container elsewhere still fails.
  const lint::SourceFile other{"src/mnp/mnp_node.cpp", file.content};
  EXPECT_FALSE(lint::check_determinism(other, allow).empty());
}

// --- rule family 3: hygiene -------------------------------------------------

TEST(Hygiene, FlagsUncheckedReaderBufferAccess) {
  const lint::Allowlist empty;
  const lint::SourceFile file{
      "src/net/codec.cpp",
      "class Reader {\n"
      " public:\n"
      "  bool u8(std::uint8_t& v) {\n"
      "    v = data_[pos_++];\n"  // no size_ check first
      "    return true;\n"
      "  }\n"
      " private:\n"
      "  const std::uint8_t* data_;\n"
      "  std::size_t size_;\n"
      "  std::size_t pos_ = 0;\n"
      "};\n"};
  const auto diags = lint::check_hygiene(file, empty);
  EXPECT_TRUE(has_diag(diags, "hygiene", "Reader::u8")) << diags_str(diags);
}

TEST(Hygiene, AcceptsBoundsCheckedReaderAndDecode) {
  const lint::Allowlist empty;
  const lint::SourceFile file{
      "src/net/codec.cpp",
      "class Reader {\n"
      " public:\n"
      "  bool u8(std::uint8_t& v) {\n"
      "    if (pos_ + 1 > size_) return false;\n"
      "    v = data_[pos_++];\n"
      "    return true;\n"
      "  }\n"
      "};\n"
      "std::optional<Packet> decode(const std::uint8_t* frame,\n"
      "                             std::size_t length) {\n"
      "  if (length < 7) return std::nullopt;\n"
      "  return parse(frame[0]);\n"
      "}\n"};
  const auto diags = lint::check_hygiene(file, empty);
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

TEST(Hygiene, FlagsDecodeIndexingBeforeLengthCheck) {
  const lint::Allowlist empty;
  const lint::SourceFile file{
      "src/net/codec.cpp",
      "std::optional<Packet> decode(const std::uint8_t* frame,\n"
      "                             std::size_t length) {\n"
      "  return parse(frame[0]);\n"
      "}\n"};
  EXPECT_TRUE(has_diag(lint::check_hygiene(file, empty), "hygiene",
                       "decode()"));
}

TEST(Hygiene, FlagsFactoryMissingNodiscard) {
  const lint::Allowlist empty;
  const lint::SourceFile file{
      "src/storage/eeprom.hpp",
      "class Eeprom {\n"
      " public:\n"
      "  std::vector<std::uint8_t> read(std::size_t off, std::size_t len);\n"
      "  void read_into(std::size_t off, std::vector<std::uint8_t>& out);\n"
      "};\n"};
  const auto diags = lint::check_hygiene(file, empty);
  EXPECT_TRUE(has_diag(diags, "hygiene", "'read'")) << diags_str(diags);
  // read_into returns void: not flagged.
  EXPECT_FALSE(has_diag(diags, "hygiene", "'read_into'"));
}

TEST(Hygiene, AcceptsAnnotatedFactories) {
  const lint::Allowlist empty;
  const lint::SourceFile file{
      "src/net/frame.hpp",
      "class FramePool {\n"
      " public:\n"
      "  [[nodiscard]] FramePtr adopt(Packet&& pkt);\n"
      "  [[nodiscard]] std::vector<std::uint8_t> acquire_payload();\n"
      "};\n"};
  const auto diags = lint::check_hygiene(file, empty);
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

TEST(Hygiene, NodiscardRuleOnlyAppliesToFactoryHeaders) {
  const lint::Allowlist empty;
  const lint::SourceFile file{
      "src/mnp/mnp_node.hpp",
      "std::vector<std::uint8_t> read(std::size_t off);\n"};
  EXPECT_TRUE(lint::check_hygiene(file, empty).empty());
}

TEST(Hygiene, FlagsRawAllocationOutsideThePool) {
  const lint::Allowlist allow = lint::parse_allowlist(
      "allocation src/net/frame.cpp new\n"
      "allocation src/net/frame.cpp delete\n");
  const lint::SourceFile bad{"src/mnp/mnp_node.cpp",
                             "auto* p = new Packet();\ndelete p;\n"};
  const auto diags = lint::check_hygiene(bad, allow);
  EXPECT_TRUE(has_diag(diags, "hygiene", "'new'")) << diags_str(diags);
  EXPECT_TRUE(has_diag(diags, "hygiene", "'delete'"));

  const lint::SourceFile pool{"src/net/frame.cpp",
                              "auto* n = new detail::FrameNode();\ndelete n;\n"};
  EXPECT_TRUE(lint::check_hygiene(pool, allow).empty());

  // Deleted special members are not allocations.
  const lint::SourceFile deleted{"src/util/pin.hpp",
                                 "Pin(const Pin&) = delete;\n"};
  EXPECT_TRUE(lint::check_hygiene(deleted, allow).empty());
}

// --- rule family 4: codec symmetry ------------------------------------------

TEST(CodecSymmetry, AcceptsMatchingWriterAndReaderSequences) {
  const lint::SourceFile file{
      "src/net/codec.cpp",
      "void EncodeVisitor::operator()(const AdvMsg& m) const {\n"
      "  w.u8(m.program_id);\n"
      "  w.u16(m.segment);\n"
      "  w.bitmap(m.missing);\n"
      "}\n"
      "bool decode_payload(Reader& r, Packet& out) {\n"
      "  AdvMsg m;\n"
      "  return r.u8(m.program_id) && r.u16(m.segment) && r.bitmap(m.missing);\n"
      "}\n"};
  const auto diags = lint::check_codec_symmetry(file);
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

TEST(CodecSymmetry, FlagsFieldWidthMismatch) {
  // The seeded bug: encoder writes u16 where the decoder reads u32 — the
  // wire format silently desynchronizes on every later field.
  const lint::SourceFile file{
      "src/net/codec.cpp",
      "void EncodeVisitor::operator()(const ReqMsg& m) const {\n"
      "  w.u8(m.seg);\n"
      "  w.u16(m.source);\n"
      "}\n"
      "bool decode_payload(Reader& r, Packet& out) {\n"
      "  ReqMsg m;\n"
      "  return r.u8(m.seg) && r.u32(m.source);\n"
      "}\n"};
  const auto diags = lint::check_codec_symmetry(file);
  EXPECT_TRUE(has_diag(diags, "codec-symmetry",
                       "field 2: encoder writes u16"))
      << diags_str(diags);
}

TEST(CodecSymmetry, FlagsFieldCountMismatch) {
  const lint::SourceFile file{
      "src/net/codec.cpp",
      "void EncodeVisitor::operator()(const DataMsg& m) const {\n"
      "  w.u8(m.seg);\n"
      "  w.u16(m.offset);\n"
      "  w.bytes(m.payload);\n"
      "}\n"
      "bool decode_payload(Reader& r, Packet& out) {\n"
      "  DataMsg m;\n"
      "  return r.u8(m.seg) && r.u16(m.offset);\n"  // forgot the payload
      "}\n"};
  const auto diags = lint::check_codec_symmetry(file);
  EXPECT_TRUE(has_diag(diags, "codec-symmetry",
                       "encoder writes 3 fields but decoder reads 2"))
      << diags_str(diags);
}

TEST(CodecSymmetry, FlagsOneSidedMessages) {
  const lint::SourceFile file{
      "src/net/codec.cpp",
      "void EncodeVisitor::operator()(const PingMsg& m) const {\n"
      "  w.u8(m.token);\n"
      "}\n"
      "bool decode_payload(Reader& r, Packet& out) {\n"
      "  PongMsg m;\n"
      "  return r.u8(m.token);\n"
      "}\n"};
  const auto diags = lint::check_codec_symmetry(file);
  EXPECT_TRUE(has_diag(diags, "codec-symmetry",
                       "'PingMsg' has an encoder overload but no "
                       "decode_payload case"))
      << diags_str(diags);
  EXPECT_TRUE(has_diag(diags, "codec-symmetry",
                       "'PongMsg' has a decode_payload case but no "
                       "encoder overload"))
      << diags_str(diags);
}

// --- rule family 5: timer discipline ----------------------------------------

TEST(TimerDiscipline, FlagsTimerLeakedAcrossTransition) {
  // The classic stale-timer bug: Run arms poll_timer_, the Run -> Sleep
  // edge neither cancels nor re-arms it, and the expiry later fires into
  // a state that never expected it.
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::start() {\n"
      "  assert(state_ == State::kIdle);\n"
      "  change_state(State::kRun);\n"
      "  poll_timer_ = scheduler_.schedule_after(50, [this] {});\n"
      "}\n"
      "void Toy::on_quiet() {\n"
      "  if (state_ != State::kRun) return;\n"
      "  change_state(State::kSleep);\n"  // poll_timer_ still pending
      "}\n"};
  const auto diags =
      lint::check_timer_discipline(file, tiny_spec(), lint::Allowlist{});
  EXPECT_TRUE(has_diag(diags, "timer-discipline",
                       "'poll_timer_' is armed in state Run"))
      << diags_str(diags);
  EXPECT_TRUE(has_diag(diags, "timer-discipline", "Run -> Sleep"));
}

TEST(TimerDiscipline, AcceptsCancelOnEveryOutgoingEdge) {
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::start() {\n"
      "  assert(state_ == State::kIdle);\n"
      "  change_state(State::kRun);\n"
      "  poll_timer_ = scheduler_.schedule_after(50, [this] {});\n"
      "}\n"
      "void Toy::on_quiet() {\n"
      "  if (state_ != State::kRun) return;\n"
      "  poll_timer_.cancel();\n"
      "  change_state(State::kSleep);\n"
      "}\n"};
  const auto diags =
      lint::check_timer_discipline(file, tiny_spec(), lint::Allowlist{});
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

TEST(TimerDiscipline, ExemptsTransitionInsideTheTimersOwnExpiry) {
  // A transition inside poll_timer_'s own callback runs with the timer
  // already fired — nothing is pending, nothing to cancel.
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::start() {\n"
      "  assert(state_ == State::kIdle);\n"
      "  change_state(State::kRun);\n"
      "  poll_timer_ = scheduler_.schedule_after(50, [this] {\n"
      "    if (state_ != State::kRun) return;\n"
      "    change_state(State::kSleep);\n"
      "  });\n"
      "}\n"};
  const auto diags =
      lint::check_timer_discipline(file, tiny_spec(), lint::Allowlist{});
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

TEST(TimerDiscipline, AllowlistedTimerSurvivesTransitions) {
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::start() {\n"
      "  assert(state_ == State::kIdle);\n"
      "  change_state(State::kRun);\n"
      "  poll_timer_ = scheduler_.schedule_after(50, [this] {});\n"
      "}\n"
      "void Toy::on_quiet() {\n"
      "  if (state_ != State::kRun) return;\n"
      "  change_state(State::kSleep);\n"
      "}\n"};
  const lint::Allowlist allow = lint::parse_allowlist(
      "timer-discipline src/toy.cpp poll_timer_  # survives by design\n");
  EXPECT_TRUE(lint::check_timer_discipline(file, tiny_spec(), allow).empty());
}

TEST(RebootReset, FlagsTimerNotCancelledByReset) {
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::tick() {\n"
      "  adv_timer_ = scheduler_.schedule_after(10, [this] {});\n"
      "  req_timer_ = scheduler_.schedule_after(20, [this] {});\n"
      "}\n"
      "void Toy::reset_for_reboot() {\n"
      "  adv_timer_.cancel();\n"  // req_timer_ forgotten
      "}\n"};
  const auto diags = lint::check_reboot_reset(file, lint::Allowlist{});
  EXPECT_TRUE(has_diag(diags, "reboot-reset",
                       "'req_timer_' is not cancelled by reset_for_reboot"))
      << diags_str(diags);
  EXPECT_FALSE(has_diag(diags, "reboot-reset", "'adv_timer_'"));
}

TEST(RebootReset, FollowsHelperCallsTransitively) {
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::tick() {\n"
      "  adv_timer_ = scheduler_.schedule_after(10, [this] {});\n"
      "  req_timer_ = scheduler_.schedule_after(20, [this] {});\n"
      "}\n"
      "void Toy::stop_timers() {\n"
      "  adv_timer_.cancel();\n"
      "  req_timer_.cancel();\n"
      "}\n"
      "void Toy::reset_for_reboot() {\n"
      "  stop_timers();\n"
      "}\n"};
  const auto diags = lint::check_reboot_reset(file, lint::Allowlist{});
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

TEST(RebootReset, CancelInsideAnArmedLambdaDoesNotCount) {
  // The cancel runs when the timer fires, not during the reset itself.
  const lint::SourceFile file{
      "src/toy.cpp",
      "void Toy::reset_for_reboot() {\n"
      "  adv_timer_ = scheduler_.schedule_after(10, [this] {\n"
      "    req_timer_.cancel();\n"
      "  });\n"
      "}\n"};
  const auto diags = lint::check_reboot_reset(file, lint::Allowlist{});
  EXPECT_TRUE(has_diag(diags, "reboot-reset", "'req_timer_'"))
      << diags_str(diags);
}

// --- rule family 6: allowlist staleness -------------------------------------

TEST(AllowlistStaleness, FlagsEntryForFileNotInTheScannedSet) {
  const lint::Allowlist allow = lint::parse_allowlist(
      "determinism src/gone.cpp unordered_map  # file was deleted\n");
  const auto diags = lint::check_allowlist_staleness(
      {{"src/other.cpp", "int x;\n"}}, allow);
  EXPECT_TRUE(has_diag(diags, "allowlist", "not in the scanned file set"))
      << diags_str(diags);
}

TEST(AllowlistStaleness, FlagsEntryWhoseTokenDisappeared) {
  const lint::Allowlist allow = lint::parse_allowlist(
      "determinism src/delta.cpp unordered_map  # refactored away\n");
  const auto diags = lint::check_allowlist_staleness(
      {{"src/delta.cpp", "std::map<int, int> index;\n"}}, allow);
  EXPECT_TRUE(has_diag(diags, "allowlist", "no longer appears"))
      << diags_str(diags);
}

TEST(AllowlistStaleness, AcceptsLiveEntries) {
  const lint::Allowlist allow = lint::parse_allowlist(
      "determinism src/delta.cpp unordered_map  # vetted: sorted on output\n");
  const auto diags = lint::check_allowlist_staleness(
      {{"src/delta.cpp", "std::unordered_map<int, int> index;\n"}}, allow);
  EXPECT_TRUE(diags.empty()) << diags_str(diags);
}

// --- run_all ----------------------------------------------------------------

TEST(RunAll, DeterminismCoversBenchAndToolsFiles) {
  // The scan set grew beyond src/: a wall-clock call in a tool or bench
  // harness skews measurements just as silently.
  std::vector<lint::SourceFile> files = {
      {"tools/mnp_lint/main.cpp", "long f() { return time(nullptr); }\n"},
      {"bench/bench_sweep.cpp", "int g() { return std::rand(); }\n"},
  };
  const auto diags = lint::run_all(files, {}, lint::Allowlist{});
  EXPECT_TRUE(has_diag(diags, "determinism", "'time'")) << diags_str(diags);
  EXPECT_TRUE(has_diag(diags, "determinism", "'rand'"));
}

TEST(RunAll, AppliesEverySpecAndFamily) {
  std::vector<lint::SourceFile> files = {
      {"src/toy.cpp", kGoodMachine},
      {"src/other.cpp", "int f() { return std::rand(); }\n"},
  };
  const auto diags =
      lint::run_all(files, {tiny_spec()}, lint::Allowlist{});
  EXPECT_TRUE(has_diag(diags, "determinism", "'rand'")) << diags_str(diags);
  EXPECT_FALSE(has_diag(diags, "state-machine", "forbidden"));
}

TEST(RunAll, ReportsSpecWithNoMatchingFile) {
  const auto diags = lint::run_all({{"src/other.cpp", "int x;\n"}},
                                   {tiny_spec()}, lint::Allowlist{});
  EXPECT_TRUE(has_diag(diags, "state-machine", "not in the scanned set"))
      << diags_str(diags);
}

}  // namespace

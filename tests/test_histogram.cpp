// Unit tests for RunningStats and Histogram.
#include <gtest/gtest.h>

#include "util/histogram.hpp"

namespace mnp::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.25);
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Histogram, BinsValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(Histogram, DegenerateConstruction) {
  Histogram h(5.0, 5.0, 0);  // invalid hi/lo and zero bins
  h.add(5.0);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bin
  EXPECT_NE(out.find(" 2"), std::string::npos);
}

}  // namespace
}  // namespace mnp::util

// Tests for the CSV exporters.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "harness/csv.hpp"
#include "harness/experiment.hpp"

namespace mnp::harness {
namespace {

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

std::size_t commas(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) {
    if (c == ',') ++n;
  }
  return n;
}

class CsvTest : public ::testing::Test {
 protected:
  static RunResult run() {
    ExperimentConfig cfg;
    cfg.rows = 3;
    cfg.cols = 3;
    cfg.range_ft = 25.0;
    cfg.set_program_segments(1);
    return run_experiment(cfg);
  }
};

TEST_F(CsvTest, NodesCsvHasOneRowPerNode) {
  const auto r = run();
  std::ostringstream os;
  write_nodes_csv(os, r);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1 + r.nodes.size());
  EXPECT_EQ(lines[0].substr(0, 5), "node,");
  const std::size_t header_commas = commas(lines[0]);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(commas(lines[i]), header_commas) << "row " << i;
  }
  // Grid coordinates: node 4 of a 3x3 is (1, 1).
  EXPECT_EQ(lines[5].substr(0, 6), "4,1,1,");
}

TEST_F(CsvTest, TimelineCsvMatchesTimelineMap) {
  const auto r = run();
  std::ostringstream os;
  write_timeline_csv(os, r);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 1 + r.timeline.size());
  EXPECT_EQ(lines[0], "minute,advertisements,requests,data,other");
}

TEST_F(CsvTest, SummaryCsvIsOneRow) {
  const auto r = run();
  std::ostringstream os;
  write_summary_csv(os, "unit", r);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1].substr(0, 5), "unit,");
  EXPECT_EQ(commas(lines[0]), commas(lines[1]));
}

TEST_F(CsvTest, IncompleteNodesGetSentinelCompletion) {
  ExperimentConfig cfg;
  cfg.protocol = Protocol::kXnp;
  cfg.rows = 1;
  cfg.cols = 6;
  cfg.range_ft = 15.0;
  cfg.empirical_links = false;
  cfg.program_bytes = 32 * 22;
  cfg.max_sim_time = sim::minutes(20);
  const auto r = run_experiment(cfg);
  ASSERT_FALSE(r.all_completed);
  std::ostringstream os;
  write_nodes_csv(os, r);
  EXPECT_NE(os.str().find(",-1,"), std::string::npos);
}

}  // namespace
}  // namespace mnp::harness

// GF(256) kernel: field axioms for the scalar primitives and the
// SIMD == scalar property for the row kernel (DESIGN.md §13). The row
// kernel is the inner loop of NCast's Gaussian eliminator — a silent
// mismatch between the SSSE3 and table paths would corrupt decoded
// images only on machines with (or without) SSSE3, so the equivalence is
// pinned here over random rows, lengths and coefficients.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "util/gf256.hpp"

namespace mnp {
namespace {

namespace gf = util::gf256;

/// Restores auto dispatch even when an assertion fails mid-test.
struct KernelGuard {
  ~KernelGuard() { gf::set_kernel(gf::Kernel::kAuto); }
};

TEST(Gf256Field, MultiplicativeIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::gf_mul(x, 1), x);
    EXPECT_EQ(gf::gf_mul(1, x), x);
    EXPECT_EQ(gf::gf_mul(x, 0), 0);
    EXPECT_EQ(gf::gf_mul(0, x), 0);
  }
}

TEST(Gf256Field, EveryNonzeroElementHasAnInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::gf_mul(x, gf::gf_inv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256Field, DivisionInvertsMultiplicationExhaustively) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 1; b < 256; ++b) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf::gf_mul(gf::gf_div(x, y), y), x);
    }
  }
}

TEST(Gf256Field, CommutativeAssociativeDistributiveSampled) {
  sim::Rng rng(0xF1E1D);
  for (int i = 0; i < 100000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    ASSERT_EQ(gf::gf_mul(a, b), gf::gf_mul(b, a));
    ASSERT_EQ(gf::gf_mul(gf::gf_mul(a, b), c), gf::gf_mul(a, gf::gf_mul(b, c)));
    // Field addition is XOR: multiplication must distribute over it.
    ASSERT_EQ(gf::gf_mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf::gf_mul(a, b) ^ gf::gf_mul(a, c));
  }
}

TEST(Gf256Row, AddmulMatchesPerElementDefinition) {
  sim::Rng rng(7);
  for (int iter = 0; iter < 64; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 80));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    std::vector<std::uint8_t> src(n), dst(n), expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      dst[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      expect[i] = static_cast<std::uint8_t>(dst[i] ^ gf::gf_mul(c, src[i]));
    }
    gf::addmul_row(dst.data(), src.data(), n, c);
    EXPECT_EQ(dst, expect) << "n=" << n << " c=" << int(c);
  }
}

TEST(Gf256Row, MulRowMatchesPerElementDefinition) {
  sim::Rng rng(8);
  for (int iter = 0; iter < 64; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 80));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    std::vector<std::uint8_t> dst(n), expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      expect[i] = gf::gf_mul(c, dst[i]);
    }
    gf::mul_row(dst.data(), n, c);
    EXPECT_EQ(dst, expect) << "n=" << n << " c=" << int(c);
  }
}

TEST(Gf256Dispatch, ForcedKernelsReportTheirNames) {
  KernelGuard guard;
  gf::set_kernel(gf::Kernel::kScalar);
  EXPECT_STREQ(gf::kernel_name(), "scalar");
  gf::set_kernel(gf::Kernel::kAuto);
  if (gf::simd_available()) {
    EXPECT_STREQ(gf::kernel_name(), "ssse3");
    gf::set_kernel(gf::Kernel::kSimd);
    EXPECT_STREQ(gf::kernel_name(), "ssse3");
  } else {
    // kSimd degrades silently where SSSE3 doesn't exist.
    gf::set_kernel(gf::Kernel::kSimd);
    EXPECT_STREQ(gf::kernel_name(), "scalar");
  }
}

TEST(Gf256Dispatch, SimdMatchesScalarOnRandomRows) {
  if (!gf::simd_available()) GTEST_SKIP() << "SSSE3 not available";
  KernelGuard guard;
  sim::Rng rng(0x51D);
  for (int iter = 0; iter < 500; ++iter) {
    // Lengths straddle the 16-byte vector width so both the SIMD body
    // and the scalar tail execute, including pure-tail rows (n < 16).
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 96));
    const auto c = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    std::vector<std::uint8_t> src(n);
    std::vector<std::uint8_t> simd_dst(n), scalar_dst(n);
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      simd_dst[i] = scalar_dst[i] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    gf::set_kernel(gf::Kernel::kSimd);
    gf::addmul_row(simd_dst.data(), src.data(), n, c);
    gf::addmul_row_scalar(scalar_dst.data(), src.data(), n, c);
    ASSERT_EQ(simd_dst, scalar_dst) << "n=" << n << " c=" << int(c);
  }
}

}  // namespace
}  // namespace mnp

// Unit-level tests for the baseline protocols, driven by a scripted
// puppet peer (integration behaviour is covered in test_deluge/moap/xnp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/deluge_node.hpp"
#include "baselines/moap_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"

namespace mnp::baselines {
namespace {

using net::Packet;
using net::PacketType;

class PuppetApp final : public node::Application {
 public:
  void start(node::Node& node) override {
    node_ = &node;
    node_->radio_on();
  }
  void on_packet(const Packet& pkt) override { received.push_back(pkt); }
  bool has_complete_image() const override { return true; }
  void send(Packet pkt) { node_->send(std::move(pkt)); }

  std::vector<Packet> received;
  std::size_t count(PacketType t) const {
    std::size_t n = 0;
    for (const auto& p : received) {
      if (p.type() == t) ++n;
    }
    return n;
  }
  const Packet* last(PacketType t) const {
    const Packet* out = nullptr;
    for (const auto& p : received) {
      if (p.type() == t) out = &p;
    }
    return out;
  }

 private:
  node::Node* node_ = nullptr;
};

// ---------------------------------------------------------------------------
// Deluge
// ---------------------------------------------------------------------------

class DelugeUnitTest : public ::testing::Test {
 protected:
  void build(bool node_is_base) {
    cfg_.packets_per_page = 8;
    cfg_.payload_bytes = 4;
    cfg_.tau_low = sim::msec(100);
    cfg_.tau_high = sim::msec(3200);
    sim_ = std::make_unique<sim::Simulator>(4);
    net::Topology topo;
    topo.add({0.0, 0.0});
    topo.add({10.0, 0.0});
    network_ = std::make_unique<node::Network>(
        *sim_, std::move(topo), [](const net::Topology& t) {
          return std::make_unique<net::DiskLinkModel>(t, 50.0);
        });
    image_ = std::make_shared<const core::ProgramImage>(
        1, 2 * 8 * 4, cfg_.packets_per_page, cfg_.payload_bytes);
    auto puppet = std::make_unique<PuppetApp>();
    puppet_ = puppet.get();
    network_->node(0).set_application(std::move(puppet));
    auto deluge = node_is_base
                      ? std::make_unique<DelugeNode>(cfg_, image_)
                      : std::make_unique<DelugeNode>(cfg_);
    deluge_ = deluge.get();
    network_->node(1).set_application(std::move(deluge));
    network_->node(0).boot();
    network_->node(1).boot();
  }

  void run_for(sim::Time span) { sim_->run_until(sim_->now() + span); }

  void puppet_summary(std::uint16_t complete_pages) {
    Packet pkt;
    net::DelugeSummaryMsg msg;
    msg.version = image_->id();
    msg.total_pages = image_->num_segments();
    msg.complete_pages = complete_pages;
    msg.program_bytes = static_cast<std::uint32_t>(image_->total_bytes());
    pkt.payload = msg;
    puppet_->send(std::move(pkt));
  }

  DelugeConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<node::Network> network_;
  std::shared_ptr<const core::ProgramImage> image_;
  PuppetApp* puppet_ = nullptr;
  DelugeNode* deluge_ = nullptr;
};

TEST_F(DelugeUnitTest, MaintainsSummariesWithTrickleBackoff) {
  build(/*node_is_base=*/true);
  run_for(sim::sec(2));
  const std::size_t early = puppet_->count(PacketType::kDelugeSummary);
  EXPECT_GE(early, 2u);  // fast rounds initially (tau_low = 100 ms)
  puppet_->received.clear();
  run_for(sim::sec(10));
  // Quiet network: tau doubled toward tau_high, so the rate drops well
  // below the initial one (10 s / 100 ms = 100 would be un-backed-off).
  EXPECT_LT(puppet_->count(PacketType::kDelugeSummary), 20u);
}

TEST_F(DelugeUnitTest, ConsistentSummariesSuppressOurs) {
  build(/*node_is_base=*/true);
  // Flood it with matching summaries; its own must be suppressed.
  for (int i = 0; i < 40; ++i) {
    puppet_summary(image_->num_segments());
    run_for(sim::msec(100));
  }
  EXPECT_LT(puppet_->count(PacketType::kDelugeSummary), 8u);
}

TEST_F(DelugeUnitTest, BehindSummaryTriggersNothingButReset) {
  build(/*node_is_base=*/true);
  puppet_->received.clear();
  puppet_summary(0);  // the puppet claims to have nothing
  run_for(sim::msec(400));
  // The base doesn't push unsolicited data; it resets tau and advertises.
  EXPECT_EQ(puppet_->count(PacketType::kDelugeData), 0u);
  EXPECT_GE(puppet_->count(PacketType::kDelugeSummary), 1u);
}

TEST_F(DelugeUnitTest, AheadSummaryDrawsARequest) {
  build(/*node_is_base=*/false);
  puppet_summary(2);
  run_for(sim::sec(1));
  ASSERT_GE(puppet_->count(PacketType::kDelugeRequest), 1u);
  const auto* req =
      puppet_->last(PacketType::kDelugeRequest)->as<net::DelugeRequestMsg>();
  EXPECT_EQ(req->dest, 0);
  EXPECT_EQ(req->page, 1);                 // pages are fetched in order
  EXPECT_EQ(req->missing.count(), 8u);     // whole page missing
}

TEST_F(DelugeUnitTest, RequestedPacketsAreStreamed) {
  build(/*node_is_base=*/true);
  Packet pkt;
  net::DelugeRequestMsg req;
  req.dest = 1;
  req.page = 1;
  req.missing = util::Bitmap(8);
  req.missing.set(2);
  req.missing.set(5);
  pkt.payload = req;
  puppet_->send(std::move(pkt));
  run_for(sim::sec(1));
  EXPECT_EQ(puppet_->count(PacketType::kDelugeData), 2u);
  const auto* last =
      puppet_->last(PacketType::kDelugeData)->as<net::DelugeDataMsg>();
  EXPECT_EQ(last->pkt_id, 5);
}

TEST_F(DelugeUnitTest, RequestForUnownedPageIgnored) {
  build(/*node_is_base=*/false);  // has no pages at all
  Packet pkt;
  net::DelugeRequestMsg req;
  req.dest = 1;
  req.page = 1;
  req.missing = util::Bitmap::all_set(8);
  pkt.payload = req;
  puppet_->send(std::move(pkt));
  run_for(sim::sec(1));
  EXPECT_EQ(puppet_->count(PacketType::kDelugeData), 0u);
}

// ---------------------------------------------------------------------------
// MOAP
// ---------------------------------------------------------------------------

class MoapUnitTest : public ::testing::Test {
 protected:
  void build(bool node_is_base) {
    cfg_.payload_bytes = 4;
    cfg_.publish_interval_min = sim::msec(100);
    cfg_.publish_interval_max = sim::msec(200);
    sim_ = std::make_unique<sim::Simulator>(6);
    net::Topology topo;
    topo.add({0.0, 0.0});
    topo.add({10.0, 0.0});
    network_ = std::make_unique<node::Network>(
        *sim_, std::move(topo), [](const net::Topology& t) {
          return std::make_unique<net::DiskLinkModel>(t, 50.0);
        });
    image_ = std::make_shared<const core::ProgramImage>(1, 16 * 4, 128, 4);
    auto puppet = std::make_unique<PuppetApp>();
    puppet_ = puppet.get();
    network_->node(0).set_application(std::move(puppet));
    auto moap = node_is_base ? std::make_unique<MoapNode>(cfg_, image_)
                             : std::make_unique<MoapNode>(cfg_);
    moap_ = moap.get();
    network_->node(1).set_application(std::move(moap));
    network_->node(0).boot();
    network_->node(1).boot();
  }

  void run_for(sim::Time span) { sim_->run_until(sim_->now() + span); }

  MoapConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<node::Network> network_;
  std::shared_ptr<const core::ProgramImage> image_;
  PuppetApp* puppet_ = nullptr;
  MoapNode* moap_ = nullptr;
};

TEST_F(MoapUnitTest, PublisherAnnouncesAndAwaitsSubscribers) {
  build(/*node_is_base=*/true);
  run_for(sim::sec(1));
  EXPECT_GE(puppet_->count(PacketType::kMoapPublish), 1u);
  // No subscriber => no data.
  EXPECT_EQ(puppet_->count(PacketType::kMoapData), 0u);
}

TEST_F(MoapUnitTest, SubscriptionTriggersLinearStream) {
  build(/*node_is_base=*/true);
  run_for(sim::msec(300));  // catch a publish
  Packet sub;
  sub.payload = net::MoapSubscribeMsg{1};
  puppet_->send(std::move(sub));
  run_for(sim::sec(3));
  // The whole 16-packet image is streamed in order.
  EXPECT_EQ(puppet_->count(PacketType::kMoapData), 16u);
  EXPECT_EQ(puppet_->last(PacketType::kMoapData)->as<net::MoapDataMsg>()->pkt_id,
            15);
}

TEST_F(MoapUnitTest, NackDrawsRetransmission) {
  build(/*node_is_base=*/true);
  run_for(sim::msec(300));
  Packet sub;
  sub.payload = net::MoapSubscribeMsg{1};
  puppet_->send(std::move(sub));
  // Wait just until the stream finishes (publisher enters its repair
  // phase) — the repair window is short.
  for (int i = 0; i < 50 && puppet_->count(PacketType::kMoapData) < 16; ++i) {
    run_for(sim::msec(100));
  }
  ASSERT_EQ(puppet_->count(PacketType::kMoapData), 16u);
  puppet_->received.clear();
  Packet nack;
  nack.payload = net::MoapNackMsg{1, 7};
  puppet_->send(std::move(nack));
  run_for(sim::msec(500));
  ASSERT_EQ(puppet_->count(PacketType::kMoapData), 1u);
  EXPECT_EQ(puppet_->last(PacketType::kMoapData)->as<net::MoapDataMsg>()->pkt_id,
            7);
}

TEST_F(MoapUnitTest, ReceiverSubscribesOnPublish) {
  build(/*node_is_base=*/false);
  Packet pub;
  net::MoapPublishMsg msg;
  msg.version = image_->id();
  msg.total_packets = 16;
  msg.program_bytes = static_cast<std::uint32_t>(image_->total_bytes());
  pub.payload = msg;
  puppet_->send(std::move(pub));
  run_for(sim::sec(1));
  EXPECT_EQ(puppet_->count(PacketType::kMoapSubscribe), 1u);
  EXPECT_EQ(moap_->state(), MoapNode::State::kSubscribed);
}

TEST_F(MoapUnitTest, CompletedReceiverBecomesPublisher) {
  build(/*node_is_base=*/false);
  Packet pub;
  net::MoapPublishMsg msg;
  msg.version = image_->id();
  msg.total_packets = 16;
  msg.program_bytes = static_cast<std::uint32_t>(image_->total_bytes());
  pub.payload = msg;
  puppet_->send(std::move(pub));
  run_for(sim::msec(300));
  for (std::uint16_t p = 0; p < 16; ++p) {
    Packet pkt;
    net::MoapDataMsg d;
    d.version = image_->id();
    d.pkt_id = p;
    const std::size_t off = static_cast<std::size_t>(p) * 4;
    d.payload = {image_->bytes().begin() + static_cast<long>(off),
                 image_->bytes().begin() + static_cast<long>(off + 4)};
    pkt.payload = std::move(d);
    puppet_->send(std::move(pkt));
    run_for(sim::msec(50));
  }
  EXPECT_TRUE(moap_->has_complete_image());
  // Hop-by-hop relay: it now publishes.
  puppet_->received.clear();
  run_for(sim::sec(1));
  EXPECT_GE(puppet_->count(PacketType::kMoapPublish), 1u);
}

}  // namespace
}  // namespace mnp::baselines

// Tests for the multi-seed sweep harness.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace mnp::harness {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  return cfg;
}

TEST(Sweep, AggregatesAcrossSeeds) {
  const auto sweep = run_sweep(tiny(), 4, /*first_seed=*/50);
  EXPECT_EQ(sweep.runs, 4u);
  EXPECT_EQ(sweep.fully_completed_runs, 4u);
  EXPECT_EQ(sweep.completion_s.count(), 4u);
  EXPECT_GT(sweep.completion_s.mean(), 0.0);
  EXPECT_GE(sweep.completion_s.max(), sweep.completion_s.min());
  EXPECT_GT(sweep.avg_msgs.mean(), 0.0);
  EXPECT_GT(sweep.energy_per_node_nah.mean(), 0.0);
  EXPECT_GE(sweep.effective_senders.min(), 1.0);
  EXPECT_TRUE(sweep.raw.empty());  // keep_raw defaults off
}

TEST(Sweep, SeedsActuallyVaryTheRuns) {
  const auto sweep = run_sweep(tiny(), 5, 10);
  // Stochastic system: not every seed can give the same completion time.
  EXPECT_GT(sweep.completion_s.stddev(), 0.0);
}

TEST(Sweep, KeepRawRetainsResults) {
  const auto sweep = run_sweep(tiny(), 3, 1, /*keep_raw=*/true);
  ASSERT_EQ(sweep.raw.size(), 3u);
  for (const auto& r : sweep.raw) {
    EXPECT_TRUE(r.all_completed);
    EXPECT_EQ(r.nodes.size(), 9u);
  }
}

TEST(Sweep, SameSeedRangeIsDeterministic) {
  const auto a = run_sweep(tiny(), 3, 7);
  const auto b = run_sweep(tiny(), 3, 7);
  EXPECT_DOUBLE_EQ(a.completion_s.mean(), b.completion_s.mean());
  EXPECT_DOUBLE_EQ(a.avg_msgs.mean(), b.avg_msgs.mean());
}

void expect_stats_identical(const util::RunningStats& a,
                            const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());  // bitwise: same accumulation order
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_runs_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.all_completed, b.all_completed);
  EXPECT_EQ(a.completed_count, b.completed_count);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.measured_at, b.measured_at);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.bulk_overlaps, b.bulk_overlaps);
  EXPECT_EQ(a.sender_order, b.sender_order);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].completion, b.nodes[i].completion);
    EXPECT_EQ(a.nodes[i].active_radio, b.nodes[i].active_radio);
    EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
    EXPECT_EQ(a.nodes[i].tx_total, b.nodes[i].tx_total);
    EXPECT_EQ(a.nodes[i].rx_total, b.nodes[i].rx_total);
    EXPECT_EQ(a.nodes[i].eeprom_writes, b.nodes[i].eeprom_writes);
    EXPECT_EQ(a.nodes[i].energy_nah, b.nodes[i].energy_nah);
    EXPECT_EQ(a.nodes[i].image_verified, b.nodes[i].image_verified);
  }
}

TEST(Sweep, ParallelJobsBitIdenticalToSequential) {
  // The headline determinism claim: a parallel sweep must produce the same
  // bytes as a sequential one — every aggregate stat and every raw run.
  SweepOptions sequential;
  sequential.jobs = 1;
  sequential.keep_raw = true;
  SweepOptions parallel;
  parallel.jobs = 4;
  parallel.keep_raw = true;
  // Exercise the real thread pool even on a 1-core CI host, where the
  // oversubscription clamp would otherwise fall back to sequential.
  parallel.allow_oversubscribe = true;

  const auto a = run_sweep(tiny(), 6, /*first_seed=*/20, sequential);
  const auto b = run_sweep(tiny(), 6, /*first_seed=*/20, parallel);

  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.fully_completed_runs, b.fully_completed_runs);
  expect_stats_identical(a.completion_s, b.completion_s);
  expect_stats_identical(a.avg_art_s, b.avg_art_s);
  expect_stats_identical(a.avg_art_post_adv_s, b.avg_art_post_adv_s);
  expect_stats_identical(a.avg_msgs, b.avg_msgs);
  expect_stats_identical(a.collisions, b.collisions);
  expect_stats_identical(a.bulk_overlaps, b.bulk_overlaps);
  expect_stats_identical(a.energy_per_node_nah, b.energy_per_node_nah);
  expect_stats_identical(a.effective_senders, b.effective_senders);
  ASSERT_EQ(a.raw.size(), b.raw.size());
  for (std::size_t i = 0; i < a.raw.size(); ++i) {
    expect_runs_identical(a.raw[i], b.raw[i]);
  }
}

TEST(Sweep, MoreJobsThanRunsIsFine) {
  SweepOptions options;
  options.jobs = 16;
  options.allow_oversubscribe = true;
  const auto sweep = run_sweep(tiny(), 2, 1, options);
  EXPECT_EQ(sweep.runs, 2u);
  EXPECT_EQ(sweep.fully_completed_runs, 2u);
}

TEST(Sweep, EffectiveJobsClampsToHardwareConcurrency) {
  // The regression BENCH_sweep.json exposed: "auto" on a 1-core host used
  // to spin up 2-4 workers and run *slower* than sequential. The clamp
  // caps workers at the core count...
  EXPECT_EQ(effective_sweep_jobs(4, 100, /*hardware=*/1, false), 1u);
  EXPECT_EQ(effective_sweep_jobs(8, 100, /*hardware=*/4, false), 4u);
  // ...without inflating a smaller request,
  EXPECT_EQ(effective_sweep_jobs(2, 100, /*hardware=*/8, false), 2u);
  // never exceeds the number of runs,
  EXPECT_EQ(effective_sweep_jobs(4, 3, /*hardware=*/8, false), 3u);
  // treats degenerate inputs as sequential,
  EXPECT_EQ(effective_sweep_jobs(0, 100, /*hardware=*/0, false), 1u);
  // and is bypassed entirely when oversubscription is explicitly allowed
  // (still clamped to runs — extra workers would just find no work).
  EXPECT_EQ(effective_sweep_jobs(4, 100, /*hardware=*/1, true), 4u);
  EXPECT_EQ(effective_sweep_jobs(16, 2, /*hardware=*/1, true), 2u);
}

TEST(Sweep, ResolveJobsPassesExplicitValueThrough) {
  EXPECT_EQ(resolve_sweep_jobs(3), 3u);
  // 0 with no env var set means sequential.
  unsetenv("MNP_SWEEP_JOBS");
  EXPECT_EQ(resolve_sweep_jobs(0), 1u);
  setenv("MNP_SWEEP_JOBS", "5", 1);
  EXPECT_EQ(resolve_sweep_jobs(0), 5u);
  setenv("MNP_SWEEP_JOBS", "auto", 1);
  EXPECT_GE(resolve_sweep_jobs(0), 1u);
  setenv("MNP_SWEEP_JOBS", "nonsense", 1);
  EXPECT_EQ(resolve_sweep_jobs(0), 1u);
  unsetenv("MNP_SWEEP_JOBS");
}

TEST(Sweep, FormatStat) {
  util::RunningStats s;
  s.add(1.0);
  s.add(3.0);
  const std::string out = format_stat(s, 1);
  EXPECT_EQ(out, "2.0 +/- 1.0 [1.0, 3.0]");
}

}  // namespace
}  // namespace mnp::harness

// Tests for the multi-seed sweep harness.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace mnp::harness {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  return cfg;
}

TEST(Sweep, AggregatesAcrossSeeds) {
  const auto sweep = run_sweep(tiny(), 4, /*first_seed=*/50);
  EXPECT_EQ(sweep.runs, 4u);
  EXPECT_EQ(sweep.fully_completed_runs, 4u);
  EXPECT_EQ(sweep.completion_s.count(), 4u);
  EXPECT_GT(sweep.completion_s.mean(), 0.0);
  EXPECT_GE(sweep.completion_s.max(), sweep.completion_s.min());
  EXPECT_GT(sweep.avg_msgs.mean(), 0.0);
  EXPECT_GT(sweep.energy_per_node_nah.mean(), 0.0);
  EXPECT_GE(sweep.effective_senders.min(), 1.0);
  EXPECT_TRUE(sweep.raw.empty());  // keep_raw defaults off
}

TEST(Sweep, SeedsActuallyVaryTheRuns) {
  const auto sweep = run_sweep(tiny(), 5, 10);
  // Stochastic system: not every seed can give the same completion time.
  EXPECT_GT(sweep.completion_s.stddev(), 0.0);
}

TEST(Sweep, KeepRawRetainsResults) {
  const auto sweep = run_sweep(tiny(), 3, 1, /*keep_raw=*/true);
  ASSERT_EQ(sweep.raw.size(), 3u);
  for (const auto& r : sweep.raw) {
    EXPECT_TRUE(r.all_completed);
    EXPECT_EQ(r.nodes.size(), 9u);
  }
}

TEST(Sweep, SameSeedRangeIsDeterministic) {
  const auto a = run_sweep(tiny(), 3, 7);
  const auto b = run_sweep(tiny(), 3, 7);
  EXPECT_DOUBLE_EQ(a.completion_s.mean(), b.completion_s.mean());
  EXPECT_DOUBLE_EQ(a.avg_msgs.mean(), b.avg_msgs.mean());
}

TEST(Sweep, FormatStat) {
  util::RunningStats s;
  s.add(1.0);
  s.add(3.0);
  const std::string out = format_stat(s, 1);
  EXPECT_EQ(out, "2.0 +/- 1.0 [1.0, 3.0]");
}

}  // namespace
}  // namespace mnp::harness

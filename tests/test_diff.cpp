// Tests for the difference-based update module.
#include <gtest/gtest.h>

#include "diff/delta.hpp"
#include "sim/rng.hpp"

namespace mnp::diff {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

TEST(Delta, IdenticalImagesCollapseToOneCopy) {
  const auto image = random_bytes(4096, 1);
  const Delta delta = Delta::compute(image, image);
  EXPECT_EQ(delta.apply(image), image);
  ASSERT_EQ(delta.ops().size(), 1u);
  EXPECT_TRUE(std::holds_alternative<CopyOp>(delta.ops()[0]));
  EXPECT_EQ(delta.copied_bytes(), 4096u);
  EXPECT_EQ(delta.literal_bytes(), 0u);
  EXPECT_LT(delta.serialized_size(), 32u);
}

TEST(Delta, UnrelatedImagesAreAllLiteral) {
  const auto old_image = random_bytes(1024, 2);
  const auto new_image = random_bytes(1024, 3);
  const Delta delta = Delta::compute(old_image, new_image);
  EXPECT_EQ(delta.apply(old_image), new_image);
  EXPECT_EQ(delta.copied_bytes(), 0u);
  EXPECT_EQ(delta.literal_bytes(), 1024u);
}

TEST(Delta, SmallPatchProducesSmallDelta) {
  auto old_image = random_bytes(8192, 4);
  auto new_image = old_image;
  for (std::size_t i = 1000; i < 1050; ++i) new_image[i] ^= 0x5A;  // 50-byte fix
  const Delta delta = Delta::compute(old_image, new_image);
  EXPECT_EQ(delta.apply(old_image), new_image);
  // The whole update travels in well under 5% of the image size.
  EXPECT_LT(delta.serialized_size(), new_image.size() / 20);
}

TEST(Delta, InsertionShiftsAreStillFound) {
  auto old_image = random_bytes(4096, 5);
  std::vector<std::uint8_t> new_image(old_image.begin(), old_image.begin() + 2000);
  const auto inserted = random_bytes(300, 6);
  new_image.insert(new_image.end(), inserted.begin(), inserted.end());
  new_image.insert(new_image.end(), old_image.begin() + 2000, old_image.end());
  const Delta delta = Delta::compute(old_image, new_image);
  EXPECT_EQ(delta.apply(old_image), new_image);
  // Both halves around the insertion are reused.
  EXPECT_GE(delta.copied_bytes(), 3900u);
  EXPECT_LE(delta.literal_bytes(), 400u);
}

TEST(Delta, EmptyImages) {
  const std::vector<std::uint8_t> empty;
  const auto some = random_bytes(100, 7);
  EXPECT_EQ(Delta::compute(empty, empty).apply(empty), empty);
  EXPECT_EQ(Delta::compute(empty, some).apply(empty), some);
  EXPECT_EQ(Delta::compute(some, empty).apply(some), empty);
}

TEST(Delta, SerializationRoundTrips) {
  const auto old_image = random_bytes(4096, 8);
  auto new_image = old_image;
  for (std::size_t i = 0; i < 128; ++i) new_image[i * 17 % 4096] ^= 1;
  const Delta delta = Delta::compute(old_image, new_image);
  const auto wire = delta.serialize();
  EXPECT_EQ(wire.size(), delta.serialized_size());
  const auto parsed = Delta::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->apply(old_image), new_image);
}

TEST(Delta, ParseRejectsCorruptInput) {
  const auto old_image = random_bytes(256, 9);
  const Delta delta = Delta::compute(old_image, old_image);
  auto wire = delta.serialize();
  // Truncated.
  auto truncated = wire;
  truncated.pop_back();
  EXPECT_FALSE(Delta::parse(truncated).has_value());
  // Bad op tag.
  auto bad_tag = wire;
  bad_tag[4] = 'X';
  EXPECT_FALSE(Delta::parse(bad_tag).has_value());
  // Trailing garbage.
  auto trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(Delta::parse(trailing).has_value());
  // Too short for a header.
  EXPECT_FALSE(Delta::parse({1, 2}).has_value());
}

TEST(Delta, ApplyRejectsOutOfRangeCopies) {
  Delta delta;
  delta.append_copy(/*old_offset=*/100, /*length=*/50);
  const auto small = random_bytes(120, 10);
  EXPECT_TRUE(delta.apply(small).empty());  // 100+50 > 120
}

TEST(Delta, AdjacentOpsCoalesce) {
  Delta delta;
  delta.append_copy(0, 10);
  delta.append_copy(10, 20);  // adjacent: merges
  delta.append_copy(50, 5);   // gap: new op
  const std::uint8_t lit[] = {1, 2, 3};
  delta.append_literal(lit, 3);
  delta.append_literal(lit, 3);  // merges into one literal
  ASSERT_EQ(delta.ops().size(), 3u);
  EXPECT_EQ(std::get<CopyOp>(delta.ops()[0]).length, 30u);
  EXPECT_EQ(std::get<LiteralOp>(delta.ops()[2]).bytes.size(), 6u);
}

class DeltaPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, std::size_t>> {};

TEST_P(DeltaPropertyTest, RoundTripUnderRandomEdits) {
  const auto [size, edits, block] = GetParam();
  auto old_image = random_bytes(size, 11);
  auto new_image = old_image;
  sim::Rng rng(12 + edits);
  for (int e = 0; e < edits; ++e) {
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
    new_image[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const Delta delta = Delta::compute(old_image, new_image, block);
  EXPECT_EQ(delta.apply(old_image), new_image);
  const auto parsed = Delta::parse(delta.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->apply(old_image), new_image);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaPropertyTest,
    ::testing::Values(std::make_tuple(512, 0, 16), std::make_tuple(512, 5, 16),
                      std::make_tuple(4096, 40, 32),
                      std::make_tuple(4096, 400, 32),
                      std::make_tuple(10000, 100, 64),
                      std::make_tuple(33, 3, 32)));

}  // namespace
}  // namespace mnp::diff

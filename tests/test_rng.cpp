// Unit tests for the deterministic RNG.
#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace mnp::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000000) == b.uniform_int(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(9, 3), 9);  // inverted => lo
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-3.0));  // clamped
    EXPECT_TRUE(rng.bernoulli(42.0));   // clamped
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(123);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(321);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(Rng, NormalDegenerateStddev) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(55), parent2(55);
  Rng childa = parent1.fork(1);
  Rng childb = parent2.fork(1);
  // Same parent state + same salt => identical child stream.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(childa.uniform_int(0, 1 << 30), childb.uniform_int(0, 1 << 30));
  }
  // Different salts diverge.
  Rng parent3(55);
  Rng childc = parent3.fork(2);
  Rng parent4(55);
  Rng childd = parent4.fork(1);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (childc.uniform_int(0, 1 << 30) == childd.uniform_int(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace mnp::sim

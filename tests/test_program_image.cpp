// Unit tests for ProgramImage segmentation and payload extraction.
#include <gtest/gtest.h>

#include "mnp/program_image.hpp"

namespace mnp::core {
namespace {

TEST(ProgramImage, DeterministicContentPerId) {
  ProgramImage a(7, 1000), b(7, 1000), c(8, 1000);
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_NE(a.bytes(), c.bytes());
}

TEST(ProgramImage, SegmentationArithmetic) {
  // 5 full segments of 128 packets x 22 bytes.
  ProgramImage img(1, 5 * 128 * 22, 128, 22);
  EXPECT_EQ(img.num_segments(), 5);
  for (std::uint16_t s = 1; s <= 5; ++s) {
    EXPECT_EQ(img.packets_in_segment(s), 128);
  }
  EXPECT_EQ(img.packets_in_segment(0), 0);
  EXPECT_EQ(img.packets_in_segment(6), 0);
}

TEST(ProgramImage, ShortLastSegment) {
  // One full segment plus 10 packets and a 5-byte tail.
  const std::size_t bytes = 128 * 22 + 10 * 22 + 5;
  ProgramImage img(1, bytes, 128, 22);
  EXPECT_EQ(img.num_segments(), 2);
  EXPECT_EQ(img.packets_in_segment(1), 128);
  EXPECT_EQ(img.packets_in_segment(2), 11);  // 10 full + 1 short
  EXPECT_EQ(img.packet_payload(2, 10).size(), 5u);
}

TEST(ProgramImage, PacketPayloadsTileTheImage) {
  ProgramImage img(3, 2 * 16 * 8 + 3, 16, 8);
  std::vector<std::uint8_t> reassembled;
  for (std::uint16_t s = 1; s <= img.num_segments(); ++s) {
    for (std::uint16_t p = 0; p < img.packets_in_segment(s); ++p) {
      const auto payload = img.packet_payload(s, p);
      reassembled.insert(reassembled.end(), payload.begin(), payload.end());
    }
  }
  EXPECT_TRUE(img.matches(reassembled));
}

TEST(ProgramImage, PacketOffsets) {
  ProgramImage img(1, 1000, 16, 8);
  EXPECT_EQ(img.packet_offset(1, 0), 0u);
  EXPECT_EQ(img.packet_offset(1, 3), 24u);
  EXPECT_EQ(img.packet_offset(2, 0), 128u);  // 16 packets * 8 bytes
}

TEST(ProgramImage, OutOfRangePayloadIsEmpty) {
  ProgramImage img(1, 100, 16, 8);
  EXPECT_TRUE(img.packet_payload(99, 0).empty());
}

TEST(ProgramImage, LargeSegmentsAllowedForBasicProtocol) {
  // The basic (non-pipelined) protocol may exceed 128 packets per segment
  // (EEPROM-backed loss tracking, paper section 3.3).
  ProgramImage img(1, 200 * 22, 200, 22);
  EXPECT_EQ(img.packets_per_segment(), 200);
  EXPECT_EQ(img.num_segments(), 1);
  EXPECT_EQ(img.packets_in_segment(1), 200);
}

TEST(ProgramImage, MatchesIsExact) {
  ProgramImage img(2, 64, 16, 8);
  auto copy = img.bytes();
  EXPECT_TRUE(img.matches(copy));
  copy[10] ^= 1;
  EXPECT_FALSE(img.matches(copy));
  copy[10] ^= 1;
  copy.pop_back();
  EXPECT_FALSE(img.matches(copy));
}

class SegmentCountTest : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(SegmentCountTest, WholeSegmentsProduceExactCounts) {
  const std::uint16_t segments = GetParam();
  ProgramImage img(1, static_cast<std::size_t>(segments) * 128 * 22, 128, 22);
  EXPECT_EQ(img.num_segments(), segments);
  EXPECT_EQ(img.total_bytes(), static_cast<std::size_t>(segments) * 2816);
}

INSTANTIATE_TEST_SUITE_P(Fig10Sizes, SegmentCountTest,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

}  // namespace
}  // namespace mnp::core

// End-to-end MNP dissemination tests on small networks.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace mnp {
namespace {

harness::ExperimentConfig small_grid() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kMnp;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.spacing_ft = 10.0;
  cfg.range_ft = 15.0;  // neighbors only: forces multihop
  cfg.empirical_links = false;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  return cfg;
}

TEST(MnpIntegration, SingleSegmentSmallGridCompletes) {
  auto cfg = small_grid();
  const auto result = harness::run_experiment(cfg);
  EXPECT_TRUE(result.all_completed)
      << "completed " << result.completed_count << "/" << result.nodes.size();
  EXPECT_EQ(result.verified_count(), result.nodes.size());
  EXPECT_GE(result.completion_time, 0);
}

TEST(MnpIntegration, MultiSegmentPipelineCompletes) {
  auto cfg = small_grid();
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.set_program_segments(3);
  const auto result = harness::run_experiment(cfg);
  EXPECT_TRUE(result.all_completed)
      << "completed " << result.completed_count << "/" << result.nodes.size();
  EXPECT_EQ(result.verified_count(), result.nodes.size());
}

TEST(MnpIntegration, LossyLinksStillComplete) {
  auto cfg = small_grid();
  cfg.empirical_links = true;
  cfg.range_ft = 25.0;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.set_program_segments(2);
  const auto result = harness::run_experiment(cfg);
  EXPECT_TRUE(result.all_completed)
      << "completed " << result.completed_count << "/" << result.nodes.size();
  EXPECT_EQ(result.verified_count(), result.nodes.size());
}

}  // namespace
}  // namespace mnp

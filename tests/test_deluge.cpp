// Deluge baseline tests: correctness plus the contrasts with MNP the paper
// leans on (radio always on, no sender election).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace mnp {
namespace {

harness::ExperimentConfig deluge_config() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kDeluge;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.spacing_ft = 10.0;
  cfg.range_ft = 25.0;
  cfg.program_bytes = 2 * 48 * 22;  // 2 Deluge pages
  cfg.max_sim_time = sim::hours(2);
  return cfg;
}

TEST(Deluge, DisseminatesToEveryNode) {
  const auto r = harness::run_experiment(deluge_config());
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

TEST(Deluge, MultihopWithTightRange) {
  auto cfg = deluge_config();
  cfg.rows = 2;
  cfg.cols = 8;
  cfg.range_ft = 15.0;
  cfg.empirical_links = false;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
}

TEST(Deluge, RadioIsAlwaysOn) {
  // The defining energy difference from MNP: a Deluge node's active radio
  // time equals elapsed time (no sleeping, ever).
  const auto r = harness::run_experiment(deluge_config());
  ASSERT_TRUE(r.all_completed);
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    // Nodes boot within 500 ms of t=0; after that the radio never stops.
    EXPECT_GE(r.nodes[i].active_radio, r.measured_at - sim::msec(600))
        << "node " << i;
  }
}

TEST(Deluge, PagesArriveInOrder) {
  auto cfg = deluge_config();
  cfg.seed = 5;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.all_completed);
  // The harness records per-page completion through the stats collector;
  // verify indirectly: everyone finished and the images verify, which with
  // sequential-page reception implies ordering held. (Direct per-page
  // ordering is asserted in the MNP pipeline tests.)
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

TEST(Deluge, SeedsSweepStillComplete) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    auto cfg = deluge_config();
    cfg.seed = seed;
    const auto r = harness::run_experiment(cfg);
    EXPECT_TRUE(r.all_completed) << "seed " << seed;
  }
}

TEST(Deluge, TrickleSuppressionBoundsQuiescentTraffic) {
  // Once everyone is up to date, summaries back off toward tau_high; the
  // last simulated minutes must be sparse in advertisements.
  auto cfg = deluge_config();
  cfg.rows = 3;
  cfg.cols = 3;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.all_completed);
  std::uint64_t total_adv = 0;
  for (const auto& n : r.nodes) total_adv += n.tx_adv;
  // 9 nodes; generous bound: fewer than 40 summaries per node on average
  // over the whole (short) run.
  EXPECT_LT(total_adv, 9u * 40u);
}

}  // namespace
}  // namespace mnp

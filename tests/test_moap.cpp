// MOAP baseline tests: hop-by-hop relay with sliding-window NACK repair.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace mnp {
namespace {

harness::ExperimentConfig moap_config() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kMoap;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.spacing_ft = 10.0;
  cfg.range_ft = 25.0;
  cfg.program_bytes = 64 * 22;
  cfg.max_sim_time = sim::hours(2);
  return cfg;
}

TEST(Moap, DisseminatesToEveryNode) {
  const auto r = harness::run_experiment(moap_config());
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

TEST(Moap, MultihopRelayWorks) {
  auto cfg = moap_config();
  cfg.rows = 1;
  cfg.cols = 5;
  cfg.range_ft = 15.0;  // strict hop-by-hop chain
  cfg.empirical_links = false;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
  // The far node's parent is an intermediate relay, not the base.
  EXPECT_GT(r.nodes[4].parent, 0);
}

TEST(Moap, RadioIsAlwaysOn) {
  const auto r = harness::run_experiment(moap_config());
  ASSERT_TRUE(r.all_completed);
  for (const auto& n : r.nodes) {
    EXPECT_GE(n.active_radio, r.measured_at - sim::msec(600));
  }
}

TEST(Moap, HopByHopMeansNoPipelining) {
  // A MOAP relay transmits data only after it holds the FULL image: on a
  // strict chain, the far node cannot complete before the middle node.
  auto cfg = moap_config();
  cfg.rows = 1;
  cfg.cols = 4;
  cfg.range_ft = 15.0;
  cfg.empirical_links = false;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.all_completed);
  EXPECT_LT(r.nodes[1].completion, r.nodes[2].completion);
  EXPECT_LT(r.nodes[2].completion, r.nodes[3].completion);
}

TEST(Moap, LossySeedsStillComplete) {
  for (std::uint64_t seed : {4ull, 9ull, 16ull}) {
    auto cfg = moap_config();
    cfg.seed = seed;
    const auto r = harness::run_experiment(cfg);
    EXPECT_TRUE(r.all_completed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mnp

// Tests for the observability layer (DESIGN.md section 9): the metrics
// registry, the Perfetto trace export (against a checked-in golden file),
// the run manifest, and the bit-identity of observed sweeps across job
// counts.
//
// Regenerate the golden trace after an intentional schema change with:
//   MNP_UPDATE_GOLDEN=1 ./build/tests/test_obs
// and bump obs::kTelemetrySchemaVersion if the change is breaking.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/observe.hpp"
#include "harness/sweep.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"

#ifndef MNP_TEST_DATA_DIR
#define MNP_TEST_DATA_DIR "tests/data"
#endif

namespace mnp {
namespace {

// ---------------------------------------------------------------- JsonWriter

TEST(JsonWriter, EscapesAndFormats) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("s");
  w.value("a\"b\\c\n\t");
  w.key("f");
  w.value(1.5);
  w.key("third");
  w.value(1.0 / 3.0);
  w.key("i");
  w.value(std::int64_t{-7});
  w.key("b");
  w.value(true);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"f\":1.5,"
            "\"third\":0.3333333333,\"i\":-7,\"b\":true}");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

// ----------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistry, CounterPerNodeAndTotal) {
  obs::MetricsRegistry m(3);
  auto c = m.register_counter("chan.tx", obs::Unit::kCount, /*per_node=*/true);
  m.add(c, net::NodeId{0});
  m.add(c, net::NodeId{0});
  m.add(c, net::NodeId{2}, 5);
  EXPECT_EQ(m.counter_total("chan.tx"), 7u);
  EXPECT_EQ(m.counter_node("chan.tx", 0), 2u);
  EXPECT_EQ(m.counter_node("chan.tx", 1), 0u);
  EXPECT_EQ(m.counter_node("chan.tx", 2), 5u);
}

TEST(MetricsRegistry, OutOfRangeNodeCountsTowardTotalOnly) {
  obs::MetricsRegistry m(2);
  auto c = m.register_counter("c", obs::Unit::kCount, true);
  m.add(c, net::kBroadcastId);
  EXPECT_EQ(m.counter_total("c"), 1u);
  EXPECT_EQ(m.counter_node("c", 0), 0u);
  EXPECT_EQ(m.counter_node("c", 1), 0u);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  obs::MetricsRegistry m(2);
  auto a = m.register_counter("x", obs::Unit::kBytes, true);
  auto b = m.register_counter("x", obs::Unit::kBytes, true);
  EXPECT_EQ(a.cell, b.cell);
  m.add(a, net::NodeId{1});
  m.add(b, net::NodeId{1});
  EXPECT_EQ(m.counter_node("x", 1), 2u);
}

TEST(MetricsRegistry, HistogramBuckets) {
  obs::MetricsRegistry m;
  auto h = m.register_histogram("lat", obs::Unit::kMicroseconds,
                                {10.0, 100.0});
  m.observe(h, 5.0);
  m.observe(h, 50.0);
  m.observe(h, 5000.0);  // +inf tail
  obs::JsonWriter w;
  m.write_json(w);
  EXPECT_NE(w.str().find("\"count\":3"), std::string::npos) << w.str();
  EXPECT_NE(w.str().find("\"buckets\":[1,1,1]"), std::string::npos) << w.str();
}

TEST(MetricsRegistry, MergeAccumulatesElementWise) {
  obs::MetricsRegistry a(2), b(2);
  for (auto* m : {&a, &b}) {
    auto c = m->register_counter("c", obs::Unit::kCount, true);
    auto g = m->register_gauge("g", obs::Unit::kNanoampHours, false);
    m->add(c, net::NodeId{1}, 3);
    m->set(g, 2.5);
  }
  ASSERT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.counter_total("c"), 6u);
  EXPECT_EQ(a.counter_node("c", 1), 6u);
  EXPECT_DOUBLE_EQ(a.gauge_total("g"), 5.0);
}

TEST(MetricsRegistry, MergeRefusesDifferingSchemas) {
  obs::MetricsRegistry a(2), b(2);
  a.register_counter("c", obs::Unit::kCount, true);
  b.register_counter("other", obs::Unit::kCount, true);
  EXPECT_FALSE(a.merge_from(b));
}

TEST(MetricsRegistry, ExportIsSortedByName) {
  obs::MetricsRegistry m;
  m.register_counter("zeta", obs::Unit::kCount, false);
  m.register_counter("alpha", obs::Unit::kCount, false);
  obs::JsonWriter w;
  m.write_json(w);
  const std::string json = w.str();
  EXPECT_LT(json.find("alpha"), json.find("zeta"));
}

// ------------------------------------------------------------- observed runs

harness::ExperimentConfig tiny() {
  harness::ExperimentConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  return cfg;
}

TEST(ObservedRun, PublishesMetricsTraceAndCounterTracks) {
  harness::Observation obs;
  const auto r = harness::run_experiment(tiny(), &obs);
  EXPECT_TRUE(r.all_completed);
  EXPECT_EQ(obs.node_count, 9u);
  EXPECT_EQ(obs.log.dropped(), 0u);
  EXPECT_GT(obs.log.size(), 0u);
  // One subsystem per layer: channel, MAC, protocol, energy, run summary.
  EXPECT_GT(obs.metrics.counter_total("chan.tx"), 0u);
  EXPECT_GT(obs.metrics.counter_total("mac.tx"), 0u);
  EXPECT_GT(obs.metrics.counter_total("mnp.data_sent"), 0u);
  EXPECT_GT(obs.metrics.gauge_total("energy.nah"), 0.0);
  EXPECT_DOUBLE_EQ(obs.metrics.gauge_total("run.completed_nodes"), 9.0);
  // Counter tracks: per-node energy, the two channel cache-health series,
  // then the four message-class series.
  ASSERT_EQ(obs.counters.size(), 9u + 2u + 4u);
  EXPECT_EQ(obs.counters[0].name, "energy_nah");
  EXPECT_GE(obs.counters[0].samples.size(), 2u);  // t=0 and the final sample
  EXPECT_EQ(obs.counters[9].name, "cache_repairs");
  EXPECT_EQ(obs.counters[9].process, "network");
  EXPECT_GE(obs.counters[9].samples.size(), 2u);
  EXPECT_EQ(obs.counters[10].name, "cache_invalidations");
  EXPECT_EQ(obs.counters[11].name, "msgs_per_min_adv");
  EXPECT_EQ(obs.counters[11].process, "network");
}

TEST(ObservedRun, ObservationDoesNotPerturbTheRun) {
  harness::Observation obs;
  const auto observed = harness::run_experiment(tiny(), &obs);
  const auto plain = harness::run_experiment(tiny());
  EXPECT_EQ(observed.completion_time, plain.completion_time);
  EXPECT_EQ(observed.transmissions, plain.transmissions);
  EXPECT_EQ(observed.collisions, plain.collisions);
}

TEST(ObservedRun, DroppedEventsSurfaceInTheManifest) {
  harness::Observation obs(/*trace_capacity=*/10);
  const auto cfg = tiny();
  harness::run_experiment(cfg, &obs);
  EXPECT_GT(obs.log.dropped(), 0u);
  std::ostringstream manifest;
  harness::write_run_manifest(manifest, cfg, cfg.seed, 1, obs);
  const std::string expected =
      "\"dropped_events\":" + std::to_string(obs.log.dropped());
  EXPECT_NE(manifest.str().find(expected), std::string::npos);
  // And the trace header carries the same count.
  std::ostringstream trace;
  harness::write_trace_json(trace, obs);
  EXPECT_NE(trace.str().find(expected), std::string::npos);
}

// Satellite guarantee: the figure configurations must fit the default ring
// (their telemetry is the paper's evaluation; dropping any of it silently
// would corrupt the figures). 20x20 configs are exercised by the benches
// themselves; this covers the indoor figure class at test speed.
TEST(ObservedRun, FigureConfigsDropNoEvents) {
  for (const double range_ft : {9.0, 6.0}) {  // Fig. 5's two power levels
    harness::ExperimentConfig cfg;
    cfg.rows = 5;
    cfg.cols = 4;
    cfg.spacing_ft = 3.0;
    cfg.range_ft = range_ft;
    cfg.mnp.pipelining = false;
    cfg.mnp.packets_per_segment = 200;
    cfg.program_bytes = 200 * 22;
    cfg.seed = 11;
    harness::Observation obs;
    harness::run_experiment(cfg, &obs);
    EXPECT_EQ(obs.log.dropped(), 0u) << "range " << range_ft;
  }
}

// ------------------------------------------------------------ sweep identity

TEST(ObservedSweep, ExportsBitIdenticalAcrossJobCounts) {
  const auto cfg = tiny();
  const std::size_t runs = 4;

  const auto observe_with_jobs = [&](std::size_t jobs) {
    harness::Observation obs;
    harness::SweepOptions options;
    options.jobs = jobs;
    options.allow_oversubscribe = true;  // exercise the pool on any host
    options.observe = &obs;
    harness::run_sweep(cfg, runs, cfg.seed, options);
    std::ostringstream manifest, trace;
    harness::write_run_manifest(manifest, cfg, cfg.seed, runs, obs);
    harness::write_trace_json(trace, obs);
    return std::make_pair(manifest.str(), trace.str());
  };

  const auto sequential = observe_with_jobs(1);
  const auto parallel = observe_with_jobs(4);
  EXPECT_EQ(sequential.first, parallel.first);    // manifest
  EXPECT_EQ(sequential.second, parallel.second);  // representative trace
}

TEST(ObservedSweep, MergesMetricsOverAllSeeds) {
  const auto cfg = tiny();
  harness::Observation obs;
  harness::SweepOptions options;
  options.observe = &obs;
  harness::run_sweep(cfg, 3, cfg.seed, options);
  // Each of the 3 seeds completes all 9 nodes; gauges merge by summing.
  EXPECT_DOUBLE_EQ(obs.metrics.gauge_total("run.completed_nodes"), 27.0);
  harness::Observation single;
  harness::run_experiment(cfg, &single);
  EXPECT_GT(obs.metrics.counter_total("chan.tx"),
            single.metrics.counter_total("chan.tx"));
}

// -------------------------------------------------------------- golden trace

harness::ExperimentConfig golden_config() {
  harness::ExperimentConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.mnp.packets_per_segment = 16;  // keeps the checked-in snapshot small
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  cfg.seed = 42;
  return cfg;
}

TEST(TraceGolden, MatchesCheckedInSnapshot) {
  harness::Observation obs;
  harness::run_experiment(golden_config(), &obs);
  ASSERT_EQ(obs.log.dropped(), 0u);
  std::ostringstream rendered;
  harness::write_trace_json(rendered, obs);

  const std::string path =
      std::string(MNP_TEST_DATA_DIR) + "/golden_trace_3x3.json";
  if (std::getenv("MNP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered.str();
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (regenerate with MNP_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  // Byte equality: the export is deterministic by design — any diff is
  // either a real schema change (bump kTelemetrySchemaVersion, regenerate)
  // or a determinism regression.
  EXPECT_EQ(rendered.str(), expected.str());
}

}  // namespace
}  // namespace mnp

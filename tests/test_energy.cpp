// Unit tests for the Table-1 energy model and the per-node meter.
#include <gtest/gtest.h>

#include "energy/energy_meter.hpp"

namespace mnp::energy {
namespace {

TEST(EnergyModel, Table1Defaults) {
  // The paper's Table 1 (values in nAh).
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.tx_packet_nah, 20.000);
  EXPECT_DOUBLE_EQ(m.rx_packet_nah, 8.000);
  EXPECT_DOUBLE_EQ(m.idle_listen_per_ms_nah, 1.250);
  EXPECT_DOUBLE_EQ(m.eeprom_read_16b_nah, 1.111);
  EXPECT_DOUBLE_EQ(m.eeprom_write_16b_nah, 83.333);
}

TEST(EnergyModel, IdleCostScalesWithTime) {
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.idle_cost_nah(sim::msec(1)), 1.250);
  EXPECT_DOUBLE_EQ(m.idle_cost_nah(sim::sec(1)), 1250.0);
}

TEST(EnergyModel, EepromCostsBilledPer16ByteLine) {
  EnergyModel m;
  EXPECT_DOUBLE_EQ(m.eeprom_write_cost_nah(16), 83.333);
  EXPECT_DOUBLE_EQ(m.eeprom_write_cost_nah(17), 2 * 83.333);
  EXPECT_DOUBLE_EQ(m.eeprom_read_cost_nah(1), 1.111);
  EXPECT_DOUBLE_EQ(m.eeprom_read_cost_nah(32), 2 * 1.111);
}

TEST(EnergyMeter, CountsOperations) {
  EnergyMeter meter;
  meter.count_tx_packet();
  meter.count_tx_packet();
  meter.count_rx_packet();
  meter.count_eeprom_write(22);  // 2 lines
  meter.count_eeprom_read(22);   // 2 lines
  EXPECT_EQ(meter.tx_packets(), 2u);
  EXPECT_EQ(meter.rx_packets(), 1u);
  EXPECT_EQ(meter.eeprom_writes(), 1u);
  EXPECT_EQ(meter.eeprom_reads(), 1u);
  const double expected =
      2 * 20.0 + 8.0 + 2 * 83.333 + 2 * 1.111;  // no radio time yet
  EXPECT_DOUBLE_EQ(meter.total_nah(0), expected);
}

TEST(EnergyMeter, IntegratesActiveRadioTime) {
  EnergyMeter meter;
  meter.radio_became_active(sim::sec(10));
  meter.radio_became_inactive(sim::sec(25));
  EXPECT_EQ(meter.active_radio_time(sim::sec(100)), sim::sec(15));
  meter.radio_became_active(sim::sec(50));
  // Still on at query time: the open interval counts.
  EXPECT_EQ(meter.active_radio_time(sim::sec(60)), sim::sec(25));
}

TEST(EnergyMeter, DoubleOnOffAreIdempotent) {
  EnergyMeter meter;
  meter.radio_became_active(sim::sec(1));
  meter.radio_became_active(sim::sec(2));  // ignored
  meter.radio_became_inactive(sim::sec(3));
  meter.radio_became_inactive(sim::sec(4));  // ignored
  EXPECT_EQ(meter.active_radio_time(sim::sec(10)), sim::sec(2));
}

TEST(EnergyMeter, ActiveTimeAfterFirstAdvertisement) {
  // Fig. 9's metric: subtract the initial idle-listening period that ends
  // when the node first hears an advertisement.
  EnergyMeter meter;
  meter.radio_became_active(0);
  meter.mark_first_advertisement(sim::sec(40));
  meter.radio_became_inactive(sim::sec(100));
  EXPECT_EQ(meter.active_radio_time(sim::sec(100)), sim::sec(100));
  EXPECT_EQ(meter.active_radio_time_after_first_adv(sim::sec(100)), sim::sec(60));
  EXPECT_TRUE(meter.heard_advertisement());
  EXPECT_EQ(meter.first_adv_time(), sim::sec(40));
}

TEST(EnergyMeter, FirstAdvWhileRadioOffDoesNotSplit) {
  EnergyMeter meter;
  meter.radio_became_active(0);
  meter.radio_became_inactive(sim::sec(10));
  meter.mark_first_advertisement(sim::sec(20));  // radio currently off
  meter.radio_became_active(sim::sec(30));
  meter.radio_became_inactive(sim::sec(45));
  EXPECT_EQ(meter.active_radio_time(sim::sec(50)), sim::sec(25));
  EXPECT_EQ(meter.active_radio_time_after_first_adv(sim::sec(50)), sim::sec(15));
}

TEST(EnergyMeter, NoAdvertisementMeansZeroPostAdvTime) {
  EnergyMeter meter;
  meter.radio_became_active(0);
  EXPECT_FALSE(meter.heard_advertisement());
  EXPECT_EQ(meter.active_radio_time_after_first_adv(sim::sec(100)), 0);
}

TEST(EnergyMeter, MarkFirstAdvertisementOnlyOnce) {
  EnergyMeter meter;
  meter.radio_became_active(0);
  meter.mark_first_advertisement(sim::sec(10));
  meter.mark_first_advertisement(sim::sec(90));  // ignored
  EXPECT_EQ(meter.first_adv_time(), sim::sec(10));
  EXPECT_EQ(meter.active_radio_time_after_first_adv(sim::sec(100)), sim::sec(90));
}

TEST(EnergyMeter, IdleListeningDominatesLongRuns) {
  // The paper's motivation: a node with the radio on for minutes spends
  // far more charge idling than transmitting its handful of packets.
  EnergyMeter meter;
  meter.radio_became_active(0);
  for (int i = 0; i < 100; ++i) meter.count_tx_packet();
  const double total = meter.total_nah(sim::minutes(10));
  const double tx_part = 100 * 20.0;
  EXPECT_GT(total - tx_part, 100 * tx_part);
}

}  // namespace
}  // namespace mnp::energy

// Property-style tests: protocol invariants swept across seeds, grid
// shapes, loss models and program sizes.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.hpp"

namespace mnp {
namespace {

harness::ExperimentConfig base_config() {
  harness::ExperimentConfig cfg;
  cfg.protocol = harness::Protocol::kMnp;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.spacing_ft = 10.0;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(2);
  return cfg;
}

// ---------------------------------------------------------------------------
// Reliability: 100% coverage and byte accuracy across random seeds.
// ---------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, EveryNodeGetsTheExactImage) {
  auto cfg = base_config();
  cfg.seed = GetParam();
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Reliability under harsher loss.
// ---------------------------------------------------------------------------

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, CompletesDespiteLinkNoise) {
  auto cfg = base_config();
  cfg.link_noise_stddev = GetParam();
  cfg.seed = 99;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed) << "noise " << GetParam() << ": "
                               << r.completed_count << "/" << r.nodes.size();
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoiseSweep,
                         ::testing::Values(0.0, 0.05, 0.12, 0.2));

// ---------------------------------------------------------------------------
// Grid shapes (line, square, rectangle) all converge.
// ---------------------------------------------------------------------------

class ShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ShapeSweep, CompletesOnAnyGridShape) {
  auto cfg = base_config();
  cfg.rows = std::get<0>(GetParam());
  cfg.cols = std::get<1>(GetParam());
  cfg.set_program_segments(1);
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(std::make_tuple(1, 8), std::make_tuple(2, 10),
                      std::make_tuple(5, 5), std::make_tuple(3, 7)));

// ---------------------------------------------------------------------------
// EEPROM write-once invariant: every packet written at most once, and the
// number of writes equals exactly the number of image packets.
// ---------------------------------------------------------------------------

TEST(MnpProperties, EepromWriteOnceInvariant) {
  // Re-run a lossy dissemination with write-once tracking armed via the
  // per-node eeprom counters exposed through the harness result.
  auto cfg = base_config();
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.seed = 7;
  cfg.set_program_segments(2);
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.all_completed);
  const std::uint64_t image_packets = 2 * 128;
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    if (i == cfg.base) continue;  // base never writes (serves from image)
    EXPECT_EQ(r.nodes[i].eeprom_writes, image_packets) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Sequential segments: a node's segment completion times are ordered.
// ---------------------------------------------------------------------------

TEST(MnpProperties, SenderSelectionKeepsBulkOverlapRare) {
  // The paper's claim: at most one active sender per neighborhood. On the
  // ideal disk model the election has accurate inputs; concurrent
  // overlapping data transmissions should be a rounding error compared to
  // the total data volume.
  auto cfg = base_config();
  cfg.empirical_links = false;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.set_program_segments(2);
  std::uint64_t total_overlaps = 0;
  std::uint64_t total_data = 0;
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    cfg.seed = seed;
    const auto r = harness::run_experiment(cfg);
    EXPECT_TRUE(r.all_completed);
    total_overlaps += r.bulk_overlaps;
    for (const auto& n : r.nodes) total_data += n.tx_data;
  }
  EXPECT_LT(static_cast<double>(total_overlaps),
            0.05 * static_cast<double>(total_data))
      << total_overlaps << " overlaps vs " << total_data << " data packets";
}

TEST(MnpProperties, CompletionTimesRespectDistanceWave) {
  // Code flows outward from the base: the farthest corner cannot complete
  // before the base's direct neighbor.
  auto cfg = base_config();
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.range_ft = 15.0;  // strictly nearest-neighbor links
  cfg.empirical_links = false;
  cfg.set_program_segments(1);
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.all_completed);
  const auto neighbor = r.nodes[1].completion;         // next to base
  const auto far_corner = r.nodes[35].completion;      // opposite corner
  EXPECT_LT(neighbor, far_corner);
}

TEST(MnpProperties, EnergyAccountingMatchesClosedForm) {
  // The meter must equal the Table-1 priced sum of its own counters.
  auto cfg = base_config();
  cfg.set_program_segments(1);
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.all_completed);
  for (const auto& n : r.nodes) {
    EXPECT_GT(n.energy_nah, 0.0);
    // Idle listening at 1.25 nAh/ms over the active period is a lower
    // bound on the total (tx/rx/EEPROM only add).
    const double idle_floor = sim::to_ms(n.active_radio) * 1.250;
    EXPECT_GE(n.energy_nah, idle_floor * 0.999);
  }
}

TEST(MnpProperties, DeterministicGivenSeed) {
  auto cfg = base_config();
  cfg.seed = 1234;
  const auto a = harness::run_experiment(cfg);
  const auto b = harness::run_experiment(cfg);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].completion, b.nodes[i].completion) << i;
    EXPECT_EQ(a.nodes[i].tx_total, b.nodes[i].tx_total) << i;
  }
}

TEST(MnpProperties, PipeliningOffStillCompletes) {
  auto cfg = base_config();
  cfg.mnp.pipelining = false;
  cfg.set_program_segments(2);
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed);
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

TEST(MnpProperties, QueryUpdateOffStillCompletes) {
  auto cfg = base_config();
  cfg.mnp.query_update_enabled = false;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed);
  EXPECT_EQ(r.verified_count(), r.nodes.size());
}

TEST(MnpProperties, SleepingSavesActiveRadioTime) {
  // MNP's active radio time must be well below elapsed time (the paper
  // reports ~50%); a protocol that never sleeps pins this at 100%.
  auto cfg = base_config();
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.set_program_segments(2);
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.all_completed);
  const double completion_s = sim::to_seconds(r.completion_time);
  EXPECT_LT(r.avg_active_radio_s(), 0.85 * completion_s);
}

}  // namespace
}  // namespace mnp

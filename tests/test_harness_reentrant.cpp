// Re-entrancy of run_experiment (DESIGN.md §14): the fleet scheduler
// calls it from many threads at once with *different* configurations —
// unlike run_sweep, which fans one configuration over seeds. Any mutable
// static anywhere under the harness (RNG state, kernel-dispatch globals,
// shared scratch) shows up here as a cross-thread result difference, and
// under the CI thread-sanitizer job as a reported race.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/observe.hpp"
#include "service/asset_cache.hpp"

namespace mnp {
namespace {

harness::ExperimentConfig variant(std::size_t i) {
  harness::ExperimentConfig cfg;
  cfg.rows = 4 + (i % 3);           // 4x4, 5x5, 6x6
  cfg.cols = cfg.rows;
  cfg.seed = 100 + i;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::sec(900);
  switch (i % 4) {                  // mix protocols across threads
    case 0: cfg.protocol = harness::Protocol::kMnp; break;
    case 1: cfg.protocol = harness::Protocol::kDeluge; break;
    case 2: cfg.protocol = harness::Protocol::kNcast; break;
    default: cfg.protocol = harness::Protocol::kXnp; break;
  }
  return cfg;
}

struct Essentials {
  sim::Time completion = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  double energy = 0.0;

  static Essentials of(const harness::RunResult& r) {
    return {r.completion_time, r.transmissions, r.deliveries, r.collisions,
            r.total_energy_nah()};
  }
  bool operator==(const Essentials&) const = default;
};

TEST(HarnessReentrant, ConcurrentHeterogeneousRunsMatchSequential) {
  constexpr std::size_t kRuns = 8;

  // Sequential reference, one thread, run order 0..N-1.
  std::vector<Essentials> reference(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    reference[i] = Essentials::of(harness::run_experiment(variant(i)));
  }

  // The same configurations, all at once from independent threads.
  std::vector<Essentials> concurrent(kRuns);
  std::vector<std::thread> threads;
  threads.reserve(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    threads.emplace_back([i, &concurrent] {
      concurrent[i] = Essentials::of(harness::run_experiment(variant(i)));
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(reference[i], concurrent[i]) << "variant " << i;
  }
}

TEST(HarnessReentrant, ConcurrentRunsSharingCachedAssetsMatchSequential) {
  // The fleet fast path: every thread's config points at the *same*
  // interned Topology and ProgramImage. The shared image is read
  // concurrently by all runs; a hidden mutation of either asset anywhere
  // in the harness would diverge results or trip TSan.
  constexpr std::size_t kRuns = 6;
  service::AssetCache cache;

  auto shared_variant = [&cache](std::size_t i) {
    harness::ExperimentConfig cfg;
    cfg.rows = 5;
    cfg.cols = 5;
    cfg.seed = 200 + i;
    cfg.set_program_segments(1);
    cfg.max_sim_time = sim::sec(900);
    cache.attach_assets(cfg);
    return cfg;
  };

  std::vector<Essentials> reference(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    reference[i] = Essentials::of(harness::run_experiment(shared_variant(i)));
  }

  std::vector<Essentials> concurrent(kRuns);
  std::vector<std::thread> threads;
  threads.reserve(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    threads.emplace_back([i, &concurrent, &shared_variant] {
      concurrent[i] =
          Essentials::of(harness::run_experiment(shared_variant(i)));
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(reference[i], concurrent[i]) << "seed " << 200 + i;
  }
}

TEST(HarnessReentrant, ObservedAndProgressSampledRunsDoNotPerturbResults) {
  // Observation is per-run state; concurrent observed runs with live
  // progress hooks must neither race nor change any result.
  harness::ExperimentConfig cfg = variant(0);

  const Essentials plain = Essentials::of(harness::run_experiment(cfg));

  std::vector<Essentials> observed(4);
  std::vector<std::uint64_t> progress_calls(4, 0);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    threads.emplace_back([&, i] {
      harness::Observation obs(/*trace_capacity=*/1);
      obs.with_trace = false;
      obs.progress_interval = sim::sec(10);
      obs.on_progress = [&progress_calls, i](const harness::RunProgress&) {
        ++progress_calls[i];
      };
      observed[i] = Essentials::of(harness::run_experiment(cfg, &obs));
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < observed.size(); ++i) {
    EXPECT_EQ(plain, observed[i]) << i;
    EXPECT_GT(progress_calls[i], 0u) << i;
  }
}

}  // namespace
}  // namespace mnp

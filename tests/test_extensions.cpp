// Tests for the paper's section-6 extensions: subset (multi-program)
// dissemination, pre-wave duty cycling, and battery-aware advertising.
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hpp"
#include "mnp/mnp_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"

namespace mnp {
namespace {

// ---------------------------------------------------------------------------
// Subset dissemination: two programs, two base stations, disjoint halves.
// ---------------------------------------------------------------------------

class SubsetTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kRows = 4;
  static constexpr std::size_t kCols = 8;

  void run_two_programs() {
    sim_ = std::make_unique<sim::Simulator>(31);
    network_ = std::make_unique<node::Network>(
        *sim_, net::Topology::grid(kRows, kCols, 10.0),
        [this](const net::Topology& t) {
          net::EmpiricalLinkModel::Params lp;
          lp.range_ft = 25.0;
          return std::make_unique<net::EmpiricalLinkModel>(
              t, lp, sim_->fork_rng(0x11A7));
        });
    core::MnpConfig cfg;
    cfg.packets_per_segment = 32;  // small segments: fast test
    image_a_ = std::make_shared<const core::ProgramImage>(
        10, 2 * 32 * cfg.payload_bytes, 32, cfg.payload_bytes);
    image_b_ = std::make_shared<const core::ProgramImage>(
        20, 2 * 32 * cfg.payload_bytes, 32, cfg.payload_bytes);
    for (net::NodeId id = 0; id < network_->size(); ++id) {
      const bool left_half = (id % kCols) < kCols / 2;
      core::MnpConfig node_cfg = cfg;
      node_cfg.target_program = left_half ? 10 : 20;
      std::unique_ptr<core::MnpNode> app;
      if (id == 0) {
        app = std::make_unique<core::MnpNode>(node_cfg, image_a_);  // left base
      } else if (id == kCols - 1) {
        app = std::make_unique<core::MnpNode>(node_cfg, image_b_);  // right base
      } else {
        app = std::make_unique<core::MnpNode>(node_cfg);
      }
      apps_.push_back(app.get());
      network_->node(id).set_application(std::move(app));
    }
    network_->boot_all();
    sim_->run_until_condition(sim::hours(2), [this] {
      return network_->complete_image_count() == network_->size();
    });
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<node::Network> network_;
  std::shared_ptr<const core::ProgramImage> image_a_;
  std::shared_ptr<const core::ProgramImage> image_b_;
  std::vector<core::MnpNode*> apps_;
};

TEST_F(SubsetTest, DisjointSubsetsEachGetTheirOwnProgram) {
  run_two_programs();
  ASSERT_EQ(network_->complete_image_count(), network_->size());
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    const bool left_half = (id % kCols) < kCols / 2;
    const auto& oracle = left_half ? *image_a_ : *image_b_;
    SCOPED_TRACE(::testing::Message() << "node " << id);
    EXPECT_TRUE(apps_[id]->has_complete_image());
    if (id != 0 && id != kCols - 1) {
      const auto stored =
          network_->node(id).eeprom().read(0, oracle.total_bytes());
      EXPECT_TRUE(oracle.matches(stored));
    }
  }
}

TEST_F(SubsetTest, NodesNeverStoreTheForeignProgram) {
  run_two_programs();
  // A node's received program id must match its subscription — checked
  // via reboot() against the WRONG oracle failing.
  for (net::NodeId id = 1; id < network_->size(); ++id) {
    if (id == kCols - 1) continue;  // the right-half base station
    const bool left_half = (id % kCols) < kCols / 2;
    const auto& wrong = left_half ? *image_b_ : *image_a_;
    EXPECT_FALSE(apps_[id]->reboot(wrong)) << "node " << id;
  }
}

// ---------------------------------------------------------------------------
// Pre-wave duty cycling.
// ---------------------------------------------------------------------------

TEST(PreWaveDutyCycle, StillCompletesAndCutsInitialIdle) {
  harness::ExperimentConfig on, off;
  on.rows = off.rows = 6;
  on.cols = off.cols = 6;
  on.range_ft = off.range_ft = 25.0;
  on.set_program_segments(1);
  off.set_program_segments(1);
  on.seed = off.seed = 15;
  on.mnp.pre_wave_duty_cycle = 0.15;
  const auto with = harness::run_experiment(on);
  const auto without = harness::run_experiment(off);
  ASSERT_TRUE(with.all_completed);
  ASSERT_TRUE(without.all_completed);
  const double idle_with =
      with.avg_active_radio_s() - with.avg_active_radio_after_adv_s();
  const double idle_without =
      without.avg_active_radio_s() - without.avg_active_radio_after_adv_s();
  EXPECT_LT(idle_with, 0.6 * idle_without);
  EXPECT_EQ(with.verified_count(), with.nodes.size());
}

// ---------------------------------------------------------------------------
// Battery-aware election.
// ---------------------------------------------------------------------------

TEST(BatteryAware, DrainedNodesForwardLessButNetworkCompletes) {
  harness::ExperimentConfig cfg;
  cfg.rows = 6;
  cfg.cols = 6;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(1);
  cfg.seed = 16;
  cfg.mnp.battery_aware = true;
  cfg.battery_levels.assign(36, 1.0);
  for (std::size_t i = 0; i < 36; ++i) {
    if (i % 2 == 1) cfg.battery_levels[i] = 0.3;
  }
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.all_completed);
  std::uint64_t weak = 0, strong = 0;
  for (std::size_t i = 1; i < 36; ++i) {
    (cfg.battery_levels[i] < 1.0 ? weak : strong) += r.nodes[i].tx_data;
  }
  EXPECT_LT(weak, strong);
}

}  // namespace
}  // namespace mnp

// Unit tests for the disk and empirical link models.
#include <gtest/gtest.h>

#include <memory>

#include "mnp/mnp_node.hpp"
#include "net/link_model.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {
namespace {

Topology line_topology(double spacing, std::size_t n) {
  Topology t;
  for (std::size_t i = 0; i < n; ++i) {
    t.add({static_cast<double>(i) * spacing, 0.0});
  }
  return t;
}

TEST(DiskLinkModel, PerfectInsideRangeNothingOutside) {
  Topology t = line_topology(10.0, 5);
  DiskLinkModel m(t, 25.0);
  EXPECT_DOUBLE_EQ(m.packet_success(0, 1, 1.0), 1.0);  // 10 ft
  EXPECT_DOUBLE_EQ(m.packet_success(0, 2, 1.0), 1.0);  // 20 ft
  EXPECT_DOUBLE_EQ(m.packet_success(0, 3, 1.0), 0.0);  // 30 ft
  EXPECT_DOUBLE_EQ(m.packet_success(2, 2, 1.0), 0.0);  // self
}

TEST(DiskLinkModel, PowerScaleShrinksRange) {
  Topology t = line_topology(10.0, 5);
  DiskLinkModel m(t, 25.0);
  EXPECT_DOUBLE_EQ(m.packet_success(0, 2, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(m.packet_success(0, 2, 0.5), 0.0);  // 12.5 ft reach
  EXPECT_DOUBLE_EQ(m.packet_success(0, 1, 0.5), 1.0);
}

TEST(DiskLinkModel, InterferenceReachesFarther) {
  Topology t = line_topology(10.0, 6);
  DiskLinkModel m(t, 25.0, 1.6);  // interferes to 40 ft
  EXPECT_DOUBLE_EQ(m.packet_success(0, 4, 1.0), 0.0);  // 40 ft: no decode
  EXPECT_TRUE(m.interferes(0, 4, 1.0));                // ...but audible
  EXPECT_FALSE(m.interferes(0, 5, 1.0));               // 50 ft: silence
  EXPECT_FALSE(m.interferes(3, 3, 1.0));               // self
}

TEST(EmpiricalLinkModel, BaseCurveShape) {
  EmpiricalLinkModel::Params p;
  // Near-perfect close in, zero beyond the gray area, monotone between.
  EXPECT_NEAR(EmpiricalLinkModel::base_success(0.1, p), 0.98, 1e-9);
  EXPECT_NEAR(EmpiricalLinkModel::base_success(p.gray_start, p), 0.98, 1e-9);
  EXPECT_DOUBLE_EQ(EmpiricalLinkModel::base_success(p.gray_end, p), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalLinkModel::base_success(2.0, p), 0.0);
  double prev = 1.0;
  for (double u = 0.5; u <= 1.1; u += 0.05) {
    const double s = EmpiricalLinkModel::base_success(u, p);
    EXPECT_LE(s, prev + 1e-12) << "not monotone at u=" << u;
    prev = s;
  }
}

TEST(EmpiricalLinkModel, LinksAreAsymmetric) {
  // TOSSIM property: each directed edge has its own quality.
  Topology t = line_topology(18.0, 2);  // inside the gray area for R=25
  EmpiricalLinkModel::Params p;
  p.range_ft = 25.0;
  p.edge_noise_stddev = 0.15;
  bool saw_asymmetry = false;
  for (std::uint64_t seed = 0; seed < 16 && !saw_asymmetry; ++seed) {
    EmpiricalLinkModel m(t, p, sim::Rng(seed));
    if (std::abs(m.packet_success(0, 1, 1.0) - m.packet_success(1, 0, 1.0)) >
        1e-6) {
      saw_asymmetry = true;
    }
  }
  EXPECT_TRUE(saw_asymmetry);
}

TEST(EmpiricalLinkModel, DeterministicForSameSeed) {
  Topology t = line_topology(15.0, 4);
  EmpiricalLinkModel::Params p;
  EmpiricalLinkModel a(t, p, sim::Rng(9));
  EmpiricalLinkModel b(t, p, sim::Rng(9));
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(a.packet_success(i, j, 1.0), b.packet_success(i, j, 1.0));
    }
  }
}

TEST(EmpiricalLinkModel, ProbabilitiesStayInUnitInterval) {
  Topology t = line_topology(5.0, 10);
  EmpiricalLinkModel::Params p;
  p.edge_noise_stddev = 0.5;  // extreme noise must still clamp
  EmpiricalLinkModel m(t, p, sim::Rng(4));
  for (NodeId i = 0; i < 10; ++i) {
    for (NodeId j = 0; j < 10; ++j) {
      const double s = m.packet_success(i, j, 1.0);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(EmpiricalLinkModel, ZeroPowerKillsTheLink) {
  Topology t = line_topology(10.0, 2);
  EmpiricalLinkModel m(t, {}, sim::Rng(1));
  EXPECT_DOUBLE_EQ(m.packet_success(0, 1, 0.0), 0.0);
}

TEST(EmpiricalLinkModel, LowerPowerNeverHelps) {
  // Battery-aware advertising relies on reduced power shrinking coverage.
  Topology t = line_topology(12.0, 4);
  EmpiricalLinkModel m(t, {}, sim::Rng(2));
  for (NodeId j = 1; j < 4; ++j) {
    const double full = m.packet_success(0, j, 1.0);
    const double half = m.packet_success(0, j, 0.5);
    EXPECT_LE(half, full + 1e-12) << "link 0->" << j;
  }
}


TEST(ShadowingLinkModel, MarginMonotoneInDistance) {
  Topology t = line_topology(10.0, 2);
  ShadowingLinkModel m(t, {}, sim::Rng(1));
  double prev = 1e9;
  for (double d = 5.0; d <= 100.0; d += 5.0) {
    const double margin = m.margin_db(d, 1.0);
    EXPECT_LT(margin, prev);
    prev = margin;
  }
  // 0 dB exactly at the nominal range.
  ShadowingLinkModel::Params p;
  EXPECT_NEAR(m.margin_db(p.range_ft, 1.0), 0.0, 1e-9);
}

TEST(ShadowingLinkModel, SuccessFollowsMargin) {
  Topology t = line_topology(5.0, 12);
  ShadowingLinkModel::Params p;
  p.shadowing_stddev_db = 0.0;  // deterministic for this test
  ShadowingLinkModel m(t, p, sim::Rng(2));
  // Close (5 ft, margin >> 0): near-certain. Far (55 ft, margin << 0):
  // deep in the logistic tail; the hard cutoff clips the extreme tail.
  EXPECT_GT(m.packet_success(0, 1, 1.0), 0.9);
  EXPECT_LT(m.packet_success(0, 11, 1.0), 0.05);
  EXPECT_DOUBLE_EQ(m.margin_db(250.0, 1.0) > 0 ? 1.0 : 0.0, 0.0);
  // Monotone in between.
  double prev = 1.0;
  for (NodeId j = 1; j < 12; ++j) {
    const double s = m.packet_success(0, j, 1.0);
    EXPECT_LE(s, prev + 1e-12);
    prev = s;
  }
}

TEST(ShadowingLinkModel, ShadowingMakesLinksAsymmetric) {
  Topology t = line_topology(22.0, 2);
  ShadowingLinkModel::Params p;
  p.shadowing_stddev_db = 6.0;
  bool saw_asymmetry = false;
  for (std::uint64_t seed = 0; seed < 8 && !saw_asymmetry; ++seed) {
    ShadowingLinkModel m(t, p, sim::Rng(seed));
    if (std::abs(m.packet_success(0, 1, 1.0) - m.packet_success(1, 0, 1.0)) >
        1e-3) {
      saw_asymmetry = true;
    }
  }
  EXPECT_TRUE(saw_asymmetry);
}

TEST(ShadowingLinkModel, InterferenceReachesBeyondDecoding) {
  Topology t = line_topology(10.0, 8);
  ShadowingLinkModel::Params p;
  p.shadowing_stddev_db = 0.0;
  ShadowingLinkModel m(t, p, sim::Rng(3));
  // Find the farthest decodable node and verify interference reaches past.
  NodeId last_decodable = 0;
  for (NodeId j = 1; j < 8; ++j) {
    if (m.packet_success(0, j, 1.0) > 0.0) last_decodable = j;
  }
  ASSERT_GE(last_decodable, 1);
  if (last_decodable + 1 < 8) {
    EXPECT_TRUE(m.interferes(0, static_cast<NodeId>(last_decodable + 1), 1.0));
  }
}

TEST(ShadowingLinkModel, ZeroPowerIsSilent) {
  Topology t = line_topology(10.0, 2);
  ShadowingLinkModel m(t, {}, sim::Rng(4));
  EXPECT_DOUBLE_EQ(m.packet_success(0, 1, 0.0), 0.0);
  EXPECT_FALSE(m.interferes(0, 1, 0.0));
}

TEST(ShadowingIntegration, MnpCompletesOverShadowedLinks) {
  // Plug the shadowing model into a real dissemination via the Network
  // link-model factory.
  sim::Simulator sim(21);
  node::Network network(
      sim, Topology::grid(4, 4, 10.0), [&](const Topology& t) {
        ShadowingLinkModel::Params p;
        p.range_ft = 30.0;
        return std::make_unique<ShadowingLinkModel>(t, p, sim.fork_rng(77));
      });
  core::MnpConfig cfg;
  auto image = std::make_shared<const core::ProgramImage>(
      1, cfg.packets_per_segment * cfg.payload_bytes);
  for (NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<core::MnpNode>(cfg, image)
                : std::make_unique<core::MnpNode>(cfg));
  }
  network.boot_all();
  EXPECT_TRUE(sim.run_until_condition(
      sim::hours(2), [&] { return network.stats().all_completed(); }));
}

}  // namespace
}  // namespace mnp::net

// Fault-injection tests: nodes die mid-dissemination and the protocol's
// timeout machinery (paper section 3.2: "It is possible that the receiver
// never gets the EndDownload message. The reason can be the sender dies as
// it is sending packets...") routes around them.
#include <gtest/gtest.h>

#include <memory>

#include "mnp/mnp_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"

namespace mnp {
namespace {

struct Rig {
  explicit Rig(std::uint64_t seed, std::size_t rows = 4, std::size_t cols = 4,
               double range = 25.0) {
    sim = std::make_unique<sim::Simulator>(seed);
    network = std::make_unique<node::Network>(
        *sim, net::Topology::grid(rows, cols, 10.0),
        [&](const net::Topology& t) {
          net::EmpiricalLinkModel::Params lp;
          lp.range_ft = range;
          return std::make_unique<net::EmpiricalLinkModel>(
              t, lp, sim->fork_rng(0x11A7));
        });
    core::MnpConfig cfg;
    image = std::make_shared<const core::ProgramImage>(
        1, 2 * cfg.packets_per_segment * cfg.payload_bytes);
    for (net::NodeId id = 0; id < network->size(); ++id) {
      network->node(id).set_application(
          id == 0 ? std::make_unique<core::MnpNode>(cfg, image)
                  : std::make_unique<core::MnpNode>(cfg));
    }
    network->boot_all();
  }

  std::size_t live_nodes() const {
    std::size_t n = 0;
    for (net::NodeId id = 0; id < network->size(); ++id) {
      if (!network->node(id).is_dead()) ++n;
    }
    return n;
  }

  std::size_t live_completed() const {
    std::size_t n = 0;
    for (net::NodeId id = 0; id < network->size(); ++id) {
      if (!network->node(id).is_dead() &&
          network->node(id).application()->has_complete_image()) {
        ++n;
      }
    }
    return n;
  }

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<node::Network> network;
  std::shared_ptr<const core::ProgramImage> image;
};

TEST(FaultInjection, DeadNodeIsSilent) {
  Rig rig(1);
  node::Node& victim = rig.network->node(5);
  victim.kill();
  EXPECT_TRUE(victim.is_dead());
  EXPECT_FALSE(victim.radio_is_on());
  EXPECT_FALSE(victim.send(net::Packet{}));
  victim.radio_on();  // the dead stay dead
  EXPECT_FALSE(victim.radio_is_on());
}

TEST(FaultInjection, RelayDeathMidRunDoesNotStrandTheRest) {
  Rig rig(2);
  // Let the first hop complete, then kill an interior relay.
  rig.sim->run_until(sim::sec(30));
  rig.network->node(5).kill();
  rig.sim->run_until_condition(sim::hours(2), [&] {
    return rig.live_completed() == rig.live_nodes();
  });
  EXPECT_EQ(rig.live_completed(), rig.live_nodes());
  EXPECT_EQ(rig.live_nodes(), 15u);
}

TEST(FaultInjection, SenderDeathMidTransferRecoversViaTimeout) {
  // Kill a node WHILE the network is mid-dissemination at the moment it
  // is most likely to be the active sender (shortly after the base's
  // first transfer). The paper's download timeout must fail the orphans
  // back to re-requesting from someone else.
  Rig rig(3, 5, 5);
  rig.sim->run_until(sim::sec(12));  // first neighborhood transfer underway
  rig.network->node(1).kill();       // the base's most likely first child
  rig.network->node(5).kill();       // and the other one
  const bool done = rig.sim->run_until_condition(sim::hours(2), [&] {
    return rig.live_completed() == rig.live_nodes();
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.live_nodes(), 23u);
}

TEST(FaultInjection, MassDeathStillServesTheConnectedSurvivors) {
  Rig rig(4, 5, 5);
  rig.sim->run_until(sim::sec(5));
  // Kill the entire second column: survivors remain connected via rows.
  for (std::size_t row = 0; row < 5; ++row) {
    rig.network->node(static_cast<net::NodeId>(row * 5 + 1)).kill();
  }
  rig.sim->run_until_condition(sim::hours(2), [&] {
    return rig.live_completed() == rig.live_nodes();
  });
  EXPECT_EQ(rig.live_completed(), rig.live_nodes());
}

TEST(FaultInjection, BaseDeathBeforeFirstTransferStallsEveryone) {
  // Sanity check of the monitor itself: without any source the network
  // cannot complete, and the run must stop at the deadline rather than
  // falsely report success.
  Rig rig(5, 3, 3);
  rig.network->node(0).kill();  // the only image holder, dead at boot
  const bool done = rig.sim->run_until_condition(sim::minutes(10), [&] {
    return rig.live_completed() == rig.live_nodes();
  });
  EXPECT_FALSE(done);
  EXPECT_EQ(rig.live_completed(), 0u);
}

}  // namespace
}  // namespace mnp

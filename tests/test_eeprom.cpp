// Unit tests for the EEPROM model.
#include <gtest/gtest.h>

#include "storage/eeprom.hpp"

namespace mnp::storage {
namespace {

TEST(Eeprom, WriteThenReadRoundTrips) {
  Eeprom e(1024);
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  EXPECT_TRUE(e.write(100, data));
  EXPECT_EQ(e.read(100, 5), data);
}

TEST(Eeprom, FreshBytesReadAsZero) {
  Eeprom e(64);
  const auto bytes = e.read(0, 64);
  ASSERT_EQ(bytes.size(), 64u);
  for (auto b : bytes) EXPECT_EQ(b, 0);
}

TEST(Eeprom, RangeChecksRejectOutOfBounds) {
  Eeprom e(32);
  EXPECT_FALSE(e.write(30, {1, 2, 3}));         // runs past the end
  EXPECT_FALSE(e.write(33, {1}));               // offset past the end
  EXPECT_TRUE(e.write(29, {1, 2, 3}));          // exactly fits
  EXPECT_TRUE(e.read(33, 1).empty());
  EXPECT_TRUE(e.read(0, 33).empty());
  EXPECT_EQ(e.read(0, 32).size(), 32u);
}

TEST(Eeprom, CountsOperations) {
  Eeprom e(256);
  e.write(0, {1, 2, 3});
  e.write(16, {4});
  (void)e.read(0, 3);  // only the counter matters here
  EXPECT_EQ(e.total_writes(), 2u);
  EXPECT_EQ(e.total_reads(), 1u);
  EXPECT_EQ(e.bytes_written(), 4u);
}

TEST(Eeprom, ChargesTheEnergyMeter) {
  energy::EnergyMeter meter;
  Eeprom e(256, &meter);
  e.write(0, std::vector<std::uint8_t>(22, 7));  // 2 lines
  (void)e.read(0, 22);                           // 2 lines
  EXPECT_EQ(meter.eeprom_writes(), 1u);
  EXPECT_EQ(meter.eeprom_reads(), 1u);
  EXPECT_DOUBLE_EQ(meter.total_nah(0), 2 * 83.333 + 2 * 1.111);
}

TEST(Eeprom, WriteOnceTrackingFlagsDoubleWrites) {
  Eeprom e(128);
  e.set_track_write_once(true);
  EXPECT_TRUE(e.write(0, {1, 2, 3, 4}));
  EXPECT_EQ(e.double_writes(), 0u);
  EXPECT_TRUE(e.write(4, {5, 6}));  // disjoint: fine
  EXPECT_EQ(e.double_writes(), 0u);
  EXPECT_TRUE(e.write(2, {9}));  // overlaps byte 2
  EXPECT_EQ(e.double_writes(), 1u);
}

TEST(Eeprom, EraseResetsContentAndWriteMarks) {
  Eeprom e(64);
  e.set_track_write_once(true);
  e.write(0, {1, 2, 3});
  e.erase();
  EXPECT_EQ(e.read(0, 3), (std::vector<std::uint8_t>{0, 0, 0}));
  e.write(0, {7});  // not a double write after erase
  EXPECT_EQ(e.double_writes(), 0u);
}

TEST(Eeprom, DefaultCapacityIsMicaFlash) {
  Eeprom e;
  EXPECT_EQ(e.capacity(), 512u * 1024u);
}

}  // namespace
}  // namespace mnp::storage

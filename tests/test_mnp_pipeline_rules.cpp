// Unit tests for the five pipelining rules of paper section 3.1.2, driven
// through a scripted puppet peer (same pattern as test_mnp_unit.cpp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mnp/mnp_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"

namespace mnp::core {
namespace {

using net::Packet;
using net::PacketType;

class PuppetApp final : public node::Application {
 public:
  void start(node::Node& node) override {
    node_ = &node;
    node_->radio_on();
  }
  void on_packet(const Packet& pkt) override { received.push_back(pkt); }
  bool has_complete_image() const override { return true; }
  void send(Packet pkt) { node_->send(std::move(pkt)); }

  std::vector<Packet> received;
  std::vector<const Packet*> of_type(PacketType t) const {
    std::vector<const Packet*> out;
    for (const auto& p : received) {
      if (p.type() == t) out.push_back(&p);
    }
    return out;
  }

 private:
  node::Node* node_ = nullptr;
};

MnpConfig fast_config() {
  MnpConfig c;
  c.packets_per_segment = 8;
  c.payload_bytes = 4;
  c.adv_rounds_before_decision = 3;
  c.adv_interval_min = sim::msec(40);
  c.adv_interval_max = sim::msec(80);
  c.request_delay_max = sim::msec(20);
  c.per_packet_time_estimate = sim::msec(25);
  c.download_idle_timeout = sim::msec(800);
  return c;
}

/// Node 0: puppet. Node 1: MnpNode under test, pre-loaded with `rvd` of
/// `total` segments by walking it through puppet-fed downloads.
class PipelineRuleTest : public ::testing::Test {
 protected:
  void build(std::uint16_t total_segments, std::uint16_t preload_segments) {
    cfg_ = fast_config();
    sim_ = std::make_unique<sim::Simulator>(9);
    net::Topology topo;
    topo.add({0.0, 0.0});
    topo.add({10.0, 0.0});
    network_ = std::make_unique<node::Network>(
        *sim_, std::move(topo), [](const net::Topology& t) {
          return std::make_unique<net::DiskLinkModel>(t, 100.0);
        });
    image_ = std::make_shared<const ProgramImage>(
        1, static_cast<std::size_t>(total_segments) * cfg_.packets_per_segment *
               cfg_.payload_bytes,
        cfg_.packets_per_segment, cfg_.payload_bytes);
    auto puppet = std::make_unique<PuppetApp>();
    puppet_ = puppet.get();
    network_->node(0).set_application(std::move(puppet));
    auto mnp = std::make_unique<MnpNode>(cfg_);
    mnp_ = mnp.get();
    network_->node(1).set_application(std::move(mnp));
    network_->node(0).boot();
    network_->node(1).boot();
    for (std::uint16_t seg = 1; seg <= preload_segments; ++seg) {
      deliver_segment(seg);
    }
    ASSERT_EQ(mnp_->received_segments(), preload_segments);
  }

  void run_for(sim::Time span) { sim_->run_until(sim_->now() + span); }

  void puppet_sends_adv(std::uint16_t seg, std::uint8_t req_ctr) {
    Packet pkt;
    net::AdvertisementMsg adv;
    adv.program_id = image_->id();
    adv.program_bytes = static_cast<std::uint32_t>(image_->total_bytes());
    adv.program_segments = image_->num_segments();
    adv.seg_id = seg;
    adv.req_ctr = req_ctr;
    pkt.payload = adv;
    puppet_->send(std::move(pkt));
  }

  void puppet_sends_request(std::uint16_t seg, net::NodeId dest,
                            std::uint8_t echo) {
    Packet pkt;
    net::DownloadRequestMsg req;
    req.dest = dest;
    req.program_id = image_->id();
    req.seg_id = seg;
    req.req_ctr_echo = echo;
    req.request_all = true;
    pkt.payload = req;
    puppet_->send(std::move(pkt));
  }

  void deliver_segment(std::uint16_t seg) {
    puppet_sends_adv(seg, 0);
    run_for(sim::msec(200));
    Packet start;
    start.payload =
        net::StartDownloadMsg{image_->id(), seg, cfg_.packets_per_segment};
    puppet_->send(std::move(start));
    run_for(sim::msec(100));
    for (std::uint16_t p = 0; p < image_->packets_in_segment(seg); ++p) {
      Packet pkt;
      net::DataMsg d;
      d.program_id = image_->id();
      d.seg_id = seg;
      d.pkt_id = p;
      d.payload = image_->packet_payload(seg, p);
      pkt.payload = std::move(d);
      puppet_->send(std::move(pkt));
      run_for(sim::msec(50));
    }
    run_for(sim::msec(100));
  }

  MnpConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<node::Network> network_;
  std::shared_ptr<const ProgramImage> image_;
  PuppetApp* puppet_ = nullptr;
  MnpNode* mnp_ = nullptr;
};

// Rule 1/2: advertisements carry the segment id; a requester always asks
// for the segment after its highest complete one, regardless of what was
// advertised.
TEST_F(PipelineRuleTest, RequesterAsksForItsExpectedSegment) {
  build(/*total=*/4, /*preload=*/2);
  puppet_->received.clear();
  puppet_sends_adv(/*seg=*/4, /*req_ctr=*/0);  // advertises far ahead
  run_for(sim::msec(300));
  const auto reqs = puppet_->of_type(PacketType::kDownloadRequest);
  ASSERT_FALSE(reqs.empty());
  EXPECT_EQ(reqs.back()->as<net::DownloadRequestMsg>()->seg_id, 3);
}

// Rule 3: a download request for an older segment pulls the advertiser
// down to that segment, even when the request is destined to someone else.
TEST_F(PipelineRuleTest, RequestForOlderSegmentPullsAdvertiserDown) {
  build(/*total=*/4, /*preload=*/3);
  ASSERT_EQ(mnp_->state(), MnpNode::State::kAdvertise);
  ASSERT_EQ(mnp_->advertised_segment(), 3);  // offers its newest
  puppet_sends_request(/*seg=*/1, /*dest=*/42, /*echo=*/0);  // someone else's
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->advertised_segment(), 1);
}

// Rule 4: a source advertising segment x yields to a source advertising
// y < x that already has enough requesters.
TEST_F(PipelineRuleTest, LowerSegmentWithRequestersTakesPriority) {
  build(/*total=*/4, /*preload=*/3);
  ASSERT_EQ(mnp_->state(), MnpNode::State::kAdvertise);
  puppet_sends_adv(/*seg=*/1, /*req_ctr=*/2);  // meets the threshold (2)
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kSleep);
}

TEST_F(PipelineRuleTest, LowerSegmentWithoutRequestersDoesNot) {
  build(/*total=*/4, /*preload=*/3);
  puppet_sends_adv(/*seg=*/1, /*req_ctr=*/0);  // below the threshold... but
  // careful: req_ctr 0 also skips the plain competition rule.
  run_for(sim::msec(100));
  EXPECT_EQ(mnp_->state(), MnpNode::State::kAdvertise);
}

// Rule 5: with no interest in the advertised segment, the source moves on
// to offering its next one after K quiet advertisements.
TEST_F(PipelineRuleTest, QuietAdvertiserClimbsToNextSegment) {
  build(/*total=*/4, /*preload=*/3);
  puppet_sends_request(/*seg=*/1, /*dest=*/1, /*echo=*/0);
  run_for(sim::msec(50));
  // It got pulled to 1 and got one requester... let the forward for the
  // puppet play out, then starve it of requests.
  run_for(sim::sec(4));
  // Eventually (K quiet advs per step) it climbs back toward its newest
  // segment.
  for (int i = 0; i < 40 && mnp_->advertised_segment() < 3; ++i) {
    run_for(sim::sec(1));
  }
  EXPECT_EQ(mnp_->advertised_segment(), 3);
}

// Sequential-receive invariant: data for a segment beyond expected_seg is
// never stored, even from a plausible-looking stream.
TEST_F(PipelineRuleTest, FutureSegmentsAreNotStored) {
  build(/*total=*/4, /*preload=*/1);
  network_->node(1).eeprom().set_track_write_once(true);
  const auto writes_before = network_->node(1).eeprom().total_writes();
  Packet pkt;
  net::DataMsg d;
  d.program_id = image_->id();
  d.seg_id = 4;  // far in the future (expected is 2)
  d.pkt_id = 0;
  d.payload = image_->packet_payload(4, 0);
  pkt.payload = std::move(d);
  puppet_->send(std::move(pkt));
  run_for(sim::msec(200));
  EXPECT_EQ(network_->node(1).eeprom().total_writes(), writes_before);
  EXPECT_EQ(mnp_->received_segments(), 1);
}

// A pipelined source is simultaneously a requester: while advertising
// segment k it still requests k+1 from sources that are ahead.
TEST_F(PipelineRuleTest, SourceKeepsRequestingItsNextSegment) {
  build(/*total=*/4, /*preload=*/2);
  ASSERT_EQ(mnp_->state(), MnpNode::State::kAdvertise);
  puppet_->received.clear();
  puppet_sends_adv(/*seg=*/3, /*req_ctr=*/0);
  run_for(sim::msec(300));
  const auto reqs = puppet_->of_type(PacketType::kDownloadRequest);
  ASSERT_FALSE(reqs.empty());
  EXPECT_EQ(reqs.back()->as<net::DownloadRequestMsg>()->seg_id, 3);
}

}  // namespace
}  // namespace mnp::core

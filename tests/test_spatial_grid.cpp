// SpatialGrid unit tests, the incremental-repair property (repairing a
// dirty row after moves must equal a from-scratch rebuild), and harness
// level bit-identity of runs with the grid path on vs. off.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/spatial_grid.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace mnp {
namespace {

net::Topology random_topology(std::size_t n, double extent,
                              std::uint64_t seed) {
  sim::Rng rng(seed);
  net::Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add({rng.uniform_real(0.0, extent), rng.uniform_real(0.0, extent)});
  }
  return topo;
}

std::vector<net::NodeId> collect_near(const net::SpatialGrid& grid, double x,
                                      double y, double radius) {
  std::vector<net::NodeId> out;
  grid.for_each_near(x, y, radius, [&](net::NodeId id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SpatialGrid, QueryCoversEveryNodeWithinRadius) {
  const net::Topology topo = random_topology(200, 300.0, 17);
  net::SpatialGrid grid;
  grid.build(topo, 25.0);
  ASSERT_TRUE(grid.valid());
  sim::Rng probes(5);
  for (int q = 0; q < 50; ++q) {
    const double qx = probes.uniform_real(-20.0, 320.0);
    const double qy = probes.uniform_real(-20.0, 320.0);
    const auto got = collect_near(grid, qx, qy, 25.0);
    for (net::NodeId id = 0; id < topo.size(); ++id) {
      const double d = net::distance({qx, qy}, topo.position(id));
      if (d <= 25.0) {
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id))
            << "node " << id << " at distance " << d << " missed";
      }
    }
  }
}

TEST(SpatialGrid, QueryNeverReportsANodeTwice) {
  const net::Topology topo = random_topology(100, 100.0, 3);
  net::SpatialGrid grid;
  grid.build(topo, 10.0);
  const auto got = collect_near(grid, 50.0, 50.0, 40.0);
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
}

TEST(SpatialGrid, MoveKeepsSnapshotAndQueriesConsistent) {
  net::Topology topo = random_topology(120, 200.0, 29);
  net::SpatialGrid grid;
  grid.build(topo, 20.0);
  sim::Rng rng(41);
  for (int step = 0; step < 200; ++step) {
    const auto id = static_cast<net::NodeId>(rng.uniform_int(0, 119));
    const net::Position to{rng.uniform_real(0.0, 200.0),
                           rng.uniform_real(0.0, 200.0)};
    topo.set_position(id, to);
    grid.move(id, to);
    EXPECT_DOUBLE_EQ(grid.x(id), to.x);
    EXPECT_DOUBLE_EQ(grid.y(id), to.y);
  }
  // After the churn every radius query still covers the true disc.
  for (int q = 0; q < 20; ++q) {
    const double qx = rng.uniform_real(0.0, 200.0);
    const double qy = rng.uniform_real(0.0, 200.0);
    const auto got = collect_near(grid, qx, qy, 20.0);
    for (net::NodeId id = 0; id < topo.size(); ++id) {
      if (net::distance({qx, qy}, topo.position(id)) <= 20.0) {
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(), id));
      }
    }
  }
}

TEST(SpatialGrid, OccupancyStatisticsTrackTheLayout) {
  const net::Topology topo = net::Topology::grid(10, 10, 10.0);
  net::SpatialGrid grid;
  grid.build(topo, 10.0);
  EXPECT_GT(grid.cell_count(), 0u);
  EXPECT_LE(grid.cell_count(), 100u);
  EXPECT_GE(grid.max_occupancy(), 1u);
  // A 10 ft cell over a 10 ft grid holds at most the 4 nodes on its corners.
  EXPECT_LE(grid.max_occupancy(), 4u);
  grid.reset();
  EXPECT_FALSE(grid.valid());
  EXPECT_EQ(grid.cell_count(), 0u);
}

// --- the incremental-repair property --------------------------------------
//
// After any sequence of moves, a channel that repaired its rows through
// the dirty-marking protocol must hold exactly the rows a freshly built
// channel computes from the current world. This is the invariant the whole
// incremental design rests on; it is checked for every source at two power
// scales after every move.
TEST(IncrementalRepair, RepairedRowsMatchFromScratchRebuild) {
  constexpr std::size_t kNodes = 60;
  net::Topology topo = random_topology(kNodes, 200.0, 31);
  net::DiskLinkModel links(topo, 20.0, 1.4);
  sim::Simulator sim(5);
  net::Channel channel(sim, topo, links, net::Channel::Params{});
  // Materialize both scales so later moves exercise repair, not first-build.
  for (net::NodeId src = 0; src < kNodes; ++src) {
    channel.neighbor_row_for_test(1.0, src);
    channel.neighbor_row_for_test(0.5, src);
  }
  const std::uint64_t builds = channel.cache_repairs();
  EXPECT_EQ(builds, 2 * kNodes);

  sim::Rng rng(77);
  for (int step = 0; step < 40; ++step) {
    const auto mover = static_cast<net::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(kNodes) - 1));
    topo.set_position(mover, {rng.uniform_real(0.0, 200.0),
                              rng.uniform_real(0.0, 200.0)});
    net::Channel fresh(sim, topo, links, net::Channel::Params{});
    for (const double scale : {1.0, 0.5}) {
      for (net::NodeId src = 0; src < kNodes; ++src) {
        EXPECT_EQ(channel.neighbor_row_for_test(scale, src),
                  fresh.neighbor_row_for_test(scale, src))
            << "step " << step << " scale " << scale << " src " << src;
      }
    }
  }
  // The repaired channel never rebuilt everything: far fewer rows were
  // touched than 40 moves x 2 scales x 60 rows would cost from scratch.
  EXPECT_GT(channel.cache_repairs(), builds);
  EXPECT_LT(channel.cache_repairs() - builds, 40ull * 2ull * kNodes);
}

// --- whole-run bit-identity: grid on vs. off ------------------------------

harness::ExperimentConfig small_run(std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(2);
  cfg.seed = seed;
  return cfg;
}

void expect_identical(const harness::RunResult& a, const harness::RunResult& b,
                      std::uint64_t seed) {
  EXPECT_EQ(a.all_completed, b.all_completed) << "seed " << seed;
  EXPECT_EQ(a.completion_time, b.completion_time) << "seed " << seed;
  EXPECT_EQ(a.transmissions, b.transmissions) << "seed " << seed;
  EXPECT_EQ(a.deliveries, b.deliveries) << "seed " << seed;
  EXPECT_EQ(a.collisions, b.collisions) << "seed " << seed;
  EXPECT_EQ(a.sender_order, b.sender_order) << "seed " << seed;
  EXPECT_EQ(a.timeline, b.timeline) << "seed " << seed;
}

TEST(GridRunEquivalence, StaticRunsAreBitIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    harness::ExperimentConfig with_grid = small_run(seed);
    harness::ExperimentConfig without = small_run(seed);
    without.channel.grid_index = false;
    expect_identical(harness::run_experiment(with_grid),
                     harness::run_experiment(without), seed);
  }
}

TEST(GridRunEquivalence, MobilityAndPartitionRunsAreBitIdentical) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    scenario::ScenarioBuilder b;
    b.move(sim::minutes(2), 5, 35.0, 5.0, sim::sec(30));
    b.move(sim::minutes(3), 10, 0.0, 25.0, sim::sec(20));
    b.partition(sim::minutes(4), sim::minutes(2), {{0, 1, 2, 3}, {12, 13, 14, 15}});
    b.degrade(sim::minutes(7), sim::minutes(1), 0.5, {5, 6});

    harness::ExperimentConfig with_grid = small_run(seed);
    with_grid.scenario = b.build("churn");
    harness::ExperimentConfig without = with_grid;
    without.channel.grid_index = false;
    expect_identical(harness::run_experiment(with_grid),
                     harness::run_experiment(without), seed);
  }
}

TEST(GridRunEquivalence, SweepIsBitIdenticalAcrossJobCounts) {
  const harness::ExperimentConfig cfg = small_run(1);
  harness::SweepOptions seq;
  seq.jobs = 1;
  seq.keep_raw = true;
  harness::SweepOptions par;
  par.jobs = 4;
  par.keep_raw = true;
  par.allow_oversubscribe = true;
  const auto a = harness::run_sweep(cfg, 3, 1, seq);
  const auto b = harness::run_sweep(cfg, 3, 1, par);
  ASSERT_EQ(a.raw.size(), 3u);
  ASSERT_EQ(b.raw.size(), 3u);
  for (std::size_t i = 0; i < a.raw.size(); ++i) {
    expect_identical(a.raw[i], b.raw[i], i + 1);
  }
}

}  // namespace
}  // namespace mnp

// Unit tests for sim::Time helpers.
#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace mnp::sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(usec(5), 5);
  EXPECT_EQ(msec(5), 5000);
  EXPECT_EQ(sec(5), 5000000);
  EXPECT_EQ(minutes(2), 120000000);
  EXPECT_EQ(hours(1), 3600000000LL);
}

TEST(Time, ToSecondsAndBack) {
  EXPECT_DOUBLE_EQ(to_seconds(sec(90)), 90.0);
  EXPECT_DOUBLE_EQ(to_ms(msec(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_minutes(minutes(3)), 3.0);
}

TEST(Time, FormatSubMinute) {
  EXPECT_EQ(format_time(msec(1500)), "1.500s");
}

TEST(Time, FormatMinutes) {
  EXPECT_EQ(format_time(sec(90)), "1m30.0s");
  EXPECT_EQ(format_time(minutes(25)), "25m00.0s");
}

TEST(Time, FormatNever) { EXPECT_EQ(format_time(kNever), "never"); }

}  // namespace
}  // namespace mnp::sim

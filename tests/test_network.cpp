// Network assembly tests: construction, boot jitter, MAC/link factories,
// completion accounting.
#include <gtest/gtest.h>

#include <memory>

#include "mnp/mnp_node.hpp"
#include "net/tdma_mac.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"

namespace mnp::node {
namespace {

std::unique_ptr<net::LinkModel> disk_links(const net::Topology& t) {
  return std::make_unique<net::DiskLinkModel>(t, 25.0);
}

TEST(Network, BuildsOneNodePerPosition) {
  sim::Simulator sim(1);
  Network network(sim, net::Topology::grid(3, 4, 10.0), disk_links);
  EXPECT_EQ(network.size(), 12u);
  for (net::NodeId id = 0; id < 12; ++id) {
    EXPECT_EQ(network.node(id).id(), id);
    EXPECT_FALSE(network.node(id).radio_is_on());  // not booted yet
  }
  EXPECT_EQ(network.stats().node_count(), 12u);
  EXPECT_EQ(network.topology().grid_cols(), 4u);
}

TEST(Network, BootAllJittersWithinBound) {
  sim::Simulator sim(2);
  Network network(sim, net::Topology::grid(2, 2, 10.0), disk_links);
  core::MnpConfig cfg;
  for (net::NodeId id = 0; id < 4; ++id) {
    network.node(id).set_application(std::make_unique<core::MnpNode>(cfg));
  }
  network.boot_all(sim::msec(200));
  // Before the jitter window nothing is on; after it everything is.
  std::size_t on_before = 0;
  sim.run_until(0);
  for (net::NodeId id = 0; id < 4; ++id) {
    if (network.node(id).radio_is_on()) ++on_before;
  }
  sim.run_until(sim::msec(200));
  for (net::NodeId id = 0; id < 4; ++id) {
    EXPECT_TRUE(network.node(id).radio_is_on()) << "node " << id;
  }
  EXPECT_LE(on_before, 4u);
}

TEST(Network, BootIsDeterministicPerSeed) {
  auto first_boot_time = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    Network network(sim, net::Topology::grid(2, 2, 10.0), disk_links);
    core::MnpConfig cfg;
    for (net::NodeId id = 0; id < 4; ++id) {
      network.node(id).set_application(std::make_unique<core::MnpNode>(cfg));
    }
    network.boot_all(sim::msec(400));
    while (!network.node(0).radio_is_on() && sim.now() < sim::sec(1)) {
      sim.run_until(sim.now() + sim::msec(1));
    }
    return sim.now();
  };
  EXPECT_EQ(first_boot_time(5), first_boot_time(5));
}

TEST(Network, CompleteImageCountTracksApplications) {
  sim::Simulator sim(3);
  Network network(sim, net::Topology::grid(1, 2, 10.0), disk_links);
  core::MnpConfig cfg;
  auto image = std::make_shared<const core::ProgramImage>(
      1, cfg.packets_per_segment * cfg.payload_bytes);
  network.node(0).set_application(std::make_unique<core::MnpNode>(cfg, image));
  network.node(1).set_application(std::make_unique<core::MnpNode>(cfg));
  EXPECT_EQ(network.complete_image_count(), 0u);  // nothing booted yet
  network.node(0).boot();
  EXPECT_EQ(network.complete_image_count(), 1u);  // base holds it innately
  network.node(1).boot();
  sim.run_until_condition(sim::hours(1),
                          [&] { return network.stats().all_completed(); });
  EXPECT_EQ(network.complete_image_count(), 2u);
}

TEST(Network, MacFactoryInstallsCustomMac) {
  sim::Simulator sim(4);
  int factory_calls = 0;
  Network network(
      sim, net::Topology::grid(2, 2, 10.0), disk_links, {}, {},
      [&factory_calls](net::NodeId id, net::Radio& radio,
                       sim::Simulator& s) -> std::unique_ptr<net::Mac> {
        ++factory_calls;
        net::TdmaMac::Params p;
        p.frame_slots = 4;
        p.my_slot = id % 4;
        return std::make_unique<net::TdmaMac>(radio, s.scheduler(), p);
      });
  EXPECT_EQ(factory_calls, 4);
  // The installed MAC is actually used: a TDMA-slotted send works.
  network.node(0).boot();
  network.node(1).boot();
  int received = 0;
  network.node(1).radio().set_receive_handler(
      [&](const net::Packet&) { ++received; });
  net::Packet pkt;
  pkt.payload = net::AdvertisementMsg{};
  EXPECT_TRUE(network.node(0).send(std::move(pkt)));
  sim.run_until(sim::sec(2));
  EXPECT_EQ(received, 1);
}

TEST(Network, NullMacFactoryDefaultsToCsma) {
  sim::Simulator sim(5);
  Network network(sim, net::Topology::grid(1, 2, 10.0), disk_links);
  network.node(0).boot();
  network.node(1).boot();
  int received = 0;
  network.node(1).radio().set_receive_handler(
      [&](const net::Packet&) { ++received; });
  net::Packet pkt;
  pkt.payload = net::AdvertisementMsg{};
  EXPECT_TRUE(network.node(0).send(std::move(pkt)));
  sim.run_until(sim::sec(1));
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace mnp::node

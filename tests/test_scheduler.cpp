// Unit tests for the discrete event scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"

namespace mnp::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(msec(30), [&] { order.push_back(3); });
  s.schedule_at(msec(10), [&] { order.push_back(1); });
  s.schedule_at(msec(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), msec(30));
}

TEST(Scheduler, SameTimeEventsRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(msec(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  Time fired = -1;
  s.schedule_at(msec(10), [&] {
    s.schedule_after(msec(5), [&] { fired = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(fired, msec(15));
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  Time fired = -1;
  s.schedule_at(msec(10), [&] {
    s.schedule_at(msec(1), [&] { fired = s.now(); });  // in the past
  });
  s.run_all();
  EXPECT_EQ(fired, msec(10));
}

TEST(Scheduler, NegativeDelayClampsToZero) {
  Scheduler s;
  bool fired = false;
  s.schedule_after(-100, [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), 0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventHandle h = s.schedule_at(msec(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFire) {
  Scheduler s;
  EventHandle h = s.schedule_at(msec(1), [] {});
  s.run_all();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
  h.cancel();
  EventHandle empty;
  empty.cancel();  // default handle: also safe
  EXPECT_FALSE(empty.pending());
}

TEST(Scheduler, CancelledHeadDoesNotConsumeLaterEvents) {
  // Regression: a cancelled tombstone at the queue head must not cause a
  // live event beyond the run_until horizon to be consumed.
  Scheduler s;
  bool late_fired = false;
  EventHandle early = s.schedule_at(msec(1), [] {});
  s.schedule_at(msec(100), [&] { late_fired = true; });
  early.cancel();
  s.run_until(msec(10));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(s.executed_events(), 0u);
  s.run_until(msec(100));
  EXPECT_TRUE(late_fired);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(msec(i * 10), [&] { ++count; });
  }
  EXPECT_EQ(s.run_until(msec(50)), 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.run_until(msec(1000)), 5u);
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, ClockParksAtTheHorizon) {
  // Regression: run_until(t) must leave the clock at t even when no event
  // fell inside the window, so relative windows (run_until(now + dt))
  // always make progress across event gaps.
  Scheduler s;
  s.run_until(msec(100));
  EXPECT_EQ(s.now(), msec(100));  // empty window still advances the clock
  bool fired = false;
  s.schedule_at(msec(500), [&] { fired = true; });
  for (int i = 0; i < 5; ++i) s.run_until(s.now() + msec(100));
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), msec(600));
}

TEST(Scheduler, RunAllDoesNotJumpToInfinity) {
  Scheduler s;
  s.schedule_at(msec(7), [] {});
  s.run_all();
  EXPECT_EQ(s.now(), msec(7));  // clock rests at the last event
  // Scheduling afterwards still works at sane times.
  bool fired = false;
  s.schedule_after(msec(1), [&] { fired = true; });
  s.run_until(msec(10));
  EXPECT_TRUE(fired);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(msec(1), [&] { ++count; });
  s.schedule_at(msec(2), [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(msec(1), recurse);
  };
  s.schedule_after(msec(1), recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), msec(5));
}

TEST(Scheduler, NextEventTimeSkipsTombstones) {
  Scheduler s;
  EventHandle a = s.schedule_at(msec(5), [] {});
  s.schedule_at(msec(9), [] {});
  EXPECT_EQ(s.next_event_time(), msec(5));
  a.cancel();
  EXPECT_EQ(s.next_event_time(), msec(9));
}

TEST(Scheduler, EmptyAfterDrain) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  EventHandle h = s.schedule_at(msec(5), [] {});
  EXPECT_FALSE(s.empty());
  h.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, PostFiresWithoutHandle) {
  Scheduler s;
  std::vector<int> order;
  s.post_at(msec(20), [&] { order.push_back(2); });
  s.post_after(msec(10), [&] { order.push_back(1); });
  s.schedule_at(msec(30), [&] { order.push_back(3); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, CancelUpdatesPendingAccountingImmediately) {
  // Regression: pending_events() used to keep counting cancelled-but-
  // unswept tombstones.
  Scheduler s;
  EventHandle a = s.schedule_at(msec(1), [] {});
  EventHandle b = s.schedule_at(msec(2), [] {});
  s.schedule_at(msec(3), [] {});
  EXPECT_EQ(s.pending_events(), 3u);
  b.cancel();
  EXPECT_EQ(s.pending_events(), 2u);
  EXPECT_EQ(s.tombstone_events(), 1u);
  a.cancel();
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_all();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.tombstone_events(), 0u);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Scheduler, CancelHeavyChurnCompactsTheQueue) {
  Scheduler s;
  std::vector<EventHandle> handles;
  const std::size_t n = 10000;
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    handles.push_back(
        s.schedule_at(static_cast<Time>(i + 1), [] { FAIL(); }));
  }
  for (auto& h : handles) h.cancel();
  EXPECT_EQ(s.pending_events(), 0u);
  // Lazy deletion must not retain all n tombstones: compaction keeps the
  // queue within 2x the live set.
  EXPECT_LT(s.tombstone_events(), n / 2 + 65);
  EXPECT_TRUE(s.empty());
  // The slot pool is recycled: fresh scheduling still works afterwards.
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    s.schedule_after(msec(i), [&] { ++fired; });
  }
  s.run_all();
  EXPECT_EQ(fired, 100);
}

TEST(Scheduler, StaleHandleDoesNotCancelSlotReuse) {
  Scheduler s;
  EventHandle old = s.schedule_at(msec(1), [] {});
  s.run_all();
  // The next event may recycle old's cancellation slot; the stale handle
  // must stay inert.
  bool fired = false;
  EventHandle fresh = s.schedule_at(msec(10), [&] { fired = true; });
  old.cancel();
  EXPECT_FALSE(old.pending());
  EXPECT_TRUE(fresh.pending());
  s.run_all();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilConditionStopsEarly) {
  Simulator sim(1);
  int count = 0;
  for (int i = 1; i <= 100; ++i) {
    sim.scheduler().schedule_at(msec(i), [&] { ++count; });
  }
  const bool met =
      sim.run_until_condition(sec(10), [&] { return count >= 7; });
  EXPECT_TRUE(met);
  EXPECT_EQ(count, 7);
  EXPECT_EQ(sim.now(), msec(7));
}

TEST(Simulator, RunUntilConditionHonoursDeadline) {
  Simulator sim(1);
  int count = 0;
  for (int i = 1; i <= 100; ++i) {
    sim.scheduler().schedule_at(sec(i), [&] { ++count; });
  }
  const bool met = sim.run_until_condition(sec(10), [&] { return count >= 50; });
  EXPECT_FALSE(met);
  EXPECT_LE(count, 10);
}

TEST(Simulator, RunUntilConditionExhaustsEvents) {
  Simulator sim(1);
  sim.scheduler().schedule_at(msec(1), [] {});
  const bool met = sim.run_until_condition(sec(10), [] { return false; });
  EXPECT_FALSE(met);
}

}  // namespace
}  // namespace mnp::sim

// SS-TDMA MAC tests: slot arithmetic, collision-freedom by construction,
// and MNP running end-to-end over TDMA.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "harness/experiment.hpp"
#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/tdma_mac.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {
namespace {

TEST(TdmaSlots, TileCoversInterferenceReach) {
  // 10 ft spacing, 25 ft range, 1.6x interference: a shared listener is
  // impossible only when same-slot transmitters sit strictly farther
  // apart than twice the 40 ft interference reach.
  const std::uint32_t m = TdmaMac::tile_for_grid(10.0, 25.0, 1.6);
  EXPECT_GT(m * 10.0, 2 * 25.0 * 1.6);
}

TEST(TdmaSlots, TileDegenerateInputs) {
  EXPECT_GE(TdmaMac::tile_for_grid(0.0, 25.0, 1.6), 2u);
  EXPECT_GE(TdmaMac::tile_for_grid(1000.0, 1.0, 1.0), 2u);
}

TEST(TdmaSlots, SlotAssignmentTilesTheGrid) {
  const std::uint32_t m = 3;
  // Within any m x m tile all slots are distinct.
  std::set<std::uint32_t> slots;
  for (std::size_t row = 0; row < m; ++row) {
    for (std::size_t col = 0; col < m; ++col) {
      slots.insert(TdmaMac::slot_for(row, col, m));
    }
  }
  EXPECT_EQ(slots.size(), static_cast<std::size_t>(m) * m);
  // Same-slot nodes repeat with period m on both axes.
  EXPECT_EQ(TdmaMac::slot_for(1, 2, m), TdmaMac::slot_for(1 + m, 2 + m, m));
  EXPECT_NE(TdmaMac::slot_for(1, 2, m), TdmaMac::slot_for(1, 3, m));
}

TEST(TdmaMacTest, TransmitsOnlyInOwnSlot) {
  sim::Simulator sim(1);
  Topology topo;
  topo.add({0.0, 0.0});
  topo.add({10.0, 0.0});
  DiskLinkModel links(topo, 15.0);
  Channel channel(sim, topo, links);
  energy::EnergyMeter m0, m1;
  Radio r0(0, sim.scheduler(), channel, m0);
  Radio r1(1, sim.scheduler(), channel, m1);
  channel.register_radio(r0);
  channel.register_radio(r1);
  int received = 0;
  sim::Time first_rx = -1;
  r1.set_receive_handler([&](const Packet&) {
    ++received;
    if (first_rx < 0) first_rx = sim.now();
  });
  r0.turn_on();
  r1.turn_on();

  TdmaMac::Params params;
  params.slot_duration = sim::msec(50);
  params.frame_slots = 4;
  params.my_slot = 2;  // our slot starts at 100 ms into each frame
  TdmaMac mac(r0, sim.scheduler(), params);
  Packet pkt;
  pkt.payload = AdvertisementMsg{};
  EXPECT_TRUE(mac.send(pkt));
  sim.run_until(sim::sec(2));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(mac.packets_sent(), 1u);
  // Transmission started exactly at a slot-2 boundary of some frame.
  const sim::Time airtime = channel.airtime(pkt);
  const sim::Time start = first_rx - airtime;
  EXPECT_EQ(start % (params.slot_duration * params.frame_slots),
            2 * params.slot_duration);
}

TEST(TdmaMacTest, QueueDrainsAcrossFrames) {
  sim::Simulator sim(2);
  Topology topo;
  topo.add({0.0, 0.0});
  topo.add({10.0, 0.0});
  DiskLinkModel links(topo, 15.0);
  Channel channel(sim, topo, links);
  energy::EnergyMeter m0, m1;
  Radio r0(0, sim.scheduler(), channel, m0);
  Radio r1(1, sim.scheduler(), channel, m1);
  channel.register_radio(r0);
  channel.register_radio(r1);
  int received = 0;
  r1.set_receive_handler([&](const Packet&) { ++received; });
  r0.turn_on();
  r1.turn_on();
  TdmaMac::Params params;
  params.slot_duration = sim::msec(30);
  params.frame_slots = 9;
  params.my_slot = 4;
  TdmaMac mac(r0, sim.scheduler(), params);
  for (int i = 0; i < 6; ++i) {
    Packet pkt;
    pkt.payload = AdvertisementMsg{};
    EXPECT_TRUE(mac.send(pkt));
  }
  sim.run_until(sim::sec(5));
  EXPECT_EQ(received, 6);
  EXPECT_TRUE(mac.idle());
}

TEST(TdmaMacTest, RadioOffDropsQueuedTraffic) {
  sim::Simulator sim(3);
  Topology topo;
  topo.add({0.0, 0.0});
  DiskLinkModel links(topo, 15.0);
  Channel channel(sim, topo, links);
  energy::EnergyMeter m0;
  Radio r0(0, sim.scheduler(), channel, m0);
  channel.register_radio(r0);
  r0.turn_on();
  TdmaMac::Params params;
  params.slot_duration = sim::msec(30);
  params.frame_slots = 4;
  TdmaMac mac(r0, sim.scheduler(), params);
  Packet pkt;
  pkt.payload = AdvertisementMsg{};
  EXPECT_TRUE(mac.send(pkt));
  r0.turn_off();
  sim.run_until(sim::sec(1));
  EXPECT_EQ(mac.packets_sent(), 0u);
  EXPECT_TRUE(mac.idle());
  // Sending while off is refused outright.
  EXPECT_FALSE(mac.send(pkt));
  EXPECT_GE(mac.packets_dropped(), 1u);
}

TEST(TdmaIntegration, MnpOverTdmaCompletesCollisionFree) {
  harness::ExperimentConfig cfg;
  cfg.mac = harness::MacType::kTdma;
  cfg.rows = 5;
  cfg.cols = 5;
  cfg.range_ft = 25.0;
  cfg.empirical_links = false;  // isolate the MAC property
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(4);
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
  EXPECT_EQ(r.verified_count(), r.nodes.size());
  // The tiling guarantees no two same-slot transmitters share a listener.
  EXPECT_EQ(r.collisions, 0u);
}

TEST(TdmaIntegration, LossyLinksStillCompleteOverTdma) {
  harness::ExperimentConfig cfg;
  cfg.mac = harness::MacType::kTdma;
  cfg.rows = 4;
  cfg.cols = 4;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(2);
  cfg.max_sim_time = sim::hours(4);
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed) << r.completed_count << "/" << r.nodes.size();
}

}  // namespace
}  // namespace mnp::net

// Experiment harness and report tests.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hpp"
#include "harness/report.hpp"

namespace mnp {
namespace {

harness::ExperimentConfig tiny() {
  harness::ExperimentConfig cfg;
  cfg.rows = 3;
  cfg.cols = 3;
  cfg.range_ft = 25.0;
  cfg.set_program_segments(1);
  cfg.max_sim_time = sim::hours(1);
  return cfg;
}

TEST(Harness, ProtocolNames) {
  EXPECT_STREQ(harness::protocol_name(harness::Protocol::kMnp), "MNP");
  EXPECT_STREQ(harness::protocol_name(harness::Protocol::kDeluge), "Deluge");
  EXPECT_STREQ(harness::protocol_name(harness::Protocol::kMoap), "MOAP");
  EXPECT_STREQ(harness::protocol_name(harness::Protocol::kXnp), "XNP");
}

TEST(Harness, SetProgramSegmentsSizesImage) {
  harness::ExperimentConfig cfg;
  cfg.set_program_segments(5);
  EXPECT_EQ(cfg.program_bytes, 5u * 128 * 22);
}

TEST(Harness, ResultShapesMatchConfig) {
  auto cfg = tiny();
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.rows, 3u);
  EXPECT_EQ(r.cols, 3u);
  EXPECT_EQ(r.nodes.size(), 9u);
  ASSERT_TRUE(r.all_completed);
  EXPECT_EQ(r.completion_time, r.measured_at);
  EXPECT_GT(r.transmissions, 0u);
  EXPECT_GT(r.deliveries, 0u);
}

TEST(Harness, AggregatesAreConsistent) {
  const auto r = harness::run_experiment(tiny());
  ASSERT_TRUE(r.all_completed);
  double art = 0;
  for (const auto& n : r.nodes) art += sim::to_seconds(n.active_radio);
  EXPECT_NEAR(r.avg_active_radio_s(), art / 9.0, 1e-9);
  EXPECT_GE(r.avg_active_radio_s(), r.avg_active_radio_after_adv_s());
  EXPECT_GT(r.total_energy_nah(), 0.0);
  EXPECT_EQ(r.verified_count(), 9u);
}

TEST(Harness, TimelineCoversTheRun) {
  const auto r = harness::run_experiment(tiny());
  ASSERT_FALSE(r.timeline.empty());
  std::uint64_t timeline_total = 0;
  for (const auto& [minute, counts] : r.timeline) {
    timeline_total += counts[0] + counts[1] + counts[2] + counts[3];
  }
  EXPECT_EQ(timeline_total, r.transmissions);
}

TEST(Harness, SenderOrderStartsAtBase) {
  const auto r = harness::run_experiment(tiny());
  ASSERT_FALSE(r.sender_order.empty());
  EXPECT_EQ(r.sender_order.front(), 0);  // base forwards first
}

TEST(Harness, BatteryLevelsAreApplied) {
  auto cfg = tiny();
  cfg.mnp.battery_aware = true;
  cfg.battery_levels.assign(9, 1.0);
  cfg.battery_levels[4] = 0.3;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.all_completed);
}

TEST(Report, RenderersProduceOutput) {
  const auto r = harness::run_experiment(tiny());
  std::ostringstream os;
  harness::print_summary(os, "t", r);
  harness::print_parent_map(os, r, 0);
  harness::print_sender_order(os, r);
  harness::print_active_radio(os, r);
  harness::print_tx_rx_distribution(os, r);
  harness::print_timeline(os, r);
  harness::print_propagation_snapshots(os, r, {0.3, 0.6, 0.9});
  const std::string out = os.str();
  EXPECT_NE(out.find("completion time"), std::string::npos);
  EXPECT_NE(out.find("parent map"), std::string::npos);
  EXPECT_NE(out.find("sender order"), std::string::npos);
  EXPECT_NE(out.find("active radio time"), std::string::npos);
  EXPECT_NE(out.find("minute"), std::string::npos);
  EXPECT_NE(out.find("30% of time"), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);  // base marker on the map
}

TEST(Report, SummaryHandlesIncompleteRuns) {
  auto cfg = tiny();
  cfg.protocol = harness::Protocol::kXnp;
  cfg.rows = 1;
  cfg.cols = 6;
  cfg.range_ft = 15.0;
  cfg.empirical_links = false;
  cfg.max_sim_time = sim::minutes(20);
  const auto r = harness::run_experiment(cfg);
  ASSERT_FALSE(r.all_completed);
  std::ostringstream os;
  harness::print_summary(os, "incomplete", r);
  EXPECT_NE(os.str().find("never"), std::string::npos);
}

}  // namespace
}  // namespace mnp

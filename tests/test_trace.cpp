// Event log tests: recording, bounds, queries, rendering, and integration
// with a live MNP dissemination.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "mnp/mnp_node.hpp"
#include "node/network.hpp"
#include "sim/simulator.hpp"
#include "trace/event_log.hpp"

namespace mnp::trace {
namespace {

TEST(EventLog, RecordsInOrder) {
  EventLog log;
  log.record(sim::sec(1), 3, EventKind::kRadioOn);
  log.record(sim::sec(2), 3, EventKind::kStateChange, "Idle->Download");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.total_recorded(), 2u);
  const auto events = log.for_node(3);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kRadioOn);
  EXPECT_EQ(events[1].detail, "Idle->Download");
}

TEST(EventLog, CapacityEvictsOldest) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.record(sim::sec(i), 0, EventKind::kNote, std::to_string(i));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto events = log.for_node(0);
  EXPECT_EQ(events.front().detail, "6");  // 0..5 evicted
  EXPECT_EQ(events.back().detail, "9");
}

TEST(EventLog, WrapKeepsRecordingOrderAcrossTheSeam) {
  // Ring head in mid-buffer: events must still come back oldest-first.
  EventLog log(3);
  for (int i = 0; i < 7; ++i) {  // head ends up at slot 1 of 3
    log.record(sim::sec(i), 0, EventKind::kNote, std::to_string(i));
  }
  const auto events = log.for_node(0);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].detail, "4");
  EXPECT_EQ(events[1].detail, "5");
  EXPECT_EQ(events[2].detail, "6");
  EXPECT_EQ(log.dropped(), 4u);
}

TEST(EventLog, LongDetailIsTruncatedNotDropped) {
  EventLog log;
  const std::string lorem(100, 'x');
  log.record(0, 0, EventKind::kNote, lorem);
  const auto events = log.for_node(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, std::string(EventLog::kInlineDetail, 'x'));
}

TEST(EventLog, NumericDetailFormatsInline) {
  EventLog log;
  log.record(0, 0, EventKind::kSegmentCompleted, std::uint64_t{42});
  log.record(0, 0, EventKind::kSegmentCompleted,
             std::numeric_limits<std::uint64_t>::max());
  const auto events = log.for_node(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].detail, "42");
  EXPECT_EQ(events[1].detail, "18446744073709551615");
}

TEST(EventLog, ZeroCapacityDiscardsEverything) {
  EventLog log(0);
  log.record(0, 0, EventKind::kNote);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 1u);
}

TEST(EventLog, QueriesFilter) {
  EventLog log;
  log.record(0, 1, EventKind::kPacketSent, "Data");
  log.record(0, 2, EventKind::kPacketSent, "Advertisement");
  log.record(0, 1, EventKind::kImageCompleted);
  EXPECT_EQ(log.for_node(1).size(), 2u);
  EXPECT_EQ(log.of_kind(EventKind::kPacketSent).size(), 2u);
  const auto counts = log.counts_by_kind();
  EXPECT_EQ(counts.at(EventKind::kPacketSent), 2u);
  EXPECT_EQ(counts.at(EventKind::kImageCompleted), 1u);
}

TEST(EventLog, RenderFormatsLines) {
  EventLog log;
  log.record(sim::sec(90), 7, EventKind::kStateChange, "Advertise->Forward");
  const std::string out = log.render();
  EXPECT_NE(out.find("1m30.0s"), std::string::npos);
  EXPECT_NE(out.find("node 7"), std::string::npos);
  EXPECT_NE(out.find("Advertise->Forward"), std::string::npos);
}

TEST(EventLog, RenderCapsLines) {
  EventLog log;
  for (int i = 0; i < 50; ++i) log.record(0, 0, EventKind::kNote);
  const std::string out = log.render(net::kBroadcastId, 10);
  EXPECT_NE(out.find("..."), std::string::npos);
}

TEST(EventLog, ClearResets) {
  EventLog log;
  log.record(0, 0, EventKind::kNote);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(EventLogIntegration, TracesALiveDissemination) {
  sim::Simulator sim(5);
  node::Network network(
      sim, net::Topology::grid(3, 3, 10.0), [](const net::Topology& t) {
        return std::make_unique<net::DiskLinkModel>(t, 25.0);
      });
  EventLog log;
  network.stats().set_event_log(&log);
  core::MnpConfig cfg;
  auto image = std::make_shared<const core::ProgramImage>(
      1, cfg.packets_per_segment * cfg.payload_bytes);
  for (net::NodeId id = 0; id < network.size(); ++id) {
    network.node(id).set_application(
        id == 0 ? std::make_unique<core::MnpNode>(cfg, image)
                : std::make_unique<core::MnpNode>(cfg));
  }
  network.boot_all();
  ASSERT_TRUE(sim.run_until_condition(
      sim::hours(1), [&] { return network.stats().all_completed(); }));

  // The protocol's life shows up in the log: state changes, traffic, and
  // one ImageCompleted per receiver.
  EXPECT_EQ(log.of_kind(EventKind::kImageCompleted).size(), 9u);
  EXPECT_GT(log.of_kind(EventKind::kStateChange).size(), 8u);
  EXPECT_GT(log.of_kind(EventKind::kPacketSent).size(), 100u);
  // Every receiver passed through Download at least once.
  for (net::NodeId id = 1; id < 9; ++id) {
    bool downloaded = false;
    for (const auto& e : log.for_node(id)) {
      if (e.kind == EventKind::kStateChange &&
          e.detail.find("->Download") != std::string::npos) {
        downloaded = true;
        break;
      }
    }
    EXPECT_TRUE(downloaded) << "node " << id;
  }
}

}  // namespace
}  // namespace mnp::trace

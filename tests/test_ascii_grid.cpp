// Unit tests for the ASCII grid/heatmap/parent-arrow renderers.
#include <gtest/gtest.h>

#include "util/ascii_grid.hpp"

namespace mnp::util {
namespace {

TEST(RenderGrid, PadsCellsToUniformWidth) {
  const std::string out = render_grid(2, 2, [](std::size_t r, std::size_t c) {
    return (r == 0 && c == 0) ? std::string("long") : std::string("x");
  });
  // Every cell padded to width 4 + separator.
  EXPECT_EQ(out, "long x    \nx    x    \n");
}

TEST(RenderHeatmap, MapsRangeOntoRamp) {
  const std::vector<double> v{0.0, 5.0, 10.0};
  const std::string out = render_heatmap(1, 3, v, 0.0, 10.0);
  ASSERT_EQ(out.size(), 4u);  // 3 cells + newline
  EXPECT_EQ(out[0], ' ');     // minimum
  EXPECT_EQ(out[2], '@');     // maximum
  EXPECT_NE(out[1], ' ');
  EXPECT_NE(out[1], '@');
}

TEST(RenderHeatmap, DegenerateRangeDoesNotDivideByZero) {
  const std::vector<double> v{1.0, 1.0};
  const std::string out = render_heatmap(1, 2, v, 1.0, 1.0);
  EXPECT_EQ(out.size(), 3u);
}

TEST(RenderHeatmap, MissingValuesRenderAsLow) {
  const std::string out = render_heatmap(1, 3, {9.0}, 0.0, 9.0);
  EXPECT_EQ(out[0], '@');
  EXPECT_EQ(out[1], ' ');
  EXPECT_EQ(out[2], ' ');
}

TEST(RenderParentArrows, MarksBaseAndOrphans) {
  // 2x2 grid: node 0 base, node 1 -> 0, node 2 orphan, node 3 -> 0.
  const std::vector<int> parents{-1, 0, -1, 0};
  const std::string out = render_parent_arrows(2, 2, parents, 0);
  // Row 0: B and '<' (parent to the left); row 1: '.' and '\' (up-left).
  EXPECT_EQ(out, "B < \n. \\ \n");
}

TEST(RenderParentArrows, CardinalDirections) {
  // 3x3, center node 4; neighbors point at it.
  std::vector<int> parents(9, -1);
  parents[1] = 4;  // below => v
  parents[7] = 4;  // above => ^
  parents[3] = 4;  // right => >
  parents[5] = 4;  // left  => <
  const std::string out = render_parent_arrows(3, 3, parents, 4);
  EXPECT_EQ(out, ". v . \n> B < \n. ^ . \n");
}

}  // namespace
}  // namespace mnp::util

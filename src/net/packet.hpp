// On-air packet representation.
//
// All protocols in this repository (MNP and the Deluge / MOAP / XNP
// baselines) exchange small TinyOS-style radio packets. A Packet is a
// value type: a typed payload variant plus addressing metadata. The
// payload structs mirror the fields the papers describe and each knows its
// wire size, from which the channel derives airtime at 19.2 kbps.
//
// Physical transmission is always broadcast; `dest` is the *logical*
// destination some messages carry (e.g. MNP download requests are
// "destined" to one source but deliberately overheard by everyone — that
// overhearing is how MNP fights the hidden terminal problem).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/bitmap.hpp"

namespace mnp::net {

using NodeId = std::uint16_t;
inline constexpr NodeId kBroadcastId = 0xFFFF;
inline constexpr NodeId kNoNode = 0xFFFE;

// ---------------------------------------------------------------------------
// MNP messages (paper section 3)
// ---------------------------------------------------------------------------

/// Advertisement: announces a program (+ the segment currently offered)
/// and the advertiser's requester count, which drives sender selection.
struct AdvertisementMsg {
  std::uint16_t program_id = 0;
  std::uint32_t program_bytes = 0;     // total image size in bytes
  std::uint16_t program_segments = 0;  // total size, in segments
  std::uint16_t seg_id = 0;            // segment being advertised (1-based)
  std::uint8_t req_ctr = 0;            // # distinct requesters so far
  static constexpr std::size_t kWireBytes = 2 + 4 + 2 + 2 + 1;
};

/// Download request: destined to one advertiser but broadcast so third
/// parties learn (source, ReqCtr) pairs; carries the requester's
/// MissingVector so the source can build its ForwardVector.
///
/// Large-segment variant (section 3.3): when the segment exceeds 128
/// packets the requester ships one 128-bit *window* of its EEPROM-backed
/// missing set, anchored at `window_base`; `request_all` short-circuits
/// the common everything-missing case.
struct DownloadRequestMsg {
  NodeId dest = kBroadcastId;     // the advertiser this request is for
  std::uint16_t program_id = 0;   // program the segment belongs to
  std::uint16_t seg_id = 0;       // segment the requester needs next
  std::uint8_t req_ctr_echo = 0;  // advertiser's ReqCtr, relayed verbatim
  std::uint16_t window_base = 0;  // first packet the window refers to
  bool request_all = false;       // "I have nothing of this segment"
  util::Bitmap missing;           // 128-bit missing window at window_base
  static constexpr std::size_t kWireBytes =
      2 + 2 + 2 + 1 + 2 + 1 + util::Bitmap::kMaxBytes;
};

/// StartDownload: the selected sender announces it is about to stream a
/// segment; receivers expecting this segment set the sender as parent.
struct StartDownloadMsg {
  std::uint16_t program_id = 0;
  std::uint16_t seg_id = 0;
  std::uint16_t packet_count = 0;  // packets in this segment
  static constexpr std::size_t kWireBytes = 2 + 2 + 2;
};

/// One code packet. `pkt_id` is unique within the segment (16 bits to
/// cover the basic protocol's large segments).
struct DataMsg {
  std::uint16_t program_id = 0;
  std::uint16_t seg_id = 0;
  std::uint16_t pkt_id = 0;
  std::vector<std::uint8_t> payload;
  static constexpr std::size_t kHeaderBytes = 2 + 2 + 2;
  std::size_t wire_bytes() const { return kHeaderBytes + payload.size(); }
};

/// EndDownload: sender finished streaming the requested packets.
struct EndDownloadMsg {
  std::uint16_t seg_id = 0;
  static constexpr std::size_t kWireBytes = 2;
};

/// Query: sender polls its children for residual loss (optional phase).
struct QueryMsg {
  std::uint16_t seg_id = 0;
  static constexpr std::size_t kWireBytes = 2;
};

/// Repair request: child asks its parent for one missing packet (update
/// phase requests packets one at a time, per the paper's state machine).
struct RepairRequestMsg {
  NodeId dest = kBroadcastId;  // the parent
  std::uint16_t seg_id = 0;
  std::uint16_t pkt_id = 0;
  static constexpr std::size_t kWireBytes = 2 + 2 + 2;
};

// ---------------------------------------------------------------------------
// Deluge baseline messages (Hui & Culler, SenSys'04)
// ---------------------------------------------------------------------------

/// Trickle-style summary: version + number of complete pages. Also carries
/// the object profile (total pages / bytes), which real Deluge ships in a
/// separate profile message.
struct DelugeSummaryMsg {
  std::uint16_t version = 0;
  std::uint16_t total_pages = 0;
  std::uint16_t complete_pages = 0;
  std::uint32_t program_bytes = 0;
  static constexpr std::size_t kWireBytes = 2 + 2 + 2 + 4;
};

/// Page request (NACK) with the bit vector of needed packets.
struct DelugeRequestMsg {
  NodeId dest = kBroadcastId;
  std::uint16_t page = 0;  // 1-based
  util::Bitmap missing;
  static constexpr std::size_t kWireBytes = 2 + 2 + util::Bitmap::kMaxBytes;
};

struct DelugeDataMsg {
  std::uint16_t version = 0;
  std::uint16_t page = 0;
  std::uint8_t pkt_id = 0;
  std::vector<std::uint8_t> payload;
  static constexpr std::size_t kHeaderBytes = 2 + 2 + 1;
  std::size_t wire_bytes() const { return kHeaderBytes + payload.size(); }
};

// ---------------------------------------------------------------------------
// MOAP baseline messages (Stathopoulos et al.)
// ---------------------------------------------------------------------------

struct MoapPublishMsg {
  std::uint16_t version = 0;
  std::uint16_t total_packets = 0;
  std::uint32_t program_bytes = 0;
  static constexpr std::size_t kWireBytes = 2 + 2 + 4;
};

struct MoapSubscribeMsg {
  NodeId dest = kBroadcastId;  // publisher being subscribed to
  static constexpr std::size_t kWireBytes = 2;
};

struct MoapDataMsg {
  std::uint16_t version = 0;
  std::uint16_t pkt_id = 0;  // linear index over the whole image
  std::vector<std::uint8_t> payload;
  static constexpr std::size_t kHeaderBytes = 2 + 2;
  std::size_t wire_bytes() const { return kHeaderBytes + payload.size(); }
};

/// Unicast retransmission request for one packet (sliding-window NACK).
struct MoapNackMsg {
  NodeId dest = kBroadcastId;
  std::uint16_t pkt_id = 0;
  static constexpr std::size_t kWireBytes = 2 + 2;
};

// ---------------------------------------------------------------------------
// XNP baseline messages (TinyOS single-hop reprogramming)
// ---------------------------------------------------------------------------

struct XnpDataMsg {
  std::uint16_t pkt_id = 0;
  std::uint16_t total_packets = 0;
  std::vector<std::uint8_t> payload;
  static constexpr std::size_t kHeaderBytes = 2 + 2;
  std::size_t wire_bytes() const { return kHeaderBytes + payload.size(); }
};

struct XnpQueryMsg {
  std::uint16_t total_packets = 0;
  static constexpr std::size_t kWireBytes = 2;
};

struct XnpFixRequestMsg {
  std::uint16_t pkt_id = 0;
  static constexpr std::size_t kWireBytes = 2;
};

// ---------------------------------------------------------------------------
// NCast baseline messages (rateless RLNC dissemination, DESIGN.md §13)
// ---------------------------------------------------------------------------

/// Advertisement: program geometry plus decode progress — complete
/// generations and working-generation rank. Rank, not a missing bitmap,
/// is the advertised currency: any `gen_size` independent coded packets
/// rebuild a generation, so "how many more" is all a peer needs to know.
struct NcastAdvMsg {
  std::uint16_t program_id = 0;
  std::uint32_t program_bytes = 0;
  std::uint16_t total_gens = 0;
  std::uint16_t complete_gens = 0;
  std::uint8_t gen_size = 0;  // source packets per generation (k)
  std::uint8_t cur_rank = 0;  // decoder rank of generation complete_gens+1
  static constexpr std::size_t kWireBytes = 2 + 4 + 2 + 2 + 1 + 1;
};

/// Request: "stream generation `gen`; my decoder rank is `rank`". The
/// server sizes its burst from the rank deficit — there is no per-packet
/// bookkeeping to echo back.
struct NcastReqMsg {
  NodeId dest = kBroadcastId;  // the advertiser this request is for
  std::uint16_t gen = 0;       // 1-based generation id
  std::uint8_t rank = 0;
  static constexpr std::size_t kWireBytes = 2 + 2 + 1;
};

/// One coded packet: a random linear combination of the generation's k
/// source packets. The coefficient vector is not shipped — both sides
/// expand (gen, coeff_seed) through the same deterministic generator
/// (ncast_node.hpp), so the wire overhead is 2 bytes regardless of k.
struct NcastCodedMsg {
  std::uint16_t gen = 0;
  std::uint16_t coeff_seed = 0;
  std::vector<std::uint8_t> payload;  // coded symbol, full payload length
  static constexpr std::size_t kHeaderBytes = 2 + 2;
  std::size_t wire_bytes() const { return kHeaderBytes + payload.size(); }
};

// ---------------------------------------------------------------------------

enum class PacketType : std::uint8_t {
  kAdvertisement,
  kDownloadRequest,
  kStartDownload,
  kData,
  kEndDownload,
  kQuery,
  kRepairRequest,
  kDelugeSummary,
  kDelugeRequest,
  kDelugeData,
  kMoapPublish,
  kMoapSubscribe,
  kMoapData,
  kMoapNack,
  kXnpData,
  kXnpQuery,
  kXnpFixRequest,
  kNcastAdv,
  kNcastRequest,
  kNcastCoded,
};

/// Human-readable type tag for reports.
std::string to_string(PacketType type);

/// Same tag as a static string — the allocation-free spelling the trace
/// hot path records (EventLog stores details inline).
const char* type_name(PacketType type);

/// True for bulk code-carrying packets (used by the channel's concurrent-
/// sender monitor and by message accounting).
bool is_bulk_data(PacketType type);

using Payload =
    std::variant<AdvertisementMsg, DownloadRequestMsg, StartDownloadMsg,
                 DataMsg, EndDownloadMsg, QueryMsg, RepairRequestMsg,
                 DelugeSummaryMsg, DelugeRequestMsg, DelugeDataMsg,
                 MoapPublishMsg, MoapSubscribeMsg, MoapDataMsg, MoapNackMsg,
                 XnpDataMsg, XnpQueryMsg, XnpFixRequestMsg, NcastAdvMsg,
                 NcastReqMsg, NcastCodedMsg>;

struct Packet {
  NodeId src = kNoNode;
  Payload payload;
  /// Transmit power as a fraction of the node's configured range
  /// (battery-aware extension advertises at reduced power).
  double power_scale = 1.0;

  PacketType type() const;

  /// Logical destination, kBroadcastId when the message has none.
  NodeId logical_dest() const;

  /// Bytes on air: preamble/sync + MAC header + typed payload + CRC.
  std::size_t wire_bytes() const;

  template <typename T>
  const T* as() const {
    return std::get_if<T>(&payload);
  }
};

/// MAC-layer framing overhead: 8 B preamble + 2 B sync + 5 B header
/// (dest, src, type) + 2 B CRC, mirroring the TinyOS Mica-2 stack.
inline constexpr std::size_t kFramingBytes = 8 + 2 + 5 + 2;

}  // namespace mnp::net

// CSMA MAC with random backoff — the TinyOS B-MAC-style medium access MNP
// runs over.
//
// Outgoing packets enter a FIFO queue. Before each transmission the MAC
// samples an initial backoff; when the backoff expires it senses the
// carrier. Busy => new (congestion) backoff; idle => transmit. There is no
// RTS/CTS and no ack — exactly the TinyOS broadcast MAC, which is why the
// hidden terminal problem exists for the protocols above it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/mac.hpp"
#include "net/radio.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace mnp::net {

class CsmaMac final : public Mac {
 public:
  struct Params {
    sim::Time initial_backoff_min = sim::usec(400);
    sim::Time initial_backoff_max = sim::msec(13);
    sim::Time congestion_backoff_min = sim::usec(400);
    sim::Time congestion_backoff_max = sim::msec(26);
    /// Gap inserted after a completed transmission before the next queued
    /// packet starts its backoff (models packet turnaround in TinyOS).
    sim::Time inter_packet_gap = sim::msec(4);
    std::size_t queue_capacity = 24;
    /// Give up after this many consecutive busy carrier samples (0 =
    /// retry forever, which matches TinyOS's behaviour for broadcast).
    std::size_t max_congestion_retries = 0;
  };

  CsmaMac(Radio& radio, sim::Scheduler& scheduler, sim::Rng rng,
          Params params);
  /// Default-parameter convenience overload.
  CsmaMac(Radio& radio, sim::Scheduler& scheduler, sim::Rng rng);

  /// Enqueues a shared frame for transmission. Returns false (packet
  /// dropped) when the queue is full or the radio is off.
  bool send(FramePtr frame) override;
  bool send(Packet pkt) override;

  /// Drops all queued packets and cancels any pending backoff. Called when
  /// a protocol leaves a state whose queued traffic is now meaningless
  /// (e.g. MNP going to sleep).
  void flush() override;

  /// Registers mac.* counters (per-node, keyed by this MAC's radio id) and
  /// mirrors the statistics below into `registry` from now on.
  void attach_metrics(obs::MetricsRegistry& registry) override;

  std::size_t queue_depth() const override { return queue_.size(); }
  bool idle() const override { return queue_.empty() && !in_flight_; }
  std::uint64_t packets_sent() const override { return packets_sent_; }
  std::uint64_t packets_dropped() const override { return packets_dropped_; }
  std::uint64_t congestion_backoffs() const { return congestion_backoffs_; }

  /// Invoked after each successful hand-off to the radio completes.
  void set_send_done(std::function<void(const Packet&)> cb) override {
    send_done_ = std::move(cb);
  }

 private:
  void arm_backoff(bool congestion);
  void backoff_expired();
  void transmission_finished();
  bool carrier_clear() const;

  Radio& radio_;
  sim::Scheduler& scheduler_;
  sim::Rng rng_;
  Params params_;
  std::deque<FramePtr> queue_;
  FramePtr last_sent_;
  sim::EventHandle backoff_;
  bool in_flight_ = false;
  std::size_t retries_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t congestion_backoffs_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_sent_;
  obs::MetricsRegistry::Counter m_dropped_;
  obs::MetricsRegistry::Counter m_backoffs_;
  std::function<void(const Packet&)> send_done_;
};

}  // namespace mnp::net

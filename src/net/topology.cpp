#include "net/topology.hpp"

namespace mnp::net {

Topology Topology::grid(std::size_t rows, std::size_t cols, double spacing_ft) {
  Topology t;
  t.positions_.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      t.positions_.push_back(Position{static_cast<double>(c) * spacing_ft,
                                      static_cast<double>(r) * spacing_ft});
    }
  }
  t.rows_ = rows;
  t.cols_ = cols;
  t.spacing_ = spacing_ft;
  return t;
}

void Topology::set_position(NodeId id, Position p) {
  Position& slot = positions_.at(id);
  const Position from = slot;
  slot = p;
  ++version_;
  if (move_log_.size() < kMoveLogCapacity) {
    move_log_.push_back(MoveRecord{version_, id, from, p});
  } else {
    move_log_[static_cast<std::size_t>(version_ - 1) % kMoveLogCapacity] =
        MoveRecord{version_, id, from, p};
  }
}

bool Topology::moves_since(std::uint64_t since,
                           std::vector<MoveRecord>& out) const {
  if (since >= version_) return true;  // nothing newer than the caller has
  const std::uint64_t missing = version_ - since;
  if (missing > move_log_.size()) return false;  // ring overwrote history
  for (std::uint64_t v = since + 1; v <= version_; ++v) {
    out.push_back(
        move_log_[static_cast<std::size_t>(v - 1) % kMoveLogCapacity]);
  }
  return true;
}

}  // namespace mnp::net

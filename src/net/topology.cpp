#include "net/topology.hpp"

namespace mnp::net {

Topology Topology::grid(std::size_t rows, std::size_t cols, double spacing_ft) {
  Topology t;
  t.positions_.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      t.positions_.push_back(Position{static_cast<double>(c) * spacing_ft,
                                      static_cast<double>(r) * spacing_ft});
    }
  }
  t.rows_ = rows;
  t.cols_ = cols;
  t.spacing_ = spacing_ft;
  return t;
}

}  // namespace mnp::net

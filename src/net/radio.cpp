#include "net/radio.hpp"

#include <utility>

#include "net/channel.hpp"

namespace mnp::net {

Radio::Radio(NodeId id, sim::Scheduler& scheduler, Channel& channel,
             energy::EnergyMeter& meter)
    : id_(id), scheduler_(scheduler), channel_(channel), meter_(meter) {}

void Radio::turn_on() {
  if (state_ != State::kOff) {
    off_pending_ = false;
    return;
  }
  state_ = State::kListening;
  channel_.radio_started_listening(id_);
  meter_.radio_became_active(scheduler_.now());
  if (on_state_) on_state_(true, scheduler_.now());
}

void Radio::turn_off() {
  switch (state_) {
    case State::kOff:
      return;
    case State::kTransmitting:
      off_pending_ = true;  // applied at end of the in-flight packet
      return;
    case State::kListening:
      channel_.radio_stopped_listening(id_);
      state_ = State::kOff;
      meter_.radio_became_inactive(scheduler_.now());
      if (on_state_) on_state_(false, scheduler_.now());
      return;
  }
}

bool Radio::start_transmission(FramePtr frame) {
  if (state_ != State::kListening) return false;
  channel_.radio_stopped_listening(id_);  // half-duplex: stop receiving
  state_ = State::kTransmitting;
  meter_.count_tx_packet();
  const sim::Time airtime = channel_.airtime(*frame);
  channel_.begin_transmission(id_, std::move(frame));
  scheduler_.post_after(airtime, [this] { finish_transmission(); });
  return true;
}

bool Radio::start_transmission(Packet pkt) {
  return start_transmission(channel_.frame_pool().adopt(std::move(pkt)));
}

void Radio::finish_transmission() {
  state_ = State::kListening;
  channel_.radio_started_listening(id_);
  if (off_pending_) {
    off_pending_ = false;
    turn_off();
  }
  if (on_send_done_) on_send_done_();
}

bool Radio::senses_carrier() const { return channel_.carrier_busy(id_); }

void Radio::deliver(const Packet& pkt) {
  if (state_ != State::kListening) return;
  meter_.count_rx_packet();
  if (on_receive_) on_receive_(pkt);
}

}  // namespace mnp::net

#include "net/channel.hpp"

#include <algorithm>
#include <utility>

#include "net/radio.hpp"

namespace mnp::net {

Channel::Channel(sim::Simulator& sim, const Topology& topo,
                 const LinkModel& links, Params params)
    : sim_(sim),
      topo_(topo),
      links_(links),
      params_(params),
      rng_(sim.fork_rng(0xC4A27EFULL)) {
  radios_.resize(topo_.size(), nullptr);
}

Channel::Channel(sim::Simulator& sim, const Topology& topo,
                 const LinkModel& links)
    : Channel(sim, topo, links, Params{}) {}

void Channel::register_radio(Radio& radio) {
  if (radio.id() >= radios_.size()) radios_.resize(radio.id() + 1, nullptr);
  radios_[radio.id()] = &radio;
}

sim::Time Channel::airtime(const Packet& pkt) const {
  const double bits = static_cast<double>(pkt.wire_bytes()) * 8.0;
  return static_cast<sim::Time>(bits / params_.bitrate_bps * 1e6);
}

bool Channel::carrier_busy(NodeId listener) const {
  for (const auto& tx : active_) {
    if (tx->src == listener) return true;  // own transmission in flight
    if (links_.interferes(tx->src, listener, tx->pkt.power_scale)) return true;
  }
  return false;
}

void Channel::corrupt(Active& tx, std::size_t candidate_index) {
  tx.corrupted[candidate_index] = true;
}

void Channel::begin_transmission(NodeId src, Packet pkt) {
  auto tx = std::make_shared<Active>();
  tx->src = src;
  tx->start = sim_.now();
  tx->end = sim_.now() + airtime(pkt);
  tx->bulk = is_bulk_data(pkt.type());
  tx->pkt = std::move(pkt);
  ++transmissions_;
  if (observer_) observer_->on_transmit(src, tx->pkt, sim_.now());

  // Candidate receivers: every node currently listening whose radio hears
  // this source at all (interference reach, not just decode reach).
  for (NodeId n = 0; n < radios_.size(); ++n) {
    Radio* r = radios_[n];
    if (!r || n == src || !r->is_listening()) continue;
    if (!links_.interferes(src, n, tx->pkt.power_scale)) continue;
    tx->candidates.push_back(n);
    tx->corrupted.push_back(false);
  }

  // Cross-corruption with every transmission already in flight: a listener
  // reached by both sources decodes neither packet.
  for (const auto& other : active_) {
    for (std::size_t i = 0; i < tx->candidates.size(); ++i) {
      const NodeId r = tx->candidates[i];
      if (!tx->corrupted[i] &&
          links_.interferes(other->src, r, other->pkt.power_scale)) {
        corrupt(*tx, i);
        ++collisions_;
        if (observer_) observer_->on_collision(r, sim_.now());
      }
    }
    for (std::size_t i = 0; i < other->candidates.size(); ++i) {
      const NodeId r = other->candidates[i];
      if (!other->corrupted[i] &&
          links_.interferes(src, r, tx->pkt.power_scale)) {
        corrupt(*other, i);
        ++collisions_;
        if (observer_) observer_->on_collision(r, sim_.now());
      }
    }
    // Concurrent bulk-sender monitor (paper: "at most one sender active in
    // any neighborhood"): two overlapping code transmissions whose sources
    // interfere with each other or share a reachable listener.
    if (tx->bulk && other->bulk) {
      const bool mutual =
          links_.interferes(src, other->src, tx->pkt.power_scale) ||
          links_.interferes(other->src, src, other->pkt.power_scale);
      bool shared_victim = false;
      if (!mutual) {
        for (const NodeId r : tx->candidates) {
          if (links_.interferes(other->src, r, other->pkt.power_scale)) {
            shared_victim = true;
            break;
          }
        }
      }
      if (mutual || shared_victim) ++bulk_overlaps_;
    }
  }

  active_.push_back(tx);
  sim_.scheduler().schedule_at(tx->end, [this, tx] { end_transmission(tx); });
}

void Channel::radio_stopped_listening(NodeId id) {
  for (const auto& tx : active_) {
    for (std::size_t i = 0; i < tx->candidates.size(); ++i) {
      if (tx->candidates[i] == id) {
        // Mid-packet loss of the listener: the packet is gone for it.
        corrupt(*tx, i);
      }
    }
  }
}

void Channel::end_transmission(const std::shared_ptr<Active>& tx) {
  active_.erase(std::remove(active_.begin(), active_.end(), tx), active_.end());
  for (std::size_t i = 0; i < tx->candidates.size(); ++i) {
    if (tx->corrupted[i]) continue;
    const NodeId r = tx->candidates[i];
    Radio* radio = radios_[r];
    if (!radio || !radio->is_listening()) continue;
    const double p = links_.packet_success(tx->src, r, tx->pkt.power_scale);
    if (!rng_.bernoulli(p)) continue;
    ++deliveries_;
    if (observer_) observer_->on_deliver(tx->src, r, tx->pkt, sim_.now());
    radio->deliver(tx->pkt);
  }
}

}  // namespace mnp::net

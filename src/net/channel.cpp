#include "net/channel.hpp"

#include <algorithm>
#include <utility>

#include "net/radio.hpp"

namespace mnp::net {

Channel::Channel(sim::Simulator& sim, const Topology& topo,
                 const LinkModel& links, Params params)
    : sim_(sim),
      topo_(topo),
      links_(links),
      params_(params),
      rng_(sim.fork_rng(0xC4A27EFULL)) {
  radios_.resize(topo_.size(), nullptr);
  // Copy mode is the honest brute-force reference: no recycling anywhere.
  pool_.set_recycling(params_.zero_copy);
}

Channel::Channel(sim::Simulator& sim, const Topology& topo,
                 const LinkModel& links)
    : Channel(sim, topo, links, Params{}) {}

void Channel::register_radio(Radio& radio) {
  if (radio.id() >= radios_.size()) radios_.resize(radio.id() + 1, nullptr);
  radios_[radio.id()] = &radio;
}

void Channel::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  m_tx_ = registry.register_counter("chan.tx", obs::Unit::kCount, true);
  m_delivered_ =
      registry.register_counter("chan.delivered", obs::Unit::kCount, true);
  m_collisions_ =
      registry.register_counter("chan.collisions", obs::Unit::kCount, true);
  m_bulk_overlaps_ = registry.register_counter("chan.bulk_overlaps",
                                               obs::Unit::kCount, false);
}

sim::Time Channel::airtime(const Packet& pkt) const {
  const double bits = static_cast<double>(pkt.wire_bytes()) * 8.0;
  return static_cast<sim::Time>(bits / params_.bitrate_bps * 1e6);
}

const Channel::ScaleCache& Channel::cache_for(double power_scale) const {
  // Staleness check: a scenario may have moved a node or flipped a link
  // window since these sets were built. Rebuild lazily from the current
  // world rather than hand out stale reach bitsets.
  if (topo_.version() != cache_topo_version_ ||
      links_.revision() != cache_links_revision_) {
    if (!scales_.empty()) {
      scales_.clear();
      ++cache_invalidations_;
    }
    cache_topo_version_ = topo_.version();
    cache_links_revision_ = links_.revision();
  }
  for (const auto& c : scales_) {
    if (c->power_scale == power_scale) return *c;
  }
  // First packet at this power scale: materialize the neighbor sets. One
  // O(N^2) pass buys O(degree) for every subsequent transmission.
  auto cache = std::make_unique<ScaleCache>();
  cache->power_scale = power_scale;
  const std::size_t n = topo_.size();
  cache->neighbors.resize(n);
  cache->success.resize(n);
  cache->reach_bits.assign((n * n + 63) / 64, 0);
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      const NodeId s = static_cast<NodeId>(src);
      const NodeId d = static_cast<NodeId>(dst);
      if (!links_.interferes(s, d, power_scale)) continue;
      cache->neighbors[src].push_back(d);
      cache->success[src].push_back(links_.packet_success(s, d, power_scale));
      const std::size_t bit = src * n + dst;
      cache->reach_bits[bit >> 6] |= std::uint64_t{1} << (bit & 63);
    }
  }
  scales_.push_back(std::move(cache));
  return *scales_.back();
}

bool Channel::carrier_busy(NodeId listener) const {
  if (params_.neighbor_cache) {
    const std::size_t n = topo_.size();
    for (const auto& tx : active_) {
      if (tx->src == listener) return true;  // own transmission in flight
      if (listener < n &&
          cache_for(tx->pkt().power_scale).reaches(n, tx->src, listener)) {
        return true;
      }
    }
    return false;
  }
  for (const auto& tx : active_) {
    if (tx->src == listener) return true;
    if (links_.interferes(tx->src, listener, tx->pkt().power_scale)) return true;
  }
  return false;
}

std::shared_ptr<Channel::Active> Channel::acquire_active() {
  if (params_.zero_copy) {
    // Scan for a retired record the scheduler has released (the completion
    // lambda keeps a reference until it runs; such entries sit at
    // use_count() > 1 and stay in the retired list).
    for (std::size_t i = retired_active_.size(); i-- > 0;) {
      if (retired_active_[i].use_count() == 1) {
        std::shared_ptr<Active> tx = std::move(retired_active_[i]);
        retired_active_[i] = std::move(retired_active_.back());
        retired_active_.pop_back();
        return tx;
      }
    }
  }
  return std::make_shared<Active>();
}

void Channel::corrupt_candidate(Active& tx, std::size_t candidate_index) {
  tx.corrupted[candidate_index] = true;
}

void Channel::corrupt_listener(Active& tx, NodeId id) {
  // Candidate lists are ascending in both the cached and the brute-force
  // path, so membership is a binary search, not a scan.
  const auto it =
      std::lower_bound(tx.candidates.begin(), tx.candidates.end(), id);
  if (it != tx.candidates.end() && *it == id) {
    corrupt_candidate(
        tx, static_cast<std::size_t>(it - tx.candidates.begin()));
  }
}

void Channel::begin_transmission(NodeId src, Packet pkt) {
  begin_transmission(src, pool_.adopt(std::move(pkt)));
}

void Channel::begin_transmission(NodeId src, FramePtr frame) {
  std::shared_ptr<Active> tx = acquire_active();
  tx->src = src;
  tx->start = sim_.now();
  tx->end = sim_.now() + airtime(*frame);
  tx->bulk = is_bulk_data(frame->type());
  tx->frame = std::move(frame);
  ++transmissions_;
  if (metrics_) metrics_->add(m_tx_, src);
  if (observer_) observer_->on_transmit(src, tx->pkt(), sim_.now());

  // Candidate receivers: every node currently listening whose radio hears
  // this source at all (interference reach, not just decode reach). The
  // decode probability rides along so delivery never re-queries the link
  // model. Both paths enumerate in ascending node order.
  const std::size_t n = topo_.size();
  const ScaleCache* tx_cache = nullptr;
  if (params_.neighbor_cache) {
    tx_cache = &cache_for(tx->pkt().power_scale);
    if (src < n) {
      const auto& neighbors = tx_cache->neighbors[src];
      const auto& success = tx_cache->success[src];
      tx->candidates.reserve(neighbors.size());
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const NodeId id = neighbors[i];
        Radio* r = id < radios_.size() ? radios_[id] : nullptr;
        if (!r || !r->is_listening()) continue;
        tx->candidates.push_back(id);
        tx->success.push_back(success[i]);
        tx->corrupted.push_back(false);
      }
    }
  } else {
    for (NodeId id = 0; id < radios_.size(); ++id) {
      Radio* r = radios_[id];
      if (!r || id == src || !r->is_listening()) continue;
      if (!links_.interferes(src, id, tx->pkt().power_scale)) continue;
      tx->candidates.push_back(id);
      tx->success.push_back(
          links_.packet_success(src, id, tx->pkt().power_scale));
      tx->corrupted.push_back(false);
    }
  }

  // Cross-corruption with every transmission already in flight: a listener
  // reached by both sources decodes neither packet.
  for (const auto& other : active_) {
    const ScaleCache* other_cache =
        params_.neighbor_cache ? &cache_for(other->pkt().power_scale) : nullptr;
    const auto other_reaches = [&](NodeId at) {
      return other_cache
                 ? other_cache->reaches(n, other->src, at)
                 : links_.interferes(other->src, at, other->pkt().power_scale);
    };
    const auto tx_reaches = [&](NodeId at) {
      return tx_cache ? tx_cache->reaches(n, src, at)
                      : links_.interferes(src, at, tx->pkt().power_scale);
    };
    for (std::size_t i = 0; i < tx->candidates.size(); ++i) {
      const NodeId r = tx->candidates[i];
      if (!tx->corrupted[i] && other_reaches(r)) {
        corrupt_candidate(*tx, i);
        ++collisions_;
        if (metrics_) metrics_->add(m_collisions_, r);
        if (observer_) observer_->on_collision(r, sim_.now());
      }
    }
    for (std::size_t i = 0; i < other->candidates.size(); ++i) {
      const NodeId r = other->candidates[i];
      if (!other->corrupted[i] && tx_reaches(r)) {
        corrupt_candidate(*other, i);
        ++collisions_;
        if (metrics_) metrics_->add(m_collisions_, r);
        if (observer_) observer_->on_collision(r, sim_.now());
      }
    }
    // Concurrent bulk-sender monitor (paper: "at most one sender active in
    // any neighborhood"): two overlapping code transmissions whose sources
    // interfere with each other or share a reachable listener.
    if (tx->bulk && other->bulk) {
      const bool mutual = tx_reaches(other->src) || other_reaches(src);
      bool shared_victim = false;
      if (!mutual) {
        for (const NodeId r : tx->candidates) {
          if (other_reaches(r)) {
            shared_victim = true;
            break;
          }
        }
      }
      if (mutual || shared_victim) {
        ++bulk_overlaps_;
        if (metrics_) metrics_->add(m_bulk_overlaps_);
      }
    }
  }

  tx->index = active_.size();
  active_.push_back(tx);
  sim_.scheduler().post_at(tx->end, [this, tx] { end_transmission(tx); });
}

void Channel::radio_stopped_listening(NodeId id) {
  for (const auto& tx : active_) {
    // Mid-packet loss of the listener: the packet is gone for it.
    corrupt_listener(*tx, id);
  }
}

void Channel::unlink_active(const std::shared_ptr<Active>& tx) {
  const std::size_t idx = tx->index;
  const std::size_t last = active_.size() - 1;
  if (idx != last) {
    active_[idx] = std::move(active_[last]);
    active_[idx]->index = idx;
  }
  active_.pop_back();
}

void Channel::end_transmission(const std::shared_ptr<Active>& tx) {
  unlink_active(tx);
  for (std::size_t i = 0; i < tx->candidates.size(); ++i) {
    if (tx->corrupted[i]) continue;
    const NodeId r = tx->candidates[i];
    Radio* radio = radios_[r];
    if (!radio || !radio->is_listening()) continue;
    if (!rng_.bernoulli(tx->success[i])) continue;
    ++deliveries_;
    if (metrics_) metrics_->add(m_delivered_, r);
    if (observer_) observer_->on_deliver(tx->src, r, tx->pkt(), sim_.now());
    if (params_.zero_copy) {
      // Every receiver reads the one shared immutable frame.
      radio->deliver(tx->pkt());
    } else {
      // Brute-force reference: each receiver gets its own deep copy, as if
      // the air materialized a fresh packet per listener.
      const Packet copy = tx->pkt();
      radio->deliver(copy);
    }
  }
  if (params_.zero_copy && retired_active_.size() < 64) {
    // Park the record for reuse; capacity of the candidate vectors and the
    // shared_ptr control block survive. The completion lambda still holds
    // a reference until the scheduler drops it, which acquire_active
    // detects via use_count().
    tx->frame.reset();
    tx->candidates.clear();
    tx->success.clear();
    tx->corrupted.clear();
    retired_active_.push_back(tx);
  }
}

}  // namespace mnp::net

#include "net/channel.hpp"

#include <algorithm>
#include <utility>

#include "net/radio.hpp"

namespace mnp::net {

Channel::Channel(sim::Simulator& sim, const Topology& topo,
                 const LinkModel& links, Params params)
    : sim_(sim),
      topo_(topo),
      links_(links),
      params_(params),
      rng_(sim.fork_rng(0xC4A27EFULL)) {
  radios_.resize(topo_.size(), nullptr);
  listening_.resize(topo_.size(), 0);
  // Copy mode is the honest brute-force reference: no recycling anywhere.
  pool_.set_recycling(params_.zero_copy);
}

Channel::Channel(sim::Simulator& sim, const Topology& topo,
                 const LinkModel& links)
    : Channel(sim, topo, links, Params{}) {}

void Channel::register_radio(Radio& radio) {
  if (radio.id() >= radios_.size()) {
    radios_.resize(radio.id() + 1, nullptr);
    listening_.resize(radio.id() + 1, 0);
  }
  radios_[radio.id()] = &radio;
  listening_[radio.id()] = radio.is_listening() ? 1 : 0;
}

void Channel::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  m_tx_ = registry.register_counter("chan.tx", obs::Unit::kCount, true);
  m_delivered_ =
      registry.register_counter("chan.delivered", obs::Unit::kCount, true);
  m_collisions_ =
      registry.register_counter("chan.collisions", obs::Unit::kCount, true);
  m_bulk_overlaps_ = registry.register_counter("chan.bulk_overlaps",
                                               obs::Unit::kCount, false);
  m_cache_invalidations_ = registry.register_counter("chan.cache_invalidations",
                                                     obs::Unit::kCount, false);
  m_cache_repairs_ =
      registry.register_counter("chan.cache_repairs", obs::Unit::kCount, false);
  m_grid_cells_ =
      registry.register_gauge("chan.grid_cells", obs::Unit::kCount, false);
  m_grid_occupancy_ = registry.register_gauge("chan.grid_max_occupancy",
                                              obs::Unit::kCount, false);
  publish_grid_gauges();
}

sim::Time Channel::airtime(const Packet& pkt) const {
  const double bits = static_cast<double>(pkt.wire_bytes()) * 8.0;
  return static_cast<sim::Time>(bits / params_.bitrate_bps * 1e6);
}

void Channel::publish_grid_gauges() const {
  if (!metrics_) return;
  metrics_->set(m_grid_cells_, static_cast<double>(grid_.cell_count()));
  metrics_->set(m_grid_occupancy_,
                static_cast<double>(grid_.max_occupancy()));
}

void Channel::discard_caches() const {
  scales_.clear();
  scale_index_.clear();
  grid_.reset();
}

void Channel::mark_neighborhood_dirty(ScaleCache& cache, Position p) const {
  if (cache.radius < 0.0 || !grid_.valid()) {
    cache.mark_all_dirty(cache.neighbors.size());
    return;
  }
  grid_.for_each_near(p.x, p.y, cache.radius,
                      [&](NodeId s) { cache.mark_dirty(s); });
}

void Channel::apply_move(const Topology::MoveRecord& mv) const {
  // Any source whose row could gain or lose the moved node sits within the
  // scale's interference radius of one of the endpoints (interference is a
  // distance bound), so two disc queries cover exactly the affected rows.
  for (const auto& cache : scales_) {
    mark_neighborhood_dirty(*cache, mv.from);
    mark_neighborhood_dirty(*cache, mv.to);
    if (mv.node < cache->neighbors.size()) cache->mark_dirty(mv.node);
  }
  grid_.move(mv.node, mv.to);
}

void Channel::sync_world() const {
  const std::uint64_t tv = topo_.version();
  const std::uint64_t lr = links_.revision();
  if (tv == cache_topo_version_ && lr == cache_links_revision_) return;
  if (scales_.empty()) {
    // Nothing cached yet; a built grid would be a stale position snapshot.
    grid_.reset();
  } else {
    // Incremental repair needs every cached scale on the lazy grid path
    // plus a complete account of what changed (bounded logs: either can
    // have been overwritten, and a link model may not track change sets
    // at all). Anything short of that discards the caches — correct by
    // construction, merely slower, and exactly the pre-grid behavior.
    bool incremental = params_.grid_index && grid_.valid();
    for (const auto& cache : scales_) {
      if (cache->dirty.empty()) {
        incremental = false;
        break;
      }
    }
    move_scratch_.clear();
    if (incremental && tv != cache_topo_version_) {
      incremental = topo_.moves_since(cache_topo_version_, move_scratch_);
    }
    link_scratch_.clear();
    if (incremental && lr != cache_links_revision_) {
      incremental = links_.changed_nodes_since(cache_links_revision_,
                                               link_scratch_);
    }
    if (incremental) {
      for (const auto& mv : move_scratch_) apply_move(mv);
      for (const NodeId id : link_scratch_) {
        if (id >= topo_.size()) continue;
        const Position p{grid_.x(id), grid_.y(id)};
        for (const auto& cache : scales_) {
          mark_neighborhood_dirty(*cache, p);
          if (id < cache->neighbors.size()) cache->mark_dirty(id);
        }
      }
      publish_grid_gauges();
    } else {
      discard_caches();
    }
    ++cache_invalidations_;
    if (metrics_) metrics_->add(m_cache_invalidations_);
  }
  cache_topo_version_ = tv;
  cache_links_revision_ = lr;
}

Channel::ScaleCache& Channel::scale_for(double power_scale) const {
  sync_world();
  const auto it = std::lower_bound(
      scale_index_.begin(), scale_index_.end(), power_scale,
      [](const std::pair<double, std::uint32_t>& e, double v) {
        return e.first < v;
      });
  if (it != scale_index_.end() && it->first == power_scale) {
    return *scales_[it->second];
  }
  return build_scale(power_scale);
}

Channel::ScaleCache& Channel::build_scale(double power_scale) const {
  // First packet at this power scale: materialize the neighbor rows. The
  // grid path defers every row to first touch (O(neighbors) each); the
  // eager reference path pays one O(N^2) pass up front.
  auto cache = std::make_unique<ScaleCache>();
  cache->power_scale = power_scale;
  cache->radius = links_.max_interference_range(power_scale);
  const std::size_t n = topo_.size();
  cache->neighbors.resize(n);
  cache->success.resize(n);
  const bool lazy =
      params_.neighbor_cache && params_.grid_index && cache->radius >= 0.0;
  if (lazy) {
    if (!grid_.valid() && cache->radius > 0.0) {
      grid_.build(topo_, cache->radius);
      publish_grid_gauges();
    }
    cache->mark_all_dirty(n);
  } else {
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        const NodeId s = static_cast<NodeId>(src);
        const NodeId d = static_cast<NodeId>(dst);
        if (!links_.interferes(s, d, power_scale)) continue;
        cache->neighbors[src].push_back(d);
        cache->success[src].push_back(
            links_.packet_success(s, d, power_scale));
      }
    }
  }
  scales_.push_back(std::move(cache));
  const auto index = static_cast<std::uint32_t>(scales_.size() - 1);
  const auto pos = std::lower_bound(
      scale_index_.begin(), scale_index_.end(), power_scale,
      [](const std::pair<double, std::uint32_t>& e, double v) {
        return e.first < v;
      });
  scale_index_.insert(pos, {power_scale, index});
  return *scales_[index];
}

void Channel::rebuild_row(ScaleCache& cache, NodeId src) const {
  std::vector<NodeId>& nbr = cache.neighbors[src];
  std::vector<double>& suc = cache.success[src];
  nbr.clear();
  suc.clear();
  const double ps = cache.power_scale;
  if (grid_.valid() && cache.radius >= 0.0) {
    // Grid superset -> exact filter -> sort: byte-identical to what the
    // eager all-pairs pass builds for this row (ascending, self excluded),
    // so both paths feed the RNG the same candidate streams.
    row_scratch_.clear();
    grid_.for_each_near(
        grid_.x(src), grid_.y(src), cache.radius, [&](NodeId d) {
          if (d != src && links_.interferes(src, d, ps)) {
            row_scratch_.push_back(d);
          }
        });
    std::sort(row_scratch_.begin(), row_scratch_.end());
    nbr.assign(row_scratch_.begin(), row_scratch_.end());
    suc.reserve(nbr.size());
    for (const NodeId d : nbr) suc.push_back(links_.packet_success(src, d, ps));
  } else {
    const std::size_t n = topo_.size();
    for (std::size_t dst = 0; dst < n; ++dst) {
      const NodeId d = static_cast<NodeId>(dst);
      if (d == src || !links_.interferes(src, d, ps)) continue;
      nbr.push_back(d);
      suc.push_back(links_.packet_success(src, d, ps));
    }
  }
  cache.clear_dirty(src);
  ++cache_repairs_;
  if (metrics_) metrics_->add(m_cache_repairs_);
}

bool Channel::row_reaches(ScaleCache& cache, NodeId src, NodeId dst) const {
  if (src >= cache.neighbors.size()) return false;
  ensure_row(cache, src);
  const std::vector<NodeId>& nbr = cache.neighbors[src];
  return std::binary_search(nbr.begin(), nbr.end(), dst);
}

std::pair<std::vector<NodeId>, std::vector<double>>
Channel::neighbor_row_for_test(double power_scale, NodeId src) const {
  ScaleCache& cache = scale_for(power_scale);
  if (src >= cache.neighbors.size()) return {};
  ensure_row(cache, src);
  return {cache.neighbors[src], cache.success[src]};
}

bool Channel::carrier_busy(NodeId listener) const {
  if (params_.neighbor_cache) {
    const std::size_t n = topo_.size();
    for (const auto& tx : active_) {
      if (tx->src == listener) return true;  // own transmission in flight
      if (listener < n &&
          row_reaches(scale_for(tx->pkt().power_scale), tx->src, listener)) {
        return true;
      }
    }
    return false;
  }
  for (const auto& tx : active_) {
    if (tx->src == listener) return true;
    if (links_.interferes(tx->src, listener, tx->pkt().power_scale)) return true;
  }
  return false;
}

std::shared_ptr<Channel::Active> Channel::acquire_active() {
  if (params_.zero_copy) {
    // Scan for a retired record the scheduler has released (the completion
    // lambda keeps a reference until it runs; such entries sit at
    // use_count() > 1 and stay in the retired list).
    for (std::size_t i = retired_active_.size(); i-- > 0;) {
      if (retired_active_[i].use_count() == 1) {
        std::shared_ptr<Active> tx = std::move(retired_active_[i]);
        retired_active_[i] = std::move(retired_active_.back());
        retired_active_.pop_back();
        return tx;
      }
    }
  }
  return std::make_shared<Active>();
}

void Channel::corrupt_candidate(Active& tx, std::size_t candidate_index) {
  tx.corrupted[candidate_index] = true;
}

void Channel::corrupt_listener(Active& tx, NodeId id) {
  // Candidate lists are ascending in both the cached and the brute-force
  // path, so membership is a binary search, not a scan.
  const auto it =
      std::lower_bound(tx.candidates.begin(), tx.candidates.end(), id);
  if (it != tx.candidates.end() && *it == id) {
    corrupt_candidate(
        tx, static_cast<std::size_t>(it - tx.candidates.begin()));
  }
}

void Channel::begin_transmission(NodeId src, Packet pkt) {
  begin_transmission(src, pool_.adopt(std::move(pkt)));
}

void Channel::begin_transmission(NodeId src, FramePtr frame) {
  std::shared_ptr<Active> tx = acquire_active();
  tx->src = src;
  tx->start = sim_.now();
  tx->end = sim_.now() + airtime(*frame);
  tx->bulk = is_bulk_data(frame->type());
  tx->frame = std::move(frame);
  ++transmissions_;
  if (metrics_) metrics_->add(m_tx_, src);
  if (observer_) observer_->on_transmit(src, tx->pkt(), sim_.now());

  // Candidate receivers: every node currently listening whose radio hears
  // this source at all (interference reach, not just decode reach). The
  // decode probability rides along so delivery never re-queries the link
  // model. Both paths enumerate in ascending node order, and the listening
  // filter reads the SoA byte array — no Radio dereference per neighbor.
  const std::size_t n = topo_.size();
  ScaleCache* tx_cache = nullptr;
  if (params_.neighbor_cache) {
    tx_cache = &scale_for(tx->pkt().power_scale);
    if (src < n) {
      ensure_row(*tx_cache, src);
      const auto& neighbors = tx_cache->neighbors[src];
      const auto& success = tx_cache->success[src];
      tx->candidates.reserve(neighbors.size());
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const NodeId id = neighbors[i];
        if (id >= listening_.size() || !listening_[id]) continue;
        tx->candidates.push_back(id);
        tx->success.push_back(success[i]);
        tx->corrupted.push_back(false);
      }
    }
  } else {
    for (NodeId id = 0; id < radios_.size(); ++id) {
      if (id == src || id >= listening_.size() || !listening_[id]) continue;
      if (!links_.interferes(src, id, tx->pkt().power_scale)) continue;
      tx->candidates.push_back(id);
      tx->success.push_back(
          links_.packet_success(src, id, tx->pkt().power_scale));
      tx->corrupted.push_back(false);
    }
  }

  // Cross-corruption with every transmission already in flight: a listener
  // reached by both sources decodes neither packet.
  for (const auto& other : active_) {
    ScaleCache* other_cache =
        params_.neighbor_cache ? &scale_for(other->pkt().power_scale) : nullptr;
    const auto other_reaches = [&](NodeId at) {
      return other_cache
                 ? row_reaches(*other_cache, other->src, at)
                 : links_.interferes(other->src, at, other->pkt().power_scale);
    };
    const auto tx_reaches = [&](NodeId at) {
      return tx_cache ? row_reaches(*tx_cache, src, at)
                      : links_.interferes(src, at, tx->pkt().power_scale);
    };
    for (std::size_t i = 0; i < tx->candidates.size(); ++i) {
      const NodeId r = tx->candidates[i];
      if (!tx->corrupted[i] && other_reaches(r)) {
        corrupt_candidate(*tx, i);
        ++collisions_;
        if (metrics_) metrics_->add(m_collisions_, r);
        if (observer_) observer_->on_collision(r, sim_.now());
      }
    }
    for (std::size_t i = 0; i < other->candidates.size(); ++i) {
      const NodeId r = other->candidates[i];
      if (!other->corrupted[i] && tx_reaches(r)) {
        corrupt_candidate(*other, i);
        ++collisions_;
        if (metrics_) metrics_->add(m_collisions_, r);
        if (observer_) observer_->on_collision(r, sim_.now());
      }
    }
    // Concurrent bulk-sender monitor (paper: "at most one sender active in
    // any neighborhood"): two overlapping code transmissions whose sources
    // interfere with each other or share a reachable listener.
    if (tx->bulk && other->bulk) {
      const bool mutual = tx_reaches(other->src) || other_reaches(src);
      bool shared_victim = false;
      if (!mutual) {
        for (const NodeId r : tx->candidates) {
          if (other_reaches(r)) {
            shared_victim = true;
            break;
          }
        }
      }
      if (mutual || shared_victim) {
        ++bulk_overlaps_;
        if (metrics_) metrics_->add(m_bulk_overlaps_);
      }
    }
  }

  tx->index = active_.size();
  active_.push_back(tx);
  sim_.scheduler().post_at(tx->end, [this, tx] { end_transmission(tx); });
}

void Channel::radio_started_listening(NodeId id) {
  if (id >= listening_.size()) listening_.resize(id + 1, 0);
  listening_[id] = 1;
}

void Channel::radio_stopped_listening(NodeId id) {
  if (id < listening_.size()) listening_[id] = 0;
  for (const auto& tx : active_) {
    // Mid-packet loss of the listener: the packet is gone for it.
    corrupt_listener(*tx, id);
  }
}

void Channel::unlink_active(const std::shared_ptr<Active>& tx) {
  const std::size_t idx = tx->index;
  const std::size_t last = active_.size() - 1;
  if (idx != last) {
    active_[idx] = std::move(active_[last]);
    active_[idx]->index = idx;
  }
  active_.pop_back();
}

void Channel::end_transmission(const std::shared_ptr<Active>& tx) {
  unlink_active(tx);
  for (std::size_t i = 0; i < tx->candidates.size(); ++i) {
    if (tx->corrupted[i]) continue;
    const NodeId r = tx->candidates[i];
    if (r >= listening_.size() || !listening_[r]) continue;
    Radio* radio = radios_[r];
    if (!radio) continue;
    if (!rng_.bernoulli(tx->success[i])) continue;
    ++deliveries_;
    if (metrics_) metrics_->add(m_delivered_, r);
    if (observer_) observer_->on_deliver(tx->src, r, tx->pkt(), sim_.now());
    if (params_.zero_copy) {
      // Every receiver reads the one shared immutable frame.
      radio->deliver(tx->pkt());
    } else {
      // Brute-force reference: each receiver gets its own deep copy, as if
      // the air materialized a fresh packet per listener.
      const Packet copy = tx->pkt();
      radio->deliver(copy);
    }
  }
  if (params_.zero_copy && retired_active_.size() < 64) {
    // Park the record for reuse; capacity of the candidate vectors and the
    // shared_ptr control block survive. The completion lambda still holds
    // a reference until the scheduler drops it, which acquire_active
    // detects via use_count().
    tx->frame.reset();
    tx->candidates.clear();
    tx->success.clear();
    tx->corrupted.clear();
    retired_active_.push_back(tx);
  }
}

}  // namespace mnp::net

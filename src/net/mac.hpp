// MAC protocol interface.
//
// MNP is MAC-agnostic: the paper runs it over TinyOS's CSMA but its
// conclusion proposes combining it with TDMA (citing the authors' own
// SS-TDMA) so nodes can sleep between their slots. Both MACs implement
// this interface; the mote runtime owns one of them.
#pragma once

#include <cstdint>
#include <functional>

#include "net/frame.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"

namespace mnp::net {

class Mac {
 public:
  virtual ~Mac() = default;

  /// Registers this MAC's telemetry (mac.* counters, DESIGN.md section 9)
  /// and publishes into `registry` from now on. Default: unobserved.
  virtual void attach_metrics(obs::MetricsRegistry& registry) {
    (void)registry;
  }

  /// Enqueues the shared frame — the zero-copy hot path. The MAC holds a
  /// reference in its queue; the Packet inside is never copied again.
  virtual bool send(FramePtr frame) = 0;

  /// Convenience: wraps `pkt` into a frame (via the radio's channel pool)
  /// and enqueues it. Returns false (dropped) when the queue is full or
  /// the radio is off.
  virtual bool send(Packet pkt) = 0;

  /// Drops queued packets and pending backoffs/slots. Called when the
  /// protocol silences this node (e.g. going to sleep).
  virtual void flush() = 0;

  virtual std::size_t queue_depth() const = 0;
  /// True when nothing is queued and nothing is in flight.
  virtual bool idle() const = 0;
  virtual std::uint64_t packets_sent() const = 0;
  virtual std::uint64_t packets_dropped() const = 0;

  /// Invoked after each completed transmission with the packet sent.
  virtual void set_send_done(std::function<void(const Packet&)> cb) = 0;
};

}  // namespace mnp::net

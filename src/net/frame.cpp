#include "net/frame.hpp"

#include <utility>

namespace mnp::net {
namespace detail {

FramePoolState::~FramePoolState() {
  for (FrameNode* node : free_nodes) delete node;
}

namespace {

/// Steals the payload buffer's capacity out of a dying frame so the next
/// acquire_payload() reuses it instead of allocating.
void reclaim_payload(FramePoolState& state, Packet& pkt) {
  std::vector<std::uint8_t>* payload = nullptr;
  if (auto* d = std::get_if<DataMsg>(&pkt.payload)) {
    payload = &d->payload;
  } else if (auto* d = std::get_if<DelugeDataMsg>(&pkt.payload)) {
    payload = &d->payload;
  } else if (auto* d = std::get_if<MoapDataMsg>(&pkt.payload)) {
    payload = &d->payload;
  } else if (auto* d = std::get_if<XnpDataMsg>(&pkt.payload)) {
    payload = &d->payload;
  }
  if (payload != nullptr && payload->capacity() > 0) {
    payload->clear();
    state.free_payloads.push_back(std::move(*payload));
  }
}

}  // namespace

void release_frame(FrameNode* node) {
  if (--node->refs != 0) return;
  // Keep the pool state alive past the point where the node lets go of it;
  // this frame may be the very last owner.
  std::shared_ptr<FramePoolState> keep = std::move(node->home);
  node->home.reset();
  --keep->live;
  if (keep->recycle) {
    reclaim_payload(*keep, node->pkt);
    node->pkt = Packet{};
    keep->free_nodes.push_back(node);
  } else {
    delete node;
  }
}

}  // namespace detail

FramePtr FramePool::adopt(Packet&& pkt) {
  detail::FrameNode* node = nullptr;
  if (state_->recycle && !state_->free_nodes.empty()) {
    node = state_->free_nodes.back();
    state_->free_nodes.pop_back();
  } else {
    node = new detail::FrameNode();
    ++state_->node_allocs;
  }
  node->pkt = std::move(pkt);
  node->home = state_;
  ++state_->live;
  return FramePtr(node);
}

std::vector<std::uint8_t> FramePool::acquire_payload() {
  if (state_->recycle && !state_->free_payloads.empty()) {
    std::vector<std::uint8_t> buf = std::move(state_->free_payloads.back());
    state_->free_payloads.pop_back();
    return buf;
  }
  ++state_->payload_allocs;
  return {};
}

}  // namespace mnp::net

// Shared wireless channel.
//
// Models what TOSSIM models, plus interference:
//  * per-directed-edge probabilistic decoding (LinkModel),
//  * receiver-side collisions — if two transmissions whose sources both
//    reach a listener overlap in time, the listener decodes neither; this
//    is exactly the mechanism behind the hidden terminal problem the
//    paper's sender selection is designed to avoid,
//  * carrier sense for the CSMA MAC (busy = any in-flight transmission
//    whose source interferes at the listener),
//  * a concurrent-bulk-sender monitor: counts pairs of overlapping code
//    transmissions that share a potential victim — the paper's "at most
//    one sender per neighborhood" claim, made measurable.
//
// A receiver must be listening when a packet *starts* (preamble) and keep
// listening until it ends; going off / transmitting mid-packet drops it.
//
// Hot-path structure (DESIGN.md section 11): per transmit power scale the
// channel caches each node's interference neighbor row (ascending NodeId,
// decode success cached per edge). Rows are *sparse* — reachability is a
// binary search of the source's row, never an N^2 bitset — and are built
// and repaired through a spatial-hash grid (SpatialGrid) sized to the
// link model's interference radius, so one row costs O(neighbors), not
// O(N). World changes repair incrementally: Topology::set_position and
// scenario link windows mark only the affected sources dirty (per-scale
// dirty bitset, repaired on next access) instead of discarding every
// cache. The node-listening flags live in a struct-of-arrays byte vector
// so candidate filtering never chases Radio pointers.
//
// Reference paths, kept for equivalence diffing: Params::grid_index=false
// reverts to eager all-pairs builds with whole-cache invalidation (the
// pre-grid behavior), Params::neighbor_cache=false to brute-force scans
// with no cache at all. All paths enumerate candidates in ascending node
// order, so they consume the RNG identically and whole runs are
// bit-for-bit comparable.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/link_model.hpp"
#include "net/packet.hpp"
#include "net/spatial_grid.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {

class Radio;

/// Observer for global accounting; implemented by the stats collector.
class ChannelObserver {
 public:
  virtual ~ChannelObserver() = default;
  virtual void on_transmit(NodeId src, const Packet& pkt, sim::Time now) = 0;
  virtual void on_deliver(NodeId src, NodeId dst, const Packet& pkt, sim::Time now) = 0;
  virtual void on_collision(NodeId victim, sim::Time now) = 0;
};

class Channel {
 public:
  struct Params {
    double bitrate_bps = 19200.0;  // Mica-2 CC1000 radio
    /// Debug/reference switch: false reverts to the brute-force O(N)
    /// scans the neighbor cache replaces. Equivalence-tested against the
    /// cached path; keep it for diffing, never for production runs.
    bool neighbor_cache = true;
    /// Debug/reference switch: false reverts to brute-force delivery —
    /// every receiver gets its own deep copy of the packet, frame/payload
    /// pooling is off, and each transmission record is heap-allocated.
    /// Equivalence-tested bit-identical against the shared-frame path.
    bool zero_copy = true;
    /// Debug/reference switch: false reverts to the pre-grid cache — an
    /// eager all-pairs O(N^2) build per power scale, fully discarded on
    /// any topology move or link-revision bump. The grid path builds and
    /// repairs rows lazily through the spatial index and is equivalence-
    /// tested bit-identical. Requires neighbor_cache; the grid prunes by
    /// LinkModel::max_interference_range (models without a finite bound
    /// fall back to the eager behavior automatically).
    bool grid_index = true;
  };

  Channel(sim::Simulator& sim, const Topology& topo, const LinkModel& links,
          Params params);
  /// Default-parameter convenience overload.
  Channel(sim::Simulator& sim, const Topology& topo, const LinkModel& links);

  /// Radios register once at network construction; `radio` must outlive
  /// the channel's use.
  void register_radio(Radio& radio);

  void set_observer(ChannelObserver* observer) { observer_ = observer; }

  /// Registers the channel's telemetry (the chan.* names of DESIGN.md
  /// section 9) in `registry` and mirrors every statistic increment into
  /// it from now on. Handles are pre-registered here, so the per-packet
  /// cost is one branch plus array adds.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Time on air for `pkt` at the configured bitrate.
  sim::Time airtime(const Packet& pkt) const;

  /// True if `listener` currently senses energy on the channel.
  bool carrier_busy(NodeId listener) const;

  /// Radio -> channel: `src` began transmitting the shared frame; the
  /// channel schedules delivery/corruption and will keep the medium busy
  /// for its airtime.
  void begin_transmission(NodeId src, FramePtr frame);
  /// Convenience overload: wraps `pkt` into a frame first.
  void begin_transmission(NodeId src, Packet pkt);

  /// Pool all outgoing frames (and their DataMsg payload buffers) are
  /// drawn from. Owned here because the channel is the one object every
  /// radio/MAC/node of a simulation shares.
  FramePool& frame_pool() { return pool_; }

  /// Radio -> channel: this node is no longer listening (turned off or
  /// started transmitting); it loses any packet currently in flight to it.
  void radio_stopped_listening(NodeId id);
  /// Radio -> channel: this node resumed listening (turned on or finished
  /// transmitting). Keeps the channel's listening flags — the SoA array
  /// the candidate filter reads — in step with the radio state machines.
  void radio_started_listening(NodeId id);

  // --- statistics ----------------------------------------------------------
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t deliveries() const { return deliveries_; }
  /// Receiver-side packet corruptions due to overlap.
  std::uint64_t collisions() const { return collisions_; }
  /// Overlapping bulk-data sender pairs that shared a potential victim.
  std::uint64_t concurrent_bulk_overlaps() const { return bulk_overlaps_; }
  /// Distinct power scales whose neighbor sets have been materialized.
  std::size_t cached_power_scales() const { return scales_.size(); }
  /// Times the world changed under live caches (topology move or link-
  /// model revision bump). The grid path answers most of these with
  /// incremental dirty-marking; the eager path discards every cache.
  std::uint64_t cache_invalidations() const { return cache_invalidations_; }
  /// Neighbor rows (re)built lazily by the grid path — first-touch builds
  /// and post-invalidation repairs alike.
  std::uint64_t cache_repairs() const { return cache_repairs_; }
  /// Spatial-index occupancy (0 when the grid path is off or unbuilt).
  std::size_t grid_cells() const { return grid_.cell_count(); }
  std::size_t grid_max_occupancy() const { return grid_.max_occupancy(); }

  /// Test hook: the (neighbors, success) row `src` would transmit with at
  /// `power_scale`, forcing any pending repair first. Lets equivalence
  /// tests diff incremental repair against a from-scratch rebuild.
  std::pair<std::vector<NodeId>, std::vector<double>> neighbor_row_for_test(
      double power_scale, NodeId src) const;

 private:
  struct Active {
    NodeId src;
    FramePtr frame;                  // the one shared copy of the packet
    sim::Time start;
    sim::Time end;
    bool bulk;
    std::size_t index;               // position in active_, for swap-pop
    std::vector<NodeId> candidates;  // listening-at-start, interfered, ascending
    std::vector<double> success;     // decode probability, parallel to candidates
    std::vector<bool> corrupted;     // parallel to candidates

    const Packet& pkt() const { return *frame; }
  };

  /// Neighbor rows + per-edge decode success for one power scale. Rows
  /// are per-source (struct-of-arrays: ids and success side by side) —
  /// reachability is a binary search, so nothing here is O(N^2).
  struct ScaleCache {
    double power_scale = 1.0;
    double radius = -1.0;  // max interference range; < 0 = no finite bound
    std::vector<std::vector<NodeId>> neighbors;  // ascending, per source
    std::vector<std::vector<double>> success;    // parallel to neighbors
    std::vector<std::uint64_t> dirty;            // grid path: rows to repair
    std::size_t dirty_count = 0;

    bool row_dirty(NodeId src) const {
      return (dirty[src >> 6] >> (src & 63)) & 1u;
    }
    void mark_dirty(NodeId src) {
      std::uint64_t& word = dirty[src >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (src & 63);
      if (!(word & bit)) {
        word |= bit;
        ++dirty_count;
      }
    }
    void clear_dirty(NodeId src) {
      dirty[src >> 6] &= ~(std::uint64_t{1} << (src & 63));
      --dirty_count;
    }
    void mark_all_dirty(std::size_t n) {
      dirty.assign((n + 63) / 64, ~std::uint64_t{0});
      dirty_count = n;
    }
  };

  /// Brings the caches up to date with the world (incremental when the
  /// grid path can, whole-cache discard otherwise), then returns the cache
  /// for `power_scale`, materializing it on first use.
  ScaleCache& scale_for(double power_scale) const;
  ScaleCache& build_scale(double power_scale) const;
  /// Applies pending topology moves / link-revision changes to the grid
  /// and dirty bitsets. Two integer compares when nothing changed.
  void sync_world() const;
  void apply_move(const Topology::MoveRecord& mv) const;
  /// Marks every source whose row could involve a node at `p` dirty in
  /// `cache` (grid query within the scale's radius; everything when the
  /// radius has no finite bound).
  void mark_neighborhood_dirty(ScaleCache& cache, Position p) const;
  void discard_caches() const;
  /// Repairs `src`'s row if dirty: grid-pruned collect + sort, or linear
  /// scan when no finite radius exists. Identical output to the eager
  /// all-pairs build, row by row.
  void ensure_row(ScaleCache& cache, NodeId src) const {
    if (cache.dirty_count != 0 && cache.row_dirty(src)) rebuild_row(cache, src);
  }
  void rebuild_row(ScaleCache& cache, NodeId src) const;
  /// Sparse reachability: does `src` interfere at `dst` at this scale?
  bool row_reaches(ScaleCache& cache, NodeId src, NodeId dst) const;
  void publish_grid_gauges() const;

  /// Fetches a transmission record, recycling a retired one when the
  /// scheduler has let go of it (its completion lambda holds a reference
  /// until it fires, so only use_count()==1 entries are reusable).
  std::shared_ptr<Active> acquire_active();
  void corrupt_candidate(Active& tx, std::size_t candidate_index);
  /// Marks `id` corrupted in `tx` if it is a candidate (binary search —
  /// candidate lists are ascending).
  void corrupt_listener(Active& tx, NodeId id);
  void end_transmission(const std::shared_ptr<Active>& tx);
  void unlink_active(const std::shared_ptr<Active>& tx);

  sim::Simulator& sim_;
  const Topology& topo_;
  const LinkModel& links_;
  Params params_;
  sim::Rng rng_;
  FramePool pool_;
  std::vector<Radio*> radios_;  // index = NodeId
  /// Struct-of-arrays mirror of Radio::is_listening(), maintained by the
  /// radio state machines: the candidate filter touches one byte per
  /// neighbor instead of dereferencing a Radio per node.
  std::vector<std::uint8_t> listening_;
  std::vector<std::shared_ptr<Active>> active_;
  std::vector<std::shared_ptr<Active>> retired_active_;  // reuse candidates
  // Lazily built, small (one entry per distinct power scale seen); mutable
  // so the const query paths can materialize a scale on first use.
  mutable std::vector<std::unique_ptr<ScaleCache>> scales_;
  /// Sorted (power_scale, index into scales_) pairs: cache lookup is one
  /// lower_bound probe, not a linear scan per transmission.
  mutable std::vector<std::pair<double, std::uint32_t>> scale_index_;
  /// Spatial index behind the grid path; rebuilt whenever the caches are
  /// discarded, repaired via Topology's move log otherwise.
  mutable SpatialGrid grid_;
  // World epoch the caches were synced at: any topology move or link-model
  // revision bump past these marks affected rows dirty (grid path) or
  // discards the caches (eager path) — mobility must never silently use a
  // stale neighbor row.
  mutable std::uint64_t cache_topo_version_ = 0;
  mutable std::uint64_t cache_links_revision_ = 0;
  mutable std::uint64_t cache_invalidations_ = 0;
  mutable std::uint64_t cache_repairs_ = 0;
  // Scratch for sync/rebuild (no per-event allocation in steady state).
  mutable std::vector<Topology::MoveRecord> move_scratch_;
  mutable std::vector<NodeId> link_scratch_;
  mutable std::vector<NodeId> row_scratch_;
  ChannelObserver* observer_ = nullptr;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_tx_;
  obs::MetricsRegistry::Counter m_delivered_;
  obs::MetricsRegistry::Counter m_collisions_;
  obs::MetricsRegistry::Counter m_bulk_overlaps_;
  obs::MetricsRegistry::Counter m_cache_invalidations_;
  obs::MetricsRegistry::Counter m_cache_repairs_;
  obs::MetricsRegistry::Gauge m_grid_cells_;
  obs::MetricsRegistry::Gauge m_grid_occupancy_;

  std::uint64_t transmissions_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t bulk_overlaps_ = 0;
};

}  // namespace mnp::net

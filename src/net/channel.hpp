// Shared wireless channel.
//
// Models what TOSSIM models, plus interference:
//  * per-directed-edge probabilistic decoding (LinkModel),
//  * receiver-side collisions — if two transmissions whose sources both
//    reach a listener overlap in time, the listener decodes neither; this
//    is exactly the mechanism behind the hidden terminal problem the
//    paper's sender selection is designed to avoid,
//  * carrier sense for the CSMA MAC (busy = any in-flight transmission
//    whose source interferes at the listener),
//  * a concurrent-bulk-sender monitor: counts pairs of overlapping code
//    transmissions that share a potential victim — the paper's "at most
//    one sender per neighborhood" claim, made measurable.
//
// A receiver must be listening when a packet *starts* (preamble) and keep
// listening until it ends; going off / transmitting mid-packet drops it.
//
// Hot-path structure: link models are static for the lifetime of a run, so
// the channel precomputes, per transmit power scale, each node's
// interference neighbor set (with the decode success probability cached
// per edge) plus a flat reachability bitset. begin_transmission,
// carrier_busy and the cross-corruption checks then touch only actual
// neighbors — O(degree) instead of O(N) — and reachability queries are a
// single bit test. Caches build lazily on the first packet sent at a given
// power scale (battery-aware runs use a handful of scales, everyone else
// exactly one). The original brute-force scans are kept as a debug
// reference behind Params::neighbor_cache=false; both paths enumerate
// candidates in ascending node order, so they consume the RNG identically
// and whole runs are bit-for-bit comparable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/frame.hpp"
#include "net/link_model.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {

class Radio;

/// Observer for global accounting; implemented by the stats collector.
class ChannelObserver {
 public:
  virtual ~ChannelObserver() = default;
  virtual void on_transmit(NodeId src, const Packet& pkt, sim::Time now) = 0;
  virtual void on_deliver(NodeId src, NodeId dst, const Packet& pkt, sim::Time now) = 0;
  virtual void on_collision(NodeId victim, sim::Time now) = 0;
};

class Channel {
 public:
  struct Params {
    double bitrate_bps = 19200.0;  // Mica-2 CC1000 radio
    /// Debug/reference switch: false reverts to the brute-force O(N)
    /// scans the neighbor cache replaces. Equivalence-tested against the
    /// cached path; keep it for diffing, never for production runs.
    bool neighbor_cache = true;
    /// Debug/reference switch: false reverts to brute-force delivery —
    /// every receiver gets its own deep copy of the packet, frame/payload
    /// pooling is off, and each transmission record is heap-allocated.
    /// Equivalence-tested bit-identical against the shared-frame path.
    bool zero_copy = true;
  };

  Channel(sim::Simulator& sim, const Topology& topo, const LinkModel& links,
          Params params);
  /// Default-parameter convenience overload.
  Channel(sim::Simulator& sim, const Topology& topo, const LinkModel& links);

  /// Radios register once at network construction; `radio` must outlive
  /// the channel's use.
  void register_radio(Radio& radio);

  void set_observer(ChannelObserver* observer) { observer_ = observer; }

  /// Registers the channel's telemetry (the chan.* names of DESIGN.md
  /// section 9) in `registry` and mirrors every statistic increment into
  /// it from now on. Handles are pre-registered here, so the per-packet
  /// cost is one branch plus array adds.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// Time on air for `pkt` at the configured bitrate.
  sim::Time airtime(const Packet& pkt) const;

  /// True if `listener` currently senses energy on the channel.
  bool carrier_busy(NodeId listener) const;

  /// Radio -> channel: `src` began transmitting the shared frame; the
  /// channel schedules delivery/corruption and will keep the medium busy
  /// for its airtime.
  void begin_transmission(NodeId src, FramePtr frame);
  /// Convenience overload: wraps `pkt` into a frame first.
  void begin_transmission(NodeId src, Packet pkt);

  /// Pool all outgoing frames (and their DataMsg payload buffers) are
  /// drawn from. Owned here because the channel is the one object every
  /// radio/MAC/node of a simulation shares.
  FramePool& frame_pool() { return pool_; }

  /// Radio -> channel: this node is no longer listening (turned off or
  /// started transmitting); it loses any packet currently in flight to it.
  void radio_stopped_listening(NodeId id);

  // --- statistics ----------------------------------------------------------
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t deliveries() const { return deliveries_; }
  /// Receiver-side packet corruptions due to overlap.
  std::uint64_t collisions() const { return collisions_; }
  /// Overlapping bulk-data sender pairs that shared a potential victim.
  std::uint64_t concurrent_bulk_overlaps() const { return bulk_overlaps_; }
  /// Distinct power scales whose neighbor sets have been materialized.
  std::size_t cached_power_scales() const { return scales_.size(); }
  /// Times the neighbor caches were discarded because the world changed
  /// under them (topology move or link-model revision bump).
  std::uint64_t cache_invalidations() const { return cache_invalidations_; }

 private:
  struct Active {
    NodeId src;
    FramePtr frame;                  // the one shared copy of the packet
    sim::Time start;
    sim::Time end;
    bool bulk;
    std::size_t index;               // position in active_, for swap-pop
    std::vector<NodeId> candidates;  // listening-at-start, interfered, ascending
    std::vector<double> success;     // decode probability, parallel to candidates
    std::vector<bool> corrupted;     // parallel to candidates

    const Packet& pkt() const { return *frame; }
  };

  /// Neighbor sets + per-edge decode success for one power scale.
  struct ScaleCache {
    double power_scale = 1.0;
    std::vector<std::vector<NodeId>> neighbors;  // ascending, per source
    std::vector<std::vector<double>> success;    // parallel to neighbors
    std::vector<std::uint64_t> reach_bits;       // n*n reachability bitset

    bool reaches(std::size_t n, NodeId src, NodeId dst) const {
      const std::size_t bit = static_cast<std::size_t>(src) * n + dst;
      return (reach_bits[bit >> 6] >> (bit & 63)) & 1u;
    }
  };

  const ScaleCache& cache_for(double power_scale) const;
  /// Fetches a transmission record, recycling a retired one when the
  /// scheduler has let go of it (its completion lambda holds a reference
  /// until it fires, so only use_count()==1 entries are reusable).
  std::shared_ptr<Active> acquire_active();
  void corrupt_candidate(Active& tx, std::size_t candidate_index);
  /// Marks `id` corrupted in `tx` if it is a candidate (binary search —
  /// candidate lists are ascending).
  void corrupt_listener(Active& tx, NodeId id);
  void end_transmission(const std::shared_ptr<Active>& tx);
  void unlink_active(const std::shared_ptr<Active>& tx);

  sim::Simulator& sim_;
  const Topology& topo_;
  const LinkModel& links_;
  Params params_;
  sim::Rng rng_;
  FramePool pool_;
  std::vector<Radio*> radios_;  // index = NodeId
  std::vector<std::shared_ptr<Active>> active_;
  std::vector<std::shared_ptr<Active>> retired_active_;  // reuse candidates
  // Lazily built, small (one entry per distinct power scale seen); mutable
  // so the const query paths can materialize a scale on first use.
  mutable std::vector<std::unique_ptr<ScaleCache>> scales_;
  // World epoch the caches were built at: any topology move or link-model
  // revision bump makes every cached neighbor set stale — mobility must
  // never silently use old reach bitsets.
  mutable std::uint64_t cache_topo_version_ = 0;
  mutable std::uint64_t cache_links_revision_ = 0;
  mutable std::uint64_t cache_invalidations_ = 0;
  ChannelObserver* observer_ = nullptr;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_tx_;
  obs::MetricsRegistry::Counter m_delivered_;
  obs::MetricsRegistry::Counter m_collisions_;
  obs::MetricsRegistry::Counter m_bulk_overlaps_;

  std::uint64_t transmissions_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t bulk_overlaps_ = 0;
};

}  // namespace mnp::net

// Shared wireless channel.
//
// Models what TOSSIM models, plus interference:
//  * per-directed-edge probabilistic decoding (LinkModel),
//  * receiver-side collisions — if two transmissions whose sources both
//    reach a listener overlap in time, the listener decodes neither; this
//    is exactly the mechanism behind the hidden terminal problem the
//    paper's sender selection is designed to avoid,
//  * carrier sense for the CSMA MAC (busy = any in-flight transmission
//    whose source interferes at the listener),
//  * a concurrent-bulk-sender monitor: counts pairs of overlapping code
//    transmissions that share a potential victim — the paper's "at most
//    one sender per neighborhood" claim, made measurable.
//
// A receiver must be listening when a packet *starts* (preamble) and keep
// listening until it ends; going off / transmitting mid-packet drops it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/link_model.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mnp::net {

class Radio;

/// Observer for global accounting; implemented by the stats collector.
class ChannelObserver {
 public:
  virtual ~ChannelObserver() = default;
  virtual void on_transmit(NodeId src, const Packet& pkt, sim::Time now) = 0;
  virtual void on_deliver(NodeId src, NodeId dst, const Packet& pkt, sim::Time now) = 0;
  virtual void on_collision(NodeId victim, sim::Time now) = 0;
};

class Channel {
 public:
  struct Params {
    double bitrate_bps = 19200.0;  // Mica-2 CC1000 radio
  };

  Channel(sim::Simulator& sim, const Topology& topo, const LinkModel& links,
          Params params);
  /// Default-parameter convenience overload.
  Channel(sim::Simulator& sim, const Topology& topo, const LinkModel& links);

  /// Radios register once at network construction; `radio` must outlive
  /// the channel's use.
  void register_radio(Radio& radio);

  void set_observer(ChannelObserver* observer) { observer_ = observer; }

  /// Time on air for `pkt` at the configured bitrate.
  sim::Time airtime(const Packet& pkt) const;

  /// True if `listener` currently senses energy on the channel.
  bool carrier_busy(NodeId listener) const;

  /// Radio -> channel: `src` began transmitting `pkt`; the channel
  /// schedules delivery/corruption and will keep the medium busy for
  /// airtime(pkt).
  void begin_transmission(NodeId src, Packet pkt);

  /// Radio -> channel: this node is no longer listening (turned off or
  /// started transmitting); it loses any packet currently in flight to it.
  void radio_stopped_listening(NodeId id);

  // --- statistics ----------------------------------------------------------
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t deliveries() const { return deliveries_; }
  /// Receiver-side packet corruptions due to overlap.
  std::uint64_t collisions() const { return collisions_; }
  /// Overlapping bulk-data sender pairs that shared a potential victim.
  std::uint64_t concurrent_bulk_overlaps() const { return bulk_overlaps_; }

 private:
  struct Active {
    NodeId src;
    Packet pkt;
    sim::Time start;
    sim::Time end;
    bool bulk;
    std::vector<NodeId> candidates;  // listening-at-start, interfered nodes
    std::vector<bool> corrupted;     // parallel to candidates
  };

  void end_transmission(const std::shared_ptr<Active>& tx);
  static void corrupt(Active& tx, std::size_t candidate_index);

  sim::Simulator& sim_;
  const Topology& topo_;
  const LinkModel& links_;
  Params params_;
  sim::Rng rng_;
  std::vector<Radio*> radios_;  // index = NodeId
  std::vector<std::shared_ptr<Active>> active_;
  ChannelObserver* observer_ = nullptr;

  std::uint64_t transmissions_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t bulk_overlaps_ = 0;
};

}  // namespace mnp::net

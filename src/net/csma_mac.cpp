#include "net/csma_mac.hpp"

#include <utility>

#include "net/channel.hpp"

namespace mnp::net {

CsmaMac::CsmaMac(Radio& radio, sim::Scheduler& scheduler, sim::Rng rng,
                 Params params)
    : radio_(radio), scheduler_(scheduler), rng_(std::move(rng)), params_(params) {
  radio_.set_send_done_handler([this] { transmission_finished(); });
}

CsmaMac::CsmaMac(Radio& radio, sim::Scheduler& scheduler, sim::Rng rng)
    : CsmaMac(radio, scheduler, std::move(rng), Params{}) {}

void CsmaMac::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  m_sent_ = registry.register_counter("mac.tx", obs::Unit::kCount, true);
  m_dropped_ =
      registry.register_counter("mac.dropped", obs::Unit::kCount, true);
  m_backoffs_ = registry.register_counter("mac.congestion_backoffs",
                                          obs::Unit::kCount, true);
}

bool CsmaMac::send(FramePtr frame) {
  if (!radio_.is_on()) {
    ++packets_dropped_;
    if (metrics_) metrics_->add(m_dropped_, radio_.id());
    return false;
  }
  if (queue_.size() >= params_.queue_capacity) {
    ++packets_dropped_;
    if (metrics_) metrics_->add(m_dropped_, radio_.id());
    return false;
  }
  queue_.push_back(std::move(frame));
  if (!in_flight_ && !backoff_.pending()) arm_backoff(/*congestion=*/false);
  return true;
}

bool CsmaMac::send(Packet pkt) {
  return send(radio_.channel().frame_pool().adopt(std::move(pkt)));
}

void CsmaMac::flush() {
  queue_.clear();
  backoff_.cancel();
  retries_ = 0;
}

void CsmaMac::arm_backoff(bool congestion) {
  const sim::Time lo = congestion ? params_.congestion_backoff_min
                                  : params_.initial_backoff_min;
  const sim::Time hi = congestion ? params_.congestion_backoff_max
                                  : params_.initial_backoff_max;
  const sim::Time delay = rng_.uniform_int(lo, hi);
  backoff_ = scheduler_.schedule_after(delay, [this] { backoff_expired(); });
}

void CsmaMac::backoff_expired() {
  if (queue_.empty()) return;
  if (!radio_.is_listening()) {
    // Radio went off (or is mid-transmission) while we were backing off;
    // drop everything — the protocol deliberately silenced this node.
    flush();
    return;
  }
  // Carrier sense through the radio's channel: ask via transmission
  // attempt only when clear.
  if (radio_.is_listening() && carrier_clear()) {
    retries_ = 0;
    FramePtr frame = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ = true;
    last_sent_ = frame;  // refcount bump, not a Packet copy
    if (!radio_.start_transmission(std::move(frame))) {
      in_flight_ = false;
      ++packets_dropped_;
      if (metrics_) metrics_->add(m_dropped_, radio_.id());
      if (!queue_.empty()) arm_backoff(false);
    }
    return;
  }
  ++congestion_backoffs_;
  if (metrics_) metrics_->add(m_backoffs_, radio_.id());
  ++retries_;
  if (params_.max_congestion_retries != 0 &&
      retries_ > params_.max_congestion_retries) {
    ++packets_dropped_;
    if (metrics_) metrics_->add(m_dropped_, radio_.id());
    queue_.pop_front();
    retries_ = 0;
    if (queue_.empty()) return;
  }
  arm_backoff(/*congestion=*/true);
}

bool CsmaMac::carrier_clear() const { return !radio_.senses_carrier(); }

void CsmaMac::transmission_finished() {
  if (!in_flight_) return;  // send-done for a transmission we didn't start
  in_flight_ = false;
  ++packets_sent_;
  if (metrics_) metrics_->add(m_sent_, radio_.id());
  if (send_done_) send_done_(*last_sent_);
  last_sent_.reset();
  if (!queue_.empty()) {
    scheduler_.post_after(params_.inter_packet_gap, [this] {
      if (!in_flight_ && !queue_.empty() && !backoff_.pending()) {
        arm_backoff(false);
      }
    });
  }
}

}  // namespace mnp::net

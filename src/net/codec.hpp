// Wire codec: byte-level encoding of every packet type.
//
// The simulator passes Packet values around directly (no marshalling on
// the hot path), but the on-air format is real: encode() produces the MAC
// frame a Mica-2 would transmit — header, typed payload, CRC — and
// decode() parses and validates it. wire_bytes() is defined as
// kFramingBytes-worth of physical overhead plus the payload encoding
// produced here, and the codec tests pin those sizes to the actual
// encoders so the airtime model can never drift from the format.
//
// Frame layout (little-endian):
//   [dest u16][src u16][type u8][payload bytes][crc16]
// The 8-byte preamble + 2-byte sync of kFramingBytes exist on air but
// carry no information, so they are not part of the byte vector.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace mnp::net {

/// Information-carrying frame bytes (excludes preamble/sync).
inline constexpr std::size_t kPhysicalOnlyBytes = 8 + 2;  // preamble + sync

/// Serializes `pkt` into a transmittable frame.
std::vector<std::uint8_t> encode(const Packet& pkt);

/// Parses a frame; returns std::nullopt on truncation, unknown type, or
/// CRC mismatch. power_scale is link metadata, not wire content, so the
/// decoded packet always carries the default 1.0. Span-style: callers
/// holding pooled or borrowed buffers decode in place, no vector needed.
std::optional<Packet> decode(const std::uint8_t* frame, std::size_t length);

/// Thin overload for vector-holding callers.
inline std::optional<Packet> decode(const std::vector<std::uint8_t>& frame) {
  return decode(frame.data(), frame.size());
}

/// CRC-16-CCITT used by the frame trailer.
std::uint16_t crc16(const std::uint8_t* data, std::size_t length);

}  // namespace mnp::net

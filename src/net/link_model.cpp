#include "net/link_model.hpp"

#include <algorithm>
#include <cmath>

namespace mnp::net {

DiskLinkModel::DiskLinkModel(const Topology& topo, double range_ft,
                             double interference_factor)
    : topo_(topo), range_(range_ft), interference_factor_(interference_factor) {}

double DiskLinkModel::packet_success(NodeId src, NodeId dst,
                                     double power_scale) const {
  if (src == dst) return 0.0;
  return topo_.node_distance(src, dst) <= range_ * power_scale ? 1.0 : 0.0;
}

bool DiskLinkModel::interferes(NodeId src, NodeId dst, double power_scale) const {
  if (src == dst) return false;
  return topo_.node_distance(src, dst) <=
         range_ * interference_factor_ * power_scale;
}

EmpiricalLinkModel::EmpiricalLinkModel(const Topology& topo, Params params,
                                       sim::Rng rng)
    : topo_(topo), params_(params), n_(topo.size()) {
  noise_.resize(n_ * n_, 0.0);
  for (std::size_t i = 0; i < n_ * n_; ++i) {
    // Each directed edge gets its own perturbation: links are asymmetric,
    // exactly as in TOSSIM's empirically derived graphs.
    noise_[i] = rng.normal(0.0, params_.edge_noise_stddev);
  }
}

double EmpiricalLinkModel::base_success(double u, const Params& params) {
  // u = distance / effective_range.
  //  - inside gray_start: near-perfect (0.98; real radios are never 1.0)
  //  - gray area: smooth quadratic fall-off to 0 at gray_end
  //  - beyond gray_end: 0
  if (u <= params.gray_start) return 0.98;
  if (u >= params.gray_end) return 0.0;
  const double t = (u - params.gray_start) / (params.gray_end - params.gray_start);
  return 0.98 * (1.0 - t) * (1.0 - t);
}

double EmpiricalLinkModel::edge_noise(NodeId src, NodeId dst) const {
  return noise_[static_cast<std::size_t>(src) * n_ + dst];
}

double EmpiricalLinkModel::packet_success(NodeId src, NodeId dst,
                                          double power_scale) const {
  if (src == dst || src >= n_ || dst >= n_) return 0.0;
  const double effective_range = params_.range_ft * power_scale;
  if (effective_range <= 0.0) return 0.0;
  const double u = topo_.node_distance(src, dst) / effective_range;
  const double base = base_success(u, params_);
  if (base <= 0.0) return 0.0;
  return std::clamp(base + edge_noise(src, dst), 0.0, 1.0);
}

bool EmpiricalLinkModel::interferes(NodeId src, NodeId dst,
                                    double power_scale) const {
  if (src == dst || src >= n_ || dst >= n_) return false;
  return topo_.node_distance(src, dst) <=
         params_.range_ft * params_.interference_factor * power_scale;
}

ShadowingLinkModel::ShadowingLinkModel(const Topology& topo, Params params,
                                       sim::Rng rng)
    : topo_(topo), params_(params), n_(topo.size()) {
  shadow_db_.resize(n_ * n_, 0.0);
  for (std::size_t i = 0; i < n_ * n_; ++i) {
    shadow_db_[i] = rng.normal(0.0, params_.shadowing_stddev_db);
    max_shadow_db_ = std::max(max_shadow_db_, shadow_db_[i]);
  }
}

double ShadowingLinkModel::max_interference_range(double power_scale) const {
  if (power_scale <= 0.0) return 0.0;
  // interferes() needs margin_db(d) + shadow > -interference_margin_db;
  // with shadow <= max_shadow_db_ that bounds d by
  // R * ps * 10^((interference_margin + max_shadow) / (10 n)).
  return params_.range_ft * power_scale *
         std::pow(10.0, (params_.interference_margin_db + max_shadow_db_) /
                            (10.0 * params_.path_loss_exponent));
}

double ShadowingLinkModel::margin_db(double distance_ft,
                                     double power_scale) const {
  if (distance_ft <= 0.0) distance_ft = 0.1;
  if (power_scale <= 0.0) return -1e9;
  // Power scaling moves the 0 dB distance proportionally: margin =
  // 10 * n * log10(range * power_scale / d).
  const double effective_range = params_.range_ft * power_scale;
  return 10.0 * params_.path_loss_exponent *
         std::log10(effective_range / distance_ft);
}

double ShadowingLinkModel::packet_success(NodeId src, NodeId dst,
                                          double power_scale) const {
  if (src == dst || src >= n_ || dst >= n_) return 0.0;
  const double margin =
      margin_db(topo_.node_distance(src, dst), power_scale) +
      shadow_db_[static_cast<std::size_t>(src) * n_ + dst];
  // Logistic transition around 0 dB margin.
  const double z = margin / params_.transition_width_db;
  const double p = 1.0 / (1.0 + std::exp(-z));
  // Clamp the far tail to a hard zero so candidate sets stay bounded.
  return p < 0.01 ? 0.0 : std::min(p, 0.99);
}

bool ShadowingLinkModel::interferes(NodeId src, NodeId dst,
                                    double power_scale) const {
  if (src == dst || src >= n_ || dst >= n_) return false;
  const double margin =
      margin_db(topo_.node_distance(src, dst), power_scale) +
      shadow_db_[static_cast<std::size_t>(src) * n_ + dst];
  return margin > -params_.interference_margin_db;
}

}  // namespace mnp::net

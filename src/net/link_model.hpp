// Link quality models.
//
// TOSSIM models the network as a directed graph whose edges carry
// independent bit-error probabilities sampled from empirical distance/
// loss data — crucially, links are *asymmetric*. EmpiricalLinkModel
// mirrors that: a deterministic distance-based success curve plus a
// per-directed-edge noise term sampled once at construction. DiskLinkModel
// is the idealized unit-disk used by analytic tests.
//
// `power_scale` scales the effective communication range at transmit time
// (radio power level knob; also used by the battery-aware extension).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mnp::net {

class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Probability that a packet from `src` (at `power_scale`) decodes at
  /// `dst`, absent collisions. In [0, 1].
  virtual double packet_success(NodeId src, NodeId dst, double power_scale) const = 0;

  /// True if a transmission from `src` raises energy above the carrier-
  /// sense / interference threshold at `dst`. Interference reaches farther
  /// than reliable decoding — that gap is what creates hidden terminals.
  virtual bool interferes(NodeId src, NodeId dst, double power_scale) const = 0;

  /// Monotone revision counter: bumped whenever the model's answers may
  /// have changed for reasons other than a topology move (e.g. a scenario
  /// decorator opening a partition window). Static models return 0; the
  /// Channel compares this against the value its neighbor caches were
  /// built at and rebuilds on mismatch.
  virtual std::uint64_t revision() const { return 0; }

  /// Upper bound, in feet, on the distance at which interferes() can be
  /// true at `power_scale` — the radius the Channel's spatial-grid index
  /// prunes neighbor queries with. Negative means "no finite bound": the
  /// grid falls back to linear scans (still incremental, just unpruned).
  virtual double max_interference_range(double power_scale) const {
    (void)power_scale;
    return -1.0;
  }

  /// Incremental-invalidation hint: appends to `out` every node whose
  /// links (in either direction) may answer differently now than at
  /// revision `since`. Returns false when the model cannot enumerate the
  /// change set — the caller must then treat every link as changed. The
  /// default covers static models (revision() stays 0, nothing changed).
  virtual bool changed_nodes_since(std::uint64_t since,
                                   std::vector<NodeId>& out) const {
    (void)out;
    return since == revision();
  }
};

/// Ideal unit-disk: perfect delivery within `range_ft`, nothing beyond.
class DiskLinkModel final : public LinkModel {
 public:
  DiskLinkModel(const Topology& topo, double range_ft,
                double interference_factor = 1.0);

  double packet_success(NodeId src, NodeId dst, double power_scale) const override;
  bool interferes(NodeId src, NodeId dst, double power_scale) const override;
  double max_interference_range(double power_scale) const override {
    return range_ * interference_factor_ * power_scale;
  }

 private:
  const Topology& topo_;
  double range_;
  double interference_factor_;
};

/// TOSSIM-like empirical model: deterministic distance curve with a "gray
/// area" between 0.5R and 1.1R, perturbed by per-directed-edge noise.
class EmpiricalLinkModel final : public LinkModel {
 public:
  struct Params {
    double range_ft = 25.0;           // nominal communication range
    double interference_factor = 1.6; // interference reach / decode reach
    double edge_noise_stddev = 0.08;  // per-edge success-probability jitter
    double gray_start = 0.5;          // d/R where quality starts degrading
    double gray_end = 1.1;            // d/R where success reaches ~0
  };

  EmpiricalLinkModel(const Topology& topo, Params params, sim::Rng rng);

  double packet_success(NodeId src, NodeId dst, double power_scale) const override;
  bool interferes(NodeId src, NodeId dst, double power_scale) const override;
  double max_interference_range(double power_scale) const override {
    return params_.range_ft * params_.interference_factor * power_scale;
  }

  /// The deterministic part of the curve, exposed for tests/plots.
  static double base_success(double distance_over_range, const Params& params);

 private:
  double edge_noise(NodeId src, NodeId dst) const;

  const Topology& topo_;
  Params params_;
  std::vector<double> noise_;  // size() x size(), row = src
  std::size_t n_;
};

/// Log-normal shadowing: the standard statistical radio model. Received
/// power follows path loss with exponent `path_loss_exponent` plus a
/// per-directed-edge Gaussian shadowing term (dB); a packet decodes when
/// the resulting SNR margin clears zero, mapped to a success probability
/// through a logistic transition. Compared with EmpiricalLinkModel this
/// produces longer-tailed link quality: occasional good long links and
/// bad short ones, as observed in real deployments.
class ShadowingLinkModel final : public LinkModel {
 public:
  struct Params {
    double range_ft = 25.0;            // distance of 0 dB margin at nominal power
    double path_loss_exponent = 3.0;   // outdoor ground deployments: 2.7-3.5
    double shadowing_stddev_db = 4.0;  // per-edge sigma
    double transition_width_db = 3.0;  // logistic softness around the margin
    double interference_margin_db = 8.0;  // extra reach of interference
  };

  ShadowingLinkModel(const Topology& topo, Params params, sim::Rng rng);

  double packet_success(NodeId src, NodeId dst, double power_scale) const override;
  bool interferes(NodeId src, NodeId dst, double power_scale) const override;
  /// Interference needs margin > -interference_margin_db even with the
  /// largest shadowing boost sampled at construction, which inverts to a
  /// finite distance bound.
  double max_interference_range(double power_scale) const override;

  /// Deterministic part: margin in dB at distance d for full power.
  double margin_db(double distance_ft, double power_scale) const;

 private:
  const Topology& topo_;
  Params params_;
  std::vector<double> shadow_db_;  // per directed edge
  double max_shadow_db_ = 0.0;     // largest sampled boost, for the bound
  std::size_t n_;
};

}  // namespace mnp::net

// Node placement. The paper's deployments are all regular grids (indoor
// classroom, grass field, and the TOSSIM simulations), so grids get a
// first-class builder; arbitrary placements are supported for tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace mnp::net {

struct Position {
  double x = 0.0;  // feet
  double y = 0.0;  // feet
};

inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::vector<Position> positions)
      : positions_(std::move(positions)) {}

  /// rows x cols grid with `spacing_ft` between adjacent nodes; node id
  /// r*cols + c sits at (c*spacing, r*spacing). All paper deployments use
  /// this layout with the base station at a corner.
  static Topology grid(std::size_t rows, std::size_t cols, double spacing_ft);

  std::size_t size() const { return positions_.size(); }
  const Position& position(NodeId id) const { return positions_.at(id); }
  double node_distance(NodeId a, NodeId b) const {
    return distance(position(a), position(b));
  }

  void add(Position p) { positions_.push_back(p); }

  /// Moves a node (scenario mobility). Bumps version() so consumers that
  /// cache anything derived from positions — notably the Channel's
  /// per-power-scale adjacency — can detect staleness and rebuild.
  void set_position(NodeId id, Position p) {
    positions_.at(id) = p;
    ++version_;
  }

  /// Monotone counter incremented on every position mutation. A topology
  /// that has never moved reports 0.
  std::uint64_t version() const { return version_; }

  /// Grid helpers (only meaningful for grid-built topologies).
  std::size_t grid_rows() const { return rows_; }
  std::size_t grid_cols() const { return cols_; }
  double grid_spacing() const { return spacing_; }
  bool is_grid() const { return rows_ > 0; }

 private:
  std::vector<Position> positions_;
  std::uint64_t version_ = 0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  double spacing_ = 0.0;
};

}  // namespace mnp::net

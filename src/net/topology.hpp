// Node placement. The paper's deployments are all regular grids (indoor
// classroom, grass field, and the TOSSIM simulations), so grids get a
// first-class builder; arbitrary placements are supported for tests.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace mnp::net {

struct Position {
  double x = 0.0;  // feet
  double y = 0.0;  // feet
};

inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

class Topology {
 public:
  /// One recorded position mutation: after applying it the topology was at
  /// `version`, node `node` having left `from` for `to`. Consumers that
  /// cache position-derived state (the Channel's spatial grid) replay these
  /// to repair incrementally instead of rebuilding from scratch.
  struct MoveRecord {
    std::uint64_t version = 0;
    NodeId node = 0;
    Position from;
    Position to;
  };

  Topology() = default;
  explicit Topology(std::vector<Position> positions)
      : positions_(std::move(positions)) {}

  /// rows x cols grid with `spacing_ft` between adjacent nodes; node id
  /// r*cols + c sits at (c*spacing, r*spacing). All paper deployments use
  /// this layout with the base station at a corner.
  static Topology grid(std::size_t rows, std::size_t cols, double spacing_ft);

  std::size_t size() const { return positions_.size(); }
  const Position& position(NodeId id) const { return positions_.at(id); }
  double node_distance(NodeId a, NodeId b) const {
    return distance(position(a), position(b));
  }

  void add(Position p) { positions_.push_back(p); }

  /// Moves a node (scenario mobility). Bumps version() so consumers that
  /// cache anything derived from positions — notably the Channel's
  /// per-power-scale adjacency — can detect staleness, and logs the move
  /// (bounded ring) so they can repair incrementally via moves_since().
  void set_position(NodeId id, Position p);

  /// Monotone counter incremented on every position mutation. A topology
  /// that has never moved reports 0.
  std::uint64_t version() const { return version_; }

  /// Appends every logged move with version > `since`, oldest first, to
  /// `out`. Returns false when the ring no longer reaches back to `since`
  /// (the consumer fell too far behind and must rebuild from scratch).
  bool moves_since(std::uint64_t since, std::vector<MoveRecord>& out) const;

  /// Grid helpers (only meaningful for grid-built topologies).
  std::size_t grid_rows() const { return rows_; }
  std::size_t grid_cols() const { return cols_; }
  double grid_spacing() const { return spacing_; }
  bool is_grid() const { return rows_ > 0; }

 private:
  /// Move-log depth. Mobility produces one entry per interpolation tick
  /// and the Channel drains the log on its next transmission, so the ring
  /// only needs to cover the moves between two packets — 4096 is orders of
  /// magnitude more than any scenario produces in that window.
  static constexpr std::size_t kMoveLogCapacity = 4096;

  std::vector<Position> positions_;
  std::vector<MoveRecord> move_log_;  // ring, slot = version % capacity
  std::uint64_t version_ = 0;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  double spacing_ = 0.0;
};

}  // namespace mnp::net

// Shared immutable frames: the zero-copy transmit/deliver hot path.
//
// Every transmission in this simulator is physically a broadcast overheard
// by O(neighbors) listeners, so the cost that matters is what we do *per
// neighbor*. A Frame wraps the transmitted Packet exactly once; the MAC
// queue, the channel's in-flight record and every receiver share that one
// immutable instance through FramePtr, an intrusively refcounted handle.
// Refcounts are plain integers, not atomics: a frame never leaves the
// simulation thread that created it (parallel sweeps give every seed its
// own Simulator, Channel and FramePool).
//
// The pool recycles two things in steady state:
//  * frame nodes — a released frame goes back on a free list instead of
//    the heap, so the millionth transmission allocates nothing;
//  * DataMsg-family payload buffers — segment streaming acquires its
//    payload vectors from the pool and the pool steals the capacity back
//    when the frame dies, so a 128-packet segment recycles a handful of
//    buffers instead of allocating 128 vectors per segment per hop.
//
// Ownership rules (see DESIGN.md section 7): a receiver may keep a copy of
// the FramePtr it was delivered for as long as it likes — the frame stays
// alive and immutable until the last reference drops. The pool's internal
// state is shared_ptr-owned by every live frame, so destruction order of
// Channel vs. MACs vs. application code cannot dangle a frame.
//
// `set_recycling(false)` turns the pool into a plain allocator (every
// frame and payload is a fresh heap object, released to the heap). That is
// the brute-force reference mode Channel::Params::zero_copy=false uses;
// equivalence tests pin it bit-identical to the pooled path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace mnp::net {

class FramePool;
class FramePtr;

namespace detail {

struct FramePoolState;

/// One pooled frame: the shared Packet plus its intrusive refcount. `home`
/// is non-null exactly while the frame is live (refs > 0) and keeps the
/// pool state alive so release is safe in any destruction order.
struct FrameNode {
  Packet pkt;
  std::uint32_t refs = 0;
  std::shared_ptr<FramePoolState> home;
};

struct FramePoolState {
  std::vector<FrameNode*> free_nodes;
  std::vector<std::vector<std::uint8_t>> free_payloads;
  bool recycle = true;

  // Introspection for tests/benches: steady state means node_allocs and
  // payload_allocs stop growing while frames keep flowing.
  std::uint64_t node_allocs = 0;
  std::uint64_t payload_allocs = 0;
  std::uint64_t live = 0;

  ~FramePoolState();
};

/// Drops one reference; on the last one, reclaims payload capacity and
/// either recycles or frees the node. Defined in frame.cpp.
void release_frame(FrameNode* node);

}  // namespace detail

/// Shared-ownership handle to an immutable in-flight Packet.
class FramePtr {
 public:
  FramePtr() = default;
  FramePtr(const FramePtr& other) : node_(other.node_) {
    if (node_) ++node_->refs;
  }
  FramePtr(FramePtr&& other) noexcept : node_(other.node_) {
    other.node_ = nullptr;
  }
  FramePtr& operator=(const FramePtr& other) {
    if (this != &other) {
      reset();
      node_ = other.node_;
      if (node_) ++node_->refs;
    }
    return *this;
  }
  FramePtr& operator=(FramePtr&& other) noexcept {
    if (this != &other) {
      reset();
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }
  ~FramePtr() { reset(); }

  const Packet& operator*() const { return node_->pkt; }
  const Packet* operator->() const { return &node_->pkt; }
  const Packet* get() const { return node_ ? &node_->pkt : nullptr; }
  explicit operator bool() const { return node_ != nullptr; }

  void reset() {
    if (node_ != nullptr) {
      detail::FrameNode* n = node_;
      node_ = nullptr;
      detail::release_frame(n);
    }
  }

  /// Current reference count (0 for an empty handle). Tests only.
  std::uint32_t use_count() const { return node_ ? node_->refs : 0; }

 private:
  friend class FramePool;
  explicit FramePtr(detail::FrameNode* node) : node_(node) {
    ++node_->refs;
  }

  detail::FrameNode* node_ = nullptr;
};

class FramePool {
 public:
  FramePool() : state_(std::make_shared<detail::FramePoolState>()) {}

  /// Wraps `pkt` into a shared frame, reusing a pooled node when one is
  /// available.
  [[nodiscard]] FramePtr adopt(Packet&& pkt);

  /// An empty byte buffer whose capacity was stolen from a dead frame's
  /// payload whenever possible. Fill it and move it into a DataMsg-family
  /// payload; the pool gets the capacity back when that frame dies.
  [[nodiscard]] std::vector<std::uint8_t> acquire_payload();

  /// false = plain allocator mode (the brute-force reference path): every
  /// adopt allocates, every release frees, nothing is recycled.
  void set_recycling(bool on) { state_->recycle = on; }
  bool recycling() const { return state_->recycle; }

  // --- introspection ------------------------------------------------------
  std::uint64_t node_allocations() const { return state_->node_allocs; }
  std::uint64_t payload_allocations() const { return state_->payload_allocs; }
  std::uint64_t live_frames() const { return state_->live; }
  std::size_t pooled_nodes() const { return state_->free_nodes.size(); }
  std::size_t pooled_payloads() const { return state_->free_payloads.size(); }

 private:
  std::shared_ptr<detail::FramePoolState> state_;
};

}  // namespace mnp::net

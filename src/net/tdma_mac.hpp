// SS-TDMA-style slotted MAC for grid deployments (Kulkarni & Arumugam,
// "SS-TDMA: a self-stabilizing MAC for sensor networks" — reference [9]
// of the paper, proposed in its conclusion as MNP's companion MAC).
//
// Slot assignment is the classic grid tiling: a node at (row, col) owns
// slot (row % m) * m + (col % m) of an m^2-slot frame. Two nodes sharing a
// slot are at least m grid cells apart on some axis; choosing m such that
//   m * spacing > 2 * interference_range
// guarantees no listener can be reached by two same-slot transmitters, so
// transmissions are collision-free by construction. (The original
// protocol reaches this assignment by self-stabilization; we compute it
// directly — the steady state is identical.)
//
// A node transmits only in its own slot; between its slots it may keep
// the radio off (the energy property the paper wants from TDMA). The MAC
// wakes the radio for its slot if the protocol left it on-duty.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/mac.hpp"
#include "net/radio.hpp"
#include "sim/scheduler.hpp"

namespace mnp::net {

class TdmaMac final : public Mac {
 public:
  struct Params {
    /// Slot length; must cover the longest packet's airtime plus guard.
    sim::Time slot_duration = sim::msec(30);
    /// Frame length in slots (m^2 for an m-tiling). Computed by
    /// `frame_slots_for_grid` in normal use.
    std::uint32_t frame_slots = 9;
    /// This node's slot within the frame.
    std::uint32_t my_slot = 0;
    std::size_t queue_capacity = 24;
  };

  /// Tiling parameter m for a grid: smallest m whose same-slot spacing
  /// m * spacing exceeds interference + communication reach.
  static std::uint32_t tile_for_grid(double spacing_ft, double range_ft,
                                     double interference_factor);
  /// Slot of grid node (row, col) under an m-tiling.
  static std::uint32_t slot_for(std::size_t row, std::size_t col, std::uint32_t m);

  TdmaMac(Radio& radio, sim::Scheduler& scheduler, Params params);

  bool send(FramePtr frame) override;
  bool send(Packet pkt) override;
  void flush() override;
  /// Registers mac.* counters (per-node, keyed by this MAC's radio id) and
  /// mirrors the statistics below into `registry` from now on.
  void attach_metrics(obs::MetricsRegistry& registry) override;
  std::size_t queue_depth() const override { return queue_.size(); }
  bool idle() const override { return queue_.empty() && !in_flight_; }
  std::uint64_t packets_sent() const override { return packets_sent_; }
  std::uint64_t packets_dropped() const override { return packets_dropped_; }
  void set_send_done(std::function<void(const Packet&)> cb) override {
    send_done_ = std::move(cb);
  }

  std::uint32_t my_slot() const { return params_.my_slot; }
  sim::Time frame_duration() const {
    return params_.slot_duration * params_.frame_slots;
  }

 private:
  void arm_next_slot();
  void slot_fired();
  void transmission_finished();

  Radio& radio_;
  sim::Scheduler& scheduler_;
  Params params_;
  std::deque<FramePtr> queue_;
  FramePtr last_sent_;
  sim::EventHandle slot_timer_;
  bool in_flight_ = false;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_dropped_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_sent_;
  obs::MetricsRegistry::Counter m_dropped_;
  std::function<void(const Packet&)> send_done_;
};

}  // namespace mnp::net

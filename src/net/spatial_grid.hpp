// SpatialGrid: a spatial-hash index over node positions, the structure
// behind the Channel's O(neighbors) cache rebuilds (DESIGN.md section 11).
//
// Positions are bucketed into square cells keyed by integer coordinates;
// a radius query visits only the cell rectangle covering the disc, so for
// cells sized to the interference radius a neighbor-set rebuild touches a
// handful of cells instead of all N nodes. The cell table is a custom
// open-addressing hash map (power-of-two slots, linear probing) rather
// than std::unordered_map: behaviour must be bit-for-bit deterministic
// and the repo's determinism lint bans the std hash containers outright.
// Query results are unordered — callers that need the repo's canonical
// ascending-NodeId enumeration sort what they collect.
//
// The grid owns a struct-of-arrays snapshot of positions (xs_/ys_), kept
// in sync via move(); radius queries and dirty-neighborhood marking read
// the snapshot linearly instead of chasing Topology references.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace mnp::net {

class SpatialGrid {
 public:
  SpatialGrid() = default;

  /// (Re)buckets every node of `topo` into cells of `cell_size_ft`.
  void build(const Topology& topo, double cell_size_ft);

  /// Discards the index; valid() turns false until the next build().
  void reset();
  bool valid() const { return cell_size_ > 0.0; }
  double cell_size() const { return cell_size_; }

  double x(NodeId id) const { return xs_[id]; }
  double y(NodeId id) const { return ys_[id]; }

  /// Moves one node: snapshot update plus bucket transfer. O(occupancy of
  /// the old cell) — cells hold a handful of nodes by construction.
  void move(NodeId id, Position to);

  /// Invokes `fn(NodeId)` for every node whose cell intersects the square
  /// circumscribing the disc at (x, y) with `radius` — a superset of the
  /// disc, in unspecified order. Callers filter by their real predicate.
  template <typename Fn>
  void for_each_near(double qx, double qy, double radius, Fn&& fn) const {
    const std::int32_t cx0 = cell_coord(qx - radius);
    const std::int32_t cx1 = cell_coord(qx + radius);
    const std::int32_t cy0 = cell_coord(qy - radius);
    const std::int32_t cy1 = cell_coord(qy + radius);
    for (std::int32_t cy = cy0; cy <= cy1; ++cy) {
      for (std::int32_t cx = cx0; cx <= cx1; ++cx) {
        const std::uint32_t cell = find_cell(pack(cx, cy));
        if (cell == kNoCell) continue;
        for (const NodeId id : cells_[cell].members) fn(id);
      }
    }
  }

  // --- occupancy statistics (chan.grid_* gauges) ---------------------------
  std::size_t cell_count() const { return cells_.size(); }
  /// High-water mark of nodes sharing one cell since the last build().
  std::size_t max_occupancy() const { return max_occupancy_; }

 private:
  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

  struct Cell {
    std::uint64_t key = 0;
    std::vector<NodeId> members;
  };

  std::int32_t cell_coord(double v) const;
  static std::uint64_t pack(std::int32_t cx, std::int32_t cy);
  static std::uint64_t mix(std::uint64_t key);
  std::uint32_t find_cell(std::uint64_t key) const;
  std::uint32_t find_or_create_cell(std::uint64_t key);
  void insert_slot(std::uint64_t key, std::uint32_t cell_index);
  void grow_slots();

  std::vector<double> xs_;  // SoA position snapshot, index = NodeId
  std::vector<double> ys_;
  std::vector<std::uint32_t> cell_of_;  // node -> index into cells_
  std::vector<Cell> cells_;
  // Open addressing: slot holds cell_index + 1, 0 = empty. Cells are never
  // removed (an emptied cell stays allocated), so no tombstones needed.
  std::vector<std::uint32_t> slots_;
  std::uint64_t slot_mask_ = 0;
  double cell_size_ = 0.0;
  std::size_t max_occupancy_ = 0;
};

}  // namespace mnp::net

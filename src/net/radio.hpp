// Half-duplex packet radio of a single mote (CC1000-class, 19.2 kbps).
//
// States: Off, Listening, Transmitting. Turning the radio off is MNP's
// central energy lever — the EnergyMeter integrates the time spent in any
// non-Off state as "active radio time", the paper's headline metric.
// Reception is delegated to the Channel, which models per-edge loss,
// collisions and carrier sense; the radio only owns its state machine.
#pragma once

#include <functional>

#include "energy/energy_meter.hpp"
#include "net/frame.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace mnp::net {

class Channel;

class Radio {
 public:
  enum class State { kOff, kListening, kTransmitting };

  using ReceiveHandler = std::function<void(const Packet&)>;
  using SendDoneHandler = std::function<void()>;
  /// Observability hook: fired on every real off<->on transition (the
  /// exact moments the EnergyMeter integrates), so the trace exporter's
  /// radio track and energy counter samples line up with Fig. 8's metric.
  using StateListener = std::function<void(bool on, sim::Time now)>;

  Radio(NodeId id, sim::Scheduler& scheduler, Channel& channel,
        energy::EnergyMeter& meter);

  NodeId id() const { return id_; }
  State state() const { return state_; }
  bool is_on() const { return state_ != State::kOff; }
  bool is_listening() const { return state_ == State::kListening; }

  /// Invoked with every successfully decoded packet.
  void set_receive_handler(ReceiveHandler handler) { on_receive_ = std::move(handler); }
  /// Invoked when a transmission completes (the radio is Listening again).
  void set_send_done_handler(SendDoneHandler handler) { on_send_done_ = std::move(handler); }
  /// Null disables (the default) — the hot path pays one branch.
  void set_state_listener(StateListener listener) { on_state_ = std::move(listener); }

  void turn_on();
  /// Turns the radio off. If a transmission is in flight the shutdown is
  /// deferred until the transmission completes.
  void turn_off();

  /// Starts transmitting the shared frame immediately (no carrier sense
  /// here — that is the MAC's job). Returns false if the radio is off or
  /// already transmitting. The packet occupies the channel for its airtime.
  bool start_transmission(FramePtr frame);
  /// Convenience overload: wraps `pkt` into a frame via the channel pool.
  bool start_transmission(Packet pkt);

  /// Channel -> radio: a packet decoded successfully at this node.
  void deliver(const Packet& pkt);

  /// Carrier sense: true if the channel has energy audible at this node.
  bool senses_carrier() const;

  energy::EnergyMeter& meter() { return meter_; }
  Channel& channel() { return channel_; }

 private:
  void finish_transmission();

  NodeId id_;
  sim::Scheduler& scheduler_;
  Channel& channel_;
  energy::EnergyMeter& meter_;
  State state_ = State::kOff;
  bool off_pending_ = false;
  ReceiveHandler on_receive_;
  SendDoneHandler on_send_done_;
  StateListener on_state_;
};

}  // namespace mnp::net

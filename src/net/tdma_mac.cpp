#include "net/tdma_mac.hpp"

#include <cmath>
#include <utility>

#include "net/channel.hpp"

namespace mnp::net {

std::uint32_t TdmaMac::tile_for_grid(double spacing_ft, double range_ft,
                                     double interference_factor) {
  if (spacing_ft <= 0.0) return 2;
  // A listener hears a transmitter within range*interference_factor, so a
  // listener midway between two same-slot transmitters is deaf to neither
  // unless their separation strictly exceeds twice that reach.
  const double reach = 2.0 * range_ft * interference_factor;
  const auto m = static_cast<std::uint32_t>(std::floor(reach / spacing_ft)) + 1;
  return m < 2 ? 2 : m;
}

std::uint32_t TdmaMac::slot_for(std::size_t row, std::size_t col,
                                std::uint32_t m) {
  return static_cast<std::uint32_t>((row % m) * m + (col % m));
}

TdmaMac::TdmaMac(Radio& radio, sim::Scheduler& scheduler, Params params)
    : radio_(radio), scheduler_(scheduler), params_(params) {
  if (params_.frame_slots == 0) params_.frame_slots = 1;
  params_.my_slot %= params_.frame_slots;
  radio_.set_send_done_handler([this] { transmission_finished(); });
}

void TdmaMac::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  m_sent_ = registry.register_counter("mac.tx", obs::Unit::kCount, true);
  m_dropped_ =
      registry.register_counter("mac.dropped", obs::Unit::kCount, true);
}

bool TdmaMac::send(FramePtr frame) {
  if (!radio_.is_on()) {
    ++packets_dropped_;
    if (metrics_) metrics_->add(m_dropped_, radio_.id());
    return false;
  }
  if (queue_.size() >= params_.queue_capacity) {
    ++packets_dropped_;
    if (metrics_) metrics_->add(m_dropped_, radio_.id());
    return false;
  }
  queue_.push_back(std::move(frame));
  if (!slot_timer_.pending()) arm_next_slot();
  return true;
}

bool TdmaMac::send(Packet pkt) {
  return send(radio_.channel().frame_pool().adopt(std::move(pkt)));
}

void TdmaMac::flush() {
  queue_.clear();
  slot_timer_.cancel();
}

void TdmaMac::arm_next_slot() {
  // Delay until the start of our next owned slot (frame-aligned to the
  // global clock; in SS-TDMA this alignment comes from the shared slotted
  // timeline that self-stabilization establishes).
  const sim::Time now = scheduler_.now();
  const sim::Time frame = frame_duration();
  const sim::Time slot_start =
      static_cast<sim::Time>(params_.my_slot) * params_.slot_duration;
  const sim::Time into_frame = now % frame;
  sim::Time wait = slot_start - into_frame;
  if (wait <= 0) wait += frame;
  slot_timer_ = scheduler_.schedule_after(wait, [this] { slot_fired(); });
}

void TdmaMac::slot_fired() {
  if (queue_.empty()) return;
  if (!radio_.is_listening()) {
    // The protocol turned the radio off after queueing (e.g. went to
    // sleep); drop the silenced traffic like the CSMA MAC does.
    flush();
    return;
  }
  FramePtr frame = std::move(queue_.front());
  queue_.pop_front();
  last_sent_ = frame;  // refcount bump, not a Packet copy
  in_flight_ = true;
  if (!radio_.start_transmission(std::move(frame))) {
    in_flight_ = false;
    ++packets_dropped_;
    if (metrics_) metrics_->add(m_dropped_, radio_.id());
  }
  if (!queue_.empty()) arm_next_slot();
}

void TdmaMac::transmission_finished() {
  if (!in_flight_) return;
  in_flight_ = false;
  ++packets_sent_;
  if (metrics_) metrics_->add(m_sent_, radio_.id());
  if (send_done_) send_done_(*last_sent_);
  last_sent_.reset();
  if (!queue_.empty() && !slot_timer_.pending()) arm_next_slot();
}

}  // namespace mnp::net

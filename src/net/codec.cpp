#include "net/codec.hpp"

#include <cstring>

namespace mnp::net {

namespace {

// --- primitive writers/readers ---------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void bytes(const std::uint8_t* data, std::size_t n) {
    out_.insert(out_.end(), data, data + n);
  }
  void bitmap(const util::Bitmap& b) {
    const auto raw = b.to_bytes();
    u8(static_cast<std::uint8_t>(b.size()));
    bytes(raw.data(), util::Bitmap::kMaxBytes);
  }
  std::vector<std::uint8_t>& out() { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t length)
      : data_(data), size_(length) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = data_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (pos_ + 2 > size_) return false;
    v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t lo = 0, hi = 0;
    if (!u16(lo) || !u16(hi)) return false;
    v = static_cast<std::uint32_t>(lo) | (static_cast<std::uint32_t>(hi) << 16);
    return true;
  }
  bool take(std::size_t n, std::vector<std::uint8_t>& out) {
    if (pos_ + n > size_) return false;
    out.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return true;
  }
  bool bitmap(util::Bitmap& b) {
    std::uint8_t size = 0;
    if (!u8(size)) return false;
    std::array<std::uint8_t, util::Bitmap::kMaxBytes> raw{};
    if (pos_ + raw.size() > size_) return false;
    std::memcpy(raw.data(), data_ + pos_, raw.size());
    pos_ += raw.size();
    b = util::Bitmap::from_bytes(raw, size);
    return true;
  }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- payload encoders -------------------------------------------------------

struct EncodeVisitor {
  Writer& w;

  void operator()(const AdvertisementMsg& m) const {
    w.u16(m.program_id);
    w.u32(m.program_bytes);
    w.u16(m.program_segments);
    w.u16(m.seg_id);
    w.u8(m.req_ctr);
  }
  void operator()(const DownloadRequestMsg& m) const {
    w.u16(m.dest);
    w.u16(m.program_id);
    w.u16(m.seg_id);
    w.u8(m.req_ctr_echo);
    w.u16(m.window_base);
    w.u8(m.request_all ? 1 : 0);
    w.bitmap(m.missing);
  }
  void operator()(const StartDownloadMsg& m) const {
    w.u16(m.program_id);
    w.u16(m.seg_id);
    w.u16(m.packet_count);
  }
  void operator()(const DataMsg& m) const {
    w.u16(m.program_id);
    w.u16(m.seg_id);
    w.u16(m.pkt_id);
    w.u8(static_cast<std::uint8_t>(m.payload.size()));
    w.bytes(m.payload.data(), m.payload.size());
  }
  void operator()(const EndDownloadMsg& m) const { w.u16(m.seg_id); }
  void operator()(const QueryMsg& m) const { w.u16(m.seg_id); }
  void operator()(const RepairRequestMsg& m) const {
    w.u16(m.dest);
    w.u16(m.seg_id);
    w.u16(m.pkt_id);
  }
  void operator()(const DelugeSummaryMsg& m) const {
    w.u16(m.version);
    w.u16(m.total_pages);
    w.u16(m.complete_pages);
    w.u32(m.program_bytes);
  }
  void operator()(const DelugeRequestMsg& m) const {
    w.u16(m.dest);
    w.u16(m.page);
    w.bitmap(m.missing);
  }
  void operator()(const DelugeDataMsg& m) const {
    w.u16(m.version);
    w.u16(m.page);
    w.u8(m.pkt_id);
    w.u8(static_cast<std::uint8_t>(m.payload.size()));
    w.bytes(m.payload.data(), m.payload.size());
  }
  void operator()(const MoapPublishMsg& m) const {
    w.u16(m.version);
    w.u16(m.total_packets);
    w.u32(m.program_bytes);
  }
  void operator()(const MoapSubscribeMsg& m) const { w.u16(m.dest); }
  void operator()(const MoapDataMsg& m) const {
    w.u16(m.version);
    w.u16(m.pkt_id);
    w.u8(static_cast<std::uint8_t>(m.payload.size()));
    w.bytes(m.payload.data(), m.payload.size());
  }
  void operator()(const MoapNackMsg& m) const {
    w.u16(m.dest);
    w.u16(m.pkt_id);
  }
  void operator()(const XnpDataMsg& m) const {
    w.u16(m.pkt_id);
    w.u16(m.total_packets);
    w.u8(static_cast<std::uint8_t>(m.payload.size()));
    w.bytes(m.payload.data(), m.payload.size());
  }
  void operator()(const XnpQueryMsg& m) const { w.u16(m.total_packets); }
  void operator()(const XnpFixRequestMsg& m) const { w.u16(m.pkt_id); }
  void operator()(const NcastAdvMsg& m) const {
    w.u16(m.program_id);
    w.u32(m.program_bytes);
    w.u16(m.total_gens);
    w.u16(m.complete_gens);
    w.u8(m.gen_size);
    w.u8(m.cur_rank);
  }
  void operator()(const NcastReqMsg& m) const {
    w.u16(m.dest);
    w.u16(m.gen);
    w.u8(m.rank);
  }
  void operator()(const NcastCodedMsg& m) const {
    w.u16(m.gen);
    w.u16(m.coeff_seed);
    w.u8(static_cast<std::uint8_t>(m.payload.size()));
    w.bytes(m.payload.data(), m.payload.size());
  }
};

// --- payload decoders -------------------------------------------------------

bool decode_payload(PacketType type, Reader& r, Payload& out) {
  switch (type) {
    case PacketType::kAdvertisement: {
      AdvertisementMsg m;
      if (!r.u16(m.program_id) || !r.u32(m.program_bytes) ||
          !r.u16(m.program_segments) || !r.u16(m.seg_id) || !r.u8(m.req_ctr)) {
        return false;
      }
      out = m;
      return true;
    }
    case PacketType::kDownloadRequest: {
      DownloadRequestMsg m;
      std::uint8_t all = 0;
      if (!r.u16(m.dest) || !r.u16(m.program_id) || !r.u16(m.seg_id) ||
          !r.u8(m.req_ctr_echo) || !r.u16(m.window_base) || !r.u8(all) ||
          !r.bitmap(m.missing)) {
        return false;
      }
      m.request_all = all != 0;
      out = m;
      return true;
    }
    case PacketType::kStartDownload: {
      StartDownloadMsg m;
      if (!r.u16(m.program_id) || !r.u16(m.seg_id) || !r.u16(m.packet_count)) {
        return false;
      }
      out = m;
      return true;
    }
    case PacketType::kData: {
      DataMsg m;
      std::uint8_t len = 0;
      if (!r.u16(m.program_id) || !r.u16(m.seg_id) || !r.u16(m.pkt_id) ||
          !r.u8(len) || !r.take(len, m.payload)) {
        return false;
      }
      out = std::move(m);
      return true;
    }
    case PacketType::kEndDownload: {
      EndDownloadMsg m;
      if (!r.u16(m.seg_id)) return false;
      out = m;
      return true;
    }
    case PacketType::kQuery: {
      QueryMsg m;
      if (!r.u16(m.seg_id)) return false;
      out = m;
      return true;
    }
    case PacketType::kRepairRequest: {
      RepairRequestMsg m;
      if (!r.u16(m.dest) || !r.u16(m.seg_id) || !r.u16(m.pkt_id)) return false;
      out = m;
      return true;
    }
    case PacketType::kDelugeSummary: {
      DelugeSummaryMsg m;
      if (!r.u16(m.version) || !r.u16(m.total_pages) ||
          !r.u16(m.complete_pages) || !r.u32(m.program_bytes)) {
        return false;
      }
      out = m;
      return true;
    }
    case PacketType::kDelugeRequest: {
      DelugeRequestMsg m;
      if (!r.u16(m.dest) || !r.u16(m.page) || !r.bitmap(m.missing)) {
        return false;
      }
      out = m;
      return true;
    }
    case PacketType::kDelugeData: {
      DelugeDataMsg m;
      std::uint8_t len = 0;
      if (!r.u16(m.version) || !r.u16(m.page) || !r.u8(m.pkt_id) ||
          !r.u8(len) || !r.take(len, m.payload)) {
        return false;
      }
      out = std::move(m);
      return true;
    }
    case PacketType::kMoapPublish: {
      MoapPublishMsg m;
      if (!r.u16(m.version) || !r.u16(m.total_packets) ||
          !r.u32(m.program_bytes)) {
        return false;
      }
      out = m;
      return true;
    }
    case PacketType::kMoapSubscribe: {
      MoapSubscribeMsg m;
      if (!r.u16(m.dest)) return false;
      out = m;
      return true;
    }
    case PacketType::kMoapData: {
      MoapDataMsg m;
      std::uint8_t len = 0;
      if (!r.u16(m.version) || !r.u16(m.pkt_id) || !r.u8(len) ||
          !r.take(len, m.payload)) {
        return false;
      }
      out = std::move(m);
      return true;
    }
    case PacketType::kMoapNack: {
      MoapNackMsg m;
      if (!r.u16(m.dest) || !r.u16(m.pkt_id)) return false;
      out = m;
      return true;
    }
    case PacketType::kXnpData: {
      XnpDataMsg m;
      std::uint8_t len = 0;
      if (!r.u16(m.pkt_id) || !r.u16(m.total_packets) || !r.u8(len) ||
          !r.take(len, m.payload)) {
        return false;
      }
      out = std::move(m);
      return true;
    }
    case PacketType::kXnpQuery: {
      XnpQueryMsg m;
      if (!r.u16(m.total_packets)) return false;
      out = m;
      return true;
    }
    case PacketType::kXnpFixRequest: {
      XnpFixRequestMsg m;
      if (!r.u16(m.pkt_id)) return false;
      out = m;
      return true;
    }
    case PacketType::kNcastAdv: {
      NcastAdvMsg m;
      if (!r.u16(m.program_id) || !r.u32(m.program_bytes) ||
          !r.u16(m.total_gens) || !r.u16(m.complete_gens) ||
          !r.u8(m.gen_size) || !r.u8(m.cur_rank)) {
        return false;
      }
      out = m;
      return true;
    }
    case PacketType::kNcastRequest: {
      NcastReqMsg m;
      if (!r.u16(m.dest) || !r.u16(m.gen) || !r.u8(m.rank)) return false;
      out = m;
      return true;
    }
    case PacketType::kNcastCoded: {
      NcastCodedMsg m;
      std::uint8_t len = 0;
      if (!r.u16(m.gen) || !r.u16(m.coeff_seed) || !r.u8(len) ||
          !r.take(len, m.payload)) {
        return false;
      }
      out = std::move(m);
      return true;
    }
  }
  return false;
}

}  // namespace

std::uint16_t crc16(const std::uint8_t* data, std::size_t length) {
  // CRC-16-CCITT (0x1021), init 0xFFFF.
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < length; ++i) {
    crc = static_cast<std::uint16_t>(crc ^ (static_cast<std::uint16_t>(data[i]) << 8));
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000u)
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::vector<std::uint8_t> encode(const Packet& pkt) {
  Writer w;
  w.u16(pkt.logical_dest());
  w.u16(pkt.src);
  w.u8(static_cast<std::uint8_t>(pkt.type()));
  std::visit(EncodeVisitor{w}, pkt.payload);
  const std::uint16_t crc = crc16(w.out().data(), w.out().size());
  w.u16(crc);
  return std::move(w.out());
}

std::optional<Packet> decode(const std::uint8_t* frame, std::size_t length) {
  if (length < 2 + 2 + 1 + 2) return std::nullopt;
  const std::uint16_t expected = static_cast<std::uint16_t>(
      frame[length - 2] | (frame[length - 1] << 8));
  if (crc16(frame, length - 2) != expected) return std::nullopt;

  // Parse the body in place (everything before the CRC trailer).
  Reader r(frame, length - 2);
  std::uint16_t dest = 0, src = 0;
  std::uint8_t type_raw = 0;
  if (!r.u16(dest) || !r.u16(src) || !r.u8(type_raw)) return std::nullopt;
  if (type_raw > static_cast<std::uint8_t>(PacketType::kNcastCoded)) {
    return std::nullopt;
  }
  Packet pkt;
  pkt.src = src;
  if (!decode_payload(static_cast<PacketType>(type_raw), r, pkt.payload)) {
    return std::nullopt;
  }
  if (r.remaining() != 0) return std::nullopt;  // trailing garbage
  // `dest` is redundant with the payload's own dest field (when present);
  // nothing further to restore.
  return pkt;
}

}  // namespace mnp::net

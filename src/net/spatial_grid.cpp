#include "net/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

namespace mnp::net {

std::int32_t SpatialGrid::cell_coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_size_));
}

std::uint64_t SpatialGrid::pack(std::int32_t cx, std::int32_t cy) {
  // Two offset-binary 32-bit halves; collision-free over the full plane.
  const std::uint64_t ux =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(cx) + 0x80000000LL);
  const std::uint64_t uy =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(cy) + 0x80000000LL);
  return (ux << 32) | uy;
}

std::uint64_t SpatialGrid::mix(std::uint64_t key) {
  // splitmix64 finalizer: spreads adjacent cell coordinates across slots.
  key += 0x9E3779B97F4A7C15ULL;
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ULL;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBULL;
  return key ^ (key >> 31);
}

std::uint32_t SpatialGrid::find_cell(std::uint64_t key) const {
  if (slots_.empty()) return kNoCell;
  std::uint64_t slot = mix(key) & slot_mask_;
  while (true) {
    const std::uint32_t entry = slots_[slot];
    if (entry == 0) return kNoCell;
    const std::uint32_t cell = entry - 1;
    if (cells_[cell].key == key) return cell;
    slot = (slot + 1) & slot_mask_;
  }
}

void SpatialGrid::insert_slot(std::uint64_t key, std::uint32_t cell_index) {
  std::uint64_t slot = mix(key) & slot_mask_;
  while (slots_[slot] != 0) slot = (slot + 1) & slot_mask_;
  slots_[slot] = cell_index + 1;
}

void SpatialGrid::grow_slots() {
  const std::size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
  slots_.assign(capacity, 0);
  slot_mask_ = capacity - 1;
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    insert_slot(cells_[i].key, i);
  }
}

std::uint32_t SpatialGrid::find_or_create_cell(std::uint64_t key) {
  const std::uint32_t existing = find_cell(key);
  if (existing != kNoCell) return existing;
  // Keep load below 1/2 so linear probes stay short.
  if ((cells_.size() + 1) * 2 > slots_.size()) grow_slots();
  cells_.push_back(Cell{key, {}});
  const auto index = static_cast<std::uint32_t>(cells_.size() - 1);
  insert_slot(key, index);
  return index;
}

void SpatialGrid::build(const Topology& topo, double cell_size_ft) {
  reset();
  cell_size_ = cell_size_ft;
  const std::size_t n = topo.size();
  xs_.resize(n);
  ys_.resize(n);
  cell_of_.assign(n, kNoCell);
  for (std::size_t i = 0; i < n; ++i) {
    const Position& p = topo.position(static_cast<NodeId>(i));
    xs_[i] = p.x;
    ys_[i] = p.y;
    const std::uint32_t cell =
        find_or_create_cell(pack(cell_coord(p.x), cell_coord(p.y)));
    cells_[cell].members.push_back(static_cast<NodeId>(i));
    cell_of_[i] = cell;
    max_occupancy_ = std::max(max_occupancy_, cells_[cell].members.size());
  }
}

void SpatialGrid::reset() {
  xs_.clear();
  ys_.clear();
  cell_of_.clear();
  cells_.clear();
  slots_.clear();
  slot_mask_ = 0;
  cell_size_ = 0.0;
  max_occupancy_ = 0;
}

void SpatialGrid::move(NodeId id, Position to) {
  const std::uint64_t new_key = pack(cell_coord(to.x), cell_coord(to.y));
  xs_[id] = to.x;
  ys_[id] = to.y;
  const std::uint32_t old_cell = cell_of_[id];
  if (cells_[old_cell].key == new_key) return;  // same bucket, cheap case
  std::vector<NodeId>& old_members = cells_[old_cell].members;
  old_members.erase(std::find(old_members.begin(), old_members.end(), id));
  const std::uint32_t new_cell = find_or_create_cell(new_key);
  cells_[new_cell].members.push_back(id);
  cell_of_[id] = new_cell;
  max_occupancy_ = std::max(max_occupancy_, cells_[new_cell].members.size());
}

}  // namespace mnp::net

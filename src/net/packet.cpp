#include "net/packet.hpp"

namespace mnp::net {

const char* type_name(PacketType type) {
  switch (type) {
    case PacketType::kAdvertisement: return "Advertisement";
    case PacketType::kDownloadRequest: return "DownloadRequest";
    case PacketType::kStartDownload: return "StartDownload";
    case PacketType::kData: return "Data";
    case PacketType::kEndDownload: return "EndDownload";
    case PacketType::kQuery: return "Query";
    case PacketType::kRepairRequest: return "RepairRequest";
    case PacketType::kDelugeSummary: return "DelugeSummary";
    case PacketType::kDelugeRequest: return "DelugeRequest";
    case PacketType::kDelugeData: return "DelugeData";
    case PacketType::kMoapPublish: return "MoapPublish";
    case PacketType::kMoapSubscribe: return "MoapSubscribe";
    case PacketType::kMoapData: return "MoapData";
    case PacketType::kMoapNack: return "MoapNack";
    case PacketType::kXnpData: return "XnpData";
    case PacketType::kXnpQuery: return "XnpQuery";
    case PacketType::kXnpFixRequest: return "XnpFixRequest";
    case PacketType::kNcastAdv: return "NcastAdv";
    case PacketType::kNcastRequest: return "NcastRequest";
    case PacketType::kNcastCoded: return "NcastCoded";
  }
  return "Unknown";
}

std::string to_string(PacketType type) { return type_name(type); }

bool is_bulk_data(PacketType type) {
  switch (type) {
    case PacketType::kData:
    case PacketType::kDelugeData:
    case PacketType::kMoapData:
    case PacketType::kXnpData:
    case PacketType::kNcastCoded:
      return true;
    default:
      return false;
  }
}

namespace {
struct TypeVisitor {
  PacketType operator()(const AdvertisementMsg&) const { return PacketType::kAdvertisement; }
  PacketType operator()(const DownloadRequestMsg&) const { return PacketType::kDownloadRequest; }
  PacketType operator()(const StartDownloadMsg&) const { return PacketType::kStartDownload; }
  PacketType operator()(const DataMsg&) const { return PacketType::kData; }
  PacketType operator()(const EndDownloadMsg&) const { return PacketType::kEndDownload; }
  PacketType operator()(const QueryMsg&) const { return PacketType::kQuery; }
  PacketType operator()(const RepairRequestMsg&) const { return PacketType::kRepairRequest; }
  PacketType operator()(const DelugeSummaryMsg&) const { return PacketType::kDelugeSummary; }
  PacketType operator()(const DelugeRequestMsg&) const { return PacketType::kDelugeRequest; }
  PacketType operator()(const DelugeDataMsg&) const { return PacketType::kDelugeData; }
  PacketType operator()(const MoapPublishMsg&) const { return PacketType::kMoapPublish; }
  PacketType operator()(const MoapSubscribeMsg&) const { return PacketType::kMoapSubscribe; }
  PacketType operator()(const MoapDataMsg&) const { return PacketType::kMoapData; }
  PacketType operator()(const MoapNackMsg&) const { return PacketType::kMoapNack; }
  PacketType operator()(const XnpDataMsg&) const { return PacketType::kXnpData; }
  PacketType operator()(const XnpQueryMsg&) const { return PacketType::kXnpQuery; }
  PacketType operator()(const XnpFixRequestMsg&) const { return PacketType::kXnpFixRequest; }
  PacketType operator()(const NcastAdvMsg&) const { return PacketType::kNcastAdv; }
  PacketType operator()(const NcastReqMsg&) const { return PacketType::kNcastRequest; }
  PacketType operator()(const NcastCodedMsg&) const { return PacketType::kNcastCoded; }
};

struct DestVisitor {
  NodeId operator()(const DownloadRequestMsg& m) const { return m.dest; }
  NodeId operator()(const RepairRequestMsg& m) const { return m.dest; }
  NodeId operator()(const DelugeRequestMsg& m) const { return m.dest; }
  NodeId operator()(const MoapSubscribeMsg& m) const { return m.dest; }
  NodeId operator()(const MoapNackMsg& m) const { return m.dest; }
  NodeId operator()(const NcastReqMsg& m) const { return m.dest; }
  template <typename T>
  NodeId operator()(const T&) const {
    return kBroadcastId;
  }
};

struct SizeVisitor {
  std::size_t operator()(const DataMsg& m) const { return m.wire_bytes(); }
  std::size_t operator()(const DelugeDataMsg& m) const { return m.wire_bytes(); }
  std::size_t operator()(const MoapDataMsg& m) const { return m.wire_bytes(); }
  std::size_t operator()(const XnpDataMsg& m) const { return m.wire_bytes(); }
  std::size_t operator()(const NcastCodedMsg& m) const { return m.wire_bytes(); }
  template <typename T>
  std::size_t operator()(const T&) const {
    return T::kWireBytes;
  }
};
}  // namespace

PacketType Packet::type() const { return std::visit(TypeVisitor{}, payload); }

NodeId Packet::logical_dest() const { return std::visit(DestVisitor{}, payload); }

std::size_t Packet::wire_bytes() const {
  return kFramingBytes + std::visit(SizeVisitor{}, payload);
}

}  // namespace mnp::net

#include "sim/audit.hpp"

#include <algorithm>

namespace mnp::sim {

void Audit::on_event(Time now, std::uint64_t pending_sig,
                     std::uint64_t index) {
  std::int32_t changed_node = -1;
  const bool sweep =
      probe_ != nullptr &&
      (index % node_sweep_stride_ == 0 || digests_.empty());
  if (sweep) {
    const std::size_t n = probe_->node_count();
    scratch_.resize(n);
    probe_->node_digests(scratch_.data());
    if (digests_.size() != n) {
      // First observation (or the probe changed): seed the cache without
      // attributing the initial state to any node.
      digests_ = scratch_;
      nodes_sig_ = 0;
      for (std::size_t i = 0; i < n; ++i) {
        nodes_sig_ ^= audit_mix(i, digests_[i]);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t d = scratch_[i];
        if (d == digests_[i]) continue;
        nodes_sig_ ^= audit_mix(i, digests_[i]) ^ audit_mix(i, d);
        digests_[i] = d;
        if (changed_node < 0) changed_node = static_cast<std::int32_t>(i);
      }
    }
  }
  chain_ = fnv1a(chain_, static_cast<std::uint64_t>(now));
  chain_ = fnv1a(chain_, pending_sig);
  chain_ = fnv1a(chain_, nodes_sig_);
  records_.push_back(AuditRecord{index, now, changed_node, pending_sig,
                                 nodes_sig_, chain_});
}

void Audit::reset() {
  digests_.clear();
  scratch_.clear();
  nodes_sig_ = 0;
  chain_ = kFnvOffset;
  records_.clear();
}

AuditDivergence first_divergence(const std::vector<AuditRecord>& a,
                                 const std::vector<AuditRecord>& b) {
  AuditDivergence d;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    // The chain is a running hash, so the first chain difference IS the
    // first record difference.
    if (a[i].chain == b[i].chain) continue;
    d.diverged = true;
    d.index = i;
    d.a = a[i];
    d.b = b[i];
    return d;
  }
  if (a.size() != b.size()) {
    d.diverged = true;
    d.length_mismatch = true;
    d.index = n;
    if (a.size() > n) d.a = a[n];
    if (b.size() > n) d.b = b[n];
  }
  return d;
}

}  // namespace mnp::sim

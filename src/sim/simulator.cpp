#include "sim/simulator.hpp"

namespace mnp::sim {

bool Simulator::step_bounded(Time deadline) {
  const Time next = scheduler_.next_event_time();
  if (next == kNever || next > deadline) return false;
  return scheduler_.step();
}

}  // namespace mnp::sim

// sim::Audit — the runtime half of the determinism audit toolchain
// (DESIGN.md section 12).
//
// The Scheduler calls Audit::on_event at every event boundary with the
// simulation clock and its incrementally maintained pending-event
// signature (an XOR of per-entry FNV-1a tags, so arming and cancelling
// timers updates it in O(1)). The audit folds in a digest of every
// node's protocol-visible state (Application::audit_digest: state enum,
// progress counters, journal cursor) — also incremental: per-node
// digests are cached and only changed nodes touch the running
// signature — and extends a running FNV-1a *chain* hash. Two runs are
// behaviorally identical iff their chains match; the first differing
// record pinpoints the first diverging event.
//
// The chain is what sweep merging and CI smoke compare; the full record
// stream is what `mnp_bisect` diffs to report time / node / kind of the
// first divergence.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace mnp::sim {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a folded at u64 granularity: one xor-multiply per word instead of
/// the canonical per-byte loop. The audit hashes ~10 words per node per
/// event, so the 8x cheaper fold is what keeps audited runs inside the
/// <10% overhead budget. For fixed v the fold is a bijection in h (xor,
/// then multiply by an odd prime), so once two runs' chains differ they
/// can never silently re-converge over an identical suffix — exactly the
/// property first_divergence relies on.
constexpr std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

/// Position-dependent node-digest mix: XORing these per node keeps the
/// aggregate order-independent yet sensitive to *which* node changed.
constexpr std::uint64_t audit_mix(std::uint64_t index,
                                  std::uint64_t digest) {
  return fnv1a(fnv1a(kFnvOffset, index), digest);
}

/// Supplies per-node state digests to the audit. The harness installs a
/// probe over the Network; tests can fake one. The bulk interface keeps
/// the per-event cost to one virtual hop: the audit runs this sweep at
/// every executed event.
class AuditProbe {
 public:
  virtual ~AuditProbe() = default;
  virtual std::size_t node_count() const = 0;
  /// Writes node_count() digests into `out`.
  virtual void node_digests(std::uint64_t* out) = 0;
};

/// One event-boundary observation.
struct AuditRecord {
  std::uint64_t index = 0;    // executed-event ordinal, 0-based
  Time time = 0;              // sim clock at the boundary
  std::int32_t node = -1;     // first node whose digest changed, -1 none
  std::uint64_t pending = 0;  // scheduler pending-event signature
  std::uint64_t nodes = 0;    // aggregate node-state signature
  std::uint64_t chain = 0;    // running FNV-1a chain over all the above
};

class Audit {
 public:
  /// Installs (or removes, with nullptr) the node-state probe. The probe
  /// must outlive every on_event call; the harness detaches it before
  /// its Network dies.
  void set_probe(AuditProbe* probe) { probe_ = probe; }

  /// Scheduler callback: one record per executed event.
  void on_event(Time now, std::uint64_t pending_sig, std::uint64_t index);

  /// How often the node-digest sweep runs: every `stride` events (plus the
  /// very first). The pending-event signature is folded at EVERY event, so
  /// a divergence that perturbs any timer or message timing — in these
  /// protocols, all of them in practice — is still pinned to its exact
  /// event; the stride only delays attribution of a hypothetical
  /// timing-neutral state change by up to stride-1 events. The default
  /// keeps audited runs inside the <10% overhead budget; tests that want
  /// per-event node attribution set 1.
  void set_node_sweep_stride(std::uint32_t stride) {
    node_sweep_stride_ = stride == 0 ? 1 : stride;
  }

  /// Drops records and restarts the chain (probe stays installed).
  void reset();

  const std::vector<AuditRecord>& records() const { return records_; }
  /// Final chain value — equal iff two runs never diverged.
  std::uint64_t chain() const { return chain_; }

 private:
  AuditProbe* probe_ = nullptr;
  std::uint32_t node_sweep_stride_ = 16;
  std::vector<std::uint64_t> digests_;  // per-node cache
  std::vector<std::uint64_t> scratch_;  // current sweep, reused per event
  std::uint64_t nodes_sig_ = 0;
  std::uint64_t chain_ = kFnvOffset;
  std::vector<AuditRecord> records_;
};

/// First point where two record streams disagree.
struct AuditDivergence {
  bool diverged = false;
  bool length_mismatch = false;  // one stream is a strict prefix
  std::uint64_t index = 0;       // ordinal of the first differing record
  AuditRecord a, b;              // the differing records (when not a
                                 // pure length mismatch)
};

AuditDivergence first_divergence(const std::vector<AuditRecord>& a,
                                 const std::vector<AuditRecord>& b);

}  // namespace mnp::sim

#include "sim/time.hpp"

#include <cstdio>

namespace mnp::sim {

std::string format_time(Time t) {
  if (t < 0) return "never";
  const double total_sec = to_seconds(t);
  const auto whole_min = static_cast<long>(total_sec / 60.0);
  const double rem_sec = total_sec - static_cast<double>(whole_min) * 60.0;
  char buf[64];
  if (whole_min > 0) {
    std::snprintf(buf, sizeof(buf), "%ldm%04.1fs", whole_min, rem_sec);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", rem_sec);
  }
  return buf;
}

}  // namespace mnp::sim

#include "sim/rng.hpp"

#include <algorithm>

namespace mnp::sim {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  if (lo >= hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::normal(double mean, double stddev) {
  if (stddev <= 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

Rng Rng::fork(std::uint64_t salt) {
  // Mix a fresh draw with the salt through splitmix64 so child streams are
  // decorrelated even for adjacent salts.
  std::uint64_t x = engine_() ^ (salt + 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return Rng(x);
}

}  // namespace mnp::sim

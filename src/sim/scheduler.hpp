// Discrete event scheduler: the heart of the TOSSIM-like simulator.
//
// Events are closures ordered by (time, insertion sequence) so same-time
// events run in a deterministic FIFO order.
//
// Cancellation never allocates: cancellable events borrow a slot from an
// intrusive free-list of generation-counted states owned by the scheduler
// (a handle is just {scheduler, slot, generation}), and fire-and-forget
// events posted via `post_at`/`post_after` skip the slot entirely — the
// common hot path (packet end-of-airtime, boot jitter, send-done) performs
// zero bookkeeping allocations. Cancelled events are tombstones skipped
// when popped; when more than half the queue is tombstones the heap is
// compacted in one sweep, so cancelled-timer-heavy runs stay O(live).
//
// Determinism auditing (DESIGN.md section 12): the scheduler maintains an
// incremental XOR signature of the live pending set (one FNV-1a tag per
// queued entry) and, when an Audit is attached, reports it at every event
// boundary. The same-time tie-break (FIFO by insertion sequence) can be
// flipped to LIFO with set_tie_break — re-running a seed under the
// opposite tie-break and diffing the audit chains exposes event pairs
// whose relative order silently changes protocol state.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/time.hpp"

namespace mnp::sim {

class Audit;
class Scheduler;

/// Execution order of same-timestamp events: kFifo runs them in insertion
/// order (the production default), kLifo in reverse. Both are total orders,
/// so either way a run is fully deterministic — flipping between them is
/// the audit toolchain's probe for order-sensitive protocol logic.
enum class TieBreak : std::uint8_t { kFifo, kLifo };

/// Handle to a scheduled event. Copyable; all copies refer to the same
/// event. A default-constructed handle refers to nothing. Handles must not
/// outlive the scheduler that issued them (in this codebase every handle
/// owner also references the scheduler, so lifetimes already nest).
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still queued (not fired, not cancelled).
  inline bool pending() const;

  /// Cancels the event if still pending. Safe to call repeatedly, safe on a
  /// default-constructed handle, safe after the event fired.
  inline void cancel();

 private:
  friend class Scheduler;
  EventHandle(Scheduler* owner, std::uint32_t slot, std::uint32_t gen)
      : owner_(owner), slot_(slot), gen_(gen) {}

  Scheduler* owner_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Time when, Action action);

  /// Schedules `action` `delay` microseconds from now (clamped to >= 0).
  EventHandle schedule_after(Time delay, Action action);

  /// Fire-and-forget variants: no handle, no cancellation state. Use these
  /// on hot paths that never cancel (the scheduler allocates nothing beyond
  /// the queue entry itself).
  void post_at(Time when, Action action);
  void post_after(Time delay, Action action);

  Time now() const { return now_; }
  /// True when no live (non-cancelled) event remains. Prunes tombstones.
  bool empty();
  /// Live queued events. Cancelled events leave this count immediately.
  std::size_t pending_events() const { return live_; }
  /// Cancelled events still occupying the queue as tombstones.
  std::size_t tombstone_events() const { return tombstones_; }
  std::uint64_t executed_events() const { return executed_; }

  /// Runs events until the queue is empty or the next event is after
  /// `until`; the clock ends at min(until, last event time). Returns the
  /// number of events executed.
  std::uint64_t run_until(Time until);

  /// Runs everything. Intended for tests; production runs give a horizon.
  std::uint64_t run_all() { return run_until(std::numeric_limits<Time>::max()); }

  /// Executes at most one pending event. Returns false if none remained.
  bool step();

  /// Time of the next live event, or kNever if none. Prunes tombstones.
  Time next_event_time();

  /// Switches the same-time tie-break. Safe at any point: the heap is
  /// re-ordered under the new comparator.
  void set_tie_break(TieBreak tie_break);
  TieBreak tie_break() const { return tie_break_; }

  /// Attaches (or detaches, with nullptr) the determinism auditor; it is
  /// called after every executed event. Not owned.
  void set_audit(Audit* audit) { audit_ = audit; }

  /// XOR of per-entry FNV-1a tags over the live pending set. Two runs with
  /// identical histories have identical signatures at every boundary.
  std::uint64_t pending_signature() const { return pending_sig_; }

 private:
  friend class EventHandle;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;  // kNoSlot for fire-and-forget posts
    std::uint32_t gen;
    std::uint64_t tag;  // FNV-1a of (when, seq); XORed into pending_sig_
    Action action;
  };
  /// Cancellation state, pooled and recycled; `gen` disambiguates handles
  /// from earlier tenants of the same slot.
  struct Slot {
    std::uint32_t gen = 0;
    bool cancelled = false;
    std::uint64_t tag = 0;  // tag of the current tenant, for cancellation
  };
  struct Later {
    TieBreak tie_break;
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return tie_break == TieBreak::kFifo ? a.seq > b.seq : a.seq < b.seq;
    }
  };
  Later later() const { return Later{tie_break_}; }

  void push(Time when, Action action, std::uint32_t slot, std::uint32_t gen);
  Entry take_top();
  void release_slot(const Entry& entry);
  bool entry_cancelled(const Entry& entry) const {
    return entry.slot != kNoSlot && slots_[entry.slot].cancelled;
  }
  void prune_tombstones();
  void compact();

  // EventHandle backends.
  bool slot_pending(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slots_.size() && slots_[slot].gen == gen &&
           !slots_[slot].cancelled;
  }
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);

  std::vector<Entry> heap_;  // binary heap ordered by Later
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;        // queued, not cancelled
  std::size_t tombstones_ = 0;  // queued, cancelled, not yet swept
  TieBreak tie_break_ = TieBreak::kFifo;
  std::uint64_t pending_sig_ = 0;  // XOR of live entries' tags
  Audit* audit_ = nullptr;
};

inline bool EventHandle::pending() const {
  return owner_ && owner_->slot_pending(slot_, gen_);
}

inline void EventHandle::cancel() {
  if (owner_) owner_->cancel_slot(slot_, gen_);
}

}  // namespace mnp::sim

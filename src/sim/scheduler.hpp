// Discrete event scheduler: the heart of the TOSSIM-like simulator.
//
// Events are closures ordered by (time, insertion sequence) so same-time
// events run in a deterministic FIFO order. Cancellation is O(1) via a
// shared tombstone flag; cancelled events are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace mnp::sim {

/// Handle to a scheduled event. Copyable; all copies refer to the same
/// event. A default-constructed handle refers to nothing.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still queued (not fired, not cancelled).
  bool pending() const { return state_ && !state_->done; }

  /// Cancels the event if still pending. Safe to call repeatedly, safe on a
  /// default-constructed handle, safe after the event fired.
  void cancel() {
    if (state_) state_->done = true;
  }

 private:
  friend class Scheduler;
  struct State {
    bool done = false;
  };
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(Time when, Action action);

  /// Schedules `action` `delay` microseconds from now (clamped to >= 0).
  EventHandle schedule_after(Time delay, Action action);

  Time now() const { return now_; }
  /// True when no live (non-cancelled) event remains. Prunes tombstones.
  bool empty();
  /// Queued entries, counting cancelled-but-unswept tombstones.
  std::size_t pending_events() const { return live_; }
  std::uint64_t executed_events() const { return executed_; }

  /// Runs events until the queue is empty or the next event is after
  /// `until`; the clock ends at min(until, last event time). Returns the
  /// number of events executed.
  std::uint64_t run_until(Time until);

  /// Runs everything. Intended for tests; production runs give a horizon.
  std::uint64_t run_all() { return run_until(std::numeric_limits<Time>::max()); }

  /// Executes at most one pending event. Returns false if none remained.
  bool step();

  /// Time of the next live event, or kNever if none. Prunes tombstones.
  Time next_event_time();

 private:
  void prune_tombstones();

  struct Entry {
    Time when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // queued entries not yet cancelled
};

}  // namespace mnp::sim

#include "sim/scheduler.hpp"

#include <cassert>
#include <limits>
#include <utility>

namespace mnp::sim {

EventHandle Scheduler::schedule_at(Time when, Action action) {
  if (when < now_) when = now_;
  EventHandle handle;
  handle.state_ = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(action), handle.state_});
  ++live_;
  return handle;
}

EventHandle Scheduler::schedule_after(Time delay, Action action) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(action));
}

void Scheduler::prune_tombstones() {
  while (!queue_.empty() && queue_.top().state->done) {
    queue_.pop();
    --live_;
  }
}

bool Scheduler::empty() {
  prune_tombstones();
  return queue_.empty();
}

Time Scheduler::next_event_time() {
  prune_tombstones();
  return queue_.empty() ? kNever : queue_.top().when;
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t count = 0;
  for (;;) {
    prune_tombstones();
    if (queue_.empty() || queue_.top().when > until) break;
    Entry e = queue_.top();
    queue_.pop();
    --live_;
    e.state->done = true;
    assert(e.when >= now_);
    now_ = e.when;
    ++executed_;
    ++count;
    e.action();
  }
  // The window [now_, until] is fully processed: park the clock at the
  // horizon so repeated relative windows (run_until(now() + dt)) make
  // progress across event gaps. run_all()'s "forever" horizon is exempt —
  // the clock would otherwise jump to +infinity.
  if (until != std::numeric_limits<Time>::max() && until > now_) {
    now_ = until;
  }
  return count;
}

bool Scheduler::step() {
  prune_tombstones();
  if (queue_.empty()) return false;
  Entry e = queue_.top();
  queue_.pop();
  --live_;
  e.state->done = true;
  assert(e.when >= now_);
  now_ = e.when;
  ++executed_;
  e.action();
  return true;
}

}  // namespace mnp::sim

#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "sim/audit.hpp"

namespace mnp::sim {

void Scheduler::push(Time when, Action action, std::uint32_t slot,
                     std::uint32_t gen) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t tag =
      fnv1a(fnv1a(kFnvOffset, static_cast<std::uint64_t>(when)), seq);
  heap_.push_back(Entry{when, seq, slot, gen, tag, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), later());
  ++live_;
  pending_sig_ ^= tag;
  if (slot != kNoSlot) slots_[slot].tag = tag;
}

EventHandle Scheduler::schedule_at(Time when, Action action) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  const std::uint32_t gen = slots_[slot].gen;
  push(when, std::move(action), slot, gen);
  return EventHandle(this, slot, gen);
}

EventHandle Scheduler::schedule_after(Time delay, Action action) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(action));
}

void Scheduler::post_at(Time when, Action action) {
  push(when, std::move(action), kNoSlot, 0);
}

void Scheduler::post_after(Time delay, Action action) {
  if (delay < 0) delay = 0;
  post_at(now_ + delay, std::move(action));
}

void Scheduler::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.gen != gen || s.cancelled) return;
  s.cancelled = true;
  --live_;
  ++tombstones_;
  // The entry leaves the live set now; sweeping its tombstone later must
  // not touch the signature again.
  pending_sig_ ^= s.tag;
  // Lazy-deletion bound: once tombstones dominate, sweep them all at once
  // so a cancel-heavy workload cannot grow the heap past 2x the live set.
  if (tombstones_ > 64 && tombstones_ * 2 > heap_.size()) compact();
}

Scheduler::Entry Scheduler::take_top() {
  std::pop_heap(heap_.begin(), heap_.end(), later());
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

void Scheduler::release_slot(const Entry& entry) {
  if (entry.slot == kNoSlot) return;
  Slot& s = slots_[entry.slot];
  assert(s.gen == entry.gen);
  ++s.gen;  // invalidate outstanding handles before the slot is recycled
  if (s.cancelled) {
    s.cancelled = false;
    --tombstones_;
  }
  free_slots_.push_back(entry.slot);
}

void Scheduler::prune_tombstones() {
  while (!heap_.empty() && entry_cancelled(heap_.front())) {
    Entry e = take_top();
    release_slot(e);
  }
}

void Scheduler::compact() {
  const auto keep_end = std::remove_if(
      heap_.begin(), heap_.end(), [this](const Entry& e) {
        if (!entry_cancelled(e)) return false;
        release_slot(e);
        return true;
      });
  heap_.erase(keep_end, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), later());
}

void Scheduler::set_tie_break(TieBreak tie_break) {
  if (tie_break == tie_break_) return;
  tie_break_ = tie_break;
  std::make_heap(heap_.begin(), heap_.end(), later());
}

bool Scheduler::empty() {
  prune_tombstones();
  return heap_.empty();
}

Time Scheduler::next_event_time() {
  prune_tombstones();
  return heap_.empty() ? kNever : heap_.front().when;
}

std::uint64_t Scheduler::run_until(Time until) {
  std::uint64_t count = 0;
  for (;;) {
    prune_tombstones();
    if (heap_.empty() || heap_.front().when > until) break;
    Entry e = take_top();
    release_slot(e);
    --live_;
    pending_sig_ ^= e.tag;  // the entry leaves the pending set as it fires
    assert(e.when >= now_);
    now_ = e.when;
    ++executed_;
    ++count;
    e.action();
    if (audit_ != nullptr) audit_->on_event(now_, pending_sig_, executed_ - 1);
  }
  // The window [now_, until] is fully processed: park the clock at the
  // horizon so repeated relative windows (run_until(now() + dt)) make
  // progress across event gaps. run_all()'s "forever" horizon is exempt —
  // the clock would otherwise jump to +infinity.
  if (until != std::numeric_limits<Time>::max() && until > now_) {
    now_ = until;
  }
  return count;
}

bool Scheduler::step() {
  prune_tombstones();
  if (heap_.empty()) return false;
  Entry e = take_top();
  release_slot(e);
  --live_;
  pending_sig_ ^= e.tag;
  assert(e.when >= now_);
  now_ = e.when;
  ++executed_;
  e.action();
  if (audit_ != nullptr) audit_->on_event(now_, pending_sig_, executed_ - 1);
  return true;
}

}  // namespace mnp::sim

// Simulator: scheduler + root RNG + run control, the object everything
// else hangs off. One Simulator == one reproducible run.
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mnp::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : root_rng_(seed) {}

  Scheduler& scheduler() { return scheduler_; }
  Time now() const { return scheduler_.now(); }

  /// The root RNG. Modules should fork their own stream once at setup via
  /// `fork_rng` rather than drawing from this directly.
  Rng& root_rng() { return root_rng_; }
  Rng fork_rng(std::uint64_t salt) { return root_rng_.fork(salt); }

  /// Runs until `deadline` or event exhaustion; returns events executed.
  std::uint64_t run_until(Time deadline) { return scheduler_.run_until(deadline); }

  /// Runs until `predicate()` turns true, checking after every event, or
  /// until `deadline`. Returns true if the predicate was satisfied.
  template <typename Pred>
  bool run_until_condition(Time deadline, Pred&& predicate) {
    while (!predicate()) {
      if (scheduler_.empty()) return false;
      if (now() >= deadline) return false;
      // Step one event; step() returns false only when empty.
      if (!step_bounded(deadline)) return false;
    }
    return true;
  }

 private:
  /// Steps one event if it is at or before `deadline`.
  bool step_bounded(Time deadline);

  Scheduler scheduler_;
  Rng root_rng_;
};

}  // namespace mnp::sim

// Simulation time: a signed 64-bit count of microseconds.
//
// Microsecond granularity comfortably resolves Mica-2 radio events (a
// packet airtime is ~15,000 us) while letting multi-hour reprogramming
// runs fit without overflow (2^63 us ~ 292k years).
#pragma once

#include <cstdint>
#include <string>

namespace mnp::sim {

using Time = std::int64_t;  // microseconds since simulation start

inline constexpr Time kNever = -1;

constexpr Time usec(std::int64_t n) { return n; }
constexpr Time msec(std::int64_t n) { return n * 1000; }
constexpr Time sec(std::int64_t n) { return n * 1000 * 1000; }
constexpr Time minutes(std::int64_t n) { return n * 60 * 1000 * 1000; }
constexpr Time hours(std::int64_t n) { return n * 3600 * 1000 * 1000; }

constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_minutes(Time t) { return static_cast<double>(t) / 60e6; }

/// "12m34.5s"-style rendering for reports.
std::string format_time(Time t);

}  // namespace mnp::sim

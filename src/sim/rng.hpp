// Deterministic random number generation.
//
// Every run is fully reproducible from a single 64-bit seed: the simulator
// owns a root Rng and derives per-node / per-channel streams from it, so
// adding randomness in one module never perturbs another module's stream.
#pragma once

#include <cstdint>
#include <random>

namespace mnp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Gaussian with the given mean/stddev.
  double normal(double mean, double stddev);

  /// Derives an independent child stream. Deterministic: the same parent
  /// state + salt always yields the same child.
  Rng fork(std::uint64_t salt);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mnp::sim

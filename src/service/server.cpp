#include "service/server.hpp"

#include <atomic>
#include <cstdlib>

#include "harness/observe.hpp"
#include "obs/json_writer.hpp"
#include "service/manifest.hpp"
#include "service/run_request.hpp"
#include "service/wallclock.hpp"

namespace mnp::service {

namespace {

std::string error_json(std::string_view message) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("error");
  w.value(message);
  w.end_object();
  return w.take();
}

/// Path portion of a request target (query string stripped).
std::string_view target_path(std::string_view target) {
  const std::size_t q = target.find('?');
  return q == std::string_view::npos ? target : target.substr(0, q);
}

bool parse_id(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

FleetServer::FleetServer(FleetServerOptions options)
    : options_(options) {
  m_http_requests_ = self_metrics_.register_counter("fleet.http_requests",
                                                    obs::Unit::kCount, false);
  m_http_errors_ = self_metrics_.register_counter("fleet.http_errors",
                                                  obs::Unit::kCount, false);
  m_runs_submitted_ = self_metrics_.register_counter("fleet.runs_submitted",
                                                     obs::Unit::kCount, false);
  m_runs_deduped_ = self_metrics_.register_counter("fleet.runs_deduped",
                                                   obs::Unit::kCount, false);
  m_stream_lines_ = self_metrics_.register_counter("fleet.stream_lines",
                                                   obs::Unit::kCount, false);

  // Route table. Keep every registration a grep-able literal — the docs
  // check (tools/check_docs.sh) cross-references these lines against the
  // endpoint table in DESIGN.md §14, in both directions.
  add_route("GET", "/healthz",
            [this](const HttpRequest& rq, HttpExchange& ex,
                   const std::vector<std::string>& p) {
              handle_healthz(rq, ex, p);
            });
  add_route("GET", "/version",
            [this](const HttpRequest& rq, HttpExchange& ex,
                   const std::vector<std::string>& p) {
              handle_version(rq, ex, p);
            });
  add_route("GET", "/metricsz",
            [this](const HttpRequest& rq, HttpExchange& ex,
                   const std::vector<std::string>& p) {
              handle_metricsz(rq, ex, p);
            });
  add_route("POST", "/runs",
            [this](const HttpRequest& rq, HttpExchange& ex,
                   const std::vector<std::string>& p) {
              handle_submit(rq, ex, p);
            });
  add_route("GET", "/runs/{id}",
            [this](const HttpRequest& rq, HttpExchange& ex,
                   const std::vector<std::string>& p) {
              handle_run_status(rq, ex, p);
            });
  add_route("GET", "/runs/{id}/metrics",
            [this](const HttpRequest& rq, HttpExchange& ex,
                   const std::vector<std::string>& p) {
              handle_run_metrics(rq, ex, p);
            });
}

FleetServer::~FleetServer() { stop(); }

bool FleetServer::start(std::string* error) {
  started_ms_ = wall_ms();
  scheduler_ = std::make_unique<RunScheduler>(store_, assets_, options_.jobs,
                                              options_.progress_interval);
  const bool ok = http_.start(
      options_.port,
      [this](const HttpRequest& rq, HttpExchange& ex) { dispatch(rq, ex); },
      error);
  if (!ok) scheduler_->stop();
  return ok;
}

void FleetServer::stop() {
  stopping_.store(true);
  http_.stop();
  if (scheduler_) scheduler_->stop();
}

void FleetServer::add_route(
    const char* method, const char* pattern,
    std::function<void(const HttpRequest&, HttpExchange&,
                       const std::vector<std::string>&)>
        handler) {
  routes_.push_back(Route{method, pattern, std::move(handler)});
}

bool FleetServer::match_route(const std::string& pattern,
                              std::string_view path,
                              std::vector<std::string>* params) {
  std::size_t pi = 0, ti = 0;
  while (pi < pattern.size() && ti < path.size()) {
    if (pattern[pi] != '/' || path[ti] != '/') return false;
    ++pi;
    ++ti;
    std::size_t pe = pattern.find('/', pi);
    if (pe == std::string::npos) pe = pattern.size();
    std::size_t te = path.find('/', ti);
    if (te == std::string_view::npos) te = path.size();
    const std::string_view pseg(pattern.data() + pi, pe - pi);
    const std::string_view tseg(path.data() + ti, te - ti);
    if (pseg == "{id}") {
      if (tseg.empty()) return false;
      params->emplace_back(tseg);
    } else if (pseg != tseg) {
      return false;
    }
    pi = pe;
    ti = te;
  }
  return pi == pattern.size() && ti == path.size();
}

void FleetServer::dispatch(const HttpRequest& request, HttpExchange& exchange) {
  {
    const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
    self_metrics_.add(m_http_requests_);
  }
  const std::string_view path = target_path(request.target);
  bool path_known = false;
  for (const Route& route : routes_) {
    std::vector<std::string> params;
    if (!match_route(route.pattern, path, &params)) continue;
    path_known = true;
    if (route.method != request.method) continue;
    route.handler(request, exchange, params);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
    self_metrics_.add(m_http_errors_);
  }
  if (path_known) {
    exchange.send(405, "application/json", error_json("method not allowed"));
  } else {
    exchange.send(404, "application/json", error_json("no such endpoint"));
  }
}

void FleetServer::handle_healthz(const HttpRequest&, HttpExchange& exchange,
                                 const std::vector<std::string>&) {
  exchange.send(200, "application/json", "{\"ok\":true}");
}

void FleetServer::handle_version(const HttpRequest&, HttpExchange& exchange,
                                 const std::vector<std::string>&) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("git_describe");
  w.value(harness::build_git_describe());
  w.key("schema_version");
  w.value(obs::kTelemetrySchemaVersion);
  w.end_object();
  exchange.send(200, "application/json", w.take());
}

void FleetServer::handle_metricsz(const HttpRequest&, HttpExchange& exchange,
                                  const std::vector<std::string>&) {
  const AssetCache::Stats assets = assets_.stats();
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema_version");
  w.value(obs::kTelemetrySchemaVersion);
  w.key("git_describe");
  w.value(harness::build_git_describe());
  w.key("uptime_ms");
  w.value(wall_ms() - started_ms_);
  w.key("workers");
  w.value(static_cast<std::uint64_t>(scheduler_ ? scheduler_->workers() : 0));
  w.key("queue_depth");
  w.value(
      static_cast<std::uint64_t>(scheduler_ ? scheduler_->queue_depth() : 0));
  w.key("runs_total");
  w.value(static_cast<std::uint64_t>(store_.size()));
  w.key("runs_executed");
  w.value(scheduler_ ? scheduler_->executed() : 0);
  w.key("runs_failed");
  w.value(scheduler_ ? scheduler_->failed() : 0);
  w.key("connections_handled");
  w.value(http_.connections_handled());
  w.key("assets");
  w.begin_object();
  w.key("topology_hits");
  w.value(assets.topology_hits);
  w.key("topology_misses");
  w.value(assets.topology_misses);
  w.key("image_hits");
  w.value(assets.image_hits);
  w.key("image_misses");
  w.value(assets.image_misses);
  w.key("scenario_hits");
  w.value(assets.scenario_hits);
  w.key("scenario_misses");
  w.value(assets.scenario_misses);
  w.end_object();
  w.key("metrics");
  {
    const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
    self_metrics_.write_json(w);
  }
  w.end_object();
  exchange.send(200, "application/json", w.take());
}

void FleetServer::handle_submit(const HttpRequest& request,
                                HttpExchange& exchange,
                                const std::vector<std::string>&) {
  RunRequestResult parsed = parse_run_request_text(request.body);
  if (!parsed.ok) {
    const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
    self_metrics_.add(m_http_errors_);
    exchange.send(400, "application/json", error_json(parsed.error));
    return;
  }
  // Intern the scenario parse (a sweep campaign resubmits the same text
  // once per seed); parse_run_request already validated it.
  if (!parsed.scenario_text.empty()) {
    auto cached = assets_.scenario(parsed.scenario_text);
    if (!cached->ok) {
      const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
      self_metrics_.add(m_http_errors_);
      exchange.send(400, "application/json", error_json(cached->error));
      return;
    }
    parsed.request.cfg.scenario = cached->scenario;
  }

  obs::JsonWriter w;
  w.begin_object();
  w.key("runs");
  w.begin_array();
  std::uint64_t submitted = 0, deduped = 0;
  for (const std::uint64_t seed : parsed.request.seeds) {
    harness::ExperimentConfig cfg = parsed.request.cfg;
    cfg.seed = seed;
    std::string manifest = canonical_manifest(cfg, seed);
    const std::uint64_t hash = fnv1a64(manifest);
    const RunStore::Submitted sub =
        store_.submit(hash, std::move(manifest), wall_ms());
    if (sub.created) {
      ++submitted;
      scheduler_->enqueue(sub.id, cfg);
    } else {
      ++deduped;
    }
    w.begin_object();
    w.key("id");
    w.value(sub.id);
    w.key("seed");
    w.value(seed);
    w.key("manifest");
    w.value(manifest_hash_hex(hash));
    w.key("dedup");
    w.value(!sub.created);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  {
    const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
    self_metrics_.add(m_runs_submitted_, submitted);
    self_metrics_.add(m_runs_deduped_, deduped);
  }
  exchange.send(200, "application/json", w.take());
}

std::string FleetServer::run_status_json(const RunRecord& record) const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id");
  w.value(record.id);
  w.key("manifest");
  w.value(manifest_hash_hex(record.manifest));
  w.key("state");
  w.value(run_state_name(record.state));
  w.key("dedup_hits");
  w.value(record.dedup_hits);
  w.key("progress_lines");
  w.value(static_cast<std::uint64_t>(record.progress.size()));
  if (record.state == RunState::kFailed) {
    w.key("error");
    w.value(record.error);
  }
  w.key("result");
  if (record.result_json.empty()) {
    w.null();
  } else {
    w.raw(record.result_json);
  }
  w.end_object();
  return w.take();
}

void FleetServer::handle_run_status(const HttpRequest&, HttpExchange& exchange,
                                    const std::vector<std::string>& params) {
  std::uint64_t id = 0;
  RunRecord record;
  if (!parse_id(params.at(0), &id) || !store_.get(id, &record)) {
    const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
    self_metrics_.add(m_http_errors_);
    exchange.send(404, "application/json", error_json("no such run"));
    return;
  }
  exchange.send(200, "application/json", run_status_json(record));
}

void FleetServer::handle_run_metrics(const HttpRequest&, HttpExchange& exchange,
                                     const std::vector<std::string>& params) {
  std::uint64_t id = 0;
  RunRecord record;
  if (!parse_id(params.at(0), &id) || !store_.get(id, &record)) {
    const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
    self_metrics_.add(m_http_errors_);
    exchange.send(404, "application/json", error_json("no such run"));
    return;
  }
  if (record.state == RunState::kDone) {
    exchange.send(200, "application/json", record.metrics_json);
    return;
  }
  if (record.state == RunState::kFailed) {
    exchange.send(500, "application/json", error_json(record.error));
    return;
  }

  // In-flight: stream progress as NDJSON, ending with the final metrics
  // manifest (or an error object) as the last line.
  if (!exchange.begin_stream(200, "application/x-ndjson")) return;
  std::size_t cursor = 0;
  std::uint64_t lines_sent = 0;
  bool done = false;
  bool client_gone = false;
  while (!done && !client_gone && !stopping_.load()) {
    std::vector<std::string> lines;
    cursor = store_.wait_progress(id, cursor, options_.stream_poll_ms, &lines,
                                  &done);
    for (const std::string& line : lines) {
      if (!exchange.write(line) || !exchange.write("\n")) {
        client_gone = true;
        break;
      }
      ++lines_sent;
    }
  }
  if (!client_gone && store_.get(id, &record)) {
    if (record.state == RunState::kDone) {
      // write_run_manifest output is already newline-terminated.
      if (exchange.write(record.metrics_json) &&
          (record.metrics_json.empty() || record.metrics_json.back() != '\n')) {
        exchange.write("\n");
      }
      ++lines_sent;
    } else if (record.state == RunState::kFailed) {
      if (exchange.write(error_json(record.error))) exchange.write("\n");
      ++lines_sent;
    }
  }
  const std::lock_guard<std::mutex> lock(self_metrics_mutex_);
  self_metrics_.add(m_stream_lines_, lines_sent);
}

}  // namespace mnp::service

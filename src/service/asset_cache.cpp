#include "service/asset_cache.hpp"

#include <cstring>

#include "scenario/scenario_parser.hpp"

namespace mnp::service {

namespace {

/// Doubles keyed by bit pattern: 10.0 and 10.0 collide, 10.0 and
/// 10.000001 do not, and no tolerance heuristics sneak in.
std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

std::shared_ptr<const net::Topology> AssetCache::grid(std::size_t rows,
                                                      std::size_t cols,
                                                      double spacing_ft) {
  const GridKey key{rows, cols, double_bits(spacing_ft)};
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = grids_.find(key);
  if (it != grids_.end()) {
    ++stats_.topology_hits;
    return it->second;
  }
  ++stats_.topology_misses;
  auto built = std::make_shared<const net::Topology>(
      net::Topology::grid(rows, cols, spacing_ft));
  grids_.emplace(key, built);
  return built;
}

std::shared_ptr<const core::ProgramImage> AssetCache::image(
    std::uint16_t program_id, std::size_t total_bytes,
    std::uint16_t packets_per_segment, std::size_t payload_bytes) {
  const ImageKey key{program_id, total_bytes, packets_per_segment,
                     payload_bytes};
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = images_.find(key);
  if (it != images_.end()) {
    ++stats_.image_hits;
    return it->second;
  }
  ++stats_.image_misses;
  auto built = std::make_shared<const core::ProgramImage>(
      program_id, total_bytes, packets_per_segment, payload_bytes);
  images_.emplace(key, built);
  return built;
}

std::shared_ptr<const AssetCache::ParsedScenario> AssetCache::scenario(
    const std::string& text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = scenarios_.find(text);
  if (it != scenarios_.end()) {
    ++stats_.scenario_hits;
    return it->second;
  }
  ++stats_.scenario_misses;
  auto entry = std::make_shared<ParsedScenario>();
  const scenario::ParseResult parsed = scenario::parse_scenario_text(text);
  entry->ok = parsed.ok;
  entry->error = parsed.error;
  entry->scenario = parsed.scenario;
  std::shared_ptr<const ParsedScenario> frozen = std::move(entry);
  scenarios_.emplace(text, frozen);
  return frozen;
}

void AssetCache::attach_assets(harness::ExperimentConfig& cfg) {
  cfg.shared_topology = grid(cfg.rows, cfg.cols, cfg.spacing_ft);
  cfg.shared_image =
      image(cfg.program_id, cfg.program_bytes,
            harness::image_packets_per_segment(cfg),
            harness::image_payload_bytes(cfg));
}

AssetCache::Stats AssetCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mnp::service

#include "service/run_request.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/json_writer.hpp"
#include "scenario/scenario_parser.hpp"

namespace mnp::service {

namespace {

bool parse_u64(std::string_view v, std::uint64_t* out) {
  const std::string s(v);
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool parse_double(std::string_view v, double* out) {
  const std::string s(v);
  char* end = nullptr;
  const double parsed = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool parse_bool(std::string_view v, bool* out) {
  if (v == "true" || v == "1") {
    *out = true;
    return true;
  }
  if (v == "false" || v == "0") {
    *out = false;
    return true;
  }
  return false;
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Exact-round-trip textual spelling of a JSON scalar, so typed values
/// reach apply_run_option spelled the way the CLI would spell them.
std::string scalar_to_text(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kString: return v.string;
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      return buf;
    }
    default: return std::string();
  }
}

}  // namespace

bool apply_run_option(harness::ExperimentConfig& cfg, std::string_view key,
                      std::string_view value, std::string* error) {
  const auto bad_value = [&] {
    return fail(error, "option '" + std::string(key) + "': invalid value '" +
                           std::string(value) + "'");
  };

  if (key == "protocol") {
    if (value == "mnp") {
      cfg.protocol = harness::Protocol::kMnp;
    } else if (value == "deluge") {
      cfg.protocol = harness::Protocol::kDeluge;
    } else if (value == "moap") {
      cfg.protocol = harness::Protocol::kMoap;
    } else if (value == "xnp") {
      cfg.protocol = harness::Protocol::kXnp;
    } else if (value == "ncast") {
      cfg.protocol = harness::Protocol::kNcast;
    } else {
      return bad_value();
    }
    return true;
  }
  if (key == "mac") {
    if (value == "csma") {
      cfg.mac = harness::MacType::kCsma;
    } else if (value == "tdma") {
      cfg.mac = harness::MacType::kTdma;
    } else {
      return bad_value();
    }
    return true;
  }
  if (key == "tie_break") {
    if (value == "fifo") {
      cfg.tie_break = sim::TieBreak::kFifo;
    } else if (value == "lifo") {
      cfg.tie_break = sim::TieBreak::kLifo;
    } else {
      return bad_value();
    }
    return true;
  }

  if (key == "rows" || key == "cols" || key == "program_bytes" ||
      key == "program_id" || key == "segments" || key == "base") {
    std::uint64_t n = 0;
    if (!parse_u64(value, &n)) return bad_value();
    if (key == "rows") {
      if (n == 0) return bad_value();
      cfg.rows = static_cast<std::size_t>(n);
    } else if (key == "cols") {
      if (n == 0) return bad_value();
      cfg.cols = static_cast<std::size_t>(n);
    } else if (key == "program_bytes") {
      cfg.program_bytes = static_cast<std::size_t>(n);
    } else if (key == "program_id") {
      cfg.program_id = static_cast<std::uint16_t>(n);
    } else if (key == "segments") {
      cfg.set_program_segments(static_cast<std::uint16_t>(n));
    } else {
      cfg.base = static_cast<net::NodeId>(n);
    }
    return true;
  }

  if (key == "spacing_ft" || key == "range_ft" ||
      key == "interference_factor" || key == "link_noise_stddev" ||
      key == "duty_cycle" || key == "max_sim_time_s" ||
      key == "boot_jitter_ms") {
    double d = 0.0;
    if (!parse_double(value, &d)) return bad_value();
    if (key == "spacing_ft") {
      cfg.spacing_ft = d;
    } else if (key == "range_ft") {
      cfg.range_ft = d;
    } else if (key == "interference_factor") {
      cfg.interference_factor = d;
    } else if (key == "link_noise_stddev") {
      cfg.link_noise_stddev = d;
    } else if (key == "duty_cycle") {
      cfg.mnp.pre_wave_duty_cycle = d;
    } else if (key == "max_sim_time_s") {
      if (d <= 0.0) return bad_value();
      cfg.max_sim_time = static_cast<sim::Time>(d * 1e6);
    } else {
      if (d < 0.0) return bad_value();
      cfg.boot_jitter = static_cast<sim::Time>(d * 1e3);
    }
    return true;
  }

  if (key == "pipelining" || key == "query_update" || key == "battery_aware" ||
      key == "empirical_links") {
    bool b = false;
    if (!parse_bool(value, &b)) return bad_value();
    if (key == "pipelining") {
      cfg.mnp.pipelining = b;
    } else if (key == "query_update") {
      cfg.mnp.query_update_enabled = b;
    } else if (key == "battery_aware") {
      cfg.mnp.battery_aware = b;
    } else {
      cfg.empirical_links = b;
    }
    return true;
  }

  return fail(error, "unknown option '" + std::string(key) + "'");
}

RunRequestResult parse_run_request(const JsonValue& body) {
  RunRequestResult out;
  if (!body.is_object()) {
    out.error = "request body must be a JSON object";
    return out;
  }

  if (const JsonValue* config = body.find("config")) {
    if (!config->is_object()) {
      out.error = "\"config\" must be an object";
      return out;
    }
    for (const auto& [key, value] : config->members) {
      if (key == "scenario") {
        if (!value.is_string()) {
          out.error = "\"scenario\" must be a string of scenario text";
          return out;
        }
        out.scenario_text = value.string;
        continue;
      }
      if (!value.is_string() && !value.is_number() && !value.is_bool()) {
        out.error = "option '" + key + "' must be a scalar";
        return out;
      }
      if (!apply_run_option(out.request.cfg, key, scalar_to_text(value),
                            &out.error)) {
        return out;
      }
    }
  }

  if (!out.scenario_text.empty()) {
    const scenario::ParseResult parsed =
        scenario::parse_scenario_text(out.scenario_text);
    if (!parsed.ok) {
      out.error = "scenario: " + parsed.error;
      return out;
    }
    out.request.cfg.scenario = parsed.scenario;
  }

  if (const JsonValue* seeds = body.find("seeds")) {
    if (!seeds->is_array() || seeds->items.empty()) {
      out.error = "\"seeds\" must be a non-empty array";
      return out;
    }
    for (const JsonValue& s : seeds->items) {
      if (!s.is_number() || s.number < 0) {
        out.error = "\"seeds\" entries must be non-negative numbers";
        return out;
      }
      out.request.seeds.push_back(static_cast<std::uint64_t>(s.number));
    }
  } else {
    const JsonValue* seed = body.find("seed");
    const JsonValue* runs = body.find("runs");
    const std::uint64_t first =
        seed != nullptr ? static_cast<std::uint64_t>(seed->number_or(1)) : 1;
    const std::uint64_t count =
        runs != nullptr ? static_cast<std::uint64_t>(runs->number_or(1)) : 1;
    if (count == 0 || count > 100000) {
      out.error = "\"runs\" must be in [1, 100000]";
      return out;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      out.request.seeds.push_back(first + i);
    }
  }

  out.ok = true;
  return out;
}

RunRequestResult parse_run_request_text(std::string_view body) {
  const JsonParseResult parsed = parse_json(body);
  if (!parsed.ok) {
    RunRequestResult out;
    out.error = "invalid JSON: " + parsed.error;
    return out;
  }
  return parse_run_request(parsed.value);
}

std::string run_request_json(
    const std::vector<std::pair<std::string, std::string>>& options,
    std::string_view scenario_text, const std::vector<std::uint64_t>& seeds) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("config");
  w.begin_object();
  for (const auto& [key, value] : options) {
    w.key(key);
    w.value(std::string_view(value));
  }
  if (!scenario_text.empty()) {
    w.key("scenario");
    w.value(scenario_text);
  }
  w.end_object();
  w.key("seeds");
  w.begin_array();
  for (const std::uint64_t s : seeds) w.value(s);
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace mnp::service

#include "service/run_store.hpp"

#include <chrono>

namespace mnp::service {

const char* run_state_name(RunState s) {
  switch (s) {
    case RunState::kQueued:
      return "queued";
    case RunState::kRunning:
      return "running";
    case RunState::kDone:
      return "done";
    case RunState::kFailed:
      return "failed";
  }
  return "unknown";
}

RunStore::Submitted RunStore::submit(std::uint64_t manifest_hash,
                                     std::string manifest_json,
                                     double now_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto hit = by_manifest_.find(manifest_hash);
  if (hit != by_manifest_.end()) {
    RunRecord& existing = by_id_.at(hit->second);
    ++existing.dedup_hits;
    return {existing.id, false};
  }
  RunRecord record;
  record.id = next_id_++;
  record.manifest = manifest_hash;
  record.manifest_json = std::move(manifest_json);
  record.submitted_ms = now_ms;
  const std::uint64_t id = record.id;
  by_manifest_.emplace(manifest_hash, id);
  by_id_.emplace(id, std::move(record));
  return {id, true};
}

bool RunStore::get(std::uint64_t id, RunRecord* out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

bool RunStore::mark_running(std::uint64_t id, double now_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end() || it->second.state != RunState::kQueued) return false;
  it->second.state = RunState::kRunning;
  it->second.started_ms = now_ms;
  changed_.notify_all();
  return true;
}

void RunStore::mark_done(std::uint64_t id, std::string result_json,
                         std::string metrics_json, double now_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  it->second.state = RunState::kDone;
  it->second.result_json = std::move(result_json);
  it->second.metrics_json = std::move(metrics_json);
  it->second.finished_ms = now_ms;
  changed_.notify_all();
}

void RunStore::mark_failed(std::uint64_t id, std::string error,
                           double now_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  it->second.state = RunState::kFailed;
  it->second.error = std::move(error);
  it->second.finished_ms = now_ms;
  changed_.notify_all();
}

void RunStore::append_progress(std::uint64_t id, std::string line) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  it->second.progress.push_back(std::move(line));
  changed_.notify_all();
}

std::size_t RunStore::wait_progress(std::uint64_t id, std::size_t from,
                                    int timeout_ms,
                                    std::vector<std::string>* out,
                                    bool* done) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    if (done != nullptr) *done = true;
    return from;
  }
  const auto has_news = [&] {
    const RunRecord& r = it->second;
    return r.progress.size() > from || r.state == RunState::kDone ||
           r.state == RunState::kFailed;
  };
  if (!has_news() && timeout_ms > 0) {
    changed_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return has_news(); });
  }
  const RunRecord& r = it->second;
  for (std::size_t i = from; i < r.progress.size(); ++i) {
    if (out != nullptr) out->push_back(r.progress[i]);
  }
  if (done != nullptr) {
    *done = r.state == RunState::kDone || r.state == RunState::kFailed;
  }
  return r.progress.size();
}

bool RunStore::wait_terminal(std::uint64_t id, int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  const auto terminal = [&] {
    const RunState s = it->second.state;
    return s == RunState::kDone || s == RunState::kFailed;
  };
  if (!terminal() && timeout_ms > 0) {
    changed_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [&] { return terminal(); });
  }
  return terminal();
}

std::size_t RunStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_id_.size();
}

}  // namespace mnp::service

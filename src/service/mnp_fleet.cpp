// mnp_fleet: command-line client for the mnp_simd daemon (DESIGN.md §14).
//
//   mnp_fleet health  [--host IP] --port N
//   mnp_fleet version [--host IP] --port N
//   mnp_fleet metricsz [--host IP] --port N
//   mnp_fleet submit  [--host IP] --port N [experiment flags]
//                     [--seed N] [--runs N | --seeds 1,2,3]
//                     [--scenario PATH] [--wait]
//   mnp_fleet status  [--host IP] --port N --id N
//   mnp_fleet metrics [--host IP] --port N --id N [--out PATH]
//
// Experiment flags mirror mnp_sim_cli: --protocol, --mac, --rows, --cols,
// --spacing, --range, --segments, --bytes, --program-id, --no-pipelining,
// --no-query-update, --battery-aware, --duty-cycle, --disk-links,
// --tie-break, --max-sim-time-s, --boot-jitter-ms. Every flag is shipped
// through the same option vocabulary the daemon parses (service/
// run_request.hpp), so a run submitted here hashes identically to the
// same run described as JSON by any other client.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/http_client.hpp"
#include "service/json.hpp"
#include "service/run_request.hpp"

namespace {

using mnp::service::http_request;
using mnp::service::http_stream_lines;
using mnp::service::HttpResponse;

[[noreturn]] void usage(const char* self) {
  std::cerr
      << "usage: " << self
      << " health|version|metricsz|submit|status|metrics [options]\n"
      << "  common: [--host IP] --port N\n"
      << "  submit: experiment flags (see mnp_sim_cli), [--seed N]\n"
      << "          [--runs N | --seeds 1,2,3] [--scenario PATH] [--wait]\n"
      << "  status/metrics: --id N; metrics also [--out PATH]\n";
  std::exit(2);
}

std::vector<std::uint64_t> parse_seed_list(const std::string& csv) {
  std::vector<std::uint64_t> seeds;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) seeds.push_back(std::stoull(item));
  }
  return seeds;
}

int fail(const HttpResponse& res, const char* what) {
  if (!res.ok) {
    std::cerr << "mnp_fleet: " << what << ": " << res.error << "\n";
  } else {
    std::cerr << "mnp_fleet: " << what << ": HTTP " << res.status << "\n"
              << res.body << "\n";
  }
  return 1;
}

/// Extracts run ids from a submit response ({"runs":[{"id":N,...},...]}).
std::vector<std::uint64_t> submitted_ids(const std::string& body) {
  std::vector<std::uint64_t> ids;
  const auto parsed = mnp::service::parse_json(body);
  if (!parsed.ok) return ids;
  const auto* runs = parsed.value.find("runs");
  if (runs == nullptr) return ids;
  for (const auto& run : runs->items) {
    const auto* id = run.find("id");
    if (id != nullptr) ids.push_back(static_cast<std::uint64_t>(id->number));
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string command = argv[1];
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t id = 0;
  bool have_id = false;
  bool wait = false;
  std::string out_path;
  std::string scenario_text;
  std::uint64_t first_seed = 1;
  std::size_t runs = 1;
  std::vector<std::uint64_t> explicit_seeds;
  std::vector<std::pair<std::string, std::string>> options;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  auto option = [&](const char* key, std::string value) {
    options.emplace_back(key, std::move(value));
  };

  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--host")) {
      host = need_value(i);
    } else if (!std::strcmp(arg, "--port")) {
      port = static_cast<std::uint16_t>(std::stoul(need_value(i)));
    } else if (!std::strcmp(arg, "--id")) {
      id = std::stoull(need_value(i));
      have_id = true;
    } else if (!std::strcmp(arg, "--out")) {
      out_path = need_value(i);
    } else if (!std::strcmp(arg, "--wait")) {
      wait = true;
    } else if (!std::strcmp(arg, "--seed")) {
      first_seed = std::stoull(need_value(i));
    } else if (!std::strcmp(arg, "--runs")) {
      runs = std::stoul(need_value(i));
    } else if (!std::strcmp(arg, "--seeds")) {
      explicit_seeds = parse_seed_list(need_value(i));
    } else if (!std::strcmp(arg, "--scenario")) {
      std::ifstream f(need_value(i));
      if (!f) {
        std::cerr << "mnp_fleet: cannot read scenario file\n";
        return 2;
      }
      std::stringstream text;
      text << f.rdbuf();
      scenario_text = text.str();
    } else if (!std::strcmp(arg, "--protocol")) {
      option("protocol", need_value(i));
    } else if (!std::strcmp(arg, "--mac")) {
      option("mac", need_value(i));
    } else if (!std::strcmp(arg, "--rows")) {
      option("rows", need_value(i));
    } else if (!std::strcmp(arg, "--cols")) {
      option("cols", need_value(i));
    } else if (!std::strcmp(arg, "--spacing")) {
      option("spacing_ft", need_value(i));
    } else if (!std::strcmp(arg, "--range")) {
      option("range_ft", need_value(i));
    } else if (!std::strcmp(arg, "--segments")) {
      option("segments", need_value(i));
    } else if (!std::strcmp(arg, "--bytes")) {
      option("program_bytes", need_value(i));
    } else if (!std::strcmp(arg, "--program-id")) {
      option("program_id", need_value(i));
    } else if (!std::strcmp(arg, "--no-pipelining")) {
      option("pipelining", "false");
    } else if (!std::strcmp(arg, "--no-query-update")) {
      option("query_update", "false");
    } else if (!std::strcmp(arg, "--battery-aware")) {
      option("battery_aware", "true");
    } else if (!std::strcmp(arg, "--duty-cycle")) {
      option("duty_cycle", need_value(i));
    } else if (!std::strcmp(arg, "--disk-links")) {
      option("empirical_links", "false");
    } else if (!std::strcmp(arg, "--tie-break")) {
      option("tie_break", need_value(i));
    } else if (!std::strcmp(arg, "--max-sim-time-s")) {
      option("max_sim_time_s", need_value(i));
    } else if (!std::strcmp(arg, "--boot-jitter-ms")) {
      option("boot_jitter_ms", need_value(i));
    } else {
      usage(argv[0]);
    }
  }
  if (port == 0) usage(argv[0]);

  if (command == "health" || command == "version" || command == "metricsz") {
    const std::string target =
        command == "health" ? "/healthz" : "/" + command;
    const HttpResponse res = http_request(host, port, "GET", target, "");
    if (!res.ok || res.status != 200) return fail(res, target.c_str());
    std::cout << res.body << "\n";
    return 0;
  }

  if (command == "status") {
    if (!have_id) usage(argv[0]);
    const HttpResponse res = http_request(
        host, port, "GET", "/runs/" + std::to_string(id), "");
    if (!res.ok || res.status != 200) return fail(res, "status");
    std::cout << res.body << "\n";
    return 0;
  }

  if (command == "metrics") {
    if (!have_id) usage(argv[0]);
    std::ofstream out_file;
    if (!out_path.empty()) {
      out_file.open(out_path);
      if (!out_file) {
        std::cerr << "mnp_fleet: cannot open " << out_path << "\n";
        return 1;
      }
    }
    std::ostream& out = out_path.empty() ? std::cout : out_file;
    // Stream: for a finished run this is one buffered body; for an
    // in-flight run, NDJSON lines arrive live until the final manifest.
    const std::string target = "/runs/" + std::to_string(id) + "/metrics";
    const HttpResponse res =
        http_stream_lines(host, port, target, [&](std::string_view line) {
          out << line << "\n";
          return true;
        });
    if (!res.ok || res.status != 200) return fail(res, "metrics");
    return 0;
  }

  if (command != "submit") usage(argv[0]);

  std::vector<std::uint64_t> seeds = explicit_seeds;
  if (seeds.empty()) {
    for (std::size_t i = 0; i < runs; ++i) {
      seeds.push_back(first_seed + i);
    }
  }
  const std::string body =
      mnp::service::run_request_json(options, scenario_text, seeds);
  const HttpResponse res = http_request(host, port, "POST", "/runs", body);
  if (!res.ok || res.status != 200) return fail(res, "submit");
  std::cout << res.body << "\n";
  if (!wait) return 0;

  // Poll each run to a terminal state; exit nonzero if any failed.
  bool all_done_ok = true;
  for (const std::uint64_t run_id : submitted_ids(res.body)) {
    for (;;) {
      const HttpResponse status = http_request(
          host, port, "GET", "/runs/" + std::to_string(run_id), "");
      if (!status.ok || status.status != 200) return fail(status, "poll");
      const auto parsed = mnp::service::parse_json(status.body);
      const auto* state =
          parsed.ok ? parsed.value.find("state") : nullptr;
      const std::string name = state != nullptr ? state->string : "";
      if (name == "done" || name == "failed") {
        std::cout << status.body << "\n";
        if (name == "failed") all_done_ok = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }
  return all_done_ok ? 0 : 1;
}

#include "service/wallclock.hpp"

#include <chrono>

namespace mnp::service {

double wall_ms() {
  // Allowlisted (tools/mnp_lint/allowlist.txt): self-metrics only, never
  // simulator state — see the header comment.
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - kEpoch)
      .count();
}

}  // namespace mnp::service

#include "service/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mnp::service {

namespace {

int connect_to(const std::string& host, std::uint16_t port,
               std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "host must be an IPv4 literal: " + host;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    *error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, std::string_view data, std::string* error) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string request_text(const std::string& method, const std::string& target,
                         const std::string& body) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: mnp-fleet\r\nConnection: close\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Type: application/json\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

/// Parses the status line and strips head through "\r\n\r\n" from *buf.
/// Returns false until the full head has arrived.
bool take_head(std::string* buf, int* status) {
  const std::size_t head_end = buf->find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  // "HTTP/1.1 NNN Reason"
  const std::size_t sp = buf->find(' ');
  *status = 0;
  if (sp != std::string::npos) {
    *status = std::atoi(buf->c_str() + sp + 1);
  }
  buf->erase(0, head_end + 4);
  return true;
}

}  // namespace

HttpResponse http_request(const std::string& host, std::uint16_t port,
                          const std::string& method, const std::string& target,
                          const std::string& body) {
  HttpResponse res;
  const int fd = connect_to(host, port, &res.error);
  if (fd < 0) return res;
  if (!send_all(fd, request_text(method, target, body), &res.error)) {
    ::close(fd);
    return res;
  }
  std::string buf;
  bool have_head = false;
  char chunk[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      res.error = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return res;
    }
    if (n == 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    if (!have_head) have_head = take_head(&buf, &res.status);
  }
  ::close(fd);
  if (!have_head) {
    res.error = "connection closed before response head";
    return res;
  }
  res.ok = true;
  res.body = std::move(buf);
  return res;
}

HttpResponse http_stream_lines(
    const std::string& host, std::uint16_t port, const std::string& target,
    const std::function<bool(std::string_view line)>& on_line) {
  HttpResponse res;
  const int fd = connect_to(host, port, &res.error);
  if (fd < 0) return res;
  if (!send_all(fd, request_text("GET", target, ""), &res.error)) {
    ::close(fd);
    return res;
  }
  std::string buf;
  bool have_head = false;
  bool aborted = false;
  char chunk[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      res.error = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return res;
    }
    if (n == 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    if (!have_head && !take_head(&buf, &res.status)) continue;
    have_head = true;
    std::size_t nl;
    while (!aborted && (nl = buf.find('\n')) != std::string::npos) {
      if (!on_line(std::string_view(buf.data(), nl))) aborted = true;
      buf.erase(0, nl + 1);
    }
    if (aborted) break;
  }
  ::close(fd);
  if (!have_head) {
    res.error = "connection closed before response head";
    return res;
  }
  if (!aborted && !buf.empty()) on_line(buf);
  res.ok = true;
  return res;
}

}  // namespace mnp::service

#include "service/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mnp::service {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

/// send() with MSG_NOSIGNAL (a vanished client must not SIGPIPE the
/// daemon), retrying short writes. False once the peer is gone.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string response_head(int status, std::string_view content_type,
                          bool with_length, std::size_t length) {
  std::string head = "HTTP/1.1 ";
  head += std::to_string(status);
  head += ' ';
  head += http_status_reason(status);
  head += "\r\nContent-Type: ";
  head.append(content_type.data(), content_type.size());
  if (with_length) {
    head += "\r\nContent-Length: ";
    head += std::to_string(length);
  }
  head += "\r\nConnection: close\r\n\r\n";
  return head;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Reads one request off `fd`. False on malformed/oversized/peer-gone.
bool read_request(int fd, HttpRequest* out) {
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) return false;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
    header_end = buf.find("\r\n\r\n");
  }

  // Request line.
  const std::size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  out->method = line.substr(0, sp1);
  out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (out->method.empty() || out->target.empty() || out->target[0] != '/') {
    return false;
  }

  // Headers.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    const std::size_t eol = buf.find("\r\n", pos);
    const std::string header = buf.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string key = lower(header.substr(0, colon));
    std::size_t v = colon + 1;
    while (v < header.size() && header[v] == ' ') ++v;
    out->headers[key] = header.substr(v);
  }

  // Body (Content-Length only; no chunked requests).
  std::size_t content_length = 0;
  auto cl = out->headers.find("content-length");
  if (cl != out->headers.end()) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(cl->second.c_str(), &end, 10);
    if (end == cl->second.c_str() || parsed > kMaxBodyBytes) return false;
    content_length = static_cast<std::size_t>(parsed);
  }
  out->body = buf.substr(header_end + 4);
  while (out->body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    out->body.append(chunk, static_cast<std::size_t>(n));
  }
  out->body.resize(content_length);
  return true;
}

}  // namespace

const char* http_status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void HttpExchange::send(int status, std::string_view content_type,
                        std::string_view body) {
  if (responded_) return;
  responded_ = true;
  std::string out = response_head(status, content_type, true, body.size());
  out.append(body.data(), body.size());
  send_all(fd_, out);
}

bool HttpExchange::begin_stream(int status, std::string_view content_type) {
  if (responded_) return false;
  responded_ = true;
  return send_all(fd_, response_head(status, content_type, false, 0));
}

bool HttpExchange::write(std::string_view chunk) {
  return send_all(fd_, chunk);
}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::uint16_t port, Handler handler,
                       std::string* error) {
  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never exposed off-host
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    if (error != nullptr) *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) < 0) {
    if (error != nullptr) *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock and join every connection thread.
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(conns_);
  }
  for (auto& [id, conn] : conns) {
    (void)id;
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& [id, conn] : conns) {
    (void)id;
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1);

    const std::lock_guard<std::mutex> lock(conn_mutex_);
    reap_finished_locked();
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    raw->thread = std::thread([this, raw] { serve(raw); });
  }
}

void HttpServer::serve(Connection* conn) {
  HttpRequest request;
  HttpExchange exchange(conn->fd);
  if (read_request(conn->fd, &request)) {
    handler_(request, exchange);
    if (!exchange.responded()) {
      exchange.send(500, "text/plain", "handler produced no response\n");
    }
  } else if (!stopping_.load()) {
    exchange.send(400, "text/plain", "malformed request\n");
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->finished.store(true);
}

void HttpServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->finished.load()) {
      if (it->second->thread.joinable()) it->second->thread.join();
      if (it->second->fd >= 0) ::close(it->second->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mnp::service

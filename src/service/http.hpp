// Hand-rolled HTTP/1.1 server for the fleet daemon (DESIGN.md §14).
//
// Deliberately minimal and dependency-free: POSIX sockets, loopback-only
// bind, thread-per-connection, `Connection: close` on every response.
// Two response shapes cover the whole API: a buffered body with
// Content-Length, and a close-delimited stream for NDJSON live metrics
// (the client reads until EOF). No TLS, no keep-alive, no chunked
// encoding — the daemon fronts a simulator on localhost, not the
// internet.
//
// Shutdown discipline (ASan/TSan-clean): every connection thread is
// joinable and registered together with its socket; stop() closes the
// listener, shutdown()s every open socket (unblocking reads/writes), and
// joins everything before returning.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace mnp::service {

struct HttpRequest {
  std::string method;  // upper-case as sent ("GET", "POST")
  std::string target;  // path + optional query, as sent
  std::string body;
  std::map<std::string, std::string> headers;  // keys lower-cased
};

/// Per-connection response channel handed to the request handler. Exactly
/// one of send()/begin_stream() must be called; the server answers 500
/// itself when a handler responds with neither.
class HttpExchange {
 public:
  explicit HttpExchange(int fd) : fd_(fd) {}

  /// Buffered response with Content-Length.
  void send(int status, std::string_view content_type, std::string_view body);

  /// Starts a close-delimited streaming response (no Content-Length; the
  /// body ends when the handler returns and the socket closes). Returns
  /// false when the client is already gone.
  bool begin_stream(int status, std::string_view content_type);

  /// Appends one chunk to a streaming response. False = client gone;
  /// the handler should stop producing.
  bool write(std::string_view chunk);

  bool responded() const { return responded_; }

 private:
  int fd_ = -1;
  bool responded_ = false;
};

const char* http_status_reason(int status);

class HttpServer {
 public:
  using Handler = std::function<void(const HttpRequest&, HttpExchange&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept loop. False + *error on failure.
  bool start(std::uint16_t port, Handler handler, std::string* error);

  /// Stops accepting, unblocks and joins every connection. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }
  std::uint64_t connections_handled() const { return connections_.load(); }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void accept_loop();
  void serve(Connection* conn);
  void reap_finished_locked();

  // Written by start()/stop(), read concurrently by the accept loop.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  Handler handler_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};

  std::mutex conn_mutex_;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
};

}  // namespace mnp::service

// Request surface of the fleet service: one option vocabulary shared by
// the HTTP JSON body (`POST /runs`), the `mnp_fleet` client flags, and
// the tests that pin CLI-vs-JSON manifest-hash identity (DESIGN.md §14).
//
// Both entry points funnel through apply_run_option(key, value-as-text),
// so a run described twice — `--rows 12` on the command line, `"rows": 12`
// in a JSON config — builds the field-identical ExperimentConfig and
// therefore the identical canonical manifest hash. JSON scalars are
// rendered to text with exact round-trip formats (%.17g for numbers)
// before they hit the shared parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.hpp"
#include "service/json.hpp"

namespace mnp::service {

/// Applies one option to `cfg`. Returns false with *error set on an
/// unknown key or an unparsable value. Keys (all optional, defaults are
/// ExperimentConfig's): protocol, mac, rows, cols, spacing_ft, range_ft,
/// interference_factor, link_noise_stddev, segments, program_bytes,
/// program_id, pipelining, query_update, battery_aware, duty_cycle,
/// empirical_links, tie_break, max_sim_time_s, boot_jitter_ms.
bool apply_run_option(harness::ExperimentConfig& cfg, std::string_view key,
                      std::string_view value, std::string* error);

/// A parsed `POST /runs` body: the config template plus the seeds to run
/// it under (each seed becomes one dedup'able run record).
struct RunRequest {
  harness::ExperimentConfig cfg;
  std::vector<std::uint64_t> seeds;
};

struct RunRequestResult {
  bool ok = false;
  std::string error;
  RunRequest request;
  /// Inline scenario text from the body (already parsed into
  /// request.cfg.scenario; kept so callers can feed a shared cache).
  std::string scenario_text;
};

/// Parses a request body:
///   {"config": {<apply_run_option keys>..., "scenario": "<inline text>"},
///    "seed": 1, "runs": 3}            // seeds 1, 2, 3
///   {"config": {...}, "seeds": [7, 9]}  // explicit list
/// Absent seed info defaults to the single seed 1.
RunRequestResult parse_run_request(const JsonValue& body);

/// Convenience: parse_run_request over raw JSON text.
RunRequestResult parse_run_request_text(std::string_view body);

/// Renders the request-body JSON `mnp_fleet` submits: the (key, value)
/// option pairs exactly as collected from the command line (values as
/// JSON strings — parse_run_request accepts both typed scalars and their
/// textual spellings), the scenario text if any, and the seed list. The
/// daemon reconstructs a field-identical config from it.
std::string run_request_json(
    const std::vector<std::pair<std::string, std::string>>& options,
    std::string_view scenario_text, const std::vector<std::uint64_t>& seeds);

}  // namespace mnp::service

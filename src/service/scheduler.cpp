#include "service/scheduler.hpp"

#include <exception>
#include <sstream>

#include "harness/observe.hpp"
#include "harness/sweep.hpp"
#include "obs/json_writer.hpp"
#include "service/wallclock.hpp"

namespace mnp::service {

namespace {

std::string progress_line(const harness::RunProgress& p) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("sim_time_us");
  w.value(static_cast<std::int64_t>(p.sim_time));
  w.key("completed_nodes");
  w.value(static_cast<std::uint64_t>(p.completed_nodes));
  w.key("transmissions");
  w.value(p.transmissions);
  w.key("deliveries");
  w.value(p.deliveries);
  w.end_object();
  return w.take();
}

std::string result_summary(const harness::RunResult& r) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("all_completed");
  w.value(r.all_completed);
  w.key("completed_count");
  w.value(static_cast<std::uint64_t>(r.completed_count));
  w.key("completion_s");
  if (r.completion_time == sim::kNever) {
    w.null();
  } else {
    w.value(static_cast<double>(r.completion_time) / 1e6);
  }
  w.key("transmissions");
  w.value(r.transmissions);
  w.key("deliveries");
  w.value(r.deliveries);
  w.key("collisions");
  w.value(r.collisions);
  w.key("bulk_overlaps");
  w.value(r.bulk_overlaps);
  w.key("avg_messages_sent");
  w.value(r.avg_messages_sent());
  w.key("total_energy_nah");
  w.value(r.total_energy_nah());
  w.key("verified_count");
  w.value(static_cast<std::uint64_t>(r.verified_count()));
  w.key("dead_nodes");
  w.value(static_cast<std::uint64_t>(r.dead_nodes));
  w.end_object();
  return w.take();
}

}  // namespace

RunScheduler::RunScheduler(RunStore& store, AssetCache& assets,
                           std::size_t jobs, sim::Time progress_interval)
    : store_(store), assets_(assets), progress_interval_(progress_interval) {
  const std::size_t resolved = harness::resolve_sweep_jobs(jobs);
  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  // The queue is unbounded, so clamp only against the machine: pass the
  // resolved request as the "runs" bound.
  const std::size_t count = harness::effective_sweep_jobs(
      resolved, resolved, hardware, /*allow_oversubscribe=*/false);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RunScheduler::~RunScheduler() { stop(); }

void RunScheduler::enqueue(std::uint64_t run_id,
                           harness::ExperimentConfig cfg) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    queue_.push_back(Job{run_id, std::move(cfg)});
  }
  wake_.notify_one();
}

void RunScheduler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::size_t RunScheduler::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t RunScheduler::executed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return executed_;
}

std::uint64_t RunScheduler::failed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

void RunScheduler::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(job);
  }
}

void RunScheduler::execute(const Job& job) {
  if (!store_.mark_running(job.run_id, wall_ms())) return;
  harness::ExperimentConfig cfg = job.cfg;
  assets_.attach_assets(cfg);

  // Trace-free observation: the metrics registry (all the manifest export
  // reads) is unaffected by with_trace / progress sampling, so the stored
  // bytes match what an observed one-shot CLI run of the same manifest
  // writes (tests/test_service.cpp pins this).
  harness::Observation obs(/*trace_capacity=*/1);
  obs.with_trace = false;
  obs.progress_interval = progress_interval_;
  const std::uint64_t run_id = job.run_id;
  if (progress_interval_ > 0) {
    obs.on_progress = [this, run_id](const harness::RunProgress& p) {
      store_.append_progress(run_id, progress_line(p));
    };
  }

  std::string error;
  try {
    const harness::RunResult result = harness::run_experiment(cfg, &obs);
    if (!result.scenario_error.empty()) {
      error = "scenario: " + result.scenario_error;
    } else {
      std::ostringstream manifest;
      harness::write_run_manifest(manifest, cfg, cfg.seed, /*runs=*/1, obs);
      store_.mark_done(job.run_id, result_summary(result), manifest.str(),
                       wall_ms());
      const std::lock_guard<std::mutex> lock(mutex_);
      ++executed_;
      return;
    }
  } catch (const std::exception& e) {
    error = e.what();
  }
  store_.mark_failed(job.run_id, error, wall_ms());
  const std::lock_guard<std::mutex> lock(mutex_);
  ++failed_;
}

}  // namespace mnp::service

// The fleet service's only wall-clock access point.
//
// Everything under src/ is subject to the determinism lint: simulator
// code must never read real time. The service layer legitimately needs a
// monotonic clock — queue-wait and run-duration self-metrics, dedup
// speedup accounting — but those readings feed the /metricsz registry
// only, never a simulation or its exports. Confining the clock to this
// one translation unit keeps the allowlist to a single audited entry.
#pragma once

namespace mnp::service {

/// Monotonic milliseconds since an arbitrary epoch (process start-ish).
double wall_ms();

}  // namespace mnp::service

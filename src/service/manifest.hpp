// Canonical run manifests: the dedup key of the fleet service
// (DESIGN.md §14).
//
// A run is identified by what the simulator will actually see — the
// ExperimentConfig knobs reachable through the service's request surface,
// the *parsed* scenario events (so two textual spellings of the same
// schedule collide, as they must), and the seed. The manifest is rendered
// as compact JSON with a fixed key order and the repo's fixed number
// formats (obs::json_number), then hashed with 64-bit FNV-1a. Identical
// manifest hash => run_experiment produces the byte-identical RunResult
// and metrics export, so the run store can answer duplicates from cache.
//
// Deliberately NOT part of the manifest: shared_topology/shared_image
// (construction shortcuts, not semantics), Observation settings (metrics
// are observation-independent by the §9 contract), and sweep job counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "harness/experiment.hpp"

namespace mnp::service {

/// Canonical JSON rendering of (config, scenario, seed). Stable across
/// processes and builds; documented field-for-field in DESIGN.md §14.
std::string canonical_manifest(const harness::ExperimentConfig& cfg,
                               std::uint64_t seed);

/// 64-bit FNV-1a over `bytes`.
std::uint64_t fnv1a64(std::string_view bytes);

/// fnv1a64(canonical_manifest(cfg, seed)).
std::uint64_t manifest_hash(const harness::ExperimentConfig& cfg,
                            std::uint64_t seed);

/// Fixed-width lowercase hex of a manifest hash (the run store's external
/// key format, e.g. "a3f09b6c01d24e88").
std::string manifest_hash_hex(std::uint64_t hash);

}  // namespace mnp::service

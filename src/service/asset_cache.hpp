// Shared immutable asset caches for the fleet service (DESIGN.md §14).
//
// A sweep campaign submits hundreds of runs that differ only in seed;
// rebuilding the grid topology, regenerating the pseudo-random program
// image and re-parsing the scenario text for each would be pure waste.
// The cache interns each by its defining parameters and hands out
// shared_ptr<const T> — run_experiment copies the topology (mobility
// mutates positions per run) and shares the image outright. Entries are
// never evicted: the population is bounded by the number of *distinct*
// asset shapes ever requested, which for real campaigns is tiny.
//
// Thread-safe: every lookup takes one mutex; construction of a missing
// asset happens inside the lock (simple, and misses are rare after
// warm-up).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "harness/experiment.hpp"
#include "mnp/program_image.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"

namespace mnp::service {

class AssetCache {
 public:
  /// Interned rows x cols grid with `spacing_ft` pitch.
  std::shared_ptr<const net::Topology> grid(std::size_t rows, std::size_t cols,
                                            double spacing_ft);

  /// Interned deterministic program image.
  std::shared_ptr<const core::ProgramImage> image(std::uint16_t program_id,
                                                  std::size_t total_bytes,
                                                  std::uint16_t packets_per_segment,
                                                  std::size_t payload_bytes);

  /// Parse result interned by exact scenario text (a parse failure is
  /// cached too — resubmitting a broken scenario should not re-parse).
  struct ParsedScenario {
    bool ok = false;
    std::string error;
    scenario::Scenario scenario;
  };
  std::shared_ptr<const ParsedScenario> scenario(const std::string& text);

  /// Fills cfg.shared_topology / cfg.shared_image from the cache for the
  /// geometry the config describes (the service calls this right before
  /// handing the config to the scheduler).
  void attach_assets(harness::ExperimentConfig& cfg);

  struct Stats {
    std::uint64_t topology_hits = 0, topology_misses = 0;
    std::uint64_t image_hits = 0, image_misses = 0;
    std::uint64_t scenario_hits = 0, scenario_misses = 0;
  };
  Stats stats() const;

 private:
  using GridKey = std::tuple<std::size_t, std::size_t, std::uint64_t>;
  using ImageKey =
      std::tuple<std::uint16_t, std::size_t, std::uint16_t, std::size_t>;

  mutable std::mutex mutex_;
  std::map<GridKey, std::shared_ptr<const net::Topology>> grids_;
  std::map<ImageKey, std::shared_ptr<const core::ProgramImage>> images_;
  std::map<std::string, std::shared_ptr<const ParsedScenario>> scenarios_;
  Stats stats_;
};

}  // namespace mnp::service

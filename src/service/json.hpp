// Minimal JSON reader for the fleet service (DESIGN.md §14).
//
// The daemon's request bodies and the client's response handling need a
// parser, and the repo is dependency-free by policy — so this is a small
// recursive-descent reader producing a plain value tree. It is the
// read-side twin of obs::JsonWriter: the writer emits compact RFC 8259
// JSON, this accepts it (plus arbitrary inter-token whitespace). Object
// members preserve their source order; lookups are linear, which is fine
// at request/response sizes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mnp::service {

struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// First member with key `key`, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const;

  /// Convenience accessors with defaults for absent/mistyped values.
  double number_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  bool bool_or(bool fallback) const { return is_bool() ? boolean : fallback; }
  std::string_view string_or(std::string_view fallback) const {
    return is_string() ? std::string_view(string) : fallback;
  }
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  /// "offset N: message" when !ok.
  std::string error;
};

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Depth-limited to keep hostile inputs from
/// recursing the stack away.
JsonParseResult parse_json(std::string_view text);

}  // namespace mnp::service

#include "service/json.hpp"

#include <cctype>
#include <cstdlib>

namespace mnp::service {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult out;
    if (!parse_value(out.value, 0)) {
      out.error = error_;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      out.error = error_;
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + msg;
    }
    return false;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // UTF-8 encode; surrogate pairs are passed through as two
          // 3-byte sequences (the telemetry never emits any).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return fail("invalid number");
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          JsonValue value;
          if (!parse_value(value, depth + 1)) return false;
          out.members.emplace_back(std::move(key), std::move(value));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return consume('}');
        }
      }
      case '[': {
        ++pos_;
        out.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          JsonValue value;
          if (!parse_value(value, depth + 1)) return false;
          out.items.push_back(std::move(value));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return consume(']');
        }
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return parse_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return parse_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return parse_literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace mnp::service

// Concurrent run scheduler: multiplexes queued simulations over a worker
// pool sized by the same clamp the sweep harness uses (DESIGN.md §14).
//
// Each worker pops one queued run, attaches shared assets from the
// AssetCache, executes run_experiment with a trace-free Observation whose
// on_progress hook feeds NDJSON lines into the RunStore, and stores the
// deterministic metrics export as the record's result bytes. Workers are
// plain joinable std::threads; stop() drains nothing — queued runs that
// never started stay kQueued, which the daemon reports on shutdown.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "service/asset_cache.hpp"
#include "service/run_store.hpp"

namespace mnp::service {

class RunScheduler {
 public:
  /// `jobs` follows SweepOptions::jobs semantics: 0 resolves through
  /// MNP_SWEEP_JOBS and is clamped to hardware concurrency (at least 1).
  RunScheduler(RunStore& store, AssetCache& assets, std::size_t jobs,
               sim::Time progress_interval);
  ~RunScheduler();

  RunScheduler(const RunScheduler&) = delete;
  RunScheduler& operator=(const RunScheduler&) = delete;

  /// Queues run `run_id` for execution. The config must already describe
  /// the run completely (seed included); assets are attached worker-side.
  void enqueue(std::uint64_t run_id, harness::ExperimentConfig cfg);

  /// Stops accepting work and joins every worker. Idempotent.
  void stop();

  std::size_t workers() const { return workers_.size(); }
  std::size_t queue_depth() const;
  std::uint64_t executed() const;
  std::uint64_t failed() const;

 private:
  struct Job {
    std::uint64_t run_id = 0;
    harness::ExperimentConfig cfg;
  };

  void worker_loop();
  void execute(const Job& job);

  RunStore& store_;
  AssetCache& assets_;
  const sim::Time progress_interval_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::uint64_t executed_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace mnp::service

// mnp_simd: the fleet-operations daemon — a long-running simulation
// server exposing the experiment harness over loopback HTTP
// (DESIGN.md §14).
//
//   mnp_simd [--port N] [--jobs N] [--progress-interval-s F]
//            [--port-file PATH]
//
//   --port N                TCP port on 127.0.0.1 (default 7077; 0 picks
//                           an ephemeral port)
//   --jobs N                scheduler worker threads (default: resolve
//                           MNP_SWEEP_JOBS, clamped to hardware)
//   --progress-interval-s F simulated-time cadence of live NDJSON
//                           progress samples (default 30; 0 disables)
//   --port-file PATH        write the bound port to PATH (CI scripts
//                           poll this instead of parsing stdout)
//
// The daemon prints "mnp_simd listening on 127.0.0.1:<port>" once ready
// and runs until SIGINT/SIGTERM.
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "service/server.hpp"
#include "sim/time.hpp"

namespace {

[[noreturn]] void usage(const char* self) {
  std::cerr << "usage: " << self
            << " [--port N] [--jobs N] [--progress-interval-s F]"
               " [--port-file PATH]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mnp;
  service::FleetServerOptions options;
  options.port = 7077;
  std::string port_file;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!std::strcmp(arg, "--port")) {
      options.port = static_cast<std::uint16_t>(std::stoul(need_value(i)));
    } else if (!std::strcmp(arg, "--jobs")) {
      options.jobs = std::stoul(need_value(i));
    } else if (!std::strcmp(arg, "--progress-interval-s")) {
      options.progress_interval =
          static_cast<sim::Time>(std::stod(need_value(i)) * 1e6);
    } else if (!std::strcmp(arg, "--port-file")) {
      port_file = need_value(i);
    } else {
      usage(argv[0]);
    }
  }

  // Handle SIGINT/SIGTERM via sigwait so shutdown is a plain function
  // return: stop the HTTP server, join every worker, exit 0.
  sigset_t stop_signals;
  sigemptyset(&stop_signals);
  sigaddset(&stop_signals, SIGINT);
  sigaddset(&stop_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

  service::FleetServer server(options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "mnp_simd: " << error << "\n";
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream f(port_file);
    f << server.port() << "\n";
  }
  std::cout << "mnp_simd listening on 127.0.0.1:" << server.port()
            << std::endl;

  int sig = 0;
  sigwait(&stop_signals, &sig);
  std::cout << "mnp_simd: signal " << sig << ", draining ("
            << server.store().size() << " run(s) in store)" << std::endl;
  server.stop();
  return 0;
}

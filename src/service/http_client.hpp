// Minimal blocking HTTP/1.1 client for mnp_fleet and the service tests.
// Loopback-oriented: the host is a dotted-quad IPv4 literal (default
// 127.0.0.1), one request per connection, responses are read to EOF
// (the server always answers `Connection: close`).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace mnp::service {

struct HttpResponse {
  bool ok = false;      // transport-level success (any status counts as ok)
  int status = 0;
  std::string body;
  std::string error;    // transport error when !ok
};

/// One buffered request/response round trip.
HttpResponse http_request(const std::string& host, std::uint16_t port,
                          const std::string& method, const std::string& target,
                          const std::string& body);

/// Streaming GET: invokes `on_line` for every newline-terminated line of
/// the close-delimited body as it arrives (NDJSON live metrics). A false
/// return from the callback aborts the stream early. The final unterminated
/// fragment, if any, is delivered too.
HttpResponse http_stream_lines(
    const std::string& host, std::uint16_t port, const std::string& target,
    const std::function<bool(std::string_view line)>& on_line);

}  // namespace mnp::service

// Dedup'ing run-result store (DESIGN.md §14).
//
// Every submitted run becomes one RunRecord keyed by its canonical
// manifest hash (service/manifest.hpp). Submitting a manifest the store
// already holds — queued, running, or done — returns the existing record
// instead of creating a new one, so duplicate work is never enqueued and
// a finished duplicate is answered with the *stored bytes* of the first
// execution: byte-identical to a fresh simulation because the exports
// are deterministic functions of the manifest (DESIGN.md §9).
//
// Concurrency: one mutex + condition variable guard the whole store.
// Records are value-snapshotted out; waiting (pollers, NDJSON streamers)
// is condition-variable based with a timeout so a dropped client can
// never wedge a worker.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mnp::service {

enum class RunState : std::uint8_t { kQueued, kRunning, kDone, kFailed };
const char* run_state_name(RunState s);

struct RunRecord {
  std::uint64_t id = 0;
  std::uint64_t manifest = 0;       // canonical manifest hash
  std::string manifest_json;        // the canonical manifest itself
  RunState state = RunState::kQueued;
  std::string error;                // kFailed only
  std::string result_json;          // run summary (service/scheduler.cpp)
  std::string metrics_json;         // full run-manifest export bytes
  std::vector<std::string> progress;  // NDJSON lines, in emission order
  std::uint64_t dedup_hits = 0;     // duplicate submissions answered
  double submitted_ms = 0.0;        // wall_ms() timestamps, self-metrics only
  double started_ms = 0.0;
  double finished_ms = 0.0;
};

class RunStore {
 public:
  struct Submitted {
    std::uint64_t id = 0;
    bool created = false;  // false = dedup hit on an existing record
  };

  /// Creates a record for `manifest_hash` or returns the existing one
  /// (bumping its dedup_hits).
  Submitted submit(std::uint64_t manifest_hash, std::string manifest_json,
                   double now_ms);

  /// Snapshot by id; false when unknown.
  bool get(std::uint64_t id, RunRecord* out) const;

  /// Worker transitions. mark_running returns false when the record is
  /// not in kQueued (defensive; the scheduler owns the queue).
  bool mark_running(std::uint64_t id, double now_ms);
  void mark_done(std::uint64_t id, std::string result_json,
                 std::string metrics_json, double now_ms);
  void mark_failed(std::uint64_t id, std::string error, double now_ms);

  /// Appends one NDJSON progress line (streamers are woken).
  void append_progress(std::uint64_t id, std::string line);

  /// Copies progress lines [from, ...) into *out and returns the new
  /// cursor. `done` reports whether the run reached a terminal state.
  /// Blocks up to timeout_ms for new lines when none are pending.
  std::size_t wait_progress(std::uint64_t id, std::size_t from,
                            int timeout_ms, std::vector<std::string>* out,
                            bool* done) const;

  /// Blocks until the record leaves kQueued/kRunning or timeout_ms
  /// elapses; returns true on terminal state.
  bool wait_terminal(std::uint64_t id, int timeout_ms) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable changed_;
  std::map<std::uint64_t, RunRecord> by_id_;
  std::map<std::uint64_t, std::uint64_t> by_manifest_;
  std::uint64_t next_id_ = 1;
};

}  // namespace mnp::service

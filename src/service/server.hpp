// FleetServer: the mnp_simd daemon's HTTP API over the run store, the
// scheduler and the asset caches (DESIGN.md §14 documents each endpoint).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/asset_cache.hpp"
#include "service/http.hpp"
#include "service/run_store.hpp"
#include "service/scheduler.hpp"

namespace mnp::service {

struct FleetServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Scheduler worker threads; 0 resolves through MNP_SWEEP_JOBS and the
  /// hardware clamp (harness::effective_sweep_jobs).
  std::size_t jobs = 0;
  /// Simulated-time cadence of live-progress NDJSON samples (0 disables
  /// streaming progress; metrics streaming then only emits the final line).
  sim::Time progress_interval = sim::sec(30);
  /// Wall-clock poll granularity of streaming waits. Small enough that a
  /// stream notices run completion promptly, large enough to stay idle.
  int stream_poll_ms = 100;
};

class FleetServer {
 public:
  explicit FleetServer(FleetServerOptions options);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  bool start(std::string* error);
  void stop();

  std::uint16_t port() const { return http_.port(); }
  RunStore& store() { return store_; }
  AssetCache& assets() { return assets_; }
  RunScheduler& scheduler() { return *scheduler_; }

 private:
  struct Route {
    std::string method;
    std::string pattern;  // "/runs/{id}/metrics" — {id} captures a segment
    std::function<void(const HttpRequest&, HttpExchange&,
                       const std::vector<std::string>&)>
        handler;
  };

  void add_route(const char* method, const char* pattern,
                 std::function<void(const HttpRequest&, HttpExchange&,
                                    const std::vector<std::string>&)>
                     handler);
  void dispatch(const HttpRequest& request, HttpExchange& exchange);
  static bool match_route(const std::string& pattern, std::string_view path,
                          std::vector<std::string>* params);

  void handle_healthz(const HttpRequest&, HttpExchange&,
                      const std::vector<std::string>&);
  void handle_version(const HttpRequest&, HttpExchange&,
                      const std::vector<std::string>&);
  void handle_metricsz(const HttpRequest&, HttpExchange&,
                       const std::vector<std::string>&);
  void handle_submit(const HttpRequest&, HttpExchange&,
                     const std::vector<std::string>&);
  void handle_run_status(const HttpRequest&, HttpExchange&,
                         const std::vector<std::string>&);
  void handle_run_metrics(const HttpRequest&, HttpExchange&,
                          const std::vector<std::string>&);

  std::string run_status_json(const RunRecord& record) const;

  const FleetServerOptions options_;
  RunStore store_;
  AssetCache assets_;
  std::unique_ptr<RunScheduler> scheduler_;
  HttpServer http_;
  std::vector<Route> routes_;
  std::atomic<bool> stopping_{false};
  double started_ms_ = 0.0;

  /// MetricsRegistry is not thread-safe; every touch goes through this.
  mutable std::mutex self_metrics_mutex_;
  obs::MetricsRegistry self_metrics_;
  obs::MetricsRegistry::Counter m_http_requests_;
  obs::MetricsRegistry::Counter m_http_errors_;
  obs::MetricsRegistry::Counter m_runs_submitted_;
  obs::MetricsRegistry::Counter m_runs_deduped_;
  obs::MetricsRegistry::Counter m_stream_lines_;
};

}  // namespace mnp::service

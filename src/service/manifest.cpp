#include "service/manifest.hpp"

#include "obs/json_writer.hpp"
#include "scenario/scenario.hpp"

namespace mnp::service {

namespace {

const char* mac_name(harness::MacType m) {
  return m == harness::MacType::kTdma ? "tdma" : "csma";
}

void write_node_list(obs::JsonWriter& w, const std::vector<net::NodeId>& ids) {
  w.begin_array();
  for (const net::NodeId id : ids) w.value(static_cast<std::uint64_t>(id));
  w.end_array();
}

/// Canonical rendering of one parsed scenario event. Every field is
/// emitted (defaults included) so the shape never depends on the kind.
void write_event(obs::JsonWriter& w, const scenario::ScenarioEvent& e) {
  w.begin_object();
  w.key("at");
  w.value(static_cast<std::int64_t>(e.at));
  w.key("kind");
  w.value(scenario::to_string(e.kind));
  w.key("node");
  w.value(static_cast<std::uint64_t>(e.node));
  w.key("value");
  w.value(e.value);
  w.key("duration");
  w.value(static_cast<std::int64_t>(e.duration));
  w.key("x");
  w.value(e.x);
  w.key("y");
  w.value(e.y);
  w.key("groups");
  w.begin_array();
  for (const auto& group : e.groups) write_node_list(w, group);
  w.end_array();
  w.key("nodes");
  write_node_list(w, e.nodes);
  w.end_object();
}

}  // namespace

std::string canonical_manifest(const harness::ExperimentConfig& cfg,
                               std::uint64_t seed) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("manifest_version");
  w.value(1);

  w.key("config");
  w.begin_object();
  w.key("protocol");
  w.value(harness::protocol_name(cfg.protocol));
  w.key("mac");
  w.value(mac_name(cfg.mac));
  w.key("rows");
  w.value(static_cast<std::uint64_t>(cfg.rows));
  w.key("cols");
  w.value(static_cast<std::uint64_t>(cfg.cols));
  w.key("spacing_ft");
  w.value(cfg.spacing_ft);
  w.key("base");
  w.value(static_cast<std::uint64_t>(cfg.base));
  w.key("tdma_slot_us");
  w.value(static_cast<std::int64_t>(cfg.tdma_slot));
  w.key("range_ft");
  w.value(cfg.range_ft);
  w.key("interference_factor");
  w.value(cfg.interference_factor);
  w.key("empirical_links");
  w.value(cfg.empirical_links);
  w.key("link_noise_stddev");
  w.value(cfg.link_noise_stddev);
  w.key("chan_bitrate_bps");
  w.value(cfg.channel.bitrate_bps);
  w.key("chan_neighbor_cache");
  w.value(cfg.channel.neighbor_cache);
  w.key("chan_zero_copy");
  w.value(cfg.channel.zero_copy);
  w.key("chan_grid_index");
  w.value(cfg.channel.grid_index);
  w.key("program_id");
  w.value(static_cast<std::uint64_t>(cfg.program_id));
  w.key("program_bytes");
  w.value(static_cast<std::uint64_t>(cfg.program_bytes));
  w.key("seed");
  w.value(seed);
  w.key("max_sim_time_us");
  w.value(static_cast<std::int64_t>(cfg.max_sim_time));
  w.key("boot_jitter_us");
  w.value(static_cast<std::int64_t>(cfg.boot_jitter));
  w.key("tie_break");
  w.value(cfg.tie_break == sim::TieBreak::kFifo ? "fifo" : "lifo");

  // Protocol knobs on the service request surface, plus every field that
  // shapes the disseminated image's segment geometry (those decide the
  // simulation even when the protocol in question is not selected for
  // this run — image geometry is resolved per protocol).
  w.key("mnp_packets_per_segment");
  w.value(static_cast<std::uint64_t>(cfg.mnp.packets_per_segment));
  w.key("mnp_payload_bytes");
  w.value(static_cast<std::uint64_t>(cfg.mnp.payload_bytes));
  w.key("mnp_pipelining");
  w.value(cfg.mnp.pipelining);
  w.key("mnp_query_update");
  w.value(cfg.mnp.query_update_enabled);
  w.key("mnp_battery_aware");
  w.value(cfg.mnp.battery_aware);
  w.key("mnp_duty_cycle");
  w.value(cfg.mnp.pre_wave_duty_cycle);
  w.key("deluge_packets_per_page");
  w.value(static_cast<std::uint64_t>(cfg.deluge.packets_per_page));
  w.key("deluge_payload_bytes");
  w.value(static_cast<std::uint64_t>(cfg.deluge.payload_bytes));
  w.key("moap_payload_bytes");
  w.value(static_cast<std::uint64_t>(cfg.moap.payload_bytes));
  w.key("xnp_payload_bytes");
  w.value(static_cast<std::uint64_t>(cfg.xnp.payload_bytes));
  w.key("ncast_generation_size");
  w.value(static_cast<std::uint64_t>(cfg.ncast.generation_size));
  w.key("ncast_payload_bytes");
  w.value(static_cast<std::uint64_t>(cfg.ncast.payload_bytes));

  w.key("battery_levels");
  w.begin_array();
  for (const double level : cfg.battery_levels) w.value(level);
  w.end_array();
  w.end_object();

  // The *parsed* schedule, not its textual spelling: comments, blank
  // lines and equivalent time suffixes ("90s" vs "1.5min") hash alike.
  w.key("scenario");
  w.begin_object();
  w.key("name");
  w.value(cfg.scenario.name());
  w.key("events");
  w.begin_array();
  for (const scenario::ScenarioEvent& e : cfg.scenario.events()) {
    write_event(w, e);
  }
  w.end_array();
  w.end_object();

  w.end_object();
  return w.take();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t manifest_hash(const harness::ExperimentConfig& cfg,
                            std::uint64_t seed) {
  return fnv1a64(canonical_manifest(cfg, seed));
}

std::string manifest_hash_hex(std::uint64_t hash) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace mnp::service

#include "scenario/scenario_parser.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace mnp::scenario {

namespace {

/// Whitespace-separated tokens of one line (after stripping comments).
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

bool parse_double(std::string_view tok, double* out) {
  const char* begin = tok.data();
  const char* end = begin + tok.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

/// "90s" / "2min" / "1.5h" -> microseconds. False on a bad number or an
/// unknown suffix (a bare number is rejected: units are mandatory).
bool parse_time(std::string_view tok, sim::Time* out) {
  std::size_t digits = 0;
  while (digits < tok.size() &&
         (std::isdigit(static_cast<unsigned char>(tok[digits])) ||
          tok[digits] == '.')) {
    ++digits;
  }
  if (digits == 0 || digits == tok.size()) return false;
  double value = 0.0;
  if (!parse_double(tok.substr(0, digits), &value)) return false;
  const std::string_view suffix = tok.substr(digits);
  double scale = 0.0;
  if (suffix == "us") scale = 1.0;
  else if (suffix == "ms") scale = 1e3;
  else if (suffix == "s") scale = 1e6;
  else if (suffix == "min") scale = 60e6;
  else if (suffix == "h") scale = 3600e6;
  else return false;
  *out = static_cast<sim::Time>(std::llround(value * scale));
  return *out >= 0;
}

bool parse_node(std::string_view tok, net::NodeId* out) {
  std::uint32_t v = 0;
  const char* begin = tok.data();
  const char* end = begin + tok.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end || v >= net::kNoNode) return false;
  *out = static_cast<net::NodeId>(v);
  return true;
}

/// "0-4,10,12-14" -> expanded id list (ranges inclusive, order preserved).
bool parse_node_list(std::string_view tok, std::vector<net::NodeId>* out) {
  std::size_t pos = 0;
  while (pos < tok.size()) {
    std::size_t comma = tok.find(',', pos);
    if (comma == std::string_view::npos) comma = tok.size();
    const std::string_view item = tok.substr(pos, comma - pos);
    if (item.empty()) return false;
    const std::size_t dash = item.find('-');
    if (dash == std::string_view::npos) {
      net::NodeId id;
      if (!parse_node(item, &id)) return false;
      out->push_back(id);
    } else {
      net::NodeId lo, hi;
      if (!parse_node(item.substr(0, dash), &lo) ||
          !parse_node(item.substr(dash + 1), &hi) || lo > hi) {
        return false;
      }
      for (std::uint32_t id = lo; id <= hi; ++id) {
        out->push_back(static_cast<net::NodeId>(id));
      }
    }
    pos = comma + 1;
  }
  return !out->empty();
}

std::string error_at(std::size_t line_no, std::string_view message) {
  std::ostringstream os;
  os << "line " << line_no << ": " << message;
  return os.str();
}

}  // namespace

ParseResult parse_scenario_text(std::string_view text) {
  ParseResult result;
  std::string name = "scenario";
  std::vector<ScenarioEvent> events;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const auto tok = tokenize(line);
    if (tok.empty()) continue;

    if (tok[0] == "scenario") {
      if (tok.size() != 2) {
        result.error = error_at(line_no, "expected: scenario NAME");
        return result;
      }
      name.assign(tok[1]);
      continue;
    }
    if (tok[0] != "at" || tok.size() < 3) {
      result.error = error_at(line_no, "expected: at TIME VERB ...");
      return result;
    }
    ScenarioEvent e;
    if (!parse_time(tok[1], &e.at)) {
      result.error = error_at(line_no, "bad time (want e.g. 90s, 2min)");
      return result;
    }
    const std::string_view verb = tok[2];

    if (verb == "kill" || verb == "reboot" || verb == "battery") {
      std::vector<net::NodeId> ids;
      if (tok.size() < 4 || !parse_node_list(tok[3], &ids)) {
        result.error = error_at(line_no, "bad node list");
        return result;
      }
      sim::Time down = 0;
      double budget = 0.0;
      if (verb == "kill") {
        e.kind = EventKind::kKill;
        if (tok.size() == 6 && tok[4] == "down") {
          if (!parse_time(tok[5], &down)) {
            result.error = error_at(line_no, "bad downtime");
            return result;
          }
        } else if (tok.size() != 4) {
          result.error = error_at(line_no, "expected: kill NODES [down TIME]");
          return result;
        }
      } else if (verb == "reboot") {
        e.kind = EventKind::kReboot;
        if (tok.size() != 4) {
          result.error = error_at(line_no, "expected: reboot NODES");
          return result;
        }
      } else {
        e.kind = EventKind::kBatteryBudget;
        if (tok.size() != 6 || tok[4] != "budget" ||
            !parse_double(tok[5], &budget) || budget <= 0.0) {
          result.error = error_at(line_no, "expected: battery NODES budget NAH");
          return result;
        }
      }
      for (const net::NodeId id : ids) {
        ScenarioEvent per = e;
        per.node = id;
        per.duration = down;
        per.value = budget;
        events.push_back(std::move(per));
      }
      continue;
    }

    if (verb == "crash-fraction") {
      e.kind = EventKind::kCrashFraction;
      if (tok.size() < 4 || !parse_double(tok[3], &e.value) ||
          e.value <= 0.0 || e.value > 1.0) {
        result.error = error_at(line_no, "bad fraction (want (0, 1])");
        return result;
      }
      if (tok.size() == 6 && tok[4] == "down") {
        if (!parse_time(tok[5], &e.duration)) {
          result.error = error_at(line_no, "bad downtime");
          return result;
        }
      } else if (tok.size() != 4) {
        result.error =
            error_at(line_no, "expected: crash-fraction F [down TIME]");
        return result;
      }
      events.push_back(std::move(e));
      continue;
    }

    if (verb == "partition") {
      e.kind = EventKind::kPartition;
      if (tok.size() != 6 || !parse_time(tok[3], &e.duration) ||
          tok[4] != "groups") {
        result.error =
            error_at(line_no, "expected: partition TIME groups A|B[|C...]");
        return result;
      }
      std::string_view spec = tok[5];
      std::size_t gpos = 0;
      while (gpos <= spec.size()) {
        std::size_t bar = spec.find('|', gpos);
        if (bar == std::string_view::npos) bar = spec.size();
        std::vector<net::NodeId> group;
        if (!parse_node_list(spec.substr(gpos, bar - gpos), &group)) {
          result.error = error_at(line_no, "bad partition group");
          return result;
        }
        e.groups.push_back(std::move(group));
        gpos = bar + 1;
      }
      if (e.groups.size() < 2) {
        result.error = error_at(line_no, "partition needs at least 2 groups");
        return result;
      }
      events.push_back(std::move(e));
      continue;
    }

    if (verb == "degrade") {
      e.kind = EventKind::kDegrade;
      if (tok.size() < 6 || !parse_double(tok[3], &e.value) || e.value < 0.0 ||
          e.value > 1.0 || tok[4] != "for" || !parse_time(tok[5], &e.duration)) {
        result.error = error_at(
            line_no, "expected: degrade F for TIME [nodes NODES]");
        return result;
      }
      if (tok.size() == 8 && tok[6] == "nodes") {
        if (!parse_node_list(tok[7], &e.nodes)) {
          result.error = error_at(line_no, "bad node list");
          return result;
        }
      } else if (tok.size() != 6) {
        result.error = error_at(
            line_no, "expected: degrade F for TIME [nodes NODES]");
        return result;
      }
      events.push_back(std::move(e));
      continue;
    }

    if (verb == "move") {
      e.kind = EventKind::kMove;
      if (tok.size() < 7 || !parse_node(tok[3], &e.node) || tok[4] != "to" ||
          !parse_double(tok[5], &e.x) || !parse_double(tok[6], &e.y)) {
        result.error =
            error_at(line_no, "expected: move NODE to X Y [over TIME]");
        return result;
      }
      if (tok.size() == 9 && tok[7] == "over") {
        if (!parse_time(tok[8], &e.duration)) {
          result.error = error_at(line_no, "bad travel time");
          return result;
        }
      } else if (tok.size() != 7) {
        result.error =
            error_at(line_no, "expected: move NODE to X Y [over TIME]");
        return result;
      }
      events.push_back(std::move(e));
      continue;
    }

    result.error = error_at(line_no, "unknown verb '" + std::string(verb) + "'");
    return result;
  }

  result.ok = true;
  result.scenario = Scenario(std::move(name), std::move(events));
  return result;
}

ParseResult load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    result.error = "cannot open scenario file: " + path;
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_text(buf.str());
}

std::string format_time(sim::Time t) {
  std::ostringstream os;
  if (t > 0 && t % sim::hours(1) == 0) os << t / sim::hours(1) << "h";
  else if (t > 0 && t % sim::minutes(1) == 0) os << t / sim::minutes(1) << "min";
  else if (t > 0 && t % sim::sec(1) == 0) os << t / sim::sec(1) << "s";
  else if (t > 0 && t % sim::msec(1) == 0) os << t / sim::msec(1) << "ms";
  else os << t << "us";
  return os.str();
}

namespace {

/// Re-compresses an expanded id list into "0-4,10" range syntax.
void write_node_list(std::ostringstream& os, const std::vector<net::NodeId>& ids) {
  for (std::size_t i = 0; i < ids.size();) {
    std::size_t j = i;
    while (j + 1 < ids.size() && ids[j + 1] == ids[j] + 1) ++j;
    if (i > 0) os << ",";
    if (j > i) os << ids[i] << "-" << ids[j];
    else os << ids[i];
    i = j + 1;
  }
}

/// Fixed-format double: trims trailing zeros so 0.2 stays "0.2".
void write_double(std::ostringstream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(10);
  tmp << v;
  os << tmp.str();
}

}  // namespace

std::string to_text(const Scenario& scenario) {
  std::ostringstream os;
  os << "scenario " << scenario.name() << "\n";
  for (const auto& e : scenario.events()) {
    os << "at " << format_time(e.at) << " ";
    switch (e.kind) {
      case EventKind::kKill:
        os << "kill " << e.node;
        if (e.duration > 0) os << " down " << format_time(e.duration);
        break;
      case EventKind::kReboot:
        os << "reboot " << e.node;
        break;
      case EventKind::kCrashFraction:
        os << "crash-fraction ";
        write_double(os, e.value);
        if (e.duration > 0) os << " down " << format_time(e.duration);
        break;
      case EventKind::kBatteryBudget:
        os << "battery " << e.node << " budget ";
        write_double(os, e.value);
        break;
      case EventKind::kPartition:
        os << "partition " << format_time(e.duration) << " groups ";
        for (std::size_t g = 0; g < e.groups.size(); ++g) {
          if (g > 0) os << "|";
          write_node_list(os, e.groups[g]);
        }
        break;
      case EventKind::kDegrade:
        os << "degrade ";
        write_double(os, e.value);
        os << " for " << format_time(e.duration);
        if (!e.nodes.empty()) {
          os << " nodes ";
          write_node_list(os, e.nodes);
        }
        break;
      case EventKind::kMove:
        os << "move " << e.node << " to ";
        write_double(os, e.x);
        os << " ";
        write_double(os, e.y);
        if (e.duration > 0) os << " over " << format_time(e.duration);
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mnp::scenario

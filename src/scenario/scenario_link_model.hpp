// ScenarioLinkModel: a LinkModel decorator the scenario engine mutates at
// runtime — hard partitions (cross-group links zeroed, no interference
// either: the groups are radio-disjoint) and degrade windows (per-node
// success multipliers). Every mutation bumps revision(), which the
// Channel compares against the revision its per-power-scale neighbor
// caches were built at, so cached adjacency can never leak across a fault
// boundary. In-flight transmissions are unaffected (the Channel snapshots
// candidates at transmission start — physically, a wave already launched).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link_model.hpp"

namespace mnp::scenario {

class ScenarioLinkModel final : public net::LinkModel {
 public:
  ScenarioLinkModel(std::unique_ptr<net::LinkModel> inner,
                    std::size_t node_count);

  double packet_success(net::NodeId src, net::NodeId dst,
                        double power_scale) const override;
  bool interferes(net::NodeId src, net::NodeId dst,
                  double power_scale) const override;
  std::uint64_t revision() const override { return revision_; }
  /// Partitions and degrades only ever *remove* links the inner model
  /// offers, so the inner model's bound holds unchanged.
  double max_interference_range(double power_scale) const override {
    return inner_->max_interference_range(power_scale);
  }
  /// Enumerates the nodes touched by every window edge since `since` from
  /// a bounded per-revision log, so the Channel repairs only the affected
  /// neighborhoods instead of discarding every cache.
  bool changed_nodes_since(std::uint64_t since,
                           std::vector<net::NodeId>& out) const override;

  /// Nodes in different groups cannot reach each other at all. Nodes in
  /// no listed group share one implicit extra group (they keep talking to
  /// each other, but to nobody listed). Replaces any active partition.
  void set_partition(const std::vector<std::vector<net::NodeId>>& groups);
  void clear_partition();
  bool partition_active() const { return partition_active_; }

  /// Multiplies the per-node success factor for `nodes` (all nodes when
  /// empty) by `factor`; end_degrade with the same arguments undoes it.
  /// A link's success is scaled by both endpoints' factors.
  void begin_degrade(double factor, const std::vector<net::NodeId>& nodes);
  void end_degrade(double factor, const std::vector<net::NodeId>& nodes);

 private:
  /// One mutation's footprint: the nodes whose links it touched (`all`
  /// when it touched everyone). The log is a ring over the last
  /// kChangeLogCapacity revisions; consumers further behind than that get
  /// "unknown" and fall back to a full rebuild.
  struct ChangeRecord {
    std::uint64_t revision = 0;
    bool all = false;
    std::vector<net::NodeId> nodes;
  };
  static constexpr std::size_t kChangeLogCapacity = 256;

  bool severed(net::NodeId src, net::NodeId dst) const {
    return partition_active_ && src < group_.size() && dst < group_.size() &&
           group_[src] != group_[dst];
  }
  void log_change(bool all, std::vector<net::NodeId> nodes);

  std::unique_ptr<net::LinkModel> inner_;
  bool partition_active_ = false;
  std::vector<int> group_;      // node -> group id; -1 = implicit group
  std::vector<double> factor_;  // per-node success multiplier
  // Nodes named by the active (or last) partition: a partition only ever
  // changes links with at least one named endpoint, so set/clear windows
  // log exactly this set.
  std::vector<net::NodeId> partition_nodes_;
  std::vector<ChangeRecord> change_log_;  // ring, slot = revision % capacity
  std::uint64_t revision_ = 0;
};

}  // namespace mnp::scenario

// ScenarioEngine: binds a Scenario to a live Network + Simulator and
// injects its events at the scheduled instants.
//
// Determinism: the engine forks its own RNG stream once at construction
// (crash-fraction victim selection draws from it and nothing else), and
// every injection is a pre-scheduled closure on the simulation scheduler,
// so an armed scenario perturbs nothing except through the world
// mutations themselves — two runs with the same (seed, config, scenario)
// replay bit-identically, observed or not.
//
// Every injection is recorded as a trace::EventKind::kScenario event
// (details like "kill 5", "partition on" — the " on"/" off" suffix pair
// is what the Perfetto exporter turns into fault-window slices) and
// counted under scenario.* metrics when a registry is attached.
#pragma once

#include <cstdint>
#include <string>

#include "node/network.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scenario_link_model.hpp"
#include "sim/rng.hpp"
#include "trace/event_log.hpp"

namespace mnp::scenario {

class ScenarioEngine {
 public:
  /// `links` may be null when the scenario has no partition/degrade
  /// events (arm() rejects the combination otherwise). Trace/metrics
  /// sinks are optional and read from the network's stats collector.
  /// `protect` (usually the base station) is never picked by
  /// crash-fraction events — killing the image source before anyone
  /// holds a copy would make every churn scenario trivially divergent.
  ScenarioEngine(const Scenario& scenario, node::Network& network,
                 ScenarioLinkModel* links,
                 net::NodeId protect = net::kNoNode);

  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Validates the scenario against the network (node ids in range,
  /// partition groups disjoint, link mutations only with a decorator) and
  /// pre-schedules every injection. False + `*error` on a bad scenario.
  /// Call once, after observability is attached and before running.
  bool arm(std::string* error);

  /// Latest instant the schedule mutates the world (battery monitors are
  /// open-ended and excluded); convergence checks gate on this so a run
  /// cannot be declared done while a partition window is still closing.
  sim::Time last_activity() const { return last_activity_; }

  /// Injections performed so far (one kill/reboot/window-edge/arrival
  /// each; mobility steps in between are not counted).
  std::uint64_t injected() const { return injected_; }

  /// True when the schedule is exhausted and every node is either dead or
  /// holds the complete image — the scenario-aware run-end predicate.
  bool converged() const;

 private:
  void record(net::NodeId node, const std::string& detail);
  void kill_node(net::NodeId id, sim::Time down_for);
  void reboot_node(net::NodeId id);
  void crash_fraction(double fraction, sim::Time down_for);
  void watch_battery(net::NodeId id, double budget_nah);
  void start_move(const ScenarioEvent& e);

  const Scenario& scenario_;
  node::Network& network_;
  ScenarioLinkModel* links_;
  net::NodeId protect_;
  sim::Rng rng_;
  sim::Time last_activity_ = 0;
  std::uint64_t injected_ = 0;

  obs::MetricsRegistry::Counter m_events_;
  obs::MetricsRegistry::Counter m_kills_;
  obs::MetricsRegistry::Counter m_reboots_;
  obs::MetricsRegistry::Counter m_moves_;
};

}  // namespace mnp::scenario

#include "scenario/scenario_link_model.hpp"

#include <algorithm>
#include <utility>

namespace mnp::scenario {

ScenarioLinkModel::ScenarioLinkModel(std::unique_ptr<net::LinkModel> inner,
                                     std::size_t node_count)
    : inner_(std::move(inner)),
      group_(node_count, -1),
      factor_(node_count, 1.0) {}

double ScenarioLinkModel::packet_success(net::NodeId src, net::NodeId dst,
                                         double power_scale) const {
  if (severed(src, dst)) return 0.0;
  double p = inner_->packet_success(src, dst, power_scale);
  if (src < factor_.size()) p *= factor_[src];
  if (dst < factor_.size()) p *= factor_[dst];
  return p;
}

bool ScenarioLinkModel::interferes(net::NodeId src, net::NodeId dst,
                                   double power_scale) const {
  if (severed(src, dst)) return false;
  return inner_->interferes(src, dst, power_scale);
}

void ScenarioLinkModel::log_change(bool all, std::vector<net::NodeId> nodes) {
  ++revision_;
  ChangeRecord rec{revision_, all, std::move(nodes)};
  if (change_log_.size() < kChangeLogCapacity) {
    change_log_.push_back(std::move(rec));
  } else {
    change_log_[static_cast<std::size_t>(revision_ - 1) % kChangeLogCapacity] =
        std::move(rec);
  }
}

bool ScenarioLinkModel::changed_nodes_since(
    std::uint64_t since, std::vector<net::NodeId>& out) const {
  if (since > revision_) return false;  // caller from the future: rebuild
  if (since == revision_) return true;
  if (revision_ - since > change_log_.size()) return false;  // overwritten
  for (std::uint64_t v = since + 1; v <= revision_; ++v) {
    const ChangeRecord& rec =
        change_log_[static_cast<std::size_t>(v - 1) % kChangeLogCapacity];
    if (rec.all) return false;  // everyone changed: no useful enumeration
    out.insert(out.end(), rec.nodes.begin(), rec.nodes.end());
  }
  return true;
}

void ScenarioLinkModel::set_partition(
    const std::vector<std::vector<net::NodeId>>& groups) {
  // A partition only changes links with a *named* endpoint (unnamed nodes
  // share the implicit group and keep talking to each other) — but a
  // replaced partition also releases its previously named nodes, so both
  // name sets land in the change record.
  std::vector<net::NodeId> affected = partition_nodes_;
  std::fill(group_.begin(), group_.end(), -1);
  partition_nodes_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const net::NodeId id : groups[g]) {
      if (id < group_.size()) {
        group_[id] = static_cast<int>(g);
        partition_nodes_.push_back(id);
      }
    }
  }
  affected.insert(affected.end(), partition_nodes_.begin(),
                  partition_nodes_.end());
  partition_active_ = true;
  log_change(false, std::move(affected));
}

void ScenarioLinkModel::clear_partition() {
  partition_active_ = false;
  log_change(false, partition_nodes_);
}

void ScenarioLinkModel::begin_degrade(double factor,
                                      const std::vector<net::NodeId>& nodes) {
  if (nodes.empty()) {
    for (double& f : factor_) f *= factor;
  } else {
    for (const net::NodeId id : nodes) {
      if (id < factor_.size()) factor_[id] *= factor;
    }
  }
  log_change(nodes.empty(), nodes);
}

void ScenarioLinkModel::end_degrade(double factor,
                                    const std::vector<net::NodeId>& nodes) {
  if (factor <= 0.0) {
    // A zero window has no finite inverse; restore the affected nodes to
    // nominal instead (the only state a 0-factor window can leave behind).
    if (nodes.empty()) {
      std::fill(factor_.begin(), factor_.end(), 1.0);
    } else {
      for (const net::NodeId id : nodes) {
        if (id < factor_.size()) factor_[id] = 1.0;
      }
    }
  } else if (nodes.empty()) {
    for (double& f : factor_) f /= factor;
  } else {
    for (const net::NodeId id : nodes) {
      if (id < factor_.size()) factor_[id] /= factor;
    }
  }
  log_change(nodes.empty(), nodes);
}

}  // namespace mnp::scenario

#include "scenario/scenario_link_model.hpp"

#include <algorithm>
#include <utility>

namespace mnp::scenario {

ScenarioLinkModel::ScenarioLinkModel(std::unique_ptr<net::LinkModel> inner,
                                     std::size_t node_count)
    : inner_(std::move(inner)),
      group_(node_count, -1),
      factor_(node_count, 1.0) {}

double ScenarioLinkModel::packet_success(net::NodeId src, net::NodeId dst,
                                         double power_scale) const {
  if (severed(src, dst)) return 0.0;
  double p = inner_->packet_success(src, dst, power_scale);
  if (src < factor_.size()) p *= factor_[src];
  if (dst < factor_.size()) p *= factor_[dst];
  return p;
}

bool ScenarioLinkModel::interferes(net::NodeId src, net::NodeId dst,
                                   double power_scale) const {
  if (severed(src, dst)) return false;
  return inner_->interferes(src, dst, power_scale);
}

void ScenarioLinkModel::set_partition(
    const std::vector<std::vector<net::NodeId>>& groups) {
  std::fill(group_.begin(), group_.end(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const net::NodeId id : groups[g]) {
      if (id < group_.size()) group_[id] = static_cast<int>(g);
    }
  }
  partition_active_ = true;
  ++revision_;
}

void ScenarioLinkModel::clear_partition() {
  partition_active_ = false;
  ++revision_;
}

void ScenarioLinkModel::begin_degrade(double factor,
                                      const std::vector<net::NodeId>& nodes) {
  if (nodes.empty()) {
    for (double& f : factor_) f *= factor;
  } else {
    for (const net::NodeId id : nodes) {
      if (id < factor_.size()) factor_[id] *= factor;
    }
  }
  ++revision_;
}

void ScenarioLinkModel::end_degrade(double factor,
                                    const std::vector<net::NodeId>& nodes) {
  if (factor <= 0.0) {
    // A zero window has no finite inverse; restore the affected nodes to
    // nominal instead (the only state a 0-factor window can leave behind).
    if (nodes.empty()) {
      std::fill(factor_.begin(), factor_.end(), 1.0);
    } else {
      for (const net::NodeId id : nodes) {
        if (id < factor_.size()) factor_[id] = 1.0;
      }
    }
  } else if (nodes.empty()) {
    for (double& f : factor_) f /= factor;
  } else {
    for (const net::NodeId id : nodes) {
      if (id < factor_.size()) factor_[id] /= factor;
    }
  }
  ++revision_;
}

}  // namespace mnp::scenario

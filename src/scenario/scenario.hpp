// Scenario: a declarative, seeded schedule of world mutations applied to a
// running simulation — the fault-injection layer the paper's robustness
// claims ("failed nodes rejoin and resume", section 6) are exercised
// against. A Scenario is pure data: a name plus a time-sorted list of
// events. It lives inside ExperimentConfig, so the determinism contract is
// unchanged — (seed, config-including-scenario) fixes every trace byte,
// and parallel sweeps replay it bit-identically per seed.
//
// Event kinds:
//   * kKill           one node loses power; optional reboot after `duration`
//   * kReboot         power-cycle a dead node explicitly
//   * kCrashFraction  kill floor(value * N) random non-base live nodes,
//                     chosen from the scenario's own forked RNG stream;
//                     optional reboot after `duration`
//   * kBatteryBudget  from `at` on, the node dies permanently once its
//                     energy meter's cumulative draw exceeds `value` nAh
//   * kPartition      for `duration`, nodes in different groups cannot
//                     communicate (ScenarioLinkModel zeroes cross-group
//                     links; unlisted nodes form their own implicit group)
//   * kDegrade        for `duration`, listed nodes' link success is
//                     multiplied by `value` (empty list = every node)
//   * kMove           waypoint mobility: the node glides to (x, y) over
//                     `duration`, interpolated in 1 s steps; each step
//                     bumps Topology::version() so cached adjacency
//                     rebuilds
//
// Build one fluently (ScenarioBuilder) or parse the text format
// (scenario_parser.hpp) loadable via `--scenario` on mnp_sim_cli/run_sweep.
#pragma once

#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mnp::scenario {

enum class EventKind : std::uint8_t {
  kKill,
  kReboot,
  kCrashFraction,
  kBatteryBudget,
  kPartition,
  kDegrade,
  kMove,
};

const char* to_string(EventKind kind);

struct ScenarioEvent {
  sim::Time at = 0;
  EventKind kind = EventKind::kKill;
  /// Target for kKill/kReboot/kBatteryBudget/kMove.
  net::NodeId node = net::kNoNode;
  /// kCrashFraction: fraction in (0, 1]; kBatteryBudget: nAh;
  /// kDegrade: success multiplier in [0, 1].
  double value = 0.0;
  /// kKill/kCrashFraction: downtime before reboot (0 = stay dead);
  /// kPartition/kDegrade: window length; kMove: travel time.
  sim::Time duration = 0;
  /// kMove destination (feet).
  double x = 0.0;
  double y = 0.0;
  /// kPartition: the isolation groups.
  std::vector<std::vector<net::NodeId>> groups;
  /// kDegrade: affected nodes (empty = all).
  std::vector<net::NodeId> nodes;
};

class Scenario {
 public:
  Scenario() = default;
  Scenario(std::string name, std::vector<ScenarioEvent> events);

  const std::string& name() const { return name_; }
  bool empty() const { return events_.empty(); }
  const std::vector<ScenarioEvent>& events() const { return events_; }

  /// Latest instant the schedule itself can still mutate the world: the
  /// max over event times plus their window/downtime/travel durations.
  /// Battery budgets are open-ended and excluded. 0 when empty.
  sim::Time last_event_time() const;

 private:
  std::string name_;
  // Stable-sorted by `at` at construction; same-time events keep their
  // authored order (which is also their injection order at runtime).
  std::vector<ScenarioEvent> events_;
};

/// Fluent construction; every method appends one event and returns *this.
class ScenarioBuilder {
 public:
  ScenarioBuilder& kill(sim::Time at, net::NodeId node,
                        sim::Time down_for = 0);
  ScenarioBuilder& reboot(sim::Time at, net::NodeId node);
  ScenarioBuilder& crash_fraction(sim::Time at, double fraction,
                                  sim::Time down_for = 0);
  ScenarioBuilder& battery_budget(sim::Time at, net::NodeId node,
                                  double budget_nah);
  ScenarioBuilder& partition(sim::Time at, sim::Time duration,
                             std::vector<std::vector<net::NodeId>> groups);
  ScenarioBuilder& degrade(sim::Time at, sim::Time duration, double factor,
                           std::vector<net::NodeId> nodes = {});
  ScenarioBuilder& move(sim::Time at, net::NodeId node, double x, double y,
                        sim::Time over = 0);

  /// Consumes the accumulated events (the builder is empty afterwards).
  Scenario build(std::string name = "scenario");

 private:
  std::vector<ScenarioEvent> events_;
};

}  // namespace mnp::scenario

#include "scenario/scenario.hpp"

#include <algorithm>
#include <utility>

namespace mnp::scenario {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kKill: return "kill";
    case EventKind::kReboot: return "reboot";
    case EventKind::kCrashFraction: return "crash-fraction";
    case EventKind::kBatteryBudget: return "battery";
    case EventKind::kPartition: return "partition";
    case EventKind::kDegrade: return "degrade";
    case EventKind::kMove: return "move";
  }
  return "?";
}

Scenario::Scenario(std::string name, std::vector<ScenarioEvent> events)
    : name_(std::move(name)), events_(std::move(events)) {
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const ScenarioEvent& a, const ScenarioEvent& b) { return a.at < b.at; });
}

sim::Time Scenario::last_event_time() const {
  sim::Time last = 0;
  for (const auto& e : events_) {
    sim::Time end = e.at;
    switch (e.kind) {
      case EventKind::kKill:
      case EventKind::kCrashFraction:
        if (e.duration > 0) end += e.duration;  // reboot instant
        break;
      case EventKind::kPartition:
      case EventKind::kDegrade:
      case EventKind::kMove:
        end += e.duration;
        break;
      case EventKind::kReboot:
      case EventKind::kBatteryBudget:
        break;
    }
    last = std::max(last, end);
  }
  return last;
}

ScenarioBuilder& ScenarioBuilder::kill(sim::Time at, net::NodeId node,
                                       sim::Time down_for) {
  ScenarioEvent e;
  e.at = at;
  e.kind = EventKind::kKill;
  e.node = node;
  e.duration = down_for;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::reboot(sim::Time at, net::NodeId node) {
  ScenarioEvent e;
  e.at = at;
  e.kind = EventKind::kReboot;
  e.node = node;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::crash_fraction(sim::Time at, double fraction,
                                                 sim::Time down_for) {
  ScenarioEvent e;
  e.at = at;
  e.kind = EventKind::kCrashFraction;
  e.value = fraction;
  e.duration = down_for;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::battery_budget(sim::Time at, net::NodeId node,
                                                 double budget_nah) {
  ScenarioEvent e;
  e.at = at;
  e.kind = EventKind::kBatteryBudget;
  e.node = node;
  e.value = budget_nah;
  events_.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::partition(
    sim::Time at, sim::Time duration,
    std::vector<std::vector<net::NodeId>> groups) {
  ScenarioEvent e;
  e.at = at;
  e.kind = EventKind::kPartition;
  e.duration = duration;
  e.groups = std::move(groups);
  events_.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::degrade(sim::Time at, sim::Time duration,
                                          double factor,
                                          std::vector<net::NodeId> nodes) {
  ScenarioEvent e;
  e.at = at;
  e.kind = EventKind::kDegrade;
  e.duration = duration;
  e.value = factor;
  e.nodes = std::move(nodes);
  events_.push_back(std::move(e));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::move(sim::Time at, net::NodeId node, double x,
                                       double y, sim::Time over) {
  ScenarioEvent e;
  e.at = at;
  e.kind = EventKind::kMove;
  e.node = node;
  e.x = x;
  e.y = y;
  e.duration = over;
  events_.push_back(std::move(e));
  return *this;
}

Scenario ScenarioBuilder::build(std::string name) {
  return Scenario(std::move(name), std::move(events_));
}

}  // namespace mnp::scenario

#include "scenario/scenario_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "node/stats.hpp"

namespace mnp::scenario {

namespace {

/// Salt for the engine's private RNG stream. Forked once at construction
/// (after the harness's link-model fork), so arming a scenario never
/// perturbs any other module's random sequence.
constexpr std::uint64_t kScenarioRngSalt = 0x5CE7A210ULL;

/// Mobility interpolation step. Coarser than packet timescales (so moves
/// cost O(seconds) events, not O(packets)) but fine enough that a node
/// crossing the field visits every intermediate neighborhood.
constexpr sim::Time kMoveStep = sim::sec(1);

}  // namespace

ScenarioEngine::ScenarioEngine(const Scenario& scenario,
                               node::Network& network,
                               ScenarioLinkModel* links, net::NodeId protect)
    : scenario_(scenario),
      network_(network),
      links_(links),
      protect_(protect),
      rng_(network.simulator().fork_rng(kScenarioRngSalt)) {}

bool ScenarioEngine::arm(std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  const std::size_t n = network_.size();

  for (const auto& e : scenario_.events()) {
    switch (e.kind) {
      case EventKind::kKill:
      case EventKind::kReboot:
      case EventKind::kBatteryBudget:
      case EventKind::kMove:
        if (e.node >= n) {
          return fail(std::string(to_string(e.kind)) + ": node " +
                      std::to_string(e.node) + " out of range");
        }
        break;
      case EventKind::kCrashFraction:
        if (e.value <= 0.0 || e.value > 1.0) {
          return fail("crash-fraction: fraction must be in (0, 1]");
        }
        break;
      case EventKind::kPartition: {
        if (!links_) return fail("partition: scenario link model not attached");
        if (e.groups.size() < 2) return fail("partition: need >= 2 groups");
        std::vector<char> seen(n, 0);
        for (const auto& group : e.groups) {
          for (const net::NodeId id : group) {
            if (id >= n) {
              return fail("partition: node " + std::to_string(id) +
                          " out of range");
            }
            if (seen[id]) {
              return fail("partition: node " + std::to_string(id) +
                          " in two groups");
            }
            seen[id] = 1;
          }
        }
        break;
      }
      case EventKind::kDegrade:
        if (!links_) return fail("degrade: scenario link model not attached");
        if (e.value < 0.0 || e.value > 1.0) {
          return fail("degrade: factor must be in [0, 1]");
        }
        for (const net::NodeId id : e.nodes) {
          if (id >= n) {
            return fail("degrade: node " + std::to_string(id) +
                        " out of range");
          }
        }
        break;
    }
  }

  if (obs::MetricsRegistry* m = network_.stats().metrics()) {
    m_events_ = m->register_counter("scenario.events", obs::Unit::kCount, false);
    m_kills_ = m->register_counter("scenario.kills", obs::Unit::kCount, true);
    m_reboots_ =
        m->register_counter("scenario.reboots", obs::Unit::kCount, true);
    m_moves_ = m->register_counter("scenario.moves", obs::Unit::kCount, true);
  }

  last_activity_ = scenario_.last_event_time();
  sim::Scheduler& sched = network_.simulator().scheduler();
  for (const auto& e : scenario_.events()) {
    // The referenced event lives in scenario_, which the caller keeps
    // alive for the whole run (it is part of the experiment config).
    const ScenarioEvent* ev = &e;
    sched.post_at(e.at, [this, ev] {
      switch (ev->kind) {
        case EventKind::kKill:
          kill_node(ev->node, ev->duration);
          break;
        case EventKind::kReboot:
          reboot_node(ev->node);
          break;
        case EventKind::kCrashFraction:
          crash_fraction(ev->value, ev->duration);
          break;
        case EventKind::kBatteryBudget:
          watch_battery(ev->node, ev->value);
          break;
        case EventKind::kPartition: {
          links_->set_partition(ev->groups);
          record(net::kBroadcastId, "partition on");
          network_.simulator().scheduler().post_after(ev->duration, [this] {
            links_->clear_partition();
            record(net::kBroadcastId, "partition off");
          });
          break;
        }
        case EventKind::kDegrade: {
          links_->begin_degrade(ev->value, ev->nodes);
          record(net::kBroadcastId, "degrade on");
          network_.simulator().scheduler().post_after(ev->duration, [this, ev] {
            links_->end_degrade(ev->value, ev->nodes);
            record(net::kBroadcastId, "degrade off");
          });
          break;
        }
        case EventKind::kMove:
          start_move(*ev);
          break;
      }
    });
  }
  return true;
}

bool ScenarioEngine::converged() const {
  if (network_.simulator().now() < last_activity_) return false;
  for (net::NodeId id = 0; id < network_.size(); ++id) {
    const node::Node& n = network_.node(id);
    if (n.is_dead()) continue;
    const node::Application* app = n.application();
    if (!app || !app->has_complete_image()) return false;
  }
  return true;
}

void ScenarioEngine::record(net::NodeId node, const std::string& detail) {
  ++injected_;
  if (trace::EventLog* log = network_.stats().event_log()) {
    log->record(network_.simulator().now(), node,
                trace::EventKind::kScenario, detail);
  }
  if (obs::MetricsRegistry* m = network_.stats().metrics()) {
    m->add(m_events_);
  }
}

void ScenarioEngine::kill_node(net::NodeId id, sim::Time down_for) {
  node::Node& n = network_.node(id);
  if (n.is_dead()) return;
  n.kill();
  record(id, "kill " + std::to_string(id));
  if (obs::MetricsRegistry* m = network_.stats().metrics()) {
    m->add(m_kills_, id);
  }
  if (down_for > 0) {
    network_.simulator().scheduler().post_after(
        down_for, [this, id] { reboot_node(id); });
  }
}

void ScenarioEngine::reboot_node(net::NodeId id) {
  node::Node& n = network_.node(id);
  if (!n.is_dead()) return;
  n.reboot();
  record(id, "reboot " + std::to_string(id));
  if (obs::MetricsRegistry* m = network_.stats().metrics()) {
    m->add(m_reboots_, id);
  }
}

void ScenarioEngine::crash_fraction(double fraction, sim::Time down_for) {
  std::vector<net::NodeId> candidates;
  candidates.reserve(network_.size());
  for (net::NodeId id = 0; id < network_.size(); ++id) {
    if (id == protect_ || network_.node(id).is_dead()) continue;
    candidates.push_back(id);
  }
  // Fraction of the deployment, not of the survivors: "crash 20%" on a
  // 100-node grid always means 20 motes (when that many are available).
  std::size_t count = static_cast<std::size_t>(
      std::floor(fraction * static_cast<double>(network_.size())));
  count = std::min(count, candidates.size());
  // Partial Fisher-Yates over the candidate list: draws exactly `count`
  // uniform victims from the engine's private stream.
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(candidates.size() - 1)));
    std::swap(candidates[i], candidates[j]);
    kill_node(candidates[i], down_for);
  }
}

void ScenarioEngine::watch_battery(net::NodeId id, double budget_nah) {
  sim::Simulator& sim = network_.simulator();
  node::Node& n = network_.node(id);
  if (!n.is_dead() && n.meter().total_nah(sim.now()) >= budget_nah) {
    n.kill();
    record(id, "battery " + std::to_string(id) + " dead");
    if (obs::MetricsRegistry* m = network_.stats().metrics()) {
      m->add(m_kills_, id);
    }
    return;  // a battery death is final; the monitor chain ends here
  }
  sim.scheduler().post_after(
      sim::sec(1), [this, id, budget_nah] { watch_battery(id, budget_nah); });
}

void ScenarioEngine::start_move(const ScenarioEvent& e) {
  const net::NodeId id = e.node;
  if (obs::MetricsRegistry* m = network_.stats().metrics()) {
    m->add(m_moves_, id);
  }
  if (e.duration <= 0) {
    network_.move_node(id, net::Position{e.x, e.y});
    record(id, "move " + std::to_string(id));
    return;
  }
  record(id, "move " + std::to_string(id) + " on");
  // Waypoint glide from wherever the node is *now* (an earlier move may
  // already have displaced it) to the destination, one step per second.
  const net::Position from = network_.topology().position(id);
  const net::Position to{e.x, e.y};
  sim::Scheduler& sched = network_.simulator().scheduler();
  const sim::Time start = network_.simulator().now();
  for (sim::Time elapsed = kMoveStep;; elapsed += kMoveStep) {
    const bool last = elapsed >= e.duration;
    const sim::Time step_at = start + (last ? e.duration : elapsed);
    const double f = last ? 1.0
                          : static_cast<double>(elapsed) /
                                static_cast<double>(e.duration);
    const net::Position p{from.x + (to.x - from.x) * f,
                          from.y + (to.y - from.y) * f};
    sched.post_at(step_at, [this, id, p, last] {
      network_.move_node(id, p);
      if (last) record(id, "move " + std::to_string(id) + " off");
    });
    if (last) break;
  }
}

}  // namespace mnp::scenario

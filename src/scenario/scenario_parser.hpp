// Text format for scenarios — small enough to write by hand, stable
// enough to commit next to an experiment (EXPERIMENTS.md recipes point at
// files under examples/scenarios/). One directive per line:
//
//   # comment (blank lines ignored)
//   scenario NAME
//   at TIME kill NODES [down TIME]
//   at TIME reboot NODES
//   at TIME crash-fraction F [down TIME]
//   at TIME battery NODES budget NAH
//   at TIME partition TIME groups NODES|NODES[|NODES...]
//   at TIME degrade F for TIME [nodes NODES]
//   at TIME move NODE to X Y [over TIME]
//
// TIME is a number with a unit suffix: us, ms, s, min, h ("90s", "2min",
// "1.5h"). NODES is a comma-separated list of ids and inclusive ranges:
// "0-4,10,12-14". Errors carry the 1-based line number.
//
// to_text() serializes a Scenario back into this format; parse(to_text(s))
// reproduces s event-for-event (the round-trip the tests pin).
#pragma once

#include <string>
#include <string_view>

#include "scenario/scenario.hpp"

namespace mnp::scenario {

struct ParseResult {
  bool ok = false;
  Scenario scenario;
  /// "line N: message" when !ok.
  std::string error;
};

ParseResult parse_scenario_text(std::string_view text);

/// Reads the file and parses it; a missing/unreadable file is an error.
ParseResult load_scenario_file(const std::string& path);

/// "90s" / "2min" / "1500ms" — the largest suffix that divides exactly.
std::string format_time(sim::Time t);

std::string to_text(const Scenario& scenario);

}  // namespace mnp::scenario

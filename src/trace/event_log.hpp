// Protocol event log: a bounded, queryable record of what every node did
// and when — state transitions, radio flips, traffic. Used for debugging
// protocol behaviour and for rendering per-node timelines (the kind of
// trace the paper's Figs. 5-7 were distilled from).
//
// Storage is a fixed-capacity ring of flat records with the detail text
// inline (truncated to kInlineDetail chars) — recording never allocates
// once the ring has grown to capacity, no matter how many millions of
// events a run produces. The query/render API is unchanged: it
// materializes std::string details on the way out, off the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mnp::trace {

enum class EventKind : std::uint8_t {
  kStateChange,   // detail = "Idle->Download" etc.
  kRadioOn,
  kRadioOff,
  kPacketSent,    // detail = packet type name
  kPacketReceived,
  kSegmentCompleted,  // detail = segment id
  kImageCompleted,
  kNote,          // free-form protocol notes
  kScenario,      // injected world mutation: "kill 5", "partition on", ...
                  // node = the affected node, or kBroadcastId for global
                  // events; details ending " on"/" off" delimit windows.
};

const char* to_string(EventKind kind);

/// Materialized view of one logged event (what queries return).
struct Event {
  sim::Time time = 0;
  net::NodeId node = net::kNoNode;
  EventKind kind = EventKind::kNote;
  std::string detail;
};

class EventLog {
 public:
  /// Longest detail stored verbatim; anything longer is truncated. Sized
  /// for the repo's longest real detail ("Download->Advertise" and kin).
  static constexpr std::size_t kInlineDetail = 30;

  /// Keeps at most `capacity` events; older ones are evicted FIFO.
  explicit EventLog(std::size_t capacity = 100000) : capacity_(capacity) {}

  void record(sim::Time time, net::NodeId node, EventKind kind);
  /// `detail` is copied into inline storage — no allocation; string
  /// literals and std::strings both bind here.
  void record(sim::Time time, net::NodeId node, EventKind kind,
              std::string_view detail);
  /// Small-integer detail (e.g. a segment id), formatted inline.
  void record(sim::Time time, net::NodeId node, EventKind kind,
              std::uint64_t value);

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return total_ - ring_.size(); }
  void clear();

  /// Events matching a predicate (in recording order).
  std::vector<Event> query(const std::function<bool(const Event&)>& pred) const;
  std::vector<Event> for_node(net::NodeId node) const;
  std::vector<Event> of_kind(EventKind kind) const;
  std::map<EventKind, std::uint64_t> counts_by_kind() const;

  /// "12.3s  node 7  StateChange  Advertise->Forward" lines for one node
  /// (all nodes if node == net::kBroadcastId), capped at `max_lines`.
  std::string render(net::NodeId node = net::kBroadcastId,
                     std::size_t max_lines = 200) const;

 private:
  struct StoredEvent {
    sim::Time time = 0;
    net::NodeId node = net::kNoNode;
    EventKind kind = EventKind::kNote;
    std::uint8_t detail_len = 0;
    char detail[kInlineDetail];
  };

  /// i-th oldest stored event (0 = oldest surviving).
  const StoredEvent& at(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }
  StoredEvent& push_slot();
  static Event materialize(const StoredEvent& s) {
    return Event{s.time, s.node, s.kind, std::string(s.detail, s.detail_len)};
  }

  std::size_t capacity_;
  // Grows by push_back until it reaches capacity_, then becomes a ring
  // with head_ marking the oldest entry — steady state never allocates.
  std::vector<StoredEvent> ring_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mnp::trace

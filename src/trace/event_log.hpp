// Protocol event log: a bounded, queryable record of what every node did
// and when — state transitions, radio flips, traffic. Used for debugging
// protocol behaviour and for rendering per-node timelines (the kind of
// trace the paper's Figs. 5-7 were distilled from).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mnp::trace {

enum class EventKind : std::uint8_t {
  kStateChange,   // detail = "Idle->Download" etc.
  kRadioOn,
  kRadioOff,
  kPacketSent,    // detail = packet type name
  kPacketReceived,
  kSegmentCompleted,  // detail = segment id
  kImageCompleted,
  kNote,          // free-form protocol notes
};

const char* to_string(EventKind kind);

struct Event {
  sim::Time time = 0;
  net::NodeId node = net::kNoNode;
  EventKind kind = EventKind::kNote;
  std::string detail;
};

class EventLog {
 public:
  /// Keeps at most `capacity` events; older ones are evicted FIFO.
  explicit EventLog(std::size_t capacity = 100000) : capacity_(capacity) {}

  void record(sim::Time time, net::NodeId node, EventKind kind,
              std::string detail = {});

  std::size_t size() const { return events_.size(); }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return total_ - events_.size(); }
  void clear();

  /// Events matching a predicate (in recording order).
  std::vector<Event> query(const std::function<bool(const Event&)>& pred) const;
  std::vector<Event> for_node(net::NodeId node) const;
  std::vector<Event> of_kind(EventKind kind) const;
  std::map<EventKind, std::uint64_t> counts_by_kind() const;

  /// "12.3s  node 7  StateChange  Advertise->Forward" lines for one node
  /// (all nodes if node == net::kBroadcastId), capped at `max_lines`.
  std::string render(net::NodeId node = net::kBroadcastId,
                     std::size_t max_lines = 200) const;

 private:
  std::size_t capacity_;
  std::deque<Event> events_;
  std::uint64_t total_ = 0;
};

}  // namespace mnp::trace

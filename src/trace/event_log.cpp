#include "trace/event_log.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace mnp::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kStateChange: return "StateChange";
    case EventKind::kRadioOn: return "RadioOn";
    case EventKind::kRadioOff: return "RadioOff";
    case EventKind::kPacketSent: return "PacketSent";
    case EventKind::kPacketReceived: return "PacketReceived";
    case EventKind::kSegmentCompleted: return "SegmentCompleted";
    case EventKind::kImageCompleted: return "ImageCompleted";
    case EventKind::kNote: return "Note";
    case EventKind::kScenario: return "Scenario";
  }
  return "?";
}

EventLog::StoredEvent& EventLog::push_slot() {
  if (ring_.size() < capacity_) {
    return ring_.emplace_back();
  }
  StoredEvent& slot = ring_[head_];  // overwrite the oldest
  head_ = (head_ + 1) % capacity_;
  return slot;
}

void EventLog::record(sim::Time time, net::NodeId node, EventKind kind) {
  ++total_;
  if (capacity_ == 0) return;
  StoredEvent& s = push_slot();
  s.time = time;
  s.node = node;
  s.kind = kind;
  s.detail_len = 0;
}

void EventLog::record(sim::Time time, net::NodeId node, EventKind kind,
                      std::string_view detail) {
  ++total_;
  if (capacity_ == 0) return;
  StoredEvent& s = push_slot();
  s.time = time;
  s.node = node;
  s.kind = kind;
  const std::size_t len = std::min(detail.size(), kInlineDetail);
  s.detail_len = static_cast<std::uint8_t>(len);
  std::copy_n(detail.data(), len, s.detail);
}

void EventLog::record(sim::Time time, net::NodeId node, EventKind kind,
                      std::uint64_t value) {
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  record(time, node, kind,
         std::string_view(buf, static_cast<std::size_t>(end - buf)));
}

void EventLog::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

std::vector<Event> EventLog::query(
    const std::function<bool(const Event&)>& pred) const {
  std::vector<Event> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    Event e = materialize(at(i));
    if (pred(e)) out.push_back(std::move(e));
  }
  return out;
}

std::vector<Event> EventLog::for_node(net::NodeId node) const {
  return query([node](const Event& e) { return e.node == node; });
}

std::vector<Event> EventLog::of_kind(EventKind kind) const {
  return query([kind](const Event& e) { return e.kind == kind; });
}

std::map<EventKind, std::uint64_t> EventLog::counts_by_kind() const {
  std::map<EventKind, std::uint64_t> counts;
  for (std::size_t i = 0; i < ring_.size(); ++i) ++counts[at(i).kind];
  return counts;
}

std::string EventLog::render(net::NodeId node, std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t lines = 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const StoredEvent& e = at(i);
    if (node != net::kBroadcastId && e.node != node) continue;
    if (++lines > max_lines) {
      os << "... (" << size() << " events total)\n";
      break;
    }
    os << sim::format_time(e.time) << "  node " << e.node << "  "
       << to_string(e.kind);
    if (e.detail_len > 0) {
      os << "  ";
      os.write(e.detail, e.detail_len);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace mnp::trace

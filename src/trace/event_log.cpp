#include "trace/event_log.hpp"

#include <sstream>

namespace mnp::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kStateChange: return "StateChange";
    case EventKind::kRadioOn: return "RadioOn";
    case EventKind::kRadioOff: return "RadioOff";
    case EventKind::kPacketSent: return "PacketSent";
    case EventKind::kPacketReceived: return "PacketReceived";
    case EventKind::kSegmentCompleted: return "SegmentCompleted";
    case EventKind::kImageCompleted: return "ImageCompleted";
    case EventKind::kNote: return "Note";
  }
  return "?";
}

void EventLog::record(sim::Time time, net::NodeId node, EventKind kind,
                      std::string detail) {
  ++total_;
  if (capacity_ == 0) return;
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back(Event{time, node, kind, std::move(detail)});
}

void EventLog::clear() {
  events_.clear();
  total_ = 0;
}

std::vector<Event> EventLog::query(
    const std::function<bool(const Event&)>& pred) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (pred(e)) out.push_back(e);
  }
  return out;
}

std::vector<Event> EventLog::for_node(net::NodeId node) const {
  return query([node](const Event& e) { return e.node == node; });
}

std::vector<Event> EventLog::of_kind(EventKind kind) const {
  return query([kind](const Event& e) { return e.kind == kind; });
}

std::map<EventKind, std::uint64_t> EventLog::counts_by_kind() const {
  std::map<EventKind, std::uint64_t> counts;
  for (const Event& e : events_) ++counts[e.kind];
  return counts;
}

std::string EventLog::render(net::NodeId node, std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t lines = 0;
  for (const Event& e : events_) {
    if (node != net::kBroadcastId && e.node != node) continue;
    if (++lines > max_lines) {
      os << "... (" << size() << " events total)\n";
      break;
    }
    os << sim::format_time(e.time) << "  node " << e.node << "  "
       << to_string(e.kind);
    if (!e.detail.empty()) os << "  " << e.detail;
    os << "\n";
  }
  return os.str();
}

}  // namespace mnp::trace

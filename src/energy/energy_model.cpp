#include "energy/energy_model.hpp"

// Header-only today; this TU pins the library and keeps a build slot for
// future non-inline pricing policies (e.g., per-power-level TX cost).
namespace mnp::energy {}

// Energy cost model: the paper's Table 1 ("Power required by various Mica
// operations", values in nAh, restored from the MOAP technical report the
// paper cites).
//
//   Transmitting a packet          20.000 nAh
//   Receiving a packet              8.000 nAh
//   Idle listening for 1 ms         1.250 nAh
//   EEPROM read (16 bytes)          1.111 nAh
//   EEPROM write (16 bytes)        83.333 nAh
//
// TOSSIM does not capture energy, so — exactly like the paper — energy is
// computed by *counting operations* during the run and pricing them with
// this table.
#pragma once

#include "sim/time.hpp"

namespace mnp::energy {

struct EnergyModel {
  double tx_packet_nah = 20.000;
  double rx_packet_nah = 8.000;
  double idle_listen_per_ms_nah = 1.250;
  double eeprom_read_16b_nah = 1.111;
  double eeprom_write_16b_nah = 83.333;

  /// Cost of keeping the radio in an active (non-off) state for `t`.
  double idle_cost_nah(sim::Time t) const {
    return idle_listen_per_ms_nah * sim::to_ms(t);
  }
  /// Cost of reading/writing `bytes` of EEPROM, billed per 16-byte line.
  double eeprom_read_cost_nah(std::size_t bytes) const {
    return eeprom_read_16b_nah * static_cast<double>((bytes + 15) / 16);
  }
  double eeprom_write_cost_nah(std::size_t bytes) const {
    return eeprom_write_16b_nah * static_cast<double>((bytes + 15) / 16);
  }
};

}  // namespace mnp::energy

#include "energy/energy_meter.hpp"

namespace mnp::energy {

void EnergyMeter::radio_became_active(sim::Time now) {
  if (radio_active_) return;
  radio_active_ = true;
  active_since_ = now;
}

void EnergyMeter::radio_became_inactive(sim::Time now) {
  if (!radio_active_) return;
  radio_active_ = false;
  const sim::Time span = now - active_since_;
  accumulated_active_ += span;
  if (first_adv_time_ < 0) {
    active_before_first_adv_ += span;
  }
}

void EnergyMeter::mark_first_advertisement(sim::Time now) {
  if (first_adv_time_ >= 0) return;
  first_adv_time_ = now;
  if (radio_active_) {
    // Split the in-progress active interval at the advertisement instant.
    active_before_first_adv_ += now - active_since_;
    accumulated_active_ += now - active_since_;
    active_since_ = now;
  }
}

sim::Time EnergyMeter::active_radio_time(sim::Time now) const {
  sim::Time total = accumulated_active_;
  if (radio_active_) total += now - active_since_;
  return total;
}

sim::Time EnergyMeter::active_radio_time_after_first_adv(sim::Time now) const {
  if (first_adv_time_ < 0) return 0;  // never heard one: all time is "initial"
  return active_radio_time(now) - active_before_first_adv_;
}

double EnergyMeter::total_nah(sim::Time now) const {
  double total = 0.0;
  total += model_.tx_packet_nah * static_cast<double>(tx_packets_);
  total += model_.rx_packet_nah * static_cast<double>(rx_packets_);
  total += model_.idle_cost_nah(active_radio_time(now));
  total += model_.eeprom_read_16b_nah * static_cast<double>(eeprom_read_lines_);
  total += model_.eeprom_write_16b_nah * static_cast<double>(eeprom_write_lines_);
  return total;
}

void EnergyMeter::publish(obs::MetricsRegistry& registry, net::NodeId node,
                          sim::Time now) const {
  const auto g_nah = registry.register_gauge(
      "energy.nah", obs::Unit::kNanoampHours, true);
  const auto g_active = registry.register_gauge(
      "energy.active_radio_us", obs::Unit::kMicroseconds, true);
  const auto g_after_adv = registry.register_gauge(
      "energy.active_radio_after_adv_us", obs::Unit::kMicroseconds, true);
  const auto c_tx =
      registry.register_counter("energy.tx_packets", obs::Unit::kCount, true);
  const auto c_rx =
      registry.register_counter("energy.rx_packets", obs::Unit::kCount, true);
  const auto c_er = registry.register_counter("energy.eeprom_reads",
                                              obs::Unit::kCount, true);
  const auto c_ew = registry.register_counter("energy.eeprom_writes",
                                              obs::Unit::kCount, true);
  registry.set(g_nah, node, total_nah(now));
  registry.set(g_active, node,
               static_cast<double>(active_radio_time(now)));
  registry.set(g_after_adv, node,
               static_cast<double>(active_radio_time_after_first_adv(now)));
  registry.add(c_tx, node, tx_packets_);
  registry.add(c_rx, node, rx_packets_);
  registry.add(c_er, node, eeprom_reads_);
  registry.add(c_ew, node, eeprom_writes_);
}

}  // namespace mnp::energy

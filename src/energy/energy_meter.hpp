// Per-node energy accounting.
//
// Counts the operations the paper's evaluation counts (packet tx/rx,
// EEPROM reads/writes) and integrates active radio time, then prices the
// run with the Table-1 EnergyModel. Also tracks "active radio time after
// the first advertisement was heard" for the paper's Fig. 9 variant.
#pragma once

#include <cstdint>

#include "energy/energy_model.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace mnp::energy {

class EnergyMeter {
 public:
  explicit EnergyMeter(EnergyModel model = {}) : model_(model) {}

  // --- operation counters ------------------------------------------------
  void count_tx_packet() { ++tx_packets_; }
  void count_rx_packet() { ++rx_packets_; }
  // EEPROM costs are billed per 16-byte line per operation, matching how
  // the flash driver actually issues line writes.
  void count_eeprom_read(std::size_t bytes) {
    ++eeprom_reads_;
    eeprom_read_lines_ += (bytes + 15) / 16;
  }
  void count_eeprom_write(std::size_t bytes) {
    ++eeprom_writes_;
    eeprom_write_lines_ += (bytes + 15) / 16;
  }

  // --- radio state integration -------------------------------------------
  /// Called when the radio transitions off->on at time `now`.
  void radio_became_active(sim::Time now);
  /// Called when the radio transitions on->off at time `now`.
  void radio_became_inactive(sim::Time now);
  /// Marks the moment the node first heard an advertisement; active time
  /// before this instant is the "initial idle listening" the paper's
  /// Fig. 9 subtracts out.
  void mark_first_advertisement(sim::Time now);

  /// Total time the radio has spent on, up to `now`.
  sim::Time active_radio_time(sim::Time now) const;
  /// Active radio time excluding everything before the first heard
  /// advertisement (Fig. 9).
  sim::Time active_radio_time_after_first_adv(sim::Time now) const;
  bool heard_advertisement() const { return first_adv_time_ >= 0; }
  sim::Time first_adv_time() const { return first_adv_time_; }

  // --- totals --------------------------------------------------------------
  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t eeprom_reads() const { return eeprom_reads_; }
  std::uint64_t eeprom_writes() const { return eeprom_writes_; }

  /// Total charge drawn, in nAh, evaluated at `now`.
  double total_nah(sim::Time now) const;

  /// Writes this meter's end-of-run readings into `registry` as the
  /// per-node energy.* gauges of DESIGN.md section 9. Registration is
  /// idempotent, so every node's meter publishes into the same names.
  void publish(obs::MetricsRegistry& registry, net::NodeId node,
               sim::Time now) const;

  const EnergyModel& model() const { return model_; }

 private:
  EnergyModel model_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t eeprom_reads_ = 0;
  std::uint64_t eeprom_writes_ = 0;
  std::uint64_t eeprom_read_lines_ = 0;
  std::uint64_t eeprom_write_lines_ = 0;

  bool radio_active_ = false;
  sim::Time active_since_ = 0;
  sim::Time accumulated_active_ = 0;
  sim::Time first_adv_time_ = sim::kNever;
  // Active time accumulated strictly before the first advertisement.
  sim::Time active_before_first_adv_ = 0;
};

}  // namespace mnp::energy

// Progress journal: crash-safe download bookkeeping in the EEPROM tail.
//
// The paper's recovery story ("a node that reboots rejoins the network
// and resumes the download") needs something to resume *from*: RAM state
// — received-segment bitmaps, page counters — dies with the mote, while
// the payload bytes already written to external flash survive. The
// journal closes that gap. Every time a protocol finishes a durable unit
// of download (an MNP segment, a Deluge page, a MOAP chunk) it appends a
// fixed-size record; after a reboot, start() replays the journal and
// re-marks those units as held instead of fetching them again.
//
// Layout: the last kRegionBytes of the EEPROM, divided into 16-byte
// slots written low to high. Records are append-only — the region is
// never erased or rewritten, so the journal coexists with the harness's
// write-once tracking (every slot is written at most once per EEPROM
// lifetime) and a torn final record simply fails its CRC and is ignored.
// Records carry the program identity they were journaled under; recovery
// returns only the trailing run of records that agree on it, so stale
// entries from a previous dissemination cannot poison a new one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/eeprom.hpp"

namespace mnp::boot {

class ProgressJournal {
 public:
  /// Tail region size. 4 KiB / 16-byte slots = 256 records, comfortably
  /// above the repo's largest figure run (5 segments; Deluge pages and
  /// MOAP chunks stay well under it too).
  static constexpr std::size_t kRegionBytes = 4096;
  static constexpr std::size_t kSlotBytes = 16;

  explicit ProgressJournal(storage::Eeprom& eeprom) : eeprom_(eeprom) {}

  /// First byte of the journal region.
  std::size_t region_offset() const {
    return eeprom_.capacity() - kRegionBytes;
  }

  /// True when the journal tail does not overlap an image ending at
  /// `image_end` — protocols must check this before journaling so a
  /// huge image on a tiny EEPROM degrades to "no journal" instead of
  /// corrupting itself.
  bool usable(std::size_t image_end) const {
    return eeprom_.capacity() >= kRegionBytes && image_end <= region_offset();
  }

  /// Appends one completed-unit record. Returns false when the region is
  /// full (recovery then just misses the overflow — never corrupts).
  bool append(std::uint16_t program_id, std::uint32_t program_bytes,
              std::uint16_t unit);

  struct Recovered {
    std::uint16_t program_id = 0;
    std::uint32_t program_bytes = 0;
    /// Units in append order (the trailing run sharing one identity).
    std::vector<std::uint16_t> units;
  };

  /// Replays the journal: the trailing run of CRC-valid records that
  /// agree on (program_id, program_bytes). Empty optional when no valid
  /// record exists. (Non-const: EEPROM reads bill the energy meter.)
  std::optional<Recovered> recover();

  /// Number of CRC-valid records currently in the region.
  std::size_t entries();

 private:
  struct Record {
    std::uint16_t program_id = 0;
    std::uint32_t program_bytes = 0;
    std::uint16_t unit = 0;
  };

  std::optional<Record> read_slot(std::size_t slot);
  std::size_t slot_count() const { return kRegionBytes / kSlotBytes; }

  storage::Eeprom& eeprom_;
};

}  // namespace mnp::boot

#include "boot/progress_journal.hpp"

#include "util/crc32.hpp"

namespace mnp::boot {

namespace {

// "PJ" — distinguishes a written slot from erased flash (zeros).
constexpr std::uint16_t kMagic = 0x504A;

void put_u16(std::vector<std::uint8_t>& out, std::size_t at, std::uint16_t v) {
  out[at] = static_cast<std::uint8_t>(v & 0xFF);
  out[at + 1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t at, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    out[at + i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::optional<ProgressJournal::Record> ProgressJournal::read_slot(
    std::size_t slot) {
  const std::size_t at = region_offset() + slot * kSlotBytes;
  const std::vector<std::uint8_t> raw = eeprom_.read(at, kSlotBytes);
  if (raw.size() != kSlotBytes) return std::nullopt;
  if (get_u16(raw, 0) != kMagic) return std::nullopt;
  if (util::crc32(raw.data(), 12) != get_u32(raw, 12)) return std::nullopt;
  Record rec;
  rec.program_id = get_u16(raw, 2);
  rec.program_bytes = get_u32(raw, 4);
  rec.unit = get_u16(raw, 8);
  return rec;
}

bool ProgressJournal::append(std::uint16_t program_id,
                             std::uint32_t program_bytes, std::uint16_t unit) {
  if (eeprom_.capacity() < kRegionBytes) return false;
  // First slot that does not hold a valid record is the append point —
  // re-derived from flash every time, because the RAM that could cache it
  // is exactly what a crash wipes.
  std::size_t slot = 0;
  while (slot < slot_count() && read_slot(slot)) ++slot;
  if (slot == slot_count()) return false;
  std::vector<std::uint8_t> raw(kSlotBytes, 0);
  put_u16(raw, 0, kMagic);
  put_u16(raw, 2, program_id);
  put_u32(raw, 4, program_bytes);
  put_u16(raw, 8, unit);
  // bytes 10-11 reserved (zero)
  put_u32(raw, 12, util::crc32(raw.data(), 12));
  return eeprom_.write(region_offset() + slot * kSlotBytes, raw);
}

std::optional<ProgressJournal::Recovered> ProgressJournal::recover() {
  if (eeprom_.capacity() < kRegionBytes) return std::nullopt;
  std::vector<Record> records;
  for (std::size_t slot = 0; slot < slot_count(); ++slot) {
    auto rec = read_slot(slot);
    if (!rec) break;  // append-only: first invalid slot ends the journal
    records.push_back(*rec);
  }
  if (records.empty()) return std::nullopt;
  // Only the trailing run that shares the newest record's identity is the
  // current download; anything before it is a previous program's journal.
  const Record& last = records.back();
  Recovered out;
  out.program_id = last.program_id;
  out.program_bytes = last.program_bytes;
  std::size_t first = records.size();
  while (first > 0 && records[first - 1].program_id == last.program_id &&
         records[first - 1].program_bytes == last.program_bytes) {
    --first;
  }
  for (std::size_t i = first; i < records.size(); ++i) {
    out.units.push_back(records[i].unit);
  }
  return out;
}

std::size_t ProgressJournal::entries() {
  std::size_t slot = 0;
  while (slot < slot_count() && read_slot(slot)) ++slot;
  return slot;
}

}  // namespace mnp::boot

// Boot manager: the mote-side installation half of reprogramming.
//
// The paper ends dissemination at "reboot with the new program only when
// it receives an external start signal"; on a real mote that reboot runs
// a bootloader that validates the staged image in external flash and
// copies it into program memory, keeping a golden image for rollback.
// This module is that bootloader's flash-management logic:
//
//   EEPROM layout:  [ golden slot | staging slot ]
//   each slot:      [ 12-byte header | payload... ]
//
// A dissemination protocol writes raw payload bytes into the staging
// slot (MnpConfig::eeprom_base_offset = staging_payload_offset()), the
// application commits a header over it, and the external start signal
// triggers install(), which validates the CRC and promotes staging to
// golden. rollback() re-activates the previous golden image.
#pragma once

#include <cstdint>
#include <optional>

#include "storage/eeprom.hpp"

namespace mnp::boot {

struct ImageHeader {
  std::uint16_t program_id = 0;
  std::uint16_t version = 0;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;

  static constexpr std::size_t kBytes = 12;
};

class BootManager {
 public:
  /// Divides `eeprom` into two `slot_capacity`-byte slots starting at
  /// offset 0. `slot_capacity` includes the header.
  BootManager(storage::Eeprom& eeprom, std::size_t slot_capacity);

  std::size_t slot_capacity() const { return slot_capacity_; }
  /// Largest payload a slot can hold.
  std::size_t max_image_bytes() const { return slot_capacity_ - ImageHeader::kBytes; }

  /// Where a dissemination protocol should write incoming payload bytes.
  std::size_t staging_payload_offset() const;

  /// Seals the staging slot: computes the payload CRC and writes the
  /// header. Returns false if `length` exceeds the slot.
  bool commit_staging(std::uint16_t program_id, std::uint16_t version,
                      std::uint32_t length);

  /// Header of the staged image, if one was committed.
  std::optional<ImageHeader> staged_header();
  /// True if the staged payload matches its committed header CRC.
  bool staging_valid();

  /// The "external start signal": validates staging and promotes it to
  /// golden (the previous golden is overwritten; its header is preserved
  /// in RAM for rollback bookkeeping). Returns false if staging is
  /// missing or corrupt — the mote keeps running the golden image.
  bool install();

  /// Discards the staged image.
  void erase_staging();

  std::optional<ImageHeader> golden_header();
  /// Payload of the golden image ({} if none installed).
  std::vector<std::uint8_t> golden_payload();
  bool golden_valid();

  /// Versions installed over this manager's lifetime (install count).
  std::uint32_t installs() const { return installs_; }

 private:
  std::size_t golden_offset() const { return 0; }
  std::size_t staging_offset() const { return slot_capacity_; }
  void write_header(std::size_t slot_offset, const ImageHeader& header);
  std::optional<ImageHeader> read_header(std::size_t slot_offset);
  bool slot_valid(std::size_t slot_offset);

  storage::Eeprom& eeprom_;
  std::size_t slot_capacity_;
  std::uint32_t installs_ = 0;
};

}  // namespace mnp::boot

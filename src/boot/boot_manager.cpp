#include "boot/boot_manager.hpp"

#include <cassert>

#include "util/crc32.hpp"

namespace mnp::boot {

namespace {

constexpr std::uint16_t kMagicEmpty = 0;  // program id 0 = empty slot

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint32_t>(in[at]) |
         (static_cast<std::uint32_t>(in[at + 1]) << 8) |
         (static_cast<std::uint32_t>(in[at + 2]) << 16) |
         (static_cast<std::uint32_t>(in[at + 3]) << 24);
}

}  // namespace

BootManager::BootManager(storage::Eeprom& eeprom, std::size_t slot_capacity)
    : eeprom_(eeprom), slot_capacity_(slot_capacity) {
  assert(slot_capacity_ > ImageHeader::kBytes);
  assert(2 * slot_capacity_ <= eeprom_.capacity());
}

std::size_t BootManager::staging_payload_offset() const {
  return staging_offset() + ImageHeader::kBytes;
}

void BootManager::write_header(std::size_t slot_offset, const ImageHeader& h) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(ImageHeader::kBytes);
  put_u16(bytes, h.program_id);
  put_u16(bytes, h.version);
  put_u32(bytes, h.length);
  put_u32(bytes, h.crc);
  eeprom_.write(slot_offset, bytes);
}

std::optional<ImageHeader> BootManager::read_header(std::size_t slot_offset) {
  const auto bytes = eeprom_.read(slot_offset, ImageHeader::kBytes);
  if (bytes.size() != ImageHeader::kBytes) return std::nullopt;
  ImageHeader h;
  h.program_id = get_u16(bytes, 0);
  h.version = get_u16(bytes, 2);
  h.length = get_u32(bytes, 4);
  h.crc = get_u32(bytes, 8);
  if (h.program_id == kMagicEmpty) return std::nullopt;
  if (h.length > max_image_bytes()) return std::nullopt;  // garbage header
  return h;
}

bool BootManager::slot_valid(std::size_t slot_offset) {
  const auto header = read_header(slot_offset);
  if (!header) return false;
  const auto payload =
      eeprom_.read(slot_offset + ImageHeader::kBytes, header->length);
  return util::crc32(payload) == header->crc;
}

bool BootManager::commit_staging(std::uint16_t program_id,
                                 std::uint16_t version, std::uint32_t length) {
  if (program_id == kMagicEmpty) return false;
  if (length > max_image_bytes()) return false;
  const auto payload = eeprom_.read(staging_payload_offset(), length);
  ImageHeader h;
  h.program_id = program_id;
  h.version = version;
  h.length = length;
  h.crc = util::crc32(payload);
  write_header(staging_offset(), h);
  return true;
}

std::optional<ImageHeader> BootManager::staged_header() {
  return read_header(staging_offset());
}

bool BootManager::staging_valid() { return slot_valid(staging_offset()); }

bool BootManager::install() {
  const auto header = staged_header();
  if (!header || !staging_valid()) return false;
  // Promote: copy payload then header (header last, so a partial copy is
  // never presented as a valid golden image).
  const auto payload =
      eeprom_.read(staging_payload_offset(), header->length);
  eeprom_.write(golden_offset() + ImageHeader::kBytes, payload);
  write_header(golden_offset(), *header);
  erase_staging();
  ++installs_;
  return true;
}

void BootManager::erase_staging() {
  write_header(staging_offset(), ImageHeader{});  // program id 0 = empty
}

std::optional<ImageHeader> BootManager::golden_header() {
  return read_header(golden_offset());
}

std::vector<std::uint8_t> BootManager::golden_payload() {
  const auto header = golden_header();
  if (!header) return {};
  return eeprom_.read(golden_offset() + ImageHeader::kBytes, header->length);
}

bool BootManager::golden_valid() { return slot_valid(golden_offset()); }

}  // namespace mnp::boot

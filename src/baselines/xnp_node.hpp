// XNP baseline: TinyOS 1.x single-hop network reprogramming.
//
// The base station broadcasts the entire image packet by packet, then runs
// query/fix rounds: it broadcasts a query, nodes with gaps answer with fix
// requests (randomly delayed to avoid implosion), and the base rebroadcasts
// the requested packets. There is no multihop forwarding whatsoever — only
// nodes inside the base station's radio range ever complete, which is
// exactly the limitation that motivates MNP.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mnp/program_image.hpp"
#include "node/application.hpp"
#include "node/node.hpp"
#include "obs/metrics.hpp"

namespace mnp::baselines {

struct XnpConfig {
  std::size_t payload_bytes = 22;
  sim::Time pump_interval = sim::msec(10);
  /// Pause between the data pass and the first query round.
  sim::Time query_gap = sim::msec(500);
  /// Fix requests are spread over this window after a query.
  sim::Time fix_request_window = sim::msec(400);
  /// The base stops querying after this many consecutive silent rounds.
  int quiet_rounds_to_stop = 8;
  int max_query_rounds = 200;
  /// Missing packets a receiver may claim per query round.
  std::size_t fix_requests_per_query = 4;
};

class XnpNode final : public node::Application {
 public:
  /// Session phase, traced as state changes (XNP has no spec'd protocol
  /// state machine; phases describe where the session is). Base stations
  /// move Idle->Stream->Query(->Stream...)->Done; receivers move
  /// Idle->Stream when they learn the program and ->Done on completion.
  enum class Phase : std::uint8_t { kIdle, kStream, kQuery, kDone };

  /// Receiver.
  explicit XnpNode(XnpConfig config);
  /// Base station.
  XnpNode(XnpConfig config, std::shared_ptr<const core::ProgramImage> image);

  void start(node::Node& node) override;
  void on_packet(const net::Packet& pkt) override;
  bool has_complete_image() const override;
  /// Power cycle: timers and receiver/base session state die; XNP has no
  /// progress journal (its single-hop design predates resumability).
  void reset_for_reboot() override;
  std::uint64_t audit_digest() const override;

  bool is_base() const { return static_cast<bool>(image_); }
  std::size_t packets_received() const;
  Phase phase() const { return phase_; }
  static const char* phase_cname(Phase p);
  /// Base-side introspection for tests: query rounds run so far and
  /// whether the base has concluded the session.
  int query_rounds() const { return query_round_; }
  bool session_done() const { return done_; }

 private:
  void pump_data();
  void start_query_round();
  void handle_data(const net::XnpDataMsg& msg);
  void handle_query(const net::XnpQueryMsg& msg);
  void handle_fix_request(const net::XnpFixRequestMsg& msg);
  /// Phase transition with event-log tracing (like MnpNode::change_state).
  void set_phase(Phase next);

  XnpConfig config_;
  std::shared_ptr<const core::ProgramImage> image_;
  node::Node* node_ = nullptr;

  // Telemetry handles (xnp.* of DESIGN.md section 9), registered at
  // start() when the harness attached a registry.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_data_sent_;
  obs::MetricsRegistry::Counter m_fix_requests_;
  obs::MetricsRegistry::Counter m_query_rounds_;

  Phase phase_ = Phase::kIdle;

  std::uint32_t total_packets_ = 0;  // receivers learn this from pkt ids seen
  std::vector<bool> have_;          // receiver-side packet map
  std::size_t have_count_ = 0;
  bool saw_last_packet_ = false;

  // Base-side streaming / query machinery.
  std::uint32_t cursor_ = 0;
  std::vector<std::uint16_t> fix_queue_;
  int query_round_ = 0;
  int quiet_rounds_ = 0;
  bool round_had_requests_ = false;
  bool done_ = false;
  sim::EventHandle pump_timer_;
  sim::EventHandle query_timer_;
  sim::EventHandle fix_timer_;
};

}  // namespace mnp::baselines

#include "baselines/deluge_node.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "boot/progress_journal.hpp"
#include "node/stats.hpp"
#include "sim/audit.hpp"

namespace mnp::baselines {

using net::Packet;

DelugeNode::DelugeNode(DelugeConfig config) : config_(config) {}

DelugeNode::DelugeNode(DelugeConfig config,
                       std::shared_ptr<const core::ProgramImage> image)
    : config_(config), image_(std::move(image)) {
  assert(image_);
  assert(image_->packets_per_segment() == config_.packets_per_page);
  assert(image_->payload_bytes() == config_.payload_bytes);
}

void DelugeNode::start(node::Node& node) {
  node_ = &node;
  if ((metrics_ = node_->stats().metrics()) != nullptr) {
    m_rounds_ =
        metrics_->register_counter("deluge.rounds", obs::Unit::kCount, true);
    m_summaries_ = metrics_->register_counter("deluge.summaries_sent",
                                              obs::Unit::kCount, true);
    m_requests_ = metrics_->register_counter("deluge.requests_sent",
                                             obs::Unit::kCount, true);
  }
  node_->radio_on();  // Deluge keeps the radio on for the whole run
  if (image_) {
    version_ = image_->id();
    program_bytes_ = static_cast<std::uint32_t>(image_->total_bytes());
    known_pages_ = image_->num_segments();
    complete_pages_ = known_pages_;
    node_->stats().on_completed(node_->id(), node_->now());
  } else if (recover_journal() && has_complete_image()) {
    node_->stats().on_completed(node_->id(), node_->now());
  }
  start_round(/*reset_tau=*/true);
}

bool DelugeNode::recover_journal() {
  if (!config_.journal_progress) return false;
  boot::ProgressJournal journal(node_->eeprom());
  auto rec = journal.recover();
  if (!rec || rec->units.empty()) return false;
  const std::size_t page_bytes =
      static_cast<std::size_t>(config_.packets_per_page) * config_.payload_bytes;
  version_ = rec->program_id;
  program_bytes_ = rec->program_bytes;
  known_pages_ = static_cast<std::uint16_t>(
      (rec->program_bytes + page_bytes - 1) / page_bytes);
  // Pages complete strictly in order; the journal holds the prefix 1..k.
  std::uint16_t contiguous = 0;
  for (std::uint16_t unit : rec->units) {
    if (unit == contiguous + 1) contiguous = unit;
  }
  complete_pages_ = contiguous;
  return complete_pages_ > 0;
}

void DelugeNode::reset_for_reboot() {
  round_timer_.cancel();
  round_end_timer_.cancel();
  request_timer_.cancel();
  rx_idle_timer_.cancel();
  tx_timer_.cancel();
  if (state_ != State::kMaintain) {
    state_ = State::kMaintain;
  }
  version_ = 0;
  program_bytes_ = 0;
  known_pages_ = 0;
  complete_pages_ = 0;
  tau_ = 0;
  heard_consistent_ = 0;
  missing_ = util::Bitmap{};
  missing_for_page_ = 0;
  rx_source_ = net::kNoNode;
  request_rounds_ = 0;
  tx_page_ = 0;
  tx_vector_ = util::Bitmap{};
  tx_cursor_ = 0;
}

std::uint64_t DelugeNode::audit_digest() const {
  std::uint64_t h = sim::kFnvOffset;
  h = sim::fnv1a(h, static_cast<std::uint64_t>(state_));
  h = sim::fnv1a(h, version_);
  h = sim::fnv1a(h, known_pages_);
  h = sim::fnv1a(h, complete_pages_);
  h = sim::fnv1a(h, static_cast<std::uint64_t>(tau_));
  h = sim::fnv1a(h, static_cast<std::uint64_t>(heard_consistent_));
  h = sim::fnv1a(h, missing_for_page_);
  h = sim::fnv1a(h, rx_source_);
  h = sim::fnv1a(h, static_cast<std::uint64_t>(request_rounds_));
  h = sim::fnv1a(h, tx_page_);
  h = sim::fnv1a(h, tx_cursor_);
  return h;
}

// --------------------------------------------------------------------------
// program geometry
// --------------------------------------------------------------------------

void DelugeNode::learn_program(std::uint16_t version, std::uint16_t pages,
                               std::uint32_t bytes) {
  if (known_pages_ == 0 && pages > 0) {
    version_ = version;
    known_pages_ = pages;
    program_bytes_ = bytes;
    node_->meter().mark_first_advertisement(node_->now());
  }
}

std::uint16_t DelugeNode::packets_in(std::uint16_t page) const {
  if (page == 0 || page > known_pages_) return 0;
  if (page < known_pages_) return config_.packets_per_page;
  const std::size_t page_bytes =
      static_cast<std::size_t>(config_.packets_per_page) * config_.payload_bytes;
  const std::size_t last = program_bytes_ - page_bytes * (known_pages_ - 1);
  return static_cast<std::uint16_t>((last + config_.payload_bytes - 1) /
                                    config_.payload_bytes);
}

std::size_t DelugeNode::eeprom_offset(std::uint16_t page, std::uint16_t pkt) const {
  return (static_cast<std::size_t>(page - 1) * config_.packets_per_page + pkt) *
         config_.payload_bytes;
}

std::size_t DelugeNode::payload_len(std::uint16_t page, std::uint16_t pkt) const {
  const std::size_t offset = eeprom_offset(page, pkt);
  if (offset >= program_bytes_) return 0;
  return std::min(config_.payload_bytes, program_bytes_ - offset);
}

void DelugeNode::ensure_missing(std::uint16_t page) {
  if (missing_for_page_ == page) return;
  missing_ = util::Bitmap::all_set(packets_in(page));
  missing_for_page_ = page;
}

// --------------------------------------------------------------------------
// MAINTAIN (Trickle)
// --------------------------------------------------------------------------

void DelugeNode::start_round(bool reset_tau) {
  round_timer_.cancel();
  round_end_timer_.cancel();
  if (reset_tau || tau_ == 0) {
    tau_ = config_.tau_low;
  } else {
    tau_ = std::min(tau_ * 2, config_.tau_high);
  }
  heard_consistent_ = 0;
  if (metrics_) metrics_->add(m_rounds_, node_->id());
  const sim::Time t = node_->rng().uniform_int(tau_ / 2, tau_);
  round_timer_ = node_->schedule(t, [this] { round_fired(); });
  round_end_timer_ = node_->schedule(tau_, [this] {
    if (state_ == State::kMaintain) start_round(/*reset_tau=*/false);
  });
}

void DelugeNode::round_fired() {
  if (state_ != State::kMaintain) return;
  if (heard_consistent_ >= config_.suppression_k) return;  // suppressed
  Packet pkt;
  net::DelugeSummaryMsg summary;
  summary.version = version_;
  summary.total_pages = known_pages_;
  summary.complete_pages = complete_pages_;
  summary.program_bytes = program_bytes_;
  pkt.payload = summary;
  if (node_->send(std::move(pkt)) && metrics_) {
    metrics_->add(m_summaries_, node_->id());
  }
}

void DelugeNode::handle_summary(const Packet& pkt,
                                const net::DelugeSummaryMsg& msg) {
  learn_program(msg.version, msg.total_pages, msg.program_bytes);
  if (msg.complete_pages == complete_pages_) {
    ++heard_consistent_;
    return;
  }
  // Inconsistency: someone is ahead or behind; Trickle resets.
  if (state_ == State::kMaintain) {
    if (msg.complete_pages > complete_pages_) {
      begin_rx(pkt.src);
    } else {
      // They are behind: reset tau so our summary reaches them soon.
      start_round(/*reset_tau=*/true);
    }
  }
}

// --------------------------------------------------------------------------
// RX
// --------------------------------------------------------------------------

void DelugeNode::begin_rx(net::NodeId source) {
  state_ = State::kRx;
  round_timer_.cancel();
  round_end_timer_.cancel();
  rx_source_ = source;
  request_rounds_ = 0;
  ensure_missing(static_cast<std::uint16_t>(complete_pages_ + 1));
  const sim::Time delay = node_->rng().uniform_int(0, config_.request_delay_max);
  request_timer_ = node_->schedule(delay, [this] { send_request(); });
}

void DelugeNode::send_request() {
  if (state_ != State::kRx) return;
  if (request_rounds_ >= config_.max_request_rounds) {
    finish_rx(/*success=*/false);
    return;
  }
  ++request_rounds_;
  Packet pkt;
  net::DelugeRequestMsg req;
  req.dest = rx_source_;
  req.page = static_cast<std::uint16_t>(complete_pages_ + 1);
  req.missing = missing_;
  pkt.payload = req;
  if (node_->send(std::move(pkt)) && metrics_) {
    metrics_->add(m_requests_, node_->id());
  }
  rx_idle_timer_.cancel();
  rx_idle_timer_ =
      node_->schedule(config_.rx_idle_timeout, [this] { rx_timeout(); });
}

void DelugeNode::rx_timeout() {
  if (state_ != State::kRx) return;
  send_request();  // retry (bounded by max_request_rounds)
}

void DelugeNode::finish_rx(bool success) {
  request_timer_.cancel();
  rx_idle_timer_.cancel();
  rx_source_ = net::kNoNode;
  state_ = State::kMaintain;
  start_round(/*reset_tau=*/!success ? false : true);
}

// --------------------------------------------------------------------------
// TX
// --------------------------------------------------------------------------

void DelugeNode::handle_request(const Packet& pkt,
                                const net::DelugeRequestMsg& msg) {
  (void)pkt;
  if (msg.page > complete_pages_) return;  // we don't have it
  if (state_ == State::kTx) {
    if (msg.page == tx_page_) {
      // Merge the not-yet-passed part of the request.
      for (std::size_t i = tx_cursor_; i < tx_vector_.size(); ++i) {
        if (msg.missing.test(i)) tx_vector_.set(i);
      }
    }
    return;
  }
  if (state_ == State::kRx && msg.dest != node_->id()) return;
  if (msg.dest != node_->id()) return;
  begin_tx(msg.page);
  for (std::size_t i = 0; i < tx_vector_.size(); ++i) {
    if (msg.missing.test(i)) tx_vector_.set(i);
  }
}

void DelugeNode::begin_tx(std::uint16_t page) {
  request_timer_.cancel();
  rx_idle_timer_.cancel();
  round_timer_.cancel();
  round_end_timer_.cancel();
  state_ = State::kTx;
  node_->stats().on_became_sender(node_->id(), node_->now());
  tx_page_ = page;
  tx_vector_ = util::Bitmap(packets_in(page));
  tx_cursor_ = 0;
  tx_timer_ = node_->schedule(config_.tx_pump_interval, [this] { pump_tx(); });
}

void DelugeNode::pump_tx() {
  if (state_ != State::kTx) return;
  while (node_->mac().queue_depth() < 2) {
    const std::size_t next = tx_vector_.find_first_set(tx_cursor_);
    if (next >= tx_vector_.size()) break;
    Packet pkt;
    net::DelugeDataMsg data;
    data.version = version_;
    data.page = tx_page_;
    data.pkt_id = static_cast<std::uint8_t>(next);
    data.payload = node_->frame_pool().acquire_payload();
    if (image_) {
      image_->packet_payload_into(tx_page_, static_cast<std::uint16_t>(next),
                                  data.payload);
    } else {
      node_->eeprom().read_into(
          eeprom_offset(tx_page_, static_cast<std::uint16_t>(next)),
          payload_len(tx_page_, static_cast<std::uint16_t>(next)),
          data.payload);
    }
    pkt.payload = std::move(data);
    node_->send(std::move(pkt));
    tx_cursor_ = static_cast<std::uint16_t>(next + 1);
  }
  const bool drained =
      tx_vector_.find_first_set(tx_cursor_) >= tx_vector_.size() &&
      node_->mac().idle();
  if (drained) {
    state_ = State::kMaintain;
    start_round(/*reset_tau=*/true);
    return;
  }
  tx_timer_ = node_->schedule(config_.tx_pump_interval, [this] { pump_tx(); });
}

// --------------------------------------------------------------------------
// data reception (any state: Deluge receivers hoard every useful packet)
// --------------------------------------------------------------------------

void DelugeNode::store_data(const net::DelugeDataMsg& msg) {
  ensure_missing(msg.page);
  if (!missing_.test(msg.pkt_id)) return;
  node_->eeprom().write(eeprom_offset(msg.page, msg.pkt_id), msg.payload);
  missing_.clear(msg.pkt_id);
}

void DelugeNode::page_completed() {
  ++complete_pages_;
  if (config_.journal_progress) {
    boot::ProgressJournal journal(node_->eeprom());
    if (journal.usable(program_bytes_)) {
      journal.append(version_, program_bytes_, complete_pages_);
    }
  }
  node_->stats().on_segment_completed(node_->id(), complete_pages_, node_->now());
  if (has_complete_image()) {
    node_->stats().on_completed(node_->id(), node_->now());
  }
  if (state_ == State::kRx) {
    node_->stats().on_parent_set(node_->id(), rx_source_);
    finish_rx(/*success=*/true);
  } else {
    start_round(/*reset_tau=*/true);
  }
}

void DelugeNode::handle_data(const Packet& pkt, const net::DelugeDataMsg& msg) {
  (void)pkt;
  if (known_pages_ == 0) return;
  if (state_ == State::kTx) return;  // half-duplex sender: handled by radio
  if (msg.page != complete_pages_ + 1) {
    // Data for a page we can't use; Deluge suppresses its own traffic.
    heard_consistent_ = config_.suppression_k;
    return;
  }
  store_data(msg);
  if (state_ == State::kRx) {
    rx_idle_timer_.cancel();
    rx_idle_timer_ =
        node_->schedule(config_.rx_idle_timeout, [this] { rx_timeout(); });
  }
  if (missing_.none()) page_completed();
}

void DelugeNode::on_packet(const Packet& pkt) {
  if (const auto* summary = pkt.as<net::DelugeSummaryMsg>()) {
    handle_summary(pkt, *summary);
  } else if (const auto* req = pkt.as<net::DelugeRequestMsg>()) {
    handle_request(pkt, *req);
  } else if (const auto* data = pkt.as<net::DelugeDataMsg>()) {
    handle_data(pkt, *data);
  }
}

}  // namespace mnp::baselines

#include "baselines/ncast_node.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "boot/progress_journal.hpp"
#include "node/stats.hpp"
#include "sim/audit.hpp"
#include "util/gf256.hpp"

namespace mnp::baselines {

using net::Packet;

// --------------------------------------------------------------------------
// coefficient expansion
// --------------------------------------------------------------------------

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void ncast_expand_coefficients(std::uint16_t gen, std::uint16_t coeff_seed,
                               std::uint8_t k, std::uint8_t* out) {
  std::uint64_t state = (static_cast<std::uint64_t>(gen) << 16) |
                        static_cast<std::uint64_t>(coeff_seed);
  state ^= 0x243F6A8885A308D3ULL;  // scramble: (0, 0) must not be degenerate
  bool any_nonzero = false;
  std::uint64_t word = 0;
  for (std::uint8_t i = 0; i < k; ++i) {
    if (i % 8 == 0) word = splitmix64(state);
    const std::uint8_t c = static_cast<std::uint8_t>(word >> ((i % 8) * 8));
    out[i] = c;
    any_nonzero = any_nonzero || c != 0;
  }
  // All-zero would code the zero vector (useless on both ends); force one
  // unit coefficient, seed-dependently so senders still spread coverage.
  if (!any_nonzero && k > 0) out[coeff_seed % k] = 1;
}

// --------------------------------------------------------------------------
// RlncDecoder
// --------------------------------------------------------------------------

void RlncDecoder::reset(std::uint8_t k, std::size_t symbol_bytes) {
  k_ = k;
  symbol_bytes_ = symbol_bytes;
  stride_ = k + symbol_bytes;
  rank_ = 0;
  decoded_ = false;
  rows_.assign(static_cast<std::size_t>(k) * stride_, 0);
  filled_.assign(k, 0);
  scratch_.assign(stride_, 0);
}

bool RlncDecoder::insert(const std::uint8_t* coeff, const std::uint8_t* symbol,
                         std::size_t symbol_bytes) {
  if (k_ == 0 || symbol_bytes != symbol_bytes_ || decoded_) return false;
  std::copy(coeff, coeff + k_, scratch_.begin());
  std::copy(symbol, symbol + symbol_bytes_,
            scratch_.begin() + static_cast<std::ptrdiff_t>(k_));
  for (std::uint8_t col = 0; col < k_; ++col) {
    const std::uint8_t c = scratch_[col];
    if (c == 0) continue;
    if (filled_[col]) {
      // Eliminate against the unit-pivot row: scratch ^= c * row. The
      // leading coefficient cancels exactly (c XOR c*1 == 0), so the
      // walk continues at the next column.
      util::gf256::addmul_row(scratch_.data() + col, row(col) + col,
                              stride_ - col, c);
      ++row_ops_;
      continue;
    }
    // First hit on an empty pivot slot: normalize the leading coefficient
    // to 1 and claim it. Columns before `col` are already zero, and the
    // slot's prefix is zero from reset(), so copying the suffix suffices.
    util::gf256::mul_row(scratch_.data() + col, stride_ - col,
                         util::gf256::gf_inv(c));
    ++row_ops_;
    std::copy(scratch_.begin() + col, scratch_.end(),
              rows_.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(col) * stride_ + col));
    filled_[col] = 1;
    ++rank_;
    return true;
  }
  return false;  // linearly dependent: eliminated to the zero row
}

void RlncDecoder::decode() {
  if (!complete() || decoded_) return;
  // Back-substitution, last pivot first: clearing column `col` from every
  // earlier row leaves the coefficient block the identity, at which point
  // each row's symbol suffix IS the source packet.
  for (std::uint8_t col = k_; col-- > 1;) {
    const std::uint8_t* pivot = row(col);
    for (std::uint8_t r = 0; r < col; ++r) {
      const std::uint8_t c = row(r)[col];
      if (c == 0) continue;
      util::gf256::addmul_row(row(r) + col, pivot + col, stride_ - col, c);
      ++row_ops_;
    }
  }
  decoded_ = true;
}

const std::uint8_t* RlncDecoder::source_packet(std::uint8_t i) const {
  return row(i) + k_;
}

std::uint64_t RlncDecoder::digest_fold(std::uint64_t h) const {
  h = sim::fnv1a(h, k_);
  h = sim::fnv1a(h, rank_);
  h = sim::fnv1a(h, static_cast<std::uint64_t>(decoded_));
  for (std::uint8_t i = 0; i < k_; ++i) h = sim::fnv1a(h, filled_[i]);
  return h;
}

// --------------------------------------------------------------------------
// NcastNode
// --------------------------------------------------------------------------

NcastNode::NcastNode(NcastConfig config) : config_(config) {}

NcastNode::NcastNode(NcastConfig config,
                     std::shared_ptr<const core::ProgramImage> image)
    : config_(config), image_(std::move(image)) {
  assert(image_);
  assert(image_->packets_per_segment() == config_.generation_size);
  assert(image_->payload_bytes() == config_.payload_bytes);
}

void NcastNode::start(node::Node& node) {
  node_ = &node;
  // Coefficient seeds come from a forked stream: drawing them never
  // perturbs the node's timer jitter, so NCast runs stay trace-comparable
  // with the other baselines under the same root seed.
  coeff_rng_ = node_->rng().fork(0x4E43u);  // "NC"
  if ((metrics_ = node_->stats().metrics()) != nullptr) {
    m_rounds_ =
        metrics_->register_counter("ncast.rounds", obs::Unit::kCount, true);
    m_advs_ =
        metrics_->register_counter("ncast.advs_sent", obs::Unit::kCount, true);
    m_requests_ = metrics_->register_counter("ncast.requests_sent",
                                             obs::Unit::kCount, true);
    m_coded_sent_ = metrics_->register_counter("ncast.coded_sent",
                                               obs::Unit::kCount, true);
    m_innovative_ = metrics_->register_counter("ncast.innovative",
                                               obs::Unit::kCount, true);
    m_redundant_ = metrics_->register_counter("ncast.redundant",
                                              obs::Unit::kCount, true);
    m_decode_row_ops_ = metrics_->register_counter("ncast.decode_row_ops",
                                                   obs::Unit::kCount, true);
    m_gens_decoded_ = metrics_->register_counter("ncast.generations_decoded",
                                                 obs::Unit::kCount, true);
    m_rank_ = metrics_->register_gauge("ncast.rank", obs::Unit::kCount, true);
  }
  node_->radio_on();  // like Deluge: always-on radio, no sleep schedule
  if (image_) {
    program_id_ = image_->id();
    program_bytes_ = static_cast<std::uint32_t>(image_->total_bytes());
    known_gens_ = image_->num_segments();
    complete_gens_ = known_gens_;
    node_->stats().on_completed(node_->id(), node_->now());
  } else if (recover_journal() && has_complete_image()) {
    node_->stats().on_completed(node_->id(), node_->now());
  }
  start_round(/*reset_tau=*/true);
}

bool NcastNode::recover_journal() {
  if (!config_.journal_progress) return false;
  boot::ProgressJournal journal(node_->eeprom());
  auto rec = journal.recover();
  if (!rec || rec->units.empty()) return false;
  const std::size_t gen_bytes =
      static_cast<std::size_t>(config_.generation_size) * config_.payload_bytes;
  program_id_ = rec->program_id;
  program_bytes_ = rec->program_bytes;
  known_gens_ = static_cast<std::uint16_t>(
      (rec->program_bytes + gen_bytes - 1) / gen_bytes);
  // Generations decode strictly in order; the journal holds the prefix.
  std::uint16_t contiguous = 0;
  for (std::uint16_t unit : rec->units) {
    if (unit == contiguous + 1) contiguous = unit;
  }
  complete_gens_ = contiguous;
  return complete_gens_ > 0;
}

void NcastNode::reset_for_reboot() {
  round_timer_.cancel();
  round_end_timer_.cancel();
  request_timer_.cancel();
  rx_idle_timer_.cancel();
  tx_timer_.cancel();
  if (state_ != State::kAdvertise) {
    state_ = State::kAdvertise;
  }
  program_id_ = 0;
  program_bytes_ = 0;
  known_gens_ = 0;
  complete_gens_ = 0;
  decoder_.reset(0, 0);
  decoder_gen_ = 0;
  tau_ = 0;
  heard_consistent_ = 0;
  rx_source_ = net::kNoNode;
  request_rounds_ = 0;
  tx_gen_ = 0;
  tx_remaining_ = 0;
}

std::uint64_t NcastNode::audit_digest() const {
  std::uint64_t h = sim::kFnvOffset;
  h = sim::fnv1a(h, static_cast<std::uint64_t>(state_));
  h = sim::fnv1a(h, program_id_);
  h = sim::fnv1a(h, known_gens_);
  h = sim::fnv1a(h, complete_gens_);
  h = sim::fnv1a(h, static_cast<std::uint64_t>(tau_));
  h = sim::fnv1a(h, static_cast<std::uint64_t>(heard_consistent_));
  h = sim::fnv1a(h, rx_source_);
  h = sim::fnv1a(h, static_cast<std::uint64_t>(request_rounds_));
  h = sim::fnv1a(h, tx_gen_);
  h = sim::fnv1a(h, static_cast<std::uint64_t>(tx_remaining_));
  h = sim::fnv1a(h, decoder_gen_);
  h = decoder_.digest_fold(h);
  return h;
}

std::uint8_t NcastNode::cur_rank() const {
  if (decoder_gen_ != 0 && decoder_gen_ == complete_gens_ + 1) {
    return decoder_.rank();
  }
  return 0;
}

// --------------------------------------------------------------------------
// program geometry
// --------------------------------------------------------------------------

void NcastNode::learn_program(std::uint16_t id, std::uint16_t gens,
                              std::uint32_t bytes) {
  if (known_gens_ == 0 && gens > 0) {
    program_id_ = id;
    known_gens_ = gens;
    program_bytes_ = bytes;
    node_->meter().mark_first_advertisement(node_->now());
  }
}

std::uint16_t NcastNode::packets_in(std::uint16_t gen) const {
  if (gen == 0 || gen > known_gens_) return 0;
  if (gen < known_gens_) return config_.generation_size;
  const std::size_t gen_bytes =
      static_cast<std::size_t>(config_.generation_size) * config_.payload_bytes;
  const std::size_t last = program_bytes_ - gen_bytes * (known_gens_ - 1);
  return static_cast<std::uint16_t>((last + config_.payload_bytes - 1) /
                                    config_.payload_bytes);
}

std::size_t NcastNode::eeprom_offset(std::uint16_t gen, std::uint16_t idx) const {
  return (static_cast<std::size_t>(gen - 1) * config_.generation_size + idx) *
         config_.payload_bytes;
}

std::size_t NcastNode::payload_len(std::uint16_t gen, std::uint16_t idx) const {
  const std::size_t offset = eeprom_offset(gen, idx);
  if (offset >= program_bytes_) return 0;
  return std::min(config_.payload_bytes, program_bytes_ - offset);
}

void NcastNode::ensure_decoder() {
  const std::uint16_t cur = static_cast<std::uint16_t>(complete_gens_ + 1);
  if (decoder_gen_ == cur) return;
  decoder_.reset(static_cast<std::uint8_t>(packets_in(cur)),
                 config_.payload_bytes);
  decoder_gen_ = cur;
}

// --------------------------------------------------------------------------
// trace
// --------------------------------------------------------------------------

const char* NcastNode::state_cname(State s) {
  switch (s) {
    case State::kAdvertise: return "Advertise";
    case State::kDecode: return "Decode";
    case State::kForward: return "Forward";
  }
  return "?";
}

void NcastNode::trace_state(State next) {
  if (next == state_) return;
  if (auto* log = node_->stats().event_log()) {
    // Format "Old->New" in a stack buffer; the log copies it inline.
    char buf[2 * 9 + 2];
    char* p = buf;
    for (const char* s = state_cname(state_); *s != '\0';) *p++ = *s++;
    *p++ = '-';
    *p++ = '>';
    for (const char* s = state_cname(next); *s != '\0';) *p++ = *s++;
    log->record(node_->now(), node_->id(), trace::EventKind::kStateChange,
                std::string_view(buf, static_cast<std::size_t>(p - buf)));
  }
}

// --------------------------------------------------------------------------
// ADVERTISE (Trickle)
// --------------------------------------------------------------------------

void NcastNode::start_round(bool reset_tau) {
  round_timer_.cancel();
  round_end_timer_.cancel();
  if (reset_tau || tau_ == 0) {
    tau_ = config_.tau_low;
  } else {
    tau_ = std::min(tau_ * 2, config_.tau_high);
  }
  heard_consistent_ = 0;
  if (metrics_) metrics_->add(m_rounds_, node_->id());
  const sim::Time t = node_->rng().uniform_int(tau_ / 2, tau_);
  round_timer_ = node_->schedule(t, [this] { round_fired(); });
  round_end_timer_ = node_->schedule(tau_, [this] {
    if (state_ == State::kAdvertise) start_round(/*reset_tau=*/false);
  });
}

void NcastNode::round_fired() {
  if (state_ != State::kAdvertise) return;
  if (heard_consistent_ >= config_.suppression_k) return;  // suppressed
  Packet pkt;
  net::NcastAdvMsg adv;
  adv.program_id = program_id_;
  adv.program_bytes = program_bytes_;
  adv.total_gens = known_gens_;
  adv.complete_gens = complete_gens_;
  adv.gen_size = config_.generation_size;
  adv.cur_rank = cur_rank();
  pkt.payload = adv;
  if (node_->send(std::move(pkt)) && metrics_) {
    metrics_->add(m_advs_, node_->id());
  }
}

void NcastNode::handle_adv(const Packet& pkt, const net::NcastAdvMsg& msg) {
  learn_program(msg.program_id, msg.total_gens, msg.program_bytes);
  // Rank-based suppression: a neighbor is consistent only when it matches
  // both the complete-generation count AND the working rank — a neighbor
  // mid-decode still needs the network talking.
  if (msg.complete_gens == complete_gens_ && msg.cur_rank == cur_rank()) {
    ++heard_consistent_;
    return;
  }
  if (state_ == State::kAdvertise) {
    if (msg.complete_gens > complete_gens_) {
      begin_rx(pkt.src);
    } else {
      // They are behind (fewer generations, or rank-skewed on the same
      // one): reset tau so our advertisement reaches them soon. Partial
      // rank is never served directly — only complete generations recode.
      start_round(/*reset_tau=*/true);
    }
  }
}

// --------------------------------------------------------------------------
// DECODE
// --------------------------------------------------------------------------

void NcastNode::begin_rx(net::NodeId source) {
  trace_state(State::kDecode);
  state_ = State::kDecode;
  round_timer_.cancel();
  round_end_timer_.cancel();
  rx_source_ = source;
  request_rounds_ = 0;
  ensure_decoder();
  const sim::Time delay = node_->rng().uniform_int(0, config_.request_delay_max);
  request_timer_ = node_->schedule(delay, [this] { send_request(); });
}

void NcastNode::send_request() {
  if (state_ != State::kDecode) return;
  if (request_rounds_ >= config_.max_request_rounds) {
    finish_rx(/*success=*/false);
    return;
  }
  ++request_rounds_;
  Packet pkt;
  net::NcastReqMsg req;
  req.dest = rx_source_;
  req.gen = static_cast<std::uint16_t>(complete_gens_ + 1);
  req.rank = cur_rank();
  pkt.payload = req;
  if (node_->send(std::move(pkt)) && metrics_) {
    metrics_->add(m_requests_, node_->id());
  }
  rx_idle_timer_.cancel();
  rx_idle_timer_ =
      node_->schedule(config_.rx_idle_timeout, [this] { rx_timeout(); });
}

void NcastNode::rx_timeout() {
  if (state_ != State::kDecode) return;
  send_request();  // retry (bounded by max_request_rounds)
}

void NcastNode::finish_rx(bool success) {
  request_timer_.cancel();
  rx_idle_timer_.cancel();
  rx_source_ = net::kNoNode;
  trace_state(State::kAdvertise);
  state_ = State::kAdvertise;
  start_round(/*reset_tau=*/!success ? false : true);
}

// --------------------------------------------------------------------------
// FORWARD
// --------------------------------------------------------------------------

void NcastNode::handle_request(const Packet& pkt, const net::NcastReqMsg& msg) {
  (void)pkt;
  if (msg.gen == 0 || msg.gen > complete_gens_) return;  // can't serve
  const int deficit =
      std::max(1, static_cast<int>(packets_in(msg.gen)) - msg.rank);
  if (state_ == State::kForward) {
    if (msg.gen == tx_gen_) {
      // Another requester for the burst in flight: stretch it to cover
      // the larger deficit (combinations serve every listener at once).
      tx_remaining_ = std::max(tx_remaining_, deficit + config_.tx_redundancy);
    }
    return;
  }
  if (state_ == State::kDecode && msg.dest != node_->id()) return;
  if (msg.dest != node_->id()) return;
  begin_tx(msg.gen, deficit);
}

void NcastNode::begin_tx(std::uint16_t gen, int deficit) {
  request_timer_.cancel();
  rx_idle_timer_.cancel();
  round_timer_.cancel();
  round_end_timer_.cancel();
  trace_state(State::kForward);
  state_ = State::kForward;
  node_->stats().on_became_sender(node_->id(), node_->now());
  tx_gen_ = gen;
  tx_remaining_ = deficit + config_.tx_redundancy;
  tx_timer_ = node_->schedule(config_.tx_pump_interval, [this] { pump_tx(); });
}

void NcastNode::pump_tx() {
  if (state_ != State::kForward) return;
  while (node_->mac().queue_depth() < 2 && tx_remaining_ > 0) {
    send_coded(tx_gen_);
    --tx_remaining_;
  }
  if (tx_remaining_ == 0 && node_->mac().idle()) {
    trace_state(State::kAdvertise);
    state_ = State::kAdvertise;
    start_round(/*reset_tau=*/true);
    return;
  }
  tx_timer_ = node_->schedule(config_.tx_pump_interval, [this] { pump_tx(); });
}

void NcastNode::send_coded(std::uint16_t gen) {
  const std::uint16_t k = packets_in(gen);
  if (k == 0) return;
  coeff_scratch_.resize(k);
  const auto seed =
      static_cast<std::uint16_t>(coeff_rng_.uniform_int(0, 0xFFFF));
  ncast_expand_coefficients(gen, seed, static_cast<std::uint8_t>(k),
                            coeff_scratch_.data());
  net::NcastCodedMsg msg;
  msg.gen = gen;
  msg.coeff_seed = seed;
  // Accumulate the combination in a pooled buffer: short tail packets add
  // fewer bytes and leave the zero padding, so coded symbols are always
  // full length and the decoder never sees ragged rows.
  msg.payload = node_->frame_pool().acquire_payload();
  msg.payload.assign(config_.payload_bytes, 0);
  for (std::uint16_t i = 0; i < k; ++i) {
    const std::uint8_t c = coeff_scratch_[i];
    if (c == 0) continue;
    const std::size_t len = payload_len(gen, i);
    if (len == 0) continue;
    if (image_) {
      util::gf256::addmul_row(msg.payload.data(),
                              image_->bytes().data() + eeprom_offset(gen, i),
                              len, c);
    } else {
      node_->eeprom().read_into(eeprom_offset(gen, i), len, symbol_scratch_);
      util::gf256::addmul_row(msg.payload.data(), symbol_scratch_.data(), len,
                              c);
    }
  }
  Packet pkt;
  pkt.payload = std::move(msg);
  if (node_->send(std::move(pkt)) && metrics_) {
    metrics_->add(m_coded_sent_, node_->id());
  }
}

// --------------------------------------------------------------------------
// coded reception (any non-Forward state: every combination is hoarded)
// --------------------------------------------------------------------------

void NcastNode::generation_completed() {
  decoder_.decode();
  const std::uint16_t gen = static_cast<std::uint16_t>(complete_gens_ + 1);
  const std::uint8_t k = decoder_.generation_size();
  for (std::uint8_t i = 0; i < k; ++i) {
    const std::size_t len = payload_len(gen, i);
    if (len == 0) break;
    const std::uint8_t* src = decoder_.source_packet(i);
    symbol_scratch_.assign(src, src + len);
    node_->eeprom().write(eeprom_offset(gen, i), symbol_scratch_);
  }
  ++complete_gens_;
  decoder_gen_ = 0;  // recycled on demand for the next generation
  if (metrics_) {
    metrics_->add(m_gens_decoded_, node_->id());
    metrics_->set(m_rank_, node_->id(), 0.0);
  }
  if (config_.journal_progress) {
    boot::ProgressJournal journal(node_->eeprom());
    if (journal.usable(program_bytes_)) {
      journal.append(program_id_, program_bytes_, complete_gens_);
    }
  }
  node_->stats().on_segment_completed(node_->id(), complete_gens_, node_->now());
  if (has_complete_image()) {
    node_->stats().on_completed(node_->id(), node_->now());
  }
  if (state_ == State::kDecode) {
    node_->stats().on_parent_set(node_->id(), rx_source_);
    finish_rx(/*success=*/true);
  } else {
    start_round(/*reset_tau=*/true);
  }
}

void NcastNode::handle_coded(const Packet& pkt, const net::NcastCodedMsg& msg) {
  (void)pkt;
  if (known_gens_ == 0) return;
  if (state_ == State::kForward) return;  // half-duplex sender
  if (msg.gen != complete_gens_ + 1) {
    // A generation we can't use yet (or already hold): evidence the
    // network is busy; suppress our own advertisement this round.
    heard_consistent_ = config_.suppression_k;
    return;
  }
  if (msg.payload.size() != config_.payload_bytes) return;
  ensure_decoder();
  const std::uint8_t k = decoder_.generation_size();
  if (k == 0) return;
  coeff_scratch_.resize(k);
  ncast_expand_coefficients(msg.gen, msg.coeff_seed, k, coeff_scratch_.data());
  const bool innovative =
      decoder_.insert(coeff_scratch_.data(), msg.payload.data(),
                      msg.payload.size());
  if (metrics_) {
    metrics_->add(innovative ? m_innovative_ : m_redundant_, node_->id());
    metrics_->add(m_decode_row_ops_, node_->id(),
                  decoder_.row_ops() - last_row_ops_);
    metrics_->set(m_rank_, node_->id(), decoder_.rank());
  }
  last_row_ops_ = decoder_.row_ops();
  if (state_ == State::kDecode) {
    rx_idle_timer_.cancel();
    rx_idle_timer_ =
        node_->schedule(config_.rx_idle_timeout, [this] { rx_timeout(); });
  }
  if (decoder_.complete()) {
    generation_completed();
    if (metrics_) {
      // decode() back-substitution work lands on the same counter.
      metrics_->add(m_decode_row_ops_, node_->id(),
                    decoder_.row_ops() - last_row_ops_);
    }
    last_row_ops_ = decoder_.row_ops();
  }
}

void NcastNode::on_packet(const Packet& pkt) {
  if (const auto* adv = pkt.as<net::NcastAdvMsg>()) {
    handle_adv(pkt, *adv);
  } else if (const auto* req = pkt.as<net::NcastReqMsg>()) {
    handle_request(pkt, *req);
  } else if (const auto* coded = pkt.as<net::NcastCodedMsg>()) {
    handle_coded(pkt, *coded);
  }
}

}  // namespace mnp::baselines

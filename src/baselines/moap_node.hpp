// MOAP baseline (Stathopoulos, Heidemann, Estrin: "A remote code update
// mechanism for wireless sensor networks").
//
// Key contrasts with MNP, all reproduced here:
//  * strictly hop-by-hop: a node must hold the ENTIRE image before it may
//    publish (no pipelining),
//  * publish-subscribe sender limitation, but no requester-counting
//    election — concurrent publishers are merely discouraged by deferring
//    publishes while data is audible,
//  * sliding-window loss tracking with unicast NACKs, broadcast
//    retransmissions,
//  * the radio stays on for the entire reprogramming session.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mnp/program_image.hpp"
#include "node/application.hpp"
#include "node/node.hpp"
#include "obs/metrics.hpp"

namespace mnp::baselines {

struct MoapConfig {
  std::size_t payload_bytes = 22;

  sim::Time publish_interval_min = sim::sec(1);
  sim::Time publish_interval_max = sim::sec(2);
  sim::Time publish_interval_cap = sim::sec(32);
  /// Publishes due while a neighbor's data stream is audible are deferred
  /// by this much (MOAP's crude sender-limitation knob).
  sim::Time publish_defer = sim::sec(2);

  /// Subscriptions collected for this long before streaming starts.
  sim::Time subscribe_window = sim::msec(600);
  sim::Time pump_interval = sim::msec(10);

  /// Receiver: a gap older than this many packets triggers a NACK.
  std::uint16_t nack_window = 8;
  sim::Time nack_min_gap = sim::msec(250);
  sim::Time rx_idle_timeout = sim::sec(3);

  /// Publisher: repair phase ends after this long without a NACK.
  sim::Time repair_idle_timeout = sim::sec(2);

  /// Crash-safe progress journaling (boot::ProgressJournal): every
  /// 64-packet contiguous prefix chunk is journaled, and a rebooted node
  /// resumes from the journaled prefix. Off by default; the harness
  /// enables it for churn scenarios.
  bool journal_progress = false;
};

class MoapNode final : public node::Application {
 public:
  enum class State : std::uint8_t { kIdle, kSubscribed, kPublishing, kStreaming, kRepair };

  explicit MoapNode(MoapConfig config);
  MoapNode(MoapConfig config, std::shared_ptr<const core::ProgramImage> image);

  void start(node::Node& node) override;
  void on_packet(const net::Packet& pkt) override;
  bool has_complete_image() const override {
    return total_packets_ > 0 && have_count_ == total_packets_;
  }
  /// Power cycle: timers and all pub/sub state die; start() replays the
  /// chunk journal (if enabled) from the surviving EEPROM.
  void reset_for_reboot() override;
  std::uint64_t audit_digest() const override;

  /// Journal granularity: one record per this many contiguous packets.
  static constexpr std::uint32_t kJournalChunkPackets = 64;

  State state() const { return state_; }
  bool is_publisher_capable() const { return has_complete_image(); }

 private:
  void schedule_publish(bool reset_interval);
  void send_publish();
  void handle_publish(const net::Packet& pkt, const net::MoapPublishMsg& msg);
  void handle_subscribe(const net::Packet& pkt, const net::MoapSubscribeMsg& msg);
  void handle_data(const net::Packet& pkt, const net::MoapDataMsg& msg);
  void handle_nack(const net::Packet& pkt, const net::MoapNackMsg& msg);

  void begin_streaming();
  /// Repair phase over (idle timeout): back to Publishing with a clean
  /// timer slate.
  void end_repair();
  void pump_stream();
  void maybe_nack();
  void rx_idle();
  void become_publisher();

  std::size_t payload_len(std::uint16_t pkt_id) const;
  /// Journals every newly completed 64-packet contiguous prefix chunk.
  void maybe_journal();
  bool recover_journal();

  MoapConfig config_;
  std::shared_ptr<const core::ProgramImage> image_;
  node::Node* node_ = nullptr;

  // Telemetry handles (moap.* of DESIGN.md section 9), registered at
  // start() when the harness attached a registry.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_publishes_;
  obs::MetricsRegistry::Counter m_nacks_;
  State state_ = State::kIdle;

  std::uint16_t version_ = 0;
  std::uint32_t program_bytes_ = 0;
  std::uint32_t total_packets_ = 0;
  std::vector<bool> have_;
  std::size_t have_count_ = 0;
  /// Packets covered by journal records so far (a multiple of the chunk
  /// size, except possibly the final chunk).
  std::uint32_t journaled_prefix_ = 0;

  // Receiver side.
  net::NodeId source_ = net::kNoNode;
  sim::Time last_nack_time_ = -1;
  std::size_t last_idle_have_count_ = 0;
  int stalled_idles_ = 0;
  sim::EventHandle rx_idle_timer_;
  sim::EventHandle nack_timer_;

  // Publisher side.
  bool saw_subscriber_ = false;
  std::uint32_t stream_cursor_ = 0;
  std::vector<std::uint16_t> retransmit_queue_;
  sim::Time publish_interval_hi_ = 0;
  sim::EventHandle publish_timer_;
  sim::EventHandle subscribe_window_timer_;
  sim::EventHandle pump_timer_;
  sim::EventHandle repair_timer_;
};

}  // namespace mnp::baselines

#include "baselines/moap_node.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "boot/progress_journal.hpp"
#include "node/stats.hpp"
#include "sim/audit.hpp"

namespace mnp::baselines {

using net::Packet;

MoapNode::MoapNode(MoapConfig config) : config_(config) {}

MoapNode::MoapNode(MoapConfig config,
                   std::shared_ptr<const core::ProgramImage> image)
    : config_(config), image_(std::move(image)) {
  assert(image_);
  assert(image_->payload_bytes() == config_.payload_bytes);
}

void MoapNode::start(node::Node& node) {
  // Entry guard: nodes boot in Idle (anchors mnp_lint's extraction).
  assert(state_ == State::kIdle);
  node_ = &node;
  if ((metrics_ = node_->stats().metrics()) != nullptr) {
    m_publishes_ = metrics_->register_counter("moap.publishes_sent",
                                              obs::Unit::kCount, true);
    m_nacks_ = metrics_->register_counter("moap.nacks_sent", obs::Unit::kCount,
                                          true);
  }
  node_->radio_on();  // MOAP never turns the radio off
  if (image_) {
    version_ = image_->id();
    program_bytes_ = static_cast<std::uint32_t>(image_->total_bytes());
    total_packets_ = static_cast<std::uint32_t>(
        (program_bytes_ + config_.payload_bytes - 1) / config_.payload_bytes);
    have_.assign(total_packets_, true);
    have_count_ = total_packets_;
    node_->stats().on_completed(node_->id(), node_->now());
    become_publisher();
  } else if (recover_journal() && has_complete_image()) {
    // Rebooted after finishing the download: rejoin as a publisher.
    node_->stats().on_completed(node_->id(), node_->now());
    become_publisher();
  }
  // A partially recovered node stays Idle; the next publish it hears
  // re-subscribes it, and NACKs pull down only the missing tail.
}

void MoapNode::maybe_journal() {
  if (!config_.journal_progress || total_packets_ == 0) return;
  boot::ProgressJournal journal(node_->eeprom());
  if (!journal.usable(program_bytes_)) return;
  while (journaled_prefix_ < total_packets_) {
    const std::uint32_t next_end =
        std::min(journaled_prefix_ + kJournalChunkPackets, total_packets_);
    bool chunk_complete = true;
    for (std::uint32_t i = journaled_prefix_; i < next_end; ++i) {
      if (!have_[i]) {
        chunk_complete = false;
        break;
      }
    }
    if (!chunk_complete) break;
    const std::uint16_t chunk =
        static_cast<std::uint16_t>(journaled_prefix_ / kJournalChunkPackets + 1);
    journal.append(version_, program_bytes_, chunk);
    journaled_prefix_ = next_end;
  }
}

bool MoapNode::recover_journal() {
  if (!config_.journal_progress) return false;
  boot::ProgressJournal journal(node_->eeprom());
  auto rec = journal.recover();
  if (!rec || rec->units.empty()) return false;
  version_ = rec->program_id;
  program_bytes_ = rec->program_bytes;
  total_packets_ = static_cast<std::uint32_t>(
      (program_bytes_ + config_.payload_bytes - 1) / config_.payload_bytes);
  have_.assign(total_packets_, false);
  have_count_ = 0;
  std::uint16_t contiguous = 0;
  for (std::uint16_t unit : rec->units) {
    if (unit == contiguous + 1) contiguous = unit;
  }
  journaled_prefix_ = std::min(
      static_cast<std::uint32_t>(contiguous) * kJournalChunkPackets,
      total_packets_);
  for (std::uint32_t i = 0; i < journaled_prefix_; ++i) {
    have_[i] = true;
    ++have_count_;
  }
  return have_count_ > 0;
}

void MoapNode::reset_for_reboot() {
  rx_idle_timer_.cancel();
  nack_timer_.cancel();
  publish_timer_.cancel();
  subscribe_window_timer_.cancel();
  pump_timer_.cancel();
  repair_timer_.cancel();
  if (state_ != State::kIdle) {
    state_ = State::kIdle;
  }
  version_ = 0;
  program_bytes_ = 0;
  total_packets_ = 0;
  have_.clear();
  have_count_ = 0;
  journaled_prefix_ = 0;
  source_ = net::kNoNode;
  last_nack_time_ = -1;
  last_idle_have_count_ = 0;
  stalled_idles_ = 0;
  saw_subscriber_ = false;
  stream_cursor_ = 0;
  retransmit_queue_.clear();
  publish_interval_hi_ = 0;
}

std::uint64_t MoapNode::audit_digest() const {
  std::uint64_t h = sim::kFnvOffset;
  h = sim::fnv1a(h, static_cast<std::uint64_t>(state_));
  h = sim::fnv1a(h, version_);
  h = sim::fnv1a(h, total_packets_);
  h = sim::fnv1a(h, have_count_);
  h = sim::fnv1a(h, journaled_prefix_);
  h = sim::fnv1a(h, source_);
  h = sim::fnv1a(h, static_cast<std::uint64_t>(stalled_idles_));
  h = sim::fnv1a(h, saw_subscriber_ ? 1u : 0u);
  h = sim::fnv1a(h, stream_cursor_);
  h = sim::fnv1a(h, retransmit_queue_.size());
  return h;
}

std::size_t MoapNode::payload_len(std::uint16_t pkt_id) const {
  const std::size_t offset =
      static_cast<std::size_t>(pkt_id) * config_.payload_bytes;
  if (offset >= program_bytes_) return 0;
  return std::min(config_.payload_bytes, program_bytes_ - offset);
}

// --------------------------------------------------------------------------
// publisher
// --------------------------------------------------------------------------

void MoapNode::become_publisher() {
  state_ = State::kPublishing;
  saw_subscriber_ = false;
  schedule_publish(/*reset_interval=*/true);
}

void MoapNode::schedule_publish(bool reset_interval) {
  if (reset_interval || publish_interval_hi_ == 0) {
    publish_interval_hi_ = config_.publish_interval_max;
  }
  const sim::Time delay =
      node_->rng().uniform_int(config_.publish_interval_min, publish_interval_hi_);
  publish_timer_ = node_->schedule(delay, [this] { send_publish(); });
}

void MoapNode::send_publish() {
  if (state_ != State::kPublishing) return;
  Packet pkt;
  net::MoapPublishMsg msg;
  msg.version = version_;
  msg.total_packets = static_cast<std::uint16_t>(total_packets_);
  msg.program_bytes = program_bytes_;
  pkt.payload = msg;
  if (node_->send(std::move(pkt)) && metrics_) {
    metrics_->add(m_publishes_, node_->id());
  }
  // Collect subscriptions for a window; if none, slow down (quiescent
  // neighborhood) and try again later.
  subscribe_window_timer_ =
      node_->schedule(config_.subscribe_window, [this] {
        if (state_ != State::kPublishing) return;
        if (saw_subscriber_) {
          begin_streaming();
        } else {
          publish_interval_hi_ =
              std::min(publish_interval_hi_ * 2, config_.publish_interval_cap);
          schedule_publish(/*reset_interval=*/false);
        }
      });
}

void MoapNode::handle_subscribe(const Packet& pkt,
                                const net::MoapSubscribeMsg& msg) {
  (void)pkt;
  if (msg.dest != node_->id()) return;
  if (state_ == State::kPublishing) {
    saw_subscriber_ = true;
  } else if (state_ == State::kRepair || state_ == State::kStreaming) {
    // Late subscriber: it will pick packets from the ongoing broadcast and
    // NACK the rest during repair.
    saw_subscriber_ = true;
  }
}

void MoapNode::begin_streaming() {
  // A deferred publish (handle_data's concurrent-sender mitigation) may
  // still be pending from Publishing; streaming supersedes it.
  publish_timer_.cancel();
  subscribe_window_timer_.cancel();
  state_ = State::kStreaming;
  saw_subscriber_ = false;  // future publishes need fresh interest
  node_->stats().on_became_sender(node_->id(), node_->now());
  stream_cursor_ = 0;
  retransmit_queue_.clear();
  pump_timer_ = node_->schedule(config_.pump_interval, [this] { pump_stream(); });
}

void MoapNode::end_repair() {
  // pump_stream re-arms itself even when Repair has nothing queued, so
  // the pump must die with the phase or it would tick on in Publishing.
  pump_timer_.cancel();
  state_ = State::kPublishing;
  schedule_publish(/*reset_interval=*/false);
}

void MoapNode::pump_stream() {
  if (state_ != State::kStreaming && state_ != State::kRepair) return;
  while (node_->mac().queue_depth() < 2) {
    std::uint16_t pkt_id;
    if (!retransmit_queue_.empty()) {
      pkt_id = retransmit_queue_.front();
      retransmit_queue_.erase(retransmit_queue_.begin());
    } else if (state_ == State::kStreaming && stream_cursor_ < total_packets_) {
      pkt_id = static_cast<std::uint16_t>(stream_cursor_++);
    } else {
      break;
    }
    Packet pkt;
    net::MoapDataMsg data;
    data.version = version_;
    data.pkt_id = pkt_id;
    data.payload = node_->frame_pool().acquire_payload();
    if (image_) {
      const std::size_t offset =
          static_cast<std::size_t>(pkt_id) * config_.payload_bytes;
      const std::size_t len = payload_len(pkt_id);
      data.payload.insert(data.payload.end(),
                          image_->bytes().begin() + static_cast<long>(offset),
                          image_->bytes().begin() + static_cast<long>(offset + len));
    } else {
      node_->eeprom().read_into(
          static_cast<std::size_t>(pkt_id) * config_.payload_bytes,
          payload_len(pkt_id), data.payload);
    }
    pkt.payload = std::move(data);
    node_->send(std::move(pkt));
  }
  if (state_ == State::kStreaming && stream_cursor_ >= total_packets_ &&
      retransmit_queue_.empty() && node_->mac().idle()) {
    // First pass done: answer NACKs until the neighborhood goes quiet.
    state_ = State::kRepair;
    repair_timer_ = node_->schedule(config_.repair_idle_timeout,
                                    [this] { end_repair(); });
    return;
  }
  pump_timer_ = node_->schedule(config_.pump_interval, [this] { pump_stream(); });
}

void MoapNode::handle_nack(const Packet& pkt, const net::MoapNackMsg& msg) {
  (void)pkt;
  if (msg.dest != node_->id()) return;
  if (state_ != State::kStreaming && state_ != State::kRepair) return;
  if (msg.pkt_id >= total_packets_) return;
  if (std::find(retransmit_queue_.begin(), retransmit_queue_.end(), msg.pkt_id) ==
      retransmit_queue_.end()) {
    retransmit_queue_.push_back(msg.pkt_id);
  }
  if (state_ == State::kRepair) {
    repair_timer_.cancel();
    repair_timer_ = node_->schedule(config_.repair_idle_timeout,
                                    [this] { end_repair(); });
    pump_timer_.cancel();
    pump_timer_ = node_->schedule(config_.pump_interval, [this] { pump_stream(); });
  }
}

// --------------------------------------------------------------------------
// receiver
// --------------------------------------------------------------------------

void MoapNode::handle_publish(const Packet& pkt, const net::MoapPublishMsg& msg) {
  if (image_) return;
  if (total_packets_ == 0 && msg.total_packets > 0) {
    version_ = msg.version;
    total_packets_ = msg.total_packets;
    program_bytes_ = msg.program_bytes;
    have_.assign(total_packets_, false);
    node_->meter().mark_first_advertisement(node_->now());
  }
  if (has_complete_image()) return;
  if (state_ != State::kIdle) return;  // already subscribed or busy
  state_ = State::kSubscribed;
  source_ = pkt.src;
  node_->stats().on_parent_set(node_->id(), pkt.src);
  Packet out;
  out.payload = net::MoapSubscribeMsg{pkt.src};
  node_->send(std::move(out));
  rx_idle_timer_.cancel();
  rx_idle_timer_ = node_->schedule(config_.rx_idle_timeout, [this] { rx_idle(); });
}

void MoapNode::rx_idle() {
  if (state_ != State::kSubscribed) return;
  if (has_complete_image()) return;
  if (have_count_ > last_idle_have_count_) {
    stalled_idles_ = 0;
  } else {
    ++stalled_idles_;
  }
  last_idle_have_count_ = have_count_;
  if (have_count_ > 0 && stalled_idles_ < 3) {
    // Mid-image stall: try NACKing our way forward before giving up.
    maybe_nack();
    rx_idle_timer_ =
        node_->schedule(config_.rx_idle_timeout, [this] { rx_idle(); });
  } else {
    // Dead source (or never heard a byte): drop the subscription and wait
    // for the next publish; received packets are kept.
    state_ = State::kIdle;
    source_ = net::kNoNode;
    stalled_idles_ = 0;
  }
}

void MoapNode::maybe_nack() {
  if (source_ == net::kNoNode || total_packets_ == 0) return;
  const sim::Time now = node_->now();
  if (last_nack_time_ >= 0 && now - last_nack_time_ < config_.nack_min_gap) return;
  for (std::size_t i = 0; i < have_.size(); ++i) {
    if (!have_[i]) {
      Packet pkt;
      pkt.payload = net::MoapNackMsg{source_, static_cast<std::uint16_t>(i)};
      if (node_->send(std::move(pkt)) && metrics_) {
        metrics_->add(m_nacks_, node_->id());
      }
      last_nack_time_ = now;
      return;
    }
  }
}

void MoapNode::handle_data(const Packet& pkt, const net::MoapDataMsg& msg) {
  if (image_ || total_packets_ == 0) return;
  if (state_ == State::kPublishing) {
    // Another publisher is busy nearby: defer our own publishing (MOAP's
    // concurrent-sender mitigation).
    publish_timer_.cancel();
    publish_timer_ =
        node_->schedule(config_.publish_defer, [this] { send_publish(); });
    return;
  }
  if (state_ == State::kStreaming || state_ == State::kRepair) {
    // Both states imply a complete image, which the has_complete_image()
    // check below would reject anyway; returning here keeps the
    // opportunistic-join assignment provably an Idle -> Subscribed edge.
    return;
  }
  if (state_ != State::kSubscribed) {
    if (has_complete_image()) return;
    // Opportunistic join: data is flowing, subscribe to its source.
    state_ = State::kSubscribed;
    source_ = pkt.src;
    node_->stats().on_parent_set(node_->id(), pkt.src);
  }
  if (msg.pkt_id < have_.size() && !have_[msg.pkt_id]) {
    node_->eeprom().write(
        static_cast<std::size_t>(msg.pkt_id) * config_.payload_bytes, msg.payload);
    have_[msg.pkt_id] = true;
    ++have_count_;
    maybe_journal();
  }
  rx_idle_timer_.cancel();
  rx_idle_timer_ = node_->schedule(config_.rx_idle_timeout, [this] { rx_idle(); });

  if (has_complete_image()) {
    node_->stats().on_completed(node_->id(), node_->now());
    rx_idle_timer_.cancel();
    nack_timer_.cancel();
    // Hop-by-hop relay: now that the whole image is here, publish it.
    become_publisher();
    return;
  }
  // Sliding-window loss detection: a hole older than the window => NACK.
  if (msg.pkt_id >= config_.nack_window) {
    const std::size_t horizon = msg.pkt_id - config_.nack_window;
    for (std::size_t i = 0; i <= horizon; ++i) {
      if (!have_[i]) {
        maybe_nack();
        break;
      }
    }
  }
  // Tail repair: the last packet arrived but gaps remain.
  if (static_cast<std::uint32_t>(msg.pkt_id) + 1 == total_packets_) maybe_nack();
}

void MoapNode::on_packet(const Packet& pkt) {
  if (const auto* pub = pkt.as<net::MoapPublishMsg>()) {
    handle_publish(pkt, *pub);
  } else if (const auto* sub = pkt.as<net::MoapSubscribeMsg>()) {
    handle_subscribe(pkt, *sub);
  } else if (const auto* data = pkt.as<net::MoapDataMsg>()) {
    handle_data(pkt, *data);
  } else if (const auto* nack = pkt.as<net::MoapNackMsg>()) {
    handle_nack(pkt, *nack);
  }
}

}  // namespace mnp::baselines

// Deluge baseline (Hui & Culler, SenSys'04) — the protocol the paper's
// section 5 compares MNP against.
//
// Faithful-in-shape reimplementation:
//  * MAINTAIN: Trickle-suppressed summaries. Each round of length tau a
//    node picks t in [tau/2, tau); it broadcasts its summary (version,
//    number of complete pages) at t unless it already heard >= k identical
//    summaries this round. tau doubles each quiet round from tau_low to
//    tau_high and resets to tau_low on any evidence of inconsistency.
//  * RX: a node that learns a neighbor holds page gamma+1 requests it
//    (unicast-addressed NACK with the needed-packet bit vector) and
//    collects broadcast data; requests are retried a bounded number of
//    times before giving up the round.
//  * TX: a node receiving a request streams the union of requested
//    packets for that page, then returns to MAINTAIN.
//
// Two deliberate properties reproduce Deluge's published behaviour:
//  - the radio is NEVER turned off (active radio time == elapsed time),
//  - there is no sender election, so concurrent senders and hidden-
//    terminal collisions occur naturally in dense networks.
#pragma once

#include <cstdint>
#include <memory>
#include <set>

#include "mnp/program_image.hpp"
#include "node/application.hpp"
#include "node/node.hpp"
#include "obs/metrics.hpp"
#include "util/bitmap.hpp"

namespace mnp::baselines {

struct DelugeConfig {
  std::uint16_t packets_per_page = 48;  // Deluge's page = 48 packets
  std::size_t payload_bytes = 22;

  sim::Time tau_low = sim::msec(1000);
  sim::Time tau_high = sim::sec(60);
  int suppression_k = 1;  // summaries heard before ours is suppressed

  /// Delay before sending a request after deciding to (randomized to
  /// de-synchronize requesters).
  sim::Time request_delay_max = sim::msec(250);
  /// Retries for one page before dropping back to MAINTAIN.
  int max_request_rounds = 4;
  sim::Time rx_idle_timeout = sim::sec(3);

  sim::Time tx_pump_interval = sim::msec(10);

  /// Crash-safe page journaling (boot::ProgressJournal in the EEPROM
  /// tail): rebooted nodes resume from their completed-page prefix. Off
  /// by default; the harness enables it for churn scenarios.
  bool journal_progress = false;
};

class DelugeNode final : public node::Application {
 public:
  enum class State : std::uint8_t { kMaintain, kRx, kTx };

  explicit DelugeNode(DelugeConfig config);
  DelugeNode(DelugeConfig config, std::shared_ptr<const core::ProgramImage> image);

  void start(node::Node& node) override;
  void on_packet(const net::Packet& pkt) override;
  bool has_complete_image() const override {
    return known_pages_ > 0 && complete_pages_ == known_pages_;
  }
  /// Power cycle: timers and Trickle/RX/TX state die; start() replays the
  /// page journal (if enabled) from the surviving EEPROM.
  void reset_for_reboot() override;
  std::uint64_t audit_digest() const override;

  State state() const { return state_; }
  std::uint16_t complete_pages() const { return complete_pages_; }
  bool is_base() const { return static_cast<bool>(image_); }

 private:
  void start_round(bool reset_tau);
  void round_fired();
  void handle_summary(const net::Packet& pkt, const net::DelugeSummaryMsg& msg);
  void handle_request(const net::Packet& pkt, const net::DelugeRequestMsg& msg);
  void handle_data(const net::Packet& pkt, const net::DelugeDataMsg& msg);

  void begin_rx(net::NodeId source);
  void send_request();
  void rx_timeout();
  void finish_rx(bool success);

  void begin_tx(std::uint16_t page);
  void pump_tx();

  void store_data(const net::DelugeDataMsg& msg);
  void page_completed();
  bool recover_journal();

  std::uint16_t packets_in(std::uint16_t page) const;
  std::size_t payload_len(std::uint16_t page, std::uint16_t pkt) const;
  std::size_t eeprom_offset(std::uint16_t page, std::uint16_t pkt) const;
  void ensure_missing(std::uint16_t page);
  void learn_program(std::uint16_t version, std::uint16_t pages,
                     std::uint32_t bytes);

  DelugeConfig config_;
  std::shared_ptr<const core::ProgramImage> image_;
  node::Node* node_ = nullptr;
  State state_ = State::kMaintain;

  // Telemetry handles (deluge.* of DESIGN.md section 9), registered at
  // start() when the harness attached a registry.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_rounds_;
  obs::MetricsRegistry::Counter m_summaries_;
  obs::MetricsRegistry::Counter m_requests_;

  std::uint16_t version_ = 0;
  std::uint32_t program_bytes_ = 0;
  std::uint16_t known_pages_ = 0;
  std::uint16_t complete_pages_ = 0;

  // Trickle state.
  sim::Time tau_ = 0;
  int heard_consistent_ = 0;
  sim::EventHandle round_timer_;   // fires at t within the round
  sim::EventHandle round_end_timer_;

  // RX state.
  util::Bitmap missing_;
  std::uint16_t missing_for_page_ = 0;
  net::NodeId rx_source_ = net::kNoNode;
  int request_rounds_ = 0;
  sim::EventHandle request_timer_;
  sim::EventHandle rx_idle_timer_;

  // TX state.
  std::uint16_t tx_page_ = 0;
  util::Bitmap tx_vector_;
  std::uint16_t tx_cursor_ = 0;
  sim::EventHandle tx_timer_;
};

}  // namespace mnp::baselines

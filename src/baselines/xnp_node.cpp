#include "baselines/xnp_node.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "node/stats.hpp"
#include "sim/audit.hpp"

namespace mnp::baselines {

using net::Packet;

XnpNode::XnpNode(XnpConfig config) : config_(config) {}

XnpNode::XnpNode(XnpConfig config, std::shared_ptr<const core::ProgramImage> image)
    : config_(config), image_(std::move(image)) {
  assert(image_);
  assert(image_->payload_bytes() == config_.payload_bytes);
}

void XnpNode::start(node::Node& node) {
  node_ = &node;
  if ((metrics_ = node_->stats().metrics()) != nullptr) {
    m_data_sent_ =
        metrics_->register_counter("xnp.data_sent", obs::Unit::kCount, true);
    m_fix_requests_ = metrics_->register_counter("xnp.fix_requests_sent",
                                                 obs::Unit::kCount, true);
    m_query_rounds_ = metrics_->register_counter("xnp.query_rounds",
                                                 obs::Unit::kCount, true);
  }
  node_->radio_on();
  if (image_) {
    total_packets_ = static_cast<std::uint32_t>(
        (image_->total_bytes() + config_.payload_bytes - 1) / config_.payload_bytes);
    node_->stats().on_completed(node_->id(), node_->now());
    node_->stats().on_became_sender(node_->id(), node_->now());
    set_phase(Phase::kStream);
    pump_timer_ = node_->schedule(config_.pump_interval, [this] { pump_data(); });
  }
}

const char* XnpNode::phase_cname(Phase p) {
  switch (p) {
    case Phase::kIdle: return "Idle";
    case Phase::kStream: return "Stream";
    case Phase::kQuery: return "Query";
    case Phase::kDone: return "Done";
  }
  return "?";
}

void XnpNode::set_phase(Phase next) {
  if (next == phase_) return;
  if (auto* log = node_->stats().event_log()) {
    // Format "Old->New" in a stack buffer; the log copies it inline.
    char buf[2 * 8 + 2];
    char* p = buf;
    for (const char* s = phase_cname(phase_); *s != '\0';) *p++ = *s++;
    *p++ = '-';
    *p++ = '>';
    for (const char* s = phase_cname(next); *s != '\0';) *p++ = *s++;
    log->record(node_->now(), node_->id(), trace::EventKind::kStateChange,
                std::string_view(buf, static_cast<std::size_t>(p - buf)));
  }
  phase_ = next;
}

void XnpNode::reset_for_reboot() {
  pump_timer_.cancel();
  query_timer_.cancel();
  fix_timer_.cancel();
  phase_ = Phase::kIdle;
  total_packets_ = 0;
  have_.clear();
  have_count_ = 0;
  saw_last_packet_ = false;
  cursor_ = 0;
  fix_queue_.clear();
  query_round_ = 0;
  quiet_rounds_ = 0;
  round_had_requests_ = false;
  done_ = false;
}

std::uint64_t XnpNode::audit_digest() const {
  std::uint64_t h = sim::kFnvOffset;
  h = sim::fnv1a(h, static_cast<std::uint64_t>(phase_));
  h = sim::fnv1a(h, total_packets_);
  h = sim::fnv1a(h, have_count_);
  h = sim::fnv1a(h, cursor_);
  h = sim::fnv1a(h, fix_queue_.size());
  h = sim::fnv1a(h, static_cast<std::uint64_t>(query_round_));
  h = sim::fnv1a(h, static_cast<std::uint64_t>(quiet_rounds_));
  h = sim::fnv1a(h, done_ ? 1u : 0u);
  return h;
}

bool XnpNode::has_complete_image() const {
  if (image_) return true;
  return total_packets_ > 0 && have_count_ == total_packets_;
}

std::size_t XnpNode::packets_received() const { return have_count_; }

// --------------------------------------------------------------------------
// base station
// --------------------------------------------------------------------------

void XnpNode::pump_data() {
  if (done_) return;
  while (node_->mac().queue_depth() < 2) {
    // Retransmissions first, then the linear first pass.
    std::uint16_t pkt_id;
    if (!fix_queue_.empty()) {
      pkt_id = fix_queue_.front();
      fix_queue_.erase(fix_queue_.begin());
    } else if (cursor_ < total_packets_) {
      pkt_id = static_cast<std::uint16_t>(cursor_++);
    } else {
      break;
    }
    Packet pkt;
    net::XnpDataMsg data;
    data.pkt_id = pkt_id;
    data.total_packets = static_cast<std::uint16_t>(total_packets_);
    const std::size_t offset = static_cast<std::size_t>(pkt_id) * config_.payload_bytes;
    const std::size_t len =
        std::min(config_.payload_bytes, image_->total_bytes() - offset);
    data.payload = node_->frame_pool().acquire_payload();
    data.payload.insert(data.payload.end(),
                        image_->bytes().begin() + static_cast<long>(offset),
                        image_->bytes().begin() + static_cast<long>(offset + len));
    pkt.payload = std::move(data);
    if (node_->send(std::move(pkt)) && metrics_) {
      metrics_->add(m_data_sent_, node_->id());
    }
  }
  set_phase(Phase::kStream);
  const bool pass_finished =
      cursor_ >= total_packets_ && fix_queue_.empty() && node_->mac().idle();
  if (pass_finished) {
    query_timer_ = node_->schedule(config_.query_gap, [this] { start_query_round(); });
    return;
  }
  pump_timer_ = node_->schedule(config_.pump_interval, [this] { pump_data(); });
}

void XnpNode::start_query_round() {
  if (done_) return;
  ++query_round_;
  if (query_round_ > config_.max_query_rounds) {
    done_ = true;
    set_phase(Phase::kDone);
    return;
  }
  if (round_had_requests_) {
    quiet_rounds_ = 0;
  } else if (query_round_ > 1) {
    ++quiet_rounds_;
    if (quiet_rounds_ >= config_.quiet_rounds_to_stop) {
      done_ = true;
      set_phase(Phase::kDone);
      return;
    }
  }
  round_had_requests_ = false;
  set_phase(Phase::kQuery);
  if (metrics_) metrics_->add(m_query_rounds_, node_->id());
  Packet pkt;
  pkt.payload = net::XnpQueryMsg{static_cast<std::uint16_t>(total_packets_)};
  node_->send(std::move(pkt));
  // Collect fix requests for a window, then retransmit and query again.
  query_timer_ = node_->schedule(
      config_.fix_request_window + config_.query_gap, [this] {
        if (!fix_queue_.empty()) {
          pump_timer_ =
              node_->schedule(config_.pump_interval, [this] { pump_data(); });
        } else {
          start_query_round();
        }
      });
}

void XnpNode::handle_fix_request(const net::XnpFixRequestMsg& msg) {
  if (!image_ || done_) return;
  round_had_requests_ = true;
  if (std::find(fix_queue_.begin(), fix_queue_.end(), msg.pkt_id) ==
      fix_queue_.end()) {
    fix_queue_.push_back(msg.pkt_id);
  }
}

// --------------------------------------------------------------------------
// receiver
// --------------------------------------------------------------------------

void XnpNode::handle_data(const net::XnpDataMsg& msg) {
  if (image_) return;
  if (total_packets_ == 0 && msg.total_packets > 0) {
    total_packets_ = msg.total_packets;
    have_.assign(total_packets_, false);
    node_->meter().mark_first_advertisement(node_->now());
    set_phase(Phase::kStream);
  }
  if (msg.pkt_id >= have_.size() || have_[msg.pkt_id]) return;
  node_->eeprom().write(static_cast<std::size_t>(msg.pkt_id) * config_.payload_bytes,
                        msg.payload);
  have_[msg.pkt_id] = true;
  ++have_count_;
  if (have_count_ == total_packets_) {
    node_->stats().on_completed(node_->id(), node_->now());
    node_->stats().on_parent_set(node_->id(), 0);  // XNP: base is the parent
    set_phase(Phase::kDone);
  }
}

void XnpNode::handle_query(const net::XnpQueryMsg& msg) {
  if (image_) return;
  if (total_packets_ == 0 && msg.total_packets > 0) {
    total_packets_ = msg.total_packets;
    have_.assign(total_packets_, false);
    node_->meter().mark_first_advertisement(node_->now());
    set_phase(Phase::kStream);
  }
  if (total_packets_ == 0) return;
  if (have_count_ == total_packets_) return;
  // Answer with the first few missing packets after a random delay; the
  // cap keeps the fix channel from imploding when many nodes have gaps.
  const sim::Time delay = node_->rng().uniform_int(0, config_.fix_request_window);
  fix_timer_ = node_->schedule(delay, [this] {
    std::size_t sent = 0;
    for (std::size_t i = 0;
         i < have_.size() && sent < config_.fix_requests_per_query; ++i) {
      if (!have_[i]) {
        Packet pkt;
        pkt.payload = net::XnpFixRequestMsg{static_cast<std::uint16_t>(i)};
        if (node_->send(std::move(pkt)) && metrics_) {
          metrics_->add(m_fix_requests_, node_->id());
        }
        ++sent;
      }
    }
  });
}

void XnpNode::on_packet(const Packet& pkt) {
  if (const auto* data = pkt.as<net::XnpDataMsg>()) {
    handle_data(*data);
  } else if (const auto* query = pkt.as<net::XnpQueryMsg>()) {
    handle_query(*query);
  } else if (const auto* fix = pkt.as<net::XnpFixRequestMsg>()) {
    handle_fix_request(*fix);
  }
}

}  // namespace mnp::baselines

// NCast baseline: rateless network-coded dissemination (DESIGN.md §13).
//
// The fourth protocol in the zoo answers a structural question the other
// three cannot: what does loss recovery cost when packets carry *rank*
// instead of identity? MNP, Deluge and XNP all track which packets are
// missing (MissingVector, NACK bitmaps, fix lists) and repair by name.
// NCast codes instead: the image is cut into generations of k packets,
// senders broadcast random GF(256) linear combinations of a generation,
// and a receiver needs any k linearly independent combinations — which
// k arrive, and from whom, is irrelevant. Under loss there is nothing to
// re-request by name; the stream itself is the repair.
//
// Shape of the protocol (deliberately parallel to the Deluge baseline so
// the comparison isolates coding, not timer tuning):
//  * ADVERTISE: Trickle-suppressed advertisements carrying (complete
//    generations, current decoder rank). A neighbor is consistent when
//    both match; rank-only differences reset tau without triggering a
//    request, because only complete generations are served.
//  * DECODE: a node that hears an advertiser with more complete
//    generations requests its working generation, reporting its rank;
//    every overheard coded packet for that generation feeds the
//    incremental Gaussian eliminator, innovative or not.
//  * FORWARD: a node asked for a generation it has completed streams
//    rank-deficit + redundancy fresh combinations drawn from its decoded
//    bytes — recoding, not store-and-replay, so downstream losses never
//    correlate with upstream ones.
//
// Determinism: coefficient vectors are never shipped. A coded packet
// carries a 2-byte coeff_seed; both ends expand (gen, seed) through the
// same pure generator, so the wire cost of coding is 2 bytes per packet
// regardless of k. Senders draw seeds from a forked per-node RNG stream,
// preserving the repository's (seed, config) -> trace contract.
#pragma once

#include <cstdint>
#include <memory>

#include "mnp/program_image.hpp"
#include "node/application.hpp"
#include "node/node.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"

namespace mnp::baselines {

struct NcastConfig {
  /// Source packets per generation (k). 16 keeps the elimination matrix
  /// at mote scale and the worst-case decode cost bounded.
  std::uint8_t generation_size = 16;
  std::size_t payload_bytes = 22;  // same symbol size as MNP packets

  sim::Time tau_low = sim::msec(1000);
  sim::Time tau_high = sim::sec(60);
  int suppression_k = 1;  // consistent advs heard before ours is suppressed

  sim::Time request_delay_max = sim::msec(250);
  int max_request_rounds = 4;
  sim::Time rx_idle_timeout = sim::sec(3);

  sim::Time tx_pump_interval = sim::msec(10);
  /// Coded packets sent beyond the requester's rank deficit. The rateless
  /// hedge: each extra combination is useful to *any* listener that lost
  /// *any* earlier packet.
  int tx_redundancy = 2;

  /// Crash-safe generation journaling (boot::ProgressJournal): rebooted
  /// nodes resume from their completed-generation prefix.
  bool journal_progress = false;
};

/// Expands (gen, coeff_seed) into `k` GF(256) coefficients. Pure: sender
/// and receiver call this with the wire header and must agree byte for
/// byte. Never yields the all-zero vector.
void ncast_expand_coefficients(std::uint16_t gen, std::uint16_t coeff_seed,
                               std::uint8_t k, std::uint8_t* out);

/// Incremental GF(256) Gaussian eliminator for one generation.
///
/// Rows live in one flat buffer of k slots, slot c holding the row whose
/// pivot (first nonzero coefficient) is column c, already normalized to a
/// unit pivot. insert() forward-eliminates the new row against existing
/// pivots and either claims an empty slot (innovative, rank grows) or
/// vanishes (linearly dependent). decode() back-substitutes once rank
/// reaches k, after which source_packet(i) is the i-th original payload.
/// reset() recycles the buffers across generations — steady state never
/// allocates.
class RlncDecoder {
 public:
  /// Prepares for a generation of `k` source packets of `symbol_bytes`
  /// each. Keeps capacity from previous generations.
  void reset(std::uint8_t k, std::size_t symbol_bytes);

  /// Feeds one coded packet (k coefficients + symbol). Returns true when
  /// the packet was innovative (rank grew).
  bool insert(const std::uint8_t* coeff, const std::uint8_t* symbol,
              std::size_t symbol_bytes);

  std::uint8_t rank() const { return rank_; }
  std::uint8_t generation_size() const { return k_; }
  bool complete() const { return k_ > 0 && rank_ == k_; }
  bool decoded() const { return decoded_; }

  /// Back-substitutes to recover the source packets. Requires complete().
  void decode();

  /// Pointer to source packet `i` (symbol_bytes long). Requires decoded().
  const std::uint8_t* source_packet(std::uint8_t i) const;

  /// GF(256) row operations performed so far (decode-work telemetry).
  std::uint64_t row_ops() const { return row_ops_; }

  /// Folds decoder state (rank + pivot occupancy) into an FNV-1a chain
  /// for the determinism auditor.
  std::uint64_t digest_fold(std::uint64_t h) const;

 private:
  std::uint8_t* row(std::uint8_t pivot) { return rows_.data() + pivot * stride_; }
  const std::uint8_t* row(std::uint8_t pivot) const {
    return rows_.data() + pivot * stride_;
  }

  std::uint8_t k_ = 0;
  std::size_t symbol_bytes_ = 0;
  std::size_t stride_ = 0;  // k_ + symbol_bytes_: coefficients then symbol
  std::uint8_t rank_ = 0;
  bool decoded_ = false;
  std::uint64_t row_ops_ = 0;
  std::vector<std::uint8_t> rows_;     // k_ slots of stride_ bytes
  std::vector<std::uint8_t> filled_;   // per slot: pivot row present?
  std::vector<std::uint8_t> scratch_;  // one row, insert() workspace
};

class NcastNode final : public node::Application {
 public:
  enum class State : std::uint8_t { kAdvertise, kDecode, kForward };

  explicit NcastNode(NcastConfig config);
  NcastNode(NcastConfig config, std::shared_ptr<const core::ProgramImage> image);

  void start(node::Node& node) override;
  void on_packet(const net::Packet& pkt) override;
  bool has_complete_image() const override {
    return known_gens_ > 0 && complete_gens_ == known_gens_;
  }
  void reset_for_reboot() override;
  std::uint64_t audit_digest() const override;

  State state() const { return state_; }
  std::uint16_t complete_gens() const { return complete_gens_; }
  std::uint8_t cur_rank() const;
  bool is_base() const { return static_cast<bool>(image_); }

 private:
  void start_round(bool reset_tau);
  void round_fired();
  void handle_adv(const net::Packet& pkt, const net::NcastAdvMsg& msg);
  void handle_request(const net::Packet& pkt, const net::NcastReqMsg& msg);
  void handle_coded(const net::Packet& pkt, const net::NcastCodedMsg& msg);

  void begin_rx(net::NodeId source);
  void send_request();
  void rx_timeout();
  void finish_rx(bool success);

  void begin_tx(std::uint16_t gen, int deficit);
  void pump_tx();
  void send_coded(std::uint16_t gen);

  void generation_completed();
  bool recover_journal();
  void trace_state(State next);
  static const char* state_cname(State s);

  std::uint16_t packets_in(std::uint16_t gen) const;
  std::size_t eeprom_offset(std::uint16_t gen, std::uint16_t idx) const;
  std::size_t payload_len(std::uint16_t gen, std::uint16_t idx) const;
  void ensure_decoder();
  void learn_program(std::uint16_t id, std::uint16_t gens, std::uint32_t bytes);

  NcastConfig config_;
  std::shared_ptr<const core::ProgramImage> image_;
  node::Node* node_ = nullptr;
  State state_ = State::kAdvertise;

  // Telemetry handles (ncast.* of DESIGN.md §13), registered at start().
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_rounds_;
  obs::MetricsRegistry::Counter m_advs_;
  obs::MetricsRegistry::Counter m_requests_;
  obs::MetricsRegistry::Counter m_coded_sent_;
  obs::MetricsRegistry::Counter m_innovative_;
  obs::MetricsRegistry::Counter m_redundant_;
  obs::MetricsRegistry::Counter m_decode_row_ops_;
  obs::MetricsRegistry::Counter m_gens_decoded_;
  obs::MetricsRegistry::Gauge m_rank_;

  std::uint16_t program_id_ = 0;
  std::uint32_t program_bytes_ = 0;
  std::uint16_t known_gens_ = 0;
  std::uint16_t complete_gens_ = 0;

  // Decoder for the working generation complete_gens_ + 1 (generations
  // complete strictly in order, like Deluge pages).
  RlncDecoder decoder_;
  std::uint16_t decoder_gen_ = 0;  // 0 = decoder not armed
  std::uint64_t last_row_ops_ = 0;

  // Trickle state.
  sim::Time tau_ = 0;
  int heard_consistent_ = 0;
  sim::EventHandle round_timer_;
  sim::EventHandle round_end_timer_;

  // DECODE state.
  net::NodeId rx_source_ = net::kNoNode;
  int request_rounds_ = 0;
  sim::EventHandle request_timer_;
  sim::EventHandle rx_idle_timer_;

  // FORWARD state.
  std::uint16_t tx_gen_ = 0;
  int tx_remaining_ = 0;
  sim::EventHandle tx_timer_;
  sim::Rng coeff_rng_{0};  // forked from the node stream in start()

  // Reusable staging buffers (encoder source packet / decoded writeback).
  std::vector<std::uint8_t> coeff_scratch_;
  std::vector<std::uint8_t> symbol_scratch_;
};

}  // namespace mnp::baselines

// MetricsRegistry: named counters, gauges and histograms — the run-wide
// telemetry store behind `--metrics-out` (DESIGN.md section 9).
//
// The registry separates a *registration* phase (allocates, builds the
// name index, returns a handle) from the *hot path* (plain array indexing,
// zero allocation). Subsystems register their handles once at attach time
// — Channel, MACs, protocols — and then increment through the handle for
// every packet of a multi-hour run. Per-node metrics keep one cell per
// node plus a running total cell, so both the Fig.-11 style distributions
// and the summary line come from the same counter.
//
// Export is deterministic: metrics serialize sorted by name, values are
// fixed-format (json_writer.hpp), and merging sweeps accumulates in seed
// order — a --jobs 4 sweep produces the byte-identical file a --jobs 1
// sweep does.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "obs/json_writer.hpp"

namespace mnp::obs {

/// Version of the telemetry contract (metric names/units, manifest layout,
/// trace track layout). Bump on any breaking change; both JSON outputs
/// carry it as "schema_version". Documented in DESIGN.md section 9.
/// v2: scenario fault track (virtual "scenario" process after the
/// "network" process), Scenario events, scenario.* counters, xnp.*
/// metrics, and the manifest's "scenario" config keys.
/// v3: channel cache telemetry — chan.cache_repairs /
/// chan.cache_invalidations counters and chan.grid_* gauges in the
/// registry, plus "cache_repairs" / "cache_invalidations" counter tracks
/// under the virtual "network" process in the trace.
/// v4: NCast network-coded baseline — ncast.* counters (rounds,
/// advs_sent, requests_sent, coded_sent, innovative, redundant,
/// decode_row_ops, generations_decoded) and the ncast.rank gauge.
inline constexpr int kTelemetrySchemaVersion = 4;

enum class Unit : std::uint8_t {
  kCount,
  kMicroseconds,
  kBytes,
  kNanoampHours,
};
const char* unit_name(Unit unit);

class MetricsRegistry {
 public:
  static constexpr std::uint32_t kNoCell = 0xFFFFFFFFu;

  /// Handles are plain indices; default-constructed ones are inert until
  /// assigned from a register_* call. Callers guard the registry pointer,
  /// not the handle.
  struct Counter { std::uint32_t cell = kNoCell; };
  struct Gauge { std::uint32_t cell = kNoCell; };
  struct Histogram { std::uint32_t index = kNoCell; };

  explicit MetricsRegistry(std::size_t node_count = 0)
      : node_count_(node_count) {}

  /// Node count must be fixed before the first per-node registration (the
  /// experiment harness sets it as soon as the network exists).
  void set_node_count(std::size_t n);
  std::size_t node_count() const { return node_count_; }

  // --- registration (allocates; idempotent per name) ----------------------
  Counter register_counter(std::string_view name, Unit unit, bool per_node);
  Gauge register_gauge(std::string_view name, Unit unit, bool per_node);
  /// Bucket upper bounds must be strictly ascending; a final +inf bucket
  /// is implicit.
  Histogram register_histogram(std::string_view name, Unit unit,
                               std::vector<double> bounds);

  // --- hot path (no allocation, no lookup) --------------------------------
  void add(Counter h, std::uint64_t v = 1) { counter_cells_[h.cell] += v; }
  /// Per-node counter: bumps the node's cell and the total cell.
  /// Out-of-range node ids (broadcast pseudo-ids) count toward the total
  /// only.
  void add(Counter h, net::NodeId node, std::uint64_t v = 1) {
    counter_cells_[h.cell] += v;
    if (node < node_count_) counter_cells_[h.cell + 1u + node] += v;
  }
  void set(Gauge h, double v) { gauge_cells_[h.cell] = v; }
  void set(Gauge h, net::NodeId node, double v) {
    if (node < node_count_) gauge_cells_[h.cell + 1u + node] = v;
  }
  void observe(Histogram h, double v);

  // --- queries (tests, manifest assembly) ---------------------------------
  bool has(std::string_view name) const;
  std::uint64_t counter_total(std::string_view name) const;
  std::uint64_t counter_node(std::string_view name, net::NodeId node) const;
  double gauge_total(std::string_view name) const;

  /// Element-wise accumulation of a same-schema registry (sweep merge;
  /// callers merge in seed order for determinism). Counters and histogram
  /// buckets add; gauges add too, i.e. a merged gauge reads as the sum
  /// over runs. Registries with differing schemas refuse to merge (false).
  bool merge_from(const MetricsRegistry& other);

  /// Serializes every metric, sorted by name, as one JSON object value:
  ///   {"chan.tx": {"type":"counter","unit":"count","total":N,
  ///                "per_node":[...]}, ...}
  void write_json(JsonWriter& w) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Def {
    std::string name;
    Kind kind = Kind::kCounter;
    Unit unit = Unit::kCount;
    bool per_node = false;
    std::uint32_t cell = kNoCell;  // counter/gauge base cell, histogram index
  };

  struct Hist {
    std::vector<double> bounds;        // ascending upper bounds
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (+inf tail)
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  const Def* find(std::string_view name) const;
  std::uint32_t intern(std::string_view name, Kind kind, Unit unit,
                       bool per_node, std::size_t cells);

  std::size_t node_count_ = 0;
  std::vector<Def> defs_;
  // Name -> index into defs_; ordered map doubles as the sorted export
  // order and keeps the determinism lint trivially satisfied.
  std::map<std::string, std::uint32_t, std::less<>> index_;
  std::vector<std::uint64_t> counter_cells_;
  std::vector<double> gauge_cells_;
  std::vector<Hist> hists_;
};

}  // namespace mnp::obs

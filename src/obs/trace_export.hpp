// TraceExporter: converts a run's EventLog into Chrome trace-event JSON
// that loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Track layout (the versioned contract, DESIGN.md section 9):
//   * one process per node (pid = node id, process_name "node N"),
//   * tid 0 "state":  protocol state residency as complete slices — the
//     Fig.-4 machine's life, one colored bar per state visit — plus
//     instant markers for segment/image completions,
//   * tid 1 "radio":  radio-on residency slices; the visible share of
//     this track *is* the paper's active-radio-time metric,
//   * tid 2 "msgs":   1 us marker slices per packet sent/received, with
//     flow arrows connecting each transmission to its deliveries,
//   * counter tracks (ph "C"), e.g. per-node cumulative energy and the
//     per-minute message-class rates, appended by the harness,
//   * a virtual "scenario" process (pid = node_count + 1, only present
//     when the run injected faults): Scenario events render there —
//     "... on"/"... off" pairs as window slices (partitions, degrade
//     windows), everything else as instant markers; node-scoped events
//     additionally mark the affected node's state track.
//
// The export is a pure function of the log plus the supplied counter
// series: identical runs produce byte-identical files, which is what the
// golden test (tests/test_obs.cpp) pins.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "trace/event_log.hpp"

namespace mnp::obs {

/// One counter track: samples of a cumulative or rate value over time,
/// rendered by Perfetto as a step line under process `pid`.
struct CounterSeries {
  std::string name;
  std::uint32_t pid = 0;
  /// Process name emitted for pids beyond the node range (e.g. a virtual
  /// "network" process for run-wide rates). Empty = assume a node pid.
  std::string process;
  std::vector<std::pair<sim::Time, double>> samples;
};

struct TraceExportOptions {
  bool state_slices = true;
  bool radio_slices = true;
  /// Packet marker slices + flow arrows (send -> each delivery).
  bool messages = true;
  /// Instant markers for segment/image completion.
  bool instants = true;
};

/// Renders the trace as a JSON string (see write_chrome_trace).
std::string chrome_trace_json(const trace::EventLog& log,
                              std::size_t node_count,
                              const std::vector<CounterSeries>& counters = {},
                              const TraceExportOptions& options = {});

/// Writes the Chrome trace-event file: a top-level object with
/// "schema_version", "displayTimeUnit", "dropped_events" and the
/// "traceEvents" array. Timestamps are simulation microseconds verbatim.
void write_chrome_trace(std::ostream& os, const trace::EventLog& log,
                        std::size_t node_count,
                        const std::vector<CounterSeries>& counters = {},
                        const TraceExportOptions& options = {});

}  // namespace mnp::obs

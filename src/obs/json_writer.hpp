// Minimal deterministic JSON writer for the telemetry exports.
//
// Every byte of a run's telemetry is part of the determinism contract
// (DESIGN.md section 9): the same (config, seed) pair must produce
// bit-identical metrics and trace files regardless of --jobs. Formatting
// therefore avoids locale-dependent iostream state entirely — numbers go
// through snprintf with fixed format strings, strings through one escape
// routine — and the writer emits keys exactly in the order the caller
// supplies them (callers sort where the schema says "sorted").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mnp::obs {

/// Escapes `s` per RFC 8259 (quotes, backslash, control chars) and returns
/// it wrapped in double quotes.
std::string json_quote(std::string_view s);

/// Fixed-format double rendering: "%.10g", with non-finite values mapped
/// to null (JSON has no NaN/Inf). Deterministic for identical bit patterns.
std::string json_number(double v);

/// Streaming writer producing compact JSON into an owned buffer. The
/// caller is responsible for well-formedness (begin/end pairing); the
/// writer only tracks whether a comma separator is due.
class JsonWriter {
 public:
  void begin_object() { separator(); out_ += '{'; fresh_ = true; }
  void end_object() { out_ += '}'; fresh_ = false; }
  void begin_array() { separator(); out_ += '['; fresh_ = true; }
  void end_array() { out_ += ']'; fresh_ = false; }

  /// Object key; follow with exactly one value (or begin_*).
  void key(std::string_view k) {
    separator();
    out_ += json_quote(k);
    out_ += ':';
    fresh_ = true;  // the value that follows needs no comma
  }

  void value(std::string_view s) { separator(); out_ += json_quote(s); }
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v) { separator(); out_ += json_number(v); }
  void value(bool b) { separator(); out_ += b ? "true" : "false"; }
  void value(std::uint64_t v) { separator(); out_ += std::to_string(v); }
  void value(std::int64_t v) { separator(); out_ += std::to_string(v); }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void null() { separator(); out_ += "null"; }

  /// Splices a pre-rendered JSON fragment (already valid) as one value.
  void raw(std::string_view fragment) {
    separator();
    out_.append(fragment);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void separator() {
    if (!fresh_ && !out_.empty()) {
      const char last = out_.back();
      if (last != '{' && last != '[' && last != ':') out_ += ',';
    }
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

}  // namespace mnp::obs

#include "obs/trace_export.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"

namespace mnp::obs {

namespace {

/// Emits one trace event object. Field order is fixed (part of the
/// byte-identical contract): name, cat, ph, pid, tid, ts [, dur][, id].
struct EventWriter {
  JsonWriter& w;

  void begin(std::string_view name, std::string_view cat, char ph,
             std::uint32_t pid, int tid, sim::Time ts) {
    w.begin_object();
    w.key("name");
    w.value(name);
    if (!cat.empty()) {
      w.key("cat");
      w.value(cat);
    }
    w.key("ph");
    w.value(std::string_view(&ph, 1));
    w.key("pid");
    w.value(static_cast<std::uint64_t>(pid));
    w.key("tid");
    w.value(static_cast<std::int64_t>(tid));
    w.key("ts");
    w.value(static_cast<std::int64_t>(ts));
  }
  void end() { w.end_object(); }

  void slice(std::string_view name, std::string_view cat, std::uint32_t pid,
             int tid, sim::Time ts, sim::Time dur) {
    begin(name, cat, 'X', pid, tid, ts);
    w.key("dur");
    w.value(static_cast<std::int64_t>(dur < 1 ? 1 : dur));
    end();
  }

  void flow(std::string_view name, char ph, std::uint64_t id,
            std::uint32_t pid, int tid, sim::Time ts) {
    begin(name, "msg", ph, pid, tid, ts);
    w.key("id");
    w.value(id);
    if (ph == 'f') {
      w.key("bp");
      w.value("e");  // bind to the enclosing slice's end
    }
    end();
  }

  void instant(std::string_view name, std::uint32_t pid, int tid,
               sim::Time ts) {
    begin(name, "mark", 'i', pid, tid, ts);
    w.key("s");
    w.value("t");  // thread-scoped tick
    end();
  }

  void metadata(std::string_view what, std::uint32_t pid, int tid,
                std::string_view value) {
    begin(what, {}, 'M', pid, tid, 0);
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(value);
    w.end_object();
    end();
  }

  void counter(std::string_view name, std::uint32_t pid, sim::Time ts,
               double value) {
    begin(name, "counter", 'C', pid, 0, ts);
    w.key("args");
    w.begin_object();
    w.key("value");
    w.value(value);
    w.end_object();
    end();
  }
};

constexpr int kStateTid = 0;
constexpr int kRadioTid = 1;
constexpr int kMsgTid = 2;

/// "Idle->Download" -> {"Idle", "Download"}; empty views when malformed.
std::pair<std::string_view, std::string_view> split_transition(
    std::string_view detail) {
  const std::size_t arrow = detail.find("->");
  if (arrow == std::string_view::npos) return {{}, {}};
  return {detail.substr(0, arrow), detail.substr(arrow + 2)};
}

/// "Data<5" -> {"Data", 5}; src == kNoNode when no source suffix (old
/// recordings or non-channel receive events).
std::pair<std::string_view, net::NodeId> split_receive(
    std::string_view detail) {
  const std::size_t mark = detail.rfind('<');
  if (mark == std::string_view::npos) return {detail, net::kNoNode};
  std::uint32_t id = 0;
  bool any = false;
  for (const char c : detail.substr(mark + 1)) {
    if (c < '0' || c > '9') return {detail, net::kNoNode};
    id = id * 10 + static_cast<std::uint32_t>(c - '0');
    any = true;
  }
  if (!any || id >= net::kNoNode) return {detail, net::kNoNode};
  return {detail.substr(0, mark), static_cast<net::NodeId>(id)};
}

}  // namespace

std::string chrome_trace_json(const trace::EventLog& log,
                              std::size_t node_count,
                              const std::vector<CounterSeries>& counters,
                              const TraceExportOptions& options) {
  const std::vector<trace::Event> events =
      log.query([](const trace::Event&) { return true; });

  sim::Time end_ts = 1;
  for (const auto& e : events) end_ts = std::max(end_ts, e.time);
  for (const auto& s : counters) {
    for (const auto& [t, v] : s.samples) end_ts = std::max(end_ts, t);
  }

  JsonWriter w;
  EventWriter ev{w};
  w.begin_object();
  w.key("schema_version");
  w.value(static_cast<std::int64_t>(kTelemetrySchemaVersion));
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("dropped_events");
  w.value(log.dropped());
  w.key("traceEvents");
  w.begin_array();

  // --- track metadata ----------------------------------------------------
  for (std::size_t n = 0; n < node_count; ++n) {
    const auto pid = static_cast<std::uint32_t>(n);
    ev.metadata("process_name", pid, 0, "node " + std::to_string(n));
    ev.metadata("thread_name", pid, kStateTid, "state");
    ev.metadata("thread_name", pid, kRadioTid, "radio");
    ev.metadata("thread_name", pid, kMsgTid, "msgs");
  }
  for (const auto& s : counters) {
    if (s.pid >= node_count && !s.process.empty()) {
      ev.metadata("process_name", s.pid, 0, s.process);
    }
  }
  // The scenario fault track exists only in runs that injected faults, so
  // scenario-free traces keep their exact layout.
  const auto scenario_pid = static_cast<std::uint32_t>(node_count + 1);
  const bool any_scenario =
      std::any_of(events.begin(), events.end(), [](const trace::Event& e) {
        return e.kind == trace::EventKind::kScenario;
      });
  if (any_scenario) {
    ev.metadata("process_name", scenario_pid, 0, "scenario");
    ev.metadata("thread_name", scenario_pid, 0, "faults");
  }

  // --- per-node open-slice tracking -------------------------------------
  // The initial protocol state opens at t=0 (nodes are idle from power-on;
  // change_state suppresses same-state records, so the first transition is
  // the first time anything moves).
  std::vector<std::string> state(node_count);
  std::vector<sim::Time> state_since(node_count, 0);
  std::vector<char> radio_on(node_count, 0);
  std::vector<sim::Time> radio_since(node_count, 0);
  // Flow pairing: radios are half-duplex, so a delivery always belongs to
  // the source's most recent transmission.
  std::vector<std::uint64_t> last_flow(node_count, 0);
  std::uint64_t flow_seq = 0;
  // Scenario windows open on a "... on" detail and close on the matching
  // "... off"; keyed by the detail prefix so overlapping distinct windows
  // (a partition inside a degrade window) pair up independently.
  std::vector<std::pair<std::string, sim::Time>> scenario_open;

  for (const auto& e : events) {
    if (e.kind == trace::EventKind::kScenario) {
      constexpr std::string_view kOn = " on";
      constexpr std::string_view kOff = " off";
      const std::string_view d = e.detail;
      if (d.size() > kOn.size() &&
          d.substr(d.size() - kOn.size()) == kOn) {
        scenario_open.emplace_back(d.substr(0, d.size() - kOn.size()),
                                   e.time);
      } else if (d.size() > kOff.size() &&
                 d.substr(d.size() - kOff.size()) == kOff) {
        const std::string_view key = d.substr(0, d.size() - kOff.size());
        bool matched = false;
        for (auto it = scenario_open.rbegin(); it != scenario_open.rend();
             ++it) {
          if (it->first == key) {
            ev.slice(key, "scenario", scenario_pid, 0, it->second,
                     e.time - it->second);
            scenario_open.erase(std::next(it).base());
            matched = true;
            break;
          }
        }
        if (!matched) ev.instant(d, scenario_pid, 0, e.time);
      } else {
        ev.instant(d, scenario_pid, 0, e.time);
      }
      if (e.node < node_count && options.instants) {
        ev.instant(d, static_cast<std::uint32_t>(e.node), kStateTid, e.time);
      }
      continue;
    }
    if (e.node >= node_count) continue;
    const auto pid = static_cast<std::uint32_t>(e.node);
    switch (e.kind) {
      case trace::EventKind::kStateChange: {
        if (!options.state_slices) break;
        const auto [from, to] = split_transition(e.detail);
        if (to.empty()) break;
        const std::string_view leaving =
            state[e.node].empty() ? from : std::string_view(state[e.node]);
        if (!leaving.empty() && e.time > state_since[e.node]) {
          ev.slice(leaving, "state", pid, kStateTid, state_since[e.node],
                   e.time - state_since[e.node]);
        }
        state[e.node].assign(to);
        state_since[e.node] = e.time;
        break;
      }
      case trace::EventKind::kRadioOn:
        if (!options.radio_slices || radio_on[e.node]) break;
        radio_on[e.node] = 1;
        radio_since[e.node] = e.time;
        break;
      case trace::EventKind::kRadioOff:
        if (!options.radio_slices || !radio_on[e.node]) break;
        radio_on[e.node] = 0;
        ev.slice("on", "radio", pid, kRadioTid, radio_since[e.node],
                 e.time - radio_since[e.node]);
        break;
      case trace::EventKind::kPacketSent: {
        if (!options.messages) break;
        const std::uint64_t id = ++flow_seq;
        last_flow[e.node] = id;
        ev.slice(e.detail, "msg", pid, kMsgTid, e.time, 1);
        ev.flow(e.detail, 's', id, pid, kMsgTid, e.time);
        break;
      }
      case trace::EventKind::kPacketReceived: {
        if (!options.messages) break;
        const auto [name, src] = split_receive(e.detail);
        ev.slice(name, "msg", pid, kMsgTid, e.time, 1);
        if (src != net::kNoNode && src < node_count && last_flow[src] != 0) {
          ev.flow(name, 'f', last_flow[src], pid, kMsgTid, e.time);
        }
        break;
      }
      case trace::EventKind::kSegmentCompleted:
        if (options.instants) {
          ev.instant("segment " + e.detail, pid, kStateTid, e.time);
        }
        break;
      case trace::EventKind::kImageCompleted:
        if (options.instants) {
          ev.instant("image complete", pid, kStateTid, e.time);
        }
        break;
      case trace::EventKind::kNote:
        if (options.instants && !e.detail.empty()) {
          ev.instant(e.detail, pid, kStateTid, e.time);
        }
        break;
      case trace::EventKind::kScenario:
        break;  // handled above, before the node filter
    }
  }

  // A window still open at the end of the run renders to the last event.
  for (const auto& [key, since] : scenario_open) {
    ev.slice(key, "scenario", scenario_pid, 0, since, end_ts - since);
  }

  // Close every slice still open so the final residency is visible.
  for (std::size_t n = 0; n < node_count; ++n) {
    const auto pid = static_cast<std::uint32_t>(n);
    if (options.state_slices && !state[n].empty() && end_ts > state_since[n]) {
      ev.slice(state[n], "state", pid, kStateTid, state_since[n],
               end_ts - state_since[n]);
    }
    if (options.radio_slices && radio_on[n] && end_ts > radio_since[n]) {
      ev.slice("on", "radio", pid, kRadioTid, radio_since[n],
               end_ts - radio_since[n]);
    }
  }

  for (const auto& s : counters) {
    for (const auto& [t, v] : s.samples) ev.counter(s.name, s.pid, t, v);
  }

  w.end_array();
  w.end_object();
  return w.take();
}

void write_chrome_trace(std::ostream& os, const trace::EventLog& log,
                        std::size_t node_count,
                        const std::vector<CounterSeries>& counters,
                        const TraceExportOptions& options) {
  os << chrome_trace_json(log, node_count, counters, options);
}

}  // namespace mnp::obs

#include "obs/metrics.hpp"

#include <cassert>

namespace mnp::obs {

const char* unit_name(Unit unit) {
  switch (unit) {
    case Unit::kCount: return "count";
    case Unit::kMicroseconds: return "us";
    case Unit::kBytes: return "bytes";
    case Unit::kNanoampHours: return "nAh";
  }
  return "?";
}

void MetricsRegistry::set_node_count(std::size_t n) {
  // Per-node cell blocks are sized at registration; changing the count
  // afterwards would shift every subsequent block.
  assert(defs_.empty() && "set_node_count must precede registration");
  node_count_ = n;
}

const MetricsRegistry::Def* MetricsRegistry::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &defs_[it->second];
}

std::uint32_t MetricsRegistry::intern(std::string_view name, Kind kind,
                                      Unit unit, bool per_node,
                                      std::size_t cells) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    assert(defs_[it->second].kind == kind &&
           defs_[it->second].per_node == per_node &&
           "metric re-registered with a different shape");
    (void)cells;
    return it->second;
  }
  Def def;
  def.name = std::string(name);
  def.kind = kind;
  def.unit = unit;
  def.per_node = per_node;
  if (kind == Kind::kCounter) {
    def.cell = static_cast<std::uint32_t>(counter_cells_.size());
    counter_cells_.resize(counter_cells_.size() + cells, 0);
  } else if (kind == Kind::kGauge) {
    def.cell = static_cast<std::uint32_t>(gauge_cells_.size());
    gauge_cells_.resize(gauge_cells_.size() + cells, 0.0);
  } else {
    def.cell = static_cast<std::uint32_t>(hists_.size());
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(defs_.size());
  defs_.push_back(std::move(def));
  index_.emplace(defs_.back().name, idx);
  return idx;
}

MetricsRegistry::Counter MetricsRegistry::register_counter(
    std::string_view name, Unit unit, bool per_node) {
  const std::size_t cells = per_node ? 1 + node_count_ : 1;
  const std::uint32_t idx =
      intern(name, Kind::kCounter, unit, per_node, cells);
  return Counter{defs_[idx].cell};
}

MetricsRegistry::Gauge MetricsRegistry::register_gauge(std::string_view name,
                                                       Unit unit,
                                                       bool per_node) {
  const std::size_t cells = per_node ? 1 + node_count_ : 1;
  const std::uint32_t idx = intern(name, Kind::kGauge, unit, per_node, cells);
  return Gauge{defs_[idx].cell};
}

MetricsRegistry::Histogram MetricsRegistry::register_histogram(
    std::string_view name, Unit unit, std::vector<double> bounds) {
  const std::uint32_t idx = intern(name, Kind::kHistogram, unit, false, 0);
  const Def& def = defs_[idx];
  if (def.cell == hists_.size()) {  // fresh registration, not a re-lookup
    Hist h;
    h.buckets.assign(bounds.size() + 1, 0);
    h.bounds = std::move(bounds);
    hists_.push_back(std::move(h));
  }
  return Histogram{def.cell};
}

void MetricsRegistry::observe(Histogram h, double v) {
  Hist& hist = hists_[h.index];
  std::size_t bucket = hist.bounds.size();
  for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
    if (v <= hist.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++hist.buckets[bucket];
  ++hist.count;
  hist.sum += v;
}

bool MetricsRegistry::has(std::string_view name) const {
  return find(name) != nullptr;
}

std::uint64_t MetricsRegistry::counter_total(std::string_view name) const {
  const Def* d = find(name);
  return d && d->kind == Kind::kCounter ? counter_cells_[d->cell] : 0;
}

std::uint64_t MetricsRegistry::counter_node(std::string_view name,
                                            net::NodeId node) const {
  const Def* d = find(name);
  if (!d || d->kind != Kind::kCounter || !d->per_node || node >= node_count_) {
    return 0;
  }
  return counter_cells_[d->cell + 1u + node];
}

double MetricsRegistry::gauge_total(std::string_view name) const {
  const Def* d = find(name);
  if (!d || d->kind != Kind::kGauge) return 0.0;
  if (!d->per_node) return gauge_cells_[d->cell];
  double sum = 0.0;
  for (std::size_t i = 0; i < node_count_; ++i) {
    sum += gauge_cells_[d->cell + 1u + i];
  }
  return sum;
}

bool MetricsRegistry::merge_from(const MetricsRegistry& other) {
  if (other.defs_.size() != defs_.size() ||
      other.node_count_ != node_count_ ||
      other.counter_cells_.size() != counter_cells_.size() ||
      other.gauge_cells_.size() != gauge_cells_.size() ||
      other.hists_.size() != hists_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name != other.defs_[i].name ||
        defs_[i].kind != other.defs_[i].kind) {
      return false;
    }
  }
  for (std::size_t i = 0; i < counter_cells_.size(); ++i) {
    counter_cells_[i] += other.counter_cells_[i];
  }
  for (std::size_t i = 0; i < gauge_cells_.size(); ++i) {
    gauge_cells_[i] += other.gauge_cells_[i];
  }
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    if (hists_[i].buckets.size() != other.hists_[i].buckets.size()) {
      return false;
    }
    for (std::size_t b = 0; b < hists_[i].buckets.size(); ++b) {
      hists_[i].buckets[b] += other.hists_[i].buckets[b];
    }
    hists_[i].count += other.hists_[i].count;
    hists_[i].sum += other.hists_[i].sum;
  }
  return true;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  for (const auto& [name, idx] : index_) {  // std::map: sorted by name
    const Def& d = defs_[idx];
    w.key(name);
    w.begin_object();
    w.key("unit");
    w.value(unit_name(d.unit));
    switch (d.kind) {
      case Kind::kCounter: {
        w.key("type");
        w.value("counter");
        w.key("total");
        w.value(counter_cells_[d.cell]);
        if (d.per_node) {
          w.key("per_node");
          w.begin_array();
          for (std::size_t i = 0; i < node_count_; ++i) {
            w.value(counter_cells_[d.cell + 1u + i]);
          }
          w.end_array();
        }
        break;
      }
      case Kind::kGauge: {
        w.key("type");
        w.value("gauge");
        w.key("total");
        w.value(gauge_total(name));
        if (d.per_node) {
          w.key("per_node");
          w.begin_array();
          for (std::size_t i = 0; i < node_count_; ++i) {
            w.value(gauge_cells_[d.cell + 1u + i]);
          }
          w.end_array();
        }
        break;
      }
      case Kind::kHistogram: {
        const Hist& h = hists_[d.cell];
        w.key("type");
        w.value("histogram");
        w.key("count");
        w.value(h.count);
        w.key("sum");
        w.value(h.sum);
        w.key("bounds");
        w.begin_array();
        for (const double b : h.bounds) w.value(b);
        w.end_array();
        w.key("buckets");
        w.begin_array();
        for (const std::uint64_t b : h.buckets) w.value(b);
        w.end_array();
        break;
      }
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace mnp::obs

#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace mnp::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace mnp::obs

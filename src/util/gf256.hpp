// GF(256) arithmetic: the hot-path kernel under the NCast network-coded
// dissemination baseline (DESIGN.md section 13).
//
// The field is GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D, the polynomial Reed-Solomon erasure coders use). Single-element
// operations go through log/exp tables; the row kernel addmul_row —
// dst ^= c * src over a whole byte row, the inner loop of Gaussian
// elimination and of coded-packet generation — has two implementations:
//
//   * scalar: per-byte log/exp lookups (portable reference),
//   * SSSE3: the nibble-table PSHUFB technique — the 4-bit halves of each
//     source byte index two 16-entry product tables for c, 16 bytes per
//     shuffle — compiled with a target attribute and selected at runtime
//     by CPUID, so one binary runs everywhere.
//
// Everything is allocation-free: the log/exp tables and the 8 KiB of
// per-coefficient nibble tables are built once at static initialization,
// and the row kernels touch only caller-owned buffers. Determinism is
// trivial (pure functions of their inputs), but the dispatch is still
// overridable (set_kernel) so tests can pin SIMD == scalar and benches
// can measure both sides honestly.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mnp::util::gf256 {

/// Product a*b in GF(256). gf_mul(0, x) == gf_mul(x, 0) == 0.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse. Precondition: a != 0.
std::uint8_t gf_inv(std::uint8_t a);

/// Quotient a/b. Precondition: b != 0.
std::uint8_t gf_div(std::uint8_t a, std::uint8_t b);

/// dst[i] ^= c * src[i] for i in [0, n) — the fused multiply-add row op.
/// c == 0 is a no-op, c == 1 a plain XOR; both are short-circuited.
/// dst and src must not overlap (they never do: decoder rows are distinct
/// matrix rows, encoder output is a separate accumulation buffer).
void addmul_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                std::uint8_t c);

/// dst[i] = c * dst[i] for i in [0, n) (pivot normalization).
void mul_row(std::uint8_t* dst, std::size_t n, std::uint8_t c);

// --- kernel dispatch --------------------------------------------------------

enum class Kernel : std::uint8_t { kAuto, kScalar, kSimd };

/// Forces a row-kernel implementation. kAuto (the default) re-probes the
/// CPU; kSimd on a CPU without SSSE3 silently degrades to scalar.
void set_kernel(Kernel k);

/// The implementation addmul_row currently dispatches to: "ssse3" or
/// "scalar". Benches embed it in BENCH_nc.json; tests assert the forced
/// paths agree.
const char* kernel_name();

/// True when this build+CPU can run the SSSE3 path at all (false on
/// non-x86 targets, where kSimd is accepted but means scalar).
bool simd_available();

/// Always-scalar reference spelling, dispatch-independent — property tests
/// diff the active kernel against it byte for byte.
void addmul_row_scalar(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n, std::uint8_t c);

}  // namespace mnp::util::gf256

// Simple running statistics + fixed-bin histogram for metric summaries.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace mnp::util {

/// Online mean/min/max/stddev accumulator over doubles.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Population standard deviation.
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::max();
  double max_ = std::numeric_limits<double>::lowest();
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to
/// the edge bins. Renders as a horizontal ASCII bar chart.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }

  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mnp::util

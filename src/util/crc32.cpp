#include "util/crc32.hpp"

#include <array>

namespace mnp::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t length,
                    std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < length; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mnp::util

// CRC-32 (IEEE 802.3 polynomial, reflected) — integrity check used by the
// boot manager to validate staged images before installing them.
#pragma once

#include <cstdint>
#include <vector>

namespace mnp::util {

/// CRC of `data`, optionally chained from a previous partial `seed`
/// (pass the previous call's return value to continue a stream).
std::uint32_t crc32(const std::uint8_t* data, std::size_t length,
                    std::uint32_t seed = 0);

inline std::uint32_t crc32(const std::vector<std::uint8_t>& data,
                           std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace mnp::util

#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mnp::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::stddev() const {
  if (n_ == 0) return 0.0;
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(n_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi > lo ? hi : lo + 1.0), counts_(bins ? bins : 1, 0) {}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<long>(std::floor(frac * static_cast<double>(counts_.size())));
  i = std::clamp(i, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double bin_lo = lo_ + width * static_cast<double>(i);
    const std::size_t bar =
        counts_[i] * max_bar_width / peak;
    out << "[" << bin_lo << ", " << bin_lo + width << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace mnp::util

#include "util/gf256.hpp"

#include <array>
#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#define MNP_GF256_X86 1
#include <tmmintrin.h>
#else
#define MNP_GF256_X86 0
#endif

namespace mnp::util::gf256 {

namespace {

constexpr unsigned kPoly = 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1

struct Tables {
  // exp_ doubled so gf_mul can index log[a]+log[b] without a modulo.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint8_t, 256> log_{};
  // Per-coefficient nibble product tables for the PSHUFB kernel (and the
  // scalar fallback, which is faster through them than through log/exp):
  // lo_[c][x] = c * x, hi_[c][x] = c * (x << 4), x in [0, 16).
  std::array<std::array<std::uint8_t, 16>, 256> lo_{};
  std::array<std::array<std::uint8_t, 16>, 256> hi_{};

  constexpr Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      exp_[i + 255] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100u) x ^= kPoly;
    }
    exp_[510] = exp_[0];
    exp_[511] = exp_[1];
    for (unsigned c = 1; c < 256; ++c) {
      for (unsigned n = 1; n < 16; ++n) {
        const unsigned lo = static_cast<unsigned>(
            exp_[log_[c] + log_[n]]);
        lo_[c][n] = static_cast<std::uint8_t>(lo);
        hi_[c][n] = exp_[log_[c] + log_[n << 4]];
      }
    }
  }
};

constexpr Tables kT{};

void addmul_row_tables(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n, std::uint8_t c) {
  const std::array<std::uint8_t, 16>& lo = kT.lo_[c];
  const std::array<std::uint8_t, 16>& hi = kT.hi_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    dst[i] ^= static_cast<std::uint8_t>(lo[s & 0x0F] ^ hi[s >> 4]);
  }
}

void xor_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

#if MNP_GF256_X86

__attribute__((target("ssse3"))) void addmul_row_ssse3(
    std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
    std::uint8_t c) {
  const __m128i lo = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(kT.lo_[c].data()));
  const __m128i hi = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(kT.hi_[c].data()));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i prod = _mm_xor_si128(
        _mm_shuffle_epi8(lo, _mm_and_si128(s, mask)),
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, prod));
  }
  if (i < n) addmul_row_tables(dst + i, src + i, n - i, c);
}

bool cpu_has_ssse3() { return __builtin_cpu_supports("ssse3"); }

#else

bool cpu_has_ssse3() { return false; }

#endif  // MNP_GF256_X86

using RowFn = void (*)(std::uint8_t*, const std::uint8_t*, std::size_t,
                       std::uint8_t);

RowFn resolve(Kernel k) {
#if MNP_GF256_X86
  if (k != Kernel::kScalar && cpu_has_ssse3()) return addmul_row_ssse3;
#else
  (void)k;
#endif
  return addmul_row_tables;
}

// Dispatch state. Written only by set_kernel (tests/benches); atomic with
// relaxed ordering (free on x86) so a concurrent run_experiment — the
// fleet service runs many on independent threads — never races a kernel
// flip. The coded rows themselves are identical under either kernel.
std::atomic<RowFn> g_row_fn{resolve(Kernel::kAuto)};
std::atomic<const char*> g_kernel_name{cpu_has_ssse3() ? "ssse3" : "scalar"};

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kT.exp_[kT.log_[a] + kT.log_[b]];
}

std::uint8_t gf_inv(std::uint8_t a) { return kT.exp_[255 - kT.log_[a]]; }

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return kT.exp_[kT.log_[a] + 255 - kT.log_[b]];
}

void addmul_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                std::uint8_t c) {
  if (c == 0 || n == 0) return;
  if (c == 1) {
    xor_row(dst, src, n);
    return;
  }
  g_row_fn.load(std::memory_order_relaxed)(dst, src, n, c);
}

void mul_row(std::uint8_t* dst, std::size_t n, std::uint8_t c) {
  if (c == 1 || n == 0) return;
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  // In-place scale = clear + addmul from a snapshot would need a copy;
  // the per-byte table walk is cheap and normalization touches one row
  // per pivot, never the O(k * n) bulk of elimination.
  const std::array<std::uint8_t, 16>& lo = kT.lo_[c];
  const std::array<std::uint8_t, 16>& hi = kT.hi_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = dst[i];
    dst[i] = static_cast<std::uint8_t>(lo[s & 0x0F] ^ hi[s >> 4]);
  }
}

void set_kernel(Kernel k) {
  const RowFn fn = resolve(k);
  g_row_fn.store(fn, std::memory_order_relaxed);
  g_kernel_name.store(fn == addmul_row_tables ? "scalar" : "ssse3",
                      std::memory_order_relaxed);
}

const char* kernel_name() {
  return g_kernel_name.load(std::memory_order_relaxed);
}

bool simd_available() { return cpu_has_ssse3(); }

void addmul_row_scalar(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n, std::uint8_t c) {
  if (c == 0 || n == 0) return;
  if (c == 1) {
    xor_row(dst, src, n);
    return;
  }
  addmul_row_tables(dst, src, n, c);
}

}  // namespace mnp::util::gf256

#include "util/ascii_grid.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mnp::util {

std::string render_grid(std::size_t rows, std::size_t cols,
                        const std::function<std::string(std::size_t, std::size_t)>& cell) {
  std::vector<std::string> cells;
  cells.reserve(rows * cols);
  std::size_t width = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      cells.push_back(cell(r, c));
      width = std::max(width, cells.back().size());
    }
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& s = cells[r * cols + c];
      out << s << std::string(width - s.size() + 1, ' ');
    }
    out << "\n";
  }
  return out.str();
}

std::string render_heatmap(std::size_t rows, std::size_t cols,
                           const std::vector<double>& values_row_major,
                           double lo, double hi) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = 10;
  std::ostringstream out;
  const double span = (hi > lo) ? (hi - lo) : 1.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t i = r * cols + c;
      double v = (i < values_row_major.size()) ? values_row_major[i] : lo;
      int level = static_cast<int>(std::floor((v - lo) / span * kLevels));
      level = std::clamp(level, 0, kLevels - 1);
      out << kRamp[level];
    }
    out << "\n";
  }
  return out.str();
}

std::string render_parent_arrows(std::size_t rows, std::size_t cols,
                                 const std::vector<int>& parent_row_major,
                                 int base_index) {
  auto arrow = [](int dr, int dc) -> std::string {
    // 8-way arrows, direction from child toward parent.
    if (dr < 0 && dc == 0) return "^";
    if (dr > 0 && dc == 0) return "v";
    if (dr == 0 && dc < 0) return "<";
    if (dr == 0 && dc > 0) return ">";
    if (dr < 0 && dc < 0) return "\\";   // up-left (points toward upper-left)
    if (dr < 0 && dc > 0) return "/";    // up-right
    if (dr > 0 && dc < 0) return "/";    // down-left
    if (dr > 0 && dc > 0) return "\\";   // down-right
    return "o";                          // parent is itself (shouldn't happen)
  };
  return render_grid(rows, cols, [&](std::size_t r, std::size_t c) -> std::string {
    const int i = static_cast<int>(r * cols + c);
    if (i == base_index) return "B";
    const int p = (static_cast<std::size_t>(i) < parent_row_major.size())
                      ? parent_row_major[static_cast<std::size_t>(i)]
                      : -1;
    if (p < 0) return ".";
    const int pr = p / static_cast<int>(cols);
    const int pc = p % static_cast<int>(cols);
    return arrow(pr - static_cast<int>(r), pc - static_cast<int>(c));
  });
}

}  // namespace mnp::util

#include "util/bitmap.hpp"

#include <algorithm>
#include <bit>

namespace mnp::util {

Bitmap::Bitmap(std::size_t size) : size_(std::min(size, kMaxBits)) {}

Bitmap Bitmap::all_set(std::size_t size) {
  Bitmap b(size);
  b.set_all();
  return b;
}

bool Bitmap::test(std::size_t i) const {
  if (i >= size_) return false;
  return (bits_[i / 8] >> (i % 8)) & 1u;
}

void Bitmap::set(std::size_t i) {
  if (i >= size_) return;
  bits_[i / 8] = static_cast<std::uint8_t>(bits_[i / 8] | (1u << (i % 8)));
}

void Bitmap::clear(std::size_t i) {
  if (i >= size_) return;
  bits_[i / 8] = static_cast<std::uint8_t>(bits_[i / 8] & ~(1u << (i % 8)));
}

void Bitmap::set_all() {
  bits_.fill(0);
  for (std::size_t i = 0; i < size_; ++i) set(i);
}

void Bitmap::clear_all() { bits_.fill(0); }

std::size_t Bitmap::count() const {
  std::size_t n = 0;
  for (std::size_t byte = 0; byte < byte_size(); ++byte) {
    n += static_cast<std::size_t>(std::popcount(bits_[byte]));
  }
  return n;
}

std::size_t Bitmap::find_first_set(std::size_t from) const {
  for (std::size_t i = from; i < size_; ++i) {
    if (test(i)) return i;
  }
  return size_;
}

Bitmap& Bitmap::operator|=(const Bitmap& other) {
  const std::size_t bytes = std::min(byte_size(), other.byte_size());
  for (std::size_t i = 0; i < bytes; ++i) bits_[i] |= other.bits_[i];
  return *this;
}

Bitmap& Bitmap::operator&=(const Bitmap& other) {
  for (std::size_t i = 0; i < byte_size(); ++i) {
    bits_[i] &= (i < other.byte_size()) ? other.bits_[i] : std::uint8_t{0};
  }
  return *this;
}

bool Bitmap::operator==(const Bitmap& other) const {
  return size_ == other.size_ && bits_ == other.bits_;
}

Bitmap Bitmap::from_bytes(const std::array<std::uint8_t, kMaxBytes>& bytes,
                          std::size_t size) {
  Bitmap b(size);
  b.bits_ = bytes;
  // Mask out bits beyond `size` so equality and count stay well-defined.
  for (std::size_t i = b.size_; i < kMaxBits; ++i) {
    b.bits_[i / 8] = static_cast<std::uint8_t>(b.bits_[i / 8] & ~(1u << (i % 8)));
  }
  return b;
}

std::string Bitmap::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

std::size_t BigBitmap::count() const {
  return static_cast<std::size_t>(std::count(bits_.begin(), bits_.end(), true));
}

std::size_t BigBitmap::find_first_set(std::size_t from) const {
  for (std::size_t i = from; i < bits_.size(); ++i) {
    if (bits_[i]) return i;
  }
  return bits_.size();
}

Bitmap BigBitmap::window(std::size_t base) const {
  const std::size_t width = std::min(Bitmap::kMaxBits, bits_.size() - std::min(base, bits_.size()));
  Bitmap w(width);
  for (std::size_t i = 0; i < width; ++i) {
    if (test(base + i)) w.set(i);
  }
  return w;
}

void BigBitmap::merge_window(std::size_t base, const Bitmap& w) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w.test(i)) set(base + i);
  }
}

}  // namespace mnp::util

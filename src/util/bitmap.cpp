#include "util/bitmap.hpp"

#include <algorithm>
#include <bit>

namespace mnp::util {

namespace {

/// Mask covering the low `bits` bits of one word (bits in [0, 64]).
std::uint64_t bit_mask(std::size_t bits) {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

/// Bits of a `size`-bit value that land in word `w`.
std::size_t bits_in_word(std::size_t size, std::size_t w) {
  return size > 64 * w ? (size - 64 * w > 64 ? 64 : size - 64 * w) : 0;
}

}  // namespace

Bitmap::Bitmap(std::size_t size) : size_(std::min(size, kMaxBits)) {}

Bitmap Bitmap::all_set(std::size_t size) {
  Bitmap b(size);
  b.set_all();
  return b;
}

void Bitmap::set_all() {
  for (std::size_t w = 0; w < kWords; ++w) {
    words_[w] = bit_mask(bits_in_word(size_, w));
  }
}

std::size_t Bitmap::count() const {
  // Storage past byte_size() is always zero; bits between size_ and the
  // byte boundary may be set by a byte-granular |= with a larger operand
  // and are deliberately counted (the historical byte-wise semantics).
  std::size_t n = 0;
  for (const std::uint64_t w : words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

std::size_t Bitmap::find_first_set(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t w = from / 64;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (from % 64));
  while (true) {
    // Unlike count(), iteration never yields bits at/after size_.
    word &= bit_mask(bits_in_word(size_, w));
    if (word != 0) {
      return 64 * w + static_cast<std::size_t>(std::countr_zero(word));
    }
    ++w;
    if (w >= kWords || 64 * w >= size_) return size_;
    word = words_[w];
  }
}

Bitmap& Bitmap::operator|=(const Bitmap& other) {
  // Byte-granular like the original: ORs whole bytes up to the smaller
  // byte_size(), which may set bits past a non-multiple-of-8 size_.
  const std::size_t bytes = std::min(byte_size(), other.byte_size());
  for (std::size_t w = 0; w < kWords; ++w) {
    const std::size_t k = bytes > 8 * w ? (bytes - 8 * w > 8 ? 8 : bytes - 8 * w) : 0;
    words_[w] |= other.words_[w] & byte_mask(k);
  }
  return *this;
}

Bitmap& Bitmap::operator&=(const Bitmap& other) {
  for (std::size_t w = 0; w < kWords; ++w) {
    const std::uint64_t mine = byte_mask(bytes_in_word(w));
    const std::uint64_t theirs = byte_mask(other.bytes_in_word(w));
    const std::uint64_t other_eff = other.words_[w] & theirs;
    words_[w] = (words_[w] & ~mine) | (words_[w] & other_eff & mine);
  }
  return *this;
}

std::array<std::uint8_t, Bitmap::kMaxBytes> Bitmap::to_bytes() const {
  std::array<std::uint8_t, kMaxBytes> out{};
  for (std::size_t i = 0; i < kMaxBytes; ++i) {
    out[i] = static_cast<std::uint8_t>(words_[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

Bitmap Bitmap::from_bytes(const std::array<std::uint8_t, kMaxBytes>& bytes,
                          std::size_t size) {
  Bitmap b(size);
  for (std::size_t i = 0; i < kMaxBytes; ++i) {
    b.words_[i / 8] |= static_cast<std::uint64_t>(bytes[i]) << (8 * (i % 8));
  }
  // Mask out bits beyond `size` so equality and count stay well-defined.
  for (std::size_t w = 0; w < kWords; ++w) {
    b.words_[w] &= bit_mask(bits_in_word(b.size_, w));
  }
  return b;
}

std::string Bitmap::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

void BigBitmap::set_all() {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] = bit_mask(bits_in_word(size_, w));
  }
}

std::size_t BigBitmap::count() const {
  std::size_t n = 0;
  for (const std::uint64_t w : words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

std::size_t BigBitmap::find_first_set(std::size_t from) const {
  if (from >= size_) return size_;
  std::size_t w = from / 64;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (from % 64));
  while (true) {
    if (word != 0) {
      // Bits at/after size_ are never stored, so this index is in range.
      return 64 * w + static_cast<std::size_t>(std::countr_zero(word));
    }
    ++w;
    if (w >= words_.size()) return size_;
    word = words_[w];
  }
}

Bitmap BigBitmap::window(std::size_t base) const {
  const std::size_t width =
      std::min(Bitmap::kMaxBits, size_ - std::min(base, size_));
  Bitmap w(width);
  for (std::size_t i = 0; i < width; ++i) {
    if (test(base + i)) w.set(i);
  }
  return w;
}

void BigBitmap::merge_window(std::size_t base, const Bitmap& w) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w.test(i)) set(base + i);
  }
}

}  // namespace mnp::util

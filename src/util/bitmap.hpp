// Fixed-capacity bitmap used for MNP's MissingVector / ForwardVector.
//
// The paper restricts a segment to at most 128 packets so that the missing
// vector is 16 bytes and fits inside a single radio packet. This class
// models exactly that: a compact bit vector with a byte-serializable
// representation and the set-algebra operations the protocol needs
// (union for ForwardVector accumulation, iteration for transmission order).
//
// Storage is two uint64 words so count/union/intersection/find_first_set
// compile to popcount/ctz instead of bit-at-a-time loops — these run
// inside every download-request merge and forward-vector scan. The wire
// format (little-bit-endian bytes) is unchanged: byte k of to_bytes()
// still holds bits 8k..8k+7.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mnp::util {

/// Compact bitmap over up to `kMaxBits` bits (128 = MNP's max segment size).
/// Bit semantics are defined by the caller; MNP uses 1 = "packet missing"
/// (MissingVector) or 1 = "packet must be forwarded" (ForwardVector).
class Bitmap {
 public:
  static constexpr std::size_t kMaxBits = 128;
  static constexpr std::size_t kMaxBytes = kMaxBits / 8;
  static constexpr std::size_t kWords = kMaxBits / 64;

  /// Empty bitmap (size 0). Non-explicit so message structs holding a
  /// Bitmap member stay aggregate-initializable with {}.
  Bitmap() = default;

  /// Creates a bitmap of `size` bits, all cleared.
  /// Precondition: size <= kMaxBits (clamped otherwise).
  explicit Bitmap(std::size_t size);

  /// Creates a bitmap of `size` bits, all set. This is how MNP initializes
  /// a MissingVector: every packet starts out missing.
  static Bitmap all_set(std::size_t size);

  std::size_t size() const { return size_; }
  std::size_t byte_size() const { return (size_ + 7) / 8; }

  // The redundant `i >= kMaxBits` arm restates the size_ <= kMaxBits
  // invariant where the optimizer can see it; without it GCC's
  // -Warray-bounds flags the words_ access when it inlines a call with a
  // provably out-of-range constant (the no-op path never reaches words_).
  bool test(std::size_t i) const {
    if (i >= size_ || i >= kMaxBits) return false;
    return (words_[i / 64] >> (i % 64)) & 1u;
  }
  void set(std::size_t i) {
    if (i >= size_ || i >= kMaxBits) return;
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void clear(std::size_t i) {
    if (i >= size_ || i >= kMaxBits) return;
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  void set_all();
  void clear_all() { words_.fill(0); }

  /// Number of set bits.
  std::size_t count() const;
  bool any() const { return count() > 0; }
  bool none() const { return count() == 0; }

  /// Index of the first set bit at or after `from`, or `size()` if none.
  std::size_t find_first_set(std::size_t from = 0) const;

  /// In-place union; used by the sender to merge requesters' missing
  /// vectors into its ForwardVector. Sizes must match.
  Bitmap& operator|=(const Bitmap& other);
  /// In-place intersection.
  Bitmap& operator&=(const Bitmap& other);

  friend Bitmap operator|(Bitmap a, const Bitmap& b) { return a |= b; }
  friend Bitmap operator&(Bitmap a, const Bitmap& b) { return a &= b; }
  bool operator==(const Bitmap& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Raw bytes (little-bit-endian within a byte), length byte_size().
  /// This is the on-air representation carried inside download requests.
  std::array<std::uint8_t, kMaxBytes> to_bytes() const;
  static Bitmap from_bytes(const std::array<std::uint8_t, kMaxBytes>& bytes,
                           std::size_t size);

  /// "101100..." debugging form, most significant bit = index 0.
  std::string to_string() const;

 private:
  /// Mask covering the low `bytes` bytes of one word (bytes in [0, 8]).
  static std::uint64_t byte_mask(std::size_t bytes) {
    return bytes >= 8 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (8 * bytes)) - 1;
  }
  /// Bytes of this bitmap's storage that land in word `w`.
  std::size_t bytes_in_word(std::size_t w) const {
    const std::size_t total = byte_size();
    return total > 8 * w ? (total - 8 * w > 8 ? 8 : total - 8 * w) : 0;
  }

  std::size_t size_ = 0;
  std::array<std::uint64_t, kWords> words_{};
};

/// Arbitrarily sized bitmap for the paper's *large segment* variant
/// (section 3.3): when pipelining is off, a segment may exceed 128 packets
/// and the receiver tracks loss in EEPROM instead of RAM. On the wire the
/// missing information still travels as 128-bit windows (`window`), which
/// the sender merges back with `merge_window`. Word-backed like Bitmap so
/// count and first-set scans are popcount/ctz over uint64 words.
class BigBitmap {
 public:
  /// Empty bitmap (size 0); see Bitmap() for why this is non-explicit.
  BigBitmap() = default;

  explicit BigBitmap(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  static BigBitmap all_set(std::size_t size) {
    BigBitmap b(size);
    b.set_all();
    return b;
  }

  std::size_t size() const { return size_; }
  bool test(std::size_t i) const {
    return i < size_ && ((words_[i / 64] >> (i % 64)) & 1u);
  }
  void set(std::size_t i) {
    if (i < size_) words_[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  void clear(std::size_t i) {
    if (i < size_) words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }
  void set_all();
  void clear_all() { std::fill(words_.begin(), words_.end(), 0); }
  std::size_t count() const;
  bool none() const { return count() == 0; }
  bool any() const { return count() > 0; }
  std::size_t find_first_set(std::size_t from = 0) const;

  /// 128-bit window starting at `base` (bit i of the result = bit base+i).
  Bitmap window(std::size_t base) const;
  /// OR-merges a 128-bit window back in at `base`.
  void merge_window(std::size_t base, const Bitmap& w);

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mnp::util

// Minimal leveled logger for simulator tracing.
//
// The simulator is deterministic and single-threaded, so logging is a plain
// global sink with a level filter. Benches and tests default to `kWarn` so
// output stays readable; protocol debugging flips to `kTrace`.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace mnp::util {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr, prefixed with the level tag.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mnp::util

#define MNP_LOG(level)                                  \
  if (static_cast<int>(level) <                         \
      static_cast<int>(::mnp::util::log_level())) {     \
  } else                                                \
    ::mnp::util::detail::LogStream(level)

#define MNP_TRACE() MNP_LOG(::mnp::util::LogLevel::kTrace)
#define MNP_DEBUG() MNP_LOG(::mnp::util::LogLevel::kDebug)
#define MNP_INFO() MNP_LOG(::mnp::util::LogLevel::kInfo)
#define MNP_WARN() MNP_LOG(::mnp::util::LogLevel::kWarn)
#define MNP_ERROR() MNP_LOG(::mnp::util::LogLevel::kError)

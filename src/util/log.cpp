#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace mnp::util {

namespace {
// Atomic so parallel sweep workers can read the level while a main thread
// (re)configures it — the logger itself stays a simple global sink.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::cerr << "[" << tag(level) << "] " << msg << "\n";
}

}  // namespace mnp::util

// ASCII rendering of per-node values laid out on a grid.
//
// The paper presents most results spatially (parent arrows on a grid,
// active-radio-time heat maps, propagation wavefronts). Benches render
// those as fixed-width ASCII tables/heatmaps so a terminal run of each
// bench shows the same picture the paper's figure does.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace mnp::util {

/// Renders a rows x cols grid where each cell is produced by `cell(r, c)`.
/// Cells are right-padded to the widest cell in the grid.
std::string render_grid(std::size_t rows, std::size_t cols,
                        const std::function<std::string(std::size_t, std::size_t)>& cell);

/// Renders numeric values as a single-character-per-cell heat map using the
/// ramp " .:-=+*#%@" (low..high). Useful for completion-wave snapshots.
std::string render_heatmap(std::size_t rows, std::size_t cols,
                           const std::vector<double>& values_row_major,
                           double lo, double hi);

/// Renders a parent map: each cell shows an arrow pointing from the node
/// towards its parent's grid direction (8-way), 'B' for the base station,
/// '.' for no parent. `parent_row_major[i]` is the parent node index or -1.
std::string render_parent_arrows(std::size_t rows, std::size_t cols,
                                 const std::vector<int>& parent_row_major,
                                 int base_index);

}  // namespace mnp::util

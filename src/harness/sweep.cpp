#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "harness/observe.hpp"

namespace mnp::harness {

namespace {

std::size_t count_effective_senders(const RunResult& r) {
  std::set<int> parents;
  for (const auto& n : r.nodes) {
    if (n.parent >= 0) parents.insert(n.parent);
  }
  return parents.size();
}

void accumulate(SweepResult& sweep, RunResult r, bool keep_raw) {
  if (r.all_completed) {
    ++sweep.fully_completed_runs;
    sweep.completion_s.add(sim::to_seconds(r.completion_time));
  }
  sweep.avg_art_s.add(r.avg_active_radio_s());
  sweep.avg_art_post_adv_s.add(r.avg_active_radio_after_adv_s());
  sweep.avg_msgs.add(r.avg_messages_sent());
  sweep.collisions.add(static_cast<double>(r.collisions));
  sweep.bulk_overlaps.add(static_cast<double>(r.bulk_overlaps));
  sweep.energy_per_node_nah.add(r.total_energy_nah() /
                                static_cast<double>(r.nodes.size()));
  sweep.effective_senders.add(static_cast<double>(count_effective_senders(r)));
  if (keep_raw) sweep.raw.push_back(std::move(r));
}

/// Seeds an empty per-run Observation mirroring the sweep-level one (or a
/// bare audit-only one when the sweep is unobserved); only the first seed
/// records a trace, so the merged dropped_events count is that
/// representative trace's and the metrics stay trace-independent.
Observation seed_observation(const Observation* target, bool first,
                             bool audit) {
  Observation per_run(target != nullptr ? target->log.capacity() : 1);
  per_run.with_trace = target != nullptr && target->with_trace && first;
  per_run.energy_sample_interval =
      target != nullptr ? target->energy_sample_interval : 0;
  per_run.with_audit = audit || (target != nullptr && target->with_audit);
  return per_run;
}

void merge_observation(Observation& into, Observation&& from, bool first) {
  if (first) {
    into.metrics = std::move(from.metrics);
    into.log = std::move(from.log);
    into.counters = std::move(from.counters);
    into.node_count = from.node_count;
    if (from.with_audit) into.audit = std::move(from.audit);
    return;
  }
  // All seeds run the same config, so the registries share one schema.
  const bool merged = into.metrics.merge_from(from.metrics);
  assert(merged && "sweep seeds produced differing metric schemas");
  (void)merged;
}

}  // namespace

std::size_t resolve_sweep_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const char* env = std::getenv("MNP_SWEEP_JOBS");
  if (!env || !*env) return 1;
  const std::string value(env);
  const auto hw = [] {
    const unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<std::size_t>(n) : std::size_t{1};
  };
  if (value == "auto" || value == "0") return hw();
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) return 1;
  return static_cast<std::size_t>(parsed);
}

std::size_t effective_sweep_jobs(std::size_t resolved, std::size_t runs,
                                 std::size_t hardware,
                                 bool allow_oversubscribe) {
  std::size_t jobs = std::min(std::max<std::size_t>(resolved, 1), runs);
  if (!allow_oversubscribe) {
    // Seeds are CPU-bound with no I/O to overlap, so threads beyond the
    // core count only add context switches (BENCH_sweep.json measured
    // jobs=2/4 at 0.82x/0.87x of sequential on a 1-core host).
    jobs = std::min(jobs, std::max<std::size_t>(hardware, 1));
  }
  return jobs;
}

SweepResult run_sweep(ExperimentConfig cfg, std::size_t runs,
                      std::uint64_t first_seed, const SweepOptions& options) {
  SweepResult sweep;
  sweep.runs = runs;
  if (runs == 0) return sweep;

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t jobs = effective_sweep_jobs(
      resolve_sweep_jobs(options.jobs), runs,
      hw ? static_cast<std::size_t>(hw) : 1, options.allow_oversubscribe);

  const bool audit = options.audit_chains != nullptr;
  if (audit) options.audit_chains->assign(runs, 0);
  const bool per_run_obs = options.observe != nullptr || audit;

  if (jobs <= 1) {
    for (std::size_t i = 0; i < runs; ++i) {
      cfg.seed = first_seed + i;
      if (per_run_obs) {
        Observation per_run = seed_observation(options.observe, i == 0, audit);
        RunResult r = run_experiment(cfg, &per_run);
        if (audit) (*options.audit_chains)[i] = per_run.audit.chain();
        if (options.observe) {
          merge_observation(*options.observe, std::move(per_run), i == 0);
        }
        accumulate(sweep, std::move(r), options.keep_raw);
      } else {
        accumulate(sweep, run_experiment(cfg), options.keep_raw);
      }
    }
    return sweep;
  }

  // Fan the seeds out over a worker pool. Each worker claims the next
  // unstarted seed, builds a fully private Simulator (run_experiment shares
  // nothing mutable across runs) and deposits the result in its seed's
  // slot. Aggregation below walks the slots in seed order, so the merged
  // statistics are bit-identical to the jobs=1 path.
  std::vector<RunResult> results(runs);
  std::vector<Observation> observations;
  if (per_run_obs) {
    observations.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i) {
      observations.push_back(seed_observation(options.observe, i == 0, audit));
    }
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= runs || failed.load(std::memory_order_relaxed)) return;
      ExperimentConfig run_cfg = cfg;
      run_cfg.seed = first_seed + i;
      try {
        results[i] = run_experiment(
            run_cfg, per_run_obs ? &observations[i] : nullptr);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);

  // Seed-order merge on the calling thread: the same accumulation
  // sequence as jobs=1, hence byte-identical exports.
  for (std::size_t i = 0; i < runs; ++i) {
    if (audit) (*options.audit_chains)[i] = observations[i].audit.chain();
    if (options.observe) {
      merge_observation(*options.observe, std::move(observations[i]), i == 0);
    }
    accumulate(sweep, std::move(results[i]), options.keep_raw);
  }
  return sweep;
}

SweepResult run_sweep(ExperimentConfig cfg, std::size_t runs,
                      std::uint64_t first_seed, bool keep_raw) {
  SweepOptions options;
  options.jobs = 0;  // defer to MNP_SWEEP_JOBS
  options.keep_raw = keep_raw;
  return run_sweep(std::move(cfg), runs, first_seed, options);
}

std::string format_stat(const util::RunningStats& s, int precision) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f [%.*f, %.*f]", precision,
                s.mean(), precision, s.stddev(), precision, s.min(), precision,
                s.max());
  return buf;
}

}  // namespace mnp::harness

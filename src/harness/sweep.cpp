#include "harness/sweep.hpp"

#include <cstdio>
#include <set>

namespace mnp::harness {

namespace {

std::size_t count_effective_senders(const RunResult& r) {
  std::set<int> parents;
  for (const auto& n : r.nodes) {
    if (n.parent >= 0) parents.insert(n.parent);
  }
  return parents.size();
}

}  // namespace

SweepResult run_sweep(ExperimentConfig cfg, std::size_t runs,
                      std::uint64_t first_seed, bool keep_raw) {
  SweepResult sweep;
  sweep.runs = runs;
  for (std::size_t i = 0; i < runs; ++i) {
    cfg.seed = first_seed + i;
    RunResult r = run_experiment(cfg);
    if (r.all_completed) {
      ++sweep.fully_completed_runs;
      sweep.completion_s.add(sim::to_seconds(r.completion_time));
    }
    sweep.avg_art_s.add(r.avg_active_radio_s());
    sweep.avg_art_post_adv_s.add(r.avg_active_radio_after_adv_s());
    sweep.avg_msgs.add(r.avg_messages_sent());
    sweep.collisions.add(static_cast<double>(r.collisions));
    sweep.bulk_overlaps.add(static_cast<double>(r.bulk_overlaps));
    sweep.energy_per_node_nah.add(r.total_energy_nah() /
                                  static_cast<double>(r.nodes.size()));
    sweep.effective_senders.add(static_cast<double>(count_effective_senders(r)));
    if (keep_raw) sweep.raw.push_back(std::move(r));
  }
  return sweep;
}

std::string format_stat(const util::RunningStats& s, int precision) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f [%.*f, %.*f]", precision,
                s.mean(), precision, s.stddev(), precision, s.min(), precision,
                s.max());
  return buf;
}

}  // namespace mnp::harness

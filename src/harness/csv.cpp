#include "harness/csv.hpp"

#include <ostream>

namespace mnp::harness {

void write_nodes_csv(std::ostream& os, const RunResult& r) {
  os << "node,row,col,completion_s,art_s,art_post_adv_s,parent,tx_total,"
        "rx_total,tx_data,energy_nah,verified\n";
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    const NodeResult& n = r.nodes[i];
    os << i << ',' << (r.cols ? i / r.cols : 0) << ','
       << (r.cols ? i % r.cols : 0) << ','
       << (n.completion >= 0 ? sim::to_seconds(n.completion) : -1.0) << ','
       << sim::to_seconds(n.active_radio) << ','
       << sim::to_seconds(n.active_radio_after_first_adv) << ',' << n.parent
       << ',' << n.tx_total << ',' << n.rx_total << ',' << n.tx_data << ','
       << n.energy_nah << ',' << (n.image_verified ? 1 : 0) << '\n';
  }
}

void write_timeline_csv(std::ostream& os, const RunResult& r) {
  os << "minute,advertisements,requests,data,other\n";
  for (const auto& [minute, counts] : r.timeline) {
    os << minute << ',' << counts[0] << ',' << counts[1] << ',' << counts[2]
       << ',' << counts[3] << '\n';
  }
}

void write_summary_csv(std::ostream& os, const char* label, const RunResult& r) {
  os << "label,nodes,completed,verified,completion_s,avg_art_s,"
        "avg_art_post_adv_s,avg_msgs,transmissions,collisions,bulk_overlaps,"
        "total_energy_nah\n";
  os << label << ',' << r.nodes.size() << ',' << r.completed_count << ','
     << r.verified_count() << ','
     << (r.completion_time >= 0 ? sim::to_seconds(r.completion_time) : -1.0)
     << ',' << r.avg_active_radio_s() << ',' << r.avg_active_radio_after_adv_s()
     << ',' << r.avg_messages_sent() << ',' << r.transmissions << ','
     << r.collisions << ',' << r.bulk_overlaps << ',' << r.total_energy_nah()
     << '\n';
}

}  // namespace mnp::harness

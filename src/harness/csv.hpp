// CSV export of run results — machine-readable companions to the ASCII
// reports, for plotting the paper's figures with external tools.
#pragma once

#include <iosfwd>

#include "harness/metrics.hpp"

namespace mnp::harness {

/// One row per node: id, row, col, completion_s, art_s, art_post_adv_s,
/// parent, tx_total, rx_total, tx_data, energy_nah, verified.
void write_nodes_csv(std::ostream& os, const RunResult& r);

/// One row per minute: minute, advertisements, requests, data, other.
void write_timeline_csv(std::ostream& os, const RunResult& r);

/// One summary row (header + one line) for cross-run tables.
void write_summary_csv(std::ostream& os, const char* label, const RunResult& r);

}  // namespace mnp::harness

#include "harness/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "util/ascii_grid.hpp"

namespace mnp::harness {

void print_summary(std::ostream& os, const char* title, const RunResult& r) {
  os << "== " << title << " ==\n";
  os << "  nodes: " << r.nodes.size() << " (" << r.rows << "x" << r.cols
     << "), completed: " << r.completed_count << ", verified byte-exact: "
     << r.verified_count() << "\n";
  os << "  completion time: " << sim::format_time(r.completion_time)
     << "  (measured at " << sim::format_time(r.measured_at) << ")\n";
  os << "  avg active radio time: " << std::fixed << std::setprecision(1)
     << r.avg_active_radio_s() << " s"
     << "  (w/o initial idle listening: " << r.avg_active_radio_after_adv_s()
     << " s)\n";
  os << "  avg messages sent/node: " << std::setprecision(1)
     << r.avg_messages_sent() << ", channel transmissions: " << r.transmissions
     << ", deliveries: " << r.deliveries << "\n";
  os << "  collisions: " << r.collisions
     << ", concurrent bulk-sender overlaps: " << r.bulk_overlaps << "\n";
  os << "  total energy: " << std::setprecision(0) << r.total_energy_nah()
     << " nAh (avg " << r.total_energy_nah() / static_cast<double>(r.nodes.size())
     << " nAh/node)\n";
}

void print_parent_map(std::ostream& os, const RunResult& r, net::NodeId base) {
  std::vector<int> parents;
  parents.reserve(r.nodes.size());
  for (const auto& n : r.nodes) parents.push_back(n.parent);
  os << "parent map (arrow points toward the node's parent, B = base):\n";
  os << util::render_parent_arrows(r.rows, r.cols, parents,
                                   static_cast<int>(base));
}

void print_sender_order(std::ostream& os, const RunResult& r) {
  // The paper computes sender order from the parent attribution: a node
  // counts as a sender only if some node actually received its code from
  // it. Rank those effective senders by the time they first forwarded.
  std::vector<bool> is_parent(r.nodes.size(), false);
  for (const auto& n : r.nodes) {
    if (n.parent >= 0 && static_cast<std::size_t>(n.parent) < r.nodes.size()) {
      is_parent[static_cast<std::size_t>(n.parent)] = true;
    }
  }
  std::vector<int> rank(r.nodes.size(), -1);
  int next_rank = 0;
  std::size_t forwarders = 0;
  for (const net::NodeId id : r.sender_order) {
    ++forwarders;
    if (is_parent[id]) rank[id] = next_rank++;
  }
  os << "sender order (rank among nodes somebody took code from; '.' = not a parent):\n";
  os << util::render_grid(r.rows, r.cols, [&](std::size_t row, std::size_t col) {
    const int v = rank[row * r.cols + col];
    return v < 0 ? std::string(".") : std::to_string(v);
  });
  os << "effective senders (parents): " << next_rank << " of " << r.nodes.size()
     << " nodes (" << forwarders << " forwarded at least once)\n";
}

void print_active_radio(std::ostream& os, const RunResult& r) {
  double max_art = 0.0;
  for (const auto& n : r.nodes) {
    max_art = std::max(max_art, sim::to_seconds(n.active_radio));
  }
  os << "active radio time by node id (s):\n";
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    os << std::setw(7) << std::fixed << std::setprecision(1)
       << sim::to_seconds(r.nodes[i].active_radio);
    if ((i + 1) % r.cols == 0) os << "\n";
  }
  os << "heat map (dark = more active radio time), by location:\n";
  std::vector<double> values;
  values.reserve(r.nodes.size());
  for (const auto& n : r.nodes) values.push_back(sim::to_seconds(n.active_radio));
  os << util::render_heatmap(r.rows, r.cols, values, 0.0, max_art);
  os << "avg: " << r.avg_active_radio_s()
     << " s; avg w/o initial idle: " << r.avg_active_radio_after_adv_s()
     << " s\n";
}

void print_tx_rx_distribution(std::ostream& os, const RunResult& r) {
  double max_tx = 0.0, max_rx = 0.0;
  for (const auto& n : r.nodes) {
    max_tx = std::max(max_tx, static_cast<double>(n.tx_total));
    max_rx = std::max(max_rx, static_cast<double>(n.rx_total));
  }
  std::vector<double> tx, rx;
  for (const auto& n : r.nodes) {
    tx.push_back(static_cast<double>(n.tx_total));
    rx.push_back(static_cast<double>(n.rx_total));
  }
  os << "messages transmitted, by location (max " << max_tx << "):\n"
     << util::render_heatmap(r.rows, r.cols, tx, 0.0, max_tx);
  os << "messages received, by location (max " << max_rx << "):\n"
     << util::render_heatmap(r.rows, r.cols, rx, 0.0, max_rx);
  os << "tx counts per node:\n";
  for (std::size_t i = 0; i < r.nodes.size(); ++i) {
    os << std::setw(7) << r.nodes[i].tx_total;
    if ((i + 1) % r.cols == 0) os << "\n";
  }
}

void print_timeline(std::ostream& os, const RunResult& r) {
  os << "minute | advertisements | requests | data | other\n";
  for (const auto& [minute, counts] : r.timeline) {
    os << std::setw(6) << minute << " | " << std::setw(14) << counts[0]
       << " | " << std::setw(8) << counts[1] << " | " << std::setw(4)
       << counts[2] << " | " << counts[3] << "\n";
  }
}

void print_propagation_snapshots(std::ostream& os, const RunResult& r,
                                 const std::vector<double>& fractions) {
  const sim::Time total =
      r.completion_time >= 0 ? r.completion_time : r.measured_at;
  for (double f : fractions) {
    const auto cutoff = static_cast<sim::Time>(static_cast<double>(total) * f);
    std::size_t done = 0;
    std::vector<double> values;
    values.reserve(r.nodes.size());
    for (const auto& n : r.nodes) {
      const bool complete = n.completion >= 0 && n.completion <= cutoff;
      values.push_back(complete ? 1.0 : 0.0);
      if (complete) ++done;
    }
    os << "at " << static_cast<int>(f * 100) << "% of time ("
       << sim::format_time(cutoff) << "): " << done << "/" << r.nodes.size()
       << " nodes have the code\n";
    os << util::render_heatmap(r.rows, r.cols, values, 0.0, 1.0);
  }
}

}  // namespace mnp::harness

// Multi-seed sweeps: every figure in the paper is a single run of a
// stochastic system; re-running across seeds gives the mean and spread
// (the authors note they "repeated our experiments several times" and saw
// similar results — this makes that check a first-class operation).
//
// Seeds are embarrassingly parallel — each run owns a private Simulator,
// RNG tree, network and stats — so the sweep can fan runs out over a
// worker pool. Aggregation always happens on the calling thread in seed
// order, which makes a parallel sweep *bit-identical* to a sequential one
// (same RunningStats accumulation sequence, same `raw` vector order).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "util/histogram.hpp"

namespace mnp::harness {

struct SweepResult {
  std::size_t runs = 0;
  std::size_t fully_completed_runs = 0;

  util::RunningStats completion_s;
  util::RunningStats avg_art_s;
  util::RunningStats avg_art_post_adv_s;
  util::RunningStats avg_msgs;
  util::RunningStats collisions;
  util::RunningStats bulk_overlaps;
  util::RunningStats energy_per_node_nah;
  util::RunningStats effective_senders;

  /// Per-run raw results, in seed order, for custom statistics.
  std::vector<RunResult> raw;
};

struct SweepOptions {
  /// Worker threads running seeds. 0 resolves through MNP_SWEEP_JOBS (see
  /// resolve_sweep_jobs); 1 is the plain sequential path. Results are
  /// identical for every value — only wall-clock time changes.
  std::size_t jobs = 0;
  /// Retain each RunResult in SweepResult::raw (memory!).
  bool keep_raw = false;
  /// By default a sweep never runs more worker threads than the machine
  /// has cores — oversubscribing a simulator workload only adds context
  /// switches (measured *slower* than sequential on a 1-core host). Tests
  /// that need to exercise the thread pool regardless set this.
  bool allow_oversubscribe = false;
  /// When set, every run is observed: per-run metrics merge into
  /// observe->metrics on the calling thread in seed order (bit-identical
  /// output for any `jobs` value) and the first seed keeps its event log
  /// and counter tracks as the sweep's representative trace.
  Observation* observe = nullptr;
  /// When set, every run is audited (sim::Audit) and the final state-hash
  /// chain of each seed lands here in seed order — the same values for any
  /// `jobs` count, which is exactly what the determinism tests assert.
  /// Independent of `observe`; when both are set the first seed's full
  /// audit record stream also survives in observe->audit.
  std::vector<std::uint64_t>* audit_chains = nullptr;
};

/// Runs `cfg` once per seed in [first_seed, first_seed + runs) and
/// aggregates deterministically in seed order.
SweepResult run_sweep(ExperimentConfig cfg, std::size_t runs,
                      std::uint64_t first_seed, const SweepOptions& options);

/// Compatibility overload; honours MNP_SWEEP_JOBS, so existing callers
/// (every bench binary) pick up parallelism from the environment.
SweepResult run_sweep(ExperimentConfig cfg, std::size_t runs,
                      std::uint64_t first_seed = 1, bool keep_raw = false);

/// Resolves a jobs request: non-zero passes through; 0 consults the
/// MNP_SWEEP_JOBS environment variable ("auto" or "0" = hardware
/// concurrency, a number = that many workers, unset/garbage = 1).
std::size_t resolve_sweep_jobs(std::size_t requested);

/// Worker count run_sweep actually uses: the resolved request clamped to
/// `runs` and — unless `allow_oversubscribe` — to `hardware` threads.
/// Pure so tests can pin the clamp on any simulated core count.
std::size_t effective_sweep_jobs(std::size_t resolved, std::size_t runs,
                                 std::size_t hardware,
                                 bool allow_oversubscribe);

/// "mean +/- stddev [min, max]" rendering for bench tables.
std::string format_stat(const util::RunningStats& s, int precision = 1);

}  // namespace mnp::harness

// Multi-seed sweeps: every figure in the paper is a single run of a
// stochastic system; re-running across seeds gives the mean and spread
// (the authors note they "repeated our experiments several times" and saw
// similar results — this makes that check a first-class operation).
#pragma once

#include <cstdint>
#include <vector>

#include "harness/experiment.hpp"
#include "util/histogram.hpp"

namespace mnp::harness {

struct SweepResult {
  std::size_t runs = 0;
  std::size_t fully_completed_runs = 0;

  util::RunningStats completion_s;
  util::RunningStats avg_art_s;
  util::RunningStats avg_art_post_adv_s;
  util::RunningStats avg_msgs;
  util::RunningStats collisions;
  util::RunningStats bulk_overlaps;
  util::RunningStats energy_per_node_nah;
  util::RunningStats effective_senders;

  /// Per-run raw results, in seed order, for custom statistics.
  std::vector<RunResult> raw;
};

/// Runs `cfg` once per seed in [first_seed, first_seed + runs) and
/// aggregates. `keep_raw` retains each RunResult (memory!).
SweepResult run_sweep(ExperimentConfig cfg, std::size_t runs,
                      std::uint64_t first_seed = 1, bool keep_raw = false);

/// "mean +/- stddev [min, max]" rendering for bench tables.
std::string format_stat(const util::RunningStats& s, int precision = 1);

}  // namespace mnp::harness

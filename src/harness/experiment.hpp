// Experiment harness: builds a network, installs a protocol, runs the
// dissemination to completion (or a deadline), and extracts every metric
// the paper's evaluation section reports.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/deluge_node.hpp"
#include "baselines/moap_node.hpp"
#include "baselines/ncast_node.hpp"
#include "baselines/xnp_node.hpp"
#include "harness/metrics.hpp"
#include "mnp/mnp_config.hpp"
#include "mnp/program_image.hpp"
#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/topology.hpp"
#include "scenario/scenario.hpp"
#include "sim/scheduler.hpp"

namespace mnp::harness {

enum class Protocol { kMnp, kDeluge, kMoap, kXnp, kNcast };

/// Medium access: TinyOS-style CSMA (the paper's implementation) or the
/// SS-TDMA slotted MAC its conclusion proposes pairing MNP with.
enum class MacType { kCsma, kTdma };

const char* protocol_name(Protocol p);

struct ExperimentConfig {
  Protocol protocol = Protocol::kMnp;

  // --- deployment -----------------------------------------------------
  std::size_t rows = 10;
  std::size_t cols = 10;
  double spacing_ft = 10.0;       // paper simulations: 10 ft grid
  net::NodeId base = 0;           // base station node index

  // --- medium access ------------------------------------------------------
  MacType mac = MacType::kCsma;
  /// TDMA slot length (must cover the longest packet's airtime + guard).
  sim::Time tdma_slot = sim::msec(30);

  // --- radio ------------------------------------------------------------
  double range_ft = 25.0;         // communication range (power level knob)
  double interference_factor = 1.6;
  bool empirical_links = true;    // false => ideal disk model
  double link_noise_stddev = 0.08;
  /// Channel mechanics (neighbor cache, zero-copy delivery). Defaults keep
  /// both fast paths on; equivalence tests flip them off per run.
  net::Channel::Params channel;

  // --- program -----------------------------------------------------------
  std::uint16_t program_id = 7;
  std::size_t program_bytes = 5 * 128 * 22;  // 5 MNP segments (~14 KB)

  // --- run control -----------------------------------------------------
  std::uint64_t seed = 1;
  sim::Time max_sim_time = sim::hours(4);
  sim::Time boot_jitter = sim::msec(500);
  /// Same-timestamp event ordering. Production runs keep FIFO; the audit
  /// toolchain re-runs a seed under LIFO and diffs the state-hash streams
  /// to expose tie-break-sensitive protocol logic (DESIGN.md section 12).
  sim::TieBreak tie_break = sim::TieBreak::kFifo;

  // --- protocol knobs ------------------------------------------------------
  core::MnpConfig mnp;
  baselines::DelugeConfig deluge;
  baselines::MoapConfig moap;
  baselines::XnpConfig xnp;
  baselines::NcastConfig ncast;

  /// Battery-aware extension: per-node remaining-charge fractions
  /// (empty = everyone full). Only meaningful with mnp.battery_aware.
  std::vector<double> battery_levels;

  /// Fault-injection schedule (empty = fault-free run). A non-empty
  /// scenario wraps the link model in a ScenarioLinkModel, switches every
  /// protocol to journal its EEPROM progress (so rebooted nodes resume
  /// instead of restarting), and changes the run-end predicate to
  /// "schedule exhausted and every live node holds the image".
  scenario::Scenario scenario;

  // --- shared immutable assets (fleet-service fast path) ---------------
  /// Prebuilt grid to copy instead of calling Topology::grid per run (the
  /// per-run copy keeps scenario mobility private). Used only when it
  /// matches rows/cols/spacing_ft, so a stale pointer can never change
  /// what the config fields describe. Never part of the run manifest.
  std::shared_ptr<const net::Topology> shared_topology;
  /// Prebuilt program image, disseminated as-is instead of regenerating
  /// the deterministic content. Used only when id, size and segment
  /// geometry match the fields above.
  std::shared_ptr<const core::ProgramImage> shared_image;

  /// Convenience: size the program as N MNP segments.
  void set_program_segments(std::uint16_t segments) {
    program_bytes = static_cast<std::size_t>(segments) *
                    mnp.packets_per_segment * mnp.payload_bytes;
  }
};

/// Segment geometry run_experiment will build the ProgramImage with —
/// the per-protocol resolution (Deluge pages, NCast generations, MNP
/// segments). Exposed so asset caches can intern the identical image.
std::uint16_t image_packets_per_segment(const ExperimentConfig& cfg);
std::size_t image_payload_bytes(const ExperimentConfig& cfg);

/// Runs one dissemination to completion (all nodes hold the image) or to
/// config.max_sim_time / event exhaustion, whichever comes first.
RunResult run_experiment(const ExperimentConfig& config);

struct Observation;  // harness/observe.hpp

/// Observed variant: wires `observation` (metrics registry + event log)
/// into the network before boot and captures end-of-run energy gauges and
/// the trace counter tracks. A null observation is the plain run above.
RunResult run_experiment(const ExperimentConfig& config,
                         Observation* observation);

}  // namespace mnp::harness

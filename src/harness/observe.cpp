#include "harness/observe.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/json_writer.hpp"

// Stamped by CMake from `git describe`; manifest-only (never in the trace
// JSON, so the golden trace file does not churn with every commit).
#ifndef MNP_GIT_DESCRIBE
#define MNP_GIT_DESCRIBE "unknown"
#endif

namespace mnp::harness {

const char* build_git_describe() { return MNP_GIT_DESCRIBE; }

void write_trace_json(std::ostream& os, const Observation& observation) {
  obs::write_chrome_trace(os, observation.log, observation.node_count,
                          observation.counters);
}

namespace {

void append_u64(std::string& s, std::uint64_t v) {
  char buf[20];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  s.append(p, buf + sizeof(buf));
}

void append_i64(std::string& s, std::int64_t v) {
  if (v < 0) {
    s.push_back('-');
    append_u64(s, static_cast<std::uint64_t>(-(v + 1)) + 1);
    return;
  }
  append_u64(s, static_cast<std::uint64_t>(v));
}

void append_hex16(std::string& s, std::uint64_t v) {
  static const char kDigits[] = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kDigits[v & 0xF];
    v >>= 4;
  }
  s.append(buf, 16);
}

}  // namespace

void write_audit_log(std::ostream& os, const ExperimentConfig& cfg,
                     const Observation& observation) {
  const auto& recs = observation.audit.records();
  // Hand-rolled formatting into one buffer: a smoke run emits tens of
  // thousands of records, and per-line snprintf + stream insertion is
  // measurably slower than the audited simulation itself.
  std::string out;
  out.reserve(80 + recs.size() * 96);
  out += "# mnp-audit v1\nmeta seed ";
  append_u64(out, cfg.seed);
  out += " nodes ";
  append_u64(out, observation.node_count);
  out += " tie-break ";
  out += cfg.tie_break == sim::TieBreak::kFifo ? "fifo" : "lifo";
  out += " events ";
  append_u64(out, recs.size());
  out += " chain ";
  append_hex16(out, observation.audit.chain());
  out += '\n';
  for (const sim::AuditRecord& r : recs) {
    out += "rec ";
    append_u64(out, r.index);
    out += ' ';
    append_i64(out, static_cast<std::int64_t>(r.time));
    out += ' ';
    append_i64(out, r.node);
    out += ' ';
    append_hex16(out, r.pending);
    out += ' ';
    append_hex16(out, r.nodes);
    out += ' ';
    append_hex16(out, r.chain);
    out += '\n';
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

namespace {

const char* mac_name(MacType m) {
  switch (m) {
    case MacType::kCsma: return "csma";
    case MacType::kTdma: return "tdma";
  }
  return "?";
}

void write_config(obs::JsonWriter& w, const ExperimentConfig& cfg) {
  w.begin_object();
  w.key("protocol");
  w.value(protocol_name(cfg.protocol));
  w.key("mac");
  w.value(mac_name(cfg.mac));
  w.key("rows");
  w.value(static_cast<std::uint64_t>(cfg.rows));
  w.key("cols");
  w.value(static_cast<std::uint64_t>(cfg.cols));
  w.key("spacing_ft");
  w.value(cfg.spacing_ft);
  w.key("base");
  w.value(static_cast<std::uint64_t>(cfg.base));
  w.key("range_ft");
  w.value(cfg.range_ft);
  w.key("interference_factor");
  w.value(cfg.interference_factor);
  w.key("empirical_links");
  w.value(cfg.empirical_links);
  w.key("link_noise_stddev");
  w.value(cfg.link_noise_stddev);
  w.key("program_id");
  w.value(static_cast<std::uint64_t>(cfg.program_id));
  w.key("program_bytes");
  w.value(static_cast<std::uint64_t>(cfg.program_bytes));
  w.key("packets_per_segment");
  w.value(static_cast<std::uint64_t>(cfg.mnp.packets_per_segment));
  w.key("payload_bytes");
  w.value(static_cast<std::uint64_t>(cfg.mnp.payload_bytes));
  w.key("pipelining");
  w.value(cfg.mnp.pipelining);
  w.key("max_sim_time_us");
  w.value(static_cast<std::int64_t>(cfg.max_sim_time));
  w.key("boot_jitter_us");
  w.value(static_cast<std::int64_t>(cfg.boot_jitter));
  // Schema v2: which fault schedule (if any) shaped this run. The event
  // count pins the parsed scenario, not just its label.
  w.key("scenario");
  w.value(cfg.scenario.empty() ? std::string_view{}
                               : std::string_view(cfg.scenario.name()));
  w.key("scenario_events");
  w.value(static_cast<std::uint64_t>(cfg.scenario.events().size()));
  w.end_object();
}

}  // namespace

void write_run_manifest(std::ostream& os, const ExperimentConfig& cfg,
                        std::uint64_t first_seed, std::size_t runs,
                        const Observation& observation) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema_version");
  w.value(obs::kTelemetrySchemaVersion);
  w.key("tool");
  w.value("mnp_sim");
  w.key("git_describe");
  w.value(MNP_GIT_DESCRIBE);
  w.key("config");
  write_config(w, cfg);
  w.key("seeds");
  w.begin_object();
  w.key("first");
  w.value(first_seed);
  w.key("runs");
  w.value(static_cast<std::uint64_t>(runs));
  w.end_object();
  w.key("node_count");
  w.value(static_cast<std::uint64_t>(observation.node_count));
  w.key("dropped_events");
  w.value(observation.log.dropped());
  // Only audited runs carry the field, so every pre-audit golden manifest
  // stays byte-identical.
  if (observation.with_audit) {
    char chain[17];
    std::snprintf(chain, sizeof(chain), "%016llx",
                  static_cast<unsigned long long>(observation.audit.chain()));
    w.key("audit");
    w.begin_object();
    w.key("events");
    w.value(static_cast<std::uint64_t>(observation.audit.records().size()));
    w.key("chain");
    w.value(chain);
    w.end_object();
  }
  w.key("metrics");
  observation.metrics.write_json(w);
  w.end_object();
  os << w.str() << '\n';
}

bool ObsCli::parse_arg(int argc, char** argv, int& i) {
  const auto take_value = [&](std::string& into) {
    if (i + 1 >= argc) {
      std::cerr << argv[i] << " requires a path argument\n";
      std::exit(2);
    }
    into = argv[++i];
    return true;
  };
  if (!std::strcmp(argv[i], "--trace-out")) return take_value(trace_path);
  if (!std::strcmp(argv[i], "--metrics-out")) return take_value(metrics_path);
  if (!std::strcmp(argv[i], "--audit-out")) return take_value(audit_path);
  return false;
}

ObsCli parse_obs_args(int argc, char** argv) {
  ObsCli cli;
  for (int i = 1; i < argc; ++i) {
    if (!cli.parse_arg(argc, argv, i)) {
      std::cerr << "usage: " << argv[0]
                << " [--trace-out PATH] [--metrics-out PATH]"
                << " [--audit-out PATH]\n";
      std::exit(2);
    }
  }
  return cli;
}

bool finish_observation(const ObsCli& cli, const ExperimentConfig& cfg,
                        const Observation& observation) {
  if (!cli.enabled()) return true;
  if (observation.log.dropped() != 0) {
    std::cerr << "event ring overflowed: " << observation.log.dropped()
              << " dropped event(s); raise the Observation trace capacity\n";
    return false;
  }
  return cli.write(cfg, cfg.seed, 1, observation);
}

bool ObsCli::write(const ExperimentConfig& cfg, std::uint64_t first_seed,
                   std::size_t runs, const Observation& observation) const {
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open " << trace_path << " for writing\n";
      return false;
    }
    write_trace_json(out, observation);
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot open " << metrics_path << " for writing\n";
      return false;
    }
    write_run_manifest(out, cfg, first_seed, runs, observation);
  }
  if (!audit_path.empty()) {
    std::ofstream out(audit_path);
    if (!out) {
      std::cerr << "cannot open " << audit_path << " for writing\n";
      return false;
    }
    write_audit_log(out, cfg, observation);
  }
  return true;
}

}  // namespace mnp::harness

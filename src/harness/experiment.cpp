#include "harness/experiment.hpp"

#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "harness/observe.hpp"
#include "mnp/mnp_node.hpp"
#include "mnp/program_image.hpp"
#include "net/tdma_mac.hpp"
#include "node/network.hpp"
#include "scenario/scenario_engine.hpp"
#include "scenario/scenario_link_model.hpp"
#include "sim/audit.hpp"
#include "sim/simulator.hpp"

namespace mnp::harness {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kMnp: return "MNP";
    case Protocol::kDeluge: return "Deluge";
    case Protocol::kMoap: return "MOAP";
    case Protocol::kXnp: return "XNP";
    case Protocol::kNcast: return "NCast";
  }
  return "?";
}

std::uint16_t image_packets_per_segment(const ExperimentConfig& cfg) {
  switch (cfg.protocol) {
    case Protocol::kDeluge:
      return cfg.deluge.packets_per_page;
    case Protocol::kNcast:
      return cfg.ncast.generation_size;
    default:
      // MOAP/XNP stream linearly; segment geometry only shapes the image
      // container, so MNP's layout works for them too.
      return cfg.mnp.packets_per_segment;
  }
}

std::size_t image_payload_bytes(const ExperimentConfig& cfg) {
  switch (cfg.protocol) {
    case Protocol::kMnp: return cfg.mnp.payload_bytes;
    case Protocol::kDeluge: return cfg.deluge.payload_bytes;
    case Protocol::kMoap: return cfg.moap.payload_bytes;
    case Protocol::kXnp: return cfg.xnp.payload_bytes;
    case Protocol::kNcast: return cfg.ncast.payload_bytes;
  }
  return 22;
}

namespace {

void install_protocol(const ExperimentConfig& cfg, node::Network& network,
                      const std::shared_ptr<const core::ProgramImage>& image) {
  for (net::NodeId id = 0; id < network.size(); ++id) {
    const bool is_base = id == cfg.base;
    std::unique_ptr<node::Application> app;
    switch (cfg.protocol) {
      case Protocol::kMnp: {
        auto mnp_app = is_base
                           ? std::make_unique<core::MnpNode>(cfg.mnp, image)
                           : std::make_unique<core::MnpNode>(cfg.mnp);
        if (!cfg.battery_levels.empty() && id < cfg.battery_levels.size()) {
          mnp_app->set_battery_level(cfg.battery_levels[id]);
        }
        app = std::move(mnp_app);
        break;
      }
      case Protocol::kDeluge:
        app = is_base
                  ? std::make_unique<baselines::DelugeNode>(cfg.deluge, image)
                  : std::make_unique<baselines::DelugeNode>(cfg.deluge);
        break;
      case Protocol::kMoap:
        app = is_base ? std::make_unique<baselines::MoapNode>(cfg.moap, image)
                      : std::make_unique<baselines::MoapNode>(cfg.moap);
        break;
      case Protocol::kXnp:
        app = is_base ? std::make_unique<baselines::XnpNode>(cfg.xnp, image)
                      : std::make_unique<baselines::XnpNode>(cfg.xnp);
        break;
      case Protocol::kNcast:
        app = is_base
                  ? std::make_unique<baselines::NcastNode>(cfg.ncast, image)
                  : std::make_unique<baselines::NcastNode>(cfg.ncast);
        break;
    }
    network.node(id).set_application(std::move(app));
  }
}

/// Feeds per-node Application::audit_digest values to the determinism
/// auditor. Stack-local to run_experiment: installed before boot (but
/// after install_protocol, because it caches the application pointers —
/// reboots reuse the same Application object, so the cache stays valid),
/// detached before the Network dies.
class NetworkAuditProbe final : public sim::AuditProbe {
 public:
  explicit NetworkAuditProbe(node::Network& network) {
    apps_.reserve(network.size());
    for (net::NodeId id = 0; id < network.size(); ++id) {
      apps_.push_back(network.node(id).application());
    }
  }
  std::size_t node_count() const override { return apps_.size(); }
  void node_digests(std::uint64_t* out) override {
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      out[i] = apps_[i] != nullptr ? apps_[i]->audit_digest() : 0;
    }
  }

 private:
  std::vector<const node::Application*> apps_;
};

}  // namespace

RunResult run_experiment(const ExperimentConfig& cfg) {
  return run_experiment(cfg, nullptr);
}

RunResult run_experiment(const ExperimentConfig& config,
                         Observation* observation) {
  // A scenario changes protocol behaviour in exactly one way: rebooted
  // nodes must find their download progress in EEPROM, so the journal
  // flags flip on. Fault-free runs keep them off (and keep the repo's
  // exact write-accounting guarantees).
  ExperimentConfig cfg = config;
  const bool scenario_active = !cfg.scenario.empty();
  if (scenario_active) {
    cfg.mnp.journal_progress = true;
    cfg.deluge.journal_progress = true;
    cfg.moap.journal_progress = true;
    cfg.ncast.journal_progress = true;
  }

  sim::Simulator sim(cfg.seed);
  sim.scheduler().set_tie_break(cfg.tie_break);
  // The shared asset is only a construction shortcut: the run always works
  // on a private copy (mobility mutates positions), and a pointer that
  // disagrees with the config fields is ignored rather than trusted.
  const bool shared_grid_ok = cfg.shared_topology != nullptr &&
                              cfg.shared_topology->grid_rows() == cfg.rows &&
                              cfg.shared_topology->grid_cols() == cfg.cols &&
                              cfg.shared_topology->grid_spacing() ==
                                  cfg.spacing_ft;
  net::Topology topo =
      shared_grid_ok ? *cfg.shared_topology
                     : net::Topology::grid(cfg.rows, cfg.cols, cfg.spacing_ft);

  const auto make_links =
      [&cfg, &sim](const net::Topology& owned) -> std::unique_ptr<net::LinkModel> {
    if (cfg.empirical_links) {
      net::EmpiricalLinkModel::Params lp;
      lp.range_ft = cfg.range_ft;
      lp.interference_factor = cfg.interference_factor;
      lp.edge_noise_stddev = cfg.link_noise_stddev;
      return std::make_unique<net::EmpiricalLinkModel>(owned, lp,
                                                       sim.fork_rng(0x11A7ULL));
    }
    return std::make_unique<net::DiskLinkModel>(owned, cfg.range_ft,
                                                cfg.interference_factor);
  };

  // With a scenario the link model is wrapped in the mutable decorator the
  // engine drives; the pointer is captured as the factory runs.
  scenario::ScenarioLinkModel* scenario_links = nullptr;
  node::Network::LinkModelFactory link_factory = make_links;
  if (scenario_active) {
    link_factory = [&make_links, &scenario_links](const net::Topology& owned)
        -> std::unique_ptr<net::LinkModel> {
      auto wrapped = std::make_unique<scenario::ScenarioLinkModel>(
          make_links(owned), owned.size());
      scenario_links = wrapped.get();
      return wrapped;
    };
  }

  node::Node::MacFactory mac_factory;  // null => CSMA
  if (cfg.mac == MacType::kTdma) {
    const std::uint32_t m = net::TdmaMac::tile_for_grid(
        cfg.spacing_ft, cfg.range_ft, cfg.interference_factor);
    mac_factory = [&cfg, m](net::NodeId id, net::Radio& radio,
                            sim::Simulator& s) -> std::unique_ptr<net::Mac> {
      net::TdmaMac::Params mp;
      mp.slot_duration = cfg.tdma_slot;
      mp.frame_slots = m * m;
      mp.my_slot = net::TdmaMac::slot_for(id / cfg.cols, id % cfg.cols, m);
      return std::make_unique<net::TdmaMac>(radio, s.scheduler(), mp);
    };
  }

  node::Network network(sim, std::move(topo), link_factory, cfg.channel, {},
                        mac_factory);

  // Telemetry wiring must precede boot: protocols register their metric
  // handles in Application::start().
  if (observation) {
    observation->node_count = network.size();
    network.attach_observability(
        observation->with_trace ? &observation->log : nullptr,
        &observation->metrics);
  }

  const bool shared_image_ok =
      cfg.shared_image != nullptr && cfg.shared_image->id() == cfg.program_id &&
      cfg.shared_image->total_bytes() == cfg.program_bytes &&
      cfg.shared_image->packets_per_segment() ==
          image_packets_per_segment(cfg) &&
      cfg.shared_image->payload_bytes() == image_payload_bytes(cfg);
  auto image = shared_image_ok
                   ? cfg.shared_image
                   : std::make_shared<const core::ProgramImage>(
                         cfg.program_id, cfg.program_bytes,
                         image_packets_per_segment(cfg),
                         image_payload_bytes(cfg));
  install_protocol(cfg, network, image);

  // Determinism audit: the scheduler reports a state hash at every event
  // boundary. Installed after the applications exist (the probe caches
  // their pointers) but before boot so even the boot jitter is covered;
  // the probe and the scheduler hook are detached before `network` and
  // `sim` go out of scope (the Audit itself lives in the Observation).
  const bool with_audit = observation != nullptr && observation->with_audit;
  std::optional<NetworkAuditProbe> audit_probe;
  if (with_audit) {
    observation->audit.reset();
    audit_probe.emplace(network);
    observation->audit.set_probe(&*audit_probe);
    sim.scheduler().set_audit(&observation->audit);
  }
  const auto detach_audit = [&] {
    if (!with_audit) return;
    observation->audit.set_probe(nullptr);
    sim.scheduler().set_audit(nullptr);
  };

  network.boot_all(cfg.boot_jitter);

  std::optional<scenario::ScenarioEngine> engine;
  if (scenario_active) {
    engine.emplace(cfg.scenario, network, scenario_links, cfg.base);
    std::string scenario_error;
    if (!engine->arm(&scenario_error)) {
      std::fprintf(stderr, "scenario '%s': %s\n", cfg.scenario.name().c_str(),
                   scenario_error.c_str());
      RunResult bad;
      bad.scenario_error = std::move(scenario_error);
      detach_audit();
      return bad;
    }
  }

  // Pre-scheduled cumulative-energy samples for the trace's counter
  // tracks. The sampler lambda reads state but never touches an RNG, so
  // an observed run's protocol behaviour is identical to an unobserved
  // one. Events past the completion time simply never fire.
  const bool sample_energy = observation && observation->with_trace &&
                             observation->energy_sample_interval > 0;
  if (sample_energy) {
    observation->counters.clear();
    observation->counters.reserve(network.size());
    for (net::NodeId id = 0; id < network.size(); ++id) {
      obs::CounterSeries series;
      series.name = "energy_nah";
      series.pid = id;
      observation->counters.push_back(std::move(series));
    }
    // Channel cache-health tracks (row repairs / world invalidations) under
    // the virtual "network" process: spikes line up with mobility bursts
    // and partition edges on the same timeline as the protocol events.
    for (const char* name : {"cache_repairs", "cache_invalidations"}) {
      obs::CounterSeries series;
      series.name = name;
      series.pid = static_cast<std::uint32_t>(network.size());
      series.process = "network";
      observation->counters.push_back(std::move(series));
    }
    node::Network* net_ptr = &network;
    sim::Simulator* sim_ptr = &sim;
    const auto take_sample = [net_ptr, sim_ptr, observation] {
      const sim::Time now = sim_ptr->now();
      const std::size_t n = net_ptr->size();
      for (net::NodeId id = 0; id < n; ++id) {
        observation->counters[id].samples.emplace_back(
            now, net_ptr->node(id).meter().total_nah(now));
      }
      observation->counters[n].samples.emplace_back(
          now, static_cast<double>(net_ptr->channel().cache_repairs()));
      observation->counters[n + 1].samples.emplace_back(
          now, static_cast<double>(net_ptr->channel().cache_invalidations()));
    };
    // Bounded so a pathological interval cannot flood the event queue.
    const sim::Time interval = observation->energy_sample_interval;
    std::size_t scheduled = 0;
    for (sim::Time t = 0; t <= cfg.max_sim_time && scheduled < 20000;
         t += interval, ++scheduled) {
      sim.scheduler().post_at(t, take_sample);
    }
  }

  node::StatsCollector& stats = network.stats();

  // Live-progress samples (fleet-service streaming): same pattern as the
  // energy sampler above — pre-scheduled read-only callbacks that cannot
  // perturb the protocol trajectory, bounded so a tiny interval cannot
  // flood the queue. Events past the completion time never fire.
  if (observation && observation->on_progress &&
      observation->progress_interval > 0) {
    node::Network* net_ptr = &network;
    sim::Simulator* sim_ptr = &sim;
    const auto sample_progress = [net_ptr, sim_ptr, observation] {
      RunProgress p;
      p.sim_time = sim_ptr->now();
      p.completed_nodes = net_ptr->stats().completed_count();
      p.transmissions = net_ptr->channel().transmissions();
      p.deliveries = net_ptr->channel().deliveries();
      observation->on_progress(p);
    };
    const sim::Time interval = observation->progress_interval;
    std::size_t scheduled = 0;
    for (sim::Time t = interval; t <= cfg.max_sim_time && scheduled < 20000;
         t += interval, ++scheduled) {
      sim.scheduler().post_at(t, sample_progress);
    }
  }

  if (engine) {
    // Fault runs cannot stop at "everyone completed": a node may complete,
    // crash, and still have a reboot pending — and a partition window must
    // fully elapse so its closing edge lands in the trace.
    sim.run_until_condition(cfg.max_sim_time,
                            [&engine] { return engine->converged(); });
  } else {
    sim.run_until_condition(cfg.max_sim_time,
                            [&stats] { return stats.all_completed(); });
  }

  // ---- observation capture (before any verification EEPROM reads) -------
  if (observation) {
    network.publish_energy_metrics(sim.now());
    obs::MetricsRegistry& m = observation->metrics;
    m.set(m.register_gauge("run.completed_nodes", obs::Unit::kCount, false),
          static_cast<double>(stats.completed_count()));
    m.set(m.register_gauge("run.sim_time_us", obs::Unit::kMicroseconds, false),
          static_cast<double>(sim.now()));
    if (sample_energy) {
      // Close each energy/cache track at the instant the run ended.
      const sim::Time now = sim.now();
      for (net::NodeId id = 0; id < network.size(); ++id) {
        auto& samples = observation->counters[id].samples;
        if (samples.empty() || samples.back().first < now) {
          samples.emplace_back(now, network.node(id).meter().total_nah(now));
        }
      }
      const double cache_finals[2] = {
          static_cast<double>(network.channel().cache_repairs()),
          static_cast<double>(network.channel().cache_invalidations())};
      for (std::size_t c = 0; c < 2; ++c) {
        auto& samples = observation->counters[network.size() + c].samples;
        if (samples.empty() || samples.back().first < now) {
          samples.emplace_back(now, cache_finals[c]);
        }
      }
    }
    if (observation->with_trace && !stats.timeline().empty()) {
      // Per-minute message-class rates as counter tracks under a virtual
      // "network" process (pid = node count; real pids are node ids).
      static const char* kClassSeries[4] = {
          "msgs_per_min_adv", "msgs_per_min_req", "msgs_per_min_data",
          "msgs_per_min_other"};
      const auto& tl = stats.timeline();
      const std::int64_t last_minute = tl.rbegin()->first;
      for (std::size_t c = 0; c < 4; ++c) {
        obs::CounterSeries series;
        series.name = kClassSeries[c];
        series.pid = static_cast<std::uint32_t>(network.size());
        series.process = "network";
        for (std::int64_t minute = 0; minute <= last_minute; ++minute) {
          const auto it = tl.find(minute);
          series.samples.emplace_back(
              minute * sim::minutes(1),
              it == tl.end() ? 0.0 : static_cast<double>(it->second[c]));
        }
        observation->counters.push_back(std::move(series));
      }
    }
  }

  // ---- capture metrics (before any verification EEPROM reads) -----------
  RunResult result;
  result.rows = cfg.rows;
  result.cols = cfg.cols;
  result.measured_at = sim.now();
  result.all_completed = stats.all_completed();
  result.completed_count = stats.completed_count();
  result.completion_time = stats.completion_time();
  result.sender_order = stats.sender_order();
  result.timeline = stats.timeline();
  result.transmissions = network.channel().transmissions();
  result.deliveries = network.channel().deliveries();
  result.collisions = network.channel().collisions();
  result.bulk_overlaps = network.channel().concurrent_bulk_overlaps();
  if (engine) {
    result.scenario_injected = engine->injected();
    for (net::NodeId id = 0; id < network.size(); ++id) {
      if (network.node(id).is_dead()) ++result.dead_nodes;
    }
  }

  result.nodes.resize(network.size());
  for (net::NodeId id = 0; id < network.size(); ++id) {
    const node::NodeStats& ns = stats.node(id);
    node::Node& n = network.node(id);
    NodeResult& out = result.nodes[id];
    out.completion = ns.completion_time;
    out.active_radio = n.meter().active_radio_time(sim.now());
    out.active_radio_after_first_adv =
        n.meter().active_radio_time_after_first_adv(sim.now());
    out.parent = ns.parent;
    out.became_sender = ns.became_sender;
    out.tx_total = ns.total_sent();
    out.rx_total = ns.total_received();
    out.tx_adv = ns.sent_of(net::PacketType::kAdvertisement) +
                 ns.sent_of(net::PacketType::kDelugeSummary) +
                 ns.sent_of(net::PacketType::kMoapPublish) +
                 ns.sent_of(net::PacketType::kNcastAdv);
    out.tx_req = ns.sent_of(net::PacketType::kDownloadRequest) +
                 ns.sent_of(net::PacketType::kDelugeRequest) +
                 ns.sent_of(net::PacketType::kMoapSubscribe) +
                 ns.sent_of(net::PacketType::kMoapNack) +
                 ns.sent_of(net::PacketType::kXnpFixRequest) +
                 ns.sent_of(net::PacketType::kNcastRequest);
    out.tx_data = ns.sent_of(net::PacketType::kData) +
                  ns.sent_of(net::PacketType::kDelugeData) +
                  ns.sent_of(net::PacketType::kMoapData) +
                  ns.sent_of(net::PacketType::kXnpData) +
                  ns.sent_of(net::PacketType::kNcastCoded);
    out.eeprom_writes = n.eeprom().total_writes();
    out.collisions_suffered = ns.collisions_suffered;
    out.energy_nah = n.meter().total_nah(sim.now());
  }

  // ---- verify images byte-exactly (accuracy requirement) ----------------
  for (net::NodeId id = 0; id < network.size(); ++id) {
    if (id == cfg.base) {
      result.nodes[id].image_verified = true;
      continue;
    }
    if (result.nodes[id].completion < 0) continue;
    auto stored = network.node(id).eeprom().read(0, image->total_bytes());
    result.nodes[id].image_verified = image->matches(stored);
  }
  detach_audit();
  return result;
}

}  // namespace mnp::harness

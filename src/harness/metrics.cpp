#include "harness/metrics.hpp"

namespace mnp::harness {

double RunResult::avg_active_radio_s() const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& n : nodes) total += sim::to_seconds(n.active_radio);
  return total / static_cast<double>(nodes.size());
}

double RunResult::avg_active_radio_after_adv_s() const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& n : nodes) {
    total += sim::to_seconds(n.active_radio_after_first_adv);
  }
  return total / static_cast<double>(nodes.size());
}

double RunResult::avg_messages_sent() const {
  if (nodes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& n : nodes) total += static_cast<double>(n.tx_total);
  return total / static_cast<double>(nodes.size());
}

double RunResult::total_energy_nah() const {
  double total = 0.0;
  for (const auto& n : nodes) total += n.energy_nah;
  return total;
}

std::size_t RunResult::verified_count() const {
  std::size_t count = 0;
  for (const auto& n : nodes) {
    if (n.image_verified) ++count;
  }
  return count;
}

}  // namespace mnp::harness

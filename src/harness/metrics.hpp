// Result structures produced by the experiment harness.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace mnp::harness {

struct NodeResult {
  sim::Time completion = sim::kNever;
  sim::Time active_radio = 0;                   // Fig. 8
  sim::Time active_radio_after_first_adv = 0;   // Fig. 9
  int parent = -1;                              // Figs. 5-7
  sim::Time became_sender = sim::kNever;

  std::uint64_t tx_total = 0;   // Fig. 11 (left)
  std::uint64_t rx_total = 0;   // Fig. 11 (right)
  std::uint64_t tx_data = 0;
  std::uint64_t tx_adv = 0;
  std::uint64_t tx_req = 0;
  std::uint64_t eeprom_writes = 0;
  std::uint64_t collisions_suffered = 0;
  double energy_nah = 0.0;      // Table-1 pricing of the whole run
  bool image_verified = false;  // byte-exact against the oracle
};

struct RunResult {
  std::size_t rows = 0;
  std::size_t cols = 0;

  bool all_completed = false;
  std::size_t completed_count = 0;
  /// Time the last node completed; kNever if not everyone did.
  sim::Time completion_time = sim::kNever;
  /// Simulation clock when metrics were captured (== completion_time on a
  /// fully successful run).
  sim::Time measured_at = 0;

  std::vector<NodeResult> nodes;
  std::vector<net::NodeId> sender_order;
  /// timeline[minute][class]: transmitted messages per minute per class
  /// (0 = advertisement-like, 1 = request-like, 2 = data, 3 = other).
  std::map<std::int64_t, std::array<std::uint64_t, 4>> timeline;

  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  /// Concurrent bulk-sender overlaps (the sender-selection invariant).
  std::uint64_t bulk_overlaps = 0;

  // --- scenario outcomes (zero on fault-free runs) ---------------------
  /// Nodes still dead when the run ended.
  std::size_t dead_nodes = 0;
  /// World mutations the scenario engine injected.
  std::uint64_t scenario_injected = 0;
  /// Non-empty when the scenario failed validation; the run is aborted
  /// before boot and every other field is default.
  std::string scenario_error;

  // --- aggregates -----------------------------------------------------
  double avg_active_radio_s() const;
  double avg_active_radio_after_adv_s() const;
  double avg_messages_sent() const;
  double total_energy_nah() const;
  std::size_t verified_count() const;
};

}  // namespace mnp::harness

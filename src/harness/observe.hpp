// Observation plumbing for the experiment harness (DESIGN.md section 9):
// the telemetry bundle a run publishes into, the run-manifest JSON behind
// --metrics-out, and the Perfetto trace behind --trace-out.
//
// One Observation serves both a single run and a whole sweep: run_sweep
// merges each seed's metrics into it in seed order (so a --jobs 4 sweep
// writes the byte-identical manifest a --jobs 1 sweep does) and keeps the
// first seed's event log as the representative trace.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "sim/audit.hpp"
#include "trace/event_log.hpp"

namespace mnp::harness {

/// Build stamp (CMake `git describe`): the provenance string the run
/// manifest carries and the fleet service serves from GET /version.
const char* build_git_describe();

/// One live-progress sample of an in-flight run (Observation::on_progress).
struct RunProgress {
  sim::Time sim_time = 0;
  std::size_t completed_nodes = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
};

/// Telemetry captured for one observed run (or merged over a sweep).
struct Observation {
  /// `trace_capacity` bounds the event ring; events beyond it are evicted
  /// FIFO and surface as "dropped_events" in both JSON outputs (never
  /// silently — see EventLog::dropped). The ring only allocates as events
  /// arrive, so the default is sized for the repo's largest figure run
  /// (20x20 grid, 5 segments: ~1.75M events) with ample headroom.
  explicit Observation(std::size_t trace_capacity = std::size_t{1} << 22)
      : log(trace_capacity) {}

  obs::MetricsRegistry metrics;
  trace::EventLog log;
  /// Capture the trace side (event log + counter samples); metrics are
  /// always collected. Sweeps trace only their first seed.
  bool with_trace = true;
  /// Cadence of the per-node cumulative-energy counter samples fed into
  /// the trace (0 disables sampling).
  sim::Time energy_sample_interval = sim::sec(10);
  /// Counter tracks assembled by run_experiment: per-node energy plus the
  /// per-minute message-class rates under a virtual "network" process.
  std::vector<obs::CounterSeries> counters;
  /// Node count of the observed network (run_experiment fills it in; the
  /// trace track layout needs it).
  std::size_t node_count = 0;
  /// Live-progress hook (fleet-service metric streaming): when set and
  /// `progress_interval` > 0, run_experiment samples completion state on
  /// that cadence from inside the simulation, exactly like the energy
  /// sampler — the callback reads counters only and never touches an RNG,
  /// so a streamed run's protocol trajectory (and its exported metrics)
  /// stays bit-identical to an unstreamed one. Called on the thread
  /// running the simulation.
  std::function<void(const RunProgress&)> on_progress;
  sim::Time progress_interval = 0;
  /// Run the determinism auditor (DESIGN.md section 12): the scheduler
  /// records a state hash per executed event into `audit`. Off by default;
  /// audited runs pay one node-digest sweep per event.
  bool with_audit = false;
  sim::Audit audit;
};

/// Writes the Perfetto/Chrome trace-event JSON for an observed run.
void write_trace_json(std::ostream& os, const Observation& observation);

/// Writes the audit log behind --audit-out: a "# mnp-audit v1" header, one
/// meta line (seed, node count, tie-break, record count, final chain) and
/// one "rec <index> <time> <node> <pending> <nodes> <chain>" line per
/// executed event, hashes in fixed-width hex. `mnp_bisect` diffs two of
/// these to locate the first diverging event.
void write_audit_log(std::ostream& os, const ExperimentConfig& cfg,
                     const Observation& observation);

/// Writes the run-manifest JSON: schema_version, git describe, the
/// experiment configuration, the seed range, dropped_events and the full
/// metrics snapshot. Deterministic: fixed key order, fixed number
/// formats, metrics sorted by name.
void write_run_manifest(std::ostream& os, const ExperimentConfig& cfg,
                        std::uint64_t first_seed, std::size_t runs,
                        const Observation& observation);

/// Shared --trace-out/--metrics-out handling for the CLI and fig benches.
struct ObsCli {
  std::string trace_path;
  std::string metrics_path;
  std::string audit_path;

  /// Consumes "--trace-out PATH", "--metrics-out PATH" or
  /// "--audit-out PATH" at argv[i]; returns true (with `i` advanced past
  /// the value) when matched.
  bool parse_arg(int argc, char** argv, int& i);
  bool enabled() const {
    return !trace_path.empty() || !metrics_path.empty() || !audit_path.empty();
  }
  /// The run must enable Observation::with_audit when an audit log was
  /// requested.
  bool wants_audit() const { return !audit_path.empty(); }

  /// Writes whichever files were requested. Returns false (after a
  /// message on stderr) when a file cannot be opened.
  bool write(const ExperimentConfig& cfg, std::uint64_t first_seed,
             std::size_t runs, const Observation& observation) const;
};

/// Argv handling for fig benches, which accept only the observability
/// flags: exits 2 with a usage line on anything unrecognised.
ObsCli parse_obs_args(int argc, char** argv);

/// Bench epilogue for one observed configuration: fails (message on
/// stderr) if the run overflowed the event ring — figure configurations
/// must never drop telemetry silently — then writes any requested
/// outputs. Benches with several configurations call this once per run,
/// so every configuration gets the overflow check and the files end up
/// describing the figure's last run. No-op when no flags were given.
bool finish_observation(const ObsCli& cli, const ExperimentConfig& cfg,
                        const Observation& observation);

}  // namespace mnp::harness

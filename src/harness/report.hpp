// Report rendering: turns a RunResult into the pictures/tables the paper
// prints. Every bench binary is a thin wrapper over these.
#pragma once

#include <iosfwd>
#include <vector>

#include "harness/metrics.hpp"
#include "net/packet.hpp"

namespace mnp::harness {

/// One-paragraph run summary (completion, ART, messages, reliability).
void print_summary(std::ostream& os, const char* title, const RunResult& r);

/// Figs. 5-7: parent arrows on the deployment grid plus the order in which
/// nodes became senders.
void print_parent_map(std::ostream& os, const RunResult& r, net::NodeId base);
void print_sender_order(std::ostream& os, const RunResult& r);

/// Figs. 8-9: per-node active radio time (total and after first
/// advertisement), as a table keyed by node id and as a location heat map.
void print_active_radio(std::ostream& os, const RunResult& r);

/// Fig. 11: transmission / reception counts by grid location.
void print_tx_rx_distribution(std::ostream& os, const RunResult& r);

/// Fig. 12: per-minute message counts by class.
void print_timeline(std::ostream& os, const RunResult& r);

/// Fig. 13: completion wavefront at the given fractions of total time.
void print_propagation_snapshots(std::ostream& os, const RunResult& r,
                                 const std::vector<double>& fractions);

}  // namespace mnp::harness

#include "node/network.hpp"

#include <utility>

namespace mnp::node {

Network::Network(sim::Simulator& sim, net::Topology topology,
                 const LinkModelFactory& make_links,
                 net::Channel::Params channel_params,
                 energy::EnergyModel energy_model,
                 const Node::MacFactory& mac_factory)
    : sim_(sim),
      topology_(std::move(topology)),
      links_(make_links(topology_)),
      stats_(topology_.size()),
      channel_(sim, topology_, *links_, channel_params) {
  channel_.set_observer(&stats_);
  nodes_.reserve(topology_.size());
  for (std::size_t i = 0; i < topology_.size(); ++i) {
    nodes_.push_back(std::make_unique<Node>(
        static_cast<net::NodeId>(i), sim, channel_, stats_, energy_model,
        storage::Eeprom::kDefaultCapacity, mac_factory));
  }
}

void Network::boot_all(sim::Time max_jitter) {
  sim::Rng boot_rng = sim_.fork_rng(0xB007ULL);
  for (auto& n : nodes_) {
    const sim::Time offset = boot_rng.uniform_int(0, max_jitter);
    Node* raw = n.get();
    sim_.scheduler().post_after(offset, [raw] { raw->boot(); });
  }
}

void Network::attach_observability(trace::EventLog* log,
                                   obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  stats_.set_event_log(log);
  stats_.set_metrics(metrics);
  if (metrics) {
    metrics->set_node_count(size());
    channel_.attach_metrics(*metrics);
  }
  for (auto& n : nodes_) {
    if (metrics) n->mac().attach_metrics(*metrics);
    if (log) {
      const net::NodeId id = n->id();
      n->radio().set_state_listener([log, id](bool on, sim::Time now) {
        log->record(now, id,
                    on ? trace::EventKind::kRadioOn
                       : trace::EventKind::kRadioOff);
      });
    }
  }
}

void Network::publish_energy_metrics(sim::Time now) {
  if (!metrics_) return;
  for (auto& n : nodes_) {
    n->meter().publish(*metrics_, n->id(), now);
  }
}

std::size_t Network::complete_image_count() const {
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    const Application* app = n->application();
    if (app && app->has_complete_image()) ++count;
  }
  return count;
}

}  // namespace mnp::node

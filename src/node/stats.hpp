// Run-wide statistics: everything the paper's evaluation section measures.
//
// The collector observes the channel (per-type tx/rx counts, collisions,
// per-minute message timeline — Figs. 11 and 12) and receives protocol
// callbacks (completion times, parents, sender order — Figs. 5-7 and 13;
// active radio time comes from the per-node EnergyMeter at read-out).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "net/channel.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "trace/event_log.hpp"

namespace mnp::node {

struct NodeStats {
  std::map<net::PacketType, std::uint64_t> sent;
  std::map<net::PacketType, std::uint64_t> received;
  std::uint64_t collisions_suffered = 0;

  sim::Time completion_time = sim::kNever;  // full image verified
  sim::Time became_sender = sim::kNever;    // first entered Forward
  int parent = -1;                          // last parent set (-1: none)
  std::vector<sim::Time> segment_completion;  // index = segment-1

  std::uint64_t total_sent() const;
  std::uint64_t total_received() const;
  std::uint64_t sent_of(net::PacketType t) const;
  std::uint64_t received_of(net::PacketType t) const;
};

/// Message categories for the Fig.-12 per-minute timeline.
enum class MsgClass : std::size_t { kAdvertisement = 0, kRequest = 1, kData = 2, kOther = 3 };
net::PacketType representative(MsgClass c);
MsgClass classify(net::PacketType t);

class StatsCollector final : public net::ChannelObserver {
 public:
  explicit StatsCollector(std::size_t node_count);

  // --- ChannelObserver -----------------------------------------------------
  void on_transmit(net::NodeId src, const net::Packet& pkt, sim::Time now) override;
  void on_deliver(net::NodeId src, net::NodeId dst, const net::Packet& pkt,
                  sim::Time now) override;
  void on_collision(net::NodeId victim, sim::Time now) override;

  // --- protocol hooks ------------------------------------------------------
  void on_completed(net::NodeId id, sim::Time now);
  void on_segment_completed(net::NodeId id, std::uint16_t seg, sim::Time now);
  void on_parent_set(net::NodeId id, net::NodeId parent);
  void on_became_sender(net::NodeId id, sim::Time now);

  /// Optional protocol event log; when attached, traffic and completion
  /// events are recorded (protocols add their own state transitions).
  /// Receive events carry the sender in the detail ("Data<5") so the trace
  /// exporter can draw flow arrows.
  void set_event_log(trace::EventLog* log) { event_log_ = log; }
  trace::EventLog* event_log() const { return event_log_; }

  /// Optional metrics registry; when attached, completion milestones are
  /// mirrored into node.* counters, and protocols reach the registry here
  /// (via Node::stats()) to register their own handles.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // --- queries ---------------------------------------------------------
  const NodeStats& node(net::NodeId id) const { return nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }

  /// Number of nodes holding the complete image.
  std::size_t completed_count() const { return completed_; }
  bool all_completed() const { return completed_ == nodes_.size(); }
  /// Time the last node completed (kNever until all_completed()).
  sim::Time completion_time() const;

  /// Nodes in the order they first became senders (paper Figs. 5-7 mark
  /// this order on the grid).
  const std::vector<net::NodeId>& sender_order() const { return sender_order_; }

  /// Per-minute transmitted-message counts by class (Fig. 12).
  /// timeline()[minute][class]; trailing minutes may be absent.
  const std::map<std::int64_t, std::array<std::uint64_t, 4>>& timeline() const {
    return timeline_;
  }

 private:
  trace::EventLog* event_log_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_completions_;
  obs::MetricsRegistry::Counter m_segments_;
  std::vector<NodeStats> nodes_;
  std::size_t completed_ = 0;
  std::vector<net::NodeId> sender_order_;
  std::map<std::int64_t, std::array<std::uint64_t, 4>> timeline_;
};

}  // namespace mnp::node

// Application interface: what a protocol implementation looks like to the
// mote runtime. A Node (node.hpp) provides the TinyOS-ish services —
// timers, radio control, packet send, EEPROM — and forwards decoded
// packets here.
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace mnp::node {

class Node;

class Application {
 public:
  virtual ~Application() = default;

  /// Called once when the mote boots. `node` outlives the application and
  /// is the handle to every runtime service.
  virtual void start(Node& node) = 0;

  /// Called for every packet the radio decoded while listening.
  virtual void on_packet(const net::Packet& pkt) = 0;

  /// True once this application holds the complete, verified program
  /// image (used by harnesses to decide when dissemination finished).
  virtual bool has_complete_image() const = 0;

  /// Called by Node::reboot() before start() runs again: drop every piece
  /// of volatile state (pending timers, caches, the protocol state
  /// machine) as a power cycle would. EEPROM contents survive — protocols
  /// that journal progress there recover it in start(). The default is a
  /// no-op for applications without timers or state.
  virtual void reset_for_reboot() {}

  /// FNV-1a fold of the protocol-visible state — the state-machine enum,
  /// progress counters and journal cursor — for the determinism auditor
  /// (sim::Audit, DESIGN.md section 12). Must be a pure function of
  /// protocol state: no addresses, no wall-clock, nothing allocation-order
  /// dependent. Applications that opt out report a constant.
  virtual std::uint64_t audit_digest() const { return 0; }
};

}  // namespace mnp::node

#include "node/application.hpp"

// Interface-only TU: keeps the vtable anchored in one object file.
namespace mnp::node {}

// Network: the full assembly — topology, link model, channel, stats and
// one Node per position. This is the object examples and benches build.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/link_model.hpp"
#include "net/topology.hpp"
#include "node/node.hpp"
#include "node/stats.hpp"
#include "sim/simulator.hpp"

namespace mnp::node {

class Network {
 public:
  /// The link model is created *after* the network owns the topology (link
  /// models hold a reference to it), hence the factory.
  using LinkModelFactory =
      std::function<std::unique_ptr<net::LinkModel>(const net::Topology&)>;

  Network(sim::Simulator& sim, net::Topology topology,
          const LinkModelFactory& make_links,
          net::Channel::Params channel_params = {},
          energy::EnergyModel energy_model = {},
          const Node::MacFactory& mac_factory = nullptr);

  std::size_t size() const { return nodes_.size(); }
  Node& node(net::NodeId id) { return *nodes_.at(id); }
  const Node& node(net::NodeId id) const { return *nodes_.at(id); }

  const net::Topology& topology() const { return topology_; }
  /// Scenario mobility hook: moves one node. Topology::version() bumps,
  /// so the channel's cached adjacency rebuilds on its next query instead
  /// of silently keeping stale reach bitsets.
  void move_node(net::NodeId id, net::Position p) {
    topology_.set_position(id, p);
  }
  net::Channel& channel() { return channel_; }
  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }

  /// Boots every node, each at an independent random offset within
  /// [0, max_jitter] — motes in the field never power up simultaneously.
  void boot_all(sim::Time max_jitter = sim::msec(500));

  /// Wires the whole assembly for telemetry in one call (DESIGN.md
  /// section 9): the stats collector records into `log` (nullable), the
  /// channel, every MAC and the completion milestones publish into
  /// `metrics` (nullable, node count set here), and every radio logs its
  /// on/off flips so the trace exporter can draw radio-duty slices.
  /// Call before boot_all(); attaching mid-run loses prior history.
  void attach_observability(trace::EventLog* log,
                            obs::MetricsRegistry* metrics);

  /// End-of-run capture: every node's energy meter publishes its gauges
  /// into the attached registry at time `now`. No-op when metrics were
  /// never attached.
  void publish_energy_metrics(sim::Time now);

  /// Number of nodes whose application reports a complete image.
  std::size_t complete_image_count() const;

 private:
  sim::Simulator& sim_;
  net::Topology topology_;
  std::unique_ptr<net::LinkModel> links_;
  StatsCollector stats_;
  net::Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace mnp::node

// A mote: radio + CSMA MAC + EEPROM + energy meter + one application.
//
// The Node is the "operating system" facade handed to protocol code: it
// stamps outgoing packets, exposes timers backed by the simulation
// scheduler, and wires radio receptions into Application::on_packet.
#pragma once

#include <memory>

#include "energy/energy_meter.hpp"
#include "net/csma_mac.hpp"
#include "net/channel.hpp"
#include "net/radio.hpp"
#include "node/application.hpp"
#include "sim/simulator.hpp"
#include "storage/eeprom.hpp"

namespace mnp::node {

class StatsCollector;

class Node {
 public:
  /// Builds this node's MAC once the radio exists. A null factory means
  /// the default CSMA MAC.
  using MacFactory = std::function<std::unique_ptr<net::Mac>(
      net::NodeId, net::Radio&, sim::Simulator&)>;

  Node(net::NodeId id, sim::Simulator& sim, net::Channel& channel,
       StatsCollector& stats, energy::EnergyModel energy_model = {},
       std::size_t eeprom_capacity = storage::Eeprom::kDefaultCapacity,
       const MacFactory& mac_factory = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Installs the protocol. Must be called before boot().
  void set_application(std::unique_ptr<Application> app);

  /// Boots the mote: radio on, application started.
  void boot();

  // --- services exposed to the application --------------------------------
  net::NodeId id() const { return id_; }
  sim::Time now() const { return sim_.now(); }

  /// One-shot timer; cancel via the returned handle.
  sim::EventHandle schedule(sim::Time delay, sim::Scheduler::Action action) {
    return sim_.scheduler().schedule_after(delay, std::move(action));
  }

  /// Queues `pkt` on the MAC (src is stamped here). Returns false if
  /// dropped (queue full / radio off). The packet is wrapped exactly once
  /// into a shared frame; it is never copied again on its way to the air.
  bool send(net::Packet pkt);

  /// The channel-wide frame/payload pool. Protocols stream code packets by
  /// filling pool buffers (acquire_payload) so steady-state sends recycle
  /// instead of allocating.
  net::FramePool& frame_pool() { return radio_.channel().frame_pool(); }

  void radio_on() {
    if (!dead_) radio_.turn_on();
  }
  void radio_off();
  bool radio_is_on() const { return radio_.is_on(); }

  /// Fault injection: the mote dies (battery pulled / crashed). The radio
  /// goes silent permanently; pending application timers still fire but
  /// can neither send nor receive — exactly the failure mode the paper's
  /// download timeout exists for ("the sender dies as it is sending
  /// packets").
  void kill();
  bool is_dead() const { return dead_; }

  /// Power-cycles a dead mote: volatile application state is discarded
  /// (Application::reset_for_reboot), EEPROM survives, and the node boots
  /// again — the paper's "failed nodes rejoin and resume" path. No-op on
  /// a live node.
  void reboot();

  net::Mac& mac() { return *mac_; }
  net::Radio& radio() { return radio_; }
  storage::Eeprom& eeprom() { return eeprom_; }
  energy::EnergyMeter& meter() { return meter_; }
  sim::Rng& rng() { return rng_; }
  StatsCollector& stats() { return stats_; }
  Application* application() { return app_.get(); }
  const Application* application() const { return app_.get(); }

 private:
  net::NodeId id_;
  sim::Simulator& sim_;
  StatsCollector& stats_;
  energy::EnergyMeter meter_;
  net::Radio radio_;
  std::unique_ptr<net::Mac> mac_;
  storage::Eeprom eeprom_;
  sim::Rng rng_;
  std::unique_ptr<Application> app_;
  bool dead_ = false;
};

}  // namespace mnp::node

#include "node/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace mnp::node {

std::uint64_t NodeStats::total_sent() const {
  std::uint64_t n = 0;
  for (const auto& [type, count] : sent) n += count;
  return n;
}

std::uint64_t NodeStats::total_received() const {
  std::uint64_t n = 0;
  for (const auto& [type, count] : received) n += count;
  return n;
}

std::uint64_t NodeStats::sent_of(net::PacketType t) const {
  auto it = sent.find(t);
  return it == sent.end() ? 0 : it->second;
}

std::uint64_t NodeStats::received_of(net::PacketType t) const {
  auto it = received.find(t);
  return it == received.end() ? 0 : it->second;
}

MsgClass classify(net::PacketType t) {
  using net::PacketType;
  switch (t) {
    case PacketType::kAdvertisement:
    case PacketType::kDelugeSummary:
    case PacketType::kMoapPublish:
    case PacketType::kNcastAdv:
      return MsgClass::kAdvertisement;
    case PacketType::kDownloadRequest:
    case PacketType::kRepairRequest:
    case PacketType::kDelugeRequest:
    case PacketType::kMoapSubscribe:
    case PacketType::kMoapNack:
    case PacketType::kXnpFixRequest:
    case PacketType::kNcastRequest:
      return MsgClass::kRequest;
    case PacketType::kData:
    case PacketType::kDelugeData:
    case PacketType::kMoapData:
    case PacketType::kXnpData:
    case PacketType::kNcastCoded:
      return MsgClass::kData;
    default:
      return MsgClass::kOther;
  }
}

net::PacketType representative(MsgClass c) {
  switch (c) {
    case MsgClass::kAdvertisement: return net::PacketType::kAdvertisement;
    case MsgClass::kRequest: return net::PacketType::kDownloadRequest;
    case MsgClass::kData: return net::PacketType::kData;
    case MsgClass::kOther: return net::PacketType::kQuery;
  }
  return net::PacketType::kQuery;
}

StatsCollector::StatsCollector(std::size_t node_count) : nodes_(node_count) {}

void StatsCollector::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (!metrics_) return;
  m_completions_ =
      metrics_->register_counter("node.completions", obs::Unit::kCount, true);
  m_segments_ = metrics_->register_counter("node.segments_completed",
                                           obs::Unit::kCount, true);
}

void StatsCollector::on_transmit(net::NodeId src, const net::Packet& pkt,
                                 sim::Time now) {
  if (src < nodes_.size()) ++nodes_[src].sent[pkt.type()];
  const std::int64_t minute = now / sim::minutes(1);
  ++timeline_[minute][static_cast<std::size_t>(classify(pkt.type()))];
  if (event_log_) {
    event_log_->record(now, src, trace::EventKind::kPacketSent,
                       std::string_view(net::type_name(pkt.type())));
  }
}

void StatsCollector::on_deliver(net::NodeId src, net::NodeId dst,
                                const net::Packet& pkt, sim::Time now) {
  if (dst < nodes_.size()) ++nodes_[dst].received[pkt.type()];
  if (event_log_) {
    // "Data<5" — type plus sender, so the trace exporter can pair this
    // delivery with node 5's transmission and draw a flow arrow. Stack
    // buffer: fits kInlineDetail, never allocates.
    char detail[trace::EventLog::kInlineDetail + 1];
    int len = std::snprintf(detail, sizeof(detail), "%s<%u",
                            net::type_name(pkt.type()),
                            static_cast<unsigned>(src));
    if (len < 0) len = 0;
    if (static_cast<std::size_t>(len) >= sizeof(detail)) {
      len = static_cast<int>(sizeof(detail) - 1);
    }
    event_log_->record(now, dst, trace::EventKind::kPacketReceived,
                       std::string_view(detail, static_cast<std::size_t>(len)));
  }
}

void StatsCollector::on_collision(net::NodeId victim, sim::Time /*now*/) {
  if (victim < nodes_.size()) ++nodes_[victim].collisions_suffered;
}

void StatsCollector::on_completed(net::NodeId id, sim::Time now) {
  if (id >= nodes_.size()) return;
  NodeStats& n = nodes_[id];
  if (n.completion_time >= 0) return;  // already recorded
  n.completion_time = now;
  ++completed_;
  if (metrics_) metrics_->add(m_completions_, id);
  if (event_log_) {
    event_log_->record(now, id, trace::EventKind::kImageCompleted);
  }
}

void StatsCollector::on_segment_completed(net::NodeId id, std::uint16_t seg,
                                          sim::Time now) {
  if (id >= nodes_.size() || seg == 0) return;
  auto& v = nodes_[id].segment_completion;
  if (v.size() < seg) v.resize(seg, sim::kNever);
  if (v[seg - 1] < 0) {
    v[seg - 1] = now;
    if (metrics_) metrics_->add(m_segments_, id);
  }
  if (event_log_) {
    event_log_->record(now, id, trace::EventKind::kSegmentCompleted,
                       static_cast<std::uint64_t>(seg));
  }
}

void StatsCollector::on_parent_set(net::NodeId id, net::NodeId parent) {
  if (id < nodes_.size()) nodes_[id].parent = static_cast<int>(parent);
}

void StatsCollector::on_became_sender(net::NodeId id, sim::Time now) {
  if (id >= nodes_.size()) return;
  NodeStats& n = nodes_[id];
  if (n.became_sender >= 0) return;
  n.became_sender = now;
  sender_order_.push_back(id);
}

sim::Time StatsCollector::completion_time() const {
  if (completed_ != nodes_.size()) return sim::kNever;
  sim::Time latest = 0;
  for (const auto& n : nodes_) latest = std::max(latest, n.completion_time);
  return latest;
}

}  // namespace mnp::node

#include "node/node.hpp"

#include <utility>

#include "node/stats.hpp"

namespace mnp::node {

Node::Node(net::NodeId id, sim::Simulator& sim, net::Channel& channel,
           StatsCollector& stats, energy::EnergyModel energy_model,
           std::size_t eeprom_capacity, const MacFactory& mac_factory)
    : id_(id),
      sim_(sim),
      stats_(stats),
      meter_(energy_model),
      radio_(id, sim.scheduler(), channel, meter_),
      mac_(mac_factory
               ? mac_factory(id, radio_, sim)
               : std::make_unique<net::CsmaMac>(
                     radio_, sim.scheduler(), sim.fork_rng(0x3A5Cu + id))),
      eeprom_(eeprom_capacity, &meter_),
      rng_(sim.fork_rng(0x901Du + id)) {
  channel.register_radio(radio_);
  radio_.set_receive_handler([this](const net::Packet& pkt) {
    if (app_) app_->on_packet(pkt);
  });
}

void Node::set_application(std::unique_ptr<Application> app) {
  app_ = std::move(app);
}

void Node::boot() {
  radio_.turn_on();
  if (app_) app_->start(*this);
}

bool Node::send(net::Packet pkt) {
  if (dead_) return false;
  pkt.src = id_;
  // The one place an outgoing packet becomes a shared frame: everything
  // downstream (MAC queue, channel, every receiver) references this copy.
  return mac_->send(frame_pool().adopt(std::move(pkt)));
}

void Node::kill() {
  dead_ = true;
  mac_->flush();
  radio_.turn_off();
}

void Node::reboot() {
  if (!dead_) return;
  dead_ = false;
  // RAM is gone; flash is not. The application wipes its volatile state
  // (cancelling any timers still pending from before the crash), then
  // start() runs the normal cold-boot path and may recover journaled
  // progress from the surviving EEPROM.
  if (app_) app_->reset_for_reboot();
  boot();
}

void Node::radio_off() {
  // Anything still queued was meaningful only in the state we are leaving.
  mac_->flush();
  radio_.turn_off();
}

}  // namespace mnp::node

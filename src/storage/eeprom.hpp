// External flash (EEPROM) model of a Mica-2 mote.
//
// Mica-2/XSM motes carry a 512 KB external flash used as the staging area
// for incoming code images. The model stores bytes, charges the energy
// meter per access, and — because MNP guarantees every packet is written
// exactly once — can be armed to detect double writes to the same range.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "energy/energy_meter.hpp"

namespace mnp::storage {

class Eeprom {
 public:
  static constexpr std::size_t kDefaultCapacity = 512 * 1024;

  /// `meter` may be null (no energy accounting). Not owned.
  explicit Eeprom(std::size_t capacity = kDefaultCapacity,
                  energy::EnergyMeter* meter = nullptr);

  std::size_t capacity() const { return data_.size(); }

  /// Writes `bytes` at `offset`. Returns false (and writes nothing) if the
  /// range falls outside capacity.
  bool write(std::size_t offset, const std::vector<std::uint8_t>& bytes);

  /// Reads `length` bytes at `offset` into a fresh vector; empty on a
  /// range error.
  [[nodiscard]] std::vector<std::uint8_t> read(std::size_t offset,
                                               std::size_t length);

  /// Allocation-free variant: fills `out` (typically a pooled buffer) with
  /// the bytes; leaves it empty on a range error.
  void read_into(std::size_t offset, std::size_t length,
                 std::vector<std::uint8_t>& out);

  /// Erases all content and per-byte write marks (new reprogramming round).
  void erase();

  /// With write-once tracking on, a second write overlapping a previously
  /// written byte bumps `double_writes()` — the MNP invariant violation
  /// counter asserted on in tests.
  void set_track_write_once(bool on) { track_write_once_ = on; }
  std::uint64_t double_writes() const { return double_writes_; }

  std::uint64_t total_writes() const { return total_writes_; }
  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::vector<std::uint8_t> data_;
  std::vector<bool> written_;
  energy::EnergyMeter* meter_;
  bool track_write_once_ = false;
  std::uint64_t double_writes_ = 0;
  std::uint64_t total_writes_ = 0;
  std::uint64_t total_reads_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace mnp::storage

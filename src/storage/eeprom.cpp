#include "storage/eeprom.hpp"

#include <algorithm>

namespace mnp::storage {

Eeprom::Eeprom(std::size_t capacity, energy::EnergyMeter* meter)
    : data_(capacity, 0), written_(capacity, false), meter_(meter) {}

bool Eeprom::write(std::size_t offset, const std::vector<std::uint8_t>& bytes) {
  if (offset > data_.size() || bytes.size() > data_.size() - offset) return false;
  if (track_write_once_) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (written_[offset + i]) {
        ++double_writes_;
        break;
      }
    }
  }
  std::copy(bytes.begin(), bytes.end(), data_.begin() + static_cast<long>(offset));
  std::fill(written_.begin() + static_cast<long>(offset),
            written_.begin() + static_cast<long>(offset + bytes.size()), true);
  ++total_writes_;
  bytes_written_ += bytes.size();
  if (meter_) meter_->count_eeprom_write(bytes.size());
  return true;
}

std::vector<std::uint8_t> Eeprom::read(std::size_t offset, std::size_t length) {
  std::vector<std::uint8_t> out;
  read_into(offset, length, out);
  return out;
}

void Eeprom::read_into(std::size_t offset, std::size_t length,
                       std::vector<std::uint8_t>& out) {
  out.clear();
  if (offset > data_.size() || length > data_.size() - offset) return;
  ++total_reads_;
  if (meter_) meter_->count_eeprom_read(length);
  out.insert(out.end(), data_.begin() + static_cast<long>(offset),
             data_.begin() + static_cast<long>(offset + length));
}

void Eeprom::erase() {
  std::fill(data_.begin(), data_.end(), std::uint8_t{0});
  std::fill(written_.begin(), written_.end(), false);
}

}  // namespace mnp::storage

// MnpNode: the MNP protocol (the paper's primary contribution), one
// instance per mote, implemented exactly as the Fig.-4 state machine:
//
//   Idle ----Adv(new seg)----> (send DL request, stay)
//   Idle ----StartDownload(expected seg)/Data(expected seg)--> Download
//   Download --EndDownload, none missing--> Advertise
//   Download --EndDownload, missing & query/update--> Update
//   Download --timeout--> Fail --(release)--> Idle
//   Advertise --K advs && ReqCtr>0--> Forward
//   Advertise --K advs && ReqCtr==0--> Advertise (interval doubles)
//   Advertise --saw better source (higher ReqCtr / lower segment)--> Sleep
//   Advertise --StartDownload/Data for uninteresting seg--> Sleep
//   Forward --segment streamed--> Query (or Sleep without query/update)
//   Query --repair requests--> retransmissions; --idle--> Sleep
//   Update --retransmission--> request next missing; --none missing--> Advertise
//   Sleep --timer--> Advertise (sources) / Idle (nodes with nothing yet)
//
// Sender selection: sources count distinct requesters (ReqCtr). Both
// advertisements and download requests carry ReqCtr, and download requests
// are broadcast although logically destined to one source — overhearing
// them is how MNP defeats the hidden terminal problem: a source learns of
// a competitor two hops away through the requests their shared neighbor
// broadcasts. The source with the highest (ReqCtr, id) pair keeps
// advertising; everyone else turns its radio off.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "mnp/mnp_config.hpp"
#include "mnp/program_image.hpp"
#include "node/application.hpp"
#include "node/node.hpp"
#include "obs/metrics.hpp"
#include "util/bitmap.hpp"

namespace mnp::core {

class MnpNode final : public node::Application {
 public:
  enum class State : std::uint8_t {
    kIdle,
    kDownload,
    kAdvertise,
    kForward,
    kQuery,
    kUpdate,
    kSleep,
    // Fail is transient in the paper (release EEPROM, go idle); we pass
    // through it atomically and never rest in it.
  };

  /// Regular node: knows nothing about the program until it hears an
  /// advertisement.
  explicit MnpNode(MnpConfig config);

  /// Base station: boots holding the complete image and immediately
  /// starts advertising it.
  MnpNode(MnpConfig config, std::shared_ptr<const ProgramImage> image);

  // --- Application --------------------------------------------------------
  void start(node::Node& node) override;
  void on_packet(const net::Packet& pkt) override;
  bool has_complete_image() const override {
    return known_segments_ > 0 && rvd_seg_ == known_segments_;
  }
  /// Power cycle: cancels every pending timer and wipes volatile protocol
  /// state; the next start() replays the progress journal (if enabled)
  /// from the surviving EEPROM.
  void reset_for_reboot() override;
  std::uint64_t audit_digest() const override;

  // --- introspection (tests, benches) ------------------------------------
  State state() const { return state_; }
  static std::string state_name(State s);
  /// Allocation-free spelling used on the trace hot path.
  static const char* state_cname(State s);
  std::uint16_t received_segments() const { return rvd_seg_; }
  std::uint16_t advertised_segment() const { return adv_seg_; }
  std::uint8_t req_ctr() const { return req_ctr_; }
  int parent() const { return parent_; }
  bool is_base() const { return static_cast<bool>(image_); }
  std::uint32_t fail_count() const { return fail_count_; }
  /// Paper section 3.5: local estimate that every neighbor has the code
  /// (K advertisements of the last segment drew no request). The node
  /// still reboots only on the external signal.
  bool neighborhood_estimated_complete() const { return neighborhood_complete_; }
  /// The external start signal: returns true (and "reboots") only when
  /// the image is complete and verified.
  bool reboot(const ProgramImage& oracle);

  /// Remaining battery fraction used by the battery-aware extension.
  void set_battery_level(double fraction);
  double battery_level() const { return battery_level_; }

 private:
  // --- state transitions -------------------------------------------------
  void enter_idle();
  void enter_download(net::NodeId parent, std::uint16_t seg);
  void enter_advertise(bool reset_interval);
  void enter_forward();
  void enter_query();
  void enter_update();
  void enter_sleep();
  /// Yield as a source but stay awake as a requester (the winning source
  /// is about to transmit the segment this node needs).
  void enter_wait_for_transfer();
  void fail();  // transient: release resources, -> Idle (or Advertise)

  // --- message handlers -----------------------------------------------------
  void handle_advertisement(const net::Packet& pkt, const net::AdvertisementMsg& adv);
  void handle_download_request(const net::Packet& pkt, const net::DownloadRequestMsg& req);
  void handle_start_download(const net::Packet& pkt, const net::StartDownloadMsg& msg);
  void handle_data(const net::Packet& pkt, const net::DataMsg& msg);
  void handle_end_download(const net::Packet& pkt, const net::EndDownloadMsg& msg);
  void handle_query(const net::Packet& pkt, const net::QueryMsg& msg);
  void handle_repair_request(const net::Packet& pkt, const net::RepairRequestMsg& msg);

  // --- helpers ----------------------------------------------------------
  void cancel_timers();
  /// Transition with optional event-log tracing.
  void change_state(State next);
  void send_advertisement();
  void schedule_next_advertisement();
  void maybe_nap();
  /// Pre-wave duty cycling: sleep/listen cycles while the program is
  /// still unheard-of (see MnpConfig::pre_wave_duty_cycle).
  void schedule_pre_wave_cycle();
  void send_download_request(net::NodeId dest, std::uint8_t req_ctr_echo);
  /// Folds a destined-to-us request into the ForwardVector (handles both
  /// the windowed and the request-all forms).
  void merge_request(const net::DownloadRequestMsg& req);
  void store_data_packet(const net::DataMsg& msg);
  void complete_current_segment();
  void pump_forward_queue();
  void send_data_packet(std::uint16_t seg, std::uint16_t pkt_id);
  void send_next_repair_request();
  void arm_download_timeout();
  void learn_program(const net::AdvertisementMsg& adv);
  /// Subset dissemination: whether this node participates in `program_id`.
  bool accepts_program(std::uint16_t program_id) const;
  bool needs_code() const { return known_segments_ == 0 || rvd_seg_ < known_segments_; }
  /// Eligible to act as a source: with pipelining, any complete segment
  /// qualifies; without it, only the full image does (section 3.1.1).
  bool can_advertise() const;
  std::uint16_t expected_seg() const { return static_cast<std::uint16_t>(rvd_seg_ + 1); }
  std::uint16_t packets_in(std::uint16_t seg) const;
  std::size_t payload_len(std::uint16_t seg, std::uint16_t pkt) const;
  std::size_t eeprom_offset(std::uint16_t seg, std::uint16_t pkt) const;
  void ensure_missing_vector(std::uint16_t seg);
  /// Journals one completed segment (no-op unless config_.journal_progress
  /// and the journal region clears the image).
  void journal_segment(std::uint16_t seg);
  /// Replays the journal at boot: restores program geometry and the
  /// contiguous received-segment prefix. Returns true if progress was
  /// recovered.
  bool recover_journal();
  sim::Time segment_transfer_estimate() const;
  /// True if (their_req_ctr, their_id) beats (my req_ctr, my id).
  bool loses_to(std::uint8_t their_req_ctr, net::NodeId their_id) const;

  MnpConfig config_;
  std::shared_ptr<const ProgramImage> image_;  // base station only
  node::Node* node_ = nullptr;

  // Telemetry (DESIGN.md section 9): handles registered once at start()
  // when the harness attached a registry; change_state() then increments
  // through plain array indexing. Index = static_cast<size_t>(State).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricsRegistry::Counter m_state_entries_[7];
  obs::MetricsRegistry::Counter m_requests_sent_;
  obs::MetricsRegistry::Counter m_data_sent_;

  State state_ = State::kIdle;

  // Program metadata (learned from advertisements; innate for the base).
  std::uint16_t program_id_ = 0;
  std::uint32_t program_bytes_ = 0;
  std::uint16_t known_segments_ = 0;  // 0 = program still unknown

  // Receiver side.
  std::uint16_t rvd_seg_ = 0;        // highest fully received segment
  // MissingVector for missing_for_seg_. A BigBitmap: with pipelining the
  // segment is <= 128 packets (fits in RAM/one radio packet); the basic
  // protocol's large segments model the paper's EEPROM-backed variant.
  util::BigBitmap missing_;
  std::uint16_t missing_for_seg_ = 0;
  int parent_ = -1;
  std::uint16_t downloading_seg_ = 0;

  // Source side.
  std::uint16_t adv_seg_ = 0;        // segment currently advertised
  std::uint8_t req_ctr_ = 0;
  std::set<net::NodeId> requesters_;
  util::BigBitmap forward_vector_;
  int adv_count_ = 0;
  sim::Time adv_interval_hi_ = 0;    // current (possibly backed-off) max
  std::uint16_t forward_cursor_ = 0; // next packet index to stream
  bool end_download_sent_ = false;

  sim::EventHandle request_timer_;
  sim::EventHandle pre_wave_timer_;
  sim::EventHandle nap_timer_;
  sim::EventHandle adv_timer_;
  sim::EventHandle sleep_timer_;
  sim::EventHandle download_timer_;
  sim::EventHandle forward_timer_;
  sim::EventHandle query_timer_;
  sim::EventHandle update_timer_;

  std::uint32_t fail_count_ = 0;
  bool neighborhood_complete_ = false;
  double battery_level_ = 1.0;
  bool rebooted_ = false;
};

}  // namespace mnp::core

#include "mnp/mnp_node.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "boot/progress_journal.hpp"
#include "node/stats.hpp"
#include "sim/audit.hpp"
#include "util/log.hpp"

namespace mnp::core {

using net::Packet;
using net::PacketType;

MnpNode::MnpNode(MnpConfig config) : config_(config) {}

MnpNode::MnpNode(MnpConfig config, std::shared_ptr<const ProgramImage> image)
    : config_(config), image_(std::move(image)) {
  assert(image_);
  // The image geometry is a network-wide protocol constant; the base's
  // image must agree with the configuration every other node runs.
  assert(image_->packets_per_segment() == config_.packets_per_segment);
  assert(image_->payload_bytes() == config_.payload_bytes);
}

void MnpNode::start(node::Node& node) {
  // Entry guard: nodes boot in Idle. Also anchors mnp_lint's transition
  // extraction, which resolves the enter_* calls below against Idle.
  assert(state_ == State::kIdle);
  node_ = &node;
  if ((metrics_ = node_->stats().metrics()) != nullptr) {
    // One entry counter per state; registration is idempotent, so all
    // nodes share the same cells. Names match DESIGN.md section 9.
    for (std::size_t s = 0; s < 7; ++s) {
      char name[40];
      char* p = name;
      for (const char* c = "mnp.state_entries."; *c != '\0';) *p++ = *c++;
      for (const char* c = state_cname(static_cast<State>(s)); *c != '\0';) {
        *p++ = *c++;
      }
      m_state_entries_[s] = metrics_->register_counter(
          std::string_view(name, static_cast<std::size_t>(p - name)),
          obs::Unit::kCount, true);
    }
    m_requests_sent_ = metrics_->register_counter("mnp.requests_sent",
                                                  obs::Unit::kCount, true);
    m_data_sent_ =
        metrics_->register_counter("mnp.data_sent", obs::Unit::kCount, true);
  }
  // Pipelined segments must keep their MissingVector inside one radio
  // packet; only the basic protocol may use larger (EEPROM-tracked)
  // segments.
  assert(!config_.pipelining ||
         config_.packets_per_segment <= ProgramImage::kMaxPacketsPerSegment);
  if (image_) {
    program_id_ = image_->id();
    program_bytes_ = static_cast<std::uint32_t>(image_->total_bytes());
    known_segments_ = image_->num_segments();
    rvd_seg_ = known_segments_;
    node_->stats().on_completed(node_->id(), node_->now());
    enter_advertise(/*reset_interval=*/true);
  } else if (recover_journal()) {
    // Rebooted mid-download: the journal restored the received-segment
    // prefix, so rejoin as a source of what we have (or as a complete
    // node) instead of starting from scratch.
    if (has_complete_image()) {
      node_->stats().on_completed(node_->id(), node_->now());
    }
    if (can_advertise()) {
      adv_seg_ = rvd_seg_;
      enter_advertise(/*reset_interval=*/true);
    } else {
      enter_idle();
    }
  } else {
    enter_idle();
  }
}

void MnpNode::journal_segment(std::uint16_t seg) {
  if (!config_.journal_progress) return;
  boot::ProgressJournal journal(node_->eeprom());
  if (!journal.usable(config_.eeprom_base_offset + program_bytes_)) return;
  journal.append(program_id_, program_bytes_, seg);
}

bool MnpNode::recover_journal() {
  if (!config_.journal_progress) return false;
  boot::ProgressJournal journal(node_->eeprom());
  auto rec = journal.recover();
  if (!rec || rec->units.empty()) return false;
  if (!accepts_program(rec->program_id)) return false;
  // Geometry is derivable: segment size is a network-wide protocol
  // constant, so the journaled byte count fixes the segment count.
  const std::size_t seg_bytes =
      static_cast<std::size_t>(config_.packets_per_segment) *
      config_.payload_bytes;
  program_id_ = rec->program_id;
  program_bytes_ = rec->program_bytes;
  known_segments_ =
      static_cast<std::uint16_t>((rec->program_bytes + seg_bytes - 1) / seg_bytes);
  // MNP downloads segments strictly in order, so journaled units are the
  // prefix 1..k; take the longest contiguous run in case of anomalies.
  std::uint16_t contiguous = 0;
  for (std::uint16_t unit : rec->units) {
    if (unit == contiguous + 1) contiguous = unit;
  }
  rvd_seg_ = contiguous;
  return rvd_seg_ > 0;
}

void MnpNode::reset_for_reboot() {
  // Everything in RAM dies with the mote. Timers first (including the
  // request timer cancel_timers() deliberately keeps), then the protocol
  // state machine and all download/source bookkeeping.
  request_timer_.cancel();
  cancel_timers();
  if (state_ != State::kIdle) {
    change_state(State::kIdle);
  }
  program_id_ = 0;
  program_bytes_ = 0;
  known_segments_ = 0;
  rvd_seg_ = 0;
  missing_ = util::BigBitmap{};
  missing_for_seg_ = 0;
  parent_ = -1;
  downloading_seg_ = 0;
  adv_seg_ = 0;
  req_ctr_ = 0;
  requesters_.clear();
  forward_vector_ = util::BigBitmap{};
  adv_count_ = 0;
  adv_interval_hi_ = 0;
  forward_cursor_ = 0;
  end_download_sent_ = false;
  fail_count_ = 0;
  neighborhood_complete_ = false;
  rebooted_ = false;
  // battery_level_ is physical, not RAM: it survives the power cycle.
}

std::uint64_t MnpNode::audit_digest() const {
  std::uint64_t h = sim::kFnvOffset;
  h = sim::fnv1a(h, static_cast<std::uint64_t>(state_));
  h = sim::fnv1a(h, program_id_);
  h = sim::fnv1a(h, known_segments_);
  h = sim::fnv1a(h, rvd_seg_);
  h = sim::fnv1a(h, missing_for_seg_);
  h = sim::fnv1a(h, static_cast<std::uint64_t>(parent_));
  h = sim::fnv1a(h, downloading_seg_);
  h = sim::fnv1a(h, adv_seg_);
  h = sim::fnv1a(h, req_ctr_);
  h = sim::fnv1a(h, requesters_.size());
  h = sim::fnv1a(h, forward_cursor_);
  h = sim::fnv1a(h, fail_count_);
  return h;
}

const char* MnpNode::state_cname(State s) {
  switch (s) {
    case State::kIdle: return "Idle";
    case State::kDownload: return "Download";
    case State::kAdvertise: return "Advertise";
    case State::kForward: return "Forward";
    case State::kQuery: return "Query";
    case State::kUpdate: return "Update";
    case State::kSleep: return "Sleep";
  }
  return "?";
}

std::string MnpNode::state_name(State s) { return state_cname(s); }

void MnpNode::set_battery_level(double fraction) {
  battery_level_ = std::clamp(fraction, 0.0, 1.0);
}

bool MnpNode::reboot(const ProgramImage& oracle) {
  if (rebooted_) return true;
  if (!has_complete_image()) return false;
  if (image_) {  // base station: verify directly against its own image
    rebooted_ = oracle.matches(image_->bytes());
    return rebooted_;
  }
  auto stored = node_->eeprom().read(config_.eeprom_base_offset, program_bytes_);
  rebooted_ = oracle.matches(stored);
  return rebooted_;
}

// --------------------------------------------------------------------------
// helpers
// --------------------------------------------------------------------------

bool MnpNode::can_advertise() const {
  if (known_segments_ == 0) return false;
  return config_.pipelining ? rvd_seg_ >= 1 : rvd_seg_ == known_segments_;
}

std::uint16_t MnpNode::packets_in(std::uint16_t seg) const {
  if (seg == 0 || seg > known_segments_) return 0;
  if (seg < known_segments_) return config_.packets_per_segment;
  const std::size_t seg_bytes =
      static_cast<std::size_t>(config_.packets_per_segment) * config_.payload_bytes;
  const std::size_t last_bytes =
      program_bytes_ - seg_bytes * static_cast<std::size_t>(known_segments_ - 1);
  return static_cast<std::uint16_t>((last_bytes + config_.payload_bytes - 1) /
                                    config_.payload_bytes);
}

std::size_t MnpNode::eeprom_offset(std::uint16_t seg, std::uint16_t pkt) const {
  return config_.eeprom_base_offset +
         (static_cast<std::size_t>(seg - 1) * config_.packets_per_segment + pkt) *
             config_.payload_bytes;
}

std::size_t MnpNode::payload_len(std::uint16_t seg, std::uint16_t pkt) const {
  // Image-relative position (eeprom_offset additionally carries the
  // boot-manager staging base, which must not enter this comparison).
  const std::size_t rel =
      (static_cast<std::size_t>(seg - 1) * config_.packets_per_segment + pkt) *
      config_.payload_bytes;
  if (rel >= program_bytes_) return 0;
  return std::min(config_.payload_bytes, program_bytes_ - rel);
}

void MnpNode::ensure_missing_vector(std::uint16_t seg) {
  // Never cache a vector before the program geometry is known — a zero-
  // sized MissingVector would make the segment "complete" vacuously.
  if (known_segments_ == 0 || packets_in(seg) == 0) return;
  if (missing_for_seg_ == seg && missing_.size() == packets_in(seg)) return;
  missing_ = util::BigBitmap::all_set(packets_in(seg));
  missing_for_seg_ = seg;
}

sim::Time MnpNode::segment_transfer_estimate() const {
  const std::uint16_t pkts =
      known_segments_ ? config_.packets_per_segment : std::uint16_t{128};
  return static_cast<sim::Time>(
      config_.sleep_multiplier *
      static_cast<double>(config_.expected_segment_transfer_time(pkts)));
}

bool MnpNode::loses_to(std::uint8_t their_req_ctr, net::NodeId their_id) const {
  if (their_req_ctr > req_ctr_) return true;
  return their_req_ctr == req_ctr_ && their_id > node_->id();
}

void MnpNode::cancel_timers() {
  // Note: request_timer_ is deliberately NOT cancelled here — a pending
  // download request must survive the transition into the waiting state
  // it causes. Sleeping cancels it explicitly (the radio goes off).
  pre_wave_timer_.cancel();
  nap_timer_.cancel();
  adv_timer_.cancel();
  sleep_timer_.cancel();
  download_timer_.cancel();
  forward_timer_.cancel();
  query_timer_.cancel();
  update_timer_.cancel();
}

bool MnpNode::accepts_program(std::uint16_t program_id) const {
  if (config_.target_program != 0) return program_id == config_.target_program;
  // No explicit subscription: locked to whatever program was heard first.
  return known_segments_ == 0 || program_id == program_id_;
}

void MnpNode::change_state(State next) {
  if (next != state_ && node_ != nullptr) {
    if (auto* log = node_->stats().event_log()) {
      // Format "Old->New" in a stack buffer; the log copies it inline.
      char buf[2 * 16 + 2];
      char* p = buf;
      for (const char* s = state_cname(state_); *s != '\0';) *p++ = *s++;
      *p++ = '-';
      *p++ = '>';
      for (const char* s = state_cname(next); *s != '\0';) *p++ = *s++;
      log->record(node_->now(), node_->id(), trace::EventKind::kStateChange,
                  std::string_view(buf, static_cast<std::size_t>(p - buf)));
    }
    if (metrics_) {
      metrics_->add(m_state_entries_[static_cast<std::size_t>(next)],
                    node_->id());
    }
  }
  state_ = next;
}

void MnpNode::learn_program(const net::AdvertisementMsg& adv) {
  if (known_segments_ == 0 && adv.program_segments > 0 &&
      accepts_program(adv.program_id)) {
    program_id_ = adv.program_id;
    program_bytes_ = adv.program_bytes;
    known_segments_ = adv.program_segments;
  }
}

// --------------------------------------------------------------------------
// state transitions
// --------------------------------------------------------------------------

void MnpNode::enter_idle() {
  cancel_timers();
  change_state(State::kIdle);
  node_->radio_on();  // idle listening: the energy cost Fig. 8 measures
  req_ctr_ = 0;
  requesters_.clear();
  if (config_.pre_wave_duty_cycle > 0.0 && known_segments_ == 0) {
    schedule_pre_wave_cycle();
  }
}

void MnpNode::schedule_pre_wave_cycle() {
  // Listen for a fraction of the period, sleep the rest, repeat until the
  // first advertisement is heard (learning the program cancels the cycle
  // because every state transition cancels this timer).
  const double duty = std::clamp(config_.pre_wave_duty_cycle, 0.01, 1.0);
  const auto listen =
      static_cast<sim::Time>(static_cast<double>(config_.pre_wave_period) * duty);
  pre_wave_timer_ = node_->schedule(listen, [this] {
    if (state_ != State::kIdle || known_segments_ != 0) return;
    node_->radio_off();
    const auto listen_span = static_cast<sim::Time>(
        static_cast<double>(config_.pre_wave_period) *
        std::clamp(config_.pre_wave_duty_cycle, 0.01, 1.0));
    pre_wave_timer_ =
        node_->schedule(config_.pre_wave_period - listen_span, [this] {
          if (state_ != State::kIdle || known_segments_ != 0) return;
          node_->radio_on();
          schedule_pre_wave_cycle();
        });
  });
}

void MnpNode::enter_download(net::NodeId parent, std::uint16_t seg) {
  cancel_timers();
  change_state(State::kDownload);
  parent_ = parent;
  downloading_seg_ = seg;
  ensure_missing_vector(seg);
  node_->stats().on_parent_set(node_->id(), parent);
  arm_download_timeout();
}

void MnpNode::enter_advertise(bool reset_interval) {
  cancel_timers();
  change_state(State::kAdvertise);
  node_->radio_on();
  req_ctr_ = 0;
  requesters_.clear();
  adv_count_ = 0;
  adv_seg_ = std::clamp<std::uint16_t>(adv_seg_, 1, rvd_seg_);
  if (adv_seg_ == 0) adv_seg_ = rvd_seg_;
  forward_vector_ = util::BigBitmap(packets_in(adv_seg_));
  if (reset_interval || adv_interval_hi_ == 0) {
    adv_interval_hi_ = config_.adv_interval_max;
  }
  schedule_next_advertisement();
}

void MnpNode::enter_forward() {
  cancel_timers();
  change_state(State::kForward);
  node_->stats().on_became_sender(node_->id(), node_->now());
  forward_cursor_ = 0;
  end_download_sent_ = false;
  Packet pkt;
  pkt.payload = net::StartDownloadMsg{
      program_id_, adv_seg_, packets_in(adv_seg_)};
  node_->send(std::move(pkt));
  forward_timer_ = node_->schedule(config_.forward_pump_interval,
                                   [this] { pump_forward_queue(); });
}

void MnpNode::enter_query() {
  cancel_timers();
  change_state(State::kQuery);
  Packet pkt;
  pkt.payload = net::QueryMsg{adv_seg_};
  node_->send(std::move(pkt));
  query_timer_ =
      node_->schedule(config_.query_idle_timeout, [this] { enter_sleep(); });
}

void MnpNode::enter_update() {
  cancel_timers();
  change_state(State::kUpdate);
  update_timer_ =
      node_->schedule(config_.update_idle_timeout, [this] { fail(); });
}

void MnpNode::enter_wait_for_transfer() {
  // Requester variant of yielding: the node stops competing as a source
  // but keeps the radio on to catch the imminent StartDownload. If the
  // transfer never materializes, fall back to advertising.
  cancel_timers();
  change_state(State::kIdle);
  req_ctr_ = 0;
  requesters_.clear();
  sleep_timer_ = node_->schedule(2 * segment_transfer_estimate(), [this] {
    if (state_ == State::kIdle && can_advertise()) {
      enter_advertise(/*reset_interval=*/true);
    }
  });
}

void MnpNode::enter_sleep() {
  request_timer_.cancel();
  cancel_timers();
  change_state(State::kSleep);
  req_ctr_ = 0;
  requesters_.clear();
  node_->radio_off();
  sleep_timer_ = node_->schedule(segment_transfer_estimate(), [this] {
    node_->radio_on();
    if (can_advertise()) {
      enter_advertise(/*reset_interval=*/true);
    } else {
      enter_idle();
    }
  });
}

void MnpNode::fail() {
  // Transient fail state: release the download session and return to the
  // protocol's resting state. (The paper sends failed nodes to Idle; a
  // pipelined node that already owns segments rests in Advertise, which
  // plays the Idle role for sources.)
  ++fail_count_;
  cancel_timers();
  if (can_advertise()) {
    enter_advertise(/*reset_interval=*/true);
  } else {
    enter_idle();
  }
}

// --------------------------------------------------------------------------
// advertising / sender selection
// --------------------------------------------------------------------------

void MnpNode::send_advertisement() {
  Packet pkt;
  net::AdvertisementMsg adv;
  adv.program_id = program_id_;
  adv.program_bytes = program_bytes_;
  adv.program_segments = known_segments_;
  adv.seg_id = adv_seg_;
  adv.req_ctr = req_ctr_;
  pkt.payload = adv;
  if (config_.battery_aware) {
    // Weak batteries whisper: fewer listeners => fewer requesters => the
    // node loses the election and keeps its remaining charge.
    pkt.power_scale = std::max(0.25, battery_level_);
  }
  node_->send(std::move(pkt));
}

void MnpNode::schedule_next_advertisement() {
  const sim::Time delay =
      node_->rng().uniform_int(config_.adv_interval_min, adv_interval_hi_);
  adv_timer_ = node_->schedule(delay, [this] {
    if (state_ != State::kAdvertise) return;
    node_->radio_on();  // wake from a quiescent nap, if any
    send_advertisement();
    ++adv_count_;
    if (adv_count_ >= config_.adv_rounds_before_decision) {
      if (req_ctr_ > 0) {
        enter_forward();
        return;
      }
      // No requesters for this segment.
      if (config_.estimate_neighborhood_completion && !needs_code() &&
          adv_seg_ == known_segments_) {
        neighborhood_complete_ = true;
      }
      if (adv_seg_ < rvd_seg_) {
        // Rule 5: nobody wants this segment; offer the next one.
        ++adv_seg_;
        forward_vector_ = util::BigBitmap(packets_in(adv_seg_));
        adv_count_ = 0;
      } else {
        // Stable neighborhood: advertise with reduced frequency.
        adv_interval_hi_ =
            std::min(adv_interval_hi_ * 2, config_.adv_interval_cap);
        adv_count_ = 0;
      }
    }
    schedule_next_advertisement();
    maybe_nap();
  });
}

void MnpNode::maybe_nap() {
  // Quiescent duty cycling: a fully-updated source whose advertisements
  // draw no interest sleeps between them, waking only to advertise. It
  // stays listening for a short window after each advertisement so a late
  // requester can still be heard (which resets the interval and ends the
  // napping regime).
  if (!config_.nap_between_advertisements) return;
  if (needs_code() || req_ctr_ > 0) return;
  if (adv_interval_hi_ < config_.nap_threshold) return;
  nap_timer_ = node_->schedule(config_.post_adv_listen, [this] {
    if (state_ == State::kAdvertise && req_ctr_ == 0 && !needs_code()) {
      node_->radio_off();
    }
  });
}

void MnpNode::send_download_request(net::NodeId dest, std::uint8_t req_ctr_echo) {
  // Randomly delayed so a neighborhood of requesters does not answer the
  // same advertisement in one burst; one pending request at a time.
  if (request_timer_.pending()) return;
  const sim::Time delay = node_->rng().uniform_int(0, config_.request_delay_max);
  request_timer_ = node_->schedule(delay, [this, dest, req_ctr_echo] {
    if (state_ != State::kIdle && state_ != State::kAdvertise) return;
    if (!needs_code() || known_segments_ == 0) return;
    ensure_missing_vector(expected_seg());
    Packet pkt;
    net::DownloadRequestMsg req;
    req.dest = dest;
    req.program_id = program_id_;
    req.seg_id = expected_seg();
    req.req_ctr_echo = req_ctr_echo;
    // With pipelining, segments are <= 128 packets and one window covers
    // everything. The basic protocol's large segments ship the first
    // missing window (the EEPROM-backed variant of section 3.3); the
    // common everything-missing case is flagged instead of enumerated.
    if (missing_.count() == missing_.size()) {
      req.request_all = true;
      req.window_base = 0;
    } else {
      const std::size_t first = missing_.find_first_set();
      req.window_base = static_cast<std::uint16_t>(first);
      req.missing = missing_.window(first);
    }
    pkt.payload = req;
    if (node_->send(std::move(pkt)) && metrics_) {
      metrics_->add(m_requests_sent_, node_->id());
    }
  });
}

void MnpNode::handle_advertisement(const Packet& pkt,
                                   const net::AdvertisementMsg& adv) {
  learn_program(adv);
  node_->meter().mark_first_advertisement(node_->now());

  // As a requester we only act on advertisements of OUR program (subset
  // dissemination: foreign programs are not of interest). Competition
  // still spans programs — there is only one channel.
  const bool ours =
      known_segments_ != 0 && adv.program_id == program_id_;

  switch (state_) {
    case State::kIdle:
      if (ours && needs_code() && adv.seg_id > rvd_seg_) {
        send_download_request(pkt.src, adv.req_ctr);
      }
      break;
    case State::kAdvertise: {
      // Competition: a source with more requesters wins; ties break
      // toward the higher node id.
      if (adv.req_ctr > 0 && loses_to(adv.req_ctr, pkt.src)) {
        if (ours && needs_code() && adv.seg_id == expected_seg()) {
          // The winner is offering exactly the segment we need: stop
          // competing but stay awake as a requester, or we would sleep
          // through our own download.
          enter_wait_for_transfer();
          send_download_request(pkt.src, adv.req_ctr);
        } else {
          enter_sleep();
        }
        return;
      }
      // Pipelining rule 4: yield to a busy source of a *lower* segment.
      if (ours && config_.pipelining && adv.seg_id < adv_seg_ &&
          adv.req_ctr >= config_.lower_segment_priority_threshold) {
        enter_sleep();
        return;
      }
      // A pipelined source may still be a requester for its next segment.
      if (ours && needs_code() && adv.seg_id > rvd_seg_) {
        send_download_request(pkt.src, adv.req_ctr);
      }
      break;
    }
    case State::kDownload:
    case State::kForward:
    case State::kQuery:
    case State::kUpdate:
    case State::kSleep:
      break;  // busy or radio off
  }
}

void MnpNode::merge_request(const net::DownloadRequestMsg& req) {
  if (req.request_all) {
    forward_vector_.set_all();
  } else {
    forward_vector_.merge_window(req.window_base, req.missing);
  }
}

void MnpNode::handle_download_request(const Packet& pkt,
                                      const net::DownloadRequestMsg& req) {
  if (state_ == State::kForward) {
    // Late joiner while streaming: merge its needs; packets the cursor has
    // already passed surface in the next round instead.
    if (req.dest == node_->id() && req.seg_id == adv_seg_) {
      merge_request(req);
    }
    return;
  }
  if (state_ != State::kAdvertise) return;

  // Rule 3: a request for an older segment of OUR program (even one
  // destined elsewhere) pulls this source down to advertise that segment.
  if (req.program_id == program_id_ && req.seg_id >= 1 &&
      req.seg_id < adv_seg_ && req.seg_id <= rvd_seg_) {
    adv_seg_ = req.seg_id;
    forward_vector_ = util::BigBitmap(packets_in(adv_seg_));
    req_ctr_ = 0;
    requesters_.clear();
    adv_count_ = 0;
  }

  if (req.dest == node_->id() && req.program_id == program_id_) {
    if (req.seg_id == adv_seg_) {
      if (requesters_.insert(pkt.src).second && req_ctr_ < 255) {
        ++req_ctr_;
        // The neighborhood is actively updating: advertise at full rate.
        adv_interval_hi_ = config_.adv_interval_max;
      }
      merge_request(req);
    } else if (req.seg_id > adv_seg_ && req.seg_id <= rvd_seg_ &&
               req_ctr_ == 0) {
      // Everyone near us is past adv_seg_; jump forward to what was asked.
      adv_seg_ = req.seg_id;
      forward_vector_ = util::BigBitmap(packets_in(adv_seg_));
      if (requesters_.insert(pkt.src).second) req_ctr_ = 1;
      merge_request(req);
    }
    return;
  }

  // Overheard request destined to another source: hidden-terminal defence.
  // The echoed ReqCtr tells us how busy that source is.
  if (req.req_ctr_echo > 0 && loses_to(req.req_ctr_echo, req.dest)) {
    if (needs_code() && req.seg_id == expected_seg()) {
      // That busier source is about to transmit the segment we need.
      enter_wait_for_transfer();
    } else {
      enter_sleep();
    }
  }
}

// --------------------------------------------------------------------------
// downloading
// --------------------------------------------------------------------------

void MnpNode::arm_download_timeout() {
  download_timer_.cancel();
  download_timer_ =
      node_->schedule(config_.download_idle_timeout, [this] { fail(); });
}

void MnpNode::handle_start_download(const Packet& pkt,
                                    const net::StartDownloadMsg& msg) {
  switch (state_) {
    case State::kIdle:
    case State::kAdvertise:
      if (needs_code() && known_segments_ != 0 &&
          msg.program_id == program_id_ && msg.seg_id == expected_seg()) {
        enter_download(pkt.src, msg.seg_id);
      } else {
        // A neighbor is about to stream a segment we cannot use: turn the
        // radio off for the duration instead of overhearing all of it.
        enter_sleep();
      }
      break;
    default:
      break;
  }
}

void MnpNode::handle_data(const Packet& pkt, const net::DataMsg& msg) {
  switch (state_) {
    case State::kDownload:
      if (msg.program_id == program_id_ && msg.seg_id == downloading_seg_) {
        store_data_packet(msg);
        arm_download_timeout();
        if (missing_.none()) complete_current_segment();
      }
      break;
    case State::kUpdate:
      if (msg.program_id == program_id_ && msg.seg_id == downloading_seg_) {
        store_data_packet(msg);
        if (missing_.none()) {
          complete_current_segment();
        } else {
          send_next_repair_request();
          update_timer_.cancel();
          update_timer_ = node_->schedule(config_.update_idle_timeout,
                                          [this] { fail(); });
        }
      }
      break;
    case State::kIdle:
    case State::kAdvertise:
      if (needs_code() && known_segments_ != 0 &&
          msg.program_id == program_id_ && msg.seg_id == expected_seg()) {
        // Missed the StartDownload but the stream is for us: join it.
        enter_download(pkt.src, msg.seg_id);
        store_data_packet(msg);
      } else {
        enter_sleep();  // not of interest: save the overhearing energy
      }
      break;
    default:
      break;
  }
}

void MnpNode::store_data_packet(const net::DataMsg& msg) {
  ensure_missing_vector(msg.seg_id);
  if (!missing_.test(msg.pkt_id)) return;  // duplicate: EEPROM untouched
  // A data packet must carry exactly the bytes this slot expects; an
  // empty or short payload (malformed sender) must not mark the packet
  // as received.
  if (msg.payload.size() != payload_len(msg.seg_id, msg.pkt_id)) return;
  node_->eeprom().write(eeprom_offset(msg.seg_id, msg.pkt_id), msg.payload);
  missing_.clear(msg.pkt_id);
}

void MnpNode::complete_current_segment() {
  rvd_seg_ = downloading_seg_;
  journal_segment(rvd_seg_);
  node_->stats().on_segment_completed(node_->id(), rvd_seg_, node_->now());
  if (has_complete_image()) {
    node_->stats().on_completed(node_->id(), node_->now());
  }
  cancel_timers();
  if (can_advertise()) {
    adv_seg_ = rvd_seg_;  // offer the newest segment; requests pull it down
    enter_advertise(/*reset_interval=*/true);
  } else {
    enter_idle();
  }
}

void MnpNode::handle_end_download(const Packet& pkt,
                                  const net::EndDownloadMsg& msg) {
  if (state_ != State::kDownload) return;
  if (msg.seg_id != downloading_seg_) return;
  if (static_cast<int>(pkt.src) != parent_) return;
  if (missing_.none()) {
    complete_current_segment();
  } else if (config_.query_update_enabled &&
             missing_.count() <= config_.update_missing_threshold) {
    enter_update();
  } else {
    // Too much residual loss for packet-at-a-time repair: re-request the
    // segment (our MissingVector shapes the next sender's ForwardVector).
    fail();
  }
}

void MnpNode::handle_query(const Packet& pkt, const net::QueryMsg& msg) {
  const bool from_parent = static_cast<int>(pkt.src) == parent_;
  if (state_ == State::kDownload && from_parent &&
      msg.seg_id == downloading_seg_) {
    // The EndDownload was lost; the query tells the same story.
    if (missing_.none()) {
      complete_current_segment();
    } else if (config_.query_update_enabled &&
               missing_.count() <= config_.update_missing_threshold) {
      enter_update();
      send_next_repair_request();
    } else {
      fail();
    }
    return;
  }
  if (state_ == State::kUpdate && from_parent &&
      msg.seg_id == downloading_seg_) {
    send_next_repair_request();
  }
}

void MnpNode::send_next_repair_request() {
  const std::size_t pkt_id = missing_.find_first_set();
  if (pkt_id >= missing_.size()) return;
  Packet pkt;
  net::RepairRequestMsg req;
  req.dest = static_cast<net::NodeId>(parent_);
  req.seg_id = downloading_seg_;
  req.pkt_id = static_cast<std::uint16_t>(pkt_id);
  pkt.payload = req;
  node_->send(std::move(pkt));
}

// --------------------------------------------------------------------------
// forwarding
// --------------------------------------------------------------------------

void MnpNode::send_data_packet(std::uint16_t seg, std::uint16_t pkt_id) {
  Packet pkt;
  net::DataMsg data;
  data.program_id = program_id_;
  data.seg_id = seg;
  data.pkt_id = pkt_id;
  // Payload buffer comes from the frame pool: its capacity is recycled
  // from an earlier data frame instead of heap-allocated per packet.
  data.payload = node_->frame_pool().acquire_payload();
  if (image_) {
    image_->packet_payload_into(seg, pkt_id, data.payload);
  } else {
    node_->eeprom().read_into(eeprom_offset(seg, pkt_id),
                              payload_len(seg, pkt_id), data.payload);
  }
  pkt.payload = std::move(data);
  if (node_->send(std::move(pkt)) && metrics_) {
    metrics_->add(m_data_sent_, node_->id());
  }
}

void MnpNode::pump_forward_queue() {
  if (state_ != State::kForward) return;
  // Keep a couple of packets queued at the MAC; deeper queues would defeat
  // carrier-sense fairness without improving throughput.
  while (node_->mac().queue_depth() < 2) {
    const std::size_t next = forward_vector_.find_first_set(forward_cursor_);
    if (next < forward_vector_.size()) {
      send_data_packet(adv_seg_, static_cast<std::uint16_t>(next));
      forward_cursor_ = static_cast<std::uint16_t>(next + 1);
      continue;
    }
    if (!end_download_sent_) {
      Packet pkt;
      pkt.payload = net::EndDownloadMsg{adv_seg_};
      node_->send(std::move(pkt));
      end_download_sent_ = true;
    }
    break;
  }
  if (end_download_sent_ && node_->mac().idle()) {
    // Whole segment (plus EndDownload) is on the air.
    if (config_.query_update_enabled) {
      enter_query();
    } else {
      enter_sleep();
    }
    return;
  }
  forward_timer_ = node_->schedule(config_.forward_pump_interval,
                                   [this] { pump_forward_queue(); });
}

void MnpNode::handle_repair_request(const Packet& pkt,
                                    const net::RepairRequestMsg& msg) {
  (void)pkt;
  if (state_ != State::kQuery) return;
  if (msg.dest != node_->id() || msg.seg_id != adv_seg_) return;
  send_data_packet(msg.seg_id, msg.pkt_id);
  query_timer_.cancel();
  query_timer_ =
      node_->schedule(config_.query_idle_timeout, [this] { enter_sleep(); });
}

// --------------------------------------------------------------------------
// dispatch
// --------------------------------------------------------------------------

void MnpNode::on_packet(const Packet& pkt) {
  if (const auto* adv = pkt.as<net::AdvertisementMsg>()) {
    handle_advertisement(pkt, *adv);
  } else if (const auto* req = pkt.as<net::DownloadRequestMsg>()) {
    handle_download_request(pkt, *req);
  } else if (const auto* sd = pkt.as<net::StartDownloadMsg>()) {
    handle_start_download(pkt, *sd);
  } else if (const auto* data = pkt.as<net::DataMsg>()) {
    handle_data(pkt, *data);
  } else if (const auto* end = pkt.as<net::EndDownloadMsg>()) {
    handle_end_download(pkt, *end);
  } else if (const auto* query = pkt.as<net::QueryMsg>()) {
    handle_query(pkt, *query);
  } else if (const auto* repair = pkt.as<net::RepairRequestMsg>()) {
    handle_repair_request(pkt, *repair);
  }
  // Foreign-protocol packets (baseline types) are ignored.
}

}  // namespace mnp::core

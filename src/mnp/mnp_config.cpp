#include "mnp/mnp_config.hpp"

// Configuration is a plain aggregate; this TU anchors the library target.
namespace mnp::core {}

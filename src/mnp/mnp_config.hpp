// Tunables of the MNP protocol. Defaults follow the paper where it gives
// numbers and the TinyOS implementation's spirit where it does not; every
// knob is exercised by the ablation bench.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mnp::core {

struct MnpConfig {
  // --- segment geometry (protocol constants, shared network-wide) ---------
  /// Packets per segment; at most 128 so the MissingVector fits in one
  /// radio packet.
  std::uint16_t packets_per_segment = 128;
  /// Code bytes per data packet.
  std::size_t payload_bytes = 22;

  /// Where in EEPROM incoming payload bytes land. 0 = raw start (the
  /// simulation default); a boot-managed mote points this at
  /// BootManager::staging_payload_offset().
  std::size_t eeprom_base_offset = 0;

  // --- sender selection ------------------------------------------------
  /// K: advertisements sent continuously (without sleeping) before the
  /// source decides to forward (if ReqCtr > 0) or slow down.
  int adv_rounds_before_decision = 5;
  /// Advertisements go out every random interval in [min, max] while the
  /// neighborhood is actively updating.
  sim::Time adv_interval_min = sim::msec(500);
  sim::Time adv_interval_max = sim::msec(1000);
  /// With no requesters the interval doubles per round up to this cap
  /// ("advertise with reduced frequency ... saves energy when the network
  /// is stable").
  sim::Time adv_interval_cap = sim::sec(32);

  // --- pipelining --------------------------------------------------------
  /// Segment pipelining on/off (off = the basic hop-by-hop protocol of
  /// section 3.1.1, used for the paper's mote experiments).
  bool pipelining = true;
  /// Rule 4 of section 3.1.2: a source advertising segment x sleeps when
  /// it hears an advertisement for segment y < x whose source already has
  /// at least this many requesters.
  std::uint8_t lower_segment_priority_threshold = 2;

  // --- pre-wave duty cycling ----------------------------------------------
  /// The paper (Fig. 9 discussion): nodes far from the base keep their
  /// radio on while waiting for the propagation wave; an S-MAC/SS-TDMA
  /// style scheme would let them sleep until it arrives. This implements
  /// that proposal: a node that has never heard an advertisement duty-
  /// cycles its radio (listen `pre_wave_duty_cycle` of each
  /// `pre_wave_period`). 0 disables (the paper's measured configuration).
  double pre_wave_duty_cycle = 0.0;
  sim::Time pre_wave_period = sim::msec(1500);

  // --- quiescent duty cycling ---------------------------------------------
  /// Once a fully-updated source has backed its advertisement interval off
  /// to at least `nap_threshold` with no requesters, it turns the radio
  /// off between advertisements ("after a node has got the code, it spends
  /// most of the time in sleeping state"). After each advertisement it
  /// listens for `post_adv_listen` to catch late requesters before napping.
  bool nap_between_advertisements = true;
  sim::Time nap_threshold = sim::sec(4);
  sim::Time post_adv_listen = sim::msec(400);

  // --- sleeping ---------------------------------------------------------
  /// Sleep duration = multiplier x expected one-segment transfer time
  /// ("the sleeping period ... lasts for approximately the expected code
  /// transmission time").
  double sleep_multiplier = 1.0;
  /// Estimated per-packet service time (airtime + MAC overhead) used to
  /// size sleeps and forwarding paces.
  sim::Time per_packet_time_estimate = sim::msec(40);

  // --- downloading ------------------------------------------------------
  /// A node waiting for the next packet from its parent gives up (fail
  /// state) after this long without progress.
  sim::Time download_idle_timeout = sim::sec(4);
  /// Pacing of the forwarding loop: the sender tops up its MAC queue at
  /// this period.
  sim::Time forward_pump_interval = sim::msec(10);

  // --- requester behaviour --------------------------------------------------
  /// Download requests answering an advertisement are delayed by a random
  /// amount in [0, this] so a crowd of requesters does not answer in the
  /// same instant.
  sim::Time request_delay_max = sim::msec(150);

  // --- query/update phase (optional in the paper) -------------------------
  bool query_update_enabled = true;
  /// The paper: query/update "is desirable in cases where the number of
  /// packets lost by the receiver is less than a given threshold". With
  /// more residual loss than this the node fails the segment and
  /// re-requests it through normal sender selection instead.
  std::size_t update_missing_threshold = 8;
  /// Sender: no repair request for this long ends the query phase.
  sim::Time query_idle_timeout = sim::msec(1500);
  /// Receiver in update state: no retransmission for this long => fail.
  sim::Time update_idle_timeout = sim::sec(3);

  // --- extensions ----------------------------------------------------------
  /// Battery-aware advertising (paper section 6): advertisement transmit
  /// power is scaled by the node's remaining battery fraction, so drained
  /// nodes attract fewer requesters and lose the sender election.
  bool battery_aware = false;

  /// Subset dissemination (paper section 6): several programs may flow to
  /// disjoint or overlapping subsets of the network. 0 = accept whatever
  /// program is heard first (the paper's measured single-program mode);
  /// nonzero = participate only in that program id. Transfers of foreign
  /// programs are "not of interest", so the node sleeps through them —
  /// the same energy rule that drives segment-level sleeping.
  std::uint16_t target_program = 0;

  /// If set, a node that has the full image and sent K advertisements of
  /// the highest segment with no request records that its neighborhood
  /// looks complete (the paper's *local estimation* reboot signal; actual
  /// reboot still waits for the external start signal).
  bool estimate_neighborhood_completion = true;

  /// Crash-safe progress journaling (boot::ProgressJournal): every
  /// completed segment is appended to the EEPROM tail, and start()
  /// replays the journal so a rebooted node resumes instead of
  /// re-downloading. Off by default — it adds one EEPROM write per
  /// segment, which the write-accounting tests pin down exactly; the
  /// harness enables it whenever a scenario injects churn.
  bool journal_progress = false;

  /// Expected time to push one full segment to a neighborhood.
  sim::Time expected_segment_transfer_time(std::uint16_t packets_per_segment) const {
    return per_packet_time_estimate * packets_per_segment;
  }
};

}  // namespace mnp::core

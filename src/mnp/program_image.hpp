// Program image: the code being disseminated.
//
// MNP divides a program into segments of a fixed number of packets
// (at most 128, so a segment's missing-packet bitmap fits in one radio
// packet) and packets of a fixed payload size. Segment IDs are 1-based
// and strictly increasing; nodes must receive segments sequentially.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace mnp::core {

class ProgramImage {
 public:
  static constexpr std::uint16_t kMaxPacketsPerSegment = 128;

  /// Builds an image of `total_bytes` of deterministic pseudo-random
  /// content derived from `program_id` — receivers can be byte-verified
  /// against an independently reconstructed oracle.
  ///
  /// `packets_per_segment` may exceed kMaxPacketsPerSegment only for the
  /// basic (non-pipelined) protocol, which tracks loss in EEPROM and ships
  /// missing information in 128-bit windows (paper section 3.3).
  ProgramImage(std::uint16_t program_id, std::size_t total_bytes,
               std::uint16_t packets_per_segment = kMaxPacketsPerSegment,
               std::size_t payload_bytes = 22);

  /// Wraps caller-provided content (e.g. a serialized version delta from
  /// `mnp::diff`) for dissemination.
  ProgramImage(std::uint16_t program_id, std::vector<std::uint8_t> content,
               std::uint16_t packets_per_segment = kMaxPacketsPerSegment,
               std::size_t payload_bytes = 22);

  std::uint16_t id() const { return id_; }
  std::size_t total_bytes() const { return data_.size(); }
  std::size_t payload_bytes() const { return payload_bytes_; }
  std::uint16_t packets_per_segment() const { return packets_per_segment_; }

  /// Number of segments (1-based ids run 1..num_segments()).
  std::uint16_t num_segments() const { return num_segments_; }

  /// Packets in segment `seg` (the last segment may be short).
  std::uint16_t packets_in_segment(std::uint16_t seg) const;

  /// Byte offset of (seg, pkt) within the image / within EEPROM.
  std::size_t packet_offset(std::uint16_t seg, std::uint16_t pkt) const;

  /// Payload carried by packet `pkt` of segment `seg` (the final packet
  /// may be short).
  std::vector<std::uint8_t> packet_payload(std::uint16_t seg, std::uint16_t pkt) const;

  /// Allocation-free variant: fills `out` (typically a pooled buffer whose
  /// capacity is being recycled) with the payload of (seg, pkt).
  void packet_payload_into(std::uint16_t seg, std::uint16_t pkt,
                           std::vector<std::uint8_t>& out) const;

  const std::vector<std::uint8_t>& bytes() const { return data_; }

  /// True if `candidate` equals this image (the paper's "accuracy"
  /// requirement: the received image must be exact).
  bool matches(const std::vector<std::uint8_t>& candidate) const {
    return candidate == data_;
  }

 private:
  std::uint16_t id_;
  std::uint16_t packets_per_segment_;
  std::size_t payload_bytes_;
  std::uint16_t num_segments_;
  std::vector<std::uint8_t> data_;
};

}  // namespace mnp::core
